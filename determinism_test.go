package beatbgp_test

import (
	"testing"

	"beatbgp"
)

// TestRenderDeterministicAcrossWorkers is the parallel runtime's
// acceptance gate: for each seed and experiment, a scenario run at 2 and
// 8 workers — and a second independently built scenario with the same
// seed — must reproduce the workers=1 Render() output byte for byte.
// Any order-dependence smuggled into a parallel sweep (an RNG keyed by
// worker, a float accumulated in completion order, a racing cache) shows
// up here as a diff.
func TestRenderDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scenario sweep")
	}
	seeds := []uint64{42, 7}
	exps := []string{"fig1", "fig3", "fig5", "xdetect", "xflap"}
	for _, seed := range seeds {
		// Reference: fully serial run.
		refCfg := facadeConfig(seed)
		refCfg.Workers = 1
		ref, err := beatbgp.NewScenario(refCfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want := make(map[string]string, len(exps))
		for _, id := range exps {
			r, err := beatbgp.Run(ref, id)
			if err != nil {
				t.Fatalf("seed %d %s workers=1: %v", seed, id, err)
			}
			want[id] = r.Render()
		}
		for _, workers := range []int{2, 8} {
			cfg := facadeConfig(seed)
			cfg.Workers = workers
			s, err := beatbgp.NewScenario(cfg)
			if err != nil {
				t.Fatalf("seed %d workers=%d: %v", seed, workers, err)
			}
			for _, id := range exps {
				r, err := beatbgp.Run(s, id)
				if err != nil {
					t.Fatalf("seed %d %s workers=%d: %v", seed, id, workers, err)
				}
				if got := r.Render(); got != want[id] {
					t.Errorf("seed %d %s: workers=%d output diverges from workers=1\n--- workers=1 ---\n%s\n--- workers=%d ---\n%s",
						seed, id, workers, want[id], workers, got)
				}
			}
		}
		// Same seed, second build, serial again: the world construction
		// itself must be reproducible, not just the sweeps.
		twin, err := beatbgp.NewScenario(refCfg)
		if err != nil {
			t.Fatalf("seed %d twin: %v", seed, err)
		}
		for _, id := range exps {
			r, err := beatbgp.Run(twin, id)
			if err != nil {
				t.Fatalf("seed %d %s twin: %v", seed, id, err)
			}
			if got := r.Render(); got != want[id] {
				t.Errorf("seed %d %s: second same-seed build diverges from the first", seed, id)
			}
		}
		// Same seed, reference route engine: the batch engine (the
		// default above) must be a pure speedup, never a result change.
		oracleCfg := refCfg
		oracleCfg.Engine = "oracle"
		oracleCfg.Workers = 2
		orc, err := beatbgp.NewScenario(oracleCfg)
		if err != nil {
			t.Fatalf("seed %d engine=oracle: %v", seed, err)
		}
		for _, id := range exps {
			r, err := beatbgp.Run(orc, id)
			if err != nil {
				t.Fatalf("seed %d %s engine=oracle: %v", seed, id, err)
			}
			if got := r.Render(); got != want[id] {
				t.Errorf("seed %d %s: engine=oracle output diverges from engine=matbgp\n--- matbgp ---\n%s\n--- oracle ---\n%s",
					seed, id, want[id], got)
			}
		}
	}
}

// TestParallelRunnerMatchesSequential locks the runner-level contract:
// RunManyParallel returns the same rendered results, in the requested
// order, as running the experiments one at a time.
func TestParallelRunnerMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scenario sweep")
	}
	ids := []string{"t32", "fig3", "t33"}

	seqS, err := beatbgp.NewScenario(facadeConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for _, id := range ids {
		r, err := beatbgp.Run(seqS, id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		want = append(want, r.Render())
	}

	parCfg := facadeConfig(9)
	parCfg.Workers = 8
	parS, err := beatbgp.NewScenario(parCfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := beatbgp.RunManyParallel(t.Context(), parS, ids, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ids) {
		t.Fatalf("got %d results, want %d", len(got), len(ids))
	}
	for i, r := range got {
		if r.ID != ids[i] {
			t.Errorf("result %d is %q, want %q (order must match the request)", i, r.ID, ids[i])
		}
		if r.Render() != want[i] {
			t.Errorf("%s: parallel runner output diverges from sequential", ids[i])
		}
	}
}
