package beatbgp_test

import (
	"strings"
	"testing"

	"beatbgp"
)

// facadeConfig keeps the public-API tests fast.
func facadeConfig(seed uint64) beatbgp.Config {
	cfg := beatbgp.Config{Seed: seed}
	cfg.Topology.EyeballsPerRegion = 6
	cfg.Workload.Days = 2
	return cfg
}

func TestFacadeQuickstart(t *testing.T) {
	s, err := beatbgp.NewScenario(facadeConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := beatbgp.Run(s, "fig2")
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != "fig2" || len(res.Series) == 0 || len(res.Tables) == 0 {
		t.Fatalf("unexpected result shape: %+v", res.ID)
	}
	if !strings.Contains(res.Render(), "fig2") {
		t.Fatal("render missing experiment ID")
	}
}

func TestFacadeRegistry(t *testing.T) {
	exps := beatbgp.Experiments()
	if len(exps) < 15 {
		t.Fatalf("only %d experiments registered", len(exps))
	}
	ids := map[string]bool{}
	for _, e := range exps {
		ids[e.ID] = true
	}
	for _, want := range []string{"fig1", "fig2", "fig3", "fig4", "fig5"} {
		if !ids[want] {
			t.Fatalf("missing %s", want)
		}
	}
}

func TestFacadeUnknownExperiment(t *testing.T) {
	s, err := beatbgp.NewScenario(facadeConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := beatbgp.Run(s, "figure-nothing"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestFacadeScenarioExposesSubstrates(t *testing.T) {
	s, err := beatbgp.NewScenario(facadeConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if s.Topo == nil || s.Prov == nil || s.CDN == nil || s.DNS == nil || s.Sim == nil {
		t.Fatal("scenario does not expose its substrates")
	}
	if len(s.Prov.PoPs) == 0 || len(s.CDN.Sites) == 0 {
		t.Fatal("provider/CDN not built")
	}
	// The facade's route-class constants must match the provider package.
	if beatbgp.ClassPNI.String() != "pni" || beatbgp.ClassTransit.String() != "transit" {
		t.Fatal("route class aliases broken")
	}
}

func TestRunAllStopsOnError(t *testing.T) {
	// RunAll on a healthy small scenario completes a prefix of cheap
	// experiments; full RunAll is exercised by the CLI and benchmarks.
	s, err := beatbgp.NewScenario(facadeConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	// Run a few directly to keep the test quick.
	for _, id := range []string{"t32", "fig3", "t33"} {
		if _, err := beatbgp.Run(s, id); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
}
