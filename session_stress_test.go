package beatbgp_test

import (
	"os"
	"testing"

	"beatbgp"
)

// TestStressSessionAcrossWorkers is the session layer's determinism
// stress behind `make stress-session`: the flap-storm and
// detection-sensitivity experiments — the two that replay per-link
// session FSMs inside parallel sweeps — must render byte-identically at
// workers 1 and 8, on a second same-seed world, and with BFD enabled.
// The make target runs it under -race, so any cross-worker sharing in
// the replay also trips the detector. Gated behind STRESS_SESSION=1
// because it builds four full worlds.
func TestStressSessionAcrossWorkers(t *testing.T) {
	if os.Getenv("STRESS_SESSION") == "" {
		t.Skip("set STRESS_SESSION=1 (or run `make stress-session`) to enable")
	}
	exps := []string{"xflap", "xdetect"}
	run := func(cfg beatbgp.Config) map[string]string {
		t.Helper()
		s, err := beatbgp.NewScenario(cfg)
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[string]string, len(exps))
		for _, id := range exps {
			r, err := beatbgp.Run(s, id)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			out[id] = r.Render()
		}
		return out
	}
	for _, bfd := range []bool{false, true} {
		ref := facadeConfig(42)
		ref.Workers = 1
		ref.Session.BFD = bfd
		want := run(ref)
		wide := facadeConfig(42)
		wide.Workers = 8
		wide.Session.BFD = bfd
		got := run(wide)
		for _, id := range exps {
			if got[id] != want[id] {
				t.Errorf("bfd=%v %s: workers=8 output diverges from workers=1\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
					bfd, id, want[id], got[id])
			}
		}
	}
}
