package tcp

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSteadyWindow(t *testing.T) {
	if w := SteadyWindowSegs(0); w != MaxWindowSegs {
		t.Fatalf("lossless window = %v", w)
	}
	if w := SteadyWindowSegs(0.01); math.Abs(w-12.2) > 0.1 {
		t.Fatalf("1%% loss window = %v, want ~12.2", w)
	}
	if w := SteadyWindowSegs(0.9); w != 2 {
		t.Fatalf("floor window = %v, want 2", w)
	}
}

func TestTransferTimeSmallObject(t *testing.T) {
	// 10 KB fits in the initial window: exactly one round.
	if ms := TransferTimeMs(10_000, 50, 0); ms != 50 {
		t.Fatalf("10KB over 50ms RTT = %v, want 50", ms)
	}
}

func TestTransferTimeSlowStartRounds(t *testing.T) {
	// 100 segments at w0=10 lossless: rounds of 10,20,40,80 -> 4 rounds.
	bytes := 100 * MSSBytes
	if ms := TransferTimeMs(bytes, 100, 0); ms != 400 {
		t.Fatalf("100-segment transfer = %v ms, want 400", ms)
	}
}

func TestTransferScalesWithRTT(t *testing.T) {
	a := TransferTimeMs(1e6, 20, 0.001)
	b := TransferTimeMs(1e6, 200, 0.001)
	if b <= a {
		t.Fatal("longer RTT should slow the transfer")
	}
	if math.Abs(b/a-10) > 1e-9 {
		t.Fatalf("transfer time should scale linearly with RTT: %v vs %v", a, b)
	}
}

func TestLossSlowsBulkTransfers(t *testing.T) {
	clean := TransferTimeMs(10e6, 50, 0.0001)
	lossy := TransferTimeMs(10e6, 50, 0.02)
	if lossy <= clean {
		t.Fatalf("loss should hurt bulk transfers: %v vs %v", lossy, clean)
	}
}

func TestTransferProperties(t *testing.T) {
	monotoneBytes := func(kb uint16, rtt8 uint8) bool {
		rtt := float64(rtt8%200) + 1
		small := TransferTimeMs(float64(kb)+1, rtt, 0.001)
		big := TransferTimeMs(float64(kb)+1e6, rtt, 0.001)
		return big >= small && small > 0
	}
	if err := quick.Check(monotoneBytes, nil); err != nil {
		t.Fatal(err)
	}
	if TransferTimeMs(0, 50, 0) != 0 {
		t.Fatal("zero bytes should take zero time")
	}
}

func TestSplitBeatsDirectOverLongDistance(t *testing.T) {
	// §4: splitting helps over long distances — the short client leg
	// ramps quickly and the long leg is pipelined.
	bytes := 2e6
	rtt1, rtt2 := 10.0, 140.0
	direct := FetchDirectMs(bytes, rtt1, 0.002, rtt2, 0.002)
	split := FetchSplitMs(bytes, rtt1, 0.002, rtt2, 0.002)
	if split >= direct {
		t.Fatalf("split %v should beat direct %v", split, direct)
	}
}

func TestSplitBackendQualityMatters(t *testing.T) {
	// A private-WAN backend (lower loss) should outperform a public
	// Internet backend at the same RTT.
	bytes := 10e6
	wan := FetchSplitMs(bytes, 10, 0.002, 120, 0.0002)
	pub := FetchSplitMs(bytes, 10, 0.002, 120, 0.01)
	if wan >= pub {
		t.Fatalf("WAN backend %v should beat lossy public backend %v", wan, pub)
	}
}

func TestGoodput(t *testing.T) {
	// 10 MB in 1 second = 80 Mbps.
	if g := GoodputMbps(10e6, 1000); math.Abs(g-80) > 1e-9 {
		t.Fatalf("goodput = %v, want 80", g)
	}
	if GoodputMbps(1, 0) != 0 {
		t.Fatal("zero time should yield zero goodput")
	}
}

func TestDirectCombinesLoss(t *testing.T) {
	// Combined loss must be >= each leg's loss: direct over two lossy
	// legs is slower than over one.
	one := FetchDirectMs(5e6, 50, 0.005, 0, 0)
	two := FetchDirectMs(5e6, 50, 0.005, 0, 0.005)
	if two <= one {
		t.Fatalf("two lossy legs %v should be slower than one %v", two, one)
	}
}
