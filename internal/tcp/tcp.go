// Package tcp provides an analytic TCP latency and throughput model for
// the paper's §4 discussions: goodput of bulk downloads over the two
// cloud tiers (the 10 MB footnote) and the latency benefit of split TCP
// connections with a private-WAN versus public-Internet backend.
//
// The model is round-based slow start capped by the Mathis steady-state
// window (W = C/sqrt(p) segments), which is the standard back-of-envelope
// for transfer-time estimation. It deliberately ignores receive-window
// limits and timeouts: comparisons between schemes over the same
// substrate are what matter.
package tcp

import "math"

// Protocol constants.
const (
	MSSBytes     = 1460.0 // sender maximum segment size
	InitCwndSegs = 10.0   // initial congestion window (RFC 6928)
	mathisC      = 1.22   // Mathis et al. constant for loss-limited windows
	// MaxWindowSegs caps the congestion window (a generous receive
	// window / buffer limit).
	MaxWindowSegs = 4096.0
)

// SteadyWindowSegs returns the loss-limited congestion window in segments
// for the given loss probability.
func SteadyWindowSegs(loss float64) float64 {
	if loss <= 0 {
		return MaxWindowSegs
	}
	w := mathisC / math.Sqrt(loss)
	if w > MaxWindowSegs {
		w = MaxWindowSegs
	}
	if w < 2 {
		w = 2
	}
	return w
}

// TransferTimeMs returns the time to deliver the payload once the
// connection exists: slow-start doubling from the initial window up to
// the loss-limited window, one round per RTT.
func TransferTimeMs(bytes, rttMs, loss float64) float64 {
	if bytes <= 0 {
		return 0
	}
	if rttMs <= 0 {
		return 0
	}
	segs := math.Ceil(bytes / MSSBytes)
	wMax := SteadyWindowSegs(loss)
	w := InitCwndSegs
	if w > wMax {
		w = wMax
	}
	rounds := 0.0
	sent := 0.0
	for sent < segs {
		rounds++
		sent += w
		w *= 2
		if w > wMax {
			w = wMax
		}
	}
	return rounds * rttMs
}

// FetchDirectMs returns the total time to fetch a payload over a single
// end-to-end connection spanning two legs in series (e.g. client to edge
// to origin): one combined-RTT handshake plus the transfer at the
// combined RTT and combined loss.
func FetchDirectMs(bytes, rtt1Ms, loss1, rtt2Ms, loss2 float64) float64 {
	rtt := rtt1Ms + rtt2Ms
	loss := 1 - (1-loss1)*(1-loss2)
	return rtt + TransferTimeMs(bytes, rtt, loss)
}

// FetchSplitMs returns the total fetch time through a split-TCP proxy at
// the leg boundary with warm backend connections: the client handshakes
// with the proxy (rtt1), the first byte must still cross the backend once
// (rtt2/2 + rtt1/2 is folded into the legs' transfers), and the two legs
// ramp their congestion windows independently, so the slower leg bounds
// the pipeline.
func FetchSplitMs(bytes, rtt1Ms, loss1, rtt2Ms, loss2 float64) float64 {
	t1 := TransferTimeMs(bytes, rtt1Ms, loss1)
	t2 := TransferTimeMs(bytes, rtt2Ms, loss2)
	return rtt1Ms + rtt2Ms/2 + math.Max(t1, t2)
}

// GoodputMbps converts a payload size and completion time to megabits per
// second. Returns 0 for non-positive times.
func GoodputMbps(bytes, timeMs float64) float64 {
	if timeMs <= 0 {
		return 0
	}
	return bytes * 8 / 1e6 / (timeMs / 1e3)
}
