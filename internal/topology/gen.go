package topology

import (
	"fmt"
	"math"
	"sort"

	"beatbgp/internal/cable"
	"beatbgp/internal/geo"
	"beatbgp/internal/xrand"
)

// GenConfig parameterizes topology generation. The zero value is usable:
// Generate fills in defaults.
type GenConfig struct {
	Seed uint64

	Tier1Count         int // global backbones (default 8)
	TransitsPerRegion  int // regional transit providers (default 4)
	EyeballsPerRegion  int // access networks per region (default 20)
	PrefixesPerEyeball int // mean prefixes originated per eyeball (default 3)

	// TransitPeerProb is the probability that two same-region transits
	// peer (default 0.5).
	TransitPeerProb float64
	// EyeballPeerProb is the probability that two eyeballs homed in the
	// same city peer (default 0.15).
	EyeballPeerProb float64
	// BigEyeballTier1Prob is the probability that a top-decile eyeball
	// also buys transit directly from a Tier-1 (default 0.5).
	BigEyeballTier1Prob float64
}

// Validate rejects nonsensical generation parameters. Zero values are
// fine (they select defaults).
func (c *GenConfig) Validate() error {
	for name, v := range map[string]int{
		"Tier1Count": c.Tier1Count, "TransitsPerRegion": c.TransitsPerRegion,
		"EyeballsPerRegion": c.EyeballsPerRegion, "PrefixesPerEyeball": c.PrefixesPerEyeball,
	} {
		if v < 0 {
			return fmt.Errorf("topology: %s = %d must be non-negative", name, v)
		}
	}
	for name, v := range map[string]float64{
		"TransitPeerProb": c.TransitPeerProb, "EyeballPeerProb": c.EyeballPeerProb,
		"BigEyeballTier1Prob": c.BigEyeballTier1Prob,
	} {
		if math.IsNaN(v) || v < 0 || v > 1 {
			return fmt.Errorf("topology: %s = %v must be a probability in [0, 1]", name, v)
		}
	}
	return nil
}

func (c *GenConfig) setDefaults() {
	if c.Tier1Count == 0 {
		c.Tier1Count = 8
	}
	if c.TransitsPerRegion == 0 {
		c.TransitsPerRegion = 4
	}
	if c.EyeballsPerRegion == 0 {
		c.EyeballsPerRegion = 20
	}
	if c.PrefixesPerEyeball == 0 {
		c.PrefixesPerEyeball = 3
	}
	if c.TransitPeerProb == 0 {
		c.TransitPeerProb = 0.5
	}
	if c.EyeballPeerProb == 0 {
		c.EyeballPeerProb = 0.15
	}
	if c.BigEyeballTier1Prob == 0 {
		c.BigEyeballTier1Prob = 0.5
	}
}

// Generate builds a deterministic AS-level topology per the config.
func Generate(cfg GenConfig) (*Topo, error) {
	cfg.setDefaults()
	catalog := geo.World()
	graph, err := cable.WorldGraph(catalog)
	if err != nil {
		return nil, err
	}
	t := &Topo{Catalog: catalog, Graph: graph}
	rng := xrand.New(cfg.Seed)

	if err := genTier1s(t, cfg, rng.Split("tier1")); err != nil {
		return nil, err
	}
	transitsByRegion, err := genTransits(t, cfg, rng.Split("transit"))
	if err != nil {
		return nil, err
	}
	if err := genEyeballs(t, cfg, rng.Split("eyeball"), transitsByRegion); err != nil {
		return nil, err
	}
	if err := genPrefixes(t, cfg, rng.Split("prefix")); err != nil {
		return nil, err
	}
	return t, nil
}

// topCitiesByPop returns the ids of the n highest-population cities in the
// region, deterministically.
func topCitiesByPop(catalog *geo.Catalog, region geo.Region, n int) []int {
	ids := catalog.InRegion(region)
	sort.Slice(ids, func(i, j int) bool {
		a, b := catalog.City(ids[i]), catalog.City(ids[j])
		if a.Pop != b.Pop {
			return a.Pop > b.Pop
		}
		return ids[i] < ids[j]
	})
	if n > len(ids) {
		n = len(ids)
	}
	return append([]int(nil), ids[:n]...)
}

func genTier1s(t *Topo, cfg GenConfig, rng *xrand.Rand) error {
	catalog := t.Catalog
	var tier1s []int
	// Every Tier-1 is present at the major submarine-cable landing hubs:
	// real global backbones all light the same few intercontinental
	// systems, and without them a Tier-1 could not carry, e.g., India
	// traffic westward over the Suez route (the §3.3.2 mechanism).
	hubNames := []string{
		"NewYork", "Miami", "LosAngeles", "Seattle",
		"SaoPaulo", "Fortaleza",
		"London", "Paris", "Frankfurt", "Marseille",
		"Dubai", "Jeddah", "Alexandria",
		"Mumbai", "Chennai", "Singapore", "HongKong", "Tokyo",
		"Sydney", "Johannesburg", "Lagos",
	}
	var hubs []int
	for _, name := range hubNames {
		c, ok := catalog.ByName(name)
		if !ok {
			return fmt.Errorf("topology: hub city %q missing from catalog", name)
		}
		hubs = append(hubs, c.ID)
	}
	for i := 0; i < cfg.Tier1Count; i++ {
		// Global footprint: the cable hubs, the four biggest cities of
		// every region, plus half of the remaining cities per region —
		// Tier-1 backbones are dense, which keeps their internal geometry
		// direct.
		cities := append([]int(nil), hubs...)
		for _, region := range geo.Regions() {
			top := topCitiesByPop(catalog, region, 4)
			cities = append(cities, top...)
			rest := catalog.InRegion(region)
			perm := rng.Perm(len(rest))
			take := len(rest) / 2
			for _, idx := range perm[:take] {
				cities = append(cities, rest[idx])
			}
		}
		// Headquarters rotate across the major markets; the HQ region
		// anchors the geographic tie-break in the decision process, which
		// stands in for per-ingress hot-potato choices a single-node AS
		// model cannot express.
		hqs := []geo.Region{geo.NorthAmerica, geo.Europe, geo.Asia}
		a, err := t.AddAS(100+i, fmt.Sprintf("T1-%d", i), Tier1, hqs[i%len(hqs)],
			cities, rng.Uniform(1.03, 1.08), EarlyExit)
		if err != nil {
			return err
		}
		tier1s = append(tier1s, a.ID)
	}
	// Settlement-free clique.
	for i := 0; i < len(tier1s); i++ {
		for j := i + 1; j < len(tier1s); j++ {
			if _, err := t.Connect(tier1s[i], tier1s[j], P2P, nil, false); err != nil {
				return err
			}
		}
	}
	return nil
}

// genTransits creates regional transits and guarantees every region city
// is covered by at least two of its region's transits, so eyeballs can
// always buy transit at home.
func genTransits(t *Topo, cfg GenConfig, rng *xrand.Rand) (map[geo.Region][]int, error) {
	catalog := t.Catalog
	tier1s := t.ByClass(Tier1)
	byRegion := make(map[geo.Region][]int)
	asn := 1000
	for _, region := range geo.Regions() {
		regionCities := catalog.InRegion(region)
		n := cfg.TransitsPerRegion
		if n > len(regionCities) {
			n = len(regionCities)
		}
		footprints := make(map[int]map[int]bool, n) // transit index -> city set
		for i := 0; i < n; i++ {
			footprints[i] = make(map[int]bool)
			// Random 60-90% of region cities.
			perm := rng.Perm(len(regionCities))
			take := int(float64(len(regionCities)) * rng.Uniform(0.6, 0.9))
			if take < 1 {
				take = 1
			}
			for _, idx := range perm[:take] {
				footprints[i][regionCities[idx]] = true
			}
			// Always present at the regional hub for upstream interconnection.
			footprints[i][topCitiesByPop(catalog, region, 1)[0]] = true
		}
		// Coverage guarantee: each region city in >= 2 transit footprints
		// (or all of them when fewer than 2 exist).
		for _, city := range regionCities {
			covered := 0
			for i := 0; i < n; i++ {
				if footprints[i][city] {
					covered++
				}
			}
			for i := 0; covered < 2 && i < n; i++ {
				if !footprints[i][city] {
					footprints[i][city] = true
					covered++
				}
			}
		}
		for i := 0; i < n; i++ {
			var cities []int
			for c := range footprints[i] {
				cities = append(cities, c)
			}
			sort.Ints(cities)
			a, err := t.AddAS(asn, fmt.Sprintf("TR-%s-%d", region, i), Transit, region,
				cities, rng.Uniform(1.08, 1.18), EarlyExit)
			asn++
			if err != nil {
				return nil, err
			}
			byRegion[region] = append(byRegion[region], a.ID)
			// Buy from 2-3 Tier-1s.
			upstreams := 2 + rng.Intn(2)
			perm := rng.Perm(len(tier1s))
			connected := 0
			for _, idx := range perm {
				if connected >= upstreams {
					break
				}
				if len(SharedCities(t.ASes[a.ID], t.ASes[tier1s[idx]])) == 0 {
					continue
				}
				if _, err := t.Connect(a.ID, tier1s[idx], C2P, nil, false); err != nil {
					return nil, err
				}
				connected++
			}
			if connected == 0 {
				return nil, fmt.Errorf("topology: transit %s found no reachable Tier-1", a.Name)
			}
		}
		// Same-region transit peering.
		ids := byRegion[region]
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				if !rng.Bool(cfg.TransitPeerProb) {
					continue
				}
				if len(SharedCities(t.ASes[ids[i]], t.ASes[ids[j]])) == 0 {
					continue
				}
				if _, err := t.Connect(ids[i], ids[j], P2P, nil, false); err != nil {
					return nil, err
				}
			}
		}
	}
	return byRegion, nil
}

func genEyeballs(t *Topo, cfg GenConfig, rng *xrand.Rand, transitsByRegion map[geo.Region][]int) error {
	catalog := t.Catalog
	tier1s := t.ByClass(Tier1)
	asn := 10000
	for _, region := range geo.Regions() {
		regionCities := catalog.InRegion(region)
		weights := make([]float64, len(regionCities))
		for i, c := range regionCities {
			weights[i] = catalog.City(c).Pop
		}
		var regionEyeballs []int
		for i := 0; i < cfg.EyeballsPerRegion; i++ {
			home := regionCities[rng.WeightedChoice(weights)]
			homeCountry := catalog.City(home).Country
			// Footprint: home city plus all same-country cities in region,
			// each kept with probability 0.7 (national ISPs rarely cover
			// every metro).
			cities := []int{home}
			for _, c := range regionCities {
				if c != home && catalog.City(c).Country == homeCountry && rng.Bool(0.7) {
					cities = append(cities, c)
				}
			}
			a, err := t.AddAS(asn, fmt.Sprintf("EYE-%s-%d", homeCountry, asn), Eyeball, region,
				cities, rng.Uniform(1.15, 1.35), EarlyExit)
			asn++
			if err != nil {
				return err
			}
			a.LastMileMs = rng.LogNormal(2.08, 0.5) // median ~8 ms
			regionEyeballs = append(regionEyeballs, a.ID)

			// Multi-home to 1-3 region transits that cover a footprint city.
			var candidates []int
			for _, tr := range transitsByRegion[region] {
				if len(SharedCities(a, t.ASes[tr])) > 0 {
					candidates = append(candidates, tr)
				}
			}
			if len(candidates) == 0 {
				return fmt.Errorf("topology: eyeball %s has no covering transit", a.Name)
			}
			var homes int
			switch u := rng.Float64(); {
			case u < 0.35:
				homes = 1
			case u < 0.80:
				homes = 2
			default:
				homes = 3
			}
			if homes > len(candidates) {
				homes = len(candidates)
			}
			perm := rng.Perm(len(candidates))
			for k := 0; k < homes; k++ {
				if _, err := t.Connect(a.ID, candidates[perm[k]], C2P, nil, false); err != nil {
					return err
				}
			}
			// Top-decile eyeballs sometimes buy from a Tier-1 directly.
			if catalog.City(home).Pop >= 10 && rng.Bool(cfg.BigEyeballTier1Prob) {
				perm := rng.Perm(len(tier1s))
				for _, idx := range perm {
					if len(SharedCities(a, t.ASes[tier1s[idx]])) > 0 {
						if _, err := t.Connect(a.ID, tier1s[idx], C2P, nil, false); err != nil {
							return err
						}
						break
					}
				}
			}
		}
		// Same-city eyeball peering.
		for i := 0; i < len(regionEyeballs); i++ {
			for j := i + 1; j < len(regionEyeballs); j++ {
				if !rng.Bool(cfg.EyeballPeerProb) {
					continue
				}
				if len(SharedCities(t.ASes[regionEyeballs[i]], t.ASes[regionEyeballs[j]])) == 0 {
					continue
				}
				if _, err := t.Connect(regionEyeballs[i], regionEyeballs[j], P2P, nil, false); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func genPrefixes(t *Topo, cfg GenConfig, rng *xrand.Rand) error {
	catalog := t.Catalog
	for _, a := range t.ASes {
		if a.Class != Eyeball {
			continue
		}
		n := 1 + rng.Intn(2*cfg.PrefixesPerEyeball-1)
		weights := make([]float64, len(a.Cities))
		for i, c := range a.Cities {
			weights[i] = catalog.City(c).Pop
		}
		for k := 0; k < n; k++ {
			city := a.Cities[rng.WeightedChoice(weights)]
			w := catalog.City(city).Pop * rng.LogNormal(0, 0.6)
			if _, err := t.AddPrefix(a.ID, city, w); err != nil {
				return err
			}
		}
	}
	return nil
}
