// Package topology models the AS-level Internet: autonomous systems with
// geographic footprints on the physical cable graph, business
// relationships (customer-provider and settlement-free peering),
// interconnection facilities, and originated prefixes with client
// populations.
//
// The generated topologies follow the standard Internet hierarchy: a
// clique of global Tier-1 backbones, regional transit networks buying
// from them, and eyeball/access networks at the edge hosting clients.
// Content providers are added on top by the provider package.
package topology

import (
	"fmt"
	"sort"

	"beatbgp/internal/cable"
	"beatbgp/internal/geo"
	"beatbgp/internal/inet"
)

// Class categorizes an AS's role in the routing hierarchy.
type Class int

// AS classes.
const (
	Tier1   Class = iota // global backbone, settlement-free peer clique
	Transit              // regional/national transit provider
	Eyeball              // access network hosting clients
	Content              // content/cloud provider (added by the provider package)
)

func (c Class) String() string {
	switch c {
	case Tier1:
		return "tier1"
	case Transit:
		return "transit"
	case Eyeball:
		return "eyeball"
	case Content:
		return "content"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// ExitPolicy selects how an AS chooses the handoff point when several
// interconnection cities are available to the next hop.
type ExitPolicy int

const (
	// EarlyExit (hot potato) hands traffic off at the interconnection
	// nearest to where it entered the AS. This is the Internet default.
	EarlyExit ExitPolicy = iota
	// LateExit carries traffic on the AS's own backbone to the
	// interconnection nearest the destination (cold potato). Content
	// provider WANs and premium transit products behave this way.
	LateExit
)

func (e ExitPolicy) String() string {
	if e == LateExit {
		return "late-exit"
	}
	return "early-exit"
}

// AS is one autonomous system.
type AS struct {
	ID         int    // dense index into Topo.ASes
	ASN        int    // display AS number
	Name       string // human-readable name
	Class      Class
	Region     geo.Region // home region (Tier-1s are global but keep an HQ region)
	Cities     []int      // footprint city IDs, ascending
	Net        *cable.Network
	Exit       ExitPolicy
	LastMileMs float64 // median access-network RTT added for clients homed here

	links []int // link IDs incident to this AS
}

// Rel is the business relationship on a link.
type Rel int

const (
	// C2P: Link.A is a customer of Link.B.
	C2P Rel = iota
	// P2P: settlement-free peers.
	P2P
)

func (r Rel) String() string {
	if r == P2P {
		return "p2p"
	}
	return "c2p"
}

// Link is an interconnection between two ASes, possibly at several cities.
type Link struct {
	ID      int
	A, B    int // AS IDs; for C2P, A is the customer
	Rel     Rel
	Cities  []int // facilities where the two ASes interconnect, ascending
	Private bool  // true for dedicated PNIs, false for public IXP fabric
}

// Other returns the AS on the link that is not asID.
func (l Link) Other(asID int) int {
	if asID == l.A {
		return l.B
	}
	return l.A
}

// RelView is a link relationship from one AS's point of view.
type RelView int

const (
	ViewProvider RelView = iota // the neighbor is my provider
	ViewCustomer                // the neighbor is my customer
	ViewPeer                    // the neighbor is my peer
)

func (v RelView) String() string {
	switch v {
	case ViewProvider:
		return "provider"
	case ViewCustomer:
		return "customer"
	default:
		return "peer"
	}
}

// Neighbor is one adjacency from a given AS's perspective.
type Neighbor struct {
	Link  int // link ID
	Other int // neighbor AS ID
	View  RelView
}

// Prefix is an originated address block with a client population anchored
// at a city (clients of the prefix live in that metro area).
type Prefix struct {
	ID     int
	Origin int     // originating AS ID
	City   int     // anchor city
	Weight float64 // relative traffic/population weight
	// CIDR is the prefix's address block, allocated at creation from the
	// topology's client address pool.
	CIDR inet.Prefix
}

// Topo is a complete AS-level topology.
type Topo struct {
	Catalog  *geo.Catalog
	Graph    *cable.Graph
	ASes     []*AS
	Links    []Link
	Prefixes []Prefix

	alloc *inet.Allocator // client address pool
	fib   inet.Table[int] // CIDR -> prefix ID
}

// clientPrefixBits is the block size every client prefix receives: a /20
// (4096 addresses, sixteen /24s — the granularity the paper's datasets
// aggregate at). Blocks are carved sequentially from 10.0.0.0/8.
const clientPrefixBits = 20

func (t *Topo) allocator() *inet.Allocator {
	if t.alloc == nil {
		t.alloc = inet.NewAllocator(inet.MustParsePrefix("10.0.0.0/8"))
	}
	return t.alloc
}

// PrefixByAddr returns the client prefix containing the address, by
// longest-prefix match over the originated blocks.
func (t *Topo) PrefixByAddr(addr uint32) (Prefix, bool) {
	id, ok := t.fib.Lookup(addr)
	if !ok {
		return Prefix{}, false
	}
	return t.Prefixes[id], true
}

// NumASes returns the number of ASes.
func (t *Topo) NumASes() int { return len(t.ASes) }

// Clone returns a structurally independent snapshot of the topology:
// AddAS, Connect, and AddPrefix on the clone never mutate the original
// (and vice versa), and the two evolve identically given identical calls,
// so "clone then extend" is byte-equivalent to "extend in place". The
// immutable substructures — the city catalog, the physical cable graph,
// and each AS's backbone cable.Network (whose distance memo is
// concurrency-safe) — are shared by pointer, which keeps a clone cheap:
// the cost is one AS-table copy plus the prefix FIB.
func (t *Topo) Clone() *Topo {
	nt := &Topo{
		Catalog:  t.Catalog,
		Graph:    t.Graph,
		ASes:     make([]*AS, len(t.ASes)),
		Links:    append([]Link(nil), t.Links...),
		Prefixes: append([]Prefix(nil), t.Prefixes...),
		fib:      t.fib.Clone(),
	}
	for i, a := range t.ASes {
		cp := *a
		// Cities slices are never mutated after AddAS; the incident-link
		// list grows on Connect and must not alias the original's.
		cp.links = append([]int(nil), a.links...)
		nt.ASes[i] = &cp
	}
	if t.alloc != nil {
		nt.alloc = t.alloc.Clone()
	}
	return nt
}

// AddAS appends a new AS with the given footprint, building its backbone
// network over the physical graph (leasing segments if the footprint
// subgraph is disconnected). It returns the new AS.
func (t *Topo) AddAS(asn int, name string, class Class, region geo.Region,
	cities []int, stretch float64, exit ExitPolicy) (*AS, error) {
	if len(cities) == 0 {
		return nil, fmt.Errorf("topology: AS %s has no footprint", name)
	}
	sorted := append([]int(nil), cities...)
	sort.Ints(sorted)
	sorted = dedupInts(sorted)
	net, err := cable.NetworkFromCities(t.Graph, name, sorted, stretch)
	if err != nil {
		return nil, fmt.Errorf("topology: AS %s: %w", name, err)
	}
	a := &AS{
		ID:     len(t.ASes),
		ASN:    asn,
		Name:   name,
		Class:  class,
		Region: region,
		Cities: sorted,
		Net:    net,
		Exit:   exit,
	}
	t.ASes = append(t.ASes, a)
	return a, nil
}

// AddASWithNetwork appends an AS whose backbone is the given prebuilt
// network (e.g. a content provider's curated WAN) instead of the
// footprint-induced subgraph. Every listed city must be present in the
// network.
func (t *Topo) AddASWithNetwork(asn int, name string, class Class, region geo.Region,
	cities []int, net *cable.Network, exit ExitPolicy) (*AS, error) {
	if len(cities) == 0 {
		return nil, fmt.Errorf("topology: AS %s has no footprint", name)
	}
	sorted := dedupInts(sortedCopy(cities))
	for _, c := range sorted {
		if !net.Present(c) {
			return nil, fmt.Errorf("topology: AS %s city %d not in its network", name, c)
		}
	}
	a := &AS{
		ID:     len(t.ASes),
		ASN:    asn,
		Name:   name,
		Class:  class,
		Region: region,
		Cities: sorted,
		Net:    net,
		Exit:   exit,
	}
	t.ASes = append(t.ASes, a)
	return a, nil
}

func sortedCopy(s []int) []int {
	out := append([]int(nil), s...)
	sort.Ints(out)
	return out
}

// Connect creates a link between two ASes. For C2P, a is the customer.
// Interconnection cities default to the footprint intersection; pass an
// explicit list to restrict them (e.g. PNIs at specific PoPs). At least
// one shared city is required.
func (t *Topo) Connect(a, b int, rel Rel, cities []int, private bool) (Link, error) {
	if a == b {
		return Link{}, fmt.Errorf("topology: AS %d cannot link to itself", a)
	}
	if a < 0 || b < 0 || a >= len(t.ASes) || b >= len(t.ASes) {
		return Link{}, fmt.Errorf("topology: link endpoints out of range (%d,%d)", a, b)
	}
	if cities == nil {
		cities = SharedCities(t.ASes[a], t.ASes[b])
	} else {
		for _, c := range cities {
			if !t.ASes[a].Net.Present(c) || !t.ASes[b].Net.Present(c) {
				return Link{}, fmt.Errorf("topology: link %s-%s at city %d outside a footprint",
					t.ASes[a].Name, t.ASes[b].Name, c)
			}
		}
		cities = dedupInts(append([]int(nil), cities...))
	}
	if len(cities) == 0 {
		return Link{}, fmt.Errorf("topology: ASes %s and %s share no city",
			t.ASes[a].Name, t.ASes[b].Name)
	}
	sort.Ints(cities)
	l := Link{ID: len(t.Links), A: a, B: b, Rel: rel, Cities: cities, Private: private}
	t.Links = append(t.Links, l)
	t.ASes[a].links = append(t.ASes[a].links, l.ID)
	t.ASes[b].links = append(t.ASes[b].links, l.ID)
	return l, nil
}

// Neighbors returns every adjacency of the AS, in link order.
func (t *Topo) Neighbors(asID int) []Neighbor {
	a := t.ASes[asID]
	out := make([]Neighbor, 0, len(a.links))
	for _, lid := range a.links {
		l := t.Links[lid]
		var view RelView
		switch {
		case l.Rel == P2P:
			view = ViewPeer
		case l.A == asID:
			view = ViewProvider // I am the customer; neighbor is my provider
		default:
			view = ViewCustomer
		}
		out = append(out, Neighbor{Link: lid, Other: l.Other(asID), View: view})
	}
	return out
}

// AddPrefix originates a prefix at the AS, anchored at one of its
// footprint cities.
func (t *Topo) AddPrefix(origin, city int, weight float64) (Prefix, error) {
	if origin < 0 || origin >= len(t.ASes) {
		return Prefix{}, fmt.Errorf("topology: prefix origin %d out of range", origin)
	}
	if !t.ASes[origin].Net.Present(city) {
		return Prefix{}, fmt.Errorf("topology: prefix city %d outside AS %s footprint",
			city, t.ASes[origin].Name)
	}
	if weight <= 0 {
		return Prefix{}, fmt.Errorf("topology: prefix weight must be positive")
	}
	cidr, err := t.allocator().Alloc(clientPrefixBits)
	if err != nil {
		return Prefix{}, fmt.Errorf("topology: %w", err)
	}
	p := Prefix{ID: len(t.Prefixes), Origin: origin, City: city, Weight: weight, CIDR: cidr}
	t.Prefixes = append(t.Prefixes, p)
	t.fib.Insert(cidr, p.ID)
	return p, nil
}

// SharedCities returns the footprint intersection of two ASes, ascending.
func SharedCities(a, b *AS) []int {
	var out []int
	i, j := 0, 0
	for i < len(a.Cities) && j < len(b.Cities) {
		switch {
		case a.Cities[i] == b.Cities[j]:
			out = append(out, a.Cities[i])
			i++
			j++
		case a.Cities[i] < b.Cities[j]:
			i++
		default:
			j++
		}
	}
	return out
}

// ByClass returns the IDs of all ASes of the given class, ascending.
func (t *Topo) ByClass(c Class) []int {
	var out []int
	for _, a := range t.ASes {
		if a.Class == c {
			out = append(out, a.ID)
		}
	}
	return out
}

// PrefixesOf returns the prefixes originated by the AS.
func (t *Topo) PrefixesOf(asID int) []Prefix {
	var out []Prefix
	for _, p := range t.Prefixes {
		if p.Origin == asID {
			out = append(out, p)
		}
	}
	return out
}

func dedupInts(sorted []int) []int {
	if len(sorted) == 0 {
		return sorted
	}
	out := sorted[:1]
	for _, v := range sorted[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
