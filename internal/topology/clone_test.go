package topology

import (
	"testing"

	"beatbgp/internal/geo"
)

// TestCloneIndependence: extending a clone must not mutate the original,
// and identical extensions of the clone and the original must produce
// identical results — the property the core build graph's staged
// snapshots rely on.
func TestCloneIndependence(t *testing.T) {
	orig := gen(t, 23)
	nAS, nLinks, nPrefixes := orig.NumASes(), len(orig.Links), len(orig.Prefixes)
	origLinks0 := len(orig.Neighbors(0))

	extend := func(tp *Topo) (asID int, linkID int, p Prefix) {
		ey := tp.ByClass(Eyeball)[0]
		a, err := tp.AddAS(9999, "clone-test", Transit, geo.Europe,
			tp.ASes[ey].Cities, 1.2, EarlyExit)
		if err != nil {
			t.Fatal(err)
		}
		l, err := tp.Connect(ey, a.ID, P2P, nil, false)
		if err != nil {
			t.Fatal(err)
		}
		pf, err := tp.AddPrefix(ey, tp.ASes[ey].Cities[0], 1)
		if err != nil {
			t.Fatal(err)
		}
		return a.ID, l.ID, pf
	}

	cp := orig.Clone()
	asA, linkA, pA := extend(cp)
	if orig.NumASes() != nAS || len(orig.Links) != nLinks || len(orig.Prefixes) != nPrefixes {
		t.Fatal("extending the clone mutated the original's tables")
	}
	if len(orig.Neighbors(0)) != origLinks0 {
		t.Fatal("extending the clone mutated the original's adjacency lists")
	}
	if _, ok := orig.PrefixByAddr(pA.CIDR.Addr); ok {
		t.Fatal("prefix added on the clone is visible in the original's FIB")
	}
	if got, ok := cp.PrefixByAddr(pA.CIDR.Addr); !ok || got.ID != pA.ID {
		t.Fatal("prefix added on the clone missing from its own FIB")
	}

	// Clone-then-extend must equal extend-in-place: same IDs, same CIDR.
	asB, linkB, pB := extend(orig)
	if asA != asB || linkA != linkB || pA != pB {
		t.Fatalf("clone and original diverged under identical extensions: (%d,%d,%v) vs (%d,%d,%v)",
			asA, linkA, pA, asB, linkB, pB)
	}
}
