package topology

import (
	"testing"

	"beatbgp/internal/geo"
)

func gen(t testing.TB, seed uint64) *Topo {
	t.Helper()
	topo, err := Generate(GenConfig{Seed: seed})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return topo
}

func TestGenerateBasicShape(t *testing.T) {
	topo := gen(t, 1)
	t1 := topo.ByClass(Tier1)
	tr := topo.ByClass(Transit)
	ey := topo.ByClass(Eyeball)
	if len(t1) != 8 {
		t.Fatalf("tier1 count = %d, want 8", len(t1))
	}
	if len(tr) < 20 {
		t.Fatalf("transit count = %d, want >= 20", len(tr))
	}
	if len(ey) != 7*20 {
		t.Fatalf("eyeball count = %d, want 140", len(ey))
	}
	if len(topo.Prefixes) < len(ey) {
		t.Fatalf("prefixes %d < eyeballs %d", len(topo.Prefixes), len(ey))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, b := gen(t, 7), gen(t, 7)
	if len(a.ASes) != len(b.ASes) || len(a.Links) != len(b.Links) || len(a.Prefixes) != len(b.Prefixes) {
		t.Fatalf("sizes differ: %d/%d/%d vs %d/%d/%d",
			len(a.ASes), len(a.Links), len(a.Prefixes),
			len(b.ASes), len(b.Links), len(b.Prefixes))
	}
	for i := range a.ASes {
		x, y := a.ASes[i], b.ASes[i]
		if x.Name != y.Name || len(x.Cities) != len(y.Cities) || x.LastMileMs != y.LastMileMs {
			t.Fatalf("AS %d differs: %s vs %s", i, x.Name, y.Name)
		}
		for j := range x.Cities {
			if x.Cities[j] != y.Cities[j] {
				t.Fatalf("AS %s footprint differs", x.Name)
			}
		}
	}
	for i := range a.Links {
		x, y := a.Links[i], b.Links[i]
		if x.A != y.A || x.B != y.B || x.Rel != y.Rel {
			t.Fatalf("link %d differs", i)
		}
	}
	for i := range a.Prefixes {
		x, y := a.Prefixes[i], b.Prefixes[i]
		if x.Origin != y.Origin || x.City != y.City || x.Weight != y.Weight {
			t.Fatalf("prefix %d differs", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := gen(t, 1), gen(t, 2)
	same := len(a.Links) == len(b.Links)
	if same {
		diff := false
		for i := range a.Links {
			if a.Links[i].A != b.Links[i].A || a.Links[i].B != b.Links[i].B {
				diff = true
				break
			}
		}
		same = !diff
	}
	if same {
		t.Fatal("different seeds produced identical link structure")
	}
}

func TestTier1Clique(t *testing.T) {
	topo := gen(t, 3)
	t1 := topo.ByClass(Tier1)
	set := make(map[int]bool)
	for _, id := range t1 {
		set[id] = true
	}
	for _, id := range t1 {
		peers := 0
		for _, nb := range topo.Neighbors(id) {
			if nb.View == ViewPeer && set[nb.Other] {
				peers++
			}
		}
		if peers != len(t1)-1 {
			t.Fatalf("tier1 %d peers with %d of %d others", id, peers, len(t1)-1)
		}
	}
}

func TestHierarchyIsAcyclic(t *testing.T) {
	// Customer->provider edges must form a DAG (no AS is its own indirect
	// provider); the generator builds strictly tiered relationships.
	topo := gen(t, 5)
	state := make([]int, len(topo.ASes)) // 0 unvisited, 1 in-stack, 2 done
	var visit func(int) bool
	visit = func(as int) bool {
		if state[as] == 1 {
			return false
		}
		if state[as] == 2 {
			return true
		}
		state[as] = 1
		for _, nb := range topo.Neighbors(as) {
			if nb.View == ViewProvider { // edge customer -> provider
				if !visit(nb.Other) {
					return false
				}
			}
		}
		state[as] = 2
		return true
	}
	for id := range topo.ASes {
		if !visit(id) {
			t.Fatalf("customer-provider cycle through AS %d", id)
		}
	}
}

func TestEveryEyeballHasProvider(t *testing.T) {
	topo := gen(t, 9)
	for _, id := range topo.ByClass(Eyeball) {
		has := false
		for _, nb := range topo.Neighbors(id) {
			if nb.View == ViewProvider {
				has = true
				break
			}
		}
		if !has {
			t.Fatalf("eyeball %s has no provider", topo.ASes[id].Name)
		}
		if topo.ASes[id].LastMileMs <= 0 {
			t.Fatalf("eyeball %s has no last-mile latency", topo.ASes[id].Name)
		}
	}
}

func TestLinksShareCity(t *testing.T) {
	topo := gen(t, 11)
	for _, l := range topo.Links {
		if len(l.Cities) == 0 {
			t.Fatalf("link %d has no interconnection city", l.ID)
		}
		for _, c := range l.Cities {
			if !topo.ASes[l.A].Net.Present(c) || !topo.ASes[l.B].Net.Present(c) {
				t.Fatalf("link %d interconnects at %d outside a footprint", l.ID, c)
			}
		}
	}
}

func TestPrefixesAnchoredInFootprint(t *testing.T) {
	topo := gen(t, 13)
	for _, p := range topo.Prefixes {
		if !topo.ASes[p.Origin].Net.Present(p.City) {
			t.Fatalf("prefix %d anchored outside origin footprint", p.ID)
		}
		if p.Weight <= 0 {
			t.Fatalf("prefix %d non-positive weight", p.ID)
		}
	}
}

func TestNeighborsViewConsistency(t *testing.T) {
	topo := gen(t, 15)
	for _, l := range topo.Links {
		var viewA, viewB RelView
		for _, nb := range topo.Neighbors(l.A) {
			if nb.Link == l.ID {
				viewA = nb.View
			}
		}
		for _, nb := range topo.Neighbors(l.B) {
			if nb.Link == l.ID {
				viewB = nb.View
			}
		}
		switch l.Rel {
		case P2P:
			if viewA != ViewPeer || viewB != ViewPeer {
				t.Fatalf("p2p link %d views: %v %v", l.ID, viewA, viewB)
			}
		case C2P:
			if viewA != ViewProvider || viewB != ViewCustomer {
				t.Fatalf("c2p link %d views: %v %v", l.ID, viewA, viewB)
			}
		}
	}
}

func TestAddASValidation(t *testing.T) {
	topo := gen(t, 17)
	if _, err := topo.AddAS(9, "empty", Eyeball, geo.Europe, nil, 1.2, EarlyExit); err == nil {
		t.Fatal("empty footprint accepted")
	}
}

func TestConnectValidation(t *testing.T) {
	topo := gen(t, 19)
	if _, err := topo.Connect(0, 0, P2P, nil, false); err == nil {
		t.Fatal("self link accepted")
	}
	if _, err := topo.Connect(-1, 0, P2P, nil, false); err == nil {
		t.Fatal("out-of-range link accepted")
	}
	// Explicit city outside footprint must be rejected.
	a := topo.ByClass(Eyeball)[0]
	b := topo.ByClass(Tier1)[0]
	bad := -1
	for c := 0; c < topo.Catalog.Len(); c++ {
		if !topo.ASes[a].Net.Present(c) {
			bad = c
			break
		}
	}
	if bad >= 0 {
		if _, err := topo.Connect(a, b, P2P, []int{bad}, false); err == nil {
			t.Fatal("interconnect city outside footprint accepted")
		}
	}
}

func TestAddPrefixValidation(t *testing.T) {
	topo := gen(t, 21)
	if _, err := topo.AddPrefix(-1, 0, 1); err == nil {
		t.Fatal("bad origin accepted")
	}
	ey := topo.ByClass(Eyeball)[0]
	outside := -1
	for c := 0; c < topo.Catalog.Len(); c++ {
		if !topo.ASes[ey].Net.Present(c) {
			outside = c
			break
		}
	}
	if outside >= 0 {
		if _, err := topo.AddPrefix(ey, outside, 1); err == nil {
			t.Fatal("prefix outside footprint accepted")
		}
	}
	if _, err := topo.AddPrefix(ey, topo.ASes[ey].Cities[0], 0); err == nil {
		t.Fatal("zero weight accepted")
	}
}

func TestPrefixCIDRs(t *testing.T) {
	topo := gen(t, 25)
	seen := map[uint32]bool{}
	for _, p := range topo.Prefixes {
		if p.CIDR.Bits != 20 {
			t.Fatalf("prefix %d got a /%d, want /20", p.ID, p.CIDR.Bits)
		}
		if seen[p.CIDR.Addr] {
			t.Fatalf("prefix %d reuses block %v", p.ID, p.CIDR)
		}
		seen[p.CIDR.Addr] = true
		// LPM on any address inside the block resolves to the prefix.
		got, ok := topo.PrefixByAddr(p.CIDR.Nth(137))
		if !ok || got.ID != p.ID {
			t.Fatalf("PrefixByAddr inside %v resolved to %v/%v", p.CIDR, got.ID, ok)
		}
	}
	// Addresses outside the pool resolve to nothing.
	if _, ok := topo.PrefixByAddr(0xC0A80001); ok { // 192.168.0.1
		t.Fatal("address outside the client pool resolved")
	}
}

func TestSharedCities(t *testing.T) {
	a := &AS{Cities: []int{1, 3, 5, 7}}
	b := &AS{Cities: []int{2, 3, 4, 7, 9}}
	got := SharedCities(a, b)
	if len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Fatalf("SharedCities = %v, want [3 7]", got)
	}
}

func TestClassAndRelStrings(t *testing.T) {
	if Tier1.String() != "tier1" || Content.String() != "content" {
		t.Fatal("class strings wrong")
	}
	if C2P.String() != "c2p" || P2P.String() != "p2p" {
		t.Fatal("rel strings wrong")
	}
	if ViewPeer.String() != "peer" || LateExit.String() != "late-exit" {
		t.Fatal("view/exit strings wrong")
	}
}

func BenchmarkGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Generate(GenConfig{Seed: uint64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}
