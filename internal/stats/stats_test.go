package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestQuantileUnweighted(t *testing.T) {
	var d Dist
	d.AddAll(1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	if m := d.Median(); m != 5 {
		t.Fatalf("median = %v, want 5", m)
	}
	if q := d.Quantile(0.9); q != 9 {
		t.Fatalf("p90 = %v, want 9", q)
	}
	if q := d.Quantile(0); q != 1 {
		t.Fatalf("p0 = %v, want 1", q)
	}
	if q := d.Quantile(1); q != 10 {
		t.Fatalf("p100 = %v, want 10", q)
	}
}

func TestQuantileWeighted(t *testing.T) {
	var d Dist
	d.Add(1, 1)
	d.Add(100, 99)
	if m := d.Median(); m != 100 {
		t.Fatalf("weighted median = %v, want 100 (99%% of mass)", m)
	}
	if f := d.FracBelow(50); math.Abs(f-0.01) > 1e-12 {
		t.Fatalf("FracBelow(50) = %v, want 0.01", f)
	}
}

func TestEmptyDistIsNaN(t *testing.T) {
	var d Dist
	for _, v := range []float64{d.Median(), d.Mean(), d.Min(), d.Max(), d.FracBelow(0), d.CDF(0)} {
		if !math.IsNaN(v) {
			t.Fatalf("empty dist stat = %v, want NaN", v)
		}
	}
}

func TestIgnoresBadSamples(t *testing.T) {
	var d Dist
	d.Add(5, 0)
	d.Add(5, -1)
	d.Add(math.NaN(), 1)
	d.Add(1, math.NaN())
	if d.N() != 0 {
		t.Fatalf("bad samples were admitted: n=%d", d.N())
	}
}

func TestMeanWeighted(t *testing.T) {
	var d Dist
	d.Add(0, 3)
	d.Add(10, 1)
	if m := d.Mean(); math.Abs(m-2.5) > 1e-12 {
		t.Fatalf("mean = %v, want 2.5", m)
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(vals []float64) bool {
		var d Dist
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				d.Add(v, 1)
			}
		}
		if d.N() == 0 {
			return true
		}
		prev := -1.0
		lo, hi := d.Min()-1, d.Max()+1
		for i := 0; i <= 20; i++ {
			x := lo + (hi-lo)*float64(i)/20
			c := d.CDF(x)
			if c < prev-1e-12 || c < 0 || c > 1 {
				return false
			}
			prev = c
		}
		return math.Abs(d.CDF(d.Max())-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileWithinRangeProperty(t *testing.T) {
	f := func(vals []float64, q float64) bool {
		var d Dist
		for _, v := range vals {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				d.Add(v, 1)
			}
		}
		if d.N() == 0 {
			return true
		}
		q = math.Abs(math.Mod(q, 1))
		v := d.Quantile(q)
		return v >= d.Min() && v <= d.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFracBelowPlusAtLeast(t *testing.T) {
	var d Dist
	d.AddAll(1, 2, 3, 4, 5)
	for _, x := range []float64{0, 2.5, 3, 6} {
		if s := d.FracBelow(x) + d.FracAtLeast(x); math.Abs(s-1) > 1e-12 {
			t.Fatalf("FracBelow+FracAtLeast at %v = %v", x, s)
		}
	}
}

func TestMedianCICoversMedian(t *testing.T) {
	var d Dist
	for i := 0; i < 500; i++ {
		d.Add(float64(i%37), 1)
	}
	lo, hi := d.MedianCI(0.95)
	m := d.Median()
	if !(lo <= m && m <= hi) {
		t.Fatalf("CI [%v, %v] does not cover median %v", lo, hi, m)
	}
	if lo > hi {
		t.Fatalf("inverted CI [%v, %v]", lo, hi)
	}
}

func TestMedianCITinySample(t *testing.T) {
	var d Dist
	d.AddAll(3, 7)
	lo, hi := d.MedianCI(0.95)
	if lo != 3 || hi != 7 {
		t.Fatalf("tiny-sample CI = [%v,%v], want [3,7]", lo, hi)
	}
}

func TestCDFSeries(t *testing.T) {
	var d Dist
	d.AddAll(0, 1, 2, 3, 4, 5, 6, 7, 8, 9)
	s := d.CDFSeries("test", 0, 9, 10)
	if len(s.Points) != 10 {
		t.Fatalf("series has %d points", len(s.Points))
	}
	if s.Points[9].Y != 1 {
		t.Fatalf("CDF at max = %v, want 1", s.Points[9].Y)
	}
	cc := d.CCDFSeries("test", 0, 9, 10)
	for i := range s.Points {
		if math.Abs(s.Points[i].Y+cc.Points[i].Y-1) > 1e-12 {
			t.Fatal("CDF + CCDF != 1")
		}
	}
}

func TestSeriesYAt(t *testing.T) {
	s := Series{Points: []XY{{0, 0}, {10, 1}}}
	if y := s.YAt(5); math.Abs(y-0.5) > 1e-12 {
		t.Fatalf("YAt(5) = %v, want 0.5", y)
	}
	if y := s.YAt(-1); y != 0 {
		t.Fatalf("YAt below domain = %v, want clamp to 0", y)
	}
	if y := s.YAt(20); y != 1 {
		t.Fatalf("YAt above domain = %v, want clamp to 1", y)
	}
	var empty Series
	if !math.IsNaN(empty.YAt(0)) {
		t.Fatal("empty series should yield NaN")
	}
}

func TestSummary(t *testing.T) {
	var d Dist
	for i := 1; i <= 100; i++ {
		d.Add(float64(i), 1)
	}
	s := d.Summarize()
	if s.N != 100 || s.Median != 50 || s.P90 != 90 || s.Min != 1 || s.Max != 100 {
		t.Fatalf("summary wrong: %+v", s)
	}
	if !strings.Contains(s.String(), "n=100") {
		t.Fatal("summary String missing n")
	}
}

func TestTable(t *testing.T) {
	tb := Table{Name: "demo", Columns: []string{"a", "b"}}
	tb.AddRow("x", 1, 2)
	tb.AddRow("w", 3, 4)
	if v, ok := tb.Cell("x", "b"); !ok || v != 2 {
		t.Fatalf("Cell(x,b) = %v,%v", v, ok)
	}
	if _, ok := tb.Cell("x", "zzz"); ok {
		t.Fatal("missing column should not resolve")
	}
	if _, ok := tb.Cell("zzz", "a"); ok {
		t.Fatal("missing row should not resolve")
	}
	tb.SortRowsByLabel()
	if tb.Rows[0].Label != "w" {
		t.Fatal("sort by label failed")
	}
	out := tb.Render()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "3.000") {
		t.Fatalf("render missing content:\n%s", out)
	}
}

func TestTableAddRowRepairsArity(t *testing.T) {
	tb := Table{Columns: []string{"a", "b"}}
	tb.AddRow("extra", 1, 2, 3) // extras dropped
	tb.AddRow("short", 1)       // padded with NaN
	if v, ok := tb.Cell("extra", "b"); !ok || v != 2 {
		t.Fatalf("extra row b = %v %v", v, ok)
	}
	if _, ok := tb.Cell("extra", "c"); ok {
		t.Fatal("dropped cell still addressable")
	}
	if v, ok := tb.Cell("short", "b"); !ok || !math.IsNaN(v) {
		t.Fatalf("short row b = %v, want NaN", v)
	}
}

func TestSeriesRender(t *testing.T) {
	s := Series{Name: "line", XLabel: "ms", YLabel: "frac", Points: []XY{{1, 0.5}}}
	out := s.Render()
	if !strings.Contains(out, "line") || !strings.Contains(out, "0.5") {
		t.Fatalf("render missing content:\n%s", out)
	}
}
