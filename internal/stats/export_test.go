package stats

import (
	"encoding/csv"
	"strings"
	"testing"
)

func TestSeriesWriteCSV(t *testing.T) {
	s := Series{Name: "line", XLabel: "ms", YLabel: "frac",
		Points: []XY{{1, 0.25}, {2, 0.5}}}
	var b strings.Builder
	if err := s.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("%d records, want header + 2", len(recs))
	}
	if recs[0][0] != "ms" || recs[0][1] != "frac" {
		t.Fatalf("header = %v", recs[0])
	}
	if recs[1][0] != "1" || recs[1][1] != "0.25" {
		t.Fatalf("row = %v", recs[1])
	}
}

func TestSeriesWriteCSVDefaultsHeader(t *testing.T) {
	var b strings.Builder
	if err := (Series{Points: []XY{{0, 0}}}).WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(b.String(), "x,y") {
		t.Fatalf("default header missing: %q", b.String())
	}
}

func TestTableWriteCSV(t *testing.T) {
	tb := Table{Name: "demo", Columns: []string{"a", "b"}}
	tb.AddRow("first", 1.5, 2)
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(b.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if recs[0][0] != "row" || recs[0][1] != "a" {
		t.Fatalf("header = %v", recs[0])
	}
	if recs[1][0] != "first" || recs[1][1] != "1.5" || recs[1][2] != "2" {
		t.Fatalf("row = %v", recs[1])
	}
}

func TestPlotBasics(t *testing.T) {
	var d Dist
	for i := 0; i < 100; i++ {
		d.Add(float64(i), 1)
	}
	s := d.CDFSeries("cdf", 0, 99, 50)
	out := s.Plot(40, 8)
	if !strings.Contains(out, "cdf") {
		t.Fatal("plot missing title")
	}
	if !strings.Contains(out, "*") {
		t.Fatal("plot has no marks")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + height rows + x-axis
	if len(lines) != 1+8+1 {
		t.Fatalf("plot has %d lines", len(lines))
	}
	// Monotone CDF: the top row's marks must be to the right of the
	// bottom row's.
	top, bottom := lines[1], lines[8]
	if strings.LastIndex(top, "*") < strings.Index(bottom, "*") {
		t.Fatal("CDF plot not rising left to right")
	}
}

func TestPlotDegenerate(t *testing.T) {
	if out := (Series{Name: "none"}).Plot(20, 5); !strings.Contains(out, "empty") {
		t.Fatalf("empty plot = %q", out)
	}
	// Flat series must not divide by zero.
	flat := Series{Name: "flat", Points: []XY{{0, 1}, {10, 1}}}
	if out := flat.Plot(20, 5); !strings.Contains(out, "*") {
		t.Fatal("flat plot missing marks")
	}
	// Single point.
	one := Series{Name: "one", Points: []XY{{3, 0.5}}}
	if out := one.Plot(20, 5); !strings.Contains(out, "*") {
		t.Fatal("single-point plot missing marks")
	}
	// Tiny dimensions are clamped.
	if out := flat.Plot(1, 1); out == "" {
		t.Fatal("clamped plot empty")
	}
}
