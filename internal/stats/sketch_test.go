package stats

import (
	"math"
	"testing"

	"beatbgp/internal/xrand"
)

// TestSketchQuantileAccuracy: sketch quantiles must track the exact
// (Dist) quantiles within the bucket ratio's relative error on a
// lognormal stream — the latency-shaped distribution it exists to
// digest.
func TestSketchQuantileAccuracy(t *testing.T) {
	rng := xrand.Derive(42, 0x51e7c4)
	sk := NewSketch()
	var d Dist
	for i := 0; i < 50_000; i++ {
		v := rng.LogNormal(2, 0.8) // ms-scale latencies, heavy right tail
		sk.Add(v)
		d.Add(v, 1)
	}
	for _, q := range []float64{0.01, 0.1, 0.5, 0.9, 0.99, 0.999} {
		exact := d.Quantile(q)
		got := sk.Quantile(q)
		if rel := math.Abs(got-exact) / exact; rel > 0.03 {
			t.Errorf("q=%v: sketch %v vs exact %v (rel err %.4f > 3%%)", q, got, exact, rel)
		}
	}
	if math.Abs(sk.Mean()-d.Mean()) > 1e-9*math.Abs(d.Mean()) {
		t.Errorf("mean: sketch %v vs exact %v (mean is exact, not bucketed)", sk.Mean(), d.Mean())
	}
	if sk.Min() != d.Min() || sk.Max() != d.Max() {
		t.Errorf("min/max: sketch (%v,%v) vs exact (%v,%v)", sk.Min(), sk.Max(), d.Min(), d.Max())
	}
}

// TestSketchMergeExact: merging shards must answer exactly like one
// sketch fed the concatenated stream — counts add, nothing resampled.
func TestSketchMergeExact(t *testing.T) {
	rng := xrand.Derive(7, 0x6e46e)
	whole := NewSketch()
	shards := make([]*Sketch, 4)
	for i := range shards {
		shards[i] = NewSketch()
	}
	for i := 0; i < 10_000; i++ {
		v := rng.Exp(12)
		whole.Add(v)
		shards[i%len(shards)].Add(v)
	}
	merged := NewSketch()
	for _, sh := range shards {
		if err := merged.Merge(sh); err != nil {
			t.Fatal(err)
		}
	}
	if merged.N() != whole.N() {
		t.Fatalf("merged N %d != whole N %d", merged.N(), whole.N())
	}
	for q := 0.0; q <= 1.0; q += 0.01 {
		if m, w := merged.Quantile(q), whole.Quantile(q); m != w {
			t.Fatalf("q=%v: merged %v != whole %v", q, m, w)
		}
	}
	// Mean may differ by float summation order across shards; min/max
	// and counts are exact.
	if math.Abs(merged.Mean()-whole.Mean()) > 1e-9*whole.Mean() {
		t.Fatalf("merged mean %v vs whole %v", merged.Mean(), whole.Mean())
	}
	if merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Fatal("merged min/max diverge from whole-stream sketch")
	}
}

// TestSketchOrderInvariant: the estimate is deterministic in the
// multiset — reversing Add order changes nothing.
func TestSketchOrderInvariant(t *testing.T) {
	vals := make([]float64, 5000)
	rng := xrand.Derive(3, 0x04de4)
	for i := range vals {
		vals[i] = rng.Pareto(0.5, 1.5)
	}
	fwd, rev := NewSketch(), NewSketch()
	for _, v := range vals {
		fwd.Add(v)
	}
	for i := len(vals) - 1; i >= 0; i-- {
		rev.Add(vals[i])
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.99, 1} {
		if fwd.Quantile(q) != rev.Quantile(q) {
			t.Fatalf("q=%v order-dependent: %v vs %v", q, fwd.Quantile(q), rev.Quantile(q))
		}
	}
}

// TestSketchEdgeCases: empty, bad inputs, underflow bucket, clamping.
func TestSketchEdgeCases(t *testing.T) {
	sk := NewSketch()
	if !math.IsNaN(sk.Quantile(0.5)) || !math.IsNaN(sk.Mean()) {
		t.Fatal("empty sketch must answer NaN")
	}
	sk.Add(math.NaN())
	sk.Add(math.Inf(1))
	sk.Add(math.Inf(-1))
	if sk.N() != 0 {
		t.Fatalf("NaN/Inf must be ignored, got N=%d", sk.N())
	}
	// Underflow: negatives and sub-resolution values keep rank and are
	// clamped into the observed range.
	sk.Add(-5)
	sk.Add(0)
	sk.Add(1e-9)
	sk.Add(100)
	if sk.N() != 4 {
		t.Fatalf("N = %d, want 4", sk.N())
	}
	if q := sk.Quantile(0.25); q != -5 {
		t.Fatalf("underflow quantile %v, want clamp to observed min -5", q)
	}
	if q := sk.Quantile(1); q != 100 {
		t.Fatalf("q=1 is %v, want observed max 100", q)
	}
	if got := sk.Quantile(0.5); got < -5 || got > 100 {
		t.Fatalf("quantile %v escapes observed range", got)
	}

	if _, err := NewSketchRes(0, 1.02); err == nil {
		t.Fatal("min0=0 must be rejected")
	}
	if _, err := NewSketchRes(1e-3, 1); err == nil {
		t.Fatal("growth=1 must be rejected")
	}
	if _, err := NewSketchRes(1e-3, math.NaN()); err == nil {
		t.Fatal("growth=NaN must be rejected")
	}
	a := NewSketch()
	b, err := NewSketchRes(1e-3, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	b.Add(1)
	if err := a.Merge(b); err == nil {
		t.Fatal("merging mismatched resolutions must fail")
	}
	if err := a.Merge(nil); err != nil {
		t.Fatalf("merging nil must be a no-op, got %v", err)
	}
}

// TestSketchCDFSeries: the exported series is monotone in both axes and
// spans the observed range — ready for the experiment tables.
func TestSketchCDFSeries(t *testing.T) {
	sk := NewSketch()
	rng := xrand.Derive(11, 0xcd5)
	for i := 0; i < 2000; i++ {
		sk.Add(rng.Uniform(1, 50))
	}
	s := sk.CDFSeries("lat", 41)
	if s.Name != "lat" || len(s.Points) != 41 {
		t.Fatalf("series shape: name %q, %d points", s.Name, len(s.Points))
	}
	for i := 1; i < len(s.Points); i++ {
		if s.Points[i].X < s.Points[i-1].X || s.Points[i].Y < s.Points[i-1].Y {
			t.Fatalf("series not monotone at %d: %+v -> %+v", i, s.Points[i-1], s.Points[i])
		}
	}
	if s.Points[0].X != sk.Min() || s.Points[len(s.Points)-1].X != sk.Max() {
		t.Fatalf("series endpoints (%v,%v) don't span observed range (%v,%v)",
			s.Points[0].X, s.Points[len(s.Points)-1].X, sk.Min(), sk.Max())
	}
}
