// Package stats implements the statistical machinery shared by every
// experiment: weighted empirical distributions, quantiles, confidence
// intervals for medians, histograms, and the Series/Table result types
// that the benchmark harness renders.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// WeightedSample is one observation with an associated weight (typically
// bytes of traffic or a population estimate).
type WeightedSample struct {
	Value  float64
	Weight float64
}

// Dist is a weighted empirical distribution. The zero value is an empty
// distribution ready for Add.
type Dist struct {
	samples []WeightedSample
	sorted  bool
	total   float64
}

// Add appends one observation. Non-positive weights are ignored: they carry
// no mass and would otherwise corrupt quantile interpolation.
func (d *Dist) Add(value, weight float64) {
	if weight <= 0 || math.IsNaN(value) || math.IsNaN(weight) {
		return
	}
	d.samples = append(d.samples, WeightedSample{value, weight})
	d.total += weight
	d.sorted = false
}

// AddAll appends value with weight 1 for each value.
func (d *Dist) AddAll(values ...float64) {
	for _, v := range values {
		d.Add(v, 1)
	}
}

// N returns the number of observations.
func (d *Dist) N() int { return len(d.samples) }

// TotalWeight returns the sum of all weights.
func (d *Dist) TotalWeight() float64 { return d.total }

func (d *Dist) ensureSorted() {
	if !d.sorted {
		sort.Slice(d.samples, func(i, j int) bool {
			return d.samples[i].Value < d.samples[j].Value
		})
		d.sorted = true
	}
}

// Quantile returns the weighted q-quantile (0 ≤ q ≤ 1). It returns NaN for
// an empty distribution. The estimator is the standard weighted
// inverse-CDF: the smallest value at which the cumulative weight reaches
// q·total.
func (d *Dist) Quantile(q float64) float64 {
	if len(d.samples) == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q <= 0 {
		d.ensureSorted()
		return d.samples[0].Value
	}
	if q >= 1 {
		d.ensureSorted()
		return d.samples[len(d.samples)-1].Value
	}
	d.ensureSorted()
	target := q * d.total
	acc := 0.0
	for _, s := range d.samples {
		acc += s.Weight
		if acc >= target {
			return s.Value
		}
	}
	return d.samples[len(d.samples)-1].Value
}

// Median returns the weighted median.
func (d *Dist) Median() float64 { return d.Quantile(0.5) }

// Mean returns the weighted mean, or NaN when empty.
func (d *Dist) Mean() float64 {
	if d.total == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, s := range d.samples {
		sum += s.Value * s.Weight
	}
	return sum / d.total
}

// Min returns the smallest observation, or NaN when empty.
func (d *Dist) Min() float64 {
	if len(d.samples) == 0 {
		return math.NaN()
	}
	d.ensureSorted()
	return d.samples[0].Value
}

// Max returns the largest observation, or NaN when empty.
func (d *Dist) Max() float64 {
	if len(d.samples) == 0 {
		return math.NaN()
	}
	d.ensureSorted()
	return d.samples[len(d.samples)-1].Value
}

// FracBelow returns the fraction of total weight with Value < x.
func (d *Dist) FracBelow(x float64) float64 {
	if d.total == 0 {
		return math.NaN()
	}
	d.ensureSorted()
	acc := 0.0
	for _, s := range d.samples {
		if s.Value >= x {
			break
		}
		acc += s.Weight
	}
	return acc / d.total
}

// FracAtLeast returns the fraction of total weight with Value >= x.
func (d *Dist) FracAtLeast(x float64) float64 {
	f := d.FracBelow(x)
	if math.IsNaN(f) {
		return f
	}
	return 1 - f
}

// CDF evaluates the weighted empirical CDF: fraction of weight ≤ x.
func (d *Dist) CDF(x float64) float64 {
	if d.total == 0 {
		return math.NaN()
	}
	d.ensureSorted()
	acc := 0.0
	for _, s := range d.samples {
		if s.Value > x {
			break
		}
		acc += s.Weight
	}
	return acc / d.total
}

// CDFSeries samples the CDF at n evenly spaced points between lo and hi
// (inclusive) and returns them as a plottable series.
func (d *Dist) CDFSeries(name string, lo, hi float64, n int) Series {
	s := Series{Name: name, XLabel: "value", YLabel: "cum. fraction"}
	if n < 2 {
		n = 2
	}
	for i := 0; i < n; i++ {
		x := lo + (hi-lo)*float64(i)/float64(n-1)
		s.Points = append(s.Points, XY{X: x, Y: d.CDF(x)})
	}
	return s
}

// CCDFSeries samples the complementary CDF (fraction of weight > x).
func (d *Dist) CCDFSeries(name string, lo, hi float64, n int) Series {
	s := d.CDFSeries(name, lo, hi, n)
	s.YLabel = "ccdf"
	for i := range s.Points {
		s.Points[i].Y = 1 - s.Points[i].Y
	}
	return s
}

// MedianCI returns a confidence interval for the weighted median at
// roughly the given confidence level (e.g. 0.95), computed by bootstrap
// resampling with a deterministic internal generator. For tiny samples the
// interval degenerates to [min, max].
func (d *Dist) MedianCI(level float64) (lo, hi float64) {
	n := len(d.samples)
	if n == 0 {
		return math.NaN(), math.NaN()
	}
	if n < 5 {
		return d.Min(), d.Max()
	}
	const resamples = 200
	meds := make([]float64, 0, resamples)
	// Deterministic LCG local to the call: CI computation must not consume
	// simulation randomness.
	state := uint64(n)*2654435761 + 0x9e3779b9
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 11
	}
	// Resample indices proportionally to weight using cumulative weights.
	d.ensureSorted()
	cum := make([]float64, n)
	acc := 0.0
	for i, s := range d.samples {
		acc += s.Weight
		cum[i] = acc
	}
	// Each resample draws n uniforms; the resampled median is the k-th
	// smallest drawn value with k = ceil(n/2) (unit weights make the
	// weighted Quantile(0.5) scan stop at the first 1-based rank reaching
	// n/2). The map from a uniform u to its sample value — binary search
	// in cum, then the value at that index of the sorted samples — is
	// monotone non-decreasing, so order statistics commute with it:
	// selecting the k-th smallest u and mapping it once yields exactly
	// the median that materializing, sorting, and scanning the whole
	// resampled distribution would.
	k := (n + 1) / 2
	us := make([]float64, n)
	for r := 0; r < resamples; r++ {
		for i := 0; i < n; i++ {
			us[i] = float64(next()%(1<<52)) / (1 << 52) * acc
		}
		u := selectKth(us, k-1)
		idx := sort.SearchFloat64s(cum, u)
		if idx >= n {
			idx = n - 1
		}
		meds = append(meds, d.samples[idx].Value)
	}
	sort.Float64s(meds)
	alpha := (1 - level) / 2
	loIdx := int(alpha * float64(resamples))
	hiIdx := int((1 - alpha) * float64(resamples))
	if hiIdx >= resamples {
		hiIdx = resamples - 1
	}
	return meds[loIdx], meds[hiIdx]
}

// selectKth returns the k-th smallest element (0-based) of a, reordering
// a in place: Hoare partitioning with a median-of-three pivot, so the
// pseudo-random bootstrap draws select in linear expected time without
// consuming any randomness of their own.
func selectKth(a []float64, k int) float64 {
	lo, hi := 0, len(a)-1
	for lo < hi {
		mid := lo + (hi-lo)/2
		if a[mid] < a[lo] {
			a[mid], a[lo] = a[lo], a[mid]
		}
		if a[hi] < a[lo] {
			a[hi], a[lo] = a[lo], a[hi]
		}
		if a[hi] < a[mid] {
			a[hi], a[mid] = a[mid], a[hi]
		}
		p := a[mid]
		i, j := lo, hi
		for i <= j {
			for a[i] < p {
				i++
			}
			for a[j] > p {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		switch {
		case k <= j:
			hi = j
		case k >= i:
			lo = i
		default:
			return a[k]
		}
	}
	return a[lo]
}

// Summary holds the common descriptive statistics of a distribution.
type Summary struct {
	N      int
	Weight float64
	Mean   float64
	Min    float64
	P10    float64
	P25    float64
	Median float64
	P75    float64
	P90    float64
	P99    float64
	Max    float64
}

// Summarize computes a Summary.
func (d *Dist) Summarize() Summary {
	return Summary{
		N:      d.N(),
		Weight: d.TotalWeight(),
		Mean:   d.Mean(),
		Min:    d.Min(),
		P10:    d.Quantile(0.10),
		P25:    d.Quantile(0.25),
		Median: d.Median(),
		P75:    d.Quantile(0.75),
		P90:    d.Quantile(0.90),
		P99:    d.Quantile(0.99),
		Max:    d.Max(),
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d w=%.0f mean=%.2f p10=%.2f p50=%.2f p90=%.2f p99=%.2f",
		s.N, s.Weight, s.Mean, s.P10, s.Median, s.P90, s.P99)
}
