package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// XY is one point of a plottable series.
type XY struct {
	X, Y float64
}

// Series is a named sequence of points — the programmatic form of one line
// in one of the paper's figures.
type Series struct {
	Name   string
	XLabel string
	YLabel string
	Points []XY
}

// YAt linearly interpolates the series at x. Points must be sorted by X
// (CDFSeries and friends produce sorted series). Outside the domain it
// clamps to the end values; an empty series yields NaN.
func (s Series) YAt(x float64) float64 {
	n := len(s.Points)
	if n == 0 {
		return math.NaN()
	}
	if x <= s.Points[0].X {
		return s.Points[0].Y
	}
	if x >= s.Points[n-1].X {
		return s.Points[n-1].Y
	}
	i := sort.Search(n, func(i int) bool { return s.Points[i].X >= x })
	a, b := s.Points[i-1], s.Points[i]
	if b.X == a.X {
		return b.Y
	}
	t := (x - a.X) / (b.X - a.X)
	return a.Y + t*(b.Y-a.Y)
}

// Render draws the series as aligned two-column text, one row per point.
func (s Series) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s  (%s vs %s)\n", s.Name, s.YLabel, s.XLabel)
	for _, p := range s.Points {
		fmt.Fprintf(&b, "%12.4f %12.4f\n", p.X, p.Y)
	}
	return b.String()
}

// Table is a labelled grid of values — the programmatic form of the
// paper's in-text statistics and of Figure 5's per-country map.
type Table struct {
	Name    string
	Columns []string
	Rows    []Row
}

// Row is one table row.
type Row struct {
	Label string
	Cells []float64
}

// AddRow appends a row. An arity mismatch with Columns is repaired rather
// than fatal: missing cells are padded with NaN (rendered as such, so the
// defect is visible in the output) and extras are dropped.
func (t *Table) AddRow(label string, cells ...float64) {
	if len(cells) > len(t.Columns) {
		cells = cells[:len(t.Columns)]
	}
	for len(cells) < len(t.Columns) {
		cells = append(cells, math.NaN())
	}
	t.Rows = append(t.Rows, Row{Label: label, Cells: cells})
}

// Cell returns the value at (rowLabel, column). The boolean reports
// whether the row and column exist.
func (t *Table) Cell(rowLabel, column string) (float64, bool) {
	col := -1
	for i, c := range t.Columns {
		if c == column {
			col = i
			break
		}
	}
	if col < 0 {
		return 0, false
	}
	for _, r := range t.Rows {
		if r.Label == rowLabel {
			return r.Cells[col], true
		}
	}
	return 0, false
}

// SortRowsByLabel orders rows alphabetically for stable output.
func (t *Table) SortRowsByLabel() {
	sort.Slice(t.Rows, func(i, j int) bool { return t.Rows[i].Label < t.Rows[j].Label })
}

// Render draws the table as aligned text.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", t.Name)
	labelW := len("row")
	for _, r := range t.Rows {
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	colW := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		colW[i] = len(c) + 2
		if colW[i] < 14 {
			colW[i] = 14
		}
	}
	fmt.Fprintf(&b, "%-*s", labelW+2, "row")
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "%*s", colW[i], c)
	}
	b.WriteByte('\n')
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-*s", labelW+2, r.Label)
		for i, v := range r.Cells {
			fmt.Fprintf(&b, "%*.3f", colW[i], v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
