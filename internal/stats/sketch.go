package stats

import (
	"fmt"
	"math"
)

// Sketch is a bounded-memory streaming quantile estimator: geometric
// buckets of ratio growth starting at min0, one uint64 count per bucket.
// It is the online half of the package — Dist keeps every sample for
// exact quantiles, a Sketch keeps O(log(max/min)) counters regardless of
// stream length, so a million-client load run aggregates tail latencies
// without holding a million observations. Quantile error is bounded by
// the bucket ratio (the default 1.02 gives ≤ ~2% relative error), and
// the estimate is deterministic in the multiset of added values: Add
// order and Merge order never change any answer.
//
// A Sketch is not safe for concurrent use; shard one per worker and
// Merge at the end (merging is exact — counts add).
type Sketch struct {
	min0   float64 // lower edge of bucket 0
	growth float64 // bucket edge ratio
	logG   float64 // cached log(growth)

	counts []uint64 // counts[i] covers [min0*growth^i, min0*growth^(i+1))
	low    uint64   // values in (-inf, min0)
	n      uint64
	sum    float64
	min    float64
	max    float64
}

// Default sketch resolution: with values in milliseconds, min0 resolves
// 1µs and 1.02 growth spans 1µs..1h in under 1200 buckets.
const (
	defaultSketchMin0   = 1e-3
	defaultSketchGrowth = 1.02
)

// NewSketch returns a sketch at the default resolution (≤ ~2% relative
// quantile error, smallest resolvable value 1e-3).
func NewSketch() *Sketch { s, _ := NewSketchRes(defaultSketchMin0, defaultSketchGrowth); return s }

// NewSketchRes returns a sketch with bucket 0 starting at min0 and
// bucket edges growing by the given ratio (> 1).
func NewSketchRes(min0, growth float64) (*Sketch, error) {
	if !(min0 > 0) || math.IsInf(min0, 0) {
		return nil, fmt.Errorf("stats: sketch min0 = %v must be finite and positive", min0)
	}
	if !(growth > 1) || math.IsInf(growth, 0) {
		return nil, fmt.Errorf("stats: sketch growth = %v must be finite and > 1", growth)
	}
	return &Sketch{min0: min0, growth: growth, logG: math.Log(growth),
		min: math.Inf(1), max: math.Inf(-1)}, nil
}

// Add records one observation. NaN and ±Inf are ignored (they carry no
// rank); values below min0 (including negatives) land in the underflow
// bucket and report as the observed minimum in quantiles.
func (s *Sketch) Add(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	s.n++
	s.sum += v
	if v < s.min {
		s.min = v
	}
	if v > s.max {
		s.max = v
	}
	if v < s.min0 {
		s.low++
		return
	}
	i := int(math.Log(v/s.min0) / s.logG)
	if i >= len(s.counts) {
		grown := make([]uint64, i+1)
		copy(grown, s.counts)
		s.counts = grown
	}
	s.counts[i]++
}

// N returns the number of recorded observations.
func (s *Sketch) N() uint64 { return s.n }

// Mean returns the exact running mean, or NaN when empty.
func (s *Sketch) Mean() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.sum / float64(s.n)
}

// Min returns the smallest recorded observation, or NaN when empty.
func (s *Sketch) Min() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.min
}

// Max returns the largest recorded observation, or NaN when empty.
func (s *Sketch) Max() float64 {
	if s.n == 0 {
		return math.NaN()
	}
	return s.max
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1): the bucket holding the
// ⌈q·n⌉-th smallest observation answers with its geometric midpoint,
// clamped to the observed [min, max] so the estimate never leaves the
// data's range. Empty sketches and NaN q yield NaN.
func (s *Sketch) Quantile(q float64) float64 {
	if s.n == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q <= 0 {
		return s.min
	}
	if q >= 1 {
		return s.max
	}
	target := uint64(math.Ceil(q * float64(s.n)))
	if target == 0 {
		target = 1
	}
	acc := s.low
	if acc >= target {
		return s.min
	}
	for i, c := range s.counts {
		acc += c
		if acc >= target {
			lo := s.min0 * math.Pow(s.growth, float64(i))
			return s.clamp(lo * math.Sqrt(s.growth))
		}
	}
	return s.max
}

func (s *Sketch) clamp(v float64) float64 {
	if v < s.min {
		return s.min
	}
	if v > s.max {
		return s.max
	}
	return v
}

// Merge folds o into s. Both sketches must share a resolution (min0 and
// growth); merged answers equal a single sketch fed both streams.
func (s *Sketch) Merge(o *Sketch) error {
	if o == nil || o.n == 0 {
		return nil
	}
	if o.min0 != s.min0 || o.growth != s.growth {
		return fmt.Errorf("stats: cannot merge sketches with resolutions (%v,%v) and (%v,%v)",
			s.min0, s.growth, o.min0, o.growth)
	}
	if len(o.counts) > len(s.counts) {
		grown := make([]uint64, len(o.counts))
		copy(grown, s.counts)
		s.counts = grown
	}
	for i, c := range o.counts {
		s.counts[i] += c
	}
	s.low += o.low
	s.n += o.n
	s.sum += o.sum
	if o.min < s.min {
		s.min = o.min
	}
	if o.max > s.max {
		s.max = o.max
	}
	return nil
}

// CDFSeries samples the sketch's estimated CDF at n evenly spaced
// quantiles and returns them as a plottable series — the same Series
// the experiment tables render, so load-run tails drop straight into
// the existing aggregation and Render paths.
func (s *Sketch) CDFSeries(name string, n int) Series {
	out := Series{Name: name, XLabel: "value", YLabel: "cum. fraction"}
	if n < 2 {
		n = 2
	}
	for i := 0; i < n; i++ {
		q := float64(i) / float64(n-1)
		out.Points = append(out.Points, XY{X: s.Quantile(q), Y: q})
	}
	return out
}
