package stats

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// WriteCSV emits the series as a two-column CSV with a header row.
func (s Series) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	x := s.XLabel
	if x == "" {
		x = "x"
	}
	y := s.YLabel
	if y == "" {
		y = "y"
	}
	if err := cw.Write([]string{x, y}); err != nil {
		return err
	}
	for _, p := range s.Points {
		if err := cw.Write([]string{
			strconv.FormatFloat(p.X, 'g', -1, 64),
			strconv.FormatFloat(p.Y, 'g', -1, 64),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV emits the table with a header row ("row" plus the column
// names) and one line per row.
func (t Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"row"}, t.Columns...)
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range t.Rows {
		rec := make([]string, 0, len(r.Cells)+1)
		rec = append(rec, r.Label)
		for _, v := range r.Cells {
			rec = append(rec, strconv.FormatFloat(v, 'g', -1, 64))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Plot draws the series as an ASCII chart of the given dimensions
// (minimum 16x4), suitable for terminal inspection of a CDF/CCDF.
func (s Series) Plot(width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	if len(s.Points) == 0 {
		return fmt.Sprintf("# %s (empty)\n", s.Name)
	}
	minX, maxX := s.Points[0].X, s.Points[0].X
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, p := range s.Points {
		if p.X < minX {
			minX = p.X
		}
		if p.X > maxX {
			maxX = p.X
		}
		if !math.IsNaN(p.Y) {
			if p.Y < minY {
				minY = p.Y
			}
			if p.Y > maxY {
				maxY = p.Y
			}
		}
	}
	if math.IsInf(minY, 1) {
		return fmt.Sprintf("# %s (no finite values)\n", s.Name)
	}
	if maxY == minY {
		maxY = minY + 1
	}
	if maxX == minX {
		maxX = minX + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for col := 0; col < width; col++ {
		x := minX + (maxX-minX)*float64(col)/float64(width-1)
		y := s.YAt(x)
		if math.IsNaN(y) {
			continue
		}
		row := int((maxY - y) / (maxY - minY) * float64(height-1))
		if row < 0 {
			row = 0
		}
		if row >= height {
			row = height - 1
		}
		grid[row][col] = '*'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", s.Name)
	for i, line := range grid {
		label := "        "
		switch i {
		case 0:
			label = fmt.Sprintf("%7.2f ", maxY)
		case height - 1:
			label = fmt.Sprintf("%7.2f ", minY)
		}
		fmt.Fprintf(&b, "%s|%s|\n", label, string(line))
	}
	fmt.Fprintf(&b, "        %-*.4g%*.4g\n", width/2+1, minX, width/2, maxX)
	return b.String()
}
