package stats

import (
	"math"
	"sort"
	"testing"
)

// referenceMedianCI is the pre-optimization bootstrap, kept verbatim as
// the differential reference: it materializes every resampled
// distribution and takes its weighted median. The production MedianCI
// replaces that with an order-statistic selection over the drawn
// uniforms; the two must agree bit for bit because they consume the same
// generator stream and the uniform-to-value map is monotone.
func referenceMedianCI(d *Dist, level float64) (lo, hi float64) {
	n := len(d.samples)
	if n == 0 {
		return math.NaN(), math.NaN()
	}
	if n < 5 {
		return d.Min(), d.Max()
	}
	const resamples = 200
	meds := make([]float64, 0, resamples)
	state := uint64(n)*2654435761 + 0x9e3779b9
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state >> 11
	}
	d.ensureSorted()
	cum := make([]float64, n)
	acc := 0.0
	for i, s := range d.samples {
		acc += s.Weight
		cum[i] = acc
	}
	for r := 0; r < resamples; r++ {
		var re Dist
		for k := 0; k < n; k++ {
			u := float64(next()%(1<<52)) / (1 << 52) * acc
			idx := sort.SearchFloat64s(cum, u)
			if idx >= n {
				idx = n - 1
			}
			re.Add(d.samples[idx].Value, 1)
		}
		meds = append(meds, re.Median())
	}
	sort.Float64s(meds)
	alpha := (1 - level) / 2
	loIdx := int(alpha * float64(resamples))
	hiIdx := int((1 - alpha) * float64(resamples))
	if hiIdx >= resamples {
		hiIdx = resamples - 1
	}
	return meds[loIdx], meds[hiIdx]
}

func TestMedianCIMatchesReference(t *testing.T) {
	// A deterministic value/weight stream independent of the CI's own
	// generator, covering ties, skew, and weighted mass.
	gen := uint64(0x1234_5678_9abc_def0)
	next := func() float64 {
		gen = gen*6364136223846793005 + 1442695040888963407
		return float64(gen>>11) / (1 << 53)
	}
	for _, n := range []int{5, 6, 7, 16, 33, 100, 257, 1000} {
		for _, weighted := range []bool{false, true} {
			for _, level := range []float64{0.90, 0.95, 0.99} {
				var d Dist
				for i := 0; i < n; i++ {
					v := math.Floor(next()*40) * 2.5 // coarse grid forces value ties
					w := 1.0
					if weighted {
						w = 0.25 + 10*next()
					}
					d.Add(v, w)
				}
				wantLo, wantHi := referenceMedianCI(&d, level)
				gotLo, gotHi := d.MedianCI(level)
				if gotLo != wantLo || gotHi != wantHi {
					t.Fatalf("n=%d weighted=%v level=%v: MedianCI=(%v,%v) reference=(%v,%v)",
						n, weighted, level, gotLo, gotHi, wantLo, wantHi)
				}
			}
		}
	}
}

func TestMedianCIDegenerateCases(t *testing.T) {
	var empty Dist
	lo, hi := empty.MedianCI(0.95)
	if !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Fatalf("empty dist: got (%v, %v), want NaNs", lo, hi)
	}
	var tiny Dist
	tiny.AddAll(3, 1, 2)
	lo, hi = tiny.MedianCI(0.95)
	if lo != 1 || hi != 3 {
		t.Fatalf("tiny dist: got (%v, %v), want (1, 3)", lo, hi)
	}
}

func TestSelectKth(t *testing.T) {
	gen := uint64(99)
	next := func() float64 {
		gen = gen*6364136223846793005 + 1442695040888963407
		return float64(gen>>11) / (1 << 53)
	}
	for _, n := range []int{1, 2, 3, 10, 101} {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = math.Floor(next() * 10) // plenty of duplicates
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		for k := 0; k < n; k++ {
			scratch := append([]float64(nil), vals...)
			if got := selectKth(scratch, k); got != sorted[k] {
				t.Fatalf("n=%d k=%d: got %v want %v", n, k, got, sorted[k])
			}
		}
	}
}
