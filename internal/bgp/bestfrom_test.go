package bgp

import (
	"testing"

	"beatbgp/internal/topology"
)

func TestBestFromOriginKeepsOwnRoute(t *testing.T) {
	topo, ids := tinyTopo(t)
	rib, err := Compute(topo, []Announcement{{Origin: ids["EYE1"]}})
	if err != nil {
		t.Fatal(err)
	}
	city := topo.ASes[ids["EYE1"]].Cities[0]
	r := rib.BestFrom(ids["EYE1"], city)
	if !r.Valid || r.Src != SrcOrigin {
		t.Fatalf("origin lost its own route: %+v", r)
	}
}

func TestBestFromRespectsLocalPref(t *testing.T) {
	topo, ids := tinyTopo(t)
	// EYE2 hears EYE3's prefix via the direct peering (peer) and via TRa
	// (provider). Per-ingress selection must still prefer the peering
	// from every city.
	rib, err := Compute(topo, []Announcement{{Origin: ids["EYE3"]}})
	if err != nil {
		t.Fatal(err)
	}
	for _, city := range topo.ASes[ids["EYE2"]].Cities {
		r := rib.BestFrom(ids["EYE2"], city)
		if !r.Valid || r.Src != SrcPeer {
			t.Fatalf("city %d: src = %v, want peer", city, r.Src)
		}
	}
}

func TestBestFromFallsBackWhenNoOffers(t *testing.T) {
	topo, ids := tinyTopo(t)
	// Suppress EYE2's only uplink used for the announcement: TRa hears
	// nothing, but BestFrom on an AS with no offers must return its RIB
	// best (invalid here) rather than panic.
	var link int = -1
	for _, nb := range topo.Neighbors(ids["EYE2"]) {
		if nb.Other == ids["TRa"] {
			link = nb.Link
		}
	}
	rib, err := Compute(topo, []Announcement{{
		Origin:        ids["EYE2"],
		SuppressLinks: map[int]bool{link: true},
	}})
	if err != nil {
		t.Fatal(err)
	}
	city := topo.ASes[ids["TRa"]].Cities[0]
	if r := rib.BestFrom(ids["TRa"], city); r.Valid {
		t.Fatalf("unreachable AS produced a route: %+v", r)
	}
}

func TestBestFromMatchesBestOnGeneratedTopology(t *testing.T) {
	// Per-ingress selection from the AS's home city should usually agree
	// with the converged best route (same preference logic, same anchor).
	topo, err := topology.Generate(topology.GenConfig{Seed: 33, EyeballsPerRegion: 6})
	if err != nil {
		t.Fatal(err)
	}
	oracle := NewOracle(topo)
	agree, total := 0, 0
	for i, p := range topo.Prefixes {
		if i%9 != 0 {
			continue
		}
		rib, err := oracle.ToPrefix(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, as := range topo.ByClass(topology.Eyeball) {
			if as == p.Origin || as%4 != 0 {
				continue
			}
			best := rib.Best(as)
			if !best.Valid {
				continue
			}
			from := rib.BestFrom(as, homeCity(topo, as))
			total++
			if from.Valid && from.Src == best.Src && from.PathLen() == best.PathLen() {
				agree++
			}
		}
	}
	if total < 50 {
		t.Fatalf("only %d comparisons", total)
	}
	if frac := float64(agree) / float64(total); frac < 0.9 {
		t.Fatalf("home-city BestFrom diverges from Best too often: %.2f agreement", frac)
	}
}
