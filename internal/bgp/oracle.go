package bgp

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"beatbgp/internal/par"
	"beatbgp/internal/topology"
)

// Oracle memoizes per-origin RIBs. Routing depends only on the set of
// announcements, so all prefixes originated (plainly) by the same AS share
// one RIB; with hundreds of prefixes per origin this saves most of the
// propagation work in the experiments.
//
// The memo is guarded: ToOrigin/ToPrefix are safe from any number of
// goroutines, and each RIB is a pure function of its origin, so results
// never depend on interleaving. Hot parallel paths should PrimeOrigins
// first so workers find warm, read-only entries instead of racing to
// duplicate the propagation work.
type Oracle struct {
	topo *topology.Topo
	comp Computer

	mu    sync.RWMutex
	plain map[int]*RIB
}

// NewOracle returns an oracle over the topology, backed by the reference
// engine.
func NewOracle(t *topology.Topo) *Oracle {
	return NewOracleWith(t, NewReference(t))
}

// NewOracleWith returns an oracle whose RIBs come from the given engine.
// Engines are interchangeable by contract (bit-identical outputs), so
// this only changes how fast the memo fills, never what it holds.
func NewOracleWith(t *topology.Topo, comp Computer) *Oracle {
	return &Oracle{topo: t, comp: comp, plain: make(map[int]*RIB)}
}

// Topo returns the underlying topology.
func (o *Oracle) Topo() *topology.Topo { return o.topo }

// ToOrigin returns the RIB for a plain (ungroomed, single-origin)
// announcement by the AS, computing it on first use.
func (o *Oracle) ToOrigin(origin int) (*RIB, error) {
	o.mu.RLock()
	rib, ok := o.plain[origin]
	o.mu.RUnlock()
	if ok {
		return rib, nil
	}
	// Compute outside the lock: the RIB is a pure function of the origin,
	// so a racing duplicate computation returns an identical value.
	rib, err := o.comp.Compute([]Announcement{{Origin: origin}})
	if err != nil {
		return nil, err
	}
	o.mu.Lock()
	if prior, ok := o.plain[origin]; ok {
		rib = prior // keep the first-installed pointer stable
	} else {
		o.plain[origin] = rib
	}
	o.mu.Unlock()
	return rib, nil
}

// ToPrefix returns the RIB governing routes toward the prefix.
func (o *Oracle) ToPrefix(p topology.Prefix) (*RIB, error) {
	return o.ToOrigin(p.Origin)
}

// PrimeOrigins computes the RIBs of every listed origin on a bounded
// worker pool (duplicates are computed once) and installs them in the
// memo, so subsequent ToOrigin calls are read-only lookups. Origins
// already resident are skipped.
//
// Error contract, matching core.RunManyParallelContext: a real
// computation failure is returned as-is. When the caller's context is
// cancelled mid-prime, the bare cancellation would mask what was going
// on, so it is annotated — with the first origin that had already failed
// for a real reason if there is one, otherwise with the first origin
// whose RIB never finished.
func (o *Oracle) PrimeOrigins(ctx context.Context, workers int, origins []int) error {
	var missing []int
	seen := make(map[int]bool, len(origins))
	o.mu.RLock()
	for _, origin := range origins {
		if !seen[origin] && o.plain[origin] == nil {
			seen[origin] = true
			missing = append(missing, origin)
		}
	}
	o.mu.RUnlock()
	if len(missing) == 0 {
		return nil
	}
	var failMu sync.Mutex
	failOrigin, failErr := -1, error(nil)
	done := make([]bool, len(missing))
	ribs, err := par.MapCtx(ctx, workers, missing, func(i int, origin int) (*RIB, error) {
		rib, err := o.comp.Compute([]Announcement{{Origin: origin}})
		switch {
		case err == nil:
			done[i] = true
		case !isCtxErr(err):
			failMu.Lock()
			if failErr == nil {
				failOrigin, failErr = origin, err
			}
			failMu.Unlock()
		}
		return rib, err
	})
	if err != nil {
		if isCtxErr(err) {
			// MapCtx has joined every worker, so done/failErr are settled.
			if failErr != nil && !errors.Is(err, failErr) {
				return fmt.Errorf("%w (first failure: origin %d: %v)", err, failOrigin, failErr)
			}
			for i, origin := range missing {
				if !done[i] {
					return fmt.Errorf("%w (first unfinished origin: %d)", err, origin)
				}
			}
		}
		return err
	}
	o.mu.Lock()
	for i, origin := range missing {
		if o.plain[origin] == nil {
			o.plain[origin] = ribs[i]
		}
	}
	o.mu.Unlock()
	return nil
}

// isCtxErr reports whether err is (or wraps) a context cancellation or
// deadline error rather than a routing-computation failure.
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
