package bgp

import (
	"context"
	"sync"

	"beatbgp/internal/par"
	"beatbgp/internal/topology"
)

// Oracle memoizes per-origin RIBs. Routing depends only on the set of
// announcements, so all prefixes originated (plainly) by the same AS share
// one RIB; with hundreds of prefixes per origin this saves most of the
// propagation work in the experiments.
//
// The memo is guarded: ToOrigin/ToPrefix are safe from any number of
// goroutines, and each RIB is a pure function of its origin, so results
// never depend on interleaving. Hot parallel paths should PrimeOrigins
// first so workers find warm, read-only entries instead of racing to
// duplicate the propagation work.
type Oracle struct {
	topo *topology.Topo

	mu    sync.RWMutex
	plain map[int]*RIB
}

// NewOracle returns an oracle over the topology.
func NewOracle(t *topology.Topo) *Oracle {
	return &Oracle{topo: t, plain: make(map[int]*RIB)}
}

// Topo returns the underlying topology.
func (o *Oracle) Topo() *topology.Topo { return o.topo }

// ToOrigin returns the RIB for a plain (ungroomed, single-origin)
// announcement by the AS, computing it on first use.
func (o *Oracle) ToOrigin(origin int) (*RIB, error) {
	o.mu.RLock()
	rib, ok := o.plain[origin]
	o.mu.RUnlock()
	if ok {
		return rib, nil
	}
	// Compute outside the lock: the RIB is a pure function of the origin,
	// so a racing duplicate computation returns an identical value.
	rib, err := Compute(o.topo, []Announcement{{Origin: origin}})
	if err != nil {
		return nil, err
	}
	o.mu.Lock()
	if prior, ok := o.plain[origin]; ok {
		rib = prior // keep the first-installed pointer stable
	} else {
		o.plain[origin] = rib
	}
	o.mu.Unlock()
	return rib, nil
}

// ToPrefix returns the RIB governing routes toward the prefix.
func (o *Oracle) ToPrefix(p topology.Prefix) (*RIB, error) {
	return o.ToOrigin(p.Origin)
}

// PrimeOrigins computes the RIBs of every listed origin on a bounded
// worker pool (duplicates are computed once) and installs them in the
// memo, so subsequent ToOrigin calls are read-only lookups. Origins
// already resident are skipped.
func (o *Oracle) PrimeOrigins(ctx context.Context, workers int, origins []int) error {
	var missing []int
	seen := make(map[int]bool, len(origins))
	o.mu.RLock()
	for _, origin := range origins {
		if !seen[origin] && o.plain[origin] == nil {
			seen[origin] = true
			missing = append(missing, origin)
		}
	}
	o.mu.RUnlock()
	if len(missing) == 0 {
		return nil
	}
	ribs, err := par.MapCtx(ctx, workers, missing, func(_ int, origin int) (*RIB, error) {
		return Compute(o.topo, []Announcement{{Origin: origin}})
	})
	if err != nil {
		return err
	}
	o.mu.Lock()
	for i, origin := range missing {
		if o.plain[origin] == nil {
			o.plain[origin] = ribs[i]
		}
	}
	o.mu.Unlock()
	return nil
}
