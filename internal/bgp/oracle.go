package bgp

import "beatbgp/internal/topology"

// Oracle memoizes per-origin RIBs. Routing depends only on the set of
// announcements, so all prefixes originated (plainly) by the same AS share
// one RIB; with hundreds of prefixes per origin this saves most of the
// propagation work in the experiments.
type Oracle struct {
	topo  *topology.Topo
	plain map[int]*RIB
}

// NewOracle returns an oracle over the topology.
func NewOracle(t *topology.Topo) *Oracle {
	return &Oracle{topo: t, plain: make(map[int]*RIB)}
}

// Topo returns the underlying topology.
func (o *Oracle) Topo() *topology.Topo { return o.topo }

// ToOrigin returns the RIB for a plain (ungroomed, single-origin)
// announcement by the AS, computing it on first use.
func (o *Oracle) ToOrigin(origin int) (*RIB, error) {
	if rib, ok := o.plain[origin]; ok {
		return rib, nil
	}
	rib, err := Compute(o.topo, []Announcement{{Origin: origin}})
	if err != nil {
		return nil, err
	}
	o.plain[origin] = rib
	return rib, nil
}

// ToPrefix returns the RIB governing routes toward the prefix.
func (o *Oracle) ToPrefix(p topology.Prefix) (*RIB, error) {
	return o.ToOrigin(p.Origin)
}
