package bgp

import (
	"math"
	"testing"

	"beatbgp/internal/topology"
)

func TestComputeWithoutReroutes(t *testing.T) {
	topo, ids := tinyTopo(t)
	// EYE2 normally reaches EYE3 over their direct peering; with that
	// link down it must fall back to the transit path via TRa-TRb.
	var peering int = -1
	for _, nb := range topo.Neighbors(ids["EYE2"]) {
		if nb.Other == ids["EYE3"] {
			peering = nb.Link
		}
	}
	if peering < 0 {
		t.Fatal("no EYE2-EYE3 peering")
	}
	rib, err := ComputeWithout(topo, []Announcement{{Origin: ids["EYE3"]}},
		map[int]bool{peering: true})
	if err != nil {
		t.Fatal(err)
	}
	r := rib.Best(ids["EYE2"])
	if !r.Valid {
		t.Fatal("EYE2 lost all connectivity")
	}
	if !eq(pathNames(topo, r), "EYE2", "TRa", "TRb", "EYE3") {
		t.Fatalf("fallback path = %v", pathNames(topo, r))
	}
	for _, l := range r.Links {
		if l == peering {
			t.Fatal("route still uses the failed link")
		}
	}
}

func TestComputeWithoutPartition(t *testing.T) {
	topo, ids := tinyTopo(t)
	// EYE4 is single-homed to TRc; with that link down nothing reaches it.
	var uplink int = -1
	for _, nb := range topo.Neighbors(ids["EYE4"]) {
		if nb.Other == ids["TRc"] {
			uplink = nb.Link
		}
	}
	rib, err := ComputeWithout(topo, []Announcement{{Origin: ids["EYE4"]}},
		map[int]bool{uplink: true})
	if err != nil {
		t.Fatal(err)
	}
	if rib.Best(ids["EYE1"]).Valid {
		t.Fatal("EYE1 still reaches the partitioned origin")
	}
	if !rib.Best(ids["EYE4"]).Valid {
		t.Fatal("the origin itself must keep its own route")
	}
}

func TestOffersRespectDownLinks(t *testing.T) {
	topo, ids := tinyTopo(t)
	var peering int = -1
	for _, nb := range topo.Neighbors(ids["EYE2"]) {
		if nb.Other == ids["EYE3"] {
			peering = nb.Link
		}
	}
	rib, err := ComputeWithout(topo, []Announcement{{Origin: ids["EYE3"]}},
		map[int]bool{peering: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range rib.OffersTo(ids["EYE2"]) {
		if off.Link == peering {
			t.Fatal("offer arrives over a failed link")
		}
	}
	// BestFrom must not resurrect the failed link either.
	city := topo.ASes[ids["EYE2"]].Cities[0]
	r := rib.BestFrom(ids["EYE2"], city)
	if r.Valid && r.Link == peering {
		t.Fatal("BestFrom selected the failed link")
	}
}

func TestConvergenceMinutes(t *testing.T) {
	old := Route{Valid: true, Path: []int{1, 2, 3}, Links: []int{10, 11}}
	nw := Route{Valid: true, Path: []int{1, 4, 5, 3}, Links: []int{20, 21, 22}}
	longer := Route{Valid: true, Path: []int{1, 4, 5, 6, 3}, Links: []int{20, 21, 23, 24}}
	cases := []struct {
		name      string
		old, new  Route
		wantMin   float64
		converges bool
	}{
		{"failover", old, nw, ConvergenceBaseMin + ConvergencePerHopMin*3, true},
		{"longer replacement", old, longer, ConvergenceBaseMin + ConvergencePerHopMin*4, true},
		{"partitioned destination", old, Route{}, 0, false},
		{"nothing lost", Route{}, nw, 0, true},
		{"unchanged route", old, old, 0, true},
		{"same path different link",
			old,
			Route{Valid: true, Path: []int{1, 2, 3}, Links: []int{10, 12}},
			ConvergenceBaseMin + ConvergencePerHopMin*2, true},
		{"zero-length old path", Route{Valid: true}, nw,
			ConvergenceBaseMin + ConvergencePerHopMin*3, true},
		{"zero-length new path clamps", old, Route{Valid: true}, ConvergenceBaseMin, true},
		{"origin single-hop path", old,
			Route{Valid: true, Path: []int{3}},
			ConvergenceBaseMin, true},
		{"both invalid is a partition", Route{}, Route{}, 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, ok := ConvergenceMinutes(tc.old, tc.new)
			if ok != tc.converges {
				t.Fatalf("converges = %v, want %v", ok, tc.converges)
			}
			if m != tc.wantMin {
				t.Fatalf("minutes = %v, want %v", m, tc.wantMin)
			}
			if m < 0 {
				t.Fatalf("negative convergence time %v", m)
			}
		})
	}
}

func TestComputeWithoutRandomFailures(t *testing.T) {
	// Property: under arbitrary link-failure sets, no surviving route
	// uses a failed link, and every surviving route is loop-free.
	topo, err := topology.Generate(topology.GenConfig{Seed: 17, EyeballsPerRegion: 6})
	if err != nil {
		t.Fatal(err)
	}
	origin := topo.ByClass(topology.Eyeball)[5]
	for trial := 0; trial < 12; trial++ {
		down := map[int]bool{}
		// Deterministic pseudo-random failure set.
		x := uint64(trial)*2654435761 + 12345
		for i := 0; i < 25; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			down[int(x>>33)%len(topo.Links)] = true
		}
		rib, err := ComputeWithout(topo, []Announcement{{Origin: origin}}, down)
		if err != nil {
			t.Fatal(err)
		}
		for as := 0; as < topo.NumASes(); as++ {
			r := rib.Best(as)
			if !r.Valid {
				continue
			}
			for _, l := range r.Links {
				if down[l] {
					t.Fatalf("trial %d: route at AS %d uses failed link %d", trial, as, l)
				}
			}
			seen := map[int]bool{}
			for _, hop := range r.Path {
				if seen[hop] {
					t.Fatalf("trial %d: loop in path %v", trial, r.Path)
				}
				seen[hop] = true
			}
			// Offers must not resurrect failed links either.
			for _, off := range rib.OffersTo(as) {
				if down[off.Link] {
					t.Fatalf("trial %d: offer over failed link %d", trial, off.Link)
				}
				for _, l := range off.Route.Links {
					if down[l] {
						t.Fatalf("trial %d: offered route uses failed link %d", trial, l)
					}
				}
			}
		}
	}
}

func TestComputeWithoutMatchesComputeWhenNothingDown(t *testing.T) {
	topo, err := topology.Generate(topology.GenConfig{Seed: 11, EyeballsPerRegion: 6})
	if err != nil {
		t.Fatal(err)
	}
	origin := topo.ByClass(topology.Eyeball)[3]
	a, err := Compute(topo, []Announcement{{Origin: origin}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ComputeWithout(topo, []Announcement{{Origin: origin}}, map[int]bool{})
	if err != nil {
		t.Fatal(err)
	}
	for as := 0; as < topo.NumASes(); as++ {
		ra, rb := a.Best(as), b.Best(as)
		if ra.Valid != rb.Valid || ra.PathLen() != rb.PathLen() || ra.Link != rb.Link {
			t.Fatalf("AS %d differs with empty down set", as)
		}
	}
}

func TestConvergenceModelConfig(t *testing.T) {
	old := Route{Valid: true, Path: []int{1, 2, 3}, Links: []int{10, 11}}
	nw := Route{Valid: true, Path: []int{1, 4, 5, 3}, Links: []int{20, 21, 22}}

	// The zero model is the reference model.
	if m, ok := (ConvergenceModel{}).Minutes(old, nw); !ok || m != ConvergenceBaseMin+3*ConvergencePerHopMin {
		t.Fatalf("zero model = (%v,%v), want default constants", m, ok)
	}
	ref, _ := ConvergenceMinutes(old, nw)
	def, _ := DefaultConvergence.Minutes(old, nw)
	if ref != def {
		t.Fatalf("ConvergenceMinutes %v != DefaultConvergence.Minutes %v", ref, def)
	}

	// Tuned terms change the estimate linearly.
	tuned := ConvergenceModel{BaseMin: 1.5, PerHopMin: 0.25}
	if m, ok := tuned.Minutes(old, nw); !ok || m != 1.5+0.25*3 {
		t.Fatalf("tuned model = (%v,%v)", m, ok)
	}

	// ApplyDefaults completes partial models.
	half := ConvergenceModel{BaseMin: 2}.ApplyDefaults()
	if half.PerHopMin != ConvergencePerHopMin || half.BaseMin != 2 {
		t.Fatalf("ApplyDefaults = %+v", half)
	}

	if ExplorationHops(nw) != 3 || ExplorationHops(Route{Valid: true}) != 0 {
		t.Fatal("ExplorationHops mismatch")
	}

	for _, bad := range []ConvergenceModel{
		{BaseMin: -1, PerHopMin: 0.5},
		{BaseMin: 0.5, PerHopMin: math.NaN()},
		{BaseMin: math.Inf(1), PerHopMin: 0.5},
		{BaseMin: 0.5, PerHopMin: 25 * 60},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("model %+v validated", bad)
		}
	}
	if err := (ConvergenceModel{}).Validate(); err != nil {
		t.Fatalf("zero model rejected: %v", err)
	}
	if err := DefaultConvergence.Validate(); err != nil {
		t.Fatalf("default model rejected: %v", err)
	}
}
