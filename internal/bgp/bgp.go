// Package bgp implements AS-level BGP route computation over a topology:
// valley-free (Gao–Rexford) propagation, the standard decision process
// (local preference by business relationship, then AS-path length, then
// deterministic tie-breaks), AS-path prepending and selective announcement
// for anycast grooming, and multi-origin announcements for anycast
// catchment computation.
//
// The engine computes, for every AS, its best route to a prefix. Alternate
// routes at a given AS — the raw material of the paper's Figure 1 — are
// derived afterwards: each neighbor offers its own best route subject to
// the export rules, exactly as real eBGP sessions would.
package bgp

import (
	"fmt"
	"math"
	"sync"

	"beatbgp/internal/geo"
	"beatbgp/internal/topology"
)

// Source records how a route was learned, in decreasing preference order.
type Source int

// Route sources. Lower values are preferred (higher local preference).
const (
	SrcOrigin Source = iota
	SrcCustomer
	SrcPeer
	SrcProvider
	srcNone
)

func (s Source) String() string {
	switch s {
	case SrcOrigin:
		return "origin"
	case SrcCustomer:
		return "customer"
	case SrcPeer:
		return "peer"
	case SrcProvider:
		return "provider"
	default:
		return "none"
	}
}

// Route is one path to a prefix as seen by a specific AS.
type Route struct {
	Valid   bool
	Src     Source
	Link    int   // link over which the route was learned; -1 at the origin
	NextHop int   // neighbor AS the route was learned from; -1 at the origin
	Path    []int // AS path, self first, origin last (prepends repeat the origin)
	// Links holds the link ID of every AS-level transition along Path, in
	// order. Prepended (repeated) path entries do not consume a link, so
	// len(Links) equals the number of distinct adjacent AS pairs.
	Links []int
}

// PathLen returns the AS-path length, the BGP comparison metric.
func (r Route) PathLen() int { return len(r.Path) }

// Origin returns the originating AS, or -1 for an invalid route.
func (r Route) Origin() int {
	if !r.Valid || len(r.Path) == 0 {
		return -1
	}
	return r.Path[len(r.Path)-1]
}

// Announcement originates a prefix at an AS, with optional grooming knobs.
type Announcement struct {
	Origin  int // AS ID
	Prepend int // extra copies of the origin ASN on the announced path
	// SuppressLinks lists link IDs over which the origin does not announce
	// (selective announcement, a standard anycast grooming technique).
	SuppressLinks map[int]bool
}

// RIB holds the best route of every AS toward one prefix.
type RIB struct {
	topo *topology.Topo
	best []Route
	// down records the failed links this RIB was computed without, so
	// per-ingress re-selection (OffersTo, BestFrom) honors them too.
	down map[int]bool
	// suppressed records origin-side selective-announcement withdrawals,
	// for the same reason.
	suppressed map[int]map[int]bool // origin AS -> suppressed link IDs

	// distMemo caches BestFrom's per-ingress geographic tie-break —
	// srcCity<<32|link -> nearest-interconnect km. The value is a pure
	// function of the topology, so memoization cannot change answers;
	// per-hop re-selection (cdn.forwardRoute) asks for the same few
	// (city, link) pairs across thousands of prefix samples.
	distMu   sync.Mutex
	distMemo map[int64]float64
}

// Best returns the AS's best route (Valid=false when unreachable).
func (r *RIB) Best(asID int) Route { return r.best[asID] }

// localPref maps a relationship view to a route source.
func srcFor(view topology.RelView) Source {
	switch view {
	case topology.ViewCustomer:
		return SrcCustomer
	case topology.ViewPeer:
		return SrcPeer
	default:
		return SrcProvider
	}
}

// homeCity returns the AS's highest-population footprint city within its
// home region (falling back to the global footprint); used for geographic
// tie-breaking, a coarse stand-in for lowest-IGP-cost / hot-potato
// tie-breaks in the real decision process.
func homeCity(t *topology.Topo, asID int) int {
	a := t.ASes[asID]
	best, bestPop := -1, -1.0
	for _, c := range a.Cities {
		city := t.Catalog.City(c)
		if city.Region != a.Region {
			continue
		}
		if city.Pop > bestPop {
			best, bestPop = c, city.Pop
		}
	}
	if best >= 0 {
		return best
	}
	for _, c := range a.Cities {
		if p := t.Catalog.City(c).Pop; p > bestPop {
			best, bestPop = c, p
		}
	}
	return best
}

// nearestInterconnectKm returns the geodesic distance from the AS's home
// city to the closest interconnection city of the link.
func nearestInterconnectKm(t *topology.Topo, asID int, link int) float64 {
	home := t.Catalog.City(homeCity(t, asID)).Loc
	best := math.Inf(1)
	for _, c := range t.Links[link].Cities {
		if d := geo.DistanceKm(home, t.Catalog.City(c).Loc); d < best {
			best = d
		}
	}
	return best
}

// TieDistKm exposes the decision process's geographic tie-break metric —
// the distance from the AS's home city to the nearest interconnection
// city of the link — so alternate engines (internal/matbgp) can
// precompute exactly the values better() would derive on the fly.
func TieDistKm(t *topology.Topo, asID, link int) float64 {
	return nearestInterconnectKm(t, asID, link)
}

// better reports whether candidate a should replace b at the given AS,
// applying the decision process: local preference, then AS-path length,
// then nearest-exit distance, then lowest neighbor ASN.
func better(t *topology.Topo, asID int, a, b Route) bool {
	if !a.Valid {
		return false
	}
	if !b.Valid {
		return true
	}
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	if len(a.Path) != len(b.Path) {
		return len(a.Path) < len(b.Path)
	}
	if a.Link >= 0 && b.Link >= 0 {
		da := nearestInterconnectKm(t, asID, a.Link)
		db := nearestInterconnectKm(t, asID, b.Link)
		if da != db {
			return da < db
		}
	}
	an, bn := -1, -1
	if a.NextHop >= 0 {
		an = t.ASes[a.NextHop].ASN
	}
	if b.NextHop >= 0 {
		bn = t.ASes[b.NextHop].ASN
	}
	return an < bn
}

// Compute runs route propagation for one prefix announced as described.
// Multiple announcements model anycast: every origin announces the same
// prefix and each AS converges on one of them.
func Compute(t *topology.Topo, anns []Announcement) (*RIB, error) {
	return ComputeWithout(t, anns, nil)
}

// ComputeWithout is Compute with a set of failed links excluded from
// propagation — the post-convergence routing state after those links go
// down. Pair it with ConvergenceMinutes to model the transient.
func ComputeWithout(t *topology.Topo, anns []Announcement, downLinks map[int]bool) (*RIB, error) {
	n := t.NumASes()
	rib := &RIB{topo: t, best: make([]Route, n), down: downLinks}
	if len(anns) == 0 {
		return nil, fmt.Errorf("bgp: no announcements")
	}
	down := func(link int) bool { return downLinks != nil && downLinks[link] }

	origins := make(map[int]Announcement, len(anns))
	for _, ann := range anns {
		if ann.Origin < 0 || ann.Origin >= n {
			return nil, fmt.Errorf("bgp: origin %d out of range", ann.Origin)
		}
		if _, dup := origins[ann.Origin]; dup {
			return nil, fmt.Errorf("bgp: duplicate origin %d", ann.Origin)
		}
		origins[ann.Origin] = ann
		if len(ann.SuppressLinks) > 0 {
			if rib.suppressed == nil {
				rib.suppressed = make(map[int]map[int]bool)
			}
			rib.suppressed[ann.Origin] = ann.SuppressLinks
		}
		path := make([]int, 0, ann.Prepend+1)
		for i := 0; i <= ann.Prepend; i++ {
			path = append(path, ann.Origin)
		}
		r := Route{Valid: true, Src: SrcOrigin, Link: -1, NextHop: -1, Path: path}
		if better(t, ann.Origin, r, rib.best[ann.Origin]) {
			rib.best[ann.Origin] = r
		}
	}

	// adopt offers route `cand` (already from the neighbor's perspective
	// rewritten for `to`) and reports whether it improved.
	adopt := func(to int, cand Route) bool {
		cur := rib.best[to]
		if better(t, to, cand, cur) {
			rib.best[to] = cand
			return true
		}
		// Implicit withdraw: a neighbor re-advertising over the same link
		// replaces its previous copy even when preference ties, exactly as
		// a fresh UPDATE on a real session supersedes the prior one. This
		// matters when the neighbor's own best changed only in a tie-break
		// (same source class and length): the adopter's choice is
		// unchanged, but its path suffix must track the neighbor's current
		// route, or downstream paths go stale.
		if cand.Valid && cur.Valid && cand.Src == cur.Src &&
			cand.Link == cur.Link && cand.NextHop == cur.NextHop &&
			len(cand.Path) == len(cur.Path) &&
			(!equalInts(cand.Path, cur.Path) || !equalInts(cand.Links, cur.Links)) {
			rib.best[to] = cand
			return true
		}
		return false
	}
	// extend builds to's candidate route via neighbor nb.
	extend := func(to int, nb topology.Neighbor, from Route) Route {
		path := make([]int, 0, len(from.Path)+1)
		path = append(path, to)
		path = append(path, from.Path...)
		links := make([]int, 0, len(from.Links)+1)
		links = append(links, nb.Link)
		links = append(links, from.Links...)
		return Route{Valid: true, Src: srcFor(nb.View), Link: nb.Link, NextHop: nb.Other, Path: path, Links: links}
	}
	// suppressed reports whether the origin withholds the prefix on link.
	suppressed := func(asID, link int) bool {
		ann, isOrigin := origins[asID]
		return isOrigin && ann.SuppressLinks != nil && ann.SuppressLinks[link]
	}

	// Phase 1 — customer routes flow upward. Iterate to fixpoint in
	// rounds; each round extends paths by one provider hop, so shortest
	// paths settle first. Origin prepending is naturally accounted for
	// because path length includes the padding.
	for changed := true; changed; {
		changed = false
		for as := 0; as < n; as++ {
			r := rib.best[as]
			if !r.Valid || r.Src > SrcCustomer {
				continue
			}
			for _, nb := range t.Neighbors(as) {
				if nb.View != topology.ViewProvider || suppressed(as, nb.Link) || down(nb.Link) || loop(r.Path, nb.Other) {
					continue
				}
				// From the provider's perspective this is a customer route.
				pnb := topology.Neighbor{Link: nb.Link, Other: as, View: topology.ViewCustomer}
				if adopt(nb.Other, extend(nb.Other, pnb, r)) {
					changed = true
				}
			}
		}
	}

	// Phase 2 — peer routes travel exactly one peer hop.
	type peerCand struct {
		to    int
		route Route
	}
	var peerCands []peerCand
	for as := 0; as < n; as++ {
		r := rib.best[as]
		if !r.Valid || r.Src > SrcCustomer {
			continue
		}
		for _, nb := range t.Neighbors(as) {
			if nb.View != topology.ViewPeer || suppressed(as, nb.Link) || down(nb.Link) || loop(r.Path, nb.Other) {
				continue
			}
			pnb := topology.Neighbor{Link: nb.Link, Other: as, View: topology.ViewPeer}
			peerCands = append(peerCands, peerCand{nb.Other, extend(nb.Other, pnb, r)})
		}
	}
	for _, pc := range peerCands {
		adopt(pc.to, pc.route)
	}

	// Phase 3 — provider routes flow downward to customers.
	for changed := true; changed; {
		changed = false
		for as := 0; as < n; as++ {
			r := rib.best[as]
			if !r.Valid {
				continue
			}
			for _, nb := range t.Neighbors(as) {
				if nb.View != topology.ViewCustomer || suppressed(as, nb.Link) || down(nb.Link) || loop(r.Path, nb.Other) {
					continue
				}
				cnb := topology.Neighbor{Link: nb.Link, Other: as, View: topology.ViewProvider}
				if adopt(nb.Other, extend(nb.Other, cnb, r)) {
					changed = true
				}
			}
		}
	}
	return rib, nil
}

// Offer is a route a neighbor would advertise to a given AS — the AS's
// alternates, before its own decision process picks one.
type Offer struct {
	Neighbor int              // neighbor AS ID
	Link     int              // link the offer arrives over
	View     topology.RelView // my view of the neighbor
	Route    Route            // the route as adopted by me (my ASN already prepended)
}

// OffersTo returns every route asID would hear from its neighbors under
// standard export policy: a neighbor exports its best route to me if I am
// its customer, or if the route came from the neighbor's customer cone
// (origin or customer routes). The origin's own announcement suppressions
// are honored by Compute; per-neighbor suppressions at transit ASes are
// not modeled.
func (r *RIB) OffersTo(asID int) []Offer {
	t := r.topo
	var out []Offer
	for _, nb := range t.Neighbors(asID) {
		if r.down != nil && r.down[nb.Link] {
			continue
		}
		if sup := r.suppressed[nb.Other]; sup != nil && sup[nb.Link] {
			// The neighbor originates this prefix but withholds it on
			// this link (selective announcement).
			continue
		}
		nr := r.best[nb.Other]
		if !nr.Valid {
			continue
		}
		// Do not offer a route that already goes through me.
		if loop(nr.Path, asID) {
			continue
		}
		exports := false
		switch nb.View {
		case topology.ViewProvider:
			// Neighbor is my provider: providers export everything to customers.
			exports = true
		case topology.ViewPeer, topology.ViewCustomer:
			// Peers and customers export only their customer-cone routes.
			exports = nr.Src <= SrcCustomer
		}
		if !exports {
			continue
		}
		path := make([]int, 0, len(nr.Path)+1)
		path = append(path, asID)
		path = append(path, nr.Path...)
		links := make([]int, 0, len(nr.Links)+1)
		links = append(links, nb.Link)
		links = append(links, nr.Links...)
		out = append(out, Offer{
			Neighbor: nb.Other,
			Link:     nb.Link,
			View:     nb.View,
			Route:    Route{Valid: true, Src: srcFor(nb.View), Link: nb.Link, NextHop: nb.Other, Path: path, Links: links},
		})
	}
	return out
}

// BestFrom returns the route the AS would use for traffic entering at
// srcCity: the standard decision process, but with the geographic
// tie-break anchored at the traffic's own city instead of the AS's home
// city. This models per-ingress hot potato inside multi-city ASes — the
// mechanism that makes anycast work inside an eyeball network peering
// with a CDN at several locations. Falls back to Best when the AS hears
// no offers (e.g. it is the origin).
func (r *RIB) BestFrom(asID, srcCity int) Route {
	t := r.topo
	best := r.best[asID]
	if best.Valid && best.Src == SrcOrigin {
		return best
	}
	srcLoc := t.Catalog.City(srcCity).Loc
	linkDist := func(link int) float64 {
		key := int64(srcCity)<<32 | int64(link)
		r.distMu.Lock()
		d, ok := r.distMemo[key]
		r.distMu.Unlock()
		if ok {
			return d
		}
		d = math.Inf(1)
		for _, c := range t.Links[link].Cities {
			if v := geo.DistanceKm(srcLoc, t.Catalog.City(c).Loc); v < d {
				d = v
			}
		}
		r.distMu.Lock()
		if r.distMemo == nil {
			r.distMemo = make(map[int64]float64)
		}
		r.distMemo[key] = d
		r.distMu.Unlock()
		return d
	}
	var chosen Route
	chosenDist := math.Inf(1)
	for _, off := range r.OffersTo(asID) {
		cand := off.Route
		cd := linkDist(cand.Link)
		switch {
		case !chosen.Valid:
		case cand.Src != chosen.Src:
			if cand.Src > chosen.Src {
				continue
			}
		case len(cand.Path) != len(chosen.Path):
			if len(cand.Path) > len(chosen.Path) {
				continue
			}
		case cd != chosenDist:
			if cd > chosenDist {
				continue
			}
		default:
			if t.ASes[cand.NextHop].ASN >= t.ASes[chosen.NextHop].ASN {
				continue
			}
		}
		chosen, chosenDist = cand, cd
	}
	if !chosen.Valid {
		return best
	}
	return chosen
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func loop(path []int, asID int) bool {
	for _, p := range path {
		if p == asID {
			return true
		}
	}
	return false
}

// ReachableCount returns how many ASes have a valid route in the RIB.
func (r *RIB) ReachableCount() int {
	n := 0
	for _, b := range r.best {
		if b.Valid {
			n++
		}
	}
	return n
}
