package bgp

import (
	"context"

	"beatbgp/internal/delta"
	"beatbgp/internal/topology"
)

// Computer computes converged routing state for announcement sets. The
// canonical implementation is the recursive reference in this package
// (Compute/ComputeWithout); internal/matbgp provides a batch engine over
// flat arrays that must agree with the reference bit for bit — the
// differential unit and fuzz tests there are the contract. Callers that
// hold a Computer (the oracle, the CDN, the fault studies) are engine
// agnostic: swapping implementations must never change any output.
type Computer interface {
	// Compute returns the converged RIB for the announcement set.
	Compute(anns []Announcement) (*RIB, error)
	// ComputeWithout is Compute with a set of failed links excluded.
	ComputeWithout(anns []Announcement, down map[int]bool) (*RIB, error)
}

// Reference is the Computer backed by the recursive per-prefix
// propagation in this package. It is the differential-testing baseline
// for every other engine.
type Reference struct{ topo *topology.Topo }

// NewReference returns the reference Computer over the topology.
func NewReference(t *topology.Topo) *Reference { return &Reference{topo: t} }

// Compute implements Computer.
func (r *Reference) Compute(anns []Announcement) (*RIB, error) {
	return Compute(r.topo, anns)
}

// ComputeWithout implements Computer.
func (r *Reference) ComputeWithout(anns []Announcement, down map[int]bool) (*RIB, error) {
	return ComputeWithout(r.topo, anns, down)
}

// RouteRepairer carries converged routing state for one announcement set
// across a sequence of topology deltas. Apply transitions to the next
// epoch; RIB materializes the current epoch's routes. The contract is
// bit-identity with the full rebuild: after any Apply sequence, RIB()
// must equal ComputeWithout(anns, cumulative down set) in every query —
// incremental engines may repair only what changed, but never
// approximately.
//
// Concurrency: one RouteRepairer is a single-goroutine object, but
// distinct repairers over one Computer are independent — StartRepair
// may be called concurrently, and chains started in parallel must not
// share mutable workspace (each owns its repair scratch).
type RouteRepairer interface {
	// Apply folds one topology delta into the carried state.
	Apply(d delta.Delta) error
	// RIB returns the converged RIB at the current epoch.
	RIB() (*RIB, error)
}

// ContextRepairer is implemented by RouteRepairers whose Apply can be
// cancelled between internal repair stages. Cancellation is a delivery
// property, never a semantic one: a completed ApplyContext is
// bit-identical to Apply, and a cancelled one returns the context's
// error with the repairer poisoned exactly like any other failed Apply
// (callers discard it and rebuild — the serving layer's deadline path
// depends on this to abandon a stalled chain without corrupting it).
type ContextRepairer interface {
	RouteRepairer
	// ApplyContext is Apply honoring ctx at safe internal boundaries.
	ApplyContext(ctx context.Context, d delta.Delta) error
}

// ApplyContext folds the delta through the repairer, honoring ctx: a
// context-aware repairer checks it between repair stages, anything else
// gets a single check up front. This is the deadline seam the per-epoch
// chains (internal/cdn, internal/serve) thread queries' contexts
// through.
func ApplyContext(ctx context.Context, rep RouteRepairer, d delta.Delta) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if cr, ok := rep.(ContextRepairer); ok {
		return cr.ApplyContext(ctx, d)
	}
	return rep.Apply(d)
}

// IncrementalComputer is implemented by Computers that can repair routes
// across deltas without a full rebuild (internal/matbgp).
type IncrementalComputer interface {
	Computer
	// StartRepair validates the announcement set, computes the initial
	// (no links down) state, and returns a repairer positioned there.
	StartRepair(anns []Announcement) (RouteRepairer, error)
}

// StartRepair opens a repair session on any Computer: incremental
// engines repair in place, everything else (the recursive reference)
// falls back to a full rebuild per epoch — same results, the repair
// speedup is an engine property, not a semantic one.
func StartRepair(c Computer, anns []Announcement) (RouteRepairer, error) {
	if ic, ok := c.(IncrementalComputer); ok {
		return ic.StartRepair(anns)
	}
	r := &rebuildRepairer{c: c, anns: append([]Announcement(nil), anns...)}
	// Validate the announcement set eagerly, like incremental engines do.
	if _, err := r.RIB(); err != nil {
		return nil, err
	}
	return r, nil
}

// rebuildRepairer is the RouteRepairer fallback for engines without
// incremental repair: it tracks the cumulative down set and rebuilds
// from scratch at each epoch, memoizing the current epoch's RIB.
type rebuildRepairer struct {
	c    Computer
	anns []Announcement
	down map[int]bool
	rib  *RIB
}

func (r *rebuildRepairer) Apply(d delta.Delta) error {
	if !d.Empty() {
		r.down = delta.Apply(r.down, d)
		r.rib = nil
	}
	return nil
}

func (r *rebuildRepairer) RIB() (*RIB, error) {
	if r.rib != nil {
		return r.rib, nil
	}
	var down map[int]bool
	if len(r.down) > 0 {
		down = make(map[int]bool, len(r.down))
		for l := range r.down {
			down[l] = true
		}
	}
	rib, err := r.c.ComputeWithout(r.anns, down)
	if err != nil {
		return nil, err
	}
	r.rib = rib
	return rib, nil
}

// NewRIB assembles a RIB from externally computed per-AS best routes; it
// exists for alternate Computer implementations (internal/matbgp), which
// materialize best-route arrays outside this package. best must hold one
// entry per AS of the topology, down and suppressed carry the same
// semantics as the fields ComputeWithout populates.
func NewRIB(t *topology.Topo, best []Route, down map[int]bool, suppressed map[int]map[int]bool) *RIB {
	return &RIB{topo: t, best: best, down: down, suppressed: suppressed}
}
