package bgp

import "beatbgp/internal/topology"

// Computer computes converged routing state for announcement sets. The
// canonical implementation is the recursive reference in this package
// (Compute/ComputeWithout); internal/matbgp provides a batch engine over
// flat arrays that must agree with the reference bit for bit — the
// differential unit and fuzz tests there are the contract. Callers that
// hold a Computer (the oracle, the CDN, the fault studies) are engine
// agnostic: swapping implementations must never change any output.
type Computer interface {
	// Compute returns the converged RIB for the announcement set.
	Compute(anns []Announcement) (*RIB, error)
	// ComputeWithout is Compute with a set of failed links excluded.
	ComputeWithout(anns []Announcement, down map[int]bool) (*RIB, error)
}

// Reference is the Computer backed by the recursive per-prefix
// propagation in this package. It is the differential-testing baseline
// for every other engine.
type Reference struct{ topo *topology.Topo }

// NewReference returns the reference Computer over the topology.
func NewReference(t *topology.Topo) *Reference { return &Reference{topo: t} }

// Compute implements Computer.
func (r *Reference) Compute(anns []Announcement) (*RIB, error) {
	return Compute(r.topo, anns)
}

// ComputeWithout implements Computer.
func (r *Reference) ComputeWithout(anns []Announcement, down map[int]bool) (*RIB, error) {
	return ComputeWithout(r.topo, anns, down)
}

// NewRIB assembles a RIB from externally computed per-AS best routes; it
// exists for alternate Computer implementations (internal/matbgp), which
// materialize best-route arrays outside this package. best must hold one
// entry per AS of the topology, down and suppressed carry the same
// semantics as the fields ComputeWithout populates.
func NewRIB(t *topology.Topo, best []Route, down map[int]bool, suppressed map[int]map[int]bool) *RIB {
	return &RIB{topo: t, best: best, down: down, suppressed: suppressed}
}
