package bgp

// Convergence timing model for failure events. BGP does not fail over
// instantly: after a withdrawal, routers explore progressively longer
// paths, gated by the MRAI advertisement interval, so convergence time
// grows with the AS-level distance the new route spans. The constants
// follow the classic measurements (Labovitz et al.): tens of seconds of
// base detection/processing plus roughly half a minute of path
// exploration per AS hop of the replacement route.

// Convergence model constants, in minutes.
const (
	// ConvergenceBaseMin covers failure detection and local withdrawal
	// processing.
	ConvergenceBaseMin = 0.5
	// ConvergencePerHopMin is the exploration cost per AS hop of the
	// route that replaces the withdrawn one.
	ConvergencePerHopMin = 0.5
)

// ConvergenceMinutes estimates how long an AS that was using oldRoute is
// without connectivity after the failure, before newRoute (the
// post-convergence route) is installed. An invalid newRoute means the
// destination is partitioned: convergence never completes within the
// outage and the caller should treat the whole outage as downtime. An AS
// whose route is unchanged by the failure never saw a withdrawal and
// converges instantly; so does an AS at the origin itself (a zero-hop
// path has nothing to explore).
func ConvergenceMinutes(oldRoute, newRoute Route) (minutes float64, converges bool) {
	if !newRoute.Valid {
		return 0, false
	}
	if !oldRoute.Valid {
		// Nothing was lost; the "new" route is just the current one.
		return 0, true
	}
	if sameRoute(oldRoute, newRoute) {
		// The failure did not touch this AS's path: no withdrawal, no
		// exploration, no blackhole.
		return 0, true
	}
	hops := newRoute.PathLen() - 1
	if hops < 0 {
		// Degenerate zero-length path (hand-built Route); clamp rather
		// than produce negative exploration time.
		hops = 0
	}
	return ConvergenceBaseMin + ConvergencePerHopMin*float64(hops), true
}

// sameRoute reports whether the two valid routes are the same path over
// the same links.
func sameRoute(a, b Route) bool {
	if a.Link != b.Link || len(a.Path) != len(b.Path) || len(a.Links) != len(b.Links) {
		return false
	}
	for i := range a.Path {
		if a.Path[i] != b.Path[i] {
			return false
		}
	}
	for i := range a.Links {
		if a.Links[i] != b.Links[i] {
			return false
		}
	}
	return true
}
