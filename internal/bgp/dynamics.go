package bgp

// Convergence timing model for failure events. BGP does not fail over
// instantly: after a withdrawal, routers explore progressively longer
// paths, gated by the MRAI advertisement interval, so convergence time
// grows with the AS-level distance the new route spans. The constants
// follow the classic measurements (Labovitz et al.): tens of seconds of
// base detection/processing plus roughly half a minute of path
// exploration per AS hop of the replacement route.

// Convergence model constants, in minutes.
const (
	// ConvergenceBaseMin covers failure detection and local withdrawal
	// processing.
	ConvergenceBaseMin = 0.5
	// ConvergencePerHopMin is the exploration cost per AS hop of the
	// route that replaces the withdrawn one.
	ConvergencePerHopMin = 0.5
)

// ConvergenceMinutes estimates how long an AS that was using oldRoute is
// without connectivity after the failure, before newRoute (the
// post-convergence route) is installed. An invalid newRoute means the
// destination is partitioned: convergence never completes within the
// outage and the caller should treat the whole outage as downtime.
func ConvergenceMinutes(oldRoute, newRoute Route) (minutes float64, converges bool) {
	if !newRoute.Valid {
		return 0, false
	}
	if !oldRoute.Valid {
		// Nothing was lost; the "new" route is just the current one.
		return 0, true
	}
	return ConvergenceBaseMin + ConvergencePerHopMin*float64(newRoute.PathLen()-1), true
}
