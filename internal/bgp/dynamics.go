package bgp

import (
	"fmt"
	"math"
)

// Convergence timing model for failure events. BGP does not fail over
// instantly: after a withdrawal, routers explore progressively longer
// paths, gated by the MRAI advertisement interval, so convergence time
// grows with the AS-level distance the new route spans. The default
// constants follow the classic measurements (Labovitz et al.): tens of
// seconds of base detection/processing plus roughly half a minute of path
// exploration per AS hop of the replacement route.
//
// This closed form is the REFERENCE model. The event-driven session layer
// (internal/session) makes both terms emergent — detection from
// hold/keepalive or BFD timers, exploration from MRAI batching — and is
// differentially tested against this model the same way internal/par
// keeps its serial oracle.

// Default convergence model constants, in minutes.
const (
	// ConvergenceBaseMin covers failure detection and local withdrawal
	// processing.
	ConvergenceBaseMin = 0.5
	// ConvergencePerHopMin is the exploration cost per AS hop of the
	// route that replaces the withdrawn one.
	ConvergencePerHopMin = 0.5
)

// ConvergenceModel parameterizes the closed-form convergence estimate.
// The zero value selects the default (Labovitz-calibrated) constants, so
// it can sit inside a larger config without ceremony; explicit fields let
// experiments tune the legacy model through the same surface that tunes
// the timer-driven session layer.
type ConvergenceModel struct {
	// BaseMin is the failure-detection plus local-processing floor paid by
	// every convergence event, in minutes.
	BaseMin float64
	// PerHopMin is the path-exploration cost per AS hop of the replacement
	// route, in minutes.
	PerHopMin float64
}

// DefaultConvergence is the reference model with the classic constants.
var DefaultConvergence = ConvergenceModel{BaseMin: ConvergenceBaseMin, PerHopMin: ConvergencePerHopMin}

// ApplyDefaults fills zero fields with the default constants and returns
// the completed model. Explicit zero is not distinguishable from unset —
// a model with a genuinely free term must use a tiny epsilon instead.
func (m ConvergenceModel) ApplyDefaults() ConvergenceModel {
	if m.BaseMin == 0 {
		m.BaseMin = ConvergenceBaseMin
	}
	if m.PerHopMin == 0 {
		m.PerHopMin = ConvergencePerHopMin
	}
	return m
}

// Validate rejects nonsensical model constants: negative, NaN, or
// infinite terms, or terms beyond a day (a convergence "model" slower
// than any observed outage is a config typo, not a scenario).
func (m ConvergenceModel) Validate() error {
	const dayMin = 24 * 60.0
	for name, v := range map[string]float64{"BaseMin": m.BaseMin, "PerHopMin": m.PerHopMin} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("bgp: convergence %s = %v must be finite and non-negative", name, v)
		}
		if v > dayMin {
			return fmt.Errorf("bgp: convergence %s = %v exceeds a day", name, v)
		}
	}
	return nil
}

// Minutes estimates how long an AS that was using oldRoute is without
// connectivity after the failure, before newRoute (the post-convergence
// route) is installed. An invalid newRoute means the destination is
// partitioned: convergence never completes within the outage and the
// caller should treat the whole outage as downtime. An AS whose route is
// unchanged by the failure never saw a withdrawal and converges
// instantly; so does an AS at the origin itself (a zero-hop path has
// nothing to explore). Zero model fields mean the default constants.
func (m ConvergenceModel) Minutes(oldRoute, newRoute Route) (minutes float64, converges bool) {
	m = m.ApplyDefaults()
	if !newRoute.Valid {
		return 0, false
	}
	if !oldRoute.Valid {
		// Nothing was lost; the "new" route is just the current one.
		return 0, true
	}
	if sameRoute(oldRoute, newRoute) {
		// The failure did not touch this AS's path: no withdrawal, no
		// exploration, no blackhole.
		return 0, true
	}
	return m.BaseMin + m.PerHopMin*float64(ExplorationHops(newRoute)), true
}

// ExplorationHops returns the AS-hop count the exploration term scales
// with: the replacement route's path length minus the origin itself,
// clamped at zero for degenerate hand-built routes. Exposed so the
// session layer's emergent model quantizes exploration over the same hop
// count the closed form charges for.
func ExplorationHops(newRoute Route) int {
	hops := newRoute.PathLen() - 1
	if hops < 0 {
		hops = 0
	}
	return hops
}

// ConvergenceMinutes is DefaultConvergence.Minutes: the reference
// closed-form estimate with the classic constants.
func ConvergenceMinutes(oldRoute, newRoute Route) (minutes float64, converges bool) {
	return DefaultConvergence.Minutes(oldRoute, newRoute)
}

// sameRoute reports whether the two valid routes are the same path over
// the same links.
func sameRoute(a, b Route) bool {
	if a.Link != b.Link || len(a.Path) != len(b.Path) || len(a.Links) != len(b.Links) {
		return false
	}
	for i := range a.Path {
		if a.Path[i] != b.Path[i] {
			return false
		}
	}
	for i := range a.Links {
		if a.Links[i] != b.Links[i] {
			return false
		}
	}
	return true
}
