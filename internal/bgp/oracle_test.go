package bgp

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// fakeComputer scripts per-origin outcomes for PrimeOrigins tests.
type fakeComputer struct {
	mu sync.Mutex
	fn func(origin int) (*RIB, error)
}

func (f *fakeComputer) Compute(anns []Announcement) (*RIB, error) {
	f.mu.Lock()
	fn := f.fn
	f.mu.Unlock()
	return fn(anns[0].Origin)
}

func (f *fakeComputer) ComputeWithout(anns []Announcement, down map[int]bool) (*RIB, error) {
	return f.Compute(anns)
}

// TestPrimeOriginsAnnotatesUnfinishedOnCancel: a cancellation with no
// underlying failure names the first origin whose RIB never finished,
// instead of returning an anonymous "context canceled".
func TestPrimeOriginsAnnotatesUnfinishedOnCancel(t *testing.T) {
	comp := &fakeComputer{fn: func(origin int) (*RIB, error) {
		t.Fatalf("computer should not run under a pre-cancelled context")
		return nil, nil
	}}
	o := NewOracleWith(nil, comp)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := o.PrimeOrigins(ctx, 2, []int{7, 8, 9})
	if err == nil {
		t.Fatal("want error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error should still be a cancellation: %v", err)
	}
	if !strings.Contains(err.Error(), "first unfinished origin: 7") {
		t.Fatalf("cancellation does not name the first unfinished origin: %v", err)
	}
}

// TestPrimeOriginsAnnotatesFirstFailure locks the drain contract shared
// with core.RunManyParallelContext: when the context is cancelled after
// some origin already failed for a real reason, the cancellation error
// must carry that first failure instead of masking it.
func TestPrimeOriginsAnnotatesFirstFailure(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	boom := fmt.Errorf("disk melted")
	comp := &fakeComputer{fn: func(origin int) (*RIB, error) {
		if origin == 1 {
			// The culprit: fail for a real reason, then cancel the
			// campaign, inducing a cancellation at the innocent origin.
			cancel()
			return nil, boom
		}
		<-ctx.Done() // the innocent origin blocks until the drain
		return nil, ctx.Err()
	}}
	o := NewOracleWith(nil, comp)
	err := o.PrimeOrigins(ctx, 2, []int{0, 1})
	if err == nil {
		t.Fatal("want error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("lowest-index error should still be a cancellation: %v", err)
	}
	if !strings.Contains(err.Error(), "first failure: origin 1") || !strings.Contains(err.Error(), "disk melted") {
		t.Fatalf("cancellation error does not name the first failure: %v", err)
	}
}

// TestPrimeOriginsRealErrorUnwrapped: a plain computation failure (no
// cancellation anywhere) surfaces as-is, lowest index first.
func TestPrimeOriginsRealErrorUnwrapped(t *testing.T) {
	boom := fmt.Errorf("bad origin")
	comp := &fakeComputer{fn: func(origin int) (*RIB, error) {
		if origin == 3 {
			return nil, boom
		}
		return &RIB{}, nil
	}}
	o := NewOracleWith(nil, comp)
	err := o.PrimeOrigins(context.Background(), 1, []int{2, 3, 4})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("want the computation error, got %v", err)
	}
	if strings.Contains(err.Error(), "first failure") || strings.Contains(err.Error(), "unfinished") {
		t.Fatalf("real failures must not get cancellation annotations: %v", err)
	}
}
