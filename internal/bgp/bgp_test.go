package bgp

import (
	"testing"

	"beatbgp/internal/cable"
	"beatbgp/internal/geo"
	"beatbgp/internal/topology"
)

// tinyTopo builds a small hand-wired hierarchy for exact assertions:
//
//	     T1a ---- T1b        (tier-1 peer clique)
//	    /    \       \
//	  TRa     TRb     TRc    (transits; TRa-TRb peer)
//	  /  \      \      \
//	EYE1  EYE2   EYE3   EYE4 (eyeballs; EYE2-EYE3 peer)
//
// All ASes are placed in big hub cities so every pair that needs a link
// shares a city.
func tinyTopo(t *testing.T) (*topology.Topo, map[string]int) {
	t.Helper()
	catalog := geo.World()
	graph, err := cable.WorldGraph(catalog)
	if err != nil {
		t.Fatal(err)
	}
	topo := &topology.Topo{Catalog: catalog, Graph: graph}
	city := func(name string) int {
		c, ok := catalog.ByName(name)
		if !ok {
			t.Fatalf("city %s", name)
		}
		return c.ID
	}
	hub := []int{city("NewYork"), city("London"), city("Frankfurt"), city("Tokyo")}
	ids := map[string]int{}
	add := func(name string, class topology.Class, cities []int) {
		a, err := topo.AddAS(len(ids)+1, name, class, geo.NorthAmerica, cities, 1.1, topology.EarlyExit)
		if err != nil {
			t.Fatal(err)
		}
		ids[name] = a.ID
	}
	add("T1a", topology.Tier1, hub)
	add("T1b", topology.Tier1, hub)
	add("TRa", topology.Transit, hub)
	add("TRb", topology.Transit, hub)
	add("TRc", topology.Transit, hub)
	add("EYE1", topology.Eyeball, hub[:2])
	add("EYE2", topology.Eyeball, hub[:2])
	add("EYE3", topology.Eyeball, hub[:2])
	add("EYE4", topology.Eyeball, hub[:2])
	conn := func(a, b string, rel topology.Rel) {
		if _, err := topo.Connect(ids[a], ids[b], rel, nil, false); err != nil {
			t.Fatal(err)
		}
	}
	conn("T1a", "T1b", topology.P2P)
	conn("TRa", "T1a", topology.C2P)
	conn("TRb", "T1a", topology.C2P)
	conn("TRc", "T1b", topology.C2P)
	conn("TRa", "TRb", topology.P2P)
	conn("EYE1", "TRa", topology.C2P)
	conn("EYE2", "TRa", topology.C2P)
	conn("EYE3", "TRb", topology.C2P)
	conn("EYE4", "TRc", topology.C2P)
	conn("EYE2", "EYE3", topology.P2P)
	return topo, ids
}

func route(t *testing.T, topo *topology.Topo, anns []Announcement, as int) Route {
	t.Helper()
	rib, err := Compute(topo, anns)
	if err != nil {
		t.Fatal(err)
	}
	return rib.Best(as)
}

func pathNames(topo *topology.Topo, r Route) []string {
	var out []string
	for _, id := range r.Path {
		out = append(out, topo.ASes[id].Name)
	}
	return out
}

func eq(a []string, b ...string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestCustomerRoutePreferred(t *testing.T) {
	topo, ids := tinyTopo(t)
	// TRa's route to EYE1 must be the direct customer route.
	r := route(t, topo, []Announcement{{Origin: ids["EYE1"]}}, ids["TRa"])
	if !r.Valid || r.Src != SrcCustomer {
		t.Fatalf("TRa->EYE1 = %+v, want customer route", r)
	}
	if !eq(pathNames(topo, r), "TRa", "EYE1") {
		t.Fatalf("path = %v", pathNames(topo, r))
	}
}

func TestPeerPreferredOverProvider(t *testing.T) {
	topo, ids := tinyTopo(t)
	// EYE2's route to EYE3: the direct peering (2 hops) must beat the
	// transit path EYE2-TRa-TRb-EYE3.
	r := route(t, topo, []Announcement{{Origin: ids["EYE3"]}}, ids["EYE2"])
	if r.Src != SrcPeer {
		t.Fatalf("EYE2->EYE3 src = %v, want peer", r.Src)
	}
	if !eq(pathNames(topo, r), "EYE2", "EYE3") {
		t.Fatalf("path = %v", pathNames(topo, r))
	}
	// TRa's route to EYE3: via its peer TRb (customer route of TRb),
	// not up through T1a.
	r = route(t, topo, []Announcement{{Origin: ids["EYE3"]}}, ids["TRa"])
	if r.Src != SrcPeer || !eq(pathNames(topo, r), "TRa", "TRb", "EYE3") {
		t.Fatalf("TRa->EYE3 = %v src=%v", pathNames(topo, r), r.Src)
	}
}

func TestProviderRouteWhenNoOther(t *testing.T) {
	topo, ids := tinyTopo(t)
	// EYE1 reaches EYE4 only via providers: EYE1-TRa-T1a-T1b-TRc-EYE4.
	r := route(t, topo, []Announcement{{Origin: ids["EYE4"]}}, ids["EYE1"])
	if r.Src != SrcProvider {
		t.Fatalf("src = %v, want provider", r.Src)
	}
	if !eq(pathNames(topo, r), "EYE1", "TRa", "T1a", "T1b", "TRc", "EYE4") {
		t.Fatalf("path = %v", pathNames(topo, r))
	}
}

func TestNoValley(t *testing.T) {
	topo, ids := tinyTopo(t)
	// EYE4's route to EYE2 must NOT use the EYE2-EYE3 peering as a valley
	// (EYE3 would have to export a peer route to its provider TRb).
	r := route(t, topo, []Announcement{{Origin: ids["EYE2"]}}, ids["EYE4"])
	names := pathNames(topo, r)
	for _, nm := range names {
		if nm == "EYE3" {
			t.Fatalf("valley through EYE3: %v", names)
		}
	}
}

func TestPrependingShiftsChoice(t *testing.T) {
	topo, ids := tinyTopo(t)
	// EYE3 reaches EYE2 via the direct peering (len 2) normally. With the
	// origin prepending 3 extra hops, the peering path (len 5) loses to...
	// nothing shorter exists via transit (len 4 provider) — but local
	// preference keeps peer above provider regardless of length. So
	// instead verify prepending lengthens the chosen path.
	plain := route(t, topo, []Announcement{{Origin: ids["EYE2"]}}, ids["EYE3"])
	prep := route(t, topo, []Announcement{{Origin: ids["EYE2"], Prepend: 3}}, ids["EYE3"])
	if prep.PathLen() != plain.PathLen()+3 {
		t.Fatalf("prepend: len %d vs %d", prep.PathLen(), plain.PathLen())
	}
	// Within the same preference class prepending does change selection:
	// TRa hears EYE1's customer route at len 2; with prepending TRa's
	// path grows accordingly.
	prep2 := route(t, topo, []Announcement{{Origin: ids["EYE1"], Prepend: 2}}, ids["TRa"])
	if prep2.PathLen() != 4 {
		t.Fatalf("prepended customer path len = %d, want 4", prep2.PathLen())
	}
}

func TestSuppressLinks(t *testing.T) {
	topo, ids := tinyTopo(t)
	// Find EYE2's link to TRa and suppress it: EYE2 then reachable only
	// via the EYE2-EYE3 peering, so TRa must route via TRb-EYE3? No —
	// EYE3 does not export its peer route to TRb (valley-free), so TRa
	// loses reachability entirely.
	var link int = -1
	for _, nb := range topo.Neighbors(ids["EYE2"]) {
		if nb.Other == ids["TRa"] {
			link = nb.Link
		}
	}
	if link < 0 {
		t.Fatal("no EYE2-TRa link")
	}
	rib, err := Compute(topo, []Announcement{{
		Origin:        ids["EYE2"],
		SuppressLinks: map[int]bool{link: true},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if rib.Best(ids["TRa"]).Valid {
		t.Fatalf("TRa still reaches suppressed EYE2: %v", pathNames(topo, rib.Best(ids["TRa"])))
	}
	if !rib.Best(ids["EYE3"]).Valid {
		t.Fatal("EYE3 lost its peer route")
	}
}

func TestAnycastPicksNearerOrigin(t *testing.T) {
	topo, ids := tinyTopo(t)
	// Anycast from EYE1 (under TRa) and EYE4 (under TRc): EYE2 should
	// reach the EYE1 instance (3 AS hops via TRa) rather than EYE4
	// (5 hops via the tier-1s).
	rib, err := Compute(topo, []Announcement{{Origin: ids["EYE1"]}, {Origin: ids["EYE4"]}})
	if err != nil {
		t.Fatal(err)
	}
	r := rib.Best(ids["EYE2"])
	if r.Origin() != ids["EYE1"] {
		t.Fatalf("EYE2 caught by %s, want EYE1", topo.ASes[r.Origin()].Name)
	}
	// Both origins keep themselves.
	if rib.Best(ids["EYE4"]).Origin() != ids["EYE4"] {
		t.Fatal("origin EYE4 does not prefer itself")
	}
}

func TestOffersRespectExportPolicy(t *testing.T) {
	topo, ids := tinyTopo(t)
	rib, err := Compute(topo, []Announcement{{Origin: ids["EYE4"]}})
	if err != nil {
		t.Fatal(err)
	}
	// EYE3's peer EYE2 must not offer its provider route to EYE4.
	for _, off := range rib.OffersTo(ids["EYE3"]) {
		if off.Neighbor == ids["EYE2"] {
			t.Fatalf("EYE2 offered a provider route across the peering: %+v", off)
		}
	}
	// EYE3's provider TRb must offer (providers export everything).
	found := false
	for _, off := range rib.OffersTo(ids["EYE3"]) {
		if off.Neighbor == ids["TRb"] {
			found = true
			if off.Route.Path[0] != ids["EYE3"] {
				t.Fatalf("offer path must start at the receiving AS: %v", off.Route.Path)
			}
		}
	}
	if !found {
		t.Fatal("provider TRb made no offer")
	}
}

func TestComputeErrors(t *testing.T) {
	topo, _ := tinyTopo(t)
	if _, err := Compute(topo, nil); err == nil {
		t.Fatal("no announcements accepted")
	}
	if _, err := Compute(topo, []Announcement{{Origin: -1}}); err == nil {
		t.Fatal("bad origin accepted")
	}
	if _, err := Compute(topo, []Announcement{{Origin: 0}, {Origin: 0}}); err == nil {
		t.Fatal("duplicate origin accepted")
	}
}

// relOf returns the relationship from a to b, if any link exists.
func relOf(topo *topology.Topo, a, b int) (topology.RelView, bool) {
	for _, nb := range topo.Neighbors(a) {
		if nb.Other == b {
			return nb.View, true
		}
	}
	return 0, false
}

func TestGeneratedTopologyRoutesAreValleyFreeAndLoopFree(t *testing.T) {
	topo, err := topology.Generate(topology.GenConfig{Seed: 42, EyeballsPerRegion: 8})
	if err != nil {
		t.Fatal(err)
	}
	oracle := NewOracle(topo)
	checked := 0
	for _, p := range topo.Prefixes {
		if p.ID%7 != 0 { // sample for speed
			continue
		}
		rib, err := oracle.ToPrefix(p)
		if err != nil {
			t.Fatal(err)
		}
		for as := 0; as < topo.NumASes(); as++ {
			r := rib.Best(as)
			if !r.Valid {
				continue
			}
			checked++
			seen := map[int]bool{}
			for _, hop := range r.Path {
				if seen[hop] {
					t.Fatalf("loop in path %v", r.Path)
				}
				seen[hop] = true
			}
			// Valley-free along traffic direction (self -> origin):
			// after a peer hop or a down hop (provider->customer), no
			// further up or peer hops may occur.
			descended := false
			for i := 0; i+1 < len(r.Path); i++ {
				view, ok := relOf(topo, r.Path[i], r.Path[i+1])
				if !ok {
					t.Fatalf("non-adjacent hop %d-%d in path", r.Path[i], r.Path[i+1])
				}
				switch view {
				case topology.ViewProvider: // going up
					if descended {
						t.Fatalf("valley in path %v", r.Path)
					}
				case topology.ViewPeer, topology.ViewCustomer:
					descended = true
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no routes checked")
	}
}

func TestGeneratedTopologyFullReachability(t *testing.T) {
	topo, err := topology.Generate(topology.GenConfig{Seed: 7, EyeballsPerRegion: 6})
	if err != nil {
		t.Fatal(err)
	}
	oracle := NewOracle(topo)
	// Every AS must reach every sampled prefix: the hierarchy guarantees
	// global transit.
	for i, p := range topo.Prefixes {
		if i%11 != 0 {
			continue
		}
		rib, err := oracle.ToPrefix(p)
		if err != nil {
			t.Fatal(err)
		}
		if got := rib.ReachableCount(); got != topo.NumASes() {
			t.Fatalf("prefix %d reachable from %d of %d ASes", p.ID, got, topo.NumASes())
		}
	}
}

func TestOracleCaches(t *testing.T) {
	topo, _ := tinyTopo(t)
	o := NewOracle(topo)
	r1, err := o.ToOrigin(0)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := o.ToOrigin(0)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Fatal("oracle did not cache")
	}
}

func BenchmarkComputeGenerated(b *testing.B) {
	topo, err := topology.Generate(topology.GenConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	origin := topo.ByClass(topology.Eyeball)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compute(topo, []Announcement{{Origin: origin}}); err != nil {
			b.Fatal(err)
		}
	}
}
