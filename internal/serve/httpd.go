package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
)

// Encode is the single JSON encoder for every answer, library or HTTP:
// deterministic field order (struct-driven), no indentation, one
// trailing newline. The byte-identity tests compare daemon responses
// against Encode of the library answer, so handlers must write exactly
// these bytes.
func Encode(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// ErrorResp is the JSON shape of every failed query.
type ErrorResp struct {
	Error string `json:"error"`
}

// Handler returns the daemon's HTTP surface:
//
//	GET  /world                          world shape + content key
//	GET  /catchment?prefix=N[&epoch=E]   anycast catchment (default: live cursor)
//	GET  /latency?prefix=N[&t=MIN]       BGP-preferred vs best alternate (default t: cursor epoch start)
//	POST /whatif                         WhatIfReq body: deltas + nested query
//	GET  /epoch                          read the live epoch cursor
//	POST /epoch                          {"advance":N} or {"set":E} moves it
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/world", func(w http.ResponseWriter, r *http.Request) {
		if !wantMethod(w, r, http.MethodGet) {
			return
		}
		writeAnswer(w, s.AnswerWorld(), nil)
	})
	mux.HandleFunc("/catchment", func(w http.ResponseWriter, r *http.Request) {
		if !wantMethod(w, r, http.MethodGet) {
			return
		}
		prefix, err := intParam(r, "prefix", -1)
		if err == nil && prefix < 0 {
			err = badQuery("prefix parameter is required")
		}
		epoch := -1
		if err == nil {
			epoch, err = intParam(r, "epoch", -1)
		}
		if err != nil {
			writeAnswer(w, nil, err)
			return
		}
		resp, err := s.AnswerCatchment(prefix, epoch)
		writeAnswer(w, resp, err)
	})
	mux.HandleFunc("/latency", func(w http.ResponseWriter, r *http.Request) {
		if !wantMethod(w, r, http.MethodGet) {
			return
		}
		prefix, err := intParam(r, "prefix", -1)
		if err == nil && prefix < 0 {
			err = badQuery("prefix parameter is required")
		}
		var t float64
		if err == nil {
			t, err = floatParam(r, "t", s.w.Epochs.Epoch(s.CurrentEpoch()).Start)
		}
		if err != nil {
			writeAnswer(w, nil, err)
			return
		}
		resp, aerr := s.AnswerLatency(prefix, t)
		writeAnswer(w, resp, aerr)
	})
	mux.HandleFunc("/whatif", func(w http.ResponseWriter, r *http.Request) {
		if !wantMethod(w, r, http.MethodPost) {
			return
		}
		var req WhatIfReq
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeAnswer(w, nil, badQuery("body: %v", err))
			return
		}
		resp, err := s.AnswerWhatIf(req)
		writeAnswer(w, resp, err)
	})
	mux.HandleFunc("/epoch", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			resp, err := s.AnswerEpoch(0, nil)
			writeAnswer(w, resp, err)
		case http.MethodPost:
			var req struct {
				Advance int  `json:"advance"`
				Set     *int `json:"set"`
			}
			if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
				writeAnswer(w, nil, badQuery("body: %v", err))
				return
			}
			resp, err := s.AnswerEpoch(req.Advance, req.Set)
			writeAnswer(w, resp, err)
		default:
			w.Header().Set("Allow", "GET, POST")
			writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		}
	})
	return mux
}

func wantMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method == method {
		return true
	}
	w.Header().Set("Allow", method)
	writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
	return false
}

func intParam(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, badQuery("%s=%q is not an integer", name, v)
	}
	return n, nil
}

func floatParam(r *http.Request, name string, def float64) (float64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, badQuery("%s=%q is not a number", name, v)
	}
	return f, nil
}

// writeAnswer writes the Encode bytes of the answer, or the mapped
// error: ErrBadQuery → 400, anything else → 500.
func writeAnswer(w http.ResponseWriter, v any, err error) {
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, ErrBadQuery) {
			code = http.StatusBadRequest
		}
		writeError(w, code, err)
		return
	}
	b, err := Encode(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

func writeError(w http.ResponseWriter, code int, err error) {
	b, merr := Encode(ErrorResp{Error: err.Error()})
	if merr != nil {
		http.Error(w, err.Error(), code)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(b)
}

// httpState is the listener half of a Server, created by Start.
type httpState struct {
	hs *http.Server
	ln net.Listener
}

// Start listens on addr (e.g. "127.0.0.1:8379", ":0" for an ephemeral
// port) and serves the query surface in the background until Shutdown.
// It returns the bound address.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	hs := &http.Server{Handler: s.Handler()}
	s.httpMu.Lock()
	if s.http != nil {
		s.httpMu.Unlock()
		ln.Close()
		return nil, fmt.Errorf("serve: Start called twice (Shutdown first)")
	}
	s.http = &httpState{hs: hs, ln: ln}
	s.httpMu.Unlock()
	go hs.Serve(ln)
	return ln.Addr(), nil
}

// Shutdown gracefully drains the listener started by Start: no new
// connections are accepted, in-flight requests run to completion until
// ctx expires, then the rest are cut. Safe to call without Start (a
// no-op) and at most once per Start.
func (s *Server) Shutdown(ctx context.Context) error {
	s.httpMu.Lock()
	st := s.http
	s.http = nil
	s.httpMu.Unlock()
	if st == nil {
		return nil
	}
	return st.hs.Shutdown(ctx)
}
