package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"time"

	"beatbgp/internal/serve/chaos"
)

// Encode is the single JSON encoder for every answer, library or HTTP:
// deterministic field order (struct-driven), no indentation, one
// trailing newline. The byte-identity tests compare daemon responses
// against Encode of the library answer, so handlers must write exactly
// these bytes.
func Encode(v any) ([]byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// ErrorResp is the JSON shape of every failed query.
type ErrorResp struct {
	Error string `json:"error"`
}

// HealthResp is the JSON shape of the liveness/readiness probes.
type HealthResp struct {
	Query  string `json:"query"`
	Status string `json:"status"`
}

const (
	// maxBodyBytes bounds POST bodies; larger requests are rejected
	// with 400 before the decoder buffers them.
	maxBodyBytes = 1 << 20

	// readHeaderTimeout/idleTimeout guard the listener against
	// slowloris-style connection squatting: a client gets 5s to
	// produce its request header and idle keep-alives are cut after
	// 2 minutes.
	readHeaderTimeout = 5 * time.Second
	idleTimeout       = 2 * time.Minute
)

// validEndpoints enumerates the query surface for unknown-path errors.
const validEndpoints = "GET /world, GET /catchment, GET /latency, POST /whatif, GET|POST /epoch, GET /healthz, GET /readyz"

// Handler returns the daemon's HTTP surface:
//
//	GET  /world                          world shape + content key
//	GET  /catchment?prefix=N[&epoch=E]   anycast catchment (default: live cursor)
//	GET  /latency?prefix=N[&t=MIN]       BGP-preferred vs best alternate (default t: cursor epoch start)
//	POST /whatif                         WhatIfReq body: deltas + nested query
//	GET  /epoch                          read the live epoch cursor
//	POST /epoch                          {"advance":N} or {"set":E} moves it
//	GET  /healthz                        liveness: 200 while the process serves
//	GET  /readyz                         readiness: 200, or 503 once draining
//
// Failed queries map by error class: ErrBadQuery → 400, ErrOverload →
// 429 (Retry-After: 1), ErrUnavailable → 503 (Retry-After: 1),
// ErrDeadline → 504, anything else → 500. Query handlers run under the
// request's context, so client disconnects and the server's per-query
// deadline propagate into the repair chains.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/world", func(w http.ResponseWriter, r *http.Request) {
		if !wantMethod(w, r, http.MethodGet) {
			return
		}
		writeAnswer(w, s.AnswerWorld(), nil)
	})
	mux.HandleFunc("/catchment", func(w http.ResponseWriter, r *http.Request) {
		if !wantMethod(w, r, http.MethodGet) {
			return
		}
		prefix, err := intParam(r, "prefix", -1)
		if err == nil && prefix < 0 {
			err = badQuery("prefix parameter is required (valid prefixes: [0,%d))", len(s.w.Topo.Prefixes))
		}
		epoch := -1
		if err == nil {
			epoch, err = intParam(r, "epoch", -1)
		}
		if err != nil {
			writeAnswer(w, nil, err)
			return
		}
		resp, err := s.AnswerCatchmentContext(r.Context(), prefix, epoch)
		writeAnswer(w, resp, err)
	})
	mux.HandleFunc("/latency", func(w http.ResponseWriter, r *http.Request) {
		if !wantMethod(w, r, http.MethodGet) {
			return
		}
		prefix, err := intParam(r, "prefix", -1)
		if err == nil && prefix < 0 {
			err = badQuery("prefix parameter is required (valid prefixes: [0,%d))", len(s.w.Topo.Prefixes))
		}
		var t float64
		if err == nil {
			t, err = floatParam(r, "t", s.w.Epochs.Epoch(s.CurrentEpoch()).Start)
		}
		if err != nil {
			writeAnswer(w, nil, err)
			return
		}
		resp, aerr := s.AnswerLatencyContext(r.Context(), prefix, t)
		writeAnswer(w, resp, aerr)
	})
	mux.HandleFunc("/whatif", func(w http.ResponseWriter, r *http.Request) {
		if !wantMethod(w, r, http.MethodPost) {
			return
		}
		var req WhatIfReq
		if err := decodeBody(w, r, &req); err != nil {
			writeAnswer(w, nil, err)
			return
		}
		resp, err := s.AnswerWhatIfContext(r.Context(), req)
		writeAnswer(w, resp, err)
	})
	mux.HandleFunc("/epoch", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			resp, err := s.AnswerEpoch(0, nil)
			writeAnswer(w, resp, err)
		case http.MethodPost:
			var req struct {
				Advance int  `json:"advance"`
				Set     *int `json:"set"`
			}
			if err := decodeBody(w, r, &req); err != nil {
				writeAnswer(w, nil, err)
				return
			}
			resp, err := s.AnswerEpoch(req.Advance, req.Set)
			writeAnswer(w, resp, err)
		default:
			w.Header().Set("Allow", "GET, POST")
			writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if !wantMethod(w, r, http.MethodGet) {
			return
		}
		writeAnswer(w, HealthResp{Query: "healthz", Status: "ok"}, nil)
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if !wantMethod(w, r, http.MethodGet) {
			return
		}
		if s.draining.Load() {
			writeHealth(w, http.StatusServiceUnavailable, HealthResp{Query: "readyz", Status: "draining"})
			return
		}
		writeAnswer(w, HealthResp{Query: "readyz", Status: "ready"}, nil)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("unknown path %q (valid queries: %s)", r.URL.Path, validEndpoints))
	})
	return s.withChaos(mux)
}

// withChaos injects the configured transport latency in front of the
// mux — the HTTP half of the chaos seam (the library half lives in
// LoadTarget). Probes are exempt: operators watching a chaotic soak
// still need crisp health answers.
func (s *Server) withChaos(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if inj := s.chaosInj.Load(); inj != nil && r.URL.Path != "/healthz" && r.URL.Path != "/readyz" {
			if d := inj.QueryDelay(); d > 0 {
				if err := chaos.Sleep(r.Context(), d); err != nil {
					return // client gone; nothing to write to
				}
			}
		}
		next.ServeHTTP(w, r)
	})
}

// decodeBody decodes a bounded, strict JSON body: at most maxBodyBytes,
// unknown fields rejected, trailing garbage rejected — all as
// ErrBadQuery so they map to 400, never 500.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			return badQuery("body exceeds %d bytes", int64(maxBodyBytes))
		}
		return badQuery("body: %v", err)
	}
	if dec.More() {
		return badQuery("body: trailing data after JSON value")
	}
	return nil
}

func wantMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method == method {
		return true
	}
	w.Header().Set("Allow", method)
	writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed", r.Method))
	return false
}

func intParam(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, badQuery("%s=%q is not an integer", name, v)
	}
	return n, nil
}

func floatParam(r *http.Request, name string, def float64) (float64, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, badQuery("%s=%q is not a number", name, v)
	}
	return f, nil
}

// errStatus maps an answer error to its HTTP status. Bare context
// errors (a cancelled singleflight wait that escaped untyped) count as
// deadline hits.
func errStatus(err error) int {
	switch {
	case errors.Is(err, ErrBadQuery):
		return http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrOverload):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrUnavailable):
		return http.StatusServiceUnavailable
	case errors.Is(err, ErrDeadline):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// writeAnswer writes the Encode bytes of the answer, or the mapped
// error (see Handler's class table). Shed and unavailable responses
// carry Retry-After: the condition is transient by construction.
func writeAnswer(w http.ResponseWriter, v any, err error) {
	if err != nil {
		code := errStatus(err)
		if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, code, err)
		return
	}
	b, err := Encode(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(b)
}

func writeError(w http.ResponseWriter, code int, err error) {
	b, merr := Encode(ErrorResp{Error: err.Error()})
	if merr != nil {
		http.Error(w, err.Error(), code)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(b)
}

// writeHealth writes a probe response with a non-200 status but the
// standard Encode bytes.
func writeHealth(w http.ResponseWriter, code int, v HealthResp) {
	b, err := Encode(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(b)
}

// httpState is the listener half of a Server, created by Start.
type httpState struct {
	hs *http.Server
	ln net.Listener
}

// Start listens on addr (e.g. "127.0.0.1:8379", ":0" for an ephemeral
// port) and serves the query surface in the background until Shutdown.
// It returns the bound address. The listener carries slowloris guards
// (ReadHeaderTimeout, IdleTimeout); per-query time belongs to
// Options.QueryTimeout, so request read/write deadlines stay off.
func (s *Server) Start(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: readHeaderTimeout,
		IdleTimeout:       idleTimeout,
	}
	s.httpMu.Lock()
	if s.http != nil {
		s.httpMu.Unlock()
		ln.Close()
		return nil, fmt.Errorf("serve: Start called twice (Shutdown first)")
	}
	s.http = &httpState{hs: hs, ln: ln}
	s.httpMu.Unlock()
	s.draining.Store(false)
	go hs.Serve(ln)
	return ln.Addr(), nil
}

// StartDrain flips /readyz to 503 so load balancers stop routing here
// while in-flight and newly arriving queries still complete — the
// grace phase in front of Shutdown. Idempotent; Start resets it.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Draining reports whether the server is in its drain phase.
func (s *Server) Draining() bool { return s.draining.Load() }

// Shutdown gracefully drains the listener started by Start: readiness
// flips to draining, no new connections are accepted, in-flight
// requests run to completion until ctx expires, then the rest are cut.
// Safe to call without Start (a no-op) and at most once per Start.
func (s *Server) Shutdown(ctx context.Context) error {
	s.StartDrain()
	s.httpMu.Lock()
	st := s.http
	s.http = nil
	s.httpMu.Unlock()
	if st == nil {
		return nil
	}
	return st.hs.Shutdown(ctx)
}
