package serve

import (
	"context"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"beatbgp/internal/core"
	"beatbgp/internal/loadgen"
	"beatbgp/internal/serve/chaos"
)

// TestStressServeOverload is the overload soak (`make stress-serve`,
// race-enabled): a flash-crowd loadgen fleet drives a live listener far
// past its admission capacity while chaos stalls and errors hit the
// repair chains. Graceful degradation means every refusal is typed —
// 429 from the gate, 503/504 from broken or slow chains, never a
// transport-level failure — the p99 of admitted queries stays bounded
// by the deadline, fallback answers are explicitly marked degraded,
// and the daemon returns to its pre-soak goroutine count afterwards.
func TestStressServeOverload(t *testing.T) {
	if os.Getenv("STRESS_SERVE") == "" {
		t.Skip("set STRESS_SERVE=1 (or run `make stress-serve`) for the overload soak")
	}
	before := runtime.NumGoroutine()

	s, err := core.NewScenario(core.Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	w, err := s.Freeze()
	if err != nil {
		t.Fatal(err)
	}

	// The gate is sized well below the fleet's worker count (64) so the
	// flash crowd saturates it even when the race detector slows the
	// whole process down — the soak's point is the shedding behavior,
	// not the absolute capacity.
	const queryTimeout = 250 * time.Millisecond
	srv := New(w, WithAdmission(4, 4), WithQueryTimeout(queryTimeout))
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr.String()

	// Warm the anycast chain and a spread of origin chains at epoch 0 so
	// the chaos phase has installed epochs to fall back on — the same
	// "last good answer" an operator would have after any healthy uptime.
	client := benchClient()
	nP := len(w.Topo.Prefixes)
	for p := 0; p < nP; p += 7 {
		if _, err := benchGet(client, base+"/catchment?prefix="+strconv.Itoa(p)); err != nil {
			t.Fatal(err)
		}
		if _, err := benchGet(client, base+"/latency?prefix="+strconv.Itoa(p)+"&t=0"); err != nil {
			t.Fatal(err)
		}
	}

	// Chaos: a quarter of repair attempts fail outright, a tenth stall
	// for 100ms against the 250ms query deadline.
	srv.SetChaos(mustChaos(t, chaos.Config{
		Seed:       42,
		RepairErrP: 0.25,
		StallP:     0.10,
		StallMs:    100,
	}))

	third := nP / 3
	cfg := loadgen.Config{
		Seed:        42,
		Clients:     1_000_000,
		SessionRate: 1e-4, // ~100 arrivals/tick at base rate
		Ticks:       300,
		TickWall:    2 * time.Millisecond,
		Regions: []loadgen.Region{
			{Name: "na", Weight: 2, PrefixLo: 0, PrefixHi: third, Phase: 0},
			{Name: "eu", Weight: 1, PrefixLo: third, PrefixHi: 2 * third, Phase: 0.33},
			{Name: "apac", Weight: 1, PrefixLo: 2 * third, PrefixHi: nP, Phase: 0.66},
		},
		Bursts:        []loadgen.Burst{{Region: -1, Start: 100, End: 200, Mult: 5}},
		DiurnalAmp:    0.3,
		CatchmentFrac: 0.3,
		Workers:       64,
		Buffer:        256,
		Deadline:      time.Second,
		MaxOffered:    60_000,
	}
	rep, err := loadgen.Run(context.Background(), cfg, &loadgen.HTTPTarget{Base: base, Client: client})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("soak: %s", rep.String())
	t.Logf("soak OK tail: p50 %.2fms p99 %.2fms p99.9 %.2fms shed %.1f%% degraded %d",
		rep.OKP50Ms, rep.OKP99Ms, rep.OKP999Ms, rep.ShedPct(), rep.Degraded)

	// The gate actually shed under the flash crowd, with typed 429s.
	if rep.Shed() == 0 {
		t.Errorf("flash crowd at 5x never tripped the admission gate: %s", rep.String())
	}
	// Some admitted work completed, and some answers were degraded
	// fallbacks — explicitly marked, with a quarter of repairs failing.
	if rep.OK() == 0 {
		t.Errorf("no query succeeded during the soak: %s", rep.String())
	}
	if rep.Degraded == 0 {
		t.Errorf("chaos repair errors produced no marked-degraded fallbacks: %s", rep.String())
	}
	// Every refusal is typed: no transport-level failures, no untyped
	// statuses. 400s are legitimately unresolvable prefixes.
	for code := range rep.Codes {
		switch code {
		case 200, 400, 429, 503, 504:
		default:
			t.Errorf("untyped status %d (%d queries): %s", code, rep.Codes[code], rep.String())
		}
	}
	// The tail of admitted-and-served queries stays bounded by the
	// serving deadline — overload pushes excess into 429s, not into an
	// unbounded served tail.
	boundMs := 2 * float64(queryTimeout/time.Millisecond)
	if rep.OKP99Ms > boundMs {
		t.Errorf("admitted p99 %.1fms exceeds %.0fms bound: %s", rep.OKP99Ms, boundMs, rep.String())
	}

	// Drain and verify the goroutine count recovers: no leaked workers,
	// timers, or stuck repair chains.
	client.CloseIdleConnections()
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+5 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak after soak: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}
