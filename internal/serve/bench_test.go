package serve

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"beatbgp/internal/core"
	"beatbgp/internal/loadgen"
)

// The serve benchmarks run against the seed world (Config{Seed: 42}
// at default scale) — the same world beatbgpd serves with no flags —
// built and frozen once per test binary.
var (
	benchOnce sync.Once
	benchW    *core.World
	benchErr  error
)

func benchWorld(b *testing.B) *core.World {
	b.Helper()
	benchOnce.Do(func() {
		s, err := core.NewScenario(core.Config{Seed: 42})
		if err != nil {
			benchErr = err
			return
		}
		benchW, benchErr = s.Freeze()
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchW
}

// benchClient is an HTTP client that keeps enough idle connections for
// RunParallel's client goroutines to reuse sockets instead of churning
// through ephemeral ports.
func benchClient() *http.Client {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConns = 256
	tr.MaxIdleConnsPerHost = 256
	return &http.Client{Transport: tr}
}

func benchGet(client *http.Client, url string) (int, error) {
	resp, err := client.Get(url)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// BenchmarkServeLatencyQuery measures sustained daemon throughput on
// the latency query: parallel HTTP clients rotating over a warmed set
// of (prefix, instant) queries. One op is one full HTTP round trip, so
// queries/s = 1e9 / ns/op; the custom metric reports it directly (the
// acceptance floor is 1k queries/s on the seed world).
func BenchmarkServeLatencyQuery(b *testing.B) {
	w := benchWorld(b)
	srv := New(w)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	base := "http://" + addr.String()
	client := benchClient()

	// Warm a rotation of queries: spread over prefixes and epoch starts,
	// keeping the ones that resolve (clients with no resolvable egress
	// answer 400 and are not throughput). Warming pays each origin
	// chain's first repair outside the timed region, so the benchmark
	// reads steady-state serving cost.
	nEpochs := w.Epochs.Len()
	if nEpochs > 4 {
		nEpochs = 4
	}
	var urls []string
	for i := 0; i < 64; i++ {
		p := (i * 131) % len(w.Topo.Prefixes)
		t := w.Epochs.Epoch(i % nEpochs).Start
		u := fmt.Sprintf("%s/latency?prefix=%d&t=%g", base, p, t)
		code, err := benchGet(client, u)
		if err != nil {
			b.Fatal(err)
		}
		if code == http.StatusOK {
			urls = append(urls, u)
		}
	}
	if len(urls) == 0 {
		b.Fatal("no resolvable latency queries on the seed world")
	}

	b.ResetTimer()
	var ctr atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			u := urls[int(ctr.Add(1))%len(urls)]
			code, err := benchGet(client, u)
			if err != nil {
				b.Error(err)
				return
			}
			if code != http.StatusOK {
				b.Errorf("%s: status %d", u, code)
				return
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}

// BenchmarkServeOverload measures serving under deliberate overload:
// the loadgen fleet offers arrivals as fast as it can generate them
// (no tick pacing) through the library target, so worker concurrency
// lands on the admission gate directly — no loopback-HTTP noise — and
// the gate stays saturated, shedding part of the offered load with
// typed 429s. One op is one offered session. Beyond ns/op, the
// benchmark reports the overload profile as custom metrics —
// sessions/s of dispatched work, the admitted-query (code 200)
// latency tail, and the shed rate — which benchjson lands in the
// record's extra map for BENCH_7.
func BenchmarkServeOverload(b *testing.B) {
	w := benchWorld(b)
	// Gate capacity (8 in flight + 8 queued) sits well below the fleet's
	// 32 workers, so the open loop keeps the gate saturated and part of
	// the offered load sheds — the regime this benchmark profiles.
	srv := New(w, WithAdmission(8, 8), WithQueryTimeout(250*time.Millisecond))

	// Warm a spread of chains so the timed region reads steady-state
	// overload behavior, not first-repair cost.
	nP := len(w.Topo.Prefixes)
	for p := 0; p < nP; p += 7 {
		srv.AnswerCatchment(p, -1)
		srv.AnswerLatency(p, 0)
	}

	third := nP / 3
	cfg := loadgen.Config{
		Seed:        42,
		Clients:     1_000_000,
		SessionRate: 1e-4,
		Ticks:       1 << 30, // MaxOffered terminates the run
		TickSimMin:  30,      // spread queries across epochs: admitted work repairs cold chains
		Regions: []loadgen.Region{
			{Name: "na", Weight: 2, PrefixLo: 0, PrefixHi: third, Phase: 0},
			{Name: "eu", Weight: 1, PrefixLo: third, PrefixHi: 2 * third, Phase: 0.33},
			{Name: "apac", Weight: 1, PrefixLo: 2 * third, PrefixHi: nP, Phase: 0.66},
		},
		CatchmentFrac: 0.3,
		Workers:       32,
		Buffer:        1024,
		Deadline:      time.Second,
		MaxOffered:    b.N,
	}
	b.ResetTimer()
	rep, err := loadgen.Run(context.Background(), cfg, srv.LoadTarget())
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	if rep.OK() == 0 && b.N > 100 {
		b.Fatalf("overload run served nothing: %s", rep.String())
	}
	b.ReportMetric(rep.SessionsPerSec, "sessions/s")
	b.ReportMetric(rep.OKP50Ms, "p50_ms")
	b.ReportMetric(rep.OKP99Ms, "p99_ms")
	b.ReportMetric(rep.OKP999Ms, "p999_ms")
	b.ReportMetric(rep.ShedPct(), "shed_pct")
}

// BenchmarkServeWhatIf measures the scratch-chain path: every op POSTs
// a one-link-down hypothetical, which builds a private repair chain,
// folds the delta, and answers a nested latency query — nothing is
// memoized between ops by design (what-ifs never touch shared caches).
func BenchmarkServeWhatIf(b *testing.B) {
	w := benchWorld(b)
	srv := New(w)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	base := "http://" + addr.String()
	client := benchClient()

	// Pick a prefix whose latency query resolves, then a rotation of
	// down-links whose hypotheticals still answer (a cut that strands
	// the prefix legitimately 400s and is not throughput).
	prefix := -1
	for p := 0; p < len(w.Topo.Prefixes); p++ {
		code, err := benchGet(client, fmt.Sprintf("%s/latency?prefix=%d&t=0", base, p))
		if err != nil {
			b.Fatal(err)
		}
		if code == http.StatusOK {
			prefix = p
			break
		}
	}
	if prefix < 0 {
		b.Fatal("no resolvable prefix on the seed world")
	}
	postWhatIf := func(body string) (int, error) {
		resp, err := client.Post(base+"/whatif", "application/json", strings.NewReader(body))
		if err != nil {
			return 0, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, nil
	}
	var bodies []string
	for link := 0; link < len(w.Topo.Links) && len(bodies) < 32; link++ {
		body := fmt.Sprintf(`{"deltas":[{"Down":[%d]}],"kind":"latency","prefix":%d,"t_min":0}`, link, prefix)
		code, err := postWhatIf(body)
		if err != nil {
			b.Fatal(err)
		}
		if code == http.StatusOK {
			bodies = append(bodies, body)
		}
	}
	if len(bodies) == 0 {
		b.Fatal("no answerable what-if on the seed world")
	}

	b.ResetTimer()
	var ctr atomic.Int64
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			code, err := postWhatIf(bodies[int(ctr.Add(1))%len(bodies)])
			if err != nil {
				b.Error(err)
				return
			}
			if code != http.StatusOK {
				b.Errorf("what-if status %d", code)
				return
			}
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}
