package serve

// Admission control and the repair-chain circuit breaker: the two
// overload valves of the serving layer. Admission bounds how much work
// enters (a concurrency limit plus a small waiting room, shedding with
// ErrOverload when full or when a queued query's deadline expires);
// the breaker bounds how hard a failing repair chain gets hammered
// (consecutive failures open it, a cooldown probe closes it).

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// admission is the bounded gate in front of query execution. A nil
// *admission admits everything — the unlimited default.
type admission struct {
	sem      chan struct{} // execution slots (cap = MaxInFlight)
	maxQueue int64
	queued   atomic.Int64
}

func newAdmission(maxInFlight, maxQueue int) *admission {
	if maxInFlight <= 0 {
		return nil
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &admission{sem: make(chan struct{}, maxInFlight), maxQueue: int64(maxQueue)}
}

// acquire admits the query (returning the release to defer) or sheds
// it with ErrOverload: immediately when the waiting room is full, or
// while queued when the query's deadline expires first — a query that
// cannot start before its deadline is pure queue poison, so it is
// shed, not started. Shed queries never executed; retrying is safe.
func (a *admission) acquire(ctx context.Context) (release func(), err error) {
	if a == nil {
		return func() {}, nil
	}
	select {
	case a.sem <- struct{}{}:
		return a.release, nil
	default:
	}
	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		return nil, fmt.Errorf("%w: %d queries in flight and %d queued", ErrOverload, cap(a.sem), a.maxQueue)
	}
	defer a.queued.Add(-1)
	select {
	case a.sem <- struct{}{}:
		return a.release, nil
	case <-ctx.Done():
		return nil, fmt.Errorf("%w: deadline expired while queued for admission", ErrOverload)
	}
}

func (a *admission) release() { <-a.sem }

// inFlight and waiting report gate occupancy (stress-test hooks).
func (a *admission) inFlight() int {
	if a == nil {
		return 0
	}
	return len(a.sem)
}

func (a *admission) waiting() int {
	if a == nil {
		return 0
	}
	return int(a.queued.Load())
}

// breaker is a consecutive-failure circuit breaker for one repair
// chain. Closed: everything passes. After threshold consecutive
// failures it opens: allow() refuses (callers serve the degraded
// fallback) until cooldown elapses, then exactly one probe per
// cooldown window passes through; a probe success closes the circuit.
// threshold <= 0 disables the breaker entirely.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu        sync.Mutex
	fails     int
	openUntil time.Time
}

func newBreaker(o Options) breaker {
	return breaker{threshold: o.BreakerThreshold, cooldown: o.BreakerCooldown}
}

// allow reports whether an attempt may hit the chain right now.
func (b *breaker) allow() bool {
	if b.threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.fails < b.threshold {
		return true
	}
	now := time.Now()
	if now.Before(b.openUntil) {
		return false
	}
	// Half-open: admit this caller as the probe and push the window
	// forward so concurrent queries keep falling back while it runs.
	b.openUntil = now.Add(b.cooldown)
	return true
}

func (b *breaker) success() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	b.fails = 0
	b.mu.Unlock()
}

func (b *breaker) failure() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	b.fails++
	if b.fails >= b.threshold {
		b.openUntil = time.Now().Add(b.cooldown)
	}
	b.mu.Unlock()
}

// open reports whether the circuit is currently refusing (test hook).
func (b *breaker) open() bool {
	if b.threshold <= 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fails >= b.threshold && time.Now().Before(b.openUntil)
}
