package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"beatbgp/internal/core"
	"beatbgp/internal/loadgen"
	"beatbgp/internal/serve/chaos"
)

func mustChaos(t testing.TB, cfg chaos.Config) *chaos.Injector {
	t.Helper()
	inj, err := chaos.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

// epochStart returns the sim instant selecting epoch e for latency
// queries.
func epochStart(w *core.World, e int) float64 { return w.Epochs.Epoch(e).Start }

// TestServeAdmissionShed: with one execution slot, no waiting room, and
// a stalled repair chain, concurrent queries shed with a typed 429-class
// error whose text is fixed — and the gate recovers once the slot frees.
func TestServeAdmissionShed(t *testing.T) {
	w := smallWorld(t, 42)
	srv := New(w, WithAdmission(1, 0))
	srv.SetChaos(mustChaos(t, chaos.Config{Seed: 1, StallP: 1, StallMs: 400}))

	hold := make(chan error, 1)
	go func() {
		_, err := srv.AnswerLatency(0, epochStart(w, 0))
		hold <- err
	}()
	// Let the holder take the slot and enter its stall.
	time.Sleep(50 * time.Millisecond)

	_, err := srv.AnswerLatency(1, epochStart(w, 0))
	if !errors.Is(err, ErrOverload) {
		t.Fatalf("concurrent query got %v, want ErrOverload", err)
	}
	const wantMsg = "overloaded: 1 queries in flight and 0 queued"
	if err.Error() != wantMsg {
		t.Fatalf("shed error text %q, want %q (must be deterministic)", err.Error(), wantMsg)
	}
	if herr := <-hold; herr != nil {
		t.Fatalf("slot holder failed: %v", herr)
	}
	// Slot free again: same query now runs.
	srv.SetChaos(nil)
	if _, err := srv.AnswerLatency(1, epochStart(w, 0)); err != nil {
		t.Fatalf("post-overload query failed: %v", err)
	}
}

// TestServeAdmissionQueue: the waiting room admits exactly MaxQueue
// beyond the in-flight limit; the rest shed immediately. Counts are
// deterministic even though which query lands where is not.
func TestServeAdmissionQueue(t *testing.T) {
	w := smallWorld(t, 42)
	srv := New(w, WithAdmission(1, 2))
	srv.SetChaos(mustChaos(t, chaos.Config{Seed: 1, StallP: 1, StallMs: 500}))

	hold := make(chan error, 1)
	go func() {
		_, err := srv.AnswerLatency(0, epochStart(w, 0))
		hold <- err
	}()
	time.Sleep(50 * time.Millisecond)

	var wg sync.WaitGroup
	results := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, err := srv.AnswerLatency(1+i, epochStart(w, 0))
			results <- err
		}(i)
	}
	wg.Wait()
	close(results)
	var ok, shed int
	for err := range results {
		switch {
		case err == nil:
			ok++
		case errors.Is(err, ErrOverload):
			shed++
		default:
			t.Fatalf("unexpected error class: %v", err)
		}
	}
	if ok != 2 || shed != 2 {
		t.Fatalf("queue of 2: got %d served, %d shed; want 2 and 2", ok, shed)
	}
	<-hold
}

// TestServeDeadline: a stalled chain is cut at the per-query deadline
// with ErrDeadline — and without a configured deadline the same stall
// is simply waited out (no timeouts without a deadline).
func TestServeDeadline(t *testing.T) {
	w := smallWorld(t, 42)
	srv := New(w, WithQueryTimeout(50*time.Millisecond))
	srv.SetChaos(mustChaos(t, chaos.Config{Seed: 2, StallP: 1, StallMs: 10_000}))

	t0 := time.Now()
	_, err := srv.AnswerLatency(0, epochStart(w, 0))
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("stalled query got %v, want ErrDeadline", err)
	}
	if el := time.Since(t0); el > 2*time.Second {
		t.Fatalf("deadline cut took %v, stall leaked through", el)
	}

	// No deadline configured: the stall is honored, the query succeeds.
	patient := New(w)
	patient.SetChaos(mustChaos(t, chaos.Config{Seed: 2, StallP: 1, StallMs: 80}))
	if _, err := patient.AnswerLatency(0, epochStart(w, 0)); err != nil {
		t.Fatalf("undeadlined query through a short stall failed: %v", err)
	}
}

// TestServeDegradedFallbackAndBreaker: once a chain has served an
// epoch, injected repair failures at later epochs fall back to the
// last-good answer with degraded:true — and the circuit breaker stops
// hammering the failing chain after its threshold.
func TestServeDegradedFallbackAndBreaker(t *testing.T) {
	w := smallWorld(t, 42)
	if w.Epochs.Len() < 2 {
		t.Skip("world has a single epoch")
	}
	srv := New(w, WithBreaker(3, time.Hour)) // no half-open probes
	const prefix = 0
	origin := w.Topo.Prefixes[prefix].Origin

	// Warm epoch 0 on the chain.
	warm, err := srv.AnswerLatency(prefix, epochStart(w, 0))
	if err != nil {
		t.Fatal(err)
	}
	if warm.Degraded {
		t.Fatal("healthy answer marked degraded")
	}

	inj := mustChaos(t, chaos.Config{Seed: 3, RepairErrP: 1})
	srv.SetChaos(inj)
	tLater := epochStart(w, 1)
	laterEpoch := w.Epochs.At(tLater)
	for i := 0; i < 10; i++ {
		resp, err := srv.AnswerLatency(prefix, tLater)
		if err != nil {
			t.Fatalf("query %d: %v (degraded fallback must answer)", i, err)
		}
		if !resp.Degraded {
			t.Fatalf("query %d: fallback answer not marked degraded", i)
		}
		if resp.Epoch != 0 {
			t.Fatalf("query %d: degraded answer reports epoch %d, want last-good 0", i, resp.Epoch)
		}
	}
	// Breaker threshold 3: the chain was attempted exactly 3 times; the
	// other 7 queries served the fallback without touching it.
	if got := inj.Attempts(origin, laterEpoch); got != 3 {
		t.Fatalf("failing chain attempted %d times, want 3 (breaker open)", got)
	}

	// Recovery: chaos off, cooldown elapsed → probe succeeds, answers
	// come back healthy.
	quick := New(w, WithBreaker(3, time.Millisecond))
	if _, err := quick.AnswerLatency(prefix, epochStart(w, 0)); err != nil {
		t.Fatal(err)
	}
	quick.SetChaos(mustChaos(t, chaos.Config{Seed: 3, RepairErrP: 1}))
	for i := 0; i < 4; i++ {
		if _, err := quick.AnswerLatency(prefix, tLater); err != nil {
			t.Fatal(err)
		}
	}
	quick.SetChaos(nil)
	time.Sleep(5 * time.Millisecond)
	resp, err := quick.AnswerLatency(prefix, tLater)
	if err != nil {
		t.Fatalf("post-recovery query: %v", err)
	}
	if resp.Degraded {
		t.Fatal("chain healed but answer still degraded")
	}
	if resp.Epoch != laterEpoch {
		t.Fatalf("healed answer at epoch %d, want %d", resp.Epoch, laterEpoch)
	}
}

// TestServeCatchmentDegraded: the anycast chain has the same fallback
// contract as the per-origin chains.
func TestServeCatchmentDegraded(t *testing.T) {
	w := smallWorld(t, 42)
	if w.Epochs.Len() < 2 {
		t.Skip("world has a single epoch")
	}
	srv := New(w, WithBreaker(3, time.Hour))
	warm, err := srv.AnswerCatchment(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetChaos(mustChaos(t, chaos.Config{Seed: 4, RepairErrP: 1}))
	resp, err := srv.AnswerCatchment(0, 1)
	if err != nil {
		t.Fatalf("degraded catchment: %v", err)
	}
	if !resp.Degraded || resp.Epoch != 0 {
		t.Fatalf("fallback catchment %+v, want degraded at epoch 0", resp)
	}
	if resp.Site != warm.Site {
		t.Fatalf("fallback site %d != last-good site %d", resp.Site, warm.Site)
	}
}

// TestServeColdChainUnavailable: with no warm epoch to fall back to, a
// failing chain is a typed 503-class error, never a hang or a zero
// answer.
func TestServeColdChainUnavailable(t *testing.T) {
	w := smallWorld(t, 42)
	srv := New(w, WithBreaker(3, time.Hour))
	srv.SetChaos(mustChaos(t, chaos.Config{Seed: 5, RepairErrP: 1}))
	_, err := srv.AnswerLatency(0, epochStart(w, 0))
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("cold failing chain got %v, want ErrUnavailable", err)
	}
	// Once the breaker opens, the error text is the fixed circuit-open
	// form.
	origin := w.Topo.Prefixes[0].Origin
	for i := 0; i < 3; i++ {
		srv.AnswerLatency(0, epochStart(w, 0))
	}
	_, err = srv.AnswerLatency(0, epochStart(w, 0))
	want := fmt.Sprintf("unavailable: origin %d repair chain circuit open", origin)
	if err == nil || err.Error() != want {
		t.Fatalf("open-circuit error %q, want %q", err, want)
	}
}

// TestServeDegradedBytesDeterministic: the satellite gate — shed and
// degraded response bytes are identical across independent runs at a
// fixed seed, over both the library and HTTP forms.
func TestServeDegradedBytesDeterministic(t *testing.T) {
	w := smallWorld(t, 42)
	if w.Epochs.Len() < 2 {
		t.Skip("world has a single epoch")
	}
	run := func() ([]byte, []byte) {
		srv := New(w, WithBreaker(3, time.Hour))
		if _, err := srv.AnswerLatency(0, epochStart(w, 0)); err != nil {
			t.Fatal(err)
		}
		srv.SetChaos(mustChaos(t, chaos.Config{Seed: 6, RepairErrP: 1}))
		resp, err := srv.AnswerLatency(0, epochStart(w, 1))
		if err != nil {
			t.Fatal(err)
		}
		if !resp.Degraded {
			t.Fatal("expected a degraded answer")
		}
		lib, err := Encode(resp)
		if err != nil {
			t.Fatal(err)
		}
		// HTTP form over the same server state: must be the same bytes.
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Shutdown(context.Background())
		httpResp, err := http.Get(fmt.Sprintf("http://%s/latency?prefix=0&t=%g", addr, epochStart(w, 1)))
		if err != nil {
			t.Fatal(err)
		}
		defer httpResp.Body.Close()
		httpBytes, err := io.ReadAll(httpResp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if httpResp.StatusCode != http.StatusOK {
			t.Fatalf("degraded HTTP answer status %d: %s", httpResp.StatusCode, httpBytes)
		}
		return lib, httpBytes
	}
	lib1, http1 := run()
	lib2, http2 := run()
	if !bytes.Equal(lib1, lib2) {
		t.Fatalf("degraded library bytes differ across runs:\n%s\n%s", lib1, lib2)
	}
	if !bytes.Equal(lib1, http1) || !bytes.Equal(http1, http2) {
		t.Fatalf("library/HTTP degraded bytes differ:\nlib:  %s\nhttp: %s\nhttp2: %s", lib1, http1, http2)
	}
	if !bytes.Contains(lib1, []byte(`"degraded":true`)) {
		t.Fatalf("degraded marker missing: %s", lib1)
	}

	// Healthy responses must not carry the marker at all — the PR-8
	// byte contract is preserved.
	srv := New(w)
	resp, err := srv.AnswerLatency(0, epochStart(w, 0))
	if err != nil {
		t.Fatal(err)
	}
	healthy, _ := Encode(resp)
	if bytes.Contains(healthy, []byte("degraded")) {
		t.Fatalf("healthy answer leaks the degraded field: %s", healthy)
	}
}

// TestServeShedBytesDeterministic: a 429 shed over HTTP has fixed bytes
// and a Retry-After header.
func TestServeShedBytesDeterministic(t *testing.T) {
	w := smallWorld(t, 42)
	srv := New(w, WithAdmission(1, 0))
	srv.SetChaos(mustChaos(t, chaos.Config{Seed: 7, StallP: 1, StallMs: 500}))
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	base := "http://" + addr.String()

	hold := make(chan struct{})
	go func() {
		defer close(hold)
		http.Get(base + "/latency?prefix=0&t=0")
	}()
	time.Sleep(50 * time.Millisecond)

	want, err := Encode(ErrorResp{Error: "overloaded: 1 queries in flight and 0 queued"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		resp, err := http.Get(base + "/latency?prefix=1&t=0")
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("shed status %d (%s), want 429", resp.StatusCode, b)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("429 without Retry-After")
		}
		if !bytes.Equal(b, want) {
			t.Fatalf("shed bytes %q, want %q", b, want)
		}
	}
	<-hold
}

// TestServeHealthReadyDrain: /healthz is liveness (always ok), /readyz
// flips to 503 draining while queries still complete — the
// load-balancer drain window.
func TestServeHealthReadyDrain(t *testing.T) {
	w := smallWorld(t, 42)
	srv := New(w)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr.String()

	check := func(path string, wantCode int, wantBody HealthResp) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		want, _ := Encode(wantBody)
		if resp.StatusCode != wantCode || !bytes.Equal(b, want) {
			t.Fatalf("%s: status %d body %q, want %d %q", path, resp.StatusCode, b, wantCode, want)
		}
	}
	check("/healthz", http.StatusOK, HealthResp{Query: "healthz", Status: "ok"})
	check("/readyz", http.StatusOK, HealthResp{Query: "readyz", Status: "ready"})

	srv.StartDrain()
	if !srv.Draining() {
		t.Fatal("Draining() false after StartDrain")
	}
	check("/healthz", http.StatusOK, HealthResp{Query: "healthz", Status: "ok"})
	check("/readyz", http.StatusServiceUnavailable, HealthResp{Query: "readyz", Status: "draining"})
	// Queries still complete during the drain window.
	if b := httpAnswer(t, base, query{http.MethodGet, "/world", ""}); len(b) == 0 {
		t.Fatal("query during drain window failed")
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	// A restart resets readiness.
	addr2, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	base = "http://" + addr2.String()
	check("/readyz", http.StatusOK, HealthResp{Query: "readyz", Status: "ready"})
}

// TestServeValidationErrorText: the satellite gate — validation errors
// enumerate the valid kinds and ranges with exact, asserted text
// (mirroring the cmd/beatbgp -engine error convention).
func TestServeValidationErrorText(t *testing.T) {
	w := smallWorld(t, 42)
	srv := New(w)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	base := "http://" + addr.String()
	nPrefixes := len(w.Topo.Prefixes)
	nEpochs := w.Epochs.Len()

	cases := []struct {
		q        query
		wantCode int
		wantErr  string
	}{
		{query{http.MethodGet, "/catchment", ""}, 400,
			fmt.Sprintf("bad query: prefix parameter is required (valid prefixes: [0,%d))", nPrefixes)},
		{query{http.MethodGet, "/latency", ""}, 400,
			fmt.Sprintf("bad query: prefix parameter is required (valid prefixes: [0,%d))", nPrefixes)},
		{query{http.MethodGet, "/catchment?prefix=999999", ""}, 400,
			fmt.Sprintf("bad query: prefix 999999 out of range [0,%d)", nPrefixes)},
		{query{http.MethodGet, fmt.Sprintf("/catchment?prefix=0&epoch=%d", nEpochs), ""}, 400,
			fmt.Sprintf("bad query: epoch %d out of range [0,%d)", nEpochs, nEpochs)},
		{query{http.MethodPost, "/whatif", `{"kind":"nope","prefix":0}`}, 400,
			`bad query: kind "nope" is not a what-if query (valid kinds: catchment, latency)`},
		{query{http.MethodGet, "/nope", ""}, 404,
			`unknown path "/nope" (valid queries: ` + validEndpoints + `)`},
		{query{http.MethodGet, "/catchment/extra", ""}, 404,
			`unknown path "/catchment/extra" (valid queries: ` + validEndpoints + `)`},
	}
	for _, c := range cases {
		var resp *http.Response
		var err error
		if c.q.method == http.MethodGet {
			resp, err = http.Get(base + c.q.path)
		} else {
			resp, err = http.Post(base+c.q.path, "application/json", strings.NewReader(c.q.body))
		}
		if err != nil {
			t.Fatalf("%s %s: %v", c.q.method, c.q.path, err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		want, _ := Encode(ErrorResp{Error: c.wantErr})
		if resp.StatusCode != c.wantCode {
			t.Fatalf("%s %s: status %d (%s), want %d", c.q.method, c.q.path, resp.StatusCode, b, c.wantCode)
		}
		if !bytes.Equal(b, want) {
			t.Fatalf("%s %s:\n got: %s\nwant: %s", c.q.method, c.q.path, b, want)
		}
	}
}

// TestServeBodyRobustness: malformed, truncated, oversized, and
// unknown-field bodies are all 400s with a JSON error — never a 500, a
// hang, or an accepted query.
func TestServeBodyRobustness(t *testing.T) {
	w := smallWorld(t, 42)
	srv := New(w)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	base := "http://" + addr.String()

	post := func(path, body string) (int, []byte) {
		t.Helper()
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}

	cases := []struct {
		name, path, body string
		wantErr          string // empty: only assert 400 + JSON error
	}{
		{"malformed", "/whatif", `{]`, ""},
		{"truncated", "/whatif", `{"kind":"latency","pre`, ""},
		{"empty", "/whatif", ``, ""},
		{"unknown field", "/whatif", `{"zork":1}`, `bad query: body: json: unknown field "zork"`},
		{"trailing garbage", "/whatif", `{"kind":"latency","prefix":0} {"again":1}`, "bad query: body: trailing data after JSON value"},
		{"wrong type", "/whatif", `{"prefix":"zero"}`, ""},
		{"epoch unknown field", "/epoch", `{"advnce":3}`, `bad query: body: json: unknown field "advnce"`},
		{"epoch malformed", "/epoch", `[1,2`, ""},
		{"oversized", "/whatif", `{"kind":"` + strings.Repeat("x", 2<<20) + `"}`,
			fmt.Sprintf("bad query: body exceeds %d bytes", 1<<20)},
	}
	for _, c := range cases {
		code, b := post(c.path, c.body)
		if code != http.StatusBadRequest {
			t.Fatalf("%s: status %d (%.120s), want 400", c.name, code, b)
		}
		if !bytes.Contains(b, []byte(`"error"`)) {
			t.Fatalf("%s: body %q is not a JSON error", c.name, b)
		}
		if c.wantErr != "" {
			want, _ := Encode(ErrorResp{Error: c.wantErr})
			if !bytes.Equal(b, want) {
				t.Fatalf("%s:\n got: %s\nwant: %s", c.name, b, want)
			}
		}
	}
}

// TestServeNoGoroutineLeak: a chaotic concurrent burst with deadlines,
// shedding, and degraded fallbacks must leave no goroutines behind.
func TestServeNoGoroutineLeak(t *testing.T) {
	w := smallWorld(t, 42)
	before := runtime.NumGoroutine()

	srv := New(w, WithAdmission(4, 8), WithQueryTimeout(30*time.Millisecond), WithBreaker(3, 10*time.Millisecond))
	srv.SetChaos(mustChaos(t, chaos.Config{Seed: 8, LatencyP: 0.2, LatencyMeanMs: 1, RepairErrP: 0.3, StallP: 0.3, StallMs: 50}))
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				p := (g*31 + i) % len(w.Topo.Prefixes)
				e := i % w.Epochs.Len()
				if i%3 == 0 {
					srv.AnswerCatchment(p, e)
				} else {
					srv.AnswerLatency(p, epochStart(w, e))
				}
			}
		}(g)
	}
	wg.Wait()

	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: before %d, after %d\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestServeLoadTargetForms: the library target and the HTTP target
// answer the same deterministic fleet with the same status codes.
func TestServeLoadTargetForms(t *testing.T) {
	w := smallWorld(t, 42)
	cfg := loadgen.Config{
		Seed:        11,
		Clients:     50_000,
		SessionRate: 2e-3,
		Ticks:       5,
		Regions: []loadgen.Region{
			{Name: "all", Weight: 1, PrefixLo: 0, PrefixHi: len(w.Topo.Prefixes)},
		},
		CatchmentFrac: 0.5,
		Workers:       4,
		Buffer:        1 << 16, // no client-side drops: compare full streams
	}

	libSrv := New(w)
	libRep, err := loadgen.Run(context.Background(), cfg, libSrv.LoadTarget())
	if err != nil {
		t.Fatal(err)
	}
	httpSrv := New(w)
	addr, err := httpSrv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer httpSrv.Shutdown(context.Background())
	httpRep, err := loadgen.Run(context.Background(), cfg, &loadgen.HTTPTarget{Base: "http://" + addr.String()})
	if err != nil {
		t.Fatal(err)
	}

	if libRep.Offered != httpRep.Offered {
		t.Fatalf("offered streams differ: %d vs %d (generator not deterministic)", libRep.Offered, httpRep.Offered)
	}
	if libRep.Dropped != 0 || httpRep.Dropped != 0 {
		t.Fatalf("unexpected client-side drops: lib %d http %d", libRep.Dropped, httpRep.Dropped)
	}
	if libRep.Codes[200] != libRep.Sent {
		t.Fatalf("library form: %v, want all 200s", libRep.Codes)
	}
	if httpRep.Codes[200] != httpRep.Sent {
		t.Fatalf("HTTP form: %v, want all 200s", httpRep.Codes)
	}
}

// FuzzServeHandler: arbitrary methods, paths, queries, and bodies must
// never panic the handler or produce a non-JSON response; statuses stay
// in the typed set.
func FuzzServeHandler(f *testing.F) {
	w := smallWorld(f, 42)
	srv := New(w, WithAdmission(8, 8), WithQueryTimeout(time.Second))
	h := srv.Handler()

	f.Add("GET", "/catchment?prefix=0", "")
	f.Add("GET", "/latency?prefix=0&t=1.5", "")
	f.Add("GET", "/latency?prefix=-1&t=xx", "")
	f.Add("POST", "/whatif", `{"kind":"latency","prefix":0}`)
	f.Add("POST", "/whatif", `{"deltas":[{"Down":[0]}],"kind":"catchment","prefix":1}`)
	f.Add("POST", "/epoch", `{"set":1}`)
	f.Add("PUT", "/epoch", `{"advance":`)
	f.Add("GET", "/healthz", "")
	f.Add("DELETE", "/nope", "\x00\xff")
	f.Add("GET", "/catchment?prefix=99999999999999999999", "")

	okStatus := map[int]bool{200: true, 400: true, 404: true, 405: true, 429: true, 500: true, 503: true, 504: true}
	f.Fuzz(func(t *testing.T, method, path, body string) {
		if len(path) > 512 || len(body) > 4096 {
			return
		}
		req, err := http.NewRequest(method, "http://fuzz"+path, strings.NewReader(body))
		if err != nil {
			return // unbuildable request, not a handler problem
		}
		if !strings.HasPrefix(path, "/") {
			return
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if !okStatus[rec.Code] {
			t.Fatalf("%s %q -> unexpected status %d (%s)", method, path, rec.Code, rec.Body.Bytes())
		}
		b := rec.Body.Bytes()
		if len(b) == 0 {
			t.Fatalf("%s %q -> empty body", method, path)
		}
		var v any
		if err := json.Unmarshal(b, &v); err != nil {
			t.Fatalf("%s %q -> non-JSON body %q: %v", method, path, b, err)
		}
	})
}
