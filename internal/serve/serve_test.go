package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"beatbgp/internal/core"
)

// smallWorld builds and freezes a laptop-scale world, mirroring the
// core test suite's small config.
func smallWorld(t testing.TB, seed uint64) *core.World {
	t.Helper()
	cfg := core.Config{Seed: seed}
	cfg.Topology.EyeballsPerRegion = 8
	cfg.Workload.Days = 2
	s, err := core.NewScenario(cfg)
	if err != nil {
		t.Fatalf("seed %d: build: %v", seed, err)
	}
	w, err := s.Freeze()
	if err != nil {
		t.Fatalf("seed %d: freeze: %v", seed, err)
	}
	return w
}

// query is one HTTP request with a deterministic answer: the method,
// target (path + query or JSON body), and the library bytes it must
// match. Epoch moves use absolute "set" so answers are independent of
// the interleaving.
type query struct {
	method string
	path   string
	body   string
}

// mixedQueries builds the deterministic query mix for a world: every
// query pins its epoch/instant explicitly, so any interleaving of the
// whole set answers identically.
func mixedQueries(w *core.World) []query {
	var qs []query
	nEpochs := w.Epochs.Len()
	prefixes := len(w.Topo.Prefixes)
	for i := 0; i < 8; i++ {
		p := (i * 37) % prefixes
		e := i % nEpochs
		tm := w.Epochs.Epoch(e).Start
		qs = append(qs,
			query{http.MethodGet, fmt.Sprintf("/catchment?prefix=%d&epoch=%d", p, e), ""},
			query{http.MethodGet, fmt.Sprintf("/latency?prefix=%d&t=%g", p, tm), ""},
			query{http.MethodPost, "/whatif", fmt.Sprintf(
				`{"deltas":[{"Down":[%d]}],"kind":"latency","prefix":%d,"t_min":%g}`, i%len(w.Topo.Links), p, tm)},
			query{http.MethodPost, "/epoch", fmt.Sprintf(`{"set":%d}`, e)},
			query{http.MethodGet, "/world", ""},
		)
	}
	return qs
}

// libraryAnswer computes the Encode bytes of the library-path answer
// for a query — the truth the HTTP bytes must equal.
func libraryAnswer(t testing.TB, s *Server, q query) []byte {
	t.Helper()
	var (
		v   any
		err error
	)
	switch {
	case strings.HasPrefix(q.path, "/catchment"):
		var p, e int
		if _, serr := fmt.Sscanf(q.path, "/catchment?prefix=%d&epoch=%d", &p, &e); serr != nil {
			t.Fatalf("parse %q: %v", q.path, serr)
		}
		v, err = s.AnswerCatchment(p, e)
	case strings.HasPrefix(q.path, "/latency"):
		var p int
		var tm float64
		if _, serr := fmt.Sscanf(q.path, "/latency?prefix=%d&t=%g", &p, &tm); serr != nil {
			t.Fatalf("parse %q: %v", q.path, serr)
		}
		v, err = s.AnswerLatency(p, tm)
	case q.path == "/whatif":
		var req WhatIfReq
		if uerr := json.Unmarshal([]byte(q.body), &req); uerr != nil {
			t.Fatalf("parse %q: %v", q.body, uerr)
		}
		v, err = s.AnswerWhatIf(req)
	case q.path == "/epoch":
		var req struct {
			Set *int `json:"set"`
		}
		if uerr := json.Unmarshal([]byte(q.body), &req); uerr != nil {
			t.Fatalf("parse %q: %v", q.body, uerr)
		}
		v, err = s.AnswerEpoch(0, req.Set)
	case q.path == "/world":
		v = s.AnswerWorld()
	default:
		t.Fatalf("unknown query %q", q.path)
	}
	if err != nil {
		t.Fatalf("library answer %s: %v", q.path, err)
	}
	b, err := Encode(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// httpAnswer performs the query against a live listener and returns
// the raw response bytes (status must be 200).
func httpAnswer(t testing.TB, base string, q query) []byte {
	t.Helper()
	var (
		resp *http.Response
		err  error
	)
	switch q.method {
	case http.MethodGet:
		resp, err = http.Get(base + q.path)
	default:
		resp, err = http.Post(base+q.path, "application/json", strings.NewReader(q.body))
	}
	if err != nil {
		t.Fatalf("%s %s: %v", q.method, q.path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("%s %s: read: %v", q.method, q.path, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s %s: status %d: %s", q.method, q.path, resp.StatusCode, b)
	}
	return b
}

// TestServeConcurrentQueriesDeterministic is the tentpole's acceptance
// gate: N goroutines fire the mixed catchment/latency/whatif/epoch
// query set at a live daemon, and every response must be byte-identical
// to the single-threaded library answer for the same query — for two
// seeds and under -race (make race-serve).
func TestServeConcurrentQueriesDeterministic(t *testing.T) {
	for _, seed := range []uint64{42, 7} {
		w := smallWorld(t, seed)
		srv := New(w)
		addr, err := srv.Start("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		base := "http://" + addr.String()
		qs := mixedQueries(w)

		// Library truth from a second server over the same frozen world:
		// single-threaded, before any concurrent traffic.
		ref := New(w)
		want := make([][]byte, len(qs))
		for i, q := range qs {
			want[i] = libraryAnswer(t, ref, q)
		}

		const workers = 8
		const rounds = 3
		errs := make(chan error, workers*rounds*len(qs))
		var wg sync.WaitGroup
		for g := 0; g < workers; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					for i := range qs {
						// Stagger start positions so goroutines collide on
						// different queries.
						j := (i + g*5) % len(qs)
						got := httpAnswer(t, base, qs[j])
						if !bytes.Equal(got, want[j]) {
							errs <- fmt.Errorf("seed %d %s %s:\n got: %s\nwant: %s",
								seed, qs[j].method, qs[j].path, got, want[j])
							return
						}
					}
				}
			}(g)
		}
		wg.Wait()
		close(errs)
		for err := range errs {
			t.Fatal(err)
		}
		if err := srv.Shutdown(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
}

// TestServeRestartSameWorldKey is the kill-and-restart gate, the
// harness checkpoint pattern at the serving layer: a daemon stopped
// and restarted over a freshly rebuilt world with the same config must
// report the same world key and serve byte-identical answers — the
// world key is the invariant that makes restart transparent.
func TestServeRestartSameWorldKey(t *testing.T) {
	const seed = 42
	w1 := smallWorld(t, seed)
	srv1 := New(w1)
	addr1, err := srv1.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	qs := mixedQueries(w1)
	first := make([][]byte, len(qs))
	for i, q := range qs {
		first[i] = httpAnswer(t, "http://"+addr1.String(), q)
	}
	if err := srv1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh process would rebuild the world from the same
	// config; the content key proves it is the same world.
	w2 := smallWorld(t, seed)
	if w1.Key != w2.Key {
		t.Fatalf("rebuilt world key %s != original %s", w2.Key, w1.Key)
	}
	srv2 := New(w2)
	addr2, err := srv2.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Shutdown(context.Background())
	for i, q := range qs {
		got := httpAnswer(t, "http://"+addr2.String(), q)
		if !bytes.Equal(got, first[i]) {
			t.Fatalf("%s %s diverged after restart:\n got: %s\nwant: %s", q.method, q.path, got, first[i])
		}
	}
}

// TestServeDrain locks the drain contract: Shutdown completes in-flight
// requests, refuses new connections afterward, and a drained Server can
// Start again.
func TestServeDrain(t *testing.T) {
	w := smallWorld(t, 42)
	srv := New(w)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + addr.String()

	// A request in flight when Shutdown lands must complete with a full
	// answer: fire a burst and shut down while it runs.
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(base + "/world")
			if err != nil {
				// Connection refused is acceptable only if shutdown won the
				// race before the dial; a started request must not be cut.
				return
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				errs <- fmt.Errorf("in-flight request cut mid-response: %v", err)
				return
			}
			if resp.StatusCode != http.StatusOK || len(b) == 0 {
				errs <- fmt.Errorf("in-flight request got status %d body %q", resp.StatusCode, b)
			}
		}()
	}
	time.Sleep(5 * time.Millisecond) // let some requests take off
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Drained listener refuses new work.
	if _, err := http.Get(base + "/world"); err == nil {
		t.Fatal("request after drain succeeded")
	}
	// Shutdown again is a no-op; Start works again.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	addr2, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	if b := httpAnswer(t, "http://"+addr2.String(), query{http.MethodGet, "/world", ""}); len(b) == 0 {
		t.Fatal("restarted listener returned empty answer")
	}
}

// TestServeQueryValidation: malformed queries come back as 400s with a
// JSON error, never a 500 or a hang.
func TestServeQueryValidation(t *testing.T) {
	w := smallWorld(t, 42)
	srv := New(w)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())
	base := "http://" + addr.String()
	bad := []query{
		{http.MethodGet, "/catchment", ""},                                                     // missing prefix
		{http.MethodGet, "/catchment?prefix=999999", ""},                                       // prefix out of range
		{http.MethodGet, fmt.Sprintf("/catchment?prefix=0&epoch=%d", w.Epochs.Len()), ""},      // epoch out of range
		{http.MethodGet, "/latency?prefix=x", ""},                                              // non-integer
		{http.MethodPost, "/whatif", `{"kind":"nope","prefix":0}`},                             // unknown kind
		{http.MethodPost, "/whatif", `{"deltas":[{"Down":[-1]}],"kind":"latency","prefix":0}`}, // bad link
		{http.MethodPost, "/epoch", `{"set":-1}`},                                              // cursor out of range
	}
	for _, q := range bad {
		var resp *http.Response
		var err error
		if q.method == http.MethodGet {
			resp, err = http.Get(base + q.path)
		} else {
			resp, err = http.Post(base+q.path, "application/json", strings.NewReader(q.body))
		}
		if err != nil {
			t.Fatalf("%s %s: %v", q.method, q.path, err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s %s: status %d (%s), want 400", q.method, q.path, resp.StatusCode, b)
		}
		if !bytes.Contains(b, []byte(`"error"`)) {
			t.Fatalf("%s %s: body %q is not a JSON error", q.method, q.path, b)
		}
	}
}
