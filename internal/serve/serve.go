// Package serve is the long-running query layer over a frozen world:
// the route/latency oracle behind cmd/beatbgpd. It answers the paper's
// question shapes as cheap concurrent queries against the immutable
// artifacts of one core.World — client-prefix → front-end catchment,
// BGP-preferred vs best policy-compliant alternate latency, what-if
// deltas applied on scratch repair chains, and a live epoch cursor
// over the session layer's compiled fault timeline.
//
// Bit-identity contract: every query has a library form (the Answer*
// methods) and an HTTP form (Handler); both produce their JSON through
// Encode, so the daemon's response bytes for a query are identical to
// the library's answer for the same query — concurrency and transport
// are delivery properties, never semantic ones. The HTTP layer is in
// httpd.go.
//
// Overload robustness: queries carry per-query deadlines (Options.
// QueryTimeout, threaded as context down to the cdn/matbgp repair-step
// boundaries), admission is bounded (concurrency limit plus a waiting
// room with deadline-aware shedding — ErrOverload, HTTP 429), and each
// shared repair chain sits behind a circuit breaker: when a chain
// fails or stalls, queries fall back to the last successfully
// installed epoch's answers with an explicit degraded marker, and an
// open breaker stops hammering the failing chain until a cooldown
// probe succeeds. Deterministic fault injection for all of this lives
// in the chaos subpackage (SetChaos).
package serve

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"beatbgp/internal/bgp"
	"beatbgp/internal/core"
	"beatbgp/internal/delta"
	"beatbgp/internal/serve/chaos"
	"beatbgp/internal/topology"
)

// ErrBadQuery marks query validation failures (unknown prefix, epoch
// out of range, malformed delta). The HTTP layer maps it to 400;
// everything else is a 500.
var ErrBadQuery = errors.New("bad query")

// ErrOverload marks queries shed by the admission gate — the server is
// at its concurrency limit with a full (or deadline-expired) waiting
// room. The HTTP layer maps it to 429 with a Retry-After header; the
// query never ran, so retrying is always safe.
var ErrOverload = errors.New("overloaded")

// ErrDeadline marks queries that were admitted but hit their deadline
// mid-flight. The HTTP layer maps it to 504. Queries without a
// deadline (no QueryTimeout and a background context) never see it.
var ErrDeadline = errors.New("deadline exceeded")

// ErrUnavailable marks queries that could not be answered because a
// shared repair chain is failing (or its circuit is open) and no
// previously installed epoch is available to fall back to. The HTTP
// layer maps it to 503 with a Retry-After header.
var ErrUnavailable = errors.New("unavailable")

func badQuery(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadQuery, fmt.Sprintf(format, args...))
}

// Options tunes the server's overload behavior. The zero value is the
// PR-8 contract: no admission limit, no deadlines, breaker at the
// defaults.
type Options struct {
	// MaxInFlight bounds concurrently executing catchment/latency/
	// whatif queries; 0 means unlimited (no admission gate).
	MaxInFlight int
	// MaxQueue bounds queries waiting for an execution slot; beyond it
	// the gate sheds immediately with ErrOverload.
	MaxQueue int
	// QueryTimeout is the per-query deadline, applied to every
	// admitted query (library and HTTP alike); 0 means none.
	QueryTimeout time.Duration
	// BreakerThreshold is the consecutive repair-chain failure count
	// that opens a chain's circuit (0 selects the default of 3,
	// negative disables the breaker).
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit rejects before
	// letting one probe through (0 selects the default of 250ms).
	BreakerCooldown time.Duration
}

const (
	defaultBreakerThreshold = 3
	defaultBreakerCooldown  = 250 * time.Millisecond
)

// Option configures a Server at construction.
type Option func(*Options)

// WithAdmission bounds concurrent query execution to maxInFlight with
// a waiting room of maxQueue.
func WithAdmission(maxInFlight, maxQueue int) Option {
	return func(o *Options) { o.MaxInFlight, o.MaxQueue = maxInFlight, maxQueue }
}

// WithQueryTimeout sets the per-query deadline.
func WithQueryTimeout(d time.Duration) Option {
	return func(o *Options) { o.QueryTimeout = d }
}

// WithBreaker tunes the repair-chain circuit breaker.
func WithBreaker(threshold int, cooldown time.Duration) Option {
	return func(o *Options) { o.BreakerThreshold, o.BreakerCooldown = threshold, cooldown }
}

// Server answers queries against one frozen world. All methods are
// safe for concurrent use: the world's artifacts are immutable or
// guarded, the per-origin egress repair chains live behind a
// singleflight mirroring the CDN epoch layer's, and what-if queries
// build private scratch repairers that never touch shared caches.
type Server struct {
	w    *core.World
	opts Options

	// cur is the live epoch cursor: the epoch catchment queries answer
	// at unless the request pins one, advanced by the epoch endpoint.
	cur atomic.Int64

	// admit is the bounded admission gate (nil when unlimited).
	admit *admission

	// chaosInj is the deterministic fault injector of the serving
	// path; nil means no injection. Swappable at runtime (SetChaos).
	chaosInj atomic.Pointer[chaos.Injector]

	// draining flips /readyz to 503 ahead of the listener drain.
	draining atomic.Bool

	// Per-origin egress repair chains for the latency query: one
	// repairer per client-prefix origin walked across the epoch
	// sequence, RIBs memoized per epoch behind futures so duplicate
	// concurrent requests repair once. Each chain carries its own
	// circuit breaker and last-good fallback.
	mu     sync.Mutex // guards chains, each chain's ribs map, and each chain's good
	chains map[int]*originChain

	// anyBr/lastAny are the anycast (catchment) chain's breaker and
	// last successfully materialized epoch RIB — the cdn owns the
	// chain itself, the serving layer owns its overload policy.
	anyBr   breaker
	lastAny atomic.Pointer[ribAt]

	// Listener state (httpd.go): set by Start, cleared by Shutdown.
	httpMu sync.Mutex
	http   *httpState
}

// originChain mirrors the cdn epoch layer's chain: rep/at guarded by
// the chain's own mu so advancing one origin never blocks another,
// ribs and good guarded by Server.mu.
type originChain struct {
	mu   sync.Mutex
	rep  bgp.RouteRepairer
	at   int
	ribs map[int]*ribFuture
	br   breaker
	good *ribAt
}

// ribAt is one chain's last successfully materialized answer state:
// the degraded-fallback payload.
type ribAt struct {
	rib   *bgp.RIB
	epoch int
}

type ribFuture struct {
	done chan struct{}
	rib  *bgp.RIB
	err  error
}

// New returns a Server over the frozen world.
func New(w *core.World, opts ...Option) *Server {
	o := Options{}
	for _, fn := range opts {
		fn(&o)
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = defaultBreakerThreshold
	}
	if o.BreakerCooldown == 0 {
		o.BreakerCooldown = defaultBreakerCooldown
	}
	return &Server{
		w:      w,
		opts:   o,
		admit:  newAdmission(o.MaxInFlight, o.MaxQueue),
		chains: make(map[int]*originChain),
		anyBr:  newBreaker(o),
	}
}

// World returns the served world handle.
func (s *Server) World() *core.World { return s.w }

// SetChaos installs (or, with nil, removes) the deterministic fault
// injector on the serving path. Safe to call while serving — it is the
// middleware seam the overload tests flip mid-run.
func (s *Server) SetChaos(inj *chaos.Injector) { s.chaosInj.Store(inj) }

// Chaos returns the installed fault injector, or nil.
func (s *Server) Chaos() *chaos.Injector { return s.chaosInj.Load() }

// queryCtx applies the per-query deadline, if one is configured.
func (s *Server) queryCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if s.opts.QueryTimeout <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, s.opts.QueryTimeout)
}

// prefix validates and resolves a client prefix ID.
func (s *Server) prefix(id int) (topology.Prefix, error) {
	if id < 0 || id >= len(s.w.Topo.Prefixes) {
		return topology.Prefix{}, badQuery("prefix %d out of range [0,%d)", id, len(s.w.Topo.Prefixes))
	}
	return s.w.Topo.Prefixes[id], nil
}

// checkEpoch validates an epoch index against the world's sequence.
func (s *Server) checkEpoch(e int) error {
	if e < 0 || e >= s.w.Epochs.Len() {
		return badQuery("epoch %d out of range [0,%d)", e, s.w.Epochs.Len())
	}
	return nil
}

// CurrentEpoch returns the live epoch cursor.
func (s *Server) CurrentEpoch() int { return int(s.cur.Load()) }

// chain returns (creating on first use) the origin's repair chain.
func (s *Server) chain(origin int) *originChain {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch := s.chains[origin]
	if ch == nil {
		ch = &originChain{ribs: make(map[int]*ribFuture), br: newBreaker(s.opts)}
		s.chains[origin] = ch
	}
	return ch
}

// egressRIBAt returns the converged RIB toward the origin at the given
// epoch's cumulative down set, carried by the origin's repair chain —
// or, when the chain fails, stalls past the deadline, or its circuit
// is open, the chain's last successfully materialized epoch with
// degraded reported true. The returned epoch is the one actually
// answered (the fallback's on the degraded path).
func (s *Server) egressRIBAt(ctx context.Context, origin, epoch int) (rib *bgp.RIB, at int, degraded bool, err error) {
	ch := s.chain(origin)
	if !ch.br.allow() {
		return s.chainFallback(ch, fmt.Errorf("%w: origin %d repair chain circuit open", ErrUnavailable, origin))
	}
	rib, err = s.fetchEgressRIB(ctx, ch, origin, epoch)
	if err == nil {
		ch.br.success()
		s.mu.Lock()
		ch.good = &ribAt{rib: rib, epoch: epoch}
		s.mu.Unlock()
		return rib, epoch, false, nil
	}
	ch.br.failure()
	return s.chainFallback(ch, s.chainErr(ctx, err))
}

// chainFallback answers from the chain's last good epoch, or
// propagates the chain's error when nothing was ever materialized.
func (s *Server) chainFallback(ch *originChain, cause error) (*bgp.RIB, int, bool, error) {
	s.mu.Lock()
	g := ch.good
	s.mu.Unlock()
	if g != nil {
		return g.rib, g.epoch, true, nil
	}
	return nil, 0, false, cause
}

// chainErr types a repair-chain failure: a deadline hit mid-chain is
// ErrDeadline, anything else is ErrUnavailable.
func (s *Server) chainErr(ctx context.Context, err error) error {
	if ctx.Err() != nil || errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return fmt.Errorf("%w: %v", ErrDeadline, err)
	}
	return fmt.Errorf("%w: %v", ErrUnavailable, err)
}

// fetchEgressRIB is the chain's per-epoch singleflight: the first
// caller repairs (with chaos faults injected at this boundary),
// duplicates wait on the future until their context expires, failures
// are dropped for retry.
func (s *Server) fetchEgressRIB(ctx context.Context, ch *originChain, origin, epoch int) (*bgp.RIB, error) {
	s.mu.Lock()
	if f, ok := ch.ribs[epoch]; ok {
		s.mu.Unlock()
		select {
		case <-f.done:
			return f.rib, f.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	f := &ribFuture{done: make(chan struct{})}
	ch.ribs[epoch] = f
	s.mu.Unlock()

	rib, err := s.repairEgress(ctx, ch, origin, epoch)
	if err != nil {
		s.mu.Lock()
		delete(ch.ribs, epoch)
		s.mu.Unlock()
	}
	f.rib, f.err = rib, err
	close(f.done)
	return rib, err
}

// repairEgress runs one materialization attempt: the chaos seam first
// (injected stalls honor the query's deadline; injected errors count
// as chain failures), then the real repair walk.
func (s *Server) repairEgress(ctx context.Context, ch *originChain, origin, epoch int) (*bgp.RIB, error) {
	if inj := s.chaosInj.Load(); inj != nil {
		stall, ierr := inj.RepairFault(origin, epoch)
		if stall > 0 {
			if err := chaos.Sleep(ctx, stall); err != nil {
				return nil, err
			}
		}
		if ierr != nil {
			return nil, ierr
		}
	}
	return s.advance(ctx, ch, origin, epoch)
}

// advance walks the origin chain's repairer to the epoch, creating it
// on first use (folding in epoch 0's initial down set, exactly like
// the cdn epoch layer). The query's context is threaded down to the
// engine's repair-stage boundaries; a failed or cancelled Apply
// poisons the repairer, so it is dropped for a fresh rebuild on retry.
func (s *Server) advance(ctx context.Context, ch *originChain, origin, epoch int) (*bgp.RIB, error) {
	seq := s.w.Epochs
	ch.mu.Lock()
	defer ch.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if ch.rep == nil {
		rep, err := bgp.StartRepair(s.w.Routes, []bgp.Announcement{{Origin: origin}})
		if err != nil {
			return nil, err
		}
		if err := bgp.ApplyContext(ctx, rep, seq.Epoch(0).Delta); err != nil {
			return nil, err
		}
		ch.rep, ch.at = rep, 0
	}
	for ch.at < epoch {
		if err := bgp.ApplyContext(ctx, ch.rep, seq.Epoch(ch.at+1).Delta); err != nil {
			ch.rep = nil
			return nil, err
		}
		ch.at++
	}
	for ch.at > epoch {
		if err := bgp.ApplyContext(ctx, ch.rep, seq.Epoch(ch.at).Delta.Invert()); err != nil {
			ch.rep = nil
			return nil, err
		}
		ch.at--
	}
	return ch.rep.RIB()
}

// anycastRIBAt is the catchment path's overload wrapper around the cdn
// epoch layer's anycast chain: breaker, chaos seam, and last-good
// fallback, with the same contract as egressRIBAt.
func (s *Server) anycastRIBAt(ctx context.Context, epoch int) (rib *bgp.RIB, at int, degraded bool, err error) {
	if !s.anyBr.allow() {
		return s.anyFallback(fmt.Errorf("%w: anycast repair chain circuit open", ErrUnavailable))
	}
	rib, err = s.fetchAnycastRIB(ctx, epoch)
	if err == nil {
		s.anyBr.success()
		s.lastAny.Store(&ribAt{rib: rib, epoch: epoch})
		return rib, epoch, false, nil
	}
	s.anyBr.failure()
	return s.anyFallback(s.chainErr(ctx, err))
}

func (s *Server) anyFallback(cause error) (*bgp.RIB, int, bool, error) {
	if g := s.lastAny.Load(); g != nil {
		return g.rib, g.epoch, true, nil
	}
	return nil, 0, false, cause
}

func (s *Server) fetchAnycastRIB(ctx context.Context, epoch int) (*bgp.RIB, error) {
	if inj := s.chaosInj.Load(); inj != nil {
		stall, ierr := inj.RepairFault(-1, epoch)
		if stall > 0 {
			if err := chaos.Sleep(ctx, stall); err != nil {
				return nil, err
			}
		}
		if ierr != nil {
			return nil, ierr
		}
	}
	return s.w.CDN.AnycastRIBAtContext(ctx, epoch)
}

// CatchmentResp answers "which front-end site does BGP anycast hand
// this client prefix to" at one epoch of the fault timeline. Degraded
// reports that the answer came from a fallback epoch because the
// repair chain was failing; Epoch is then the epoch actually answered.
type CatchmentResp struct {
	Query    string `json:"query"`
	World    string `json:"world"`
	Prefix   int    `json:"prefix"`
	Epoch    int    `json:"epoch"`
	Site     int    `json:"site"`
	SiteASN  int    `json:"site_asn"`
	SiteCity int    `json:"site_city"`
	Degraded bool   `json:"degraded,omitempty"`
}

// AnswerCatchment resolves the prefix's anycast catchment at the given
// epoch; epoch < 0 means the live cursor.
func (s *Server) AnswerCatchment(prefixID, epoch int) (CatchmentResp, error) {
	return s.AnswerCatchmentContext(context.Background(), prefixID, epoch)
}

// AnswerCatchmentContext is AnswerCatchment under the server's
// admission gate and per-query deadline, honoring ctx.
func (s *Server) AnswerCatchmentContext(ctx context.Context, prefixID, epoch int) (CatchmentResp, error) {
	ctx, cancel := s.queryCtx(ctx)
	defer cancel()
	release, err := s.admit.acquire(ctx)
	if err != nil {
		return CatchmentResp{}, err
	}
	defer release()
	p, err := s.prefix(prefixID)
	if err != nil {
		return CatchmentResp{}, err
	}
	if epoch < 0 {
		epoch = s.CurrentEpoch()
	}
	if err := s.checkEpoch(epoch); err != nil {
		return CatchmentResp{}, err
	}
	rib, at, degraded, err := s.anycastRIBAt(ctx, epoch)
	if err != nil {
		return CatchmentResp{}, err
	}
	resp, err := s.catchmentVia(rib, p, at)
	if err != nil {
		return CatchmentResp{}, err
	}
	resp.Degraded = degraded
	return resp, nil
}

func (s *Server) catchmentVia(rib *bgp.RIB, p topology.Prefix, epoch int) (CatchmentResp, error) {
	_, site, err := s.w.CDN.PhysViaRIB(rib, p)
	if err != nil {
		return CatchmentResp{}, badQuery("prefix %d: %v", p.ID, err)
	}
	st := s.w.CDN.Sites[site]
	return CatchmentResp{
		Query:    "catchment",
		World:    s.w.Key,
		Prefix:   p.ID,
		Epoch:    epoch,
		Site:     site,
		SiteASN:  st.AS.ASN,
		SiteCity: st.City,
	}, nil
}

// EgressObs is one measured egress option: the policy-ordered route
// and its round-trip latency at the query instant.
type EgressObs struct {
	Link     int     `json:"link"`
	Neighbor int     `json:"neighbor"`
	Class    string  `json:"class"`
	PathLen  int     `json:"path_len"`
	RTTMs    float64 `json:"rtt_ms"`
}

// LatencyResp answers the paper's headline comparison for one client
// prefix at one instant: what BGP's most-preferred policy-compliant
// egress delivers vs the best alternate the provider could have used.
// DeltaMs = preferred − best alternate; positive means BGP is leaving
// latency on the table. Degraded reports a fallback-epoch answer
// (Epoch is then the epoch actually answered, not the one t selects).
type LatencyResp struct {
	Query     string     `json:"query"`
	World     string     `json:"world"`
	Prefix    int        `json:"prefix"`
	TMin      float64    `json:"t_min"`
	Epoch     int        `json:"epoch"`
	PoPCity   int        `json:"pop_city"`
	Options   int        `json:"options"`
	Preferred EgressObs  `json:"preferred"`
	BestAlt   *EgressObs `json:"best_alternate,omitempty"`
	DeltaMs   float64    `json:"delta_ms"`
	Degraded  bool       `json:"degraded,omitempty"`
}

// AnswerLatency measures BGP-preferred vs best-alternate latency for
// the prefix at minute t, with the fault timeline's route changes
// repaired in (the epoch in effect at t selects the egress RIB).
func (s *Server) AnswerLatency(prefixID int, t float64) (LatencyResp, error) {
	return s.AnswerLatencyContext(context.Background(), prefixID, t)
}

// AnswerLatencyContext is AnswerLatency under the server's admission
// gate and per-query deadline, honoring ctx.
func (s *Server) AnswerLatencyContext(ctx context.Context, prefixID int, t float64) (LatencyResp, error) {
	ctx, cancel := s.queryCtx(ctx)
	defer cancel()
	release, err := s.admit.acquire(ctx)
	if err != nil {
		return LatencyResp{}, err
	}
	defer release()
	p, err := s.prefix(prefixID)
	if err != nil {
		return LatencyResp{}, err
	}
	epoch := s.w.Epochs.At(t)
	rib, at, degraded, err := s.egressRIBAt(ctx, p.Origin, epoch)
	if err != nil {
		return LatencyResp{}, err
	}
	resp, err := s.latencyVia(rib, p, t, at)
	if err != nil {
		return LatencyResp{}, err
	}
	resp.Degraded = degraded
	return resp, nil
}

// latencyVia measures the options offered by the given toward-prefix
// RIB. Shared by the timeline and what-if paths; resolution mirrors
// workload.Generator.Observe (egress pinned at the serving PoP,
// unresolvable options skipped).
func (s *Server) latencyVia(rib *bgp.RIB, p topology.Prefix, t float64, epoch int) (LatencyResp, error) {
	pop := s.w.Prov.ServingPoP(p.City)
	opts := s.w.Prov.EgressOptions(rib, pop)
	var obs []EgressObs
	for _, opt := range opts {
		phys, err := s.w.Res.ResolvePinned(opt.Route, pop, p.City, pop)
		if err != nil {
			continue
		}
		obs = append(obs, EgressObs{
			Link:     opt.Link,
			Neighbor: opt.Neighbor,
			Class:    opt.Class.String(),
			PathLen:  opt.Route.PathLen(),
			RTTMs:    s.w.Sim.RouteRTTMs(phys, p, t),
		})
	}
	if len(obs) == 0 {
		return LatencyResp{}, badQuery("prefix %d: no resolvable egress route at PoP city %d", p.ID, pop)
	}
	resp := LatencyResp{
		Query:     "latency",
		World:     s.w.Key,
		Prefix:    p.ID,
		TMin:      t,
		Epoch:     epoch,
		PoPCity:   pop,
		Options:   len(obs),
		Preferred: obs[0],
	}
	for i := 1; i < len(obs); i++ {
		if resp.BestAlt == nil || obs[i].RTTMs < resp.BestAlt.RTTMs {
			alt := obs[i]
			resp.BestAlt = &alt
		}
	}
	if resp.BestAlt != nil {
		resp.DeltaMs = resp.Preferred.RTTMs - resp.BestAlt.RTTMs
	}
	return resp, nil
}

// WhatIfReq is a hypothetical: a list of topology deltas folded, in
// order, into a scratch repair chain over the all-links-up baseline,
// then one catchment or latency query answered under the result. The
// shared world is never mutated.
type WhatIfReq struct {
	Deltas []delta.Delta `json:"deltas"`
	Kind   string        `json:"kind"` // "catchment" | "latency"
	Prefix int           `json:"prefix"`
	TMin   float64       `json:"t_min"` // latency only
}

// WhatIfResp carries the hypothetical's cumulative down set and the
// nested answer.
type WhatIfResp struct {
	Query     string         `json:"query"`
	World     string         `json:"world"`
	Kind      string         `json:"kind"`
	Down      []int          `json:"down"`
	Catchment *CatchmentResp `json:"catchment,omitempty"`
	Latency   *LatencyResp   `json:"latency,omitempty"`
}

// AnswerWhatIf applies the request's deltas on a private repair chain
// (bgp.StartRepair against the world's engine — incremental engines
// repair, others rebuild; answers are bit-identical either way) and
// answers the nested query against the resulting RIB.
func (s *Server) AnswerWhatIf(req WhatIfReq) (WhatIfResp, error) {
	return s.AnswerWhatIfContext(context.Background(), req)
}

// AnswerWhatIfContext is AnswerWhatIf under the server's admission
// gate and per-query deadline; the deadline is threaded through every
// scratch-chain Apply, so a stalled hypothetical is abandoned at a
// repair-stage boundary instead of running to completion. Scratch
// chains have no installed epochs, so there is no degraded fallback —
// a deadline hit is ErrDeadline.
func (s *Server) AnswerWhatIfContext(ctx context.Context, req WhatIfReq) (WhatIfResp, error) {
	ctx, cancel := s.queryCtx(ctx)
	defer cancel()
	release, err := s.admit.acquire(ctx)
	if err != nil {
		return WhatIfResp{}, err
	}
	defer release()
	p, err := s.prefix(req.Prefix)
	if err != nil {
		return WhatIfResp{}, err
	}
	nLinks := len(s.w.Topo.Links)
	for i, d := range req.Deltas {
		if err := d.Validate(nLinks); err != nil {
			return WhatIfResp{}, badQuery("delta %d: %v", i, err)
		}
	}
	var anns []bgp.Announcement
	switch req.Kind {
	case "catchment":
		anns = s.w.CDN.Announcements(nil)
	case "latency":
		anns = []bgp.Announcement{{Origin: p.Origin}}
	default:
		return WhatIfResp{}, badQuery("kind %q is not a what-if query (valid kinds: catchment, latency)", req.Kind)
	}
	rep, err := bgp.StartRepair(s.w.Routes, anns)
	if err != nil {
		return WhatIfResp{}, err
	}
	down := map[int]bool{}
	for _, d := range req.Deltas {
		if err := bgp.ApplyContext(ctx, rep, d); err != nil {
			if ctx.Err() != nil {
				return WhatIfResp{}, fmt.Errorf("%w: %v", ErrDeadline, err)
			}
			return WhatIfResp{}, err
		}
		down = delta.Apply(down, d)
	}
	rib, err := rep.RIB()
	if err != nil {
		return WhatIfResp{}, err
	}
	resp := WhatIfResp{Query: "whatif", World: s.w.Key, Kind: req.Kind, Down: sortedLinks(down)}
	switch req.Kind {
	case "catchment":
		c, err := s.catchmentVia(rib, p, -1)
		if err != nil {
			return WhatIfResp{}, err
		}
		c.Epoch = -1 // hypothetical state, not a timeline epoch
		resp.Catchment = &c
	case "latency":
		l, err := s.latencyVia(rib, p, req.TMin, -1)
		if err != nil {
			return WhatIfResp{}, err
		}
		resp.Latency = &l
	}
	return resp, nil
}

// EpochResp describes one position of the live fault/session timeline.
type EpochResp struct {
	Query    string  `json:"query"`
	World    string  `json:"world"`
	Epoch    int     `json:"epoch"`
	Epochs   int     `json:"epochs"`
	StartMin float64 `json:"start_min"`
	EndMin   float64 `json:"end_min"`
	Down     []int   `json:"down"`
}

// AnswerEpoch reads or moves the live epoch cursor: advance is a
// relative move (0 reads), set pins an absolute epoch (nil leaves the
// cursor to advance). Out-of-range moves are rejected, the cursor
// unchanged. The cursor endpoint is deliberately outside the admission
// gate: operators must be able to steer a saturated daemon.
func (s *Server) AnswerEpoch(advance int, set *int) (EpochResp, error) {
	seq := s.w.Epochs
	for {
		cur := s.cur.Load()
		next := cur + int64(advance)
		if set != nil {
			next = int64(*set)
		}
		if next < 0 || next >= int64(seq.Len()) {
			return EpochResp{}, badQuery("epoch %d out of range [0,%d)", next, seq.Len())
		}
		if s.cur.CompareAndSwap(cur, next) {
			return s.epochResp(int(next)), nil
		}
	}
}

func (s *Server) epochResp(e int) EpochResp {
	seq := s.w.Epochs
	ep := seq.Epoch(e)
	end := seq.End()
	if e+1 < seq.Len() {
		end = seq.Epoch(e + 1).Start
	}
	return EpochResp{
		Query:    "epoch",
		World:    s.w.Key,
		Epoch:    e,
		Epochs:   seq.Len(),
		StartMin: ep.Start,
		EndMin:   end,
		Down:     append([]int{}, ep.Down...),
	}
}

// WorldResp summarizes the served world.
type WorldResp struct {
	Query    string `json:"query"`
	World    string `json:"world"`
	Engine   string `json:"engine"`
	ASes     int    `json:"ases"`
	Links    int    `json:"links"`
	Sites    int    `json:"sites"`
	Prefixes int    `json:"prefixes"`
	Epochs   int    `json:"epochs"`
}

// AnswerWorld reports the frozen world's shape and content key.
func (s *Server) AnswerWorld() WorldResp {
	return WorldResp{
		Query:    "world",
		World:    s.w.Key,
		Engine:   s.w.Cfg.Engine,
		ASes:     s.w.Topo.NumASes(),
		Links:    len(s.w.Topo.Links),
		Sites:    len(s.w.CDN.Sites),
		Prefixes: len(s.w.Topo.Prefixes),
		Epochs:   s.w.Epochs.Len(),
	}
}

// sortedLinks flattens a down set into a sorted slice (empty, not nil,
// so the JSON field is always an array).
func sortedLinks(down map[int]bool) []int {
	out := make([]int, 0, len(down))
	for l, v := range down {
		if v {
			out = append(out, l)
		}
	}
	sort.Ints(out)
	return out
}
