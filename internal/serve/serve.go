// Package serve is the long-running query layer over a frozen world:
// the route/latency oracle behind cmd/beatbgpd. It answers the paper's
// question shapes as cheap concurrent queries against the immutable
// artifacts of one core.World — client-prefix → front-end catchment,
// BGP-preferred vs best policy-compliant alternate latency, what-if
// deltas applied on scratch repair chains, and a live epoch cursor
// over the session layer's compiled fault timeline.
//
// Bit-identity contract: every query has a library form (the Answer*
// methods) and an HTTP form (Handler); both produce their JSON through
// Encode, so the daemon's response bytes for a query are identical to
// the library's answer for the same query — concurrency and transport
// are delivery properties, never semantic ones. The HTTP layer is in
// httpd.go.
package serve

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"beatbgp/internal/bgp"
	"beatbgp/internal/core"
	"beatbgp/internal/delta"
	"beatbgp/internal/topology"
)

// ErrBadQuery marks query validation failures (unknown prefix, epoch
// out of range, malformed delta). The HTTP layer maps it to 400;
// everything else is a 500.
var ErrBadQuery = errors.New("bad query")

func badQuery(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadQuery, fmt.Sprintf(format, args...))
}

// Server answers queries against one frozen world. All methods are
// safe for concurrent use: the world's artifacts are immutable or
// guarded, the per-origin egress repair chains live behind a
// singleflight mirroring the CDN epoch layer's, and what-if queries
// build private scratch repairers that never touch shared caches.
type Server struct {
	w *core.World

	// cur is the live epoch cursor: the epoch catchment queries answer
	// at unless the request pins one, advanced by the epoch endpoint.
	cur atomic.Int64

	// Per-origin egress repair chains for the latency query: one
	// repairer per client-prefix origin walked across the epoch
	// sequence, RIBs memoized per epoch behind futures so duplicate
	// concurrent requests repair once.
	mu     sync.Mutex // guards chains and each chain's ribs map
	chains map[int]*originChain

	// Listener state (httpd.go): set by Start, cleared by Shutdown.
	httpMu sync.Mutex
	http   *httpState
}

// originChain mirrors the cdn epoch layer's chain: rep/at guarded by
// the chain's own mu so advancing one origin never blocks another,
// ribs guarded by Server.mu.
type originChain struct {
	mu   sync.Mutex
	rep  bgp.RouteRepairer
	at   int
	ribs map[int]*ribFuture
}

type ribFuture struct {
	done chan struct{}
	rib  *bgp.RIB
	err  error
}

// New returns a Server over the frozen world.
func New(w *core.World) *Server {
	return &Server{w: w, chains: make(map[int]*originChain)}
}

// World returns the served world handle.
func (s *Server) World() *core.World { return s.w }

// prefix validates and resolves a client prefix ID.
func (s *Server) prefix(id int) (topology.Prefix, error) {
	if id < 0 || id >= len(s.w.Topo.Prefixes) {
		return topology.Prefix{}, badQuery("prefix %d out of range [0,%d)", id, len(s.w.Topo.Prefixes))
	}
	return s.w.Topo.Prefixes[id], nil
}

// checkEpoch validates an epoch index against the world's sequence.
func (s *Server) checkEpoch(e int) error {
	if e < 0 || e >= s.w.Epochs.Len() {
		return badQuery("epoch %d out of range [0,%d)", e, s.w.Epochs.Len())
	}
	return nil
}

// CurrentEpoch returns the live epoch cursor.
func (s *Server) CurrentEpoch() int { return int(s.cur.Load()) }

// egressRIBAt returns the converged RIB toward the origin at the given
// epoch's cumulative down set, carried by the origin's repair chain.
func (s *Server) egressRIBAt(origin, epoch int) (*bgp.RIB, error) {
	s.mu.Lock()
	ch := s.chains[origin]
	if ch == nil {
		ch = &originChain{ribs: make(map[int]*ribFuture)}
		s.chains[origin] = ch
	}
	if f, ok := ch.ribs[epoch]; ok {
		s.mu.Unlock()
		<-f.done
		return f.rib, f.err
	}
	f := &ribFuture{done: make(chan struct{})}
	ch.ribs[epoch] = f
	s.mu.Unlock()

	rib, err := s.advance(ch, origin, epoch)
	if err != nil {
		s.mu.Lock()
		delete(ch.ribs, epoch)
		s.mu.Unlock()
	}
	f.rib, f.err = rib, err
	close(f.done)
	return rib, err
}

// advance walks the origin chain's repairer to the epoch, creating it
// on first use (folding in epoch 0's initial down set, exactly like
// the cdn epoch layer). A failed Apply poisons the repairer, so it is
// dropped for a fresh rebuild on retry.
func (s *Server) advance(ch *originChain, origin, epoch int) (*bgp.RIB, error) {
	seq := s.w.Epochs
	ch.mu.Lock()
	defer ch.mu.Unlock()
	if ch.rep == nil {
		rep, err := bgp.StartRepair(s.w.Routes, []bgp.Announcement{{Origin: origin}})
		if err != nil {
			return nil, err
		}
		if err := rep.Apply(seq.Epoch(0).Delta); err != nil {
			return nil, err
		}
		ch.rep, ch.at = rep, 0
	}
	for ch.at < epoch {
		if err := ch.rep.Apply(seq.Epoch(ch.at + 1).Delta); err != nil {
			ch.rep = nil
			return nil, err
		}
		ch.at++
	}
	for ch.at > epoch {
		if err := ch.rep.Apply(seq.Epoch(ch.at).Delta.Invert()); err != nil {
			ch.rep = nil
			return nil, err
		}
		ch.at--
	}
	return ch.rep.RIB()
}

// CatchmentResp answers "which front-end site does BGP anycast hand
// this client prefix to" at one epoch of the fault timeline.
type CatchmentResp struct {
	Query    string `json:"query"`
	World    string `json:"world"`
	Prefix   int    `json:"prefix"`
	Epoch    int    `json:"epoch"`
	Site     int    `json:"site"`
	SiteASN  int    `json:"site_asn"`
	SiteCity int    `json:"site_city"`
}

// AnswerCatchment resolves the prefix's anycast catchment at the given
// epoch; epoch < 0 means the live cursor.
func (s *Server) AnswerCatchment(prefixID, epoch int) (CatchmentResp, error) {
	p, err := s.prefix(prefixID)
	if err != nil {
		return CatchmentResp{}, err
	}
	if epoch < 0 {
		epoch = s.CurrentEpoch()
	}
	if err := s.checkEpoch(epoch); err != nil {
		return CatchmentResp{}, err
	}
	rib, err := s.w.CDN.AnycastRIBAt(epoch)
	if err != nil {
		return CatchmentResp{}, err
	}
	return s.catchmentVia(rib, p, epoch)
}

func (s *Server) catchmentVia(rib *bgp.RIB, p topology.Prefix, epoch int) (CatchmentResp, error) {
	_, site, err := s.w.CDN.PhysViaRIB(rib, p)
	if err != nil {
		return CatchmentResp{}, badQuery("prefix %d: %v", p.ID, err)
	}
	st := s.w.CDN.Sites[site]
	return CatchmentResp{
		Query:    "catchment",
		World:    s.w.Key,
		Prefix:   p.ID,
		Epoch:    epoch,
		Site:     site,
		SiteASN:  st.AS.ASN,
		SiteCity: st.City,
	}, nil
}

// EgressObs is one measured egress option: the policy-ordered route
// and its round-trip latency at the query instant.
type EgressObs struct {
	Link     int     `json:"link"`
	Neighbor int     `json:"neighbor"`
	Class    string  `json:"class"`
	PathLen  int     `json:"path_len"`
	RTTMs    float64 `json:"rtt_ms"`
}

// LatencyResp answers the paper's headline comparison for one client
// prefix at one instant: what BGP's most-preferred policy-compliant
// egress delivers vs the best alternate the provider could have used.
// DeltaMs = preferred − best alternate; positive means BGP is leaving
// latency on the table.
type LatencyResp struct {
	Query     string     `json:"query"`
	World     string     `json:"world"`
	Prefix    int        `json:"prefix"`
	TMin      float64    `json:"t_min"`
	Epoch     int        `json:"epoch"`
	PoPCity   int        `json:"pop_city"`
	Options   int        `json:"options"`
	Preferred EgressObs  `json:"preferred"`
	BestAlt   *EgressObs `json:"best_alternate,omitempty"`
	DeltaMs   float64    `json:"delta_ms"`
}

// AnswerLatency measures BGP-preferred vs best-alternate latency for
// the prefix at minute t, with the fault timeline's route changes
// repaired in (the epoch in effect at t selects the egress RIB).
func (s *Server) AnswerLatency(prefixID int, t float64) (LatencyResp, error) {
	p, err := s.prefix(prefixID)
	if err != nil {
		return LatencyResp{}, err
	}
	epoch := s.w.Epochs.At(t)
	rib, err := s.egressRIBAt(p.Origin, epoch)
	if err != nil {
		return LatencyResp{}, err
	}
	return s.latencyVia(rib, p, t, epoch)
}

// latencyVia measures the options offered by the given toward-prefix
// RIB. Shared by the timeline and what-if paths; resolution mirrors
// workload.Generator.Observe (egress pinned at the serving PoP,
// unresolvable options skipped).
func (s *Server) latencyVia(rib *bgp.RIB, p topology.Prefix, t float64, epoch int) (LatencyResp, error) {
	pop := s.w.Prov.ServingPoP(p.City)
	opts := s.w.Prov.EgressOptions(rib, pop)
	var obs []EgressObs
	for _, opt := range opts {
		phys, err := s.w.Res.ResolvePinned(opt.Route, pop, p.City, pop)
		if err != nil {
			continue
		}
		obs = append(obs, EgressObs{
			Link:     opt.Link,
			Neighbor: opt.Neighbor,
			Class:    opt.Class.String(),
			PathLen:  opt.Route.PathLen(),
			RTTMs:    s.w.Sim.RouteRTTMs(phys, p, t),
		})
	}
	if len(obs) == 0 {
		return LatencyResp{}, badQuery("prefix %d: no resolvable egress route at PoP city %d", p.ID, pop)
	}
	resp := LatencyResp{
		Query:     "latency",
		World:     s.w.Key,
		Prefix:    p.ID,
		TMin:      t,
		Epoch:     epoch,
		PoPCity:   pop,
		Options:   len(obs),
		Preferred: obs[0],
	}
	for i := 1; i < len(obs); i++ {
		if resp.BestAlt == nil || obs[i].RTTMs < resp.BestAlt.RTTMs {
			alt := obs[i]
			resp.BestAlt = &alt
		}
	}
	if resp.BestAlt != nil {
		resp.DeltaMs = resp.Preferred.RTTMs - resp.BestAlt.RTTMs
	}
	return resp, nil
}

// WhatIfReq is a hypothetical: a list of topology deltas folded, in
// order, into a scratch repair chain over the all-links-up baseline,
// then one catchment or latency query answered under the result. The
// shared world is never mutated.
type WhatIfReq struct {
	Deltas []delta.Delta `json:"deltas"`
	Kind   string        `json:"kind"` // "catchment" | "latency"
	Prefix int           `json:"prefix"`
	TMin   float64       `json:"t_min"` // latency only
}

// WhatIfResp carries the hypothetical's cumulative down set and the
// nested answer.
type WhatIfResp struct {
	Query     string         `json:"query"`
	World     string         `json:"world"`
	Kind      string         `json:"kind"`
	Down      []int          `json:"down"`
	Catchment *CatchmentResp `json:"catchment,omitempty"`
	Latency   *LatencyResp   `json:"latency,omitempty"`
}

// AnswerWhatIf applies the request's deltas on a private repair chain
// (bgp.StartRepair against the world's engine — incremental engines
// repair, others rebuild; answers are bit-identical either way) and
// answers the nested query against the resulting RIB.
func (s *Server) AnswerWhatIf(req WhatIfReq) (WhatIfResp, error) {
	p, err := s.prefix(req.Prefix)
	if err != nil {
		return WhatIfResp{}, err
	}
	nLinks := len(s.w.Topo.Links)
	for i, d := range req.Deltas {
		if err := d.Validate(nLinks); err != nil {
			return WhatIfResp{}, badQuery("delta %d: %v", i, err)
		}
	}
	var anns []bgp.Announcement
	switch req.Kind {
	case "catchment":
		anns = s.w.CDN.Announcements(nil)
	case "latency":
		anns = []bgp.Announcement{{Origin: p.Origin}}
	default:
		return WhatIfResp{}, badQuery("kind %q is not a what-if query (catchment, latency)", req.Kind)
	}
	rep, err := bgp.StartRepair(s.w.Routes, anns)
	if err != nil {
		return WhatIfResp{}, err
	}
	down := map[int]bool{}
	for _, d := range req.Deltas {
		if err := rep.Apply(d); err != nil {
			return WhatIfResp{}, err
		}
		down = delta.Apply(down, d)
	}
	rib, err := rep.RIB()
	if err != nil {
		return WhatIfResp{}, err
	}
	resp := WhatIfResp{Query: "whatif", World: s.w.Key, Kind: req.Kind, Down: sortedLinks(down)}
	switch req.Kind {
	case "catchment":
		c, err := s.catchmentVia(rib, p, -1)
		if err != nil {
			return WhatIfResp{}, err
		}
		c.Epoch = -1 // hypothetical state, not a timeline epoch
		resp.Catchment = &c
	case "latency":
		l, err := s.latencyVia(rib, p, req.TMin, -1)
		if err != nil {
			return WhatIfResp{}, err
		}
		resp.Latency = &l
	}
	return resp, nil
}

// EpochResp describes one position of the live fault/session timeline.
type EpochResp struct {
	Query    string  `json:"query"`
	World    string  `json:"world"`
	Epoch    int     `json:"epoch"`
	Epochs   int     `json:"epochs"`
	StartMin float64 `json:"start_min"`
	EndMin   float64 `json:"end_min"`
	Down     []int   `json:"down"`
}

// AnswerEpoch reads or moves the live epoch cursor: advance is a
// relative move (0 reads), set pins an absolute epoch (nil leaves the
// cursor to advance). Out-of-range moves are rejected, the cursor
// unchanged.
func (s *Server) AnswerEpoch(advance int, set *int) (EpochResp, error) {
	seq := s.w.Epochs
	for {
		cur := s.cur.Load()
		next := cur + int64(advance)
		if set != nil {
			next = int64(*set)
		}
		if next < 0 || next >= int64(seq.Len()) {
			return EpochResp{}, badQuery("epoch %d out of range [0,%d)", next, seq.Len())
		}
		if s.cur.CompareAndSwap(cur, next) {
			return s.epochResp(int(next)), nil
		}
	}
}

func (s *Server) epochResp(e int) EpochResp {
	seq := s.w.Epochs
	ep := seq.Epoch(e)
	end := seq.End()
	if e+1 < seq.Len() {
		end = seq.Epoch(e + 1).Start
	}
	return EpochResp{
		Query:    "epoch",
		World:    s.w.Key,
		Epoch:    e,
		Epochs:   seq.Len(),
		StartMin: ep.Start,
		EndMin:   end,
		Down:     append([]int{}, ep.Down...),
	}
}

// WorldResp summarizes the served world.
type WorldResp struct {
	Query    string `json:"query"`
	World    string `json:"world"`
	Engine   string `json:"engine"`
	ASes     int    `json:"ases"`
	Links    int    `json:"links"`
	Sites    int    `json:"sites"`
	Prefixes int    `json:"prefixes"`
	Epochs   int    `json:"epochs"`
}

// AnswerWorld reports the frozen world's shape and content key.
func (s *Server) AnswerWorld() WorldResp {
	return WorldResp{
		Query:    "world",
		World:    s.w.Key,
		Engine:   s.w.Cfg.Engine,
		ASes:     s.w.Topo.NumASes(),
		Links:    len(s.w.Topo.Links),
		Sites:    len(s.w.CDN.Sites),
		Prefixes: len(s.w.Topo.Prefixes),
		Epochs:   s.w.Epochs.Len(),
	}
}

// sortedLinks flattens a down set into a sorted slice (empty, not nil,
// so the JSON field is always an array).
func sortedLinks(down map[int]bool) []int {
	out := make([]int, 0, len(down))
	for l, v := range down {
		if v {
			out = append(out, l)
		}
	}
	sort.Ints(out)
	return out
}
