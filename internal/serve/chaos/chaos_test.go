package chaos

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestQueryDelaySequenceDeterministic: at a fixed seed, the n-th query
// always draws the same injected delay, regardless of which run (or
// goroutine) asks — the property that makes chaotic soaks replayable.
func TestQueryDelaySequenceDeterministic(t *testing.T) {
	cfg := Config{Seed: 9, LatencyP: 0.5, LatencyMeanMs: 3}
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := New(cfg)
	var nonzero int
	for i := 0; i < 500; i++ {
		da, db := a.QueryDelay(), b.QueryDelay()
		if da != db {
			t.Fatalf("query %d: %v vs %v", i, da, db)
		}
		if da > 0 {
			nonzero++
		}
		if da < 0 {
			t.Fatalf("negative delay %v", da)
		}
	}
	if nonzero < 100 || nonzero > 400 {
		t.Fatalf("LatencyP=0.5 injected %d/500 delays", nonzero)
	}
}

// TestRepairFaultPerAttempt: draws are keyed by (chain, epoch, attempt)
// — two injectors at the same seed agree attempt by attempt, distinct
// keys draw independently, and the attempt counter advances.
func TestRepairFaultPerAttempt(t *testing.T) {
	cfg := Config{Seed: 4, RepairErrP: 0.5, StallP: 0.5, StallMs: 1}
	a, _ := New(cfg)
	b, _ := New(cfg)
	keys := []struct{ chain, epoch int }{{-1, 0}, {-1, 3}, {0, 0}, {7, 12}}
	for _, k := range keys {
		for attempt := 1; attempt <= 50; attempt++ {
			sa, ea := a.RepairFault(k.chain, k.epoch)
			sb, eb := b.RepairFault(k.chain, k.epoch)
			if sa != sb || (ea == nil) != (eb == nil) {
				t.Fatalf("chain %d epoch %d attempt %d diverged", k.chain, k.epoch, attempt)
			}
			if ea != nil && !errors.Is(ea, ErrInjected) {
				t.Fatalf("injected error %v is not ErrInjected", ea)
			}
		}
		if got := a.Attempts(k.chain, k.epoch); got != 50 {
			t.Fatalf("chain %d epoch %d: attempts = %d, want 50", k.chain, k.epoch, got)
		}
	}
	if got := a.Attempts(99, 99); got != 0 {
		t.Fatalf("untouched key reports %d attempts", got)
	}
}

// TestZeroConfigInjectsNothing: the zero config must be a true no-op,
// including on a nil injector.
func TestZeroConfigInjectsNothing(t *testing.T) {
	inj, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if d := inj.QueryDelay(); d != 0 {
			t.Fatalf("zero config injected delay %v", d)
		}
		if s, e := inj.RepairFault(0, 0); s != 0 || e != nil {
			t.Fatalf("zero config injected fault (%v, %v)", s, e)
		}
	}
	var nilInj *Injector
	if d := nilInj.QueryDelay(); d != 0 {
		t.Fatal("nil injector injected a delay")
	}
	if s, e := nilInj.RepairFault(0, 0); s != 0 || e != nil {
		t.Fatal("nil injector injected a fault")
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{LatencyP: -0.1},
		{LatencyP: 1.5},
		{RepairErrP: 2},
		{StallP: -1},
		{LatencyMeanMs: -3},
		{StallMs: -1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("config %+v must be rejected", c)
		}
		if _, err := New(c); err == nil {
			t.Fatalf("New(%+v) must fail", c)
		}
	}
	if err := (Config{Seed: 1, LatencyP: 1, LatencyMeanMs: 5, RepairErrP: 0.5, StallP: 0.5, StallMs: 10}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

// TestSleepHonorsContext: the shared ctx-aware sleep returns early with
// the context's error — the primitive the deadline tests lean on.
func TestSleepHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Sleep(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Fatalf("Sleep under cancelled ctx: %v", err)
	}
	if err := Sleep(context.Background(), 0); err != nil {
		t.Fatalf("zero sleep: %v", err)
	}
	t0 := time.Now()
	if err := Sleep(context.Background(), time.Millisecond); err != nil {
		t.Fatalf("real sleep: %v", err)
	}
	if time.Since(t0) < time.Millisecond {
		t.Fatal("Sleep returned before its duration")
	}
}
