// Package chaos is the deterministic fault-injection seam of the
// serving path: the serve layer asks an Injector, at two well-defined
// middleware points, whether this query gets extra transport latency
// and whether this repair attempt fails or stalls. Nothing here touches
// routing state — chaos perturbs delivery so the overload machinery
// (deadlines, admission, circuit breaker, degraded fallback) is tested
// against misbehavior instead of assumed to handle it.
//
// Determinism: every draw is a pure function of (Seed, site, attempt) —
// query delays are keyed by a global query counter, repair faults by a
// per-(chain, epoch) attempt counter — via xrand.Derive, so a fault
// schedule replays exactly at a fixed seed regardless of goroutine
// interleaving: the n-th repair attempt on a chain's epoch always sees
// the same injected outcome, which is what makes degraded answers
// byte-reproducible across runs.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"beatbgp/internal/xrand"
)

// ErrInjected marks a chaos-injected repair failure; the serving layer
// treats it like any real repair error (it feeds the circuit breaker
// and triggers the degraded fallback).
var ErrInjected = errors.New("chaos: injected repair failure")

// Config tunes the injector. The zero value injects nothing.
type Config struct {
	Seed uint64

	// LatencyP is the per-query probability of injected transport
	// latency; LatencyMeanMs is its exponential mean.
	LatencyP      float64
	LatencyMeanMs float64

	// RepairErrP is the per-attempt probability that a repair-chain
	// materialization fails with ErrInjected.
	RepairErrP float64

	// StallP is the per-attempt probability that a repair-chain
	// materialization stalls for StallMs before proceeding — the
	// slow-epoch scenario that deadline propagation must cut short.
	StallP  float64
	StallMs float64
}

// Validate rejects nonsensical parameters.
func (c Config) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{{"LatencyP", c.LatencyP}, {"RepairErrP", c.RepairErrP}, {"StallP", c.StallP}} {
		if math.IsNaN(p.v) || p.v < 0 || p.v > 1 {
			return fmt.Errorf("chaos: %s = %v must be a probability in [0,1]", p.name, p.v)
		}
	}
	for _, m := range []struct {
		name string
		v    float64
	}{{"LatencyMeanMs", c.LatencyMeanMs}, {"StallMs", c.StallMs}} {
		if math.IsNaN(m.v) || math.IsInf(m.v, 0) || m.v < 0 {
			return fmt.Errorf("chaos: %s = %v must be finite and non-negative", m.name, m.v)
		}
	}
	return nil
}

// Injector draws deterministic faults for the serving path. Safe for
// concurrent use.
type Injector struct {
	cfg     Config
	queries atomic.Uint64

	mu       sync.Mutex
	attempts map[attemptKey]uint64
}

type attemptKey struct{ chain, epoch int }

// New returns an injector over the validated config.
func New(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Injector{cfg: cfg, attempts: make(map[attemptKey]uint64)}, nil
}

// Config returns the injector's configuration.
func (i *Injector) Config() Config { return i.cfg }

// QueryDelay returns the injected transport latency for the next query
// (zero for most). The draw is keyed by the global query ordinal, so a
// fixed seed yields a fixed delay sequence.
func (i *Injector) QueryDelay() time.Duration {
	if i == nil || i.cfg.LatencyP == 0 {
		return 0
	}
	seq := i.queries.Add(1)
	rng := xrand.Derive(i.cfg.Seed, 0x10ad, seq)
	if !rng.Bool(i.cfg.LatencyP) {
		return 0
	}
	return time.Duration(rng.Exp(i.cfg.LatencyMeanMs) * float64(time.Millisecond))
}

// RepairFault draws the fault for the next materialization attempt on
// (chain, epoch): a stall duration to honor before repairing (zero for
// none) and an injected error (nil for none). chain identifies the
// repair chain (an origin ID, or -1 for the anycast chain). Each call
// consumes one attempt on the key, so retries see fresh draws — the
// first attempt may fail while the third succeeds, exactly the
// transient-fault shape circuit breakers exist for.
func (i *Injector) RepairFault(chain, epoch int) (stall time.Duration, err error) {
	if i == nil || (i.cfg.RepairErrP == 0 && i.cfg.StallP == 0) {
		return 0, nil
	}
	k := attemptKey{chain: chain, epoch: epoch}
	i.mu.Lock()
	i.attempts[k]++
	attempt := i.attempts[k]
	i.mu.Unlock()
	rng := xrand.Derive(i.cfg.Seed, 0xfa11, uint64(int64(chain))+1, uint64(int64(epoch))+1, attempt)
	if rng.Bool(i.cfg.StallP) {
		stall = time.Duration(i.cfg.StallMs * float64(time.Millisecond))
	}
	if rng.Bool(i.cfg.RepairErrP) {
		err = fmt.Errorf("%w (chain %d epoch %d attempt %d)", ErrInjected, chain, epoch, attempt)
	}
	return stall, err
}

// Attempts reports how many materialization attempts the injector has
// seen for (chain, epoch) — test hooks use it to prove the breaker
// stopped hammering a failing chain.
func (i *Injector) Attempts(chain, epoch int) uint64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.attempts[attemptKey{chain: chain, epoch: epoch}]
}

// Sleep blocks for d or until ctx is done, returning ctx's error when
// the context won — the ctx-aware sleep both injection points share.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
