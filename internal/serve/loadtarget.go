package serve

import (
	"context"
	"net/http"

	"beatbgp/internal/loadgen"
	"beatbgp/internal/serve/chaos"
)

// LoadTarget adapts the server's library form to the load harness: the
// harness's queries run straight through the Answer* methods — same
// admission gate, deadlines, breaker, and chaos seam as the HTTP form
// — and errors report as the HTTP status the daemon would have sent,
// so library-form and HTTP-form load runs read identically.
func (s *Server) LoadTarget() loadgen.Target { return libTarget{s: s} }

type libTarget struct{ s *Server }

func (t libTarget) Do(ctx context.Context, q loadgen.Query) loadgen.Result {
	// The library half of the transport-latency chaos seam (the HTTP
	// half is the Handler middleware).
	if inj := t.s.chaosInj.Load(); inj != nil {
		if d := inj.QueryDelay(); d > 0 {
			if err := chaos.Sleep(ctx, d); err != nil {
				return loadgen.Result{Code: http.StatusGatewayTimeout}
			}
		}
	}
	switch q.Kind {
	case loadgen.KindCatchment:
		resp, err := t.s.AnswerCatchmentContext(ctx, q.Prefix, -1)
		if err != nil {
			return loadgen.Result{Code: errStatus(err)}
		}
		return loadgen.Result{Code: http.StatusOK, Degraded: resp.Degraded}
	default:
		resp, err := t.s.AnswerLatencyContext(ctx, q.Prefix, q.TMin)
		if err != nil {
			return loadgen.Result{Code: errStatus(err)}
		}
		return loadgen.Result{Code: http.StatusOK, Degraded: resp.Degraded}
	}
}

var _ loadgen.Target = libTarget{}
