package matbgp

import (
	"reflect"
	"sync"
	"testing"

	"beatbgp/internal/bgp"
	"beatbgp/internal/topology"
)

// fuzzWorlds caches generated topologies and lowered engines per seed:
// the fuzzer calls the target thousands of times and world generation
// dominates otherwise.
var fuzzWorlds sync.Map // seed -> *fuzzWorld

type fuzzWorld struct {
	topo *topology.Topo
	eng  *Engine
	ref  *bgp.Reference
}

func fuzzWorldFor(f *testing.F, seed uint64) *fuzzWorld {
	if w, ok := fuzzWorlds.Load(seed); ok {
		return w.(*fuzzWorld)
	}
	topo, err := topology.Generate(topology.GenConfig{
		Seed: seed, Tier1Count: 3, TransitsPerRegion: 2, EyeballsPerRegion: 4,
	})
	if err != nil {
		f.Fatalf("generate seed %d: %v", seed, err)
	}
	eng, err := NewEngine(topo)
	if err != nil {
		f.Fatalf("engine seed %d: %v", seed, err)
	}
	w := &fuzzWorld{topo: topo, eng: eng, ref: bgp.NewReference(topo)}
	fuzzWorlds.Store(seed, w)
	return w
}

// FuzzMatbgpVsOracle drives both engines with fuzzer-chosen announcement
// sets — origins, prepends, selective announcement, failed links — over a
// handful of small worlds and requires bit-identical routes, offers, and
// error text. Run via `make fuzz-matbgp`.
func FuzzMatbgpVsOracle(f *testing.F) {
	const nseeds = 4
	worlds := make([]*fuzzWorld, nseeds)
	for i := range worlds {
		worlds[i] = fuzzWorldFor(f, uint64(i+1))
	}
	f.Add(uint64(1), []byte{0})
	f.Add(uint64(2), []byte{1, 7, 2, 200, 3})
	f.Add(uint64(3), []byte{9, 9, 4, 0, 44, 17, 255, 3, 128})
	f.Add(uint64(4), []byte{250, 251, 252, 253, 254, 255, 0, 1, 2, 3, 4, 5})
	f.Fuzz(func(t *testing.T, pick uint64, program []byte) {
		w := worlds[pick%nseeds]
		topo, n := w.topo, w.topo.NumASes()
		// Decode the byte program into an announcement set plus failed
		// links. Every byte stream decodes to something valid-ish; invalid
		// sets (dup origins) are kept on purpose to compare error paths.
		var anns []bgp.Announcement
		var down map[int]bool
		i := 0
		byteAt := func() int {
			if i >= len(program) {
				return 0
			}
			b := int(program[i])
			i++
			return b
		}
		norigins := 1 + byteAt()%4
		for k := 0; k < norigins; k++ {
			a := bgp.Announcement{Origin: byteAt() % n}
			op := byteAt()
			if op&3 == 3 {
				a.Prepend = op >> 6
			}
			if op&4 != 0 {
				sup := map[int]bool{}
				for _, nb := range topo.Neighbors(a.Origin) {
					if byteAt()&1 == 1 {
						sup[nb.Link] = true
					}
				}
				if len(sup) > 0 {
					a.SuppressLinks = sup
				}
			}
			anns = append(anns, a)
		}
		for k := byteAt() % 4; k > 0; k-- {
			if down == nil {
				down = map[int]bool{}
			}
			down[byteAt()%len(topo.Links)] = true
		}

		want, werr := w.ref.ComputeWithout(anns, down)
		got, gerr := w.eng.ComputeWithout(anns, down)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("error divergence: reference %v, matbgp %v", werr, gerr)
		}
		if werr != nil {
			if werr.Error() != gerr.Error() {
				t.Fatalf("error text divergence: reference %q, matbgp %q", werr, gerr)
			}
			return
		}
		for as := 0; as < n; as++ {
			if wb, gb := want.Best(as), got.Best(as); !reflect.DeepEqual(wb, gb) {
				t.Fatalf("AS %d best route differs:\n reference %+v\n matbgp    %+v", as, wb, gb)
			}
			if ow, og := want.OffersTo(as), got.OffersTo(as); !reflect.DeepEqual(ow, og) {
				t.Fatalf("AS %d offers differ:\n reference %+v\n matbgp    %+v", as, ow, og)
			}
		}
	})
}
