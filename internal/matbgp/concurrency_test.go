package matbgp

import (
	"math/rand"
	"strings"
	"sync"
	"testing"

	"beatbgp/internal/bgp"
	"beatbgp/internal/delta"
)

// randomDeltaWalk builds a deterministic delta walk for one chain,
// keyed off the rng, mirroring TestRepairMatchesRebuildRandomDeltas's
// shape (repeated flaps and no-ops included).
func randomDeltaWalk(rng *rand.Rand, nl, steps int) []delta.Delta {
	walk := make([]delta.Delta, steps)
	for i := range walk {
		var d delta.Delta
		for k := rng.Intn(3); k > 0; k-- {
			d.Down = append(d.Down, rng.Intn(nl))
		}
		for k := rng.Intn(3); k > 0; k-- {
			d.Up = append(d.Up, rng.Intn(nl))
		}
		walk[i] = d
	}
	return walk
}

// TestRepairInterleavedChainsBitIdentical is the scratch-aliasing
// regression test: two repair chains over one Graph — each repairer
// owning its private scratch, as StartRepair hands out — applied (a)
// sequentially to completion, (b) interleaved step by step on one
// goroutine, and (c) concurrently on two goroutines, must leave
// byte-identical columns in all three schedules. Before the
// one-scratch-per-repairer enforcement, an aliased workspace made (b)
// and (c) diverge silently.
func TestRepairInterleavedChainsBitIdentical(t *testing.T) {
	topo := repairTopo(t, 3)
	g, err := FromTopo(topo)
	if err != nil {
		t.Fatal(err)
	}
	n, nl := topo.NumASes(), len(topo.Links)
	annsA := []bgp.Announcement{{Origin: 0}}
	annsB := []bgp.Announcement{{Origin: n - 1}}
	rng := rand.New(rand.NewSource(97))
	walkA := randomDeltaWalk(rng, nl, 40)
	walkB := randomDeltaWalk(rng, nl, 40)

	run := func(r *Repairer, walk []delta.Delta) {
		t.Helper()
		for i, d := range walk {
			if err := r.Apply(d); err != nil {
				t.Fatalf("step %d: %v", i, err)
			}
		}
	}
	newPair := func() (*Repairer, *Repairer) {
		t.Helper()
		ra, err := g.NewRepairer(annsA, nil)
		if err != nil {
			t.Fatal(err)
		}
		rb, err := g.NewRepairer(annsB, nil)
		if err != nil {
			t.Fatal(err)
		}
		return ra, rb
	}

	// (a) sequential: chain A to completion, then chain B.
	seqA, seqB := newPair()
	run(seqA, walkA)
	run(seqB, walkB)

	// (b) interleaved on one goroutine: A1 B1 A2 B2 ...
	intA, intB := newPair()
	for i := range walkA {
		if err := intA.Apply(walkA[i]); err != nil {
			t.Fatalf("interleaved A step %d: %v", i, err)
		}
		if err := intB.Apply(walkB[i]); err != nil {
			t.Fatalf("interleaved B step %d: %v", i, err)
		}
	}

	// (c) concurrent: each chain on its own goroutine (each repairer
	// stays single-goroutine; only the Graph and class caches are
	// shared).
	conA, conB := newPair()
	var wg sync.WaitGroup
	for _, pair := range []struct {
		r    *Repairer
		walk []delta.Delta
	}{{conA, walkA}, {conB, walkB}} {
		wg.Add(1)
		go func(r *Repairer, walk []delta.Delta) {
			defer wg.Done()
			for _, d := range walk {
				if err := r.Apply(d); err != nil {
					t.Errorf("concurrent chain: %v", err)
					return
				}
			}
		}(pair.r, pair.walk)
	}
	wg.Wait()

	for label, pair := range map[string][2]*Repairer{
		"interleaved": {intA, intB},
		"concurrent":  {conA, conB},
	} {
		for chain, got := range []*Repairer{pair[0], pair[1]} {
			want := [2]*Repairer{seqA, seqB}[chain]
			wc, gc := want.Column(), got.Column()
			for v := range wc {
				if wc[v] != gc[v] {
					t.Fatalf("%s chain %d: AS %d word %#x, sequential %#x", label, chain, v, gc[v], wc[v])
				}
			}
		}
	}
}

// TestRepairScratchAliasGuard locks in the enforcement half of the
// one-scratch-per-repairer contract: an Apply against a scratch that
// is already owned by an in-flight Apply must refuse with an error
// instead of corrupting both columns, and non-overlapping Applies on
// repairers sharing a scratch must keep working.
func TestRepairScratchAliasGuard(t *testing.T) {
	topo := repairTopo(t, 1)
	g, err := FromTopo(topo)
	if err != nil {
		t.Fatal(err)
	}
	sc := g.NewRepairScratch()
	r1, err := g.NewRepairer([]bgp.Announcement{{Origin: 0}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r1.WithScratch(sc)
	r2, err := g.NewRepairer([]bgp.Announcement{{Origin: topo.NumASes() - 1}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2.WithScratch(sc)

	d := delta.Delta{Down: []int{0}}
	// Interleaved (non-overlapping) shared-scratch use stays legal.
	if err := r1.Apply(d); err != nil {
		t.Fatalf("r1 apply: %v", err)
	}
	if err := r2.Apply(d); err != nil {
		t.Fatalf("r2 apply: %v", err)
	}
	// Simulate r1 mid-Apply; r2 must refuse rather than alias.
	sc.busy.Store(true)
	err = r2.Apply(delta.Delta{Up: []int{0}})
	if err == nil || !strings.Contains(err.Error(), "RepairScratch aliased") {
		t.Fatalf("aliased Apply: got %v, want RepairScratch aliased error", err)
	}
	sc.busy.Store(false)
	if err := r2.Apply(delta.Delta{Up: []int{0}}); err != nil {
		t.Fatalf("r2 apply after release: %v", err)
	}
}

// TestEngineClassColumnSingleflight hammers one stub class from many
// goroutines through the public Compute path: every caller must get a
// RIB bit-identical to the sequential answer, and the class cache must
// end up holding exactly one installed column (the in-flight map
// coalesces duplicate misses; run under -race to see the locking).
func TestEngineClassColumnSingleflight(t *testing.T) {
	topo := repairTopo(t, 2)
	e, err := NewEngine(topo)
	if err != nil {
		t.Fatal(err)
	}
	// Pick a stub origin (one with a class).
	origin := -1
	for v := 0; v < topo.NumASes(); v++ {
		if e.g.classOf[v] >= 0 {
			origin = v
			break
		}
	}
	if origin < 0 {
		t.Skip("no stub class in this topology")
	}
	class := e.g.classOf[origin]
	anns := []bgp.Announcement{{Origin: origin}}

	want, err := bgp.NewReference(topo).Compute(anns)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 16
	ribs := make([]*bgp.RIB, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rib, err := e.Compute(anns)
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			ribs[w] = rib
		}(w)
	}
	wg.Wait()
	for w, rib := range ribs {
		if rib == nil {
			t.Fatalf("worker %d: no RIB", w)
		}
		requireSameRIB(t, topo, want, rib, "singleflight worker")
	}

	// Pointer stability: the installed column is the one every later
	// representative query returns.
	rep := e.g.classes[class][0]
	c1, err := e.repColumn(class, rep)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := e.repColumn(class, rep)
	if err != nil {
		t.Fatal(err)
	}
	if &c1[0] != &c2[0] {
		t.Fatal("class column pointer not stable across calls")
	}
	if len(e.inflight) != 0 {
		t.Fatalf("in-flight map not drained: %d entries", len(e.inflight))
	}
}
