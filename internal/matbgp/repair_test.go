package matbgp

import (
	"math/rand"
	"reflect"
	"testing"

	"beatbgp/internal/bgp"
	"beatbgp/internal/delta"
	"beatbgp/internal/topology"
)

func repairTopo(t testing.TB, seed uint64) *topology.Topo {
	t.Helper()
	topo, err := topology.Generate(topology.GenConfig{
		Seed: seed, Tier1Count: 3, TransitsPerRegion: 2, EyeballsPerRegion: 4,
	})
	if err != nil {
		t.Fatalf("generate seed %d: %v", seed, err)
	}
	return topo
}

// checkColumn compares the repairer's column and down set against a
// fresh rebuild at the same cumulative down set.
func checkColumn(t *testing.T, g *Graph, r *Repairer, anns []bgp.Announcement, down map[int]bool, step int) {
	t.Helper()
	want, err := g.column(anns, down)
	if err != nil {
		t.Fatalf("step %d: rebuild: %v", step, err)
	}
	got := r.Column()
	for v := range want {
		if got[v] != want[v] {
			grel, gln, gnh := unpackWord(got[v])
			wrel, wln, wnh := unpackWord(want[v])
			t.Fatalf("step %d: AS %d word diverged: repair (rel %d, ln %d, nh %d) rebuild (rel %d, ln %d, nh %d)",
				step, v, grel, gln, gnh, wrel, wln, wnh)
		}
	}
	rdown := r.Down()
	if len(rdown) != len(down) {
		t.Fatalf("step %d: down set drifted: repair %v vs %v", step, rdown, down)
	}
	for l := range down {
		if !rdown[l] {
			t.Fatalf("step %d: down set drifted: repair %v vs %v", step, rdown, down)
		}
	}
}

// TestRepairMatchesRebuildRandomDeltas drives Repairers through long
// random delta walks — mixed down/up sets, repeated flaps, already-down
// no-ops — over several small worlds and announcement shapes, comparing
// against a fresh rebuild after every delta. This is the tentpole's
// differential contract in unit-test form (FuzzDeltaRepair widens it).
func TestRepairMatchesRebuildRandomDeltas(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 4} {
		topo := repairTopo(t, seed)
		g, err := FromTopo(topo)
		if err != nil {
			t.Fatal(err)
		}
		n, nl := topo.NumASes(), len(topo.Links)
		annSets := [][]bgp.Announcement{
			{{Origin: 0}},
			{{Origin: n - 1}},
			{{Origin: 0}, {Origin: n / 2}, {Origin: n - 1}}, // anycast
			{{Origin: n / 3, Prepend: 2}},
		}
		// Selective announcement at an origin with >1 link, suppressing
		// its first link.
		for v := 0; v < n; v++ {
			if nbs := topo.Neighbors(v); len(nbs) > 1 {
				annSets = append(annSets, []bgp.Announcement{
					{Origin: v, SuppressLinks: map[int]bool{nbs[0].Link: true}},
				})
				break
			}
		}
		rng := rand.New(rand.NewSource(int64(seed) * 7919))
		for ai, anns := range annSets {
			r, err := g.NewRepairer(anns, nil)
			if err != nil {
				t.Fatalf("seed %d anns %d: %v", seed, ai, err)
			}
			down := map[int]bool{}
			for step := 0; step < 60; step++ {
				var d delta.Delta
				for k := rng.Intn(3); k > 0; k-- {
					d.Down = append(d.Down, rng.Intn(nl)) // may already be down
				}
				for k := rng.Intn(3); k > 0; k-- {
					d.Up = append(d.Up, rng.Intn(nl)) // may already be up
				}
				for _, l := range d.Down {
					down[l] = true
				}
				for _, l := range d.Up {
					delete(down, l)
				}
				if err := r.Apply(d); err != nil {
					t.Fatalf("seed %d anns %d step %d: %v", seed, ai, step, err)
				}
				cmp := map[int]bool{}
				for l := range down {
					cmp[l] = true
				}
				if len(cmp) == 0 {
					cmp = nil
				}
				checkColumn(t, g, r, anns, cmp, step)
			}
		}
	}
}

// TestRepairStartsFromDownState covers NewRepairer seeded with a
// non-empty down set, then repairing both directions from there.
func TestRepairStartsFromDownState(t *testing.T) {
	topo := repairTopo(t, 1)
	g, err := FromTopo(topo)
	if err != nil {
		t.Fatal(err)
	}
	anns := []bgp.Announcement{{Origin: 0}}
	down := map[int]bool{0: true, 3: true}
	r, err := g.NewRepairer(anns, down)
	if err != nil {
		t.Fatal(err)
	}
	checkColumn(t, g, r, anns, down, -1)
	if err := r.Apply(delta.Delta{Up: []int{0}, Down: []int{5}}); err != nil {
		t.Fatal(err)
	}
	checkColumn(t, g, r, anns, map[int]bool{3: true, 5: true}, 0)
	// The caller's seed map must not have been aliased.
	if !down[0] || down[5] {
		t.Fatalf("seed down map mutated: %v", down)
	}
}

// TestRepairIgnoresUnknownLinks: deltas naming out-of-range link IDs
// must be tolerated exactly like the rebuild's down map tolerates them.
func TestRepairIgnoresUnknownLinks(t *testing.T) {
	topo := repairTopo(t, 2)
	g, err := FromTopo(topo)
	if err != nil {
		t.Fatal(err)
	}
	anns := []bgp.Announcement{{Origin: 1}}
	r, err := g.NewRepairer(anns, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Apply(delta.Delta{Down: []int{len(topo.Links) + 50, -3, 1}}); err != nil {
		t.Fatal(err)
	}
	checkColumn(t, g, r, anns, map[int]bool{len(topo.Links) + 50: true, -3: true, 1: true}, 0)
}

// TestRibRepairerMatchesComputeWithout walks the Engine's RouteRepairer
// through a delta sequence and requires every epoch's RIB to match
// Engine.ComputeWithout — best routes and offers per AS — and the
// reference engine's rebuild fallback to match both.
func TestRibRepairerMatchesComputeWithout(t *testing.T) {
	topo := repairTopo(t, 3)
	eng, err := NewEngine(topo)
	if err != nil {
		t.Fatal(err)
	}
	ref := bgp.NewReference(topo)
	anns := []bgp.Announcement{{Origin: 0}, {Origin: topo.NumASes() / 2}}
	inc, err := bgp.StartRepair(eng, anns)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := inc.(bgp.RouteRepairer); !ok {
		t.Fatal("engine repairer does not satisfy RouteRepairer")
	}
	fb, err := bgp.StartRepair(ref, anns)
	if err != nil {
		t.Fatal(err)
	}
	deltas := []delta.Delta{
		{},
		{Down: []int{0, 2}},
		{Down: []int{7}, Up: []int{2}},
		{Up: []int{0, 7}},
	}
	down := map[int]bool{}
	for step, d := range deltas {
		if err := inc.Apply(d); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if err := fb.Apply(d); err != nil {
			t.Fatalf("step %d fallback: %v", step, err)
		}
		down = delta.Apply(down, d)
		cmp := map[int]bool{}
		for l := range down {
			cmp[l] = true
		}
		if len(cmp) == 0 {
			cmp = nil
		}
		want, err := eng.ComputeWithout(anns, cmp)
		if err != nil {
			t.Fatalf("step %d rebuild: %v", step, err)
		}
		got, err := inc.RIB()
		if err != nil {
			t.Fatalf("step %d RIB: %v", step, err)
		}
		fbGot, err := fb.RIB()
		if err != nil {
			t.Fatalf("step %d fallback RIB: %v", step, err)
		}
		for as := 0; as < topo.NumASes(); as++ {
			if wb, gb := want.Best(as), got.Best(as); !reflect.DeepEqual(wb, gb) {
				t.Fatalf("step %d AS %d best diverged:\n rebuild %+v\n repair  %+v", step, as, wb, gb)
			}
			if ow, og := want.OffersTo(as), got.OffersTo(as); !reflect.DeepEqual(ow, og) {
				t.Fatalf("step %d AS %d offers diverged", step, as)
			}
			if wb, gb := want.Best(as), fbGot.Best(as); !reflect.DeepEqual(wb, gb) {
				t.Fatalf("step %d AS %d fallback best diverged:\n rebuild %+v\n fallback %+v", step, as, wb, gb)
			}
		}
		// The memoized RIB must be stable until the next Apply.
		again, err := inc.RIB()
		if err != nil || again != got {
			t.Fatalf("step %d: RIB memo not stable (%v)", step, err)
		}
	}
}

// TestStartRepairValidatesAnnouncements: both the incremental and the
// fallback paths must reject invalid announcement sets with the
// reference error text, at StartRepair time.
func TestStartRepairValidatesAnnouncements(t *testing.T) {
	topo := repairTopo(t, 4)
	eng, err := NewEngine(topo)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []bgp.Computer{eng, bgp.NewReference(topo)} {
		if _, err := bgp.StartRepair(c, nil); err == nil || err.Error() != "bgp: no announcements" {
			t.Fatalf("%T: want \"bgp: no announcements\", got %v", c, err)
		}
		dup := []bgp.Announcement{{Origin: 1}, {Origin: 1}}
		if _, err := bgp.StartRepair(c, dup); err == nil || err.Error() != "bgp: duplicate origin 1" {
			t.Fatalf("%T: want duplicate-origin error, got %v", c, err)
		}
	}
}

// FuzzDeltaRepair is the tentpole's fuzz contract: fuzzer-chosen
// announcement sets and delta programs over small worlds, with the
// repaired column compared word-for-word against a fresh rebuild after
// every delta. Run via `make fuzz-delta`.
func FuzzDeltaRepair(f *testing.F) {
	const nseeds = 4
	worlds := make([]*fuzzWorld, nseeds)
	for i := range worlds {
		worlds[i] = fuzzWorldFor(f, uint64(i+1))
	}
	f.Add(uint64(1), []byte{0, 1, 2, 3})
	f.Add(uint64(2), []byte{2, 9, 200, 0, 0, 7, 255, 1})
	f.Add(uint64(3), []byte{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1})
	f.Add(uint64(4), []byte{40, 30, 20, 10, 0, 10, 20, 30, 40})
	f.Fuzz(func(t *testing.T, pick uint64, program []byte) {
		w := worlds[pick%nseeds]
		g := w.eng.g
		topo := w.topo
		n, nl := topo.NumASes(), len(topo.Links)
		i := 0
		byteAt := func() int {
			if i >= len(program) {
				return 0
			}
			b := int(program[i])
			i++
			return b
		}
		var anns []bgp.Announcement
		for k := 1 + byteAt()%3; k > 0; k-- {
			anns = append(anns, bgp.Announcement{Origin: byteAt() % n})
		}
		r, err := g.NewRepairer(anns, nil)
		if err != nil {
			// Invalid set (duplicate origin): the rebuild must agree.
			if _, rerr := g.column(anns, nil); rerr == nil || rerr.Error() != err.Error() {
				t.Fatalf("error divergence: repairer %v, rebuild %v", err, rerr)
			}
			return
		}
		down := map[int]bool{}
		for step := 0; i < len(program) && step < 32; step++ {
			var d delta.Delta
			for k := byteAt() % 3; k > 0; k-- {
				d.Down = append(d.Down, byteAt()%nl)
			}
			for k := byteAt() % 3; k > 0; k-- {
				d.Up = append(d.Up, byteAt()%nl)
			}
			for _, l := range d.Down {
				down[l] = true
			}
			for _, l := range d.Up {
				delete(down, l)
			}
			if err := r.Apply(d); err != nil {
				t.Fatalf("step %d: %v", step, err)
			}
			cmp := map[int]bool{}
			for l := range down {
				cmp[l] = true
			}
			if len(cmp) == 0 {
				cmp = nil
			}
			want, err := g.column(anns, cmp)
			if err != nil {
				t.Fatalf("step %d rebuild: %v", step, err)
			}
			got := r.Column()
			for v := range want {
				if got[v] != want[v] {
					t.Fatalf("step %d AS %d: repair %#x rebuild %#x (delta %v, down %v)",
						step, v, got[v], want[v], d, down)
				}
			}
		}
	})
}
