// Package matbgp is the batch all-pairs BGP engine: Gao–Rexford
// valley-free propagation over flat arrays instead of per-AS maps, in the
// style of matrix-bgpsim. A topology is lowered once into a dense CSR
// adjacency Graph with every decision-process input precomputed (relation
// views, geographic tie-break distances, neighbor ASNs); each prefix then
// propagates frontier-at-a-time — customer routes up by path length, peer
// routes one hop, provider routes down by path length — and the result is
// packed into one 32-bit word per (AS, origin): 2 bits of relation class,
// 10 bits of path length, 20 bits of next hop.
//
// Stub ASes (no customers) with identical provider/peer sets form
// equivalence classes: the column toward any member is identical except
// for the member's own row, the representative's row, and the link choice
// at direct adopters, all of which the engine fixes up at materialization
// time. With hundreds of stubs sharing a few dozen classes this collapses
// most of the all-pairs work.
//
// The recursive engine in internal/bgp is the differential reference:
// Engine must agree with bgp.ComputeWithout bit for bit, including path
// and link slices and every tie-break. See the differential unit and fuzz
// tests in this package.
package matbgp

import (
	"fmt"
	"sort"

	"beatbgp/internal/bgp"
	"beatbgp/internal/topology"
)

// maxASes is the dense-index capacity of the 20-bit next-hop field.
const maxASes = 1 << 20

// maxPathLen is the capacity of the 10-bit path-length field.
const maxPathLen = 1<<10 - 1

// Link declares one adjacency for a Graph built without a topology (the
// synthetic-scale benchmarks). For C2P, A is the customer, mirroring
// topology.Link. DistA/DistB are the geographic tie-break metrics of the
// link as seen from A and B respectively.
type Link struct {
	A, B         int
	Rel          topology.Rel
	DistA, DistB float64
}

// Graph is a topology lowered to dense arrays: a CSR adjacency list per
// AS with the decision process's inputs precomputed per directed edge.
type Graph struct {
	n   int
	asn []int32

	adjOff   []int32   // n+1 offsets into the adjacency arrays
	adjLink  []int32   // link ID
	adjOther []int32   // neighbor AS
	adjView  []uint8   // topology.RelView of the neighbor, from the owner
	adjDist  []float64 // geographic tie-break at the owner for this link
	adjRev   []int32   // index of the mirror adjacency in the neighbor's list

	// linkAdj maps link ID i to its two adjacency indices (2i at the
	// link's A side, 2i+1 at the B side), so delta repair can reach a
	// flapped link's endpoints without scanning the CSR.
	nLinks  int
	linkAdj []int32

	// Stub compression: classOf[v] >= 0 groups stubs (no customer-view
	// adjacencies) by identical (provider set, peer set) signature;
	// classes holds each class's members in ascending order.
	classOf []int32
	classes [][]int32
}

// FromTopo lowers a topology into a Graph, precomputing exactly the
// tie-break distances bgp's decision process would derive on the fly.
func FromTopo(t *topology.Topo) (*Graph, error) {
	n := t.NumASes()
	links := make([]Link, len(t.Links))
	for i, l := range t.Links {
		links[i] = Link{
			A: l.A, B: l.B, Rel: l.Rel,
			DistA: bgp.TieDistKm(t, l.A, l.ID),
			DistB: bgp.TieDistKm(t, l.B, l.ID),
		}
	}
	asn := make([]int, n)
	for i, a := range t.ASes {
		asn[i] = a.ASN
	}
	return New(n, asn, links)
}

// New builds a Graph from first principles: n ASes (dense IDs 0..n-1),
// their ASNs, and the link list in link-ID order. Links must connect
// distinct in-range ASes; link IDs are their indices in the slice,
// matching topology.Topo's dense link numbering.
func New(n int, asn []int, links []Link) (*Graph, error) {
	if n < 0 || n > maxASes {
		return nil, fmt.Errorf("matbgp: %d ASes exceeds the %d dense-index capacity", n, maxASes)
	}
	if len(asn) != n {
		return nil, fmt.Errorf("matbgp: %d ASNs for %d ASes", len(asn), n)
	}
	g := &Graph{n: n, asn: make([]int32, n)}
	for i, a := range asn {
		g.asn[i] = int32(a)
	}
	// Degree count, then CSR fill in link-ID order per AS — the same
	// ascending-link iteration order topology.Neighbors presents, which
	// the reference engine's first-wins tie behavior depends on.
	deg := make([]int32, n)
	for i, l := range links {
		if l.A == l.B || l.A < 0 || l.B < 0 || l.A >= n || l.B >= n {
			return nil, fmt.Errorf("matbgp: link %d endpoints (%d,%d) invalid", i, l.A, l.B)
		}
		deg[l.A]++
		deg[l.B]++
	}
	g.adjOff = make([]int32, n+1)
	for i := 0; i < n; i++ {
		g.adjOff[i+1] = g.adjOff[i] + deg[i]
	}
	m := int(g.adjOff[n])
	g.adjLink = make([]int32, m)
	g.adjOther = make([]int32, m)
	g.adjView = make([]uint8, m)
	g.adjDist = make([]float64, m)
	g.adjRev = make([]int32, m)
	g.nLinks = len(links)
	g.linkAdj = make([]int32, 2*len(links))
	fill := make([]int32, n)
	copy(fill, g.adjOff[:n])
	for i, l := range links {
		ia, ib := fill[l.A], fill[l.B]
		fill[l.A]++
		fill[l.B]++
		g.linkAdj[2*i], g.linkAdj[2*i+1] = ia, ib
		viewA, viewB := topology.ViewPeer, topology.ViewPeer
		if l.Rel == topology.C2P {
			viewA, viewB = topology.ViewProvider, topology.ViewCustomer
		}
		g.adjLink[ia], g.adjOther[ia], g.adjView[ia], g.adjDist[ia], g.adjRev[ia] =
			int32(i), int32(l.B), uint8(viewA), l.DistA, ib
		g.adjLink[ib], g.adjOther[ib], g.adjView[ib], g.adjDist[ib], g.adjRev[ib] =
			int32(i), int32(l.A), uint8(viewB), l.DistB, ia
	}
	g.compress()
	return g, nil
}

// NumASes returns the AS count.
func (g *Graph) NumASes() int { return g.n }

// NumClasses returns the number of stub equivalence classes.
func (g *Graph) NumClasses() int { return len(g.classes) }

// ClassOf returns the stub class of an AS, or -1 for non-stubs.
func (g *Graph) ClassOf(as int) int { return int(g.classOf[as]) }

// ClassMembers returns the members of a stub class, ascending.
func (g *Graph) ClassMembers(class int) []int32 { return g.classes[class] }

// compress groups stubs — ASes with no customer-view adjacencies — by
// their deduplicated (neighbor, view) signature. Two stubs in one class
// see the same provider and peer AS sets; parallel-link multiplicity and
// per-link geography deliberately do not enter the signature, because no
// decision anywhere in a column depends on them except the link choice at
// the origin's direct adopters, which materialization recomputes per
// member. Members of a class are never adjacent to each other (a link
// between them would put each in the other's signature but not its own).
func (g *Graph) compress() {
	g.classOf = make([]int32, g.n)
	bySig := make(map[string]int32)
	var sig []byte
	for v := 0; v < g.n; v++ {
		g.classOf[v] = -1
		stub := true
		for i := g.adjOff[v]; i < g.adjOff[v+1]; i++ {
			if g.adjView[i] == uint8(topology.ViewCustomer) {
				stub = false
				break
			}
		}
		if !stub {
			continue
		}
		// Signature: sorted distinct (neighbor, view) pairs. Adjacencies
		// are link-ordered, so collect then sort.
		type pair struct {
			other int32
			view  uint8
		}
		var pairs []pair
		for i := g.adjOff[v]; i < g.adjOff[v+1]; i++ {
			pairs = append(pairs, pair{g.adjOther[i], g.adjView[i]})
		}
		sort.Slice(pairs, func(i, j int) bool {
			if pairs[i].other != pairs[j].other {
				return pairs[i].other < pairs[j].other
			}
			return pairs[i].view < pairs[j].view
		})
		sig = sig[:0]
		var last pair
		for i, p := range pairs {
			if i > 0 && p == last {
				continue
			}
			last = p
			sig = append(sig,
				byte(p.other), byte(p.other>>8), byte(p.other>>16), p.view)
		}
		id, ok := bySig[string(sig)]
		if !ok {
			id = int32(len(g.classes))
			bySig[string(sig)] = id
			g.classes = append(g.classes, nil)
		}
		g.classOf[v] = id
		g.classes[id] = append(g.classes[id], int32(v))
	}
}
