package matbgp

import (
	"context"
	"fmt"
	"sync/atomic"

	"beatbgp/internal/bgp"
	"beatbgp/internal/delta"
	"beatbgp/internal/topology"
)

// Repairer carries one packed column across topology deltas, repairing
// only the routes a delta can actually change instead of rebuilding the
// column. The contract is bit-identity: after any sequence of Apply
// calls, Column() equals Graph.column(anns, current down set) word for
// word — the full rebuild stays the differential reference (see the
// repair unit tests and FuzzDeltaRepair).
//
// A delta splits into a down-step then an up-step, each individually
// exact against the rebuild with its own down set, so the composition is
// exact too (a column is a pure function of the final down set).
//
// Down-step (links removed; every route weakly worsens in the (class,
// length) order): the only ASes whose decision inputs change directly
// are the removed links' endpoints whose settled next hop is the far
// endpoint under the settled relation view (a removed losing candidate
// never flips a decision), plus — by closure over the route tree, whose
// edges are always adjacencies — every AS whose next-hop chain reaches a
// changed AS.
//
// Up-step (links restored; every route weakly improves): a dominance
// BFS from the restored links' endpoints propagates optimistic (class,
// length) bounds under the Gao–Rexford export rules; an AS whose bound
// cannot beat or tie its current word is pruned, a tie marks the AS
// dirty (its tie-break next hop may change) without cascading (its
// exported class/length — all a neighbor sees — is unchanged), and a
// strict improvement marks and keeps propagating. Bounds are weakly
// better than the true post-delta words, so pruning never drops a
// truly-changed AS.
//
// Both steps then re-run the three valley-free phases restricted to the
// dirty set against the frozen boundary (repairSettle), reproducing the
// reference decision order exactly — and iterate: a node's exported
// offer is (receiver-side class, own length + 1), which can move against
// its own lexicographic (class, length) key when a route changes phase
// (a customer route lost to a shorter peer fallback shortens downstream
// offers in a down-step; a longer customer route gained over a short
// peer route lengthens them in an up-step). After each settle pass the
// repaired words are diffed and any frozen neighbor whose decision the
// change could touch — it routes via a changed node, or the changed
// node's new offer beats or ties its word — joins the dirty set for
// another pass, until a pass changes nothing a frozen node can see
// (settleAndCheck). The dirty set only grows, so the loop terminates;
// at the fixpoint every frozen word is provably the rebuild's.
//
// All repair work is proportional to the affected cone's volume (its
// ASes' adjacency lists), never to the graph: frozen state is read
// straight from the packed column, and the per-AS scratch lives in a
// RepairScratch that many Repairers over one Graph can share. A
// Repairer is not safe for concurrent use, and Repairers sharing a
// scratch must not Apply concurrently.
type Repairer struct {
	g        *Graph
	anns     []bgp.Announcement
	suppress map[int32]map[int]bool
	col      []uint32
	down     map[int]bool
	sc       *RepairScratch
}

// RepairScratch is the reusable per-AS workspace of delta repair. Every
// slot is restored to its zero state between uses, so any number of
// Repairers over the same Graph can share one scratch as long as they
// never Apply concurrently — Apply enforces that with the busy flag
// and returns an error instead of corrupting state if two in-flight
// repairs alias one scratch. A failed Apply (path-length capacity,
// which real worlds never approach) poisons the scratch along with its
// Repairer.
type RepairScratch struct {
	// busy marks the scratch as owned by an in-flight Apply; see
	// Repairer.Apply's aliasing guard.
	busy atomic.Bool

	isDirty  []bool
	dirty    []int32
	queue    []int32
	inq      []bool
	boundRel []uint8
	boundLn  []int32
	bset     []bool
	btouched []int32
	oldWords []uint32

	st        *colState
	buckets   [][]cand
	peerCands []cand
}

// NewRepairScratch allocates a workspace for Repairers over this Graph.
func (g *Graph) NewRepairScratch() *RepairScratch {
	n := g.n
	st := &colState{
		rel:  make([]uint8, n),
		ln:   make([]int32, n),
		nh:   make([]int32, n),
		link: make([]int32, n),
		mark: make([]int32, n),
		best: make([]cand, n),
	}
	for i := range st.rel {
		st.rel[i] = relNone
		st.mark[i] = -1
	}
	return &RepairScratch{
		isDirty:  make([]bool, n),
		inq:      make([]bool, n),
		boundRel: make([]uint8, n),
		boundLn:  make([]int32, n),
		bset:     make([]bool, n),
		st:       st,
	}
}

// NewRepairer builds the initial column for the announcement set under
// the given down set (copied) and returns a Repairer positioned there.
// The workspace is allocated lazily on the first dirty repair; use
// WithScratch to share one across many columns.
func (g *Graph) NewRepairer(anns []bgp.Announcement, down map[int]bool) (*Repairer, error) {
	col, err := g.column(anns, down)
	if err != nil {
		return nil, err
	}
	r := &Repairer{g: g, anns: append([]bgp.Announcement(nil), anns...), col: col}
	for _, a := range r.anns {
		if len(a.SuppressLinks) > 0 {
			if r.suppress == nil {
				r.suppress = make(map[int32]map[int]bool)
			}
			r.suppress[int32(a.Origin)] = a.SuppressLinks
		}
	}
	for l, v := range down {
		if v {
			if r.down == nil {
				r.down = make(map[int]bool)
			}
			r.down[l] = true
		}
	}
	return r, nil
}

// WithScratch makes the Repairer use a shared workspace (which must
// come from the same Graph) and returns the Repairer.
func (r *Repairer) WithScratch(sc *RepairScratch) *Repairer {
	r.sc = sc
	return r
}

// Column returns the current packed column. Shared storage: callers must
// not mutate, and the slice is repaired in place by the next Apply.
func (r *Repairer) Column() []uint32 { return r.col }

// Down returns a copy of the current failed-link set, nil when empty.
func (r *Repairer) Down() map[int]bool {
	if len(r.down) == 0 {
		return nil
	}
	out := make(map[int]bool, len(r.down))
	for l := range r.down {
		out[l] = true
	}
	return out
}

// Apply transitions the column across one topology delta. On error the
// Repairer (and its scratch) is poisoned mid-delta and must be
// discarded.
//
// Aliasing guard: a scratch belongs to at most one in-flight Apply.
// Interleaving Applies on different Repairers sharing a scratch is
// fine (each Apply leaves every slot zeroed for the next); overlapping
// them would silently corrupt both columns, so that is detected and
// refused here rather than left to the race detector.
func (r *Repairer) Apply(d delta.Delta) error {
	return r.ApplyContext(context.Background(), d)
}

// ApplyContext is Apply honoring ctx at the two step boundaries (before
// the down-step and between down- and up-step — the column is never
// abandoned mid-step, so a cancelled Apply leaves the same poisoned-
// but-consistent scratch state as any other failed Apply and the
// Repairer must be discarded per the Apply contract).
func (r *Repairer) ApplyContext(ctx context.Context, d delta.Delta) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	r.ensureScratch()
	if !r.sc.busy.CompareAndSwap(false, true) {
		return fmt.Errorf("matbgp: RepairScratch aliased by a concurrent Apply (one scratch per in-flight repair)")
	}
	defer r.sc.busy.Store(false)
	if err := r.applyDown(d.Down); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return r.applyUp(d.Up)
}

func (r *Repairer) ensureScratch() {
	if r.sc == nil {
		r.sc = r.g.NewRepairScratch()
	}
}

// curWord returns the in-repair state of an AS: the settle scratch for
// dirty ASes (relNone while unsettled), the frozen column word
// otherwise.
func (r *Repairer) curWord(v int32) (rel uint8, ln int32) {
	if r.sc.isDirty[v] {
		return r.sc.st.rel[v], r.sc.st.ln[v]
	}
	if w := r.col[v]; w != 0 {
		rel, ln, _ := unpackWord(w)
		return rel, ln
	}
	return relNone, 0
}

// viewOfRel maps a settled relation class to the adjacency view the
// route was learned over, mirroring learnedLink.
func viewOfRel(rel uint8) uint8 {
	switch rel {
	case relCustomer:
		return uint8(topology.ViewCustomer)
	case relPeer:
		return uint8(topology.ViewPeer)
	default:
		return uint8(topology.ViewProvider)
	}
}

// mark adds an AS to the dirty set.
func (r *Repairer) mark(v int32) {
	if !r.sc.isDirty[v] {
		r.sc.isDirty[v] = true
		r.sc.dirty = append(r.sc.dirty, v)
	}
}

// applyDown removes links from the topology and repairs the withdraw
// cone: seeds are endpoints whose settled route could have been learned
// over a removed link; the cone closes over route-tree descendants,
// which are always neighbors of their parent (a next hop is learned
// over an adjacency), so the closure scans only the cone's adjacencies.
func (r *Repairer) applyDown(links []int) error {
	g := r.g
	var fresh []int32
	for _, l := range links {
		if r.down[l] {
			continue
		}
		if r.down == nil {
			r.down = make(map[int]bool)
		}
		r.down[l] = true
		if l >= 0 && l < g.nLinks {
			fresh = append(fresh, int32(l))
		}
	}
	if len(fresh) == 0 {
		return nil
	}
	r.ensureScratch()
	sc := r.sc
	seed := func(v, far int32, adj int32) {
		w := r.col[v]
		if w == 0 {
			return
		}
		rel, _, nh := unpackWord(w)
		if rel == relOrigin || nh != far || g.adjView[adj] != viewOfRel(rel) {
			return
		}
		r.mark(v)
	}
	for _, l := range fresh {
		ia, ib := g.linkAdj[2*l], g.linkAdj[2*l+1]
		a, b := g.adjOther[ib], g.adjOther[ia]
		seed(a, b, ia)
		seed(b, a, ib)
	}
	if len(sc.dirty) == 0 {
		return nil
	}
	for qh := 0; qh < len(sc.dirty); qh++ {
		v := sc.dirty[qh]
		for i := g.adjOff[v]; i < g.adjOff[v+1]; i++ {
			c := g.adjOther[i]
			if sc.isDirty[c] {
				continue
			}
			if w := r.col[c]; w != 0 {
				if rel, _, nh := unpackWord(w); rel != relOrigin && nh == v {
					r.mark(c)
				}
			}
		}
	}
	err := r.settleAndCheck()
	r.resetDirty()
	return err
}

// settleAndCheck runs restricted settle passes over the dirty set until
// a pass produces no word change that any frozen AS could observe (see
// the type comment's fixpoint argument). Each pass snapshots the dirty
// words, settles, then marks frozen neighbors of changed ASes: ASes
// routing via a changed AS must re-decide, and ASes whose word a
// changed AS's new offer beats or ties might switch to it.
func (r *Repairer) settleAndCheck() error {
	g, sc := r.g, r.sc
	for len(sc.dirty) > 0 {
		sc.oldWords = sc.oldWords[:0]
		for _, v := range sc.dirty {
			sc.oldWords = append(sc.oldWords, r.col[v])
		}
		if err := r.repairSettle(); err != nil {
			return err
		}
		nd := len(sc.dirty)
		for idx := 0; idx < nd; idx++ {
			v := sc.dirty[idx]
			if r.col[v] == sc.oldWords[idx] {
				continue
			}
			rel, ln := relNone, int32(0)
			if w := r.col[v]; w != 0 {
				rel, ln, _ = unpackWord(w)
			}
			for i := g.adjOff[v]; i < g.adjOff[v+1]; i++ {
				w := g.adjOther[i]
				if sc.isDirty[w] {
					continue
				}
				ww := r.col[w]
				wrel, wln := relNone, int32(0)
				if ww != 0 {
					var wnh int32
					wrel, wln, wnh = unpackWord(ww)
					if wrel != relOrigin && wnh == v {
						r.mark(w)
						continue
					}
				}
				// Could v's new offer beat or tie w's word? (v is never
				// an origin, so no suppression on its exports.)
				if rel == relNone || r.down[int(g.adjLink[i])] {
					continue
				}
				var src uint8
				switch g.adjView[i] {
				case uint8(topology.ViewCustomer):
					src = relProvider
				case uint8(topology.ViewProvider):
					if rel > relCustomer {
						continue
					}
					src = relCustomer
				default:
					if rel > relCustomer {
						continue
					}
					src = relPeer
				}
				if keyBetter(src, ln+1, wrel, wln) || (src == wrel && ln+1 == wln) {
					r.mark(w)
				}
			}
		}
		if len(sc.dirty) == nd {
			return nil
		}
	}
	return nil
}

// keyBetter reports whether route key (ra, la) strictly beats (rb, lb)
// in the decision order's first two tiers: relation class, then length.
// relNone (0xFF) orders after every real class, so "unreachable" loses
// to any route.
func keyBetter(ra uint8, la int32, rb uint8, lb int32) bool {
	if ra != rb {
		return ra < rb
	}
	return la < lb
}

// applyUp restores links and repairs the improvement cone found by the
// dominance BFS described on Repairer.
func (r *Repairer) applyUp(links []int) error {
	g := r.g
	var fresh []int32
	for _, l := range links {
		if !r.down[l] {
			continue
		}
		delete(r.down, l)
		if l >= 0 && l < g.nLinks {
			fresh = append(fresh, int32(l))
		}
	}
	if len(fresh) == 0 {
		return nil
	}
	r.ensureScratch()
	sc := r.sc
	// bound returns v's current optimistic (class, length), initializing
	// from the settled word on first touch.
	bound := func(v int32) (uint8, int32) {
		if !sc.bset[v] {
			sc.bset[v] = true
			sc.btouched = append(sc.btouched, v)
			if w := r.col[v]; w != 0 {
				rel, ln, _ := unpackWord(w)
				sc.boundRel[v], sc.boundLn[v] = rel, ln
			} else {
				sc.boundRel[v], sc.boundLn[v] = relNone, 0
			}
		}
		return sc.boundRel[v], sc.boundLn[v]
	}
	// offer delivers an optimistic candidate (src, ln) to w: strict
	// improvement adopts the bound and re-expands, a tie only marks
	// dirty (tie-break next hop may move; exports are unchanged).
	offer := func(w int32, src uint8, ln int32) {
		br, bl := bound(w)
		if keyBetter(src, ln, br, bl) {
			sc.boundRel[w], sc.boundLn[w] = src, ln
			r.mark(w)
			if !sc.inq[w] {
				sc.inq[w] = true
				sc.queue = append(sc.queue, w)
			}
		} else if src == br && ln == bl {
			r.mark(w)
		}
	}
	// relax pushes v's key over its adjacencies under the export rules:
	// customer/origin routes export everywhere, peer/provider routes
	// only to customers. onlyLink restricts to one link (the initial
	// offers across a restored link); -1 means all live adjacencies.
	relax := func(v int32, rel uint8, ln int32, onlyLink int32) {
		if ln >= maxPathLen {
			return // beyond capacity; repairSettle reproduces the error if real
		}
		for i := g.adjOff[v]; i < g.adjOff[v+1]; i++ {
			l := g.adjLink[i]
			if onlyLink >= 0 && l != onlyLink {
				continue
			}
			if r.down[int(l)] {
				continue
			}
			if rel == relOrigin && r.suppress != nil && r.suppress[v][int(l)] {
				continue
			}
			var src uint8
			switch g.adjView[i] {
			case uint8(topology.ViewCustomer):
				src = relProvider // neighbor sees v as its provider
			case uint8(topology.ViewProvider):
				if rel > relCustomer {
					continue // valley: only customer/origin routes go up
				}
				src = relCustomer
			default:
				if rel > relCustomer {
					continue // only customer/origin routes cross a peering
				}
				src = relPeer
			}
			offer(g.adjOther[i], src, ln+1)
		}
	}
	for _, l := range fresh {
		ia, ib := g.linkAdj[2*l], g.linkAdj[2*l+1]
		a, b := g.adjOther[ib], g.adjOther[ia]
		if w := r.col[a]; w != 0 {
			rel, ln, _ := unpackWord(w)
			relax(a, rel, ln, l)
		}
		if w := r.col[b]; w != 0 {
			rel, ln, _ := unpackWord(w)
			relax(b, rel, ln, l)
		}
	}
	for len(sc.queue) > 0 {
		v := sc.queue[len(sc.queue)-1]
		sc.queue = sc.queue[:len(sc.queue)-1]
		sc.inq[v] = false
		relax(v, sc.boundRel[v], sc.boundLn[v], -1)
	}
	for _, v := range sc.btouched {
		sc.bset[v] = false
	}
	sc.btouched = sc.btouched[:0]
	err := r.settleAndCheck()
	r.resetDirty()
	return err
}

func (r *Repairer) resetDirty() {
	sc := r.sc
	for _, v := range sc.dirty {
		sc.isDirty[v] = false
	}
	sc.dirty = sc.dirty[:0]
	sc.queue = sc.queue[:0]
}

// repairSettle recomputes the dirty ASes' words in place against the
// frozen remainder of the column, running the three valley-free phases
// restricted to the dirty set: frozen ASes are read straight from the
// packed column, boundary offers are gathered by scanning only the
// dirty ASes' adjacencies, and the settle machinery confines decisions
// to the dirty set — total work is O(cone adjacency volume). Because
// the frozen words equal the full rebuild's (the callers' cone
// arguments plus settleAndCheck's fixpoint) and every offer a dirty AS
// would see in the full rebuild is either seeded from the frozen
// boundary or generated when a dirty neighbor settles, the waves here
// settle exactly as the full rebuild's do.
func (r *Repairer) repairSettle() error {
	g, sc := r.g, r.sc
	s, dirty, isDirty := sc.st, sc.dirty, sc.isDirty
	for _, v := range dirty {
		s.rel[v] = relNone
		s.mark[v] = -1
	}
	isDown := func(link int32) bool { return r.down != nil && r.down[int(link)] }
	// suppressedC reports origin-side selective announcement for a
	// pusher already known to hold class rel.
	suppressedC := func(rel uint8, as, link int32) bool {
		if rel != relOrigin || r.suppress == nil {
			return false
		}
		return r.suppress[as][int(link)]
	}

	buckets := sc.buckets
	enqueue := func(c cand) {
		for int(c.ln) >= len(buckets) {
			buckets = append(buckets, nil)
		}
		buckets[c.ln] = append(buckets[c.ln], c)
	}
	// push mirrors column's: offers v's settled route over its
	// adjacencies of the given view. Only dirty ASes may adopt, so
	// offers to frozen ones are dropped here.
	push := func(v int32, view uint8) error {
		nl := s.ln[v] + 1
		if nl > maxPathLen {
			return fmt.Errorf("matbgp: path length beyond %d hops", maxPathLen)
		}
		for i := g.adjOff[v]; i < g.adjOff[v+1]; i++ {
			if g.adjView[i] != view || isDown(g.adjLink[i]) || suppressedC(s.rel[v], v, g.adjLink[i]) {
				continue
			}
			to := g.adjOther[i]
			if !isDirty[to] {
				continue
			}
			enqueue(cand{
				to: to, nh: v, link: g.adjLink[i], asn: g.asn[v], ln: nl,
				dist: g.adjDist[g.adjRev[i]],
			})
		}
		return nil
	}
	settleWaves := func(rel uint8, view uint8) error {
		for wl := 0; wl < len(buckets); wl++ {
			pend := buckets[wl]
			if len(pend) == 0 {
				continue
			}
			s.order = s.order[:0]
			for _, c := range pend {
				if s.rel[c.to] != relNone {
					continue
				}
				if s.mark[c.to] != int32(wl) {
					s.mark[c.to] = int32(wl)
					s.best[c.to] = c
					s.order = append(s.order, c.to)
				} else if candLess(c, s.best[c.to]) {
					s.best[c.to] = c
				}
			}
			for _, to := range s.order {
				c := s.best[to]
				s.rel[to], s.ln[to], s.nh[to], s.link[to] = rel, c.ln, c.nh, c.link
				if err := push(to, view); err != nil {
					return err
				}
			}
			buckets[wl] = pend[:0]
		}
		return nil
	}

	// Boundary offers INTO a dirty AS come over the dirty AS's own
	// adjacencies, so each phase seeds by scanning only those. A frozen
	// pusher's offer carries the same (class, length) and receiver-side
	// tie-breaks as in the full rebuild; dirty pushers are handled by
	// settleWaves as they settle.

	// Phase 1 — customer routes flow up: a dirty AS hears from frozen
	// customers holding origin/customer routes.
	for _, v := range dirty {
		for i := g.adjOff[v]; i < g.adjOff[v+1]; i++ {
			if g.adjView[i] != uint8(topology.ViewCustomer) || isDown(g.adjLink[i]) {
				continue
			}
			u := g.adjOther[i]
			if isDirty[u] {
				continue
			}
			rel, ln := r.curWord(u)
			if rel > relCustomer || suppressedC(rel, u, g.adjLink[i]) {
				continue
			}
			if ln+1 > maxPathLen {
				return fmt.Errorf("matbgp: path length beyond %d hops", maxPathLen)
			}
			enqueue(cand{to: v, nh: u, link: g.adjLink[i], asn: g.asn[u], ln: ln + 1, dist: g.adjDist[i]})
		}
	}
	sc.buckets = buckets
	if err := settleWaves(relCustomer, uint8(topology.ViewProvider)); err != nil {
		return err
	}

	// Phase 2 — one peer hop: still-unrouted dirty ASes hear from any
	// neighbor (frozen or just-settled) holding an origin/customer route.
	peerCands := sc.peerCands[:0]
	for _, v := range dirty {
		if s.rel[v] != relNone {
			continue
		}
		for i := g.adjOff[v]; i < g.adjOff[v+1]; i++ {
			if g.adjView[i] != uint8(topology.ViewPeer) || isDown(g.adjLink[i]) {
				continue
			}
			u := g.adjOther[i]
			rel, ln := r.curWord(u)
			if rel > relCustomer || suppressedC(rel, u, g.adjLink[i]) {
				continue
			}
			if ln+1 > maxPathLen {
				return fmt.Errorf("matbgp: path length beyond %d hops", maxPathLen)
			}
			peerCands = append(peerCands, cand{to: v, nh: u, link: g.adjLink[i], asn: g.asn[u], ln: ln + 1, dist: g.adjDist[i]})
		}
	}
	sc.peerCands = peerCands[:0]
	s.order = s.order[:0]
	for _, c := range peerCands {
		if s.rel[c.to] != relNone {
			continue
		}
		if s.mark[c.to] != -2 {
			s.mark[c.to] = -2
			s.best[c.to] = c
			s.order = append(s.order, c.to)
			continue
		}
		b := s.best[c.to]
		if c.ln != b.ln {
			if c.ln < b.ln {
				s.best[c.to] = c
			}
		} else if candLess(c, b) {
			s.best[c.to] = c
		}
	}
	for _, to := range s.order {
		c := s.best[to]
		s.rel[to], s.ln[to], s.nh[to], s.link[to] = relPeer, c.ln, c.nh, c.link
	}

	// Phase 3 — provider routes flow down: still-unrouted dirty ASes
	// hear from any routed provider; dirty ASes settled in earlier
	// phases already appear via the scratch, later settlers push
	// in-wave.
	for _, v := range dirty {
		if s.rel[v] != relNone {
			continue
		}
		for i := g.adjOff[v]; i < g.adjOff[v+1]; i++ {
			if g.adjView[i] != uint8(topology.ViewProvider) || isDown(g.adjLink[i]) {
				continue
			}
			u := g.adjOther[i]
			rel, ln := r.curWord(u)
			if rel == relNone || suppressedC(rel, u, g.adjLink[i]) {
				continue
			}
			if ln+1 > maxPathLen {
				return fmt.Errorf("matbgp: path length beyond %d hops", maxPathLen)
			}
			enqueue(cand{to: v, nh: u, link: g.adjLink[i], asn: g.asn[u], ln: ln + 1, dist: g.adjDist[i]})
		}
	}
	sc.buckets = buckets
	if err := settleWaves(relProvider, uint8(topology.ViewCustomer)); err != nil {
		return err
	}

	sc.buckets = buckets
	for _, v := range dirty {
		if s.rel[v] == relNone {
			r.col[v] = 0
		} else {
			r.col[v] = packWord(s.rel[v], s.ln[v], s.nh[v])
		}
	}
	return nil
}

// ribRepairer is the Engine's bgp.RouteRepairer: it carries a Repairer
// for the packed column and materializes the current epoch's RIB on
// demand — paths, links, and RIB query behavior are bit-identical to
// Engine.ComputeWithout at the same down set, because materialization is
// shared and the column is exact by the Repairer's contract.
type ribRepairer struct {
	e          *Engine
	r          *Repairer
	suppressed map[int]map[int]bool
	rib        *bgp.RIB
}

// StartRepair implements bgp.IncrementalComputer. It is safe to call
// concurrently against one Engine: every returned repairer owns a
// private Repairer whose scratch is allocated lazily for it alone, so
// repair chains started in parallel never alias workspace state. (The
// returned RouteRepairer itself is still single-goroutine, per the
// interface contract.)
func (e *Engine) StartRepair(anns []bgp.Announcement) (bgp.RouteRepairer, error) {
	r, err := e.g.NewRepairer(anns, nil)
	if err != nil {
		return nil, err
	}
	var suppressed map[int]map[int]bool
	for _, a := range anns {
		if len(a.SuppressLinks) > 0 {
			if suppressed == nil {
				suppressed = make(map[int]map[int]bool)
			}
			suppressed[a.Origin] = a.SuppressLinks
		}
	}
	return &ribRepairer{e: e, r: r, suppressed: suppressed}, nil
}

// Apply implements bgp.RouteRepairer.
func (s *ribRepairer) Apply(d delta.Delta) error {
	return s.ApplyContext(context.Background(), d)
}

// ApplyContext implements bgp.ContextRepairer: the column repair checks
// ctx at its step boundaries, so a deadline-carrying query can abandon
// a stalled chain instead of riding it to completion.
func (s *ribRepairer) ApplyContext(ctx context.Context, d delta.Delta) error {
	if d.Empty() {
		return nil
	}
	s.rib = nil
	return s.r.ApplyContext(ctx, d)
}

// RIB implements bgp.RouteRepairer. The returned RIB owns a snapshot of
// the down set (the Repairer's mutates on the next Apply) and is
// memoized until then.
func (s *ribRepairer) RIB() (*bgp.RIB, error) {
	if s.rib != nil {
		return s.rib, nil
	}
	down := s.r.Down()
	best, err := s.e.g.materialize(s.r.col, s.r.anns, down)
	if err != nil {
		return nil, err
	}
	s.rib = bgp.NewRIB(s.e.topo, best, down, s.suppressed)
	return s.rib, nil
}
