package matbgp

import (
	"fmt"
	"reflect"
	"testing"

	"beatbgp/internal/bgp"
	"beatbgp/internal/cable"
	"beatbgp/internal/geo"
	"beatbgp/internal/topology"
)

func genTopo(t *testing.T, seed uint64, eyeballs int) *topology.Topo {
	t.Helper()
	topo, err := topology.Generate(topology.GenConfig{Seed: seed, EyeballsPerRegion: eyeballs})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return topo
}

// requireSameRIB compares every observable of the two RIBs: per-AS best
// routes (paths and links included), neighbor offers, and per-ingress
// re-selection. This is the engine contract — bit identity, not
// approximate agreement.
func requireSameRIB(t *testing.T, topo *topology.Topo, want, got *bgp.RIB, label string) {
	t.Helper()
	for as := 0; as < topo.NumASes(); as++ {
		w, g := want.Best(as), got.Best(as)
		if !reflect.DeepEqual(w, g) {
			t.Fatalf("%s: AS %d best route differs:\n reference %+v\n matbgp    %+v", label, as, w, g)
		}
		if ow, og := want.OffersTo(as), got.OffersTo(as); !reflect.DeepEqual(ow, og) {
			t.Fatalf("%s: AS %d offers differ:\n reference %+v\n matbgp    %+v", label, as, ow, og)
		}
		if len(topo.ASes[as].Cities) > 0 {
			city := topo.ASes[as].Cities[0]
			if fw, fg := want.BestFrom(as, city), got.BestFrom(as, city); !reflect.DeepEqual(fw, fg) {
				t.Fatalf("%s: AS %d BestFrom(%d) differs:\n reference %+v\n matbgp    %+v",
					label, as, city, fw, fg)
			}
		}
	}
}

// TestEngineMatchesReferenceAllOrigins runs the all-pairs workload — one
// plain announcement per AS — through both engines and requires bit
// identity. Stub origins exercise the class cache; transit and Tier-1
// origins exercise direct propagation.
func TestEngineMatchesReferenceAllOrigins(t *testing.T) {
	for _, seed := range []uint64{42, 7} {
		topo := genTopo(t, seed, 6)
		eng, err := NewEngine(topo)
		if err != nil {
			t.Fatalf("seed %d: NewEngine: %v", seed, err)
		}
		ref := bgp.NewReference(topo)
		stubs := 0
		for as := 0; as < topo.NumASes(); as++ {
			if eng.Graph().ClassOf(as) >= 0 {
				stubs++
			}
			anns := []bgp.Announcement{{Origin: as}}
			want, err := ref.Compute(anns)
			if err != nil {
				t.Fatalf("seed %d origin %d: reference: %v", seed, as, err)
			}
			got, err := eng.Compute(anns)
			if err != nil {
				t.Fatalf("seed %d origin %d: matbgp: %v", seed, as, err)
			}
			requireSameRIB(t, topo, want, got, fmt.Sprintf("seed %d origin %d", seed, as))
		}
		if classes := eng.Graph().NumClasses(); classes == 0 || classes >= stubs {
			t.Fatalf("seed %d: compression ineffective: %d classes for %d stubs", seed, classes, stubs)
		}
	}
}

// TestEngineMatchesReferenceAnycast covers the batch engine's direct
// (uncached) path: multi-origin anycast with prepending, selective
// announcement, and failed links.
func TestEngineMatchesReferenceAnycast(t *testing.T) {
	topo := genTopo(t, 42, 6)
	eng, err := NewEngine(topo)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	ref := bgp.NewReference(topo)
	n := topo.NumASes()
	rng := uint64(0xbeefcafe)
	next := func(mod int) int {
		rng = rng*6364136223846793005 + 1442695040888963407
		return int((rng >> 33) % uint64(mod))
	}
	for trial := 0; trial < 60; trial++ {
		norigins := 1 + next(4)
		seen := map[int]bool{}
		var anns []bgp.Announcement
		for len(anns) < norigins {
			o := next(n)
			if seen[o] {
				continue
			}
			seen[o] = true
			a := bgp.Announcement{Origin: o, Prepend: next(3)}
			// Suppress a random subset of the origin's links now and then.
			if next(3) == 0 {
				nbs := topo.Neighbors(o)
				sup := map[int]bool{}
				for _, nb := range nbs {
					if next(2) == 0 {
						sup[nb.Link] = true
					}
				}
				if len(sup) > 0 && len(sup) < len(nbs) {
					a.SuppressLinks = sup
				}
			}
			anns = append(anns, a)
		}
		var down map[int]bool
		if next(2) == 0 {
			down = map[int]bool{}
			for k := 0; k < 1+next(5); k++ {
				down[next(len(topo.Links))] = true
			}
		}
		want, werr := ref.ComputeWithout(anns, down)
		got, gerr := eng.ComputeWithout(anns, down)
		if (werr == nil) != (gerr == nil) {
			t.Fatalf("trial %d: errors diverge: reference %v, matbgp %v", trial, werr, gerr)
		}
		if werr != nil {
			continue
		}
		requireSameRIB(t, topo, want, got, fmt.Sprintf("trial %d", trial))
	}
}

// TestEngineErrorsMatchReference: engine selection must be invisible,
// including in failure modes — messages are compared verbatim.
func TestEngineErrorsMatchReference(t *testing.T) {
	topo := genTopo(t, 7, 6)
	eng, err := NewEngine(topo)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	ref := bgp.NewReference(topo)
	cases := [][]bgp.Announcement{
		nil,
		{{Origin: -1}},
		{{Origin: topo.NumASes()}},
		{{Origin: 3}, {Origin: 3}},
	}
	for i, anns := range cases {
		_, werr := ref.Compute(anns)
		_, gerr := eng.Compute(anns)
		if werr == nil || gerr == nil {
			t.Fatalf("case %d: expected errors, got reference %v, matbgp %v", i, werr, gerr)
		}
		if werr.Error() != gerr.Error() {
			t.Fatalf("case %d: error text differs: reference %q, matbgp %q", i, werr, gerr)
		}
	}
}

// handTopo builds a small topology from scratch on the real city catalog.
func handTopo(t *testing.T) (*topology.Topo, func(asn int, cities []string) int, func(a, b int, rel topology.Rel)) {
	t.Helper()
	catalog := geo.World()
	graph, err := cable.WorldGraph(catalog)
	if err != nil {
		t.Fatalf("world graph: %v", err)
	}
	topo := &topology.Topo{Catalog: catalog, Graph: graph}
	cityID := func(name string) int {
		c, ok := catalog.ByName(name)
		if !ok {
			t.Fatalf("city %q missing", name)
		}
		return c.ID
	}
	addAS := func(asn int, cities []string) int {
		ids := make([]int, len(cities))
		for i, c := range cities {
			ids[i] = cityID(c)
		}
		a, err := topo.AddAS(asn, fmt.Sprintf("AS%d", asn), topology.Transit, geo.Europe, ids, 1.1, topology.EarlyExit)
		if err != nil {
			t.Fatalf("AddAS %d: %v", asn, err)
		}
		return a.ID
	}
	connect := func(a, b int, rel topology.Rel) {
		if _, err := topo.Connect(a, b, rel, nil, false); err != nil {
			t.Fatalf("Connect %d-%d: %v", a, b, err)
		}
	}
	return topo, addAS, connect
}

// TestCompressionEdgeCases pins the equivalence-class machinery on the
// shapes most likely to break it: multi-homed stubs sharing a class, a
// provider-less peer clique (Tier-1 style ASes whose only adjacencies
// are peer links), parallel links to a merged stub, and prefixes
// originated by every member of a merged class. Answers must be
// bit-identical to the reference for every origin.
func TestCompressionEdgeCases(t *testing.T) {
	topo, addAS, connect := handTopo(t)
	// A provider-less Tier-1 clique of three.
	t1a := addAS(100, []string{"London", "Paris", "NewYork", "Frankfurt"})
	t1b := addAS(101, []string{"London", "Frankfurt", "NewYork", "Madrid"})
	t1c := addAS(102, []string{"Paris", "Frankfurt", "London", "Milan"})
	connect(t1a, t1b, topology.P2P)
	connect(t1a, t1c, topology.P2P)
	connect(t1b, t1c, topology.P2P)
	// Two transits buying from parts of the clique.
	tr1 := addAS(200, []string{"London", "Paris", "Amsterdam"})
	tr2 := addAS(201, []string{"Frankfurt", "London", "Vienna"})
	connect(tr1, t1a, topology.C2P)
	connect(tr1, t1b, topology.C2P)
	connect(tr2, t1b, topology.C2P)
	connect(tr2, t1c, topology.C2P)
	connect(tr1, tr2, topology.P2P)
	// Multi-homed stubs with identical provider sets {tr1, tr2}: one
	// class of three, with distinct footprints (distinct geography).
	s1 := addAS(300, []string{"London", "Manchester"})
	s2 := addAS(301, []string{"Paris", "Frankfurt", "Munich"})
	s3 := addAS(302, []string{"London", "Vienna"})
	for _, s := range []int{s1, s2, s3} {
		connect(s, tr1, topology.C2P)
		connect(s, tr2, topology.C2P)
	}
	// A stub with a parallel link to one provider (still {tr1, tr2} as an
	// AS set — the signature ignores multiplicity, the link choice must not).
	s4 := addAS(303, []string{"London", "Amsterdam", "Vienna"})
	connect(s4, tr1, topology.C2P)
	connect(s4, tr1, topology.C2P)
	connect(s4, tr2, topology.C2P)
	// A stub that peers: providers {tr1} and peer {tr2}; and its twin.
	s5 := addAS(304, []string{"Paris", "London", "Vienna"})
	s6 := addAS(305, []string{"Amsterdam", "London", "Frankfurt", "Vienna"})
	for _, s := range []int{s5, s6} {
		connect(s, tr1, topology.C2P)
		connect(s, tr2, topology.P2P)
	}

	eng, err := NewEngine(topo)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	g := eng.Graph()
	// The provider-less clique ASes have customers, so they are not stubs.
	for _, as := range []int{t1a, t1b, t1c, tr1, tr2} {
		if g.ClassOf(as) >= 0 {
			t.Fatalf("AS %d should not be in a stub class", as)
		}
	}
	// {s1,s2,s3,s4} share {tr1,tr2} as providers: one class. {s5,s6}
	// share providers {tr1} and peers {tr2}: another.
	if c := g.ClassOf(s1); c < 0 || g.ClassOf(s2) != c || g.ClassOf(s3) != c || g.ClassOf(s4) != c {
		t.Fatalf("s1..s4 classes = %d,%d,%d,%d; want one shared class",
			g.ClassOf(s1), g.ClassOf(s2), g.ClassOf(s3), g.ClassOf(s4))
	}
	if c := g.ClassOf(s5); c < 0 || g.ClassOf(s6) != c || c == g.ClassOf(s1) {
		t.Fatalf("s5,s6 classes = %d,%d; want a shared class distinct from s1's %d",
			g.ClassOf(s5), g.ClassOf(s6), g.ClassOf(s1))
	}

	ref := bgp.NewReference(topo)
	// Every AS as origin — merged members, the representative itself,
	// clique members — must answer identically to the reference.
	for as := 0; as < topo.NumASes(); as++ {
		anns := []bgp.Announcement{{Origin: as}}
		want, err := ref.Compute(anns)
		if err != nil {
			t.Fatalf("origin %d: reference: %v", as, err)
		}
		got, err := eng.Compute(anns)
		if err != nil {
			t.Fatalf("origin %d: matbgp: %v", as, err)
		}
		requireSameRIB(t, topo, want, got, fmt.Sprintf("hand origin %d", as))
	}

	// A provider-less peer-only AS is a stub too: detach a fresh pair
	// whose only adjacencies are peer links to the clique.
	p1 := addAS(400, []string{"London", "Paris"})
	p2 := addAS(401, []string{"London", "Frankfurt"})
	for _, p := range []int{p1, p2} {
		connect(p, t1a, topology.P2P)
		connect(p, t1b, topology.P2P)
	}
	eng2, err := NewEngine(topo)
	if err != nil {
		t.Fatalf("NewEngine (extended): %v", err)
	}
	if c := eng2.Graph().ClassOf(p1); c < 0 || eng2.Graph().ClassOf(p2) != c {
		t.Fatalf("peer-only stubs p1,p2 classes = %d,%d; want shared",
			eng2.Graph().ClassOf(p1), eng2.Graph().ClassOf(p2))
	}
	ref2 := bgp.NewReference(topo)
	for _, as := range []int{p1, p2, t1a, s1} {
		anns := []bgp.Announcement{{Origin: as}}
		want, err := ref2.Compute(anns)
		if err != nil {
			t.Fatalf("extended origin %d: reference: %v", as, err)
		}
		got, err := eng2.Compute(anns)
		if err != nil {
			t.Fatalf("extended origin %d: matbgp: %v", as, err)
		}
		requireSameRIB(t, topo, want, got, fmt.Sprintf("extended origin %d", as))
	}
}

// TestEngineDeterminism: repeated computes of the same query, cached or
// not, return identical routes.
func TestEngineDeterminism(t *testing.T) {
	topo := genTopo(t, 7, 6)
	eng, err := NewEngine(topo)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	for as := 0; as < topo.NumASes(); as += 7 {
		anns := []bgp.Announcement{{Origin: as}}
		first, err := eng.Compute(anns)
		if err != nil {
			t.Fatalf("origin %d: %v", as, err)
		}
		second, err := eng.Compute(anns)
		if err != nil {
			t.Fatalf("origin %d (repeat): %v", as, err)
		}
		for v := 0; v < topo.NumASes(); v++ {
			if !reflect.DeepEqual(first.Best(v), second.Best(v)) {
				t.Fatalf("origin %d: repeat compute differs at AS %d", as, v)
			}
		}
	}
}
