package matbgp

import (
	"context"
	"errors"
	"testing"

	"beatbgp/internal/bgp"
	"beatbgp/internal/delta"
)

// TestApplyContextBitIdentical: a completed ApplyContext is Apply —
// cancellation support must never change a single routing word.
func TestApplyContextBitIdentical(t *testing.T) {
	topo := repairTopo(t, 3)
	eng, err := NewEngine(topo)
	if err != nil {
		t.Fatal(err)
	}
	anns := []bgp.Announcement{{Origin: 0}}
	plain, err := eng.StartRepair(anns)
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := eng.StartRepair(anns)
	if err != nil {
		t.Fatal(err)
	}
	cr, ok := ctxed.(bgp.ContextRepairer)
	if !ok {
		t.Fatal("engine repairer does not implement bgp.ContextRepairer")
	}
	deltas := []delta.Delta{
		{Down: []int{0, 1}},
		{Up: []int{0}},
		{Down: []int{2}, Up: []int{1}},
		{Up: []int{2}},
	}
	for i, d := range deltas {
		if err := plain.Apply(d); err != nil {
			t.Fatalf("delta %d: Apply: %v", i, err)
		}
		if err := cr.ApplyContext(context.Background(), d); err != nil {
			t.Fatalf("delta %d: ApplyContext: %v", i, err)
		}
		a, err := plain.RIB()
		if err != nil {
			t.Fatal(err)
		}
		b, err := cr.RIB()
		if err != nil {
			t.Fatal(err)
		}
		for as := 0; as < topo.NumASes(); as++ {
			ra, rb := a.Best(as), b.Best(as)
			if ra.Valid != rb.Valid || ra.Link != rb.Link || ra.NextHop != rb.NextHop || len(ra.Path) != len(rb.Path) {
				t.Fatalf("delta %d AS %d: Apply %+v != ApplyContext %+v", i, as, ra, rb)
			}
		}
	}
}

// TestApplyContextCancelled: a cancelled ApplyContext returns the
// context's error and the repairer is treated as poisoned — discarded
// and rebuilt, the fresh chain answers correctly. Nothing shared with
// the engine is corrupted.
func TestApplyContextCancelled(t *testing.T) {
	topo := repairTopo(t, 4)
	eng, err := NewEngine(topo)
	if err != nil {
		t.Fatal(err)
	}
	anns := []bgp.Announcement{{Origin: 0}}
	rep, err := eng.StartRepair(anns)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	d := delta.Delta{Down: []int{0, 1}}
	if err := bgp.ApplyContext(ctx, rep, d); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ApplyContext returned %v, want context.Canceled", err)
	}

	// The poisoned repairer is discarded; a fresh chain over the same
	// engine must agree with a from-scratch rebuild.
	fresh, err := eng.StartRepair(anns)
	if err != nil {
		t.Fatalf("restart after poison: %v", err)
	}
	if err := fresh.Apply(d); err != nil {
		t.Fatal(err)
	}
	got, err := fresh.RIB()
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.ComputeWithout(anns, map[int]bool{0: true, 1: true})
	if err != nil {
		t.Fatal(err)
	}
	for as := 0; as < topo.NumASes(); as++ {
		g, w := got.Best(as), want.Best(as)
		if g.Valid != w.Valid || g.Link != w.Link || g.NextHop != w.NextHop {
			t.Fatalf("AS %d: rebuilt chain %+v != rebuild %+v (engine state corrupted)", as, g, w)
		}
	}
}

// TestApplyContextHelperFallback: bgp.ApplyContext on a non-context
// repairer (the rebuild fallback) still honors an already-expired
// context with a single up-front check.
func TestApplyContextHelperFallback(t *testing.T) {
	topo := repairTopo(t, 5)
	ref := bgp.NewReference(topo)
	rep, err := bgp.StartRepair(ref, []bgp.Announcement{{Origin: 0}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := bgp.ApplyContext(ctx, rep, delta.Delta{Down: []int{0}}); !errors.Is(err, context.Canceled) {
		t.Fatalf("expired ctx through fallback returned %v", err)
	}
	if err := bgp.ApplyContext(context.Background(), rep, delta.Delta{Down: []int{0}}); err != nil {
		t.Fatalf("live ctx through fallback: %v", err)
	}
}
