package matbgp

import (
	"fmt"

	"beatbgp/internal/bgp"
	"beatbgp/internal/topology"
)

// Packed column word layout: bits 0..19 next hop, 20..29 path length,
// 30..31 relation class (bgp.Source values: origin=0, customer=1,
// peer=2, provider=3). A zero word (length 0) means unreachable.
const (
	nhBits  = 20
	nhMask  = 1<<nhBits - 1
	lenBits = 10
	lenMask = 1<<lenBits - 1
)

func packWord(rel uint8, ln, nh int32) uint32 {
	return uint32(nh) | uint32(ln)<<nhBits | uint32(rel)<<(nhBits+lenBits)
}

func unpackWord(w uint32) (rel uint8, ln, nh int32) {
	return uint8(w >> (nhBits + lenBits)), int32(w >> nhBits & lenMask), int32(w & nhMask)
}

// Relation classes during propagation, ordered like bgp.Source. relNone
// marks an unrouted AS.
const (
	relOrigin   = uint8(bgp.SrcOrigin)
	relCustomer = uint8(bgp.SrcCustomer)
	relPeer     = uint8(bgp.SrcPeer)
	relProvider = uint8(bgp.SrcProvider)
	relNone     = uint8(0xFF)
)

// cand is one route offer awaiting an adopter's decision. All fields are
// from the adopter's perspective; ln is the candidate's path length.
type cand struct {
	to, nh, link, asn, ln int32
	dist                  float64
}

// candLess orders same-length candidates by the decision process's
// tie-breaks: nearest interconnect, then lowest neighbor ASN, then lowest
// link ID (the reference engine's first-offered-wins order, since a
// pusher offers its parallel links in ascending link order).
func candLess(a, b cand) bool {
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	if a.asn != b.asn {
		return a.asn < b.asn
	}
	return a.link < b.link
}

// colState is the per-column propagation scratch; one word per AS plus
// the transient link/dist needed for wave selection.
type colState struct {
	rel  []uint8
	ln   []int32
	nh   []int32
	link []int32

	// wave-selection scratch
	mark  []int32 // wave stamp of the pending candidate, -1 when none
	best  []cand  // best pending candidate at the stamped wave
	order []int32 // ASes with pending candidates, first-seen order
}

func newColState(n int) *colState {
	s := &colState{
		rel:  make([]uint8, n),
		ln:   make([]int32, n),
		nh:   make([]int32, n),
		link: make([]int32, n),
		mark: make([]int32, n),
		best: make([]cand, n),
	}
	for i := range s.rel {
		s.rel[i] = relNone
		s.mark[i] = -1
	}
	return s
}

// column runs the three valley-free phases for one announcement set and
// returns the packed result, one word per AS. Errors match the reference
// engine's (bgp.ComputeWithout) byte for byte.
func (g *Graph) column(anns []bgp.Announcement, down map[int]bool) ([]uint32, error) {
	if len(anns) == 0 {
		return nil, fmt.Errorf("bgp: no announcements")
	}
	s := newColState(g.n)
	isDown := func(link int32) bool { return down != nil && down[int(link)] }
	// Origin-side selective announcement, keyed by origin AS.
	var suppress map[int32]map[int]bool
	suppressed := func(as, link int32) bool {
		if suppress == nil || s.rel[as] != relOrigin {
			return false
		}
		return suppress[as][int(link)]
	}

	for _, a := range anns {
		if a.Origin < 0 || a.Origin >= g.n {
			return nil, fmt.Errorf("bgp: origin %d out of range", a.Origin)
		}
		o := int32(a.Origin)
		if s.rel[o] != relNone {
			return nil, fmt.Errorf("bgp: duplicate origin %d", a.Origin)
		}
		ln := int32(1 + a.Prepend)
		if ln < 1 || ln > maxPathLen {
			return nil, fmt.Errorf("matbgp: origin %d prepend %d exceeds the %d-hop path capacity",
				a.Origin, a.Prepend, maxPathLen)
		}
		s.rel[o], s.ln[o], s.nh[o], s.link[o] = relOrigin, ln, o, -1
		if len(a.SuppressLinks) > 0 {
			if suppress == nil {
				suppress = make(map[int32]map[int]bool)
			}
			suppress[o] = a.SuppressLinks
		}
	}

	// Buckets of candidates indexed by path length; waves settle in
	// ascending length so every adopter sees all of its shortest-length
	// offers before deciding, reproducing the reference fixpoint.
	var buckets [][]cand
	enqueue := func(c cand) {
		for int(c.ln) >= len(buckets) {
			buckets = append(buckets, nil)
		}
		buckets[c.ln] = append(buckets[c.ln], c)
	}
	// push offers v's settled route over its adjacencies of the given
	// view, honoring origin-side suppression and failed links.
	push := func(v int32, view uint8) error {
		nl := s.ln[v] + 1
		if nl > maxPathLen {
			return fmt.Errorf("matbgp: path length beyond %d hops", maxPathLen)
		}
		for i := g.adjOff[v]; i < g.adjOff[v+1]; i++ {
			if g.adjView[i] != view || isDown(g.adjLink[i]) || suppressed(v, g.adjLink[i]) {
				continue
			}
			to := g.adjOther[i]
			enqueue(cand{
				to: to, nh: v, link: g.adjLink[i], asn: g.asn[v], ln: nl,
				dist: g.adjDist[g.adjRev[i]],
			})
		}
		return nil
	}
	// settleWaves drains the buckets in ascending length, settling each
	// adopter on its best same-length candidate and pushing onward with
	// the given view. Newly settled ASes adopt `rel`.
	settleWaves := func(rel uint8, view uint8) error {
		for wl := 0; wl < len(buckets); wl++ {
			pend := buckets[wl]
			if len(pend) == 0 {
				continue
			}
			s.order = s.order[:0]
			for _, c := range pend {
				if s.rel[c.to] != relNone {
					continue // settled at a shorter length or better class
				}
				if s.mark[c.to] != int32(wl) {
					s.mark[c.to] = int32(wl)
					s.best[c.to] = c
					s.order = append(s.order, c.to)
				} else if candLess(c, s.best[c.to]) {
					s.best[c.to] = c
				}
			}
			for _, to := range s.order {
				c := s.best[to]
				s.rel[to], s.ln[to], s.nh[to], s.link[to] = rel, c.ln, c.nh, c.link
				if err := push(to, view); err != nil {
					return err
				}
			}
			buckets[wl] = pend[:0]
		}
		return nil
	}

	// Phase 1 — customer routes flow upward, settling by path length.
	for _, a := range anns {
		if err := push(int32(a.Origin), uint8(topology.ViewProvider)); err != nil {
			return nil, err
		}
	}
	if err := settleWaves(relCustomer, uint8(topology.ViewProvider)); err != nil {
		return nil, err
	}

	// Phase 2 — peer routes travel exactly one peer hop: collect every
	// offer from the customer-routed (and origin) ASes, then let each
	// unrouted AS pick its best by (length, distance, ASN, link).
	var peerCands []cand
	for v := int32(0); v < int32(g.n); v++ {
		if s.rel[v] > relCustomer {
			continue
		}
		nl := s.ln[v] + 1
		if nl > maxPathLen {
			return nil, fmt.Errorf("matbgp: path length beyond %d hops", maxPathLen)
		}
		for i := g.adjOff[v]; i < g.adjOff[v+1]; i++ {
			if g.adjView[i] != uint8(topology.ViewPeer) || isDown(g.adjLink[i]) || suppressed(v, g.adjLink[i]) {
				continue
			}
			peerCands = append(peerCands, cand{
				to: g.adjOther[i], nh: v, link: g.adjLink[i], asn: g.asn[v], ln: nl,
				dist: g.adjDist[g.adjRev[i]],
			})
		}
	}
	s.order = s.order[:0]
	for _, c := range peerCands {
		if s.rel[c.to] != relNone {
			continue // customer routes and origins always beat peer offers
		}
		if s.mark[c.to] != -2 {
			s.mark[c.to] = -2
			s.best[c.to] = c
			s.order = append(s.order, c.to)
			continue
		}
		b := s.best[c.to]
		if c.ln != b.ln {
			if c.ln < b.ln {
				s.best[c.to] = c
			}
		} else if candLess(c, b) {
			s.best[c.to] = c
		}
	}
	for _, to := range s.order {
		c := s.best[to]
		s.rel[to], s.ln[to], s.nh[to], s.link[to] = relPeer, c.ln, c.nh, c.link
	}

	// Phase 3 — provider routes flow downward: every routed AS exports to
	// its customers, and newly routed customers keep pushing down.
	for v := int32(0); v < int32(g.n); v++ {
		if s.rel[v] == relNone {
			continue
		}
		if err := push(v, uint8(topology.ViewCustomer)); err != nil {
			return nil, err
		}
	}
	if err := settleWaves(relProvider, uint8(topology.ViewCustomer)); err != nil {
		return nil, err
	}

	col := make([]uint32, g.n)
	for v := 0; v < g.n; v++ {
		if s.rel[v] == relNone {
			continue
		}
		col[v] = packWord(s.rel[v], s.ln[v], s.nh[v])
	}
	return col, nil
}
