package matbgp

import (
	"testing"

	"beatbgp/internal/bgp"
	"beatbgp/internal/delta"
	"beatbgp/internal/topology"
)

// synthWorld builds a 100k-AS three-tier hierarchy from first principles
// (no topology.Topo, no geography): a 10-AS tier-1 clique, nTransit
// transits dual-homed into the clique, and stubs dual-homed into transit
// pairs drawn from a fixed rotation so they collapse into nTransit
// equivalence classes. Link IDs are slice indices, matching New's
// contract; distances vary deterministically so ties exercise the full
// decision order.
func synthWorld(nTier1, nTransit, nStub int) (int, []int, []Link) {
	n := nTier1 + nTransit + nStub
	asn := make([]int, n)
	for i := range asn {
		asn[i] = 100 + i
	}
	dist := func(i int) float64 { return float64(i*37%1000) + 1 }
	var links []Link
	// Tier-1 full mesh, peer to peer.
	for a := 0; a < nTier1; a++ {
		for b := a + 1; b < nTier1; b++ {
			links = append(links, Link{A: a, B: b, Rel: topology.P2P,
				DistA: dist(a + b), DistB: dist(a*3 + b)})
		}
	}
	// Transits: customers of two tier-1s.
	for t := 0; t < nTransit; t++ {
		v := nTier1 + t
		for k := 0; k < 2; k++ {
			p := (t + k*3) % nTier1
			links = append(links, Link{A: v, B: p, Rel: topology.C2P,
				DistA: dist(v + k), DistB: dist(v * 2)})
		}
	}
	// Stubs: customers of a rotating transit pair. Stub i and stub
	// i+nTransit share the same provider pair, hence the same class.
	for s := 0; s < nStub; s++ {
		v := nTier1 + nTransit + s
		p1 := nTier1 + s%nTransit
		p2 := nTier1 + (s+7)%nTransit
		if p1 == p2 {
			p2 = nTier1 + (s+1)%nTransit
		}
		links = append(links, Link{A: v, B: p1, Rel: topology.C2P,
			DistA: dist(s), DistB: dist(s + 11)})
		links = append(links, Link{A: v, B: p2, Rel: topology.C2P,
			DistA: dist(s + 5), DistB: dist(s + 13)})
	}
	return n, asn, links
}

// benchSink defeats dead-code elimination across benchmark iterations.
var benchSink uint32

// BenchmarkMatbgpAllPairs measures the all-pairs sweep at internet scale:
// one packed column per distinct origin — every non-stub AS plus one
// representative per stub equivalence class (the remaining ~97k stub
// columns are O(n) relabels of their representative's, see Engine).
// Columns are streamed through a checksum rather than materialized, so
// the resident set stays at one column regardless of AS count.
func BenchmarkMatbgpAllPairs(b *testing.B) {
	const nTier1, nTransit, nStub = 10, 500, 100000 - 510
	n, asn, links := synthWorld(nTier1, nTransit, nStub)
	g, err := New(n, asn, links)
	if err != nil {
		b.Fatal(err)
	}
	// Distinct columns: all non-stubs, then one representative per class.
	var origins []int
	for v := 0; v < g.NumASes(); v++ {
		if g.ClassOf(v) < 0 {
			origins = append(origins, v)
		}
	}
	for c := 0; c < g.NumClasses(); c++ {
		origins = append(origins, int(g.ClassMembers(c)[0]))
	}
	b.ReportMetric(float64(g.NumASes()), "ases")
	b.ReportMetric(float64(len(origins)), "columns")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum uint32
		for _, origin := range origins {
			col, err := g.column([]bgp.Announcement{{Origin: origin}}, nil)
			if err != nil {
				b.Fatal(err)
			}
			for _, w := range col {
				sum ^= w
			}
		}
		benchSink = sum
	}
}

// BenchmarkTopologyCompress measures lowering + stub-class compression of
// the 100k-AS synthetic world: CSR construction over ~200k links plus the
// signature pass that folds ~99k stubs into ~500 equivalence classes.
func BenchmarkTopologyCompress(b *testing.B) {
	const nTier1, nTransit, nStub = 10, 500, 100000 - 510
	n, asn, links := synthWorld(nTier1, nTransit, nStub)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := New(n, asn, links)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = uint32(g.NumClasses())
	}
}

// BenchmarkDeltaRepair measures event-driven route repair at internet
// scale against the full-rebuild baseline (BenchmarkMatbgpAllPairs is
// the rebuild of the same world). Setup builds one Repairer per
// distinct column — every non-stub plus one representative per stub
// class, the same census the all-pairs sweep uses; each iteration then
// flaps one transit uplink (down delta, then up delta) across all of
// them. Unaffected columns reject the delta with one O(degree) endpoint
// scan, affected ones repair only their withdraw/improve cones, so a
// single-link flap costs milliseconds where the rebuild costs the full
// sweep.
func BenchmarkDeltaRepair(b *testing.B) {
	const nTier1, nTransit, nStub = 10, 500, 100000 - 510
	n, asn, links := synthWorld(nTier1, nTransit, nStub)
	g, err := New(n, asn, links)
	if err != nil {
		b.Fatal(err)
	}
	var origins []int
	for v := 0; v < g.NumASes(); v++ {
		if g.ClassOf(v) < 0 {
			origins = append(origins, v)
		}
	}
	for c := 0; c < g.NumClasses(); c++ {
		origins = append(origins, int(g.ClassMembers(c)[0]))
	}
	sc := g.NewRepairScratch()
	reps := make([]*Repairer, len(origins))
	for i, origin := range origins {
		r, err := g.NewRepairer([]bgp.Announcement{{Origin: origin}}, nil)
		if err != nil {
			b.Fatal(err)
		}
		reps[i] = r.WithScratch(sc)
	}
	// The first transit's first uplink into the tier-1 clique: inside
	// the customer cones of its homed stubs, so the flap dirties a real
	// (but sparse) set of columns.
	flap := nTier1 * (nTier1 - 1) / 2
	downD := delta.Delta{Down: []int{flap}}
	upD := delta.Delta{Up: []int{flap}}
	b.ReportMetric(float64(g.NumASes()), "ases")
	b.ReportMetric(float64(len(reps)), "columns")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum uint32
		for _, r := range reps {
			if err := r.Apply(downD); err != nil {
				b.Fatal(err)
			}
			sum ^= r.Column()[flap%n]
			if err := r.Apply(upD); err != nil {
				b.Fatal(err)
			}
		}
		benchSink = sum
	}
}

// BenchmarkDeltaRepairColumn is the per-column view of the same flap:
// one affected column repaired (down then up) per iteration, directly
// comparable to one g.column rebuild pair at the same down sets
// (BenchmarkDeltaRebuildColumn).
func BenchmarkDeltaRepairColumn(b *testing.B) {
	const nTier1, nTransit, nStub = 10, 500, 100000 - 510
	n, asn, links := synthWorld(nTier1, nTransit, nStub)
	g, err := New(n, asn, links)
	if err != nil {
		b.Fatal(err)
	}
	// Origin homed on the flapped transit (stub 0's first provider is
	// transit 0), so the flap always dirties this column.
	anns := []bgp.Announcement{{Origin: nTier1 + nTransit}}
	r, err := g.NewRepairer(anns, nil)
	if err != nil {
		b.Fatal(err)
	}
	flap := nTier1 * (nTier1 - 1) / 2
	downD := delta.Delta{Down: []int{flap}}
	upD := delta.Delta{Up: []int{flap}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Apply(downD); err != nil {
			b.Fatal(err)
		}
		if err := r.Apply(upD); err != nil {
			b.Fatal(err)
		}
		benchSink = r.Column()[0]
	}
}

// BenchmarkDeltaRebuildColumn is BenchmarkDeltaRepairColumn's rebuild
// baseline: the same two epochs recomputed from scratch.
func BenchmarkDeltaRebuildColumn(b *testing.B) {
	const nTier1, nTransit, nStub = 10, 500, 100000 - 510
	n, asn, links := synthWorld(nTier1, nTransit, nStub)
	g, err := New(n, asn, links)
	if err != nil {
		b.Fatal(err)
	}
	anns := []bgp.Announcement{{Origin: nTier1 + nTransit}}
	flap := nTier1 * (nTier1 - 1) / 2
	down := map[int]bool{flap: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		col, err := g.column(anns, down)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = col[0]
		if col, err = g.column(anns, nil); err != nil {
			b.Fatal(err)
		}
		benchSink ^= col[0]
	}
}
