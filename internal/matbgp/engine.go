package matbgp

import (
	"fmt"
	"sync"

	"beatbgp/internal/bgp"
	"beatbgp/internal/topology"
)

// Engine is the batch bgp.Computer: it lowers the topology into a Graph
// once, computes packed columns by frontier propagation, and caches one
// column per stub equivalence class so repeated single-origin queries —
// the all-pairs and oracle workloads — reuse each other's work.
type Engine struct {
	g    *Graph
	topo *topology.Topo

	mu sync.Mutex
	// classCols caches the packed column of each stub class's
	// representative under a plain announcement (single origin, no
	// prepend, no suppression, no failed links). Columns are immutable
	// once installed, and the first installed pointer is the one every
	// caller sees (pointer stability for downstream memos).
	classCols map[int32][]uint32
	// inflight holds one future per class whose column is being
	// computed right now, so duplicate concurrent requests share a
	// single propagation instead of racing to do the work twice. mu is
	// never held during the propagation itself.
	inflight map[int32]*colFlight
}

// colFlight is a materializing class column: the computing goroutine
// closes done, waiters share the result. A failed compute is not
// cached — the flight is removed before done closes, so later requests
// retry.
type colFlight struct {
	done chan struct{}
	col  []uint32
	err  error
}

// NewEngine lowers the topology and returns the batch engine.
func NewEngine(t *topology.Topo) (*Engine, error) {
	g, err := FromTopo(t)
	if err != nil {
		return nil, err
	}
	return &Engine{g: g, topo: t,
		classCols: make(map[int32][]uint32),
		inflight:  make(map[int32]*colFlight)}, nil
}

// Graph returns the lowered topology, for tests and benchmarks.
func (e *Engine) Graph() *Graph { return e.g }

// Compute implements bgp.Computer.
func (e *Engine) Compute(anns []bgp.Announcement) (*bgp.RIB, error) {
	return e.ComputeWithout(anns, nil)
}

// ComputeWithout implements bgp.Computer. The result is bit-identical to
// the reference engine's: same best routes, paths, links, and RIB query
// behavior (OffersTo, BestFrom) — the differential tests are the contract.
func (e *Engine) ComputeWithout(anns []bgp.Announcement, down map[int]bool) (*bgp.RIB, error) {
	col, err := e.columnFor(anns, down)
	if err != nil {
		return nil, err
	}
	best, err := e.g.materialize(col, anns, down)
	if err != nil {
		return nil, err
	}
	var suppressed map[int]map[int]bool
	for _, a := range anns {
		if len(a.SuppressLinks) > 0 {
			if suppressed == nil {
				suppressed = make(map[int]map[int]bool)
			}
			suppressed[a.Origin] = a.SuppressLinks
		}
	}
	return bgp.NewRIB(e.topo, best, down, suppressed), nil
}

// columnFor routes plain stub-origin queries through the class cache and
// everything else (multi-origin anycast, grooming knobs, failed links)
// through a direct propagation.
func (e *Engine) columnFor(anns []bgp.Announcement, down map[int]bool) ([]uint32, error) {
	g := e.g
	if down == nil && len(anns) == 1 {
		a := anns[0]
		if a.Prepend == 0 && len(a.SuppressLinks) == 0 &&
			a.Origin >= 0 && a.Origin < g.n && g.classOf[a.Origin] >= 0 {
			return e.classColumn(g.classOf[a.Origin], int32(a.Origin))
		}
	}
	return g.column(anns, down)
}

// classColumn returns the plain-announcement column for a stub origin,
// propagating only once per equivalence class. For a non-representative
// member the cached column is exact except for three spots the class
// signature abstracts away, each fixed up here: the member's own row
// (it is the origin now), the representative's row (its geographic
// tie-breaks are its own, so its next hop is re-decided from its
// neighbors' settled routes), and next-hop labels (routes that pointed
// at the representative point at the member). Link IDs at the origin's
// direct adopters also differ, but links are not in the packed word at
// all — materialization reconstructs them per member.
func (e *Engine) classColumn(class, origin int32) ([]uint32, error) {
	g := e.g
	rep := g.classes[class][0]
	col, err := e.repColumn(class, rep)
	if err != nil {
		return nil, err
	}
	if origin == rep {
		return col, nil
	}
	out := make([]uint32, len(col))
	for v, w := range col {
		if rel, ln, nh := unpackWord(w); w != 0 && nh == rep {
			w = packWord(rel, ln, origin)
		}
		out[v] = w
	}
	out[origin] = packWord(relOrigin, 1, origin)
	repRow, err := g.rowForStub(rep, out)
	if err != nil {
		return nil, err
	}
	out[rep] = repRow
	return out, nil
}

// repColumn returns the cached column of a class representative,
// propagating on a miss with the engine lock released. Duplicate
// concurrent misses for the same class coalesce onto one in-flight
// compute; the computing goroutine installs the column, so the first
// installed pointer is the one every present and future caller shares.
func (e *Engine) repColumn(class, rep int32) ([]uint32, error) {
	e.mu.Lock()
	if col, ok := e.classCols[class]; ok {
		e.mu.Unlock()
		return col, nil
	}
	if fl, ok := e.inflight[class]; ok {
		e.mu.Unlock()
		<-fl.done
		return fl.col, fl.err
	}
	fl := &colFlight{done: make(chan struct{})}
	e.inflight[class] = fl
	e.mu.Unlock()

	col, err := e.g.column([]bgp.Announcement{{Origin: int(rep)}}, nil)
	e.mu.Lock()
	delete(e.inflight, class)
	if err == nil {
		e.classCols[class] = col
	}
	e.mu.Unlock()
	fl.col, fl.err = col, err
	close(fl.done)
	return col, err
}

// rowForStub decides a stub's best route against an already-settled
// column in one pass over its neighbors: providers export everything,
// peers export customer-cone routes, and the stub (not an origin here)
// picks by relation class, then length, then its own geographic
// tie-break, neighbor ASN, and link — the full decision process.
func (g *Graph) rowForStub(v int32, col []uint32) (uint32, error) {
	var b cand
	bSrc := relNone
	for i := g.adjOff[v]; i < g.adjOff[v+1]; i++ {
		u := g.adjOther[i]
		if col[u] == 0 {
			continue
		}
		rel, ln, _ := unpackWord(col[u])
		var src uint8
		switch g.adjView[i] {
		case uint8(topology.ViewProvider):
			src = relProvider
		case uint8(topology.ViewPeer):
			if rel > relCustomer {
				continue
			}
			src = relPeer
		default: // a customer adjacency would make v a non-stub
			continue
		}
		c := cand{to: v, nh: u, link: g.adjLink[i], asn: g.asn[u], ln: ln + 1, dist: g.adjDist[i]}
		switch {
		case bSrc == relNone:
		case src != bSrc:
			if src > bSrc {
				continue
			}
		case c.ln != b.ln:
			if c.ln > b.ln {
				continue
			}
		case !candLess(c, b):
			continue
		}
		b, bSrc = c, src
	}
	if bSrc == relNone {
		return 0, nil
	}
	if b.ln > maxPathLen {
		return 0, fmt.Errorf("matbgp: path length beyond %d hops", maxPathLen)
	}
	return packWord(bSrc, b.ln, b.nh), nil
}

// materialize decompresses a packed column into per-AS Routes with path
// and link slices identical to the reference engine's. The learned link
// is not stored in the word; it is provably the (distance, link ID)
// minimum among the AS's live adjacencies toward its next hop under the
// settled relation view, which is exactly what propagation chose.
func (g *Graph) materialize(col []uint32, anns []bgp.Announcement, down map[int]bool) ([]bgp.Route, error) {
	var suppress map[int32]map[int]bool
	for _, a := range anns {
		if len(a.SuppressLinks) > 0 {
			if suppress == nil {
				suppress = make(map[int32]map[int]bool)
			}
			suppress[int32(a.Origin)] = a.SuppressLinks
		}
	}
	best := make([]bgp.Route, g.n)
	// Build in ascending path-length order so every AS extends its next
	// hop's already-built path by one hop.
	maxLn := int32(0)
	for _, w := range col {
		if _, ln, _ := unpackWord(w); w != 0 && ln > maxLn {
			maxLn = ln
		}
	}
	buckets := make([][]int32, maxLn+1)
	for v, w := range col {
		if w == 0 {
			continue
		}
		_, ln, _ := unpackWord(w)
		buckets[ln] = append(buckets[ln], int32(v))
	}
	for ln := int32(1); ln <= maxLn; ln++ {
		for _, v := range buckets[ln] {
			rel, _, nh := unpackWord(col[v])
			if rel == relOrigin {
				path := make([]int, ln)
				for i := range path {
					path[i] = int(v)
				}
				best[v] = bgp.Route{Valid: true, Src: bgp.SrcOrigin, Link: -1, NextHop: -1, Path: path}
				continue
			}
			link, err := g.learnedLink(v, nh, rel, col, down, suppress)
			if err != nil {
				return nil, err
			}
			parent := best[nh]
			path := make([]int, ln)
			path[0] = int(v)
			copy(path[1:], parent.Path)
			links := make([]int, len(parent.Links)+1)
			links[0] = int(link)
			copy(links[1:], parent.Links)
			best[v] = bgp.Route{
				Valid: true, Src: bgp.Source(rel), Link: int(link), NextHop: int(nh),
				Path: path, Links: links,
			}
		}
	}
	return best, nil
}

// learnedLink picks the link an AS learned its settled route over: among
// its live, unsuppressed adjacencies toward the next hop under the
// settled view, the nearest-interconnect one, lowest link ID on ties.
func (g *Graph) learnedLink(v, nh int32, rel uint8, col []uint32, down map[int]bool, suppress map[int32]map[int]bool) (int32, error) {
	var view uint8
	switch rel {
	case relCustomer:
		view = uint8(topology.ViewCustomer)
	case relPeer:
		view = uint8(topology.ViewPeer)
	default:
		view = uint8(topology.ViewProvider)
	}
	nhRel, _, _ := unpackWord(col[nh])
	nhOrigin := col[nh] != 0 && nhRel == relOrigin
	bestLink := int32(-1)
	bestDist := 0.0
	for i := g.adjOff[v]; i < g.adjOff[v+1]; i++ {
		if g.adjOther[i] != nh || g.adjView[i] != view {
			continue
		}
		l := g.adjLink[i]
		if down != nil && down[int(l)] {
			continue
		}
		if nhOrigin && suppress != nil && suppress[nh][int(l)] {
			continue
		}
		d := g.adjDist[i]
		if bestLink < 0 || d < bestDist || (d == bestDist && l < bestLink) {
			bestLink, bestDist = l, d
		}
	}
	if bestLink < 0 {
		return 0, fmt.Errorf("matbgp: internal: no live link from AS %d to next hop %d", v, nh)
	}
	return bestLink, nil
}
