// Package netsim is the latency and congestion engine. It layers dynamic
// and persistent impairments on top of netpath's propagation delays:
//
//   - per-prefix last-mile congestion with a diurnal evening peak and
//     random incidents — this is SHARED FATE: it applies to every route
//     toward the prefix, encoding the paper's §3.1.1 finding that when the
//     BGP path degrades, the alternates usually degrade with it;
//   - per-interdomain-link congestion and persistent impairments — the
//     route-specific component that occasionally makes one egress choice
//     genuinely better than another;
//   - per-AS backbone jitter (small);
//   - link failure processes for availability experiments.
//
// All processes are deterministic functions of (seed, entity, time), so a
// simulation is reproducible and time-travel (evaluating any window in any
// order) is free. Time is simulated minutes from epoch; latencies are
// float64 milliseconds.
package netsim

import (
	"fmt"
	"math"
	"sync"

	"beatbgp/internal/delta"
	"beatbgp/internal/netpath"
	"beatbgp/internal/topology"
	"beatbgp/internal/xrand"
)

// Config tunes the congestion model. The zero value gets defaults.
type Config struct {
	Seed uint64

	// HorizonMinutes bounds the incident schedules; evaluating beyond it
	// returns no incidents. Default 16 days (covers the 10-day Edge
	// Fabric trace plus slack); the cloud-tier study uses its own config.
	HorizonMinutes float64

	// Last-mile (per prefix, shared fate across routes).
	LastMileDiurnalMedianMs float64 // median diurnal peak amplitude (default 3)
	PrefixIncidentsPerDay   float64 // incident rate (default 0.5)
	PrefixIncidentMeanMin   float64 // mean incident duration minutes (default 45)

	// Interdomain links (route specific).
	LinkImpairedProb    float64 // persistent impairment probability (default 0.09)
	LinkImpairMinMs     float64 // impairment range (default 2..12)
	LinkImpairMaxMs     float64
	LinkIncidentsPerDay float64 // incident rate (default 0.12)
	LinkIncidentMeanMin float64 // mean incident duration minutes (default 40)

	// Link failures (availability experiments).
	LinkFailuresPerDay float64 // default 1/30 (one per month)
	LinkRepairMeanMin  float64 // default 60

	// PNIImpairFactor scales the persistent-impairment probability of
	// dedicated private interconnects relative to public links (default
	// 0.15: PNIs are capacity-managed). Setting it to 1 is the ablation
	// that makes PNIs as failure-prone as everything else. Negative
	// values are treated as 0.
	PNIImpairFactor float64

	// DisableSharedFate turns off prefix-level congestion entirely; the
	// ablation for the §3.1.1 hypothesis.
	DisableSharedFate bool
}

// Validate rejects nonsensical parameters. Zero values are fine (they
// select defaults); negative, NaN, or infinite rates and durations, and
// probabilities above 1, are errors.
func (c *Config) Validate() error {
	for name, v := range map[string]float64{
		"HorizonMinutes":          c.HorizonMinutes,
		"LastMileDiurnalMedianMs": c.LastMileDiurnalMedianMs,
		"PrefixIncidentsPerDay":   c.PrefixIncidentsPerDay,
		"PrefixIncidentMeanMin":   c.PrefixIncidentMeanMin,
		"LinkImpairedProb":        c.LinkImpairedProb,
		"LinkImpairMinMs":         c.LinkImpairMinMs,
		"LinkImpairMaxMs":         c.LinkImpairMaxMs,
		"LinkIncidentsPerDay":     c.LinkIncidentsPerDay,
		"LinkIncidentMeanMin":     c.LinkIncidentMeanMin,
		"LinkFailuresPerDay":      c.LinkFailuresPerDay,
		"LinkRepairMeanMin":       c.LinkRepairMeanMin,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("netsim: %s = %v must be finite and non-negative", name, v)
		}
	}
	if c.LinkImpairedProb > 1 {
		return fmt.Errorf("netsim: LinkImpairedProb = %v must be at most 1", c.LinkImpairedProb)
	}
	if math.IsNaN(c.PNIImpairFactor) || math.IsInf(c.PNIImpairFactor, 0) {
		return fmt.Errorf("netsim: PNIImpairFactor = %v must be finite", c.PNIImpairFactor)
	}
	if c.LinkImpairMinMs > 0 && c.LinkImpairMaxMs > 0 && c.LinkImpairMinMs > c.LinkImpairMaxMs {
		return fmt.Errorf("netsim: LinkImpairMinMs %v exceeds LinkImpairMaxMs %v",
			c.LinkImpairMinMs, c.LinkImpairMaxMs)
	}
	return nil
}

func (c *Config) setDefaults() {
	if c.HorizonMinutes == 0 {
		c.HorizonMinutes = 16 * 24 * 60
	}
	if c.LastMileDiurnalMedianMs == 0 {
		c.LastMileDiurnalMedianMs = 3
	}
	if c.PrefixIncidentsPerDay == 0 {
		c.PrefixIncidentsPerDay = 0.5
	}
	if c.PrefixIncidentMeanMin == 0 {
		c.PrefixIncidentMeanMin = 45
	}
	if c.LinkImpairedProb == 0 {
		c.LinkImpairedProb = 0.09
	}
	if c.LinkImpairMinMs == 0 {
		c.LinkImpairMinMs = 2
	}
	if c.LinkImpairMaxMs == 0 {
		c.LinkImpairMaxMs = 12
	}
	if c.LinkIncidentsPerDay == 0 {
		c.LinkIncidentsPerDay = 0.12
	}
	if c.LinkIncidentMeanMin == 0 {
		c.LinkIncidentMeanMin = 40
	}
	if c.LinkFailuresPerDay == 0 {
		c.LinkFailuresPerDay = 1.0 / 30
	}
	if c.LinkRepairMeanMin == 0 {
		c.LinkRepairMeanMin = 60
	}
	if c.PNIImpairFactor == 0 {
		c.PNIImpairFactor = 0.15
	}
	if c.PNIImpairFactor < 0 {
		c.PNIImpairFactor = 0
	}
}

// incident is one congestion (or outage) event on an entity.
type incident struct {
	start, end  float64 // minutes
	magnitudeMs float64 // 0 for outages
}

// entity kinds for seed derivation.
const (
	kindPrefix = iota
	kindLink
	kindAS
	kindLinkFail
)

// FaultOverlay is a scheduled fault process (typically a faults.Timeline)
// composed on top of the stochastic incidents: a link is down when either
// process says so, and injected congestion adds to the drawn congestion.
type FaultOverlay interface {
	// LinkDownAt reports whether an injected fault takes the link down at
	// minute t.
	LinkDownAt(linkID int, t float64) bool
	// ExtraLinkMs returns injected congestion on the link at minute t.
	ExtraLinkMs(linkID int, t float64) float64
}

// Sim evaluates the congestion model. Every per-entity process is a pure
// function of (seed, entity), memoized on first use; the memo is guarded,
// so queries are safe from any number of goroutines and identical under
// any interleaving. Hot parallel loops should still prefer a per-worker
// Clone — it samples the same world from a private memo, trading a little
// duplicated schedule construction for zero lock traffic.
//
// Configuration mutators (SetFaults, ScaleLinkFailures) are not meant for
// concurrent use with queries: install overlays and failure-rate scales
// before fanning out, exactly as before.
type Sim struct {
	topo *topology.Topo
	cfg  Config

	mu        sync.RWMutex
	prefixes  map[int]*prefixProc
	links     map[int]*linkProc
	asNoise   map[int]float64
	linkFails map[int][]incident
	// failRate optionally scales a link's failure rate (e.g. fragile
	// small peers). Set before first Failed query for the link.
	failRate map[int]float64
	faults   FaultOverlay
	epochs   *delta.Sequence
}

type prefixProc struct {
	baseMs     float64 // median last-mile RTT floor
	diurnalMs  float64 // evening-peak amplitude
	phaseHours float64 // local solar offset of the anchor city
	incidents  []incident
}

type linkProc struct {
	impairMs  float64 // persistent extra latency (0 for healthy links)
	diurnalMs float64
	phase     float64
	incidents []incident
}

// New creates a simulator over the topology.
func New(t *topology.Topo, cfg Config) *Sim {
	cfg.setDefaults()
	return &Sim{
		topo:      t,
		cfg:       cfg,
		prefixes:  make(map[int]*prefixProc),
		links:     make(map[int]*linkProc),
		asNoise:   make(map[int]float64),
		linkFails: make(map[int][]incident),
		failRate:  make(map[int]float64),
	}
}

// Config returns the effective configuration (defaults applied).
func (s *Sim) Config() Config { return s.cfg }

// Clone returns a simulator over the same topology, configuration, fault
// overlay, and failure-rate scales, with a private (empty) process memo.
// Because every process is a pure function of (seed, entity), a clone
// returns bit-identical answers to its parent for every query; it exists
// as the per-worker state factory for parallel fan-out (internal/par), so
// hot loops sample without cross-worker lock contention.
func (s *Sim) Clone() *Sim {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c := New(s.topo, s.cfg)
	for l, f := range s.failRate {
		c.failRate[l] = f
	}
	c.faults = s.faults
	c.epochs = s.epochs
	return c
}

// SetFaults installs (or, with nil, removes) a scheduled fault overlay.
// The overlay composes with the stochastic processes — it does not replace
// them — and may be swapped at any time; the underlying stochastic
// schedules are unaffected. The installation itself is guarded, so a
// SetFaults racing a Clone (or another accessor) is safe; queries that
// read the overlay still expect it installed before the fan-out starts,
// per the type's contract.
func (s *Sim) SetFaults(f FaultOverlay) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.faults = f
}

// Faults returns the installed overlay, or nil.
func (s *Sim) Faults() FaultOverlay {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.faults
}

// SetEpochs installs (or, with nil, removes) the compiled epoch sequence
// of the installed fault overlay — the same schedule the overlay answers
// instant queries from, folded into constant-topology spans. It is an
// index, not a second fault source: consumers that cache per-epoch state
// (repaired RIB views, physical-route caches) key on EpochAt(t) so that
// every instant within one epoch shares one cache line, while plain
// instant queries keep going through the overlay. Install it alongside
// SetFaults, before fanning out; a Sequence is immutable, so clones
// share it.
func (s *Sim) SetEpochs(seq *delta.Sequence) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epochs = seq
}

// Epochs returns the installed epoch sequence, or nil.
func (s *Sim) Epochs() *delta.Sequence {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.epochs
}

// EpochAt returns the index of the epoch in effect at minute t, or -1
// when no sequence is installed. Instants outside the compiled span
// clamp to the first or last epoch, mirroring delta.Sequence.At.
func (s *Sim) EpochAt(t float64) int {
	seq := s.Epochs()
	if seq == nil {
		return -1
	}
	return seq.At(t)
}

// rngFor derives a deterministic generator for one entity, independent of
// query order.
func (s *Sim) rngFor(kind, id int) *xrand.Rand {
	h := s.cfg.Seed
	h ^= uint64(kind+1) * 0x9e3779b97f4a7c15
	h = (h ^ uint64(id+1)) * 0xbf58476d1ce4e5b9
	return xrand.New(h)
}

// drawIncidents builds a deterministic incident schedule.
func drawIncidents(rng *xrand.Rand, horizon, perDay, meanDurMin, magXm, magAlpha, magCap float64) []incident {
	if perDay <= 0 {
		return nil
	}
	meanGapMin := 24 * 60 / perDay
	var out []incident
	t := rng.Exp(meanGapMin)
	for t < horizon {
		dur := rng.Exp(meanDurMin)
		mag := rng.Pareto(magXm, magAlpha)
		if mag > magCap {
			mag = magCap
		}
		out = append(out, incident{start: t, end: t + dur, magnitudeMs: mag})
		t += dur + rng.Exp(meanGapMin)
	}
	return out
}

func incidentMs(incidents []incident, t float64) float64 {
	// Schedules are short; linear scan with early exit on sorted starts.
	total := 0.0
	for _, in := range incidents {
		if in.start > t {
			break
		}
		if t < in.end {
			total += in.magnitudeMs
		}
	}
	return total
}

// diurnal returns the evening-peak congestion multiplier in [0,1]:
// a smooth bump centered near 21:00 local time.
func diurnal(tMinutes, phaseHours float64) float64 {
	localHour := math.Mod(tMinutes/60+phaseHours, 24)
	if localHour < 0 {
		localHour += 24
	}
	// Bump between 17:00 and 25:00 (1:00), peaking at 21:00.
	h := localHour
	if h < 12 {
		h += 24 // map early-morning hours to 24..36 so the bump is contiguous
	}
	if h < 17 || h > 25 {
		return 0
	}
	x := math.Sin(math.Pi * (h - 17) / 8)
	return x * x
}

func (s *Sim) prefixProcFor(p topology.Prefix) *prefixProc {
	s.mu.RLock()
	pp, ok := s.prefixes[p.ID]
	s.mu.RUnlock()
	if ok {
		return pp
	}
	rng := s.rngFor(kindPrefix, p.ID)
	origin := s.topo.ASes[p.Origin]
	city := s.topo.Catalog.City(p.City)
	pp = &prefixProc{
		baseMs:     origin.LastMileMs * rng.LogNormal(0, 0.3),
		diurnalMs:  rng.LogNormal(math.Log(s.cfg.LastMileDiurnalMedianMs), 0.8),
		phaseHours: city.Loc.Lon / 15,
		incidents: drawIncidents(rng, s.cfg.HorizonMinutes,
			s.cfg.PrefixIncidentsPerDay, s.cfg.PrefixIncidentMeanMin, 4, 1.3, 200),
	}
	// The process is a pure function of (seed, prefix): a racing build
	// produced an identical value, so keep whichever pointer landed first.
	s.mu.Lock()
	if prior, ok := s.prefixes[p.ID]; ok {
		pp = prior
	} else {
		s.prefixes[p.ID] = pp
	}
	s.mu.Unlock()
	return pp
}

func (s *Sim) linkProcFor(linkID int) *linkProc {
	s.mu.RLock()
	lp, ok := s.links[linkID]
	s.mu.RUnlock()
	if ok {
		return lp
	}
	rng := s.rngFor(kindLink, linkID)
	link := s.topo.Links[linkID]
	// Dedicated private interconnects (PNIs) are capacity-managed by both
	// sides (§3.1.2: providers "avoid congesting the dedicated
	// interconnection"), so they rarely carry a persistent impairment.
	impairProb, impairMax := s.cfg.LinkImpairedProb, s.cfg.LinkImpairMaxMs
	if link.Private && s.cfg.PNIImpairFactor < 1 {
		impairProb *= s.cfg.PNIImpairFactor
		impairMax = s.cfg.LinkImpairMinMs + (impairMax-s.cfg.LinkImpairMinMs)*0.5
	}
	var impair float64
	if rng.Bool(impairProb) {
		impair = rng.Uniform(s.cfg.LinkImpairMinMs, impairMax)
	}
	phase := s.topo.Catalog.City(link.Cities[0]).Loc.Lon / 15
	lp = &linkProc{
		impairMs:  impair,
		diurnalMs: rng.LogNormal(0, 0.8), // median 1 ms
		phase:     phase,
		incidents: drawIncidents(rng, s.cfg.HorizonMinutes,
			s.cfg.LinkIncidentsPerDay, s.cfg.LinkIncidentMeanMin, 3, 1.5, 100),
	}
	s.mu.Lock()
	if prior, ok := s.links[linkID]; ok {
		lp = prior
	} else {
		s.links[linkID] = lp
	}
	s.mu.Unlock()
	return lp
}

func (s *Sim) asNoiseFor(asID int) float64 {
	s.mu.RLock()
	v, ok := s.asNoise[asID]
	s.mu.RUnlock()
	if ok {
		return v
	}
	v = s.rngFor(kindAS, asID).Uniform(0.1, 0.5)
	s.mu.Lock()
	s.asNoise[asID] = v
	s.mu.Unlock()
	return v
}

// LastMileMs returns the shared-fate last-mile latency toward the prefix
// at time t: base access RTT plus diurnal and incident congestion. Every
// route to the prefix pays this identically.
func (s *Sim) LastMileMs(p topology.Prefix, t float64) float64 {
	pp := s.prefixProcFor(p)
	if s.cfg.DisableSharedFate {
		return pp.baseMs
	}
	return pp.baseMs + pp.diurnalMs*diurnal(t, pp.phaseHours) + incidentMs(pp.incidents, t)
}

// LinkMs returns the route-specific latency contribution of one
// interdomain link at time t, including any injected congestion storms.
func (s *Sim) LinkMs(linkID int, t float64) float64 {
	lp := s.linkProcFor(linkID)
	ms := lp.impairMs + lp.diurnalMs*diurnal(t, lp.phase) + incidentMs(lp.incidents, t)
	if s.faults != nil {
		ms += s.faults.ExtraLinkMs(linkID, t)
	}
	return ms
}

// RouteRTTMs returns the instantaneous RTT of a resolved route toward the
// prefix at time t: propagation, per-AS backbone jitter floor, link
// congestion on every crossed interdomain link, and the prefix's
// shared-fate last mile.
func (s *Sim) RouteRTTMs(r netpath.Route, p topology.Prefix, t float64) float64 {
	rtt := r.PropRTTMs()
	for _, h := range r.Hops {
		rtt += s.asNoiseFor(h.AS)
	}
	for _, l := range r.Links {
		rtt += s.LinkMs(l, t)
	}
	rtt += s.LastMileMs(p, t)
	return rtt
}

// MinRTTMs models TCP's MinRTT over a measurement window starting at t:
// the minimum of the instantaneous RTT sampled across the window, plus a
// small sampling residue drawn deterministically from the window identity.
func (s *Sim) MinRTTMs(r netpath.Route, p topology.Prefix, t, windowMin float64) float64 {
	if windowMin <= 0 {
		windowMin = 15
	}
	lo := math.Inf(1)
	const probes = 5
	for i := 0; i < probes; i++ {
		ti := t + windowMin*float64(i)/probes
		if v := s.RouteRTTMs(r, p, ti); v < lo {
			lo = v
		}
	}
	// Sampling residue: MinRTT over finitely many sessions sits slightly
	// above the floor. Keyed by (prefix, window, first link) so repeated
	// evaluation is stable.
	key := p.ID*1_000_003 + int(t/windowMin)
	if len(r.Links) > 0 {
		key = key*31 + r.Links[0]
	}
	rng := s.rngFor(kindAS+17, key)
	return lo + rng.Exp(0.3)
}

// LossRate estimates packet loss on the route at time t, for the TCP
// throughput model: a floor plus congestion-proportional loss.
func (s *Sim) LossRate(r netpath.Route, p topology.Prefix, t float64) float64 {
	cong := 0.0
	for _, l := range r.Links {
		cong += s.LinkMs(l, t)
	}
	cong += s.LastMileMs(p, t) - s.prefixProcFor(p).baseMs
	loss := 0.0005 + cong*0.0004
	if loss > 0.2 {
		loss = 0.2
	}
	return loss
}

// ScaleLinkFailures multiplies the failure rate of a link (e.g. fragile
// small peers fail more often). Must be called before the first Failed
// query for that link.
func (s *Sim) ScaleLinkFailures(linkID int, factor float64) {
	s.failRate[linkID] = factor
}

func (s *Sim) failSchedule(linkID int) []incident {
	s.mu.RLock()
	f, ok := s.linkFails[linkID]
	s.mu.RUnlock()
	if ok {
		return f
	}
	rate := s.cfg.LinkFailuresPerDay
	if scale, ok := s.failRate[linkID]; ok {
		rate *= scale
	}
	rng := s.rngFor(kindLinkFail, linkID)
	f = drawIncidents(rng, s.cfg.HorizonMinutes, rate, s.cfg.LinkRepairMeanMin, 1, 2, 1)
	s.mu.Lock()
	if prior, ok := s.linkFails[linkID]; ok {
		f = prior
	} else {
		s.linkFails[linkID] = f
	}
	s.mu.Unlock()
	return f
}

// LinkFailed reports whether the interdomain link is down at time t,
// either by the stochastic failure process or by an injected fault.
func (s *Sim) LinkFailed(linkID int, t float64) bool {
	if s.faults != nil && s.faults.LinkDownAt(linkID, t) {
		return true
	}
	for _, in := range s.failSchedule(linkID) {
		if in.start > t {
			return false
		}
		if t < in.end {
			return true
		}
	}
	return false
}

// RouteUp reports whether every interdomain link of the route is up at t.
func (s *Sim) RouteUp(r netpath.Route, t float64) bool {
	for _, l := range r.Links {
		if s.LinkFailed(l, t) {
			return false
		}
	}
	return true
}

// DowntimeMinutes sums the link's stochastic outage minutes over [t0, t1).
// Injected faults are not included; query the overlay's own schedule.
func (s *Sim) DowntimeMinutes(linkID int, t0, t1 float64) float64 {
	total := 0.0
	for _, in := range s.failSchedule(linkID) {
		lo, hi := math.Max(in.start, t0), math.Min(in.end, t1)
		if hi > lo {
			total += hi - lo
		}
	}
	return total
}
