package netsim

import (
	"fmt"
	"math"
	"testing"

	"beatbgp/internal/bgp"
	"beatbgp/internal/delta"
	"beatbgp/internal/netpath"
	"beatbgp/internal/topology"
)

// fixture builds a generated topology plus one resolved route to the
// first prefix.
type fixture struct {
	topo   *topology.Topo
	prefix topology.Prefix
	route  netpath.Route
	alt    netpath.Route // a second, different resolved route (may be zero)
}

func setup(t testing.TB) fixture {
	t.Helper()
	topo, err := topology.Generate(topology.GenConfig{Seed: 5, EyeballsPerRegion: 6})
	if err != nil {
		t.Fatal(err)
	}
	oracle := bgp.NewOracle(topo)
	res := netpath.NewResolver(topo)
	for _, p := range topo.Prefixes {
		rib, err := oracle.ToPrefix(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, asID := range topo.ByClass(topology.Eyeball) {
			if asID == p.Origin {
				continue
			}
			r := rib.Best(asID)
			if !r.Valid || len(r.Links) == 0 {
				continue
			}
			src := topo.ASes[asID].Cities[0]
			phys, err := res.Resolve(r, src, p.City)
			if err != nil {
				continue
			}
			f := fixture{topo: topo, prefix: p, route: phys}
			// Find an alternate via offers for richer tests.
			for _, off := range rib.OffersTo(asID) {
				if off.Link == r.Link {
					continue
				}
				if alt, err := res.Resolve(off.Route, src, p.City); err == nil {
					f.alt = alt
					break
				}
			}
			return f
		}
	}
	t.Fatal("no usable fixture")
	return fixture{}
}

func TestRTTAboveProp(t *testing.T) {
	f := setup(t)
	s := New(f.topo, Config{Seed: 1})
	for tm := 0.0; tm < 24*60; tm += 97 {
		rtt := s.RouteRTTMs(f.route, f.prefix, tm)
		if rtt < f.route.PropRTTMs() {
			t.Fatalf("RTT %v below propagation %v", rtt, f.route.PropRTTMs())
		}
	}
}

func TestDeterministicAcrossInstances(t *testing.T) {
	f := setup(t)
	a := New(f.topo, Config{Seed: 9})
	b := New(f.topo, Config{Seed: 9})
	// Query b in a different order to confirm order independence.
	_ = b.RouteRTTMs(f.route, f.prefix, 5000)
	for tm := 0.0; tm < 3000; tm += 333 {
		if av, bv := a.RouteRTTMs(f.route, f.prefix, tm), b.RouteRTTMs(f.route, f.prefix, tm); av != bv {
			t.Fatalf("instances diverge at t=%v: %v vs %v", tm, av, bv)
		}
	}
}

func TestSeedChangesCongestion(t *testing.T) {
	f := setup(t)
	a := New(f.topo, Config{Seed: 1})
	b := New(f.topo, Config{Seed: 2})
	diff := false
	for tm := 0.0; tm < 5000; tm += 100 {
		if a.RouteRTTMs(f.route, f.prefix, tm) != b.RouteRTTMs(f.route, f.prefix, tm) {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds produced identical congestion")
	}
}

func TestSharedFateHitsAllRoutes(t *testing.T) {
	f := setup(t)
	if len(f.alt.Hops) == 0 {
		t.Skip("no alternate route in fixture")
	}
	s := New(f.topo, Config{Seed: 3})
	// Find a moment with a strong prefix incident.
	base := s.prefixProcFor(f.prefix).baseMs
	found := false
	for tm := 0.0; tm < s.cfg.HorizonMinutes; tm += 7 {
		lm := s.LastMileMs(f.prefix, tm)
		if lm > base+10 {
			found = true
			// Both routes see the same surge in their last-mile component.
			r1 := s.RouteRTTMs(f.route, f.prefix, tm)
			r2 := s.RouteRTTMs(f.alt, f.prefix, tm)
			if r1 < lm || r2 < lm {
				t.Fatalf("a route dodged the shared-fate congestion: %v %v < %v", r1, r2, lm)
			}
			break
		}
	}
	if !found {
		t.Skip("no large prefix incident in horizon (rare seed)")
	}
}

func TestDisableSharedFateAblation(t *testing.T) {
	f := setup(t)
	on := New(f.topo, Config{Seed: 4})
	off := New(f.topo, Config{Seed: 4, DisableSharedFate: true})
	base := off.LastMileMs(f.prefix, 0)
	for tm := 0.0; tm < 3*24*60; tm += 13 {
		if off.LastMileMs(f.prefix, tm) != base {
			t.Fatal("ablation still varies last-mile latency")
		}
	}
	varied := false
	for tm := 0.0; tm < 3*24*60; tm += 13 {
		if on.LastMileMs(f.prefix, tm) != on.LastMileMs(f.prefix, 0) {
			varied = true
			break
		}
	}
	if !varied {
		t.Fatal("default config produced flat last-mile latency")
	}
}

func TestDiurnalShape(t *testing.T) {
	// Peak at 21:00 local, zero at noon.
	if d := diurnal(21*60, 0); math.Abs(d-1) > 1e-9 {
		t.Fatalf("diurnal at 21:00 = %v, want 1", d)
	}
	if d := diurnal(12*60, 0); d != 0 {
		t.Fatalf("diurnal at noon = %v, want 0", d)
	}
	// Monotone rise through the evening.
	if diurnal(18*60, 0) >= diurnal(20*60, 0) {
		t.Fatal("diurnal should rise toward the peak")
	}
	// Phase shifts with longitude: 21:00 UTC is off-peak for a +9h city.
	if diurnal(21*60, 9) >= diurnal(12*60, 9) && diurnal(21*60, 9) > 0.5 {
		t.Fatal("phase offset not applied")
	}
	// Always in [0,1].
	for m := 0.0; m < 48*60; m += 11 {
		d := diurnal(m, -7.5)
		if d < 0 || d > 1 {
			t.Fatalf("diurnal out of range: %v", d)
		}
	}
}

func TestMinRTTAtMostMaxOfWindow(t *testing.T) {
	f := setup(t)
	s := New(f.topo, Config{Seed: 6})
	for tm := 0.0; tm < 24*60; tm += 60 {
		minRTT := s.MinRTTMs(f.route, f.prefix, tm, 15)
		// MinRTT must be at least the propagation floor and at most the
		// max instantaneous RTT in the window plus the sampling residue.
		if minRTT < f.route.PropRTTMs() {
			t.Fatalf("MinRTT %v below propagation", minRTT)
		}
		maxInWindow := 0.0
		for i := 0; i < 15; i++ {
			if v := s.RouteRTTMs(f.route, f.prefix, tm+float64(i)); v > maxInWindow {
				maxInWindow = v
			}
		}
		if minRTT > maxInWindow+5 {
			t.Fatalf("MinRTT %v far above window max %v", minRTT, maxInWindow)
		}
	}
}

func TestMinRTTStableAcrossCalls(t *testing.T) {
	f := setup(t)
	s := New(f.topo, Config{Seed: 8})
	a := s.MinRTTMs(f.route, f.prefix, 100, 15)
	b := s.MinRTTMs(f.route, f.prefix, 100, 15)
	if a != b {
		t.Fatalf("MinRTT not stable: %v vs %v", a, b)
	}
}

func TestLossRateBounds(t *testing.T) {
	f := setup(t)
	s := New(f.topo, Config{Seed: 10})
	for tm := 0.0; tm < 24*60; tm += 37 {
		l := s.LossRate(f.route, f.prefix, tm)
		if l < 0.0005 || l > 0.2 {
			t.Fatalf("loss rate %v out of bounds", l)
		}
	}
}

func TestLinkFailures(t *testing.T) {
	f := setup(t)
	s := New(f.topo, Config{Seed: 12, LinkFailuresPerDay: 2})
	link := f.route.Links[0]
	down := 0.0
	for tm := 0.0; tm < 10*24*60; tm++ {
		if s.LinkFailed(link, tm) {
			down++
		}
	}
	if down == 0 {
		t.Fatal("no failures with 2/day over 10 days")
	}
	wantDown := s.DowntimeMinutes(link, 0, 10*24*60)
	if math.Abs(down-wantDown) > wantDown*0.1+5 {
		t.Fatalf("sampled downtime %v vs scheduled %v", down, wantDown)
	}
	// RouteUp is false exactly when some link failed.
	anyDownMoment := -1.0
	for tm := 0.0; tm < 10*24*60; tm++ {
		if s.LinkFailed(link, tm) {
			anyDownMoment = tm
			break
		}
	}
	if anyDownMoment >= 0 && s.RouteUp(f.route, anyDownMoment) {
		t.Fatal("RouteUp true while a link is failed")
	}
}

func TestScaleLinkFailures(t *testing.T) {
	f := setup(t)
	link := f.route.Links[0]
	base := New(f.topo, Config{Seed: 14, LinkFailuresPerDay: 0.5})
	scaled := New(f.topo, Config{Seed: 14, LinkFailuresPerDay: 0.5})
	scaled.ScaleLinkFailures(link, 10)
	horizon := base.cfg.HorizonMinutes
	if b, s2 := base.DowntimeMinutes(link, 0, horizon), scaled.DowntimeMinutes(link, 0, horizon); s2 <= b {
		t.Fatalf("scaled downtime %v not above base %v", s2, b)
	}
}

func TestPersistentImpairmentExists(t *testing.T) {
	f := setup(t)
	s := New(f.topo, Config{Seed: 16})
	impaired := 0
	for l := range f.topo.Links {
		if s.linkProcFor(l).impairMs > 0 {
			impaired++
		}
	}
	frac := float64(impaired) / float64(len(f.topo.Links))
	if frac < 0.02 || frac > 0.15 {
		t.Fatalf("impaired link fraction = %v, want ~0.06", frac)
	}
}

func BenchmarkMinRTT(b *testing.B) {
	f := setup(b)
	s := New(f.topo, Config{Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.MinRTTMs(f.route, f.prefix, float64(i%10000), 15)
	}
}

// TestCloneBitIdentical: a clone samples the same world as its parent —
// the per-worker state-factory contract of the parallel runtime.
func TestCloneBitIdentical(t *testing.T) {
	f := setup(t)
	parent := New(f.topo, Config{Seed: 11})
	// Warm the parent out of order relative to how the clone will query.
	_ = parent.MinRTTMs(f.route, f.prefix, 300, 15)
	clone := parent.Clone()
	for _, tm := range []float64{0, 45, 300, 1440, 9999} {
		if a, b := parent.MinRTTMs(f.route, f.prefix, tm, 15), clone.MinRTTMs(f.route, f.prefix, tm, 15); a != b {
			t.Fatalf("t=%v: clone MinRTT %v != parent %v", tm, b, a)
		}
		if a, b := parent.LastMileMs(f.prefix, tm), clone.LastMileMs(f.prefix, tm); a != b {
			t.Fatalf("t=%v: clone LastMile %v != parent %v", tm, b, a)
		}
		if a, b := parent.RouteUp(f.route, tm), clone.RouteUp(f.route, tm); a != b {
			t.Fatalf("t=%v: clone RouteUp %v != parent %v", tm, b, a)
		}
	}
}

// TestCloneCarriesFailureScales: failure-rate scaling installed before
// cloning must shape the clone's outage schedules identically.
func TestCloneCarriesFailureScales(t *testing.T) {
	f := setup(t)
	if len(f.route.Links) == 0 {
		t.Skip("route crosses no interdomain link")
	}
	parent := New(f.topo, Config{Seed: 3})
	parent.ScaleLinkFailures(f.route.Links[0], 50)
	clone := parent.Clone()
	a := parent.DowntimeMinutes(f.route.Links[0], 0, 16*24*60)
	b := clone.DowntimeMinutes(f.route.Links[0], 0, 16*24*60)
	if a != b {
		t.Fatalf("clone downtime %v != parent %v", b, a)
	}
}

// TestConcurrentQueries hits one shared Sim from many goroutines under
// -race: the memo must stay consistent and the answers bit-identical to a
// serially warmed twin.
func TestConcurrentQueries(t *testing.T) {
	f := setup(t)
	shared := New(f.topo, Config{Seed: 7})
	oracle := New(f.topo, Config{Seed: 7})
	times := make([]float64, 64)
	for i := range times {
		times[i] = float64(i) * 37
	}
	want := make([]float64, len(times))
	for i, tm := range times {
		want[i] = oracle.MinRTTMs(f.route, f.prefix, tm, 15)
	}
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i, tm := range times {
				if got := shared.MinRTTMs(f.route, f.prefix, tm, 15); got != want[i] {
					done <- fmt.Errorf("t=%v: concurrent %v != serial %v", tm, got, want[i])
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestEpochIndex: the installed epoch sequence indexes time into
// constant-topology spans, clones share it, and removing it returns the
// sim to instant-only behavior.
func TestEpochIndex(t *testing.T) {
	f := setup(t)
	s := New(f.topo, Config{Seed: 5})
	if got := s.EpochAt(10); got != -1 {
		t.Fatalf("EpochAt without a sequence = %d, want -1", got)
	}
	seq, err := delta.Compile([]delta.Event{
		{At: 10, Link: 0, Down: true},
		{At: 20, Link: 0, Down: false},
	}, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	s.SetEpochs(seq)
	if s.Epochs() != seq {
		t.Fatal("Epochs does not return the installed sequence")
	}
	for _, probe := range []struct {
		at   float64
		want int
	}{{0, 0}, {9.999, 0}, {10, 1}, {19.999, 1}, {20, 2}, {99, 2}, {500, 2}} {
		if got := s.EpochAt(probe.at); got != probe.want {
			t.Fatalf("EpochAt(%v) = %d, want %d", probe.at, got, probe.want)
		}
	}
	clone := s.Clone()
	if clone.Epochs() != seq || clone.EpochAt(15) != 1 {
		t.Fatal("clone does not carry the epoch sequence")
	}
	s.SetEpochs(nil)
	if got := s.EpochAt(15); got != -1 {
		t.Fatalf("EpochAt after removal = %d, want -1", got)
	}
	// The clone keeps its own reference.
	if clone.EpochAt(15) != 1 {
		t.Fatal("removal on the parent leaked into the clone")
	}
}
