// Package qoe models the user-experience side of latency — the paper's
// framing device ("milliseconds of delay can cause users to abandon a cat
// video") and its §4 call for "a richer understanding of how latency
// impacts user experience and user actions".
//
// The model is the standard industry rule-of-thumb family (the paper's
// ref [17], and the Amazon/Google numbers behind ref [19]): engagement
// decays roughly exponentially in page latency, with sensitivity in the
// region of a percent of conversions per hundred milliseconds. Absolute
// calibration is not the point; the package exists so experiments can
// state results in sessions and engagement rather than milliseconds.
package qoe

import "math"

// Model maps latency to relative engagement.
type Model struct {
	// SensitivityPerMs is the relative engagement lost per millisecond of
	// added latency, in the small-delta regime. The classic numbers
	// (−1%/100ms) give 1e-4.
	SensitivityPerMs float64
	// SessionsPerWeightPerDay converts a prefix's traffic weight into
	// HTTP sessions per day, scaling simulator weights to the paper's
	// "hundreds of trillions of sessions over ten days" universe.
	SessionsPerWeightPerDay float64
}

// Default returns the rule-of-thumb model: 1% engagement per 100 ms, and
// a session scale that puts the simulated world's ten-day trace in the
// paper's order of magnitude.
func Default() Model {
	return Model{
		SensitivityPerMs:        1e-4,
		SessionsPerWeightPerDay: 1e10,
	}
}

// Engagement returns the relative engagement (1 = instantaneous) at the
// given page latency: exp(-sensitivity * ms), the small-delta-consistent
// form that stays positive for tail latencies.
func (m Model) Engagement(latencyMs float64) float64 {
	if latencyMs < 0 {
		latencyMs = 0
	}
	return math.Exp(-m.SensitivityPerMs * latencyMs)
}

// EngagementDelta returns the relative engagement change from reducing
// latency by deltaMs at a baseline (positive = engagement gained).
func (m Model) EngagementDelta(baselineMs, deltaMs float64) float64 {
	return m.Engagement(baselineMs-deltaMs) - m.Engagement(baselineMs)
}

// SessionsPerDay converts a traffic weight into sessions per day.
func (m Model) SessionsPerDay(weight float64) float64 {
	return weight * m.SessionsPerWeightPerDay
}
