package qoe

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEngagementBasics(t *testing.T) {
	m := Default()
	if m.Engagement(0) != 1 {
		t.Fatal("zero latency must give full engagement")
	}
	// ~1% per 100 ms in the small-delta regime.
	drop := 1 - m.Engagement(100)
	if drop < 0.008 || drop > 0.012 {
		t.Fatalf("100ms engagement drop = %v, want ~1%%", drop)
	}
	if m.Engagement(-5) != 1 {
		t.Fatal("negative latency should clamp")
	}
}

func TestEngagementMonotone(t *testing.T) {
	m := Default()
	f := func(a, b uint16) bool {
		x, y := float64(a), float64(b)
		if x > y {
			x, y = y, x
		}
		ex, ey := m.Engagement(x), m.Engagement(y)
		return ex >= ey && ey > 0 && ex <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEngagementDelta(t *testing.T) {
	m := Default()
	// Saving 10ms at a 50ms baseline gains engagement.
	if d := m.EngagementDelta(50, 10); d <= 0 {
		t.Fatalf("saving latency should gain engagement, got %v", d)
	}
	// Saving nothing gains nothing.
	if d := m.EngagementDelta(50, 0); d != 0 {
		t.Fatalf("no saving should gain nothing, got %v", d)
	}
	// Diminishing returns: the same 10ms saving is worth slightly more at
	// a higher baseline under the exponential form? No — worth *less*,
	// since engagement is already lower. Verify the ordering.
	if m.EngagementDelta(300, 10) >= m.EngagementDelta(50, 10) {
		t.Fatal("the exponential form should discount savings at high baselines")
	}
}

func TestSessions(t *testing.T) {
	m := Default()
	if s := m.SessionsPerDay(3); math.Abs(s-3e10) > 1 {
		t.Fatalf("sessions = %v", s)
	}
}
