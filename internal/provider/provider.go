// Package provider models a large content/cloud provider on top of a
// generated topology: PoPs in major metros, a curated private WAN over the
// cable graph, rich peering at every PoP (dedicated PNIs with eyeballs,
// public IXP peering, Tier-1 transit), Edge-Fabric-style egress options
// per ⟨PoP, prefix⟩, and the two cloud networking tiers of the paper's
// §2.3.3 (Premium: enter/exit near the client over the WAN; Standard:
// enter/exit near the data center over the public Internet).
package provider

import (
	"fmt"
	"math"
	"sort"

	"beatbgp/internal/cable"
	"beatbgp/internal/geo"
	"beatbgp/internal/topology"
	"beatbgp/internal/xrand"
)

// Config parameterizes provider construction. The zero value gets defaults.
type Config struct {
	Seed uint64
	Name string // default "CP"
	ASN  int    // default 64500

	// PoPsPerRegion sets how many PoPs to place in each region, at the
	// region's highest-population cities. Defaults approximate a global
	// provider with a few dozen PoPs.
	PoPsPerRegion map[geo.Region]int

	DCCity string // data-center city for the cloud-tier experiments (default "CouncilBluffs")

	TransitCount int // Tier-1 transit contracts (default 3)

	PNIProb        float64 // PNI probability per co-located eyeball (default 0.65)
	PublicPeerProb float64 // public-IXP peering probability otherwise (default 0.5)
	TransitPeerMax int     // regional transits peered per PoP region (default 2)

	WANStretch float64 // WAN operational stretch (default 1.02)

	// DCLocalRadiusKm bounds which transit interconnects count as "near
	// the DC" for the Standard tier (default 1600 km).
	DCLocalRadiusKm float64

	// PeerKeepFraction < 1 drops that fraction of would-be PNI/public
	// peers (the §3.1.3 peering-reduction ablation). Default 1 (keep all).
	PeerKeepFraction float64

	// EuropeAsiaCorridor adds the WAN segment the 2019-era network lacked
	// (Asia reached the rest of the WAN only via the Pacific). Enabling
	// it is the what-if behind the paper's India finding: with westward
	// capacity the WAN no longer hauls Indian traffic the long way.
	EuropeAsiaCorridor bool
}

// Validate rejects nonsensical parameters. Zero values are fine (they
// select defaults).
func (c *Config) Validate() error {
	if c.ASN < 0 {
		return fmt.Errorf("provider: ASN = %d must be non-negative", c.ASN)
	}
	if c.TransitCount < 0 || c.TransitPeerMax < 0 {
		return fmt.Errorf("provider: TransitCount/TransitPeerMax must be non-negative")
	}
	for region, n := range c.PoPsPerRegion {
		if n < 0 {
			return fmt.Errorf("provider: PoPsPerRegion[%v] = %d must be non-negative", region, n)
		}
	}
	for name, v := range map[string]float64{
		"PNIProb": c.PNIProb, "PublicPeerProb": c.PublicPeerProb,
		"PeerKeepFraction": c.PeerKeepFraction,
	} {
		if math.IsNaN(v) || v < 0 || v > 1 {
			return fmt.Errorf("provider: %s = %v must be a probability in [0, 1]", name, v)
		}
	}
	if math.IsNaN(c.WANStretch) || math.IsInf(c.WANStretch, 0) || c.WANStretch < 0 ||
		(c.WANStretch > 0 && c.WANStretch < 1) {
		return fmt.Errorf("provider: WANStretch = %v must be at least 1 (or 0 for the default)", c.WANStretch)
	}
	if math.IsNaN(c.DCLocalRadiusKm) || math.IsInf(c.DCLocalRadiusKm, 0) || c.DCLocalRadiusKm < 0 {
		return fmt.Errorf("provider: DCLocalRadiusKm = %v must be finite and non-negative", c.DCLocalRadiusKm)
	}
	return nil
}

func (c *Config) setDefaults() {
	if c.Name == "" {
		c.Name = "CP"
	}
	if c.ASN == 0 {
		c.ASN = 64500
	}
	if c.PoPsPerRegion == nil {
		c.PoPsPerRegion = map[geo.Region]int{
			geo.NorthAmerica: 8,
			geo.Europe:       8,
			geo.Asia:         6,
			geo.SouthAmerica: 4,
			geo.MiddleEast:   2,
			geo.Africa:       2,
			geo.Oceania:      2,
		}
	}
	if c.DCCity == "" {
		c.DCCity = "CouncilBluffs"
	}
	if c.TransitCount == 0 {
		c.TransitCount = 3
	}
	if c.PNIProb == 0 {
		c.PNIProb = 0.8
	}
	if c.PublicPeerProb == 0 {
		c.PublicPeerProb = 0.6
	}
	if c.TransitPeerMax == 0 {
		c.TransitPeerMax = 3
	}
	if c.WANStretch == 0 {
		c.WANStretch = 1.02
	}
	if c.DCLocalRadiusKm == 0 {
		c.DCLocalRadiusKm = 1600
	}
	if c.PeerKeepFraction == 0 {
		c.PeerKeepFraction = 1
	}
}

// RouteClass classifies an egress option under the provider's BGP policy,
// in decreasing preference order (Facebook's policy per §3.1: private
// peers first, then public peers, then transit).
type RouteClass int

// Egress route classes.
const (
	ClassPNI RouteClass = iota
	ClassPublicPeer
	ClassTransit
)

func (c RouteClass) String() string {
	switch c {
	case ClassPNI:
		return "pni"
	case ClassPublicPeer:
		return "public-peer"
	default:
		return "transit"
	}
}

// Provider is a constructed content/cloud provider.
type Provider struct {
	Topo *topology.Topo
	AS   *topology.AS
	PoPs []int // PoP city IDs, ascending
	DC   int   // data-center city ID

	// link classification
	classes map[int]RouteClass // link ID -> class
	// dcTransitLinks are the DC-local transit links the Standard tier
	// announces over.
	dcTransitLinks []int
	popSet         map[int]bool
}

// Build places the provider into the topology (mutating it) and returns
// the handle. Call once per topology.
func Build(t *topology.Topo, cfg Config) (*Provider, error) {
	cfg.setDefaults()
	rng := xrand.New(cfg.Seed ^ 0xC0FFEE)
	catalog := t.Catalog

	dc, ok := catalog.ByName(cfg.DCCity)
	if !ok {
		return nil, fmt.Errorf("provider: unknown DC city %q", cfg.DCCity)
	}

	// PoPs: top-population cities per region.
	var pops []int
	for _, region := range geo.Regions() {
		n := cfg.PoPsPerRegion[region]
		if n <= 0 {
			continue
		}
		ids := catalog.InRegion(region)
		sort.Slice(ids, func(i, j int) bool {
			a, b := catalog.City(ids[i]), catalog.City(ids[j])
			if a.Pop != b.Pop {
				return a.Pop > b.Pop
			}
			return ids[i] < ids[j]
		})
		if n > len(ids) {
			n = len(ids)
		}
		pops = append(pops, ids[:n]...)
	}
	sort.Ints(pops)

	footprint := append([]int(nil), pops...)
	if !contains(footprint, dc.ID) {
		footprint = append(footprint, dc.ID)
		sort.Ints(footprint)
	}

	wan, err := buildWAN(t.Graph, cfg.Name+"-wan", footprint, dc.ID, cfg.WANStretch, cfg.EuropeAsiaCorridor)
	if err != nil {
		return nil, err
	}
	as, err := t.AddASWithNetwork(cfg.ASN, cfg.Name, topology.Content,
		geo.NorthAmerica, footprint, wan, topology.LateExit)
	if err != nil {
		return nil, err
	}

	p := &Provider{
		Topo:    t,
		AS:      as,
		PoPs:    pops,
		DC:      dc.ID,
		classes: make(map[int]RouteClass),
		popSet:  make(map[int]bool),
	}
	for _, c := range pops {
		p.popSet[c] = true
	}

	if err := p.buyTransit(cfg, rng); err != nil {
		return nil, err
	}
	if err := p.peerAtPoPs(cfg, rng); err != nil {
		return nil, err
	}
	return p, nil
}

func contains(sorted []int, v int) bool {
	i := sort.SearchInts(sorted, v)
	return i < len(sorted) && sorted[i] == v
}

// buildWAN curates the provider backbone: full mesh within each region's
// PoPs plus designated inter-region corridors. Crucially there is NO
// Europe<->Asia corridor: Asian PoPs (including India) reach the rest of
// the WAN via the trans-Pacific gateways, reproducing the eastward
// carriage the paper observed for Google (§3.3.2). Every WAN segment is
// leased along the physical shortest route, so its length is honest.
func buildWAN(g *cable.Graph, name string, cities []int, dc int, stretch float64, europeAsia bool) (*cable.Network, error) {
	catalog := g.Catalog()
	byRegion := make(map[geo.Region][]int)
	for _, c := range cities {
		r := catalog.City(c).Region
		byRegion[r] = append(byRegion[r], c)
	}
	type pair struct{ a, b int }
	var segments []pair
	// Intra-region mesh.
	for _, region := range geo.Regions() {
		ids := byRegion[region]
		for i := 0; i < len(ids); i++ {
			for j := i + 1; j < len(ids); j++ {
				segments = append(segments, pair{ids[i], ids[j]})
			}
		}
	}
	// Inter-region corridors between the geographically best PoP pair of
	// each region pair (the cable landing stations a real WAN would
	// light): trans-Pacific traffic enters North America on the west
	// coast, trans-Atlantic on the east coast.
	gatewayPair := func(r1, r2 geo.Region) (int, int, bool) {
		bestA, bestB, bestKm := -1, -1, math.Inf(1)
		for _, a := range byRegion[r1] {
			for _, b := range byRegion[r2] {
				if sp, ok := g.ShortestPath(a, b); ok && sp.Km < bestKm {
					bestA, bestB, bestKm = a, b, sp.Km
				}
			}
		}
		return bestA, bestB, bestA >= 0
	}
	corridors := [][2]geo.Region{
		{geo.NorthAmerica, geo.Europe},
		{geo.NorthAmerica, geo.Asia},
		{geo.NorthAmerica, geo.SouthAmerica},
		{geo.NorthAmerica, geo.Oceania},
		{geo.Asia, geo.Oceania},
		{geo.Europe, geo.MiddleEast},
		{geo.Europe, geo.Africa},
		// Deliberately absent by default: Europe <-> Asia (2019-era
		// reality; see Config.EuropeAsiaCorridor).
	}
	if europeAsia {
		corridors = append(corridors, [2]geo.Region{geo.Europe, geo.Asia})
	}
	for _, cr := range corridors {
		if a, b, ok := gatewayPair(cr[0], cr[1]); ok {
			segments = append(segments, pair{a, b})
		}
	}
	// Make sure the DC is meshed with its region (it is, via intra-region
	// mesh, since the footprint includes it).
	_ = dc

	var edgeIDs []int
	for _, s := range segments {
		sp, ok := g.ShortestPath(s.a, s.b)
		if !ok {
			return nil, fmt.Errorf("provider: no physical route %d-%d for WAN", s.a, s.b)
		}
		e, err := g.AddEdge(s.a, s.b, sp.Km, false)
		if err != nil {
			return nil, err
		}
		edgeIDs = append(edgeIDs, e.ID)
	}
	n := cable.NewNetwork(g, name, edgeIDs, stretch)
	return n, nil
}

// buyTransit contracts Tier-1 transit: one global link (all shared
// cities) per chosen Tier-1, plus a DC-local link restricted to
// interconnects near the data center for the Standard tier.
func (p *Provider) buyTransit(cfg Config, rng *xrand.Rand) error {
	t := p.Topo
	tier1s := t.ByClass(topology.Tier1)
	perm := rng.Perm(len(tier1s))
	bought := 0
	for _, idx := range perm {
		if bought >= cfg.TransitCount {
			break
		}
		t1 := tier1s[idx]
		shared := topology.SharedCities(p.AS, t.ASes[t1])
		if len(shared) == 0 {
			continue
		}
		link, err := t.Connect(p.AS.ID, t1, topology.C2P, shared, false)
		if err != nil {
			return err
		}
		p.classes[link.ID] = ClassTransit
		// DC-local link: shared cities within the radius of the DC.
		dcLoc := t.Catalog.City(p.DC).Loc
		var near []int
		for _, c := range shared {
			if geo.DistanceKm(dcLoc, t.Catalog.City(c).Loc) <= cfg.DCLocalRadiusKm {
				near = append(near, c)
			}
		}
		if len(near) > 0 {
			local, err := t.Connect(p.AS.ID, t1, topology.C2P, near, false)
			if err != nil {
				return err
			}
			p.classes[local.ID] = ClassTransit
			p.dcTransitLinks = append(p.dcTransitLinks, local.ID)
		}
		bought++
	}
	if bought == 0 {
		return fmt.Errorf("provider: no Tier-1 shares a city with the provider")
	}
	if len(p.dcTransitLinks) == 0 {
		return fmt.Errorf("provider: no transit interconnect within %.0f km of the DC", cfg.DCLocalRadiusKm)
	}
	return nil
}

// peerAtPoPs establishes PNI and public peering with co-located eyeballs
// and regional transits.
func (p *Provider) peerAtPoPs(cfg Config, rng *xrand.Rand) error {
	t := p.Topo
	for _, eyeball := range t.ByClass(topology.Eyeball) {
		shared := topology.SharedCities(p.AS, t.ASes[eyeball])
		var popShared []int
		for _, c := range shared {
			if p.popSet[c] {
				popShared = append(popShared, c)
			}
		}
		if len(popShared) == 0 {
			continue
		}
		if cfg.PeerKeepFraction < 1 && !rng.Bool(cfg.PeerKeepFraction) {
			continue // peering-reduction ablation: drop this peer entirely
		}
		switch {
		case rng.Bool(cfg.PNIProb):
			link, err := t.Connect(eyeball, p.AS.ID, topology.P2P, popShared, true)
			if err != nil {
				return err
			}
			p.classes[link.ID] = ClassPNI
		case rng.Bool(cfg.PublicPeerProb):
			link, err := t.Connect(eyeball, p.AS.ID, topology.P2P, popShared, false)
			if err != nil {
				return err
			}
			p.classes[link.ID] = ClassPublicPeer
		}
	}
	// Public peering with regional transits (route diversity at PoPs).
	for _, region := range geo.Regions() {
		count := 0
		for _, tr := range t.ByClass(topology.Transit) {
			if count >= cfg.TransitPeerMax {
				break
			}
			if t.ASes[tr].Region != region {
				continue
			}
			shared := topology.SharedCities(p.AS, t.ASes[tr])
			var popShared []int
			for _, c := range shared {
				if p.popSet[c] {
					popShared = append(popShared, c)
				}
			}
			if len(popShared) == 0 {
				continue
			}
			link, err := t.Connect(tr, p.AS.ID, topology.P2P, popShared, false)
			if err != nil {
				return err
			}
			p.classes[link.ID] = ClassPublicPeer
			count++
		}
	}
	return nil
}

// LinkClass returns the provider's classification of one of its links.
func (p *Provider) LinkClass(linkID int) (RouteClass, bool) {
	c, ok := p.classes[linkID]
	return c, ok
}

// PeerLinks returns the provider's links of the given class.
func (p *Provider) PeerLinks(class RouteClass) []int {
	var out []int
	for id, c := range p.classes {
		if c == class {
			out = append(out, id)
		}
	}
	sort.Ints(out)
	return out
}

// ServingPoP returns the PoP city nearest (geodesically) to the client
// city — the paper's setting where DNS/anycast has already steered the
// client to a close PoP and the question is egress selection.
func (p *Provider) ServingPoP(clientCity int) int {
	loc := p.Topo.Catalog.City(clientCity).Loc
	best, bestKm := -1, math.Inf(1)
	for _, c := range p.PoPs {
		if d := geo.DistanceKm(loc, p.Topo.Catalog.City(c).Loc); d < bestKm {
			best, bestKm = c, d
		}
	}
	return best
}

// PoPDistanceKm returns the geodesic distance from a client city to its
// serving PoP.
func (p *Provider) PoPDistanceKm(clientCity int) float64 {
	pop := p.ServingPoP(clientCity)
	return geo.DistanceKm(p.Topo.Catalog.City(clientCity).Loc, p.Topo.Catalog.City(pop).Loc)
}
