package provider

import (
	"testing"
	"testing/quick"
)

func TestAssignNoConstraintsKeepsPreferred(t *testing.T) {
	demands := []Demand{
		{Volume: 10, Links: []int{1, 2}},
		{Volume: 5, Links: []int{1, 3}},
	}
	choice, detoured := AssignUnderCapacity(demands, Capacities{PerLink: map[int]float64{}})
	if detoured != 0 {
		t.Fatalf("detoured %v with no constraints", detoured)
	}
	for i, c := range choice {
		if c != 0 {
			t.Fatalf("demand %d moved off preferred route", i)
		}
	}
}

func TestAssignDetoursOverload(t *testing.T) {
	// Link 1 has capacity 12; demands total 15, so something must move to
	// link 2 (unconstrained).
	demands := []Demand{
		{Volume: 10, Links: []int{1, 2}},
		{Volume: 5, Links: []int{1, 2}},
	}
	caps := Capacities{PerLink: map[int]float64{1: 12}}
	choice, detoured := AssignUnderCapacity(demands, caps)
	if detoured == 0 {
		t.Fatal("no detour despite overload")
	}
	load1 := 0.0
	for i, d := range demands {
		if d.Links[choice[i]] == 1 {
			load1 += d.Volume
		}
	}
	if load1 > 12 {
		t.Fatalf("link 1 still overloaded: %v", load1)
	}
	// Largest flow moves first.
	if choice[0] != 1 {
		t.Fatalf("expected the 10-unit flow to move, choices %v", choice)
	}
}

func TestAssignRespectsAlternateCapacity(t *testing.T) {
	// Both links constrained; alternate can only absorb the small flow.
	demands := []Demand{
		{Volume: 10, Links: []int{1, 2}},
		{Volume: 2, Links: []int{1, 2}},
	}
	caps := Capacities{PerLink: map[int]float64{1: 9, 2: 3}}
	choice, _ := AssignUnderCapacity(demands, caps)
	load := map[int]float64{}
	for i, d := range demands {
		load[d.Links[choice[i]]] += d.Volume
	}
	if load[2] > 3 {
		t.Fatalf("alternate link overloaded: %v", load[2])
	}
}

func TestAssignStuckOverloadStays(t *testing.T) {
	// One flow, one constrained link, no alternate: congestion stands but
	// the controller must not loop or move anything.
	demands := []Demand{{Volume: 10, Links: []int{1}}}
	caps := Capacities{PerLink: map[int]float64{1: 5}}
	choice, detoured := AssignUnderCapacity(demands, caps)
	if choice[0] != 0 || detoured != 0 {
		t.Fatalf("impossible detour happened: %v %v", choice, detoured)
	}
}

func TestAssignProperties(t *testing.T) {
	// Property: chosen indices are always valid, and every constrained
	// link that CAN be relieved ends at or under capacity when the
	// alternates are unconstrained.
	f := func(vols []uint8, capSeed uint8) bool {
		if len(vols) == 0 {
			return true
		}
		demands := make([]Demand, len(vols))
		total := 0.0
		for i, v := range vols {
			demands[i] = Demand{Volume: float64(v%50) + 1, Links: []int{1, 2}}
			total += demands[i].Volume
		}
		capacity := float64(capSeed%100) + 1
		caps := Capacities{PerLink: map[int]float64{1: capacity}}
		choice, _ := AssignUnderCapacity(demands, caps)
		load1 := 0.0
		for i := range demands {
			if choice[i] < 0 || choice[i] >= len(demands[i].Links) {
				return false
			}
			if demands[i].Links[choice[i]] == 1 {
				load1 += demands[i].Volume
			}
		}
		// Link 2 is unconstrained, so link 1 must end under capacity
		// unless even zero flows would exceed it (impossible: load 0).
		return load1 <= capacity || load1 == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestProvision(t *testing.T) {
	topo, p := build(t, 31)
	_ = topo
	demand := map[int]float64{}
	for _, l := range p.PeerLinks(ClassPNI) {
		demand[l] = 100
	}
	for _, l := range p.PeerLinks(ClassTransit) {
		demand[l] = 100
	}
	caps, err := p.Provision(1, demand, 1.2, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range p.PeerLinks(ClassPNI) {
		c, ok := caps.PerLink[l]
		if !ok {
			t.Fatalf("PNI %d unprovisioned", l)
		}
		if c < 120 || c > 200 {
			t.Fatalf("PNI capacity %v outside headroom range", c)
		}
	}
	for _, l := range p.PeerLinks(ClassTransit) {
		if _, ok := caps.PerLink[l]; ok {
			t.Fatal("transit link should be unconstrained")
		}
	}
	if _, err := p.Provision(1, demand, 0, 2); err == nil {
		t.Fatal("invalid headroom accepted")
	}
	// Determinism.
	c2, err := p.Provision(1, demand, 1.2, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	for l, v := range caps.PerLink {
		if c2.PerLink[l] != v {
			t.Fatal("provisioning not deterministic")
		}
	}
}
