package provider

import (
	"testing"
	"testing/quick"
)

func TestOverloadPenaltyShape(t *testing.T) {
	if OverloadPenaltyMs(0.5) != 0 || OverloadPenaltyMs(0.8) != 0 {
		t.Fatal("no penalty expected below the knee")
	}
	if OverloadPenaltyMs(1.0) != 80 || OverloadPenaltyMs(2.0) != 80 {
		t.Fatal("saturated links must hit the cap")
	}
	if OverloadPenaltyMs(0.9) <= 0 {
		t.Fatal("90% utilization should queue")
	}
	if OverloadPenaltyMs(0.95) <= OverloadPenaltyMs(0.9) {
		t.Fatal("penalty must grow with utilization")
	}
}

func TestOverloadPenaltyProperties(t *testing.T) {
	monotone := func(a, b uint16) bool {
		ua := float64(a) / 65535 * 1.5
		ub := float64(b) / 65535 * 1.5
		if ua > ub {
			ua, ub = ub, ua
		}
		pa, pb := OverloadPenaltyMs(ua), OverloadPenaltyMs(ub)
		return pa <= pb && pa >= 0 && pb <= 80
	}
	if err := quick.Check(monotone, nil); err != nil {
		t.Fatal(err)
	}
}
