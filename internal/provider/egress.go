package provider

import (
	"fmt"
	"math"
	"sort"

	"beatbgp/internal/bgp"
	"beatbgp/internal/netpath"
)

// EgressOption is one route a PoP could use to reach a prefix — the unit
// of choice in the paper's §3.1 Edge-Fabric setting.
type EgressOption struct {
	Link     int
	Neighbor int
	Class    RouteClass
	Route    bgp.Route // full route with the provider prepended
}

// EgressOptions returns the routes available at a PoP toward the prefix
// whose RIB is given, ordered by the provider's BGP policy: PNIs first,
// then public peers, then transit; within a class, shorter AS paths and
// then lower neighbor ASNs. Index 0 is what performance-agnostic BGP
// would pick. Parallel links to the same neighbor are deduplicated.
func (p *Provider) EgressOptions(rib *bgp.RIB, popCity int) []EgressOption {
	t := p.Topo
	var out []EgressOption
	seen := make(map[int]bool)
	for _, off := range rib.OffersTo(p.AS.ID) {
		class, ok := p.classes[off.Link]
		if !ok {
			continue
		}
		at := false
		for _, c := range t.Links[off.Link].Cities {
			if c == popCity {
				at = true
				break
			}
		}
		if !at || seen[off.Neighbor] {
			continue
		}
		seen[off.Neighbor] = true
		out = append(out, EgressOption{
			Link:     off.Link,
			Neighbor: off.Neighbor,
			Class:    class,
			Route:    off.Route,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		if a.Route.PathLen() != b.Route.PathLen() {
			return a.Route.PathLen() < b.Route.PathLen()
		}
		return t.ASes[a.Neighbor].ASN < t.ASes[b.Neighbor].ASN
	})
	return out
}

// SurvivingOptions filters an egress-option list down to the options whose
// routes avoid every link the predicate reports down, preserving policy
// order. This is the Edge-Fabric-style override under faults: when the
// BGP-preferred option (index 0) dies, the controller shifts traffic to
// the best surviving alternative instead of blackholing through
// convergence. A nil predicate returns the list unchanged.
func SurvivingOptions(opts []EgressOption, down func(linkID int) bool) []EgressOption {
	if down == nil {
		return opts
	}
	var out []EgressOption
	for _, o := range opts {
		ok := !down(o.Link)
		for _, l := range o.Route.Links {
			if !ok || down(l) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, o)
		}
	}
	return out
}

// PremiumAnnouncement announces the provider's prefix over every link:
// ingress near the client, WAN carriage the rest of the way.
func (p *Provider) PremiumAnnouncement() bgp.Announcement {
	return bgp.Announcement{Origin: p.AS.ID}
}

// StandardAnnouncement announces only over the DC-local transit links, so
// traffic enters and exits near the data center and crosses the public
// Internet the rest of the way — the paper's Standard tier.
func (p *Provider) StandardAnnouncement() bgp.Announcement {
	suppress := make(map[int]bool)
	dcLocal := make(map[int]bool, len(p.dcTransitLinks))
	for _, l := range p.dcTransitLinks {
		dcLocal[l] = true
	}
	for l := range p.classes {
		if !dcLocal[l] {
			suppress[l] = true
		}
	}
	return bgp.Announcement{Origin: p.AS.ID, SuppressLinks: suppress}
}

// EntryAndWAN resolves the public-Internet part of a route that
// terminates at the provider, returning the resolved public path, the
// city where traffic enters the provider, and the provider-internal WAN
// kilometers from that entry to the data center.
func (p *Provider) EntryAndWAN(res *netpath.Resolver, route bgp.Route, srcCity int) (public netpath.Route, entry int, wanKm float64, err error) {
	if route.Origin() != p.AS.ID {
		return netpath.Route{}, -1, 0, fmt.Errorf("provider: route does not terminate at %s", p.AS.Name)
	}
	public, err = res.ResolveEntry(route, srcCity)
	if err != nil {
		return netpath.Route{}, -1, 0, err
	}
	entry = public.DstCity
	wanKm = p.AS.Net.DistKm(entry, p.DC)
	if math.IsInf(wanKm, 1) {
		return netpath.Route{}, -1, 0, fmt.Errorf("provider: no WAN path from entry %d to DC", entry)
	}
	return public, entry, wanKm, nil
}
