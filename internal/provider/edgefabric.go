package provider

import (
	"fmt"
	"sort"

	"beatbgp/internal/xrand"
)

// This file implements the capacity side of an Edge-Fabric-style egress
// controller. The paper's §3.1 shows the *performance* benefit of such
// controllers is small; their day job in production is protecting
// interconnect capacity: when a PNI's demand exceeds its provisioned
// capacity, the controller detours enough prefixes onto less-preferred
// routes to avoid congesting the link (Schlinker et al., SIGCOMM 2017).

// Capacities holds per-link egress capacity in the same volume units as
// the workload's per-window demand.
type Capacities struct {
	PerLink map[int]float64 // link ID -> capacity; absent means unconstrained
}

// Provision assigns capacities from observed mean demand: every link gets
// its mean per-window demand times a headroom factor drawn from
// [headroomMin, headroomMax]. Low draws model the under-provisioned tail
// that forces detours at peak. Transit links are left unconstrained —
// upstream capacity is effectively elastic compared to a PNI port.
func (p *Provider) Provision(seed uint64, meanDemand map[int]float64, headroomMin, headroomMax float64) (Capacities, error) {
	if headroomMin <= 0 || headroomMax < headroomMin {
		return Capacities{}, fmt.Errorf("provider: invalid headroom range [%v, %v]", headroomMin, headroomMax)
	}
	rng := xrand.New(seed ^ 0xCAB)
	caps := Capacities{PerLink: make(map[int]float64)}
	// Deterministic order.
	links := make([]int, 0, len(meanDemand))
	for l := range meanDemand {
		links = append(links, l)
	}
	sort.Ints(links)
	for _, l := range links {
		class, ok := p.classes[l]
		if !ok || class == ClassTransit {
			continue
		}
		caps.PerLink[l] = meanDemand[l] * rng.Uniform(headroomMin, headroomMax)
	}
	return caps, nil
}

// OverloadPenaltyMs models the standing-queue latency on an egress link
// running at the given utilization (offered load over capacity): nothing
// below ~80% utilization, then an M/M/1-flavored blowup capped at a
// bufferbloat-scale ceiling. This is what clients eat when nobody detours
// traffic off a saturating PNI.
func OverloadPenaltyMs(utilization float64) float64 {
	const kneeUtil, serviceMs, capMs = 0.8, 1.0, 80.0
	if utilization <= kneeUtil {
		return 0
	}
	if utilization >= 1 {
		return capMs
	}
	q := serviceMs * utilization / (1 - utilization)
	if q > capMs {
		return capMs
	}
	return q
}

// Demand is one prefix's egress demand at a PoP for one window: its volume
// and the link used by each of its candidate routes, preferred first.
type Demand struct {
	Volume float64
	Links  []int // candidate route links, BGP preference order
}

// AssignUnderCapacity implements the controller's per-window decision:
// start everything on its BGP-preferred route, then, for each overloaded
// link, detour the largest flows to their next candidate whose link has
// room, until every constrained link fits (or no detour can help). It
// returns the chosen route index per demand and the volume detoured.
func AssignUnderCapacity(demands []Demand, caps Capacities) (choice []int, detoured float64) {
	choice = make([]int, len(demands))
	load := make(map[int]float64)
	for _, d := range demands {
		if len(d.Links) > 0 {
			load[d.Links[0]] += d.Volume
		}
	}
	capOf := func(link int) (float64, bool) {
		c, ok := caps.PerLink[link]
		return c, ok
	}
	// Iterate to a fixpoint with a bounded number of passes; each detour
	// strictly reduces load on an overloaded link.
	for pass := 0; pass < len(demands)+1; pass++ {
		// Find the most overloaded constrained link.
		worst, worstOver := -1, 0.0
		for link, l := range load {
			if c, ok := capOf(link); ok && l > c && l-c > worstOver {
				worst, worstOver = link, l-c
			}
		}
		if worst < 0 {
			break
		}
		// Candidates currently on the overloaded link, largest first
		// (fewer moves), index ascending for determinism.
		type cand struct {
			idx int
			vol float64
		}
		var cands []cand
		for idx, d := range demands {
			if choice[idx] < len(d.Links) && d.Links[choice[idx]] == worst {
				cands = append(cands, cand{idx, d.Volume})
			}
		}
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].vol != cands[b].vol {
				return cands[a].vol > cands[b].vol
			}
			return cands[a].idx < cands[b].idx
		})
		moved := false
		over := worstOver
		for _, c := range cands {
			if over <= 0 {
				break
			}
			d := demands[c.idx]
			// Next candidate route whose link has room (or is
			// unconstrained).
			for next := choice[c.idx] + 1; next < len(d.Links); next++ {
				nl := d.Links[next]
				if cc, ok := capOf(nl); ok && load[nl]+d.Volume > cc {
					continue
				}
				load[worst] -= d.Volume
				load[nl] += d.Volume
				choice[c.idx] = next
				detoured += d.Volume
				over -= d.Volume
				moved = true
				break
			}
		}
		if !moved {
			break // overloaded but nothing can move; congestion stands
		}
	}
	return choice, detoured
}
