package provider

import (
	"math"
	"testing"

	"beatbgp/internal/bgp"
	"beatbgp/internal/geo"
	"beatbgp/internal/netpath"
	"beatbgp/internal/topology"
)

func build(t testing.TB, seed uint64) (*topology.Topo, *Provider) {
	t.Helper()
	topo, err := topology.Generate(topology.GenConfig{Seed: seed, EyeballsPerRegion: 10})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(topo, Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return topo, p
}

func TestBuildShape(t *testing.T) {
	topo, p := build(t, 1)
	if len(p.PoPs) < 20 {
		t.Fatalf("only %d PoPs, want ~24", len(p.PoPs))
	}
	if p.AS.Class != topology.Content || p.AS.Exit != topology.LateExit {
		t.Fatal("provider AS misconfigured")
	}
	if !p.AS.Net.Present(p.DC) {
		t.Fatal("DC not on the WAN")
	}
	if len(p.PeerLinks(ClassPNI)) == 0 {
		t.Fatal("no PNI peers")
	}
	if len(p.PeerLinks(ClassPublicPeer)) == 0 {
		t.Fatal("no public peers")
	}
	if len(p.PeerLinks(ClassTransit)) < 2 {
		t.Fatal("too few transit links")
	}
	// The provider must be in the topology.
	if topo.ASes[p.AS.ID] != p.AS {
		t.Fatal("provider AS not registered")
	}
}

func TestBuildDeterministic(t *testing.T) {
	_, p1 := build(t, 5)
	_, p2 := build(t, 5)
	if len(p1.PoPs) != len(p2.PoPs) || p1.DC != p2.DC {
		t.Fatal("PoPs differ across identical builds")
	}
	for c := range p1.classes {
		if p2.classes[c] != p1.classes[c] {
			t.Fatal("link classes differ")
		}
	}
}

func TestWANHasNoEuropeAsiaCorridor(t *testing.T) {
	_, p := build(t, 3)
	cat := p.Topo.Catalog
	// Every WAN route from an Indian PoP (if present, else any Asian PoP)
	// to a European PoP must transit North America, because the WAN has
	// no Europe<->Asia corridor.
	var asian, european []int
	for _, c := range p.PoPs {
		switch cat.City(c).Region {
		case geo.Asia:
			asian = append(asian, c)
		case geo.Europe:
			european = append(european, c)
		}
	}
	if len(asian) == 0 || len(european) == 0 {
		t.Skip("no Asia/Europe PoPs")
	}
	path, ok := p.AS.Net.Path(asian[0], european[0])
	if !ok {
		t.Fatal("WAN cannot route Asia->Europe")
	}
	viaNA := false
	for _, c := range path.Cities {
		if cat.City(c).Region == geo.NorthAmerica {
			viaNA = true
		}
	}
	if !viaNA {
		t.Fatalf("WAN Asia->Europe did not cross North America: %v", path.Cities)
	}
}

func TestServingPoPIsNearest(t *testing.T) {
	_, p := build(t, 7)
	cat := p.Topo.Catalog
	for _, name := range []string{"Manchester", "Cordoba", "Busan", "Kathmandu"} {
		c, ok := cat.ByName(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		pop := p.ServingPoP(c.ID)
		d := geo.DistanceKm(c.Loc, cat.City(pop).Loc)
		for _, other := range p.PoPs {
			if od := geo.DistanceKm(c.Loc, cat.City(other).Loc); od < d-1e-9 {
				t.Fatalf("%s served by %s (%.0f km) but %s is closer (%.0f km)",
					name, cat.City(pop).Name, d, cat.City(other).Name, od)
			}
		}
		if p.PoPDistanceKm(c.ID) != d {
			t.Fatal("PoPDistanceKm inconsistent")
		}
	}
}

func TestEgressOptionsPolicyOrder(t *testing.T) {
	topo, p := build(t, 9)
	oracle := bgp.NewOracle(topo)
	checked := 0
	for _, px := range topo.Prefixes {
		if px.ID%13 != 0 {
			continue
		}
		rib, err := oracle.ToPrefix(px)
		if err != nil {
			t.Fatal(err)
		}
		pop := p.ServingPoP(px.City)
		opts := p.EgressOptions(rib, pop)
		for i := 1; i < len(opts); i++ {
			if opts[i].Class < opts[i-1].Class {
				t.Fatalf("options out of class order at %d", i)
			}
			if opts[i].Class == opts[i-1].Class && opts[i].Route.PathLen() < opts[i-1].Route.PathLen() {
				t.Fatalf("options out of path-length order at %d", i)
			}
		}
		seen := map[int]bool{}
		for _, o := range opts {
			if seen[o.Neighbor] {
				t.Fatal("duplicate neighbor in options")
			}
			seen[o.Neighbor] = true
			if o.Route.Path[0] != p.AS.ID {
				t.Fatal("option path must start at the provider")
			}
			if o.Route.Origin() != px.Origin {
				t.Fatal("option does not reach the prefix origin")
			}
		}
		if len(opts) > 0 {
			checked++
		}
	}
	if checked < 10 {
		t.Fatalf("egress options found for only %d sampled prefixes", checked)
	}
}

func TestMostPrefixesHaveSeveralRoutes(t *testing.T) {
	// §2.3.1: "For most clients, the PoP serving the client has at least
	// three routes to the client's prefix."
	topo, p := build(t, 11)
	oracle := bgp.NewOracle(topo)
	withThree, total := 0, 0
	for _, px := range topo.Prefixes {
		if px.ID%5 != 0 {
			continue
		}
		rib, err := oracle.ToPrefix(px)
		if err != nil {
			t.Fatal(err)
		}
		opts := p.EgressOptions(rib, p.ServingPoP(px.City))
		total++
		if len(opts) >= 3 {
			withThree++
		}
	}
	if frac := float64(withThree) / float64(total); frac < 0.6 {
		t.Fatalf("only %.0f%% of prefixes have >=3 egress routes", frac*100)
	}
}

func TestStandardAnnouncementRestrictsIngress(t *testing.T) {
	topo, p := build(t, 13)
	cat := topo.Catalog
	res := netpath.NewResolver(topo)

	premRIB, err := bgp.Compute(topo, []bgp.Announcement{p.PremiumAnnouncement()})
	if err != nil {
		t.Fatal(err)
	}
	stdRIB, err := bgp.Compute(topo, []bgp.Announcement{p.StandardAnnouncement()})
	if err != nil {
		t.Fatal(err)
	}
	dcLoc := cat.City(p.DC).Loc
	tested := 0
	var premNear, stdNear int
	for _, asID := range topo.ByClass(topology.Eyeball) {
		if asID%3 != 0 {
			continue
		}
		vpCity := topo.ASes[asID].Cities[0]
		pr, sr := premRIB.Best(asID), stdRIB.Best(asID)
		if !pr.Valid || !sr.Valid {
			continue
		}
		_, pEntry, _, err := p.EntryAndWAN(res, pr, vpCity)
		if err != nil {
			continue
		}
		_, sEntry, _, err := p.EntryAndWAN(res, sr, vpCity)
		if err != nil {
			continue
		}
		tested++
		vpLoc := cat.City(vpCity).Loc
		if geo.DistanceKm(vpLoc, cat.City(pEntry).Loc) < 400 {
			premNear++
		}
		if geo.DistanceKm(vpLoc, cat.City(sEntry).Loc) < 400 {
			stdNear++
		}
		// Standard ingress must be near the DC.
		if geo.DistanceKm(dcLoc, cat.City(sEntry).Loc) > 2000 {
			t.Fatalf("standard tier entered at %s, far from DC", cat.City(sEntry).Name)
		}
	}
	if tested < 20 {
		t.Fatalf("only %d vantage points tested", tested)
	}
	if premNear <= stdNear {
		t.Fatalf("premium near-ingress count %d should exceed standard %d", premNear, stdNear)
	}
}

func TestEntryAndWANErrors(t *testing.T) {
	topo, p := build(t, 15)
	res := netpath.NewResolver(topo)
	// A route that does not terminate at the provider must be rejected.
	other := topo.Prefixes[0]
	rib, err := bgp.NewOracle(topo).ToPrefix(other)
	if err != nil {
		t.Fatal(err)
	}
	var r bgp.Route
	for _, asID := range topo.ByClass(topology.Eyeball) {
		if asID != other.Origin && rib.Best(asID).Valid {
			r = rib.Best(asID)
			break
		}
	}
	if _, _, _, err := p.EntryAndWAN(res, r, topo.ASes[r.Path[0]].Cities[0]); err == nil {
		t.Fatal("foreign route accepted")
	}
}

func TestPeeringReductionAblation(t *testing.T) {
	topo1, err := topology.Generate(topology.GenConfig{Seed: 21, EyeballsPerRegion: 10})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Build(topo1, Config{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	topo2, err := topology.Generate(topology.GenConfig{Seed: 21, EyeballsPerRegion: 10})
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := Build(topo2, Config{Seed: 21, PeerKeepFraction: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	f := len(full.PeerLinks(ClassPNI)) + len(full.PeerLinks(ClassPublicPeer))
	r := len(reduced.PeerLinks(ClassPNI)) + len(reduced.PeerLinks(ClassPublicPeer))
	if r >= f {
		t.Fatalf("peer reduction did not reduce peers: %d vs %d", r, f)
	}
}

func TestBuildBadDC(t *testing.T) {
	topo, err := topology.Generate(topology.GenConfig{Seed: 23, EyeballsPerRegion: 6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Build(topo, Config{DCCity: "Nowhere"}); err == nil {
		t.Fatal("unknown DC accepted")
	}
}

func TestRouteClassString(t *testing.T) {
	if ClassPNI.String() != "pni" || ClassTransit.String() != "transit" || ClassPublicPeer.String() != "public-peer" {
		t.Fatal("class strings wrong")
	}
}

func TestWANDistancesFinite(t *testing.T) {
	_, p := build(t, 17)
	for _, a := range p.PoPs {
		if d := p.AS.Net.DistKm(a, p.DC); math.IsInf(d, 1) {
			t.Fatalf("PoP %d cannot reach DC on WAN", a)
		}
	}
}

func BenchmarkBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		topo, err := topology.Generate(topology.GenConfig{Seed: uint64(i + 1), EyeballsPerRegion: 10})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Build(topo, Config{Seed: uint64(i + 1)}); err != nil {
			b.Fatal(err)
		}
	}
}
