package loadgen

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"beatbgp/internal/stats"
)

// Report is the run's outcome: open-loop accounting (offered vs sent
// vs client-side drops), per-status-code counts, and the latency
// profile of everything dispatched, aggregated in a bounded-memory
// sketch (quantiles accurate to the sketch's relative resolution).
type Report struct {
	// Offered is how many sessions the fleet generated; Sent is how
	// many reached a worker; Dropped (= Offered − Sent) found the
	// dispatch buffer full — demand the target never saw.
	Offered, Sent, Dropped int
	// Codes counts results by HTTP-style status (0 = transport error).
	Codes map[int]int
	// Degraded counts answers served from a fallback epoch.
	Degraded int
	// Elapsed is the dispatch wall time; SessionsPerSec = Sent/Elapsed.
	Elapsed        time.Duration
	SessionsPerSec float64
	// Latency quantiles (ms) over all dispatched queries, and the
	// merged sketch itself for custom digests.
	P50Ms, P99Ms, P999Ms, MeanMs float64
	Sketch                       *stats.Sketch
	// The same profile restricted to admitted-and-served queries
	// (code 200) — the acceptance metric: shed queries answer fast by
	// design, so the all-query tail can hide an unbounded served tail.
	OKP50Ms, OKP99Ms, OKP999Ms float64
	OKSketch                   *stats.Sketch
}

// OK returns the count of 200s.
func (r Report) OK() int { return r.Codes[200] }

// Shed returns the count of 429s — admission-gate rejections.
func (r Report) Shed() int { return r.Codes[429] }

// ShedPct is the shed share of everything dispatched, in percent.
func (r Report) ShedPct() float64 {
	if r.Sent == 0 {
		return 0
	}
	return 100 * float64(r.Shed()) / float64(r.Sent)
}

// String renders a one-line human summary.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "offered %d sent %d dropped %d in %v (%.0f sessions/s)",
		r.Offered, r.Sent, r.Dropped, r.Elapsed.Round(time.Millisecond), r.SessionsPerSec)
	codes := make([]int, 0, len(r.Codes))
	for c := range r.Codes {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		fmt.Fprintf(&b, " %d:%d", c, r.Codes[c])
	}
	fmt.Fprintf(&b, " degraded:%d p50 %.2fms p99 %.2fms p99.9 %.2fms", r.Degraded, r.P50Ms, r.P99Ms, r.P999Ms)
	return b.String()
}

// workerStats is one worker's private accumulator — no shared state on
// the hot path; merged after the run.
type workerStats struct {
	sketch   *stats.Sketch
	okSketch *stats.Sketch
	codes    map[int]int
	degraded int
}

// Run drives the target with the config's fleet: one generator
// goroutine offering arrivals tick by tick (paced by TickWall when
// set), Workers dispatch goroutines, client-side drops when the buffer
// is full. Cancelling ctx stops the run early; the partial report is
// still returned.
func Run(ctx context.Context, cfg Config, tgt Target) (Report, error) {
	g, err := NewGen(cfg)
	if err != nil {
		return Report{}, err
	}
	cfg = g.Config()

	queue := make(chan Query, cfg.Buffer)
	ws := make([]workerStats, cfg.Workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		ws[w] = workerStats{sketch: stats.NewSketch(), okSketch: stats.NewSketch(), codes: make(map[int]int)}
		wg.Add(1)
		go func(st *workerStats) {
			defer wg.Done()
			for q := range queue {
				qctx, cancel := ctx, context.CancelFunc(func() {})
				if cfg.Deadline > 0 {
					qctx, cancel = context.WithTimeout(ctx, cfg.Deadline)
				}
				t0 := time.Now()
				res := tgt.Do(qctx, q)
				cancel()
				ms := float64(time.Since(t0)) / float64(time.Millisecond)
				st.sketch.Add(ms)
				if res.Code == 200 {
					st.okSketch.Add(ms)
				}
				st.codes[res.Code]++
				if res.Degraded {
					st.degraded++
				}
			}
		}(&ws[w])
	}

	var offered, sent int
	var ticker *time.Ticker
	if cfg.TickWall > 0 {
		ticker = time.NewTicker(cfg.TickWall)
		defer ticker.Stop()
	}
gen:
	for tick := 0; tick < cfg.Ticks; tick++ {
		if ctx.Err() != nil {
			break
		}
		g.Tick(tick, func(q Query) {
			if cfg.MaxOffered > 0 && offered >= cfg.MaxOffered {
				return
			}
			offered++
			select {
			case queue <- q:
				sent++
			default:
				// Open loop: the buffer is full, the client walks away.
			}
		})
		if cfg.MaxOffered > 0 && offered >= cfg.MaxOffered {
			break
		}
		if ticker != nil && tick+1 < cfg.Ticks {
			select {
			case <-ticker.C:
			case <-ctx.Done():
				break gen
			}
		}
	}
	close(queue)
	wg.Wait()

	rep := Report{
		Offered:  offered,
		Sent:     sent,
		Dropped:  offered - sent,
		Codes:    make(map[int]int),
		Elapsed:  time.Since(start),
		Sketch:   stats.NewSketch(),
		OKSketch: stats.NewSketch(),
	}
	for i := range ws {
		if err := rep.Sketch.Merge(ws[i].sketch); err != nil {
			return Report{}, err
		}
		if err := rep.OKSketch.Merge(ws[i].okSketch); err != nil {
			return Report{}, err
		}
		for c, n := range ws[i].codes {
			rep.Codes[c] += n
		}
		rep.Degraded += ws[i].degraded
	}
	if secs := rep.Elapsed.Seconds(); secs > 0 {
		rep.SessionsPerSec = float64(rep.Sent) / secs
	}
	if rep.Sketch.N() > 0 {
		rep.P50Ms = rep.Sketch.Quantile(0.50)
		rep.P99Ms = rep.Sketch.Quantile(0.99)
		rep.P999Ms = rep.Sketch.Quantile(0.999)
		rep.MeanMs = rep.Sketch.Mean()
	}
	if rep.OKSketch.N() > 0 {
		rep.OKP50Ms = rep.OKSketch.Quantile(0.50)
		rep.OKP99Ms = rep.OKSketch.Quantile(0.99)
		rep.OKP999Ms = rep.OKSketch.Quantile(0.999)
	}
	return rep, nil
}
