// Package loadgen is the streaming load harness for the serving layer:
// a deterministic synthetic client fleet — millions of clients, never
// materialized — whose session arrivals drive a query Target (the
// serve library via serve.LoadTarget, or a live daemon via HTTPTarget)
// through an open-loop generator with bounded memory.
//
// The fleet is described, not stored: each region holds a share of the
// clients and a prefix range, and per tick the generator draws the
// region's session count from a Poisson arrival process whose mean
// follows a diurnal phase curve plus any flash-crowd/regional-event
// bursts in effect. Every draw derives from the seed and the (tick,
// region, arrival) coordinates via xrand.Derive, so the offered query
// stream — which client, which query kind, which instant — replays
// exactly at a fixed seed regardless of worker scheduling.
//
// The loop is open: arrivals are offered at the configured rate whether
// or not the target keeps up, and offers that find the dispatch buffer
// full are dropped client-side — the only way to actually overload a
// server under test (a closed loop self-throttles). Latencies stream
// into per-worker stats.Sketch instances (merged at the end), so memory
// stays O(workers + regions + sketch buckets) no matter how many
// sessions flow.
package loadgen

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"beatbgp/internal/xrand"
)

// QueryKind selects which serve query a session issues.
type QueryKind int

const (
	// KindLatency is the paper's headline query: BGP-preferred vs best
	// alternate egress latency for the client's prefix.
	KindLatency QueryKind = iota
	// KindCatchment asks which anycast front-end the client lands on.
	KindCatchment
)

func (k QueryKind) String() string {
	switch k {
	case KindLatency:
		return "latency"
	case KindCatchment:
		return "catchment"
	default:
		return fmt.Sprintf("QueryKind(%d)", int(k))
	}
}

// Query is one synthetic client session's request.
type Query struct {
	Kind   QueryKind
	Prefix int
	// TMin is the sim instant of the session (latency queries).
	TMin float64
}

// Result is the target's verdict on one query, in HTTP status terms so
// library and HTTP targets report identically: 200 served, 400 bad
// query, 429 shed, 503 unavailable, 504 deadline, 500 other; 0 means
// a transport-level failure (connection refused, client-side timeout).
type Result struct {
	Code     int
	Degraded bool
}

// Target serves one query; implementations must be safe for concurrent
// use by the runner's workers.
type Target interface {
	Do(ctx context.Context, q Query) Result
}

// Region is one slice of the synthetic fleet.
type Region struct {
	// Name labels the region in reports.
	Name string
	// Weight is the region's share of the fleet (normalized over the
	// config's regions; must be positive).
	Weight float64
	// PrefixLo/PrefixHi bound the client prefixes of this region's
	// clients: arrivals draw uniformly from [PrefixLo, PrefixHi).
	PrefixLo, PrefixHi int
	// Phase offsets the region's diurnal curve as a fraction of the
	// period in [0,1) — regions across the planet peak at different
	// wall instants.
	Phase float64
}

// Burst is a flash-crowd or regional-event load multiplier over a tick
// window.
type Burst struct {
	// Region indexes Config.Regions, or -1 for a global (all-region)
	// flash crowd.
	Region int
	// Start/End bound the affected ticks: [Start, End).
	Start, End int
	// Mult scales the affected regions' arrival rate (e.g. 5.0).
	Mult float64
}

// Config describes the fleet and the run.
type Config struct {
	// Seed keys every arrival draw (xrand.Derive).
	Seed uint64
	// Clients is the synthetic fleet size — millions are fine, clients
	// are drawn, never stored.
	Clients int
	// SessionRate is each client's base session probability per tick;
	// a region's per-tick arrival mean is Clients·share·SessionRate
	// before diurnal/burst scaling.
	SessionRate float64
	// Ticks is the run length in generator ticks.
	Ticks int
	// TickSimMin is how many sim-minutes one tick advances: it sets
	// each session's TMin and the diurnal clock. Zero means 1.
	TickSimMin float64
	// TickWall, when positive, paces the generator to one tick per
	// TickWall of wall time; zero offers as fast as possible.
	TickWall time.Duration
	// DiurnalAmp in [0,1) modulates arrival rate sinusoidally over
	// DiurnalPeriodMin (default one day = 1440) with per-region phase.
	DiurnalAmp       float64
	DiurnalPeriodMin float64
	// CatchmentFrac in [0,1] is the share of sessions issuing
	// catchment queries; the rest issue latency queries.
	CatchmentFrac float64
	// Regions partition the fleet. Required.
	Regions []Region
	// Bursts are the scheduled load events.
	Bursts []Burst
	// Workers is the dispatch concurrency (default 8).
	Workers int
	// Buffer is the dispatch queue depth (default 4·Workers); offers
	// landing on a full buffer are client-side drops.
	Buffer int
	// Deadline, when positive, bounds each dispatched query's context.
	Deadline time.Duration
	// MaxOffered, when positive, stops the generator after that many
	// offered sessions — a safety valve for unpaced soaks.
	MaxOffered int
}

// Validate rejects configs the generator cannot run deterministically.
func (c Config) Validate() error {
	if c.Clients <= 0 {
		return fmt.Errorf("loadgen: Clients = %d must be positive", c.Clients)
	}
	if math.IsNaN(c.SessionRate) || c.SessionRate <= 0 {
		return fmt.Errorf("loadgen: SessionRate = %v must be positive", c.SessionRate)
	}
	if c.Ticks <= 0 {
		return fmt.Errorf("loadgen: Ticks = %d must be positive", c.Ticks)
	}
	if math.IsNaN(c.DiurnalAmp) || c.DiurnalAmp < 0 || c.DiurnalAmp >= 1 {
		return fmt.Errorf("loadgen: DiurnalAmp = %v must be in [0,1)", c.DiurnalAmp)
	}
	if math.IsNaN(c.CatchmentFrac) || c.CatchmentFrac < 0 || c.CatchmentFrac > 1 {
		return fmt.Errorf("loadgen: CatchmentFrac = %v must be in [0,1]", c.CatchmentFrac)
	}
	if len(c.Regions) == 0 {
		return errors.New("loadgen: at least one region is required")
	}
	for i, r := range c.Regions {
		if math.IsNaN(r.Weight) || r.Weight <= 0 {
			return fmt.Errorf("loadgen: region %d (%s): Weight = %v must be positive", i, r.Name, r.Weight)
		}
		if r.PrefixLo < 0 || r.PrefixHi <= r.PrefixLo {
			return fmt.Errorf("loadgen: region %d (%s): prefix range [%d,%d) is empty", i, r.Name, r.PrefixLo, r.PrefixHi)
		}
		if math.IsNaN(r.Phase) || r.Phase < 0 || r.Phase >= 1 {
			return fmt.Errorf("loadgen: region %d (%s): Phase = %v must be in [0,1)", i, r.Name, r.Phase)
		}
	}
	for i, b := range c.Bursts {
		if b.Region < -1 || b.Region >= len(c.Regions) {
			return fmt.Errorf("loadgen: burst %d: Region = %d out of range [-1,%d)", i, b.Region, len(c.Regions))
		}
		if b.End <= b.Start {
			return fmt.Errorf("loadgen: burst %d: window [%d,%d) is empty", i, b.Start, b.End)
		}
		if math.IsNaN(b.Mult) || b.Mult <= 0 {
			return fmt.Errorf("loadgen: burst %d: Mult = %v must be positive", i, b.Mult)
		}
	}
	return nil
}

func (c *Config) fillDefaults() {
	if c.TickSimMin == 0 {
		c.TickSimMin = 1
	}
	if c.DiurnalPeriodMin == 0 {
		c.DiurnalPeriodMin = 1440
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.Buffer <= 0 {
		c.Buffer = 4 * c.Workers
	}
}

// Gen is the deterministic arrival generator: the pure-workload half of
// the harness, usable without a runner (the determinism tests replay
// it directly).
type Gen struct {
	cfg       Config
	weightSum float64
}

// NewGen validates the config and returns the generator.
func NewGen(cfg Config) (*Gen, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.fillDefaults()
	g := &Gen{cfg: cfg}
	for _, r := range cfg.Regions {
		g.weightSum += r.Weight
	}
	return g, nil
}

// Config returns the generator's (default-filled) config.
func (g *Gen) Config() Config { return g.cfg }

// rate is region ri's arrival mean at the tick: fleet share times base
// rate, shaped by the region's diurnal phase and any active bursts.
func (g *Gen) rate(tick, ri int) float64 {
	c := &g.cfg
	r := c.Regions[ri]
	mean := float64(c.Clients) * (r.Weight / g.weightSum) * c.SessionRate
	if c.DiurnalAmp > 0 {
		t := float64(tick) * c.TickSimMin
		mean *= 1 + c.DiurnalAmp*math.Sin(2*math.Pi*(t/c.DiurnalPeriodMin+r.Phase))
	}
	for _, b := range c.Bursts {
		if tick >= b.Start && tick < b.End && (b.Region == -1 || b.Region == ri) {
			mean *= b.Mult
		}
	}
	return mean
}

// Tick emits the tick's arrivals in deterministic order, one emit per
// session. The draw chain is keyed purely by (seed, tick, region), so
// tick T's stream is identical across runs and independent of any
// other tick's.
func (g *Gen) Tick(tick int, emit func(Query)) {
	c := &g.cfg
	tmin := float64(tick) * c.TickSimMin
	for ri := range c.Regions {
		rng := xrand.Derive(c.Seed, 0x5e55, uint64(tick), uint64(ri))
		n := rng.Poisson(g.rate(tick, ri))
		r := c.Regions[ri]
		span := r.PrefixHi - r.PrefixLo
		for i := 0; i < n; i++ {
			q := Query{Prefix: r.PrefixLo + rng.Intn(span), TMin: tmin}
			if rng.Bool(c.CatchmentFrac) {
				q.Kind = KindCatchment
			}
			emit(q)
		}
	}
}

// OfferedMean reports the whole run's expected session count — handy
// for sizing MaxOffered and test budgets.
func (g *Gen) OfferedMean() float64 {
	var sum float64
	for t := 0; t < g.cfg.Ticks; t++ {
		for ri := range g.cfg.Regions {
			sum += g.rate(t, ri)
		}
	}
	return sum
}
