package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// HTTPTarget drives a live beatbgpd listener: each query becomes one
// GET against the daemon's query surface, the HTTP status is the
// Result code verbatim, and the degraded marker is read out of the
// response body. Safe for concurrent use (http.Client is).
type HTTPTarget struct {
	// Base is the daemon root, e.g. "http://127.0.0.1:8379".
	Base string
	// Client is the HTTP client to use; nil means
	// http.DefaultClient. Per-query deadlines arrive via the context
	// (Config.Deadline), so the client needs no Timeout of its own.
	Client *http.Client
}

func (t *HTTPTarget) url(q Query) string {
	switch q.Kind {
	case KindCatchment:
		return fmt.Sprintf("%s/catchment?prefix=%d", t.Base, q.Prefix)
	default:
		return fmt.Sprintf("%s/latency?prefix=%d&t=%s", t.Base, q.Prefix,
			strconv.FormatFloat(q.TMin, 'g', -1, 64))
	}
}

// Do implements Target. Transport-level failures (connection refused,
// context expiry before a status line) report Code 0.
func (t *HTTPTarget) Do(ctx context.Context, q Query) Result {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.url(q), nil)
	if err != nil {
		return Result{}
	}
	client := t.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return Result{}
	}
	defer resp.Body.Close()
	var body struct {
		Degraded bool `json:"degraded"`
	}
	// Best effort: error bodies and non-JSON payloads just leave the
	// marker false. Drain fully so keep-alive connections are reused.
	if b, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20)); err == nil {
		_ = json.Unmarshal(b, &body)
	}
	io.Copy(io.Discard, resp.Body)
	return Result{Code: resp.StatusCode, Degraded: body.Degraded}
}
