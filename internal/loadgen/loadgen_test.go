package loadgen

import (
	"context"
	"math"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

func baseConfig() Config {
	return Config{
		Seed:        42,
		Clients:     100_000,
		SessionRate: 1e-3, // ~100 sessions/tick across the fleet
		Ticks:       50,
		Regions: []Region{
			{Name: "na", Weight: 2, PrefixLo: 0, PrefixHi: 40, Phase: 0},
			{Name: "eu", Weight: 1, PrefixLo: 40, PrefixHi: 80, Phase: 0.33},
			{Name: "apac", Weight: 1, PrefixLo: 80, PrefixHi: 120, Phase: 0.66},
		},
		CatchmentFrac: 0.25,
	}
}

func collect(t *testing.T, cfg Config) []Query {
	t.Helper()
	g, err := NewGen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var qs []Query
	for tick := 0; tick < cfg.Ticks; tick++ {
		g.Tick(tick, func(q Query) { qs = append(qs, q) })
	}
	return qs
}

// TestGenDeterministic: the offered stream is a pure function of the
// seed — identical across generators, different across seeds.
func TestGenDeterministic(t *testing.T) {
	a := collect(t, baseConfig())
	b := collect(t, baseConfig())
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different query streams")
	}
	cfg := baseConfig()
	cfg.Seed = 43
	c := collect(t, cfg)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical query streams")
	}
	if len(a) == 0 {
		t.Fatal("generator offered nothing")
	}
}

// TestGenShape: arrivals respect region prefix ranges and the query mix.
func TestGenShape(t *testing.T) {
	cfg := baseConfig()
	qs := collect(t, cfg)
	var catchment int
	for _, q := range qs {
		if q.Prefix < 0 || q.Prefix >= 120 {
			t.Fatalf("prefix %d outside all regions", q.Prefix)
		}
		if q.Kind == KindCatchment {
			catchment++
		}
		if q.TMin < 0 || q.TMin > float64(cfg.Ticks)*1 {
			t.Fatalf("TMin %v outside the run window", q.TMin)
		}
	}
	frac := float64(catchment) / float64(len(qs))
	if frac < 0.18 || frac > 0.32 {
		t.Fatalf("catchment fraction %.3f, want ~0.25", frac)
	}
}

// TestGenPoissonRate: the realized arrival count tracks OfferedMean.
func TestGenPoissonRate(t *testing.T) {
	cfg := baseConfig()
	cfg.Ticks = 200
	g, err := NewGen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var n int
	for tick := 0; tick < cfg.Ticks; tick++ {
		g.Tick(tick, func(Query) { n++ })
	}
	want := g.OfferedMean()
	if math.Abs(float64(n)-want) > 4*math.Sqrt(want) {
		t.Fatalf("offered %d, expected ~%.0f (Poisson)", n, want)
	}
}

// TestGenBurst: a flash-crowd window multiplies its region's arrivals,
// and only its region's.
func TestGenBurst(t *testing.T) {
	cfg := baseConfig()
	cfg.Ticks = 100
	quiet, _ := NewGen(cfg)
	cfg.Bursts = []Burst{{Region: 1, Start: 20, End: 60, Mult: 6}}
	bursty, _ := NewGen(cfg)
	for tick := 0; tick < cfg.Ticks; tick++ {
		for ri := range cfg.Regions {
			q, b := quiet.rate(tick, ri), bursty.rate(tick, ri)
			inWindow := tick >= 20 && tick < 60 && ri == 1
			if inWindow && math.Abs(b-6*q) > 1e-9 {
				t.Fatalf("tick %d region %d: burst rate %v, want %v", tick, ri, b, 6*q)
			}
			if !inWindow && b != q {
				t.Fatalf("tick %d region %d: rate changed outside burst window", tick, ri)
			}
		}
	}
}

// TestGenDiurnal: the diurnal curve modulates the rate around the base
// with per-region phase offsets.
func TestGenDiurnal(t *testing.T) {
	cfg := baseConfig()
	cfg.DiurnalAmp = 0.5
	cfg.DiurnalPeriodMin = 100
	cfg.Ticks = 100
	g, _ := NewGen(cfg)
	base := float64(cfg.Clients) * (2.0 / 4.0) * cfg.SessionRate // region 0 share
	lo, hi := math.Inf(1), math.Inf(-1)
	for tick := 0; tick < 100; tick++ {
		r := g.rate(tick, 0)
		lo, hi = math.Min(lo, r), math.Max(hi, r)
	}
	if hi < base*1.45 || lo > base*0.55 {
		t.Fatalf("diurnal swing [%v,%v] around base %v too small for amp 0.5", lo, hi, base)
	}
	// Phase-offset regions must not peak at the same tick.
	peak := func(ri int) int {
		best, at := math.Inf(-1), 0
		for tick := 0; tick < 100; tick++ {
			if r := g.rate(tick, ri); r > best {
				best, at = r, tick
			}
		}
		return at
	}
	if peak(0) == peak(1) {
		t.Fatal("phase-offset regions peaked at the same tick")
	}
}

func TestConfigValidate(t *testing.T) {
	mut := func(f func(*Config)) Config {
		c := baseConfig()
		f(&c)
		return c
	}
	bad := []Config{
		mut(func(c *Config) { c.Clients = 0 }),
		mut(func(c *Config) { c.SessionRate = 0 }),
		mut(func(c *Config) { c.Ticks = 0 }),
		mut(func(c *Config) { c.DiurnalAmp = 1 }),
		mut(func(c *Config) { c.CatchmentFrac = 1.5 }),
		mut(func(c *Config) { c.Regions = nil }),
		mut(func(c *Config) { c.Regions[0].Weight = -1 }),
		mut(func(c *Config) { c.Regions[0].PrefixHi = c.Regions[0].PrefixLo }),
		mut(func(c *Config) { c.Regions[0].Phase = 1 }),
		mut(func(c *Config) { c.Bursts = []Burst{{Region: 5, Start: 0, End: 1, Mult: 2}} }),
		mut(func(c *Config) { c.Bursts = []Burst{{Region: 0, Start: 5, End: 5, Mult: 2}} }),
		mut(func(c *Config) { c.Bursts = []Burst{{Region: 0, Start: 0, End: 1, Mult: 0}} }),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
		if _, err := NewGen(c); err == nil {
			t.Fatalf("NewGen accepted bad config %d", i)
		}
	}
	if err := baseConfig().Validate(); err != nil {
		t.Fatalf("base config rejected: %v", err)
	}
}

// countTarget answers instantly, recording per-code traffic.
type countTarget struct {
	calls    atomic.Int64
	code     int
	degraded bool
	delay    time.Duration
}

func (c *countTarget) Do(ctx context.Context, q Query) Result {
	c.calls.Add(1)
	if c.delay > 0 {
		select {
		case <-time.After(c.delay):
		case <-ctx.Done():
			return Result{Code: 504}
		}
	}
	return Result{Code: c.code, Degraded: c.degraded}
}

// TestRunAccounting: offered = sent + dropped, codes and degraded
// counts add up, and the latency profile is populated.
func TestRunAccounting(t *testing.T) {
	cfg := baseConfig()
	cfg.Workers = 4
	tgt := &countTarget{code: 200, degraded: true}
	rep, err := Run(context.Background(), cfg, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Offered == 0 || rep.Offered != rep.Sent+rep.Dropped {
		t.Fatalf("accounting broken: offered %d sent %d dropped %d", rep.Offered, rep.Sent, rep.Dropped)
	}
	if int(tgt.calls.Load()) != rep.Sent {
		t.Fatalf("target saw %d calls, report says %d sent", tgt.calls.Load(), rep.Sent)
	}
	if rep.Codes[200] != rep.Sent || rep.Degraded != rep.Sent {
		t.Fatalf("codes/degraded accounting: %+v degraded %d sent %d", rep.Codes, rep.Degraded, rep.Sent)
	}
	if rep.Sketch.N() != uint64(rep.Sent) || rep.OKSketch.N() != uint64(rep.Sent) {
		t.Fatalf("sketch N %d / OK N %d, want %d", rep.Sketch.N(), rep.OKSketch.N(), rep.Sent)
	}
	if rep.SessionsPerSec <= 0 || math.IsNaN(rep.P99Ms) {
		t.Fatalf("rates not populated: %s", rep.String())
	}
	if rep.OK() != rep.Sent || rep.Shed() != 0 || rep.ShedPct() != 0 {
		t.Fatalf("helper accessors wrong: %s", rep.String())
	}
}

// TestRunOpenLoopDrops: a slow target behind a tiny buffer forces
// client-side drops — the open-loop property that lets the harness
// actually overload a server.
func TestRunOpenLoopDrops(t *testing.T) {
	cfg := baseConfig()
	cfg.Workers = 1
	cfg.Buffer = 1
	cfg.Ticks = 10
	tgt := &countTarget{code: 200, delay: 2 * time.Millisecond}
	rep, err := Run(context.Background(), cfg, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Dropped == 0 {
		t.Fatalf("slow target dropped nothing: %s", rep.String())
	}
	if rep.Sent+rep.Dropped != rep.Offered {
		t.Fatalf("accounting broken: %s", rep.String())
	}
}

// TestRunMillionClientFleet: a two-million-client fleet streams without
// materializing clients — the run stays fast and memory-bounded because
// only arrivals exist.
func TestRunMillionClientFleet(t *testing.T) {
	cfg := baseConfig()
	cfg.Clients = 2_000_000
	cfg.SessionRate = 5e-5 // ~100/tick
	cfg.Ticks = 20
	cfg.MaxOffered = 5_000
	rep, err := Run(context.Background(), cfg, &countTarget{code: 200})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Offered == 0 {
		t.Fatal("fleet offered nothing")
	}
	if rep.Offered > cfg.MaxOffered {
		t.Fatalf("MaxOffered cap breached: %d > %d", rep.Offered, cfg.MaxOffered)
	}
}

// TestRunCancel: cancelling the context stops the run early and still
// returns the partial report.
func TestRunCancel(t *testing.T) {
	cfg := baseConfig()
	cfg.Ticks = 1_000_000
	cfg.TickWall = time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	done := make(chan struct{})
	var rep Report
	go func() {
		defer close(done)
		var err error
		rep, err = Run(ctx, cfg, &countTarget{code: 200})
		if err != nil {
			t.Error(err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Run did not stop after ctx cancellation")
	}
	if rep.Offered == 0 {
		t.Fatal("partial report empty")
	}
}

// TestRunDeadline: Config.Deadline bounds each dispatched query's
// context; a target slower than the deadline reports 504s.
func TestRunDeadline(t *testing.T) {
	cfg := baseConfig()
	cfg.Ticks = 5
	cfg.Deadline = time.Millisecond
	tgt := &countTarget{code: 200, delay: 50 * time.Millisecond}
	rep, err := Run(context.Background(), cfg, tgt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Codes[504] == 0 || rep.Codes[200] != 0 {
		t.Fatalf("deadline did not cut slow queries: %s", rep.String())
	}
}
