// Package dnsmap models the client-to-resolver (LDNS) layer that limits
// DNS-based redirection in the paper's §3.2: redirection systems see only
// the resolver's identity, not the client's, so decisions are made at
// per-LDNS granularity. ISP resolvers sit at their network's main hub
// (aggregating clients from the whole footprint); a fraction of clients
// use public anycast resolvers whose nearest node may be in another metro
// entirely; and EDNS Client Subnet, which would fix this, is adopted by
// almost no ISPs (< 0.1% of ASes) though public resolvers do send it.
package dnsmap

import (
	"fmt"
	"math"
	"sort"

	"beatbgp/internal/geo"
	"beatbgp/internal/topology"
	"beatbgp/internal/xrand"
)

// Config tunes the resolver population. Zero value gets defaults.
type Config struct {
	Seed uint64
	// PublicResolverProb is the fraction of client prefixes configured to
	// use a public resolver instead of their ISP's (default 0.25).
	PublicResolverProb float64
	// ISPECSProb is the probability that an ISP resolver sends ECS
	// (default 0.001, the paper's "<0.1% of ASes").
	ISPECSProb float64
}

// Validate rejects nonsensical parameters. Zero values are fine (they
// select defaults).
func (c *Config) Validate() error {
	for name, v := range map[string]float64{
		"PublicResolverProb": c.PublicResolverProb, "ISPECSProb": c.ISPECSProb,
	} {
		if math.IsNaN(v) || v < 0 || v > 1 {
			return fmt.Errorf("dnsmap: %s = %v must be a probability in [0, 1]", name, v)
		}
	}
	return nil
}

func (c *Config) setDefaults() {
	if c.PublicResolverProb == 0 {
		c.PublicResolverProb = 0.25
	}
	if c.ISPECSProb == 0 {
		c.ISPECSProb = 0.001
	}
}

// Resolver is one LDNS as seen by an authoritative DNS service.
type Resolver struct {
	ID     int
	City   int // where the resolver (or the client's nearest public node) sits
	AS     int // hosting AS; -1 for public resolver nodes
	Public bool
	ECS    bool // sends EDNS Client Subnet
}

// Mapping assigns every client prefix to a resolver.
type Mapping struct {
	resolvers []Resolver
	byPrefix  map[int]int // prefix ID -> resolver ID
}

// Build constructs the resolver population and prefix assignment for the
// topology's client prefixes.
func Build(t *topology.Topo, cfg Config) *Mapping {
	cfg.setDefaults()
	rng := xrand.New(cfg.Seed ^ 0xD15)
	m := &Mapping{byPrefix: make(map[int]int)}

	// Public resolver nodes: the largest city of every region. A client
	// using the public service is seen as the node nearest to it.
	publicNodes := make(map[geo.Region]int) // region -> resolver ID
	for _, region := range geo.Regions() {
		ids := t.Catalog.InRegion(region)
		sort.Slice(ids, func(i, j int) bool {
			a, b := t.Catalog.City(ids[i]), t.Catalog.City(ids[j])
			if a.Pop != b.Pop {
				return a.Pop > b.Pop
			}
			return ids[i] < ids[j]
		})
		if len(ids) == 0 {
			continue
		}
		r := Resolver{ID: len(m.resolvers), City: ids[0], AS: -1, Public: true, ECS: true}
		m.resolvers = append(m.resolvers, r)
		publicNodes[region] = r.ID
	}

	// ISP resolvers: one per eyeball AS, at the AS's largest footprint
	// city (LDNS aggregation across the whole AS footprint).
	ispResolver := make(map[int]int) // AS ID -> resolver ID
	for _, as := range t.ASes {
		if as.Class != topology.Eyeball {
			continue
		}
		hub, hubPop := as.Cities[0], -1.0
		for _, c := range as.Cities {
			if p := t.Catalog.City(c).Pop; p > hubPop {
				hub, hubPop = c, p
			}
		}
		r := Resolver{ID: len(m.resolvers), City: hub, AS: as.ID, ECS: rng.Bool(cfg.ISPECSProb)}
		m.resolvers = append(m.resolvers, r)
		ispResolver[as.ID] = r.ID
	}

	// Assign prefixes.
	for _, p := range t.Prefixes {
		if rng.Bool(cfg.PublicResolverProb) {
			region := t.Catalog.City(p.City).Region
			if id, ok := publicNodes[region]; ok {
				m.byPrefix[p.ID] = id
				continue
			}
		}
		if id, ok := ispResolver[p.Origin]; ok {
			m.byPrefix[p.ID] = id
		}
	}
	return m
}

// ResolverFor returns the LDNS serving the prefix.
func (m *Mapping) ResolverFor(prefixID int) (Resolver, bool) {
	id, ok := m.byPrefix[prefixID]
	if !ok {
		return Resolver{}, false
	}
	return m.resolvers[id], true
}

// Resolvers returns all resolvers in ID order.
func (m *Mapping) Resolvers() []Resolver {
	out := make([]Resolver, len(m.resolvers))
	copy(out, m.resolvers)
	return out
}

// PrefixesBehind returns the prefix IDs served by the resolver, ascending.
func (m *Mapping) PrefixesBehind(resolverID int) []int {
	var out []int
	for p, r := range m.byPrefix {
		if r == resolverID {
			out = append(out, p)
		}
	}
	sort.Ints(out)
	return out
}
