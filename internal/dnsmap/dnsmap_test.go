package dnsmap

import (
	"testing"

	"beatbgp/internal/topology"
)

func setup(t testing.TB, cfg Config) (*topology.Topo, *Mapping) {
	t.Helper()
	topo, err := topology.Generate(topology.GenConfig{Seed: 4, EyeballsPerRegion: 10})
	if err != nil {
		t.Fatal(err)
	}
	return topo, Build(topo, cfg)
}

func TestEveryPrefixHasResolver(t *testing.T) {
	topo, m := setup(t, Config{Seed: 1})
	for _, p := range topo.Prefixes {
		r, ok := m.ResolverFor(p.ID)
		if !ok {
			t.Fatalf("prefix %d has no resolver", p.ID)
		}
		if r.City < 0 || r.City >= topo.Catalog.Len() {
			t.Fatalf("resolver city out of range")
		}
	}
}

func TestPublicResolverFraction(t *testing.T) {
	topo, m := setup(t, Config{Seed: 2, PublicResolverProb: 0.3})
	public := 0
	for _, p := range topo.Prefixes {
		r, _ := m.ResolverFor(p.ID)
		if r.Public {
			public++
		}
	}
	frac := float64(public) / float64(len(topo.Prefixes))
	if frac < 0.2 || frac > 0.4 {
		t.Fatalf("public fraction = %v, want ~0.3", frac)
	}
}

func TestISPResolverInOwnAS(t *testing.T) {
	topo, m := setup(t, Config{Seed: 3})
	for _, p := range topo.Prefixes {
		r, _ := m.ResolverFor(p.ID)
		if r.Public {
			if r.AS != -1 || !r.ECS {
				t.Fatal("public resolver must be AS-less and send ECS")
			}
			continue
		}
		if r.AS != p.Origin {
			t.Fatalf("ISP resolver for prefix %d hosted in AS %d, want %d", p.ID, r.AS, p.Origin)
		}
		if !topo.ASes[p.Origin].Net.Present(r.City) {
			t.Fatal("ISP resolver outside its AS footprint")
		}
	}
}

func TestECSRareAmongISPs(t *testing.T) {
	_, m := setup(t, Config{Seed: 4})
	ecs, isp := 0, 0
	for _, r := range m.Resolvers() {
		if r.Public {
			continue
		}
		isp++
		if r.ECS {
			ecs++
		}
	}
	if isp == 0 {
		t.Fatal("no ISP resolvers")
	}
	if frac := float64(ecs) / float64(isp); frac > 0.05 {
		t.Fatalf("ISP ECS adoption = %v, want near zero", frac)
	}
}

func TestAggregation(t *testing.T) {
	// Many prefixes must share a resolver — that is the whole point of
	// LDNS-granularity redirection being hard.
	topo, m := setup(t, Config{Seed: 5})
	maxBehind := 0
	for _, r := range m.Resolvers() {
		if n := len(m.PrefixesBehind(r.ID)); n > maxBehind {
			maxBehind = n
		}
	}
	if maxBehind < 2 {
		t.Fatal("no resolver aggregates multiple prefixes")
	}
	// PrefixesBehind and ResolverFor must agree.
	for _, r := range m.Resolvers() {
		for _, p := range m.PrefixesBehind(r.ID) {
			got, _ := m.ResolverFor(p)
			if got.ID != r.ID {
				t.Fatal("inconsistent mapping")
			}
		}
	}
	_ = topo
}

func TestDeterministic(t *testing.T) {
	topo, err := topology.Generate(topology.GenConfig{Seed: 4, EyeballsPerRegion: 10})
	if err != nil {
		t.Fatal(err)
	}
	m1 := Build(topo, Config{Seed: 9})
	m2 := Build(topo, Config{Seed: 9})
	for _, p := range topo.Prefixes {
		a, _ := m1.ResolverFor(p.ID)
		b, _ := m2.ResolverFor(p.ID)
		if a != b {
			t.Fatalf("mapping differs for prefix %d", p.ID)
		}
	}
}

func TestMissingPrefix(t *testing.T) {
	_, m := setup(t, Config{Seed: 6})
	if _, ok := m.ResolverFor(999999); ok {
		t.Fatal("unknown prefix resolved")
	}
}
