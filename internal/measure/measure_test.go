package measure

import (
	"errors"
	"testing"

	"beatbgp/internal/bgp"
	"beatbgp/internal/netpath"
	"beatbgp/internal/netsim"
	"beatbgp/internal/topology"
)

func setup(t testing.TB) (*topology.Topo, *Platform, Target) {
	t.Helper()
	topo, err := topology.Generate(topology.GenConfig{Seed: 6, EyeballsPerRegion: 6})
	if err != nil {
		t.Fatal(err)
	}
	sim := netsim.New(topo, netsim.Config{Seed: 6})
	pl := New(topo, sim, Config{Seed: 6})
	// Target: the first prefix's origin city, reached via each VP's best
	// BGP route.
	p := topo.Prefixes[0]
	oracle := bgp.NewOracle(topo)
	res := netpath.NewResolver(topo)
	tgt := Target{
		Name: "prefix0",
		Route: func(vp VantagePoint) (netpath.Route, error) {
			rib, err := oracle.ToPrefix(p)
			if err != nil {
				return netpath.Route{}, err
			}
			r := rib.Best(vp.AS)
			if !r.Valid {
				return netpath.Route{}, errors.New("unreachable")
			}
			return res.Resolve(r, vp.City, p.City)
		},
	}
	return topo, pl, tgt
}

func TestVantagePointEnumeration(t *testing.T) {
	topo, pl, _ := setup(t)
	vps := pl.VantagePoints()
	if len(vps) < 40 {
		t.Fatalf("only %d vantage points", len(vps))
	}
	for _, vp := range vps {
		if topo.ASes[vp.AS].Class != topology.Eyeball {
			t.Fatal("VP outside an eyeball AS")
		}
		if !topo.ASes[vp.AS].Net.Present(vp.City) {
			t.Fatal("VP city outside its AS")
		}
		if vp.Prefix.ID < 1_000_000 {
			t.Fatal("VP prefix collides with client prefix IDs")
		}
	}
}

func TestRotationDeterministicAndChanging(t *testing.T) {
	_, pl, _ := setup(t)
	a := pl.Rotation(3, 10)
	b := pl.Rotation(3, 10)
	if len(a) != 10 || len(b) != 10 {
		t.Fatalf("rotation sizes %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatal("same-day rotation differs")
		}
	}
	c := pl.Rotation(4, 10)
	same := 0
	for i := range a {
		if a[i].ID == c[i].ID {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("rotation never rotates")
	}
}

func TestRotationCapped(t *testing.T) {
	_, pl, _ := setup(t)
	all := pl.VantagePoints()
	got := pl.Rotation(0, len(all)+100)
	if len(got) != len(all) {
		t.Fatalf("rotation returned %d of %d", len(got), len(all))
	}
}

func TestPingChargesCreditsAndMeasures(t *testing.T) {
	_, pl, tgt := setup(t)
	vp := pl.VantagePoints()[0]
	before := pl.CreditsUsed()
	rtt, err := pl.Ping(vp, tgt, 100)
	if err != nil {
		// Unreachable VP; try a few others.
		for _, v := range pl.VantagePoints()[1:10] {
			if rtt, err = pl.Ping(v, tgt, 100); err == nil {
				vp = v
				break
			}
		}
	}
	if err != nil {
		t.Fatalf("no VP can ping: %v", err)
	}
	if rtt <= 0 {
		t.Fatalf("rtt = %v", rtt)
	}
	if pl.CreditsUsed() <= before {
		t.Fatal("credits not charged")
	}
}

func TestPingExtraRTT(t *testing.T) {
	_, pl, tgt := setup(t)
	var vp VantagePoint
	found := false
	for _, v := range pl.VantagePoints()[:20] {
		if _, err := tgt.Route(v); err == nil {
			vp, found = v, true
			break
		}
	}
	if !found {
		t.Skip("no reachable VP in sample")
	}
	plain, err := pl.Ping(vp, tgt, 50)
	if err != nil {
		t.Fatal(err)
	}
	tgt2 := tgt
	tgt2.ExtraRTTMs = func(VantagePoint) float64 { return 100 }
	boosted, err := pl.Ping(vp, tgt2, 50)
	if err != nil {
		t.Fatal(err)
	}
	if boosted < plain+90 {
		t.Fatalf("extra RTT not applied: %v vs %v", boosted, plain)
	}
}

func TestTraceroute(t *testing.T) {
	topo, pl, tgt := setup(t)
	known, total := 0, 0
	for _, vp := range pl.VantagePoints() {
		res, err := pl.Traceroute(vp, tgt)
		if err != nil {
			continue
		}
		total++
		if res.IngressKnown {
			known++
		}
		if res.IngressCity != res.Route.Hops[len(res.Route.Hops)-1].Ingress {
			t.Fatal("ingress city mismatch")
		}
		if res.IngressDistKm < 0 {
			t.Fatal("negative ingress distance")
		}
	}
	if total < 30 {
		t.Fatalf("only %d traceroutes succeeded", total)
	}
	frac := float64(known) / float64(total)
	if frac < 0.55 || frac > 0.90 {
		t.Fatalf("ingress detection rate %v, want ~0.72", frac)
	}
	_ = topo
}

func TestPingErrorPropagates(t *testing.T) {
	_, pl, _ := setup(t)
	bad := Target{Name: "bad", Route: func(VantagePoint) (netpath.Route, error) {
		return netpath.Route{}, errors.New("nope")
	}}
	if _, err := pl.Ping(pl.VantagePoints()[0], bad, 0); err == nil {
		t.Fatal("route error swallowed")
	}
}
