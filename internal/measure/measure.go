// Package measure emulates a global measurement platform in the style of
// Speedchecker or RIPE Atlas (§3.3): vantage points identified by
// ⟨City, AS⟩ inside eyeball networks, a credit budget, ping and traceroute
// primitives evaluated against the simulated network, deterministic daily
// rotation of vantage points, and the paper's RIPE-style ingress-point
// detection that succeeds for ~72% of traceroutes.
package measure

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"beatbgp/internal/geo"
	"beatbgp/internal/netpath"
	"beatbgp/internal/netsim"
	"beatbgp/internal/topology"
	"beatbgp/internal/xrand"
)

// Config tunes the platform. Zero value gets defaults.
type Config struct {
	Seed           uint64
	PingsPerProbe  int     // ping packets per measurement, min is reported (default 5)
	PingCost       int     // credits per ping probe (default 1)
	TracerouteCost int     // credits per traceroute (default 2)
	IngressDetect  float64 // probability an ingress is localizable (default 0.72)
	// VPPrefixBase offsets synthetic vantage-point prefix IDs so their
	// congestion processes do not collide with real client prefixes.
	VPPrefixBase int // default 1_000_000
}

func (c *Config) setDefaults() {
	if c.PingsPerProbe == 0 {
		c.PingsPerProbe = 5
	}
	if c.PingCost == 0 {
		c.PingCost = 1
	}
	if c.TracerouteCost == 0 {
		c.TracerouteCost = 2
	}
	if c.IngressDetect == 0 {
		c.IngressDetect = 0.72
	}
	if c.VPPrefixBase == 0 {
		c.VPPrefixBase = 1_000_000
	}
}

// VantagePoint is one measurement host: a ⟨City, AS⟩ location inside an
// eyeball network, with a synthetic prefix carrying its last-mile
// congestion process.
type VantagePoint struct {
	ID     int
	AS     int
	City   int
	Prefix topology.Prefix
}

// Target is something the platform can probe. Route resolves the physical
// path from a vantage point to the target; ExtraRTTMs adds target-side
// latency beyond that path (e.g. private-WAN carriage from the ingress to
// a data center). ExtraRTTMs may be nil.
type Target struct {
	Name       string
	Route      func(vp VantagePoint) (netpath.Route, error)
	ExtraRTTMs func(vp VantagePoint) float64
}

// Platform issues measurements and accounts for credits.
//
// Measurement noise is keyed by ⟨vantage point, target, probe time⟩ —
// never by call order — so any set of probes returns the same values
// whatever the issue order or concurrency, and repeating a probe repeats
// its measurement (a deterministic platform measuring a deterministic
// network). Probes are therefore safe to issue from parallel workers; use
// WithSim to give each worker a private simulator memo.
type Platform struct {
	topo *topology.Topo
	sim  *netsim.Sim
	cfg  Config
	vps  []VantagePoint

	creditsUsed *atomic.Int64 // shared across WithSim views
}

// New enumerates vantage points (every ⟨footprint city, eyeball AS⟩ pair)
// and returns a platform.
func New(t *topology.Topo, sim *netsim.Sim, cfg Config) *Platform {
	cfg.setDefaults()
	p := &Platform{topo: t, sim: sim, cfg: cfg, creditsUsed: new(atomic.Int64)}
	for _, asID := range t.ByClass(topology.Eyeball) {
		for _, city := range t.ASes[asID].Cities {
			id := len(p.vps)
			p.vps = append(p.vps, VantagePoint{
				ID:   id,
				AS:   asID,
				City: city,
				Prefix: topology.Prefix{
					ID:     cfg.VPPrefixBase + id,
					Origin: asID,
					City:   city,
					Weight: 1,
				},
			})
		}
	}
	return p
}

// VantagePoints returns every available VP in ID order.
func (p *Platform) VantagePoints() []VantagePoint {
	out := make([]VantagePoint, len(p.vps))
	copy(out, p.vps)
	return out
}

// Rotation returns the deterministic daily selection of up to n vantage
// points for the given day, rotating across ⟨City, AS⟩ locations over
// time as the paper's methodology does.
func (p *Platform) Rotation(day, n int) []VantagePoint {
	if n > len(p.vps) {
		n = len(p.vps)
	}
	rng := xrand.New(p.cfg.Seed ^ (uint64(day)+1)*0x9e3779b97f4a7c15)
	perm := rng.Perm(len(p.vps))
	out := make([]VantagePoint, 0, n)
	for _, idx := range perm[:n] {
		out = append(out, p.vps[idx])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// WithSim returns a view of the platform that resolves measurements
// against the given simulator but shares the vantage-point set and the
// credit meter. Hand each parallel worker a view over its own Sim clone
// so the simulator's lazy memos stay uncontended.
func (p *Platform) WithSim(sim *netsim.Sim) *Platform {
	v := *p
	v.sim = sim
	return &v
}

// CreditsUsed reports total credits consumed.
func (p *Platform) CreditsUsed() int { return int(p.creditsUsed.Load()) }

// nameHash folds a target name into the measurement key space.
func nameHash(s string) uint64 {
	h := uint64(0xcbf29ce484222325) // FNV-1a
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// probeRNG returns the noise stream for one ⟨vp, target, time⟩ probe.
// Keying by the probe's identity (not by call order) is what makes the
// platform order-independent and safe under parallel fan-out.
func (p *Platform) probeRNG(vp VantagePoint, tgt Target, t float64) *xrand.Rand {
	return xrand.Derive(p.cfg.Seed^0x5eedc, uint64(vp.ID), nameHash(tgt.Name), math.Float64bits(t))
}

// Ping probes the target from the VP at simulated minute t and returns
// the minimum RTT over the configured packet count, like the ping tool's
// "min" column. It consumes PingCost credits.
func (p *Platform) Ping(vp VantagePoint, tgt Target, t float64) (float64, error) {
	p.creditsUsed.Add(int64(p.cfg.PingCost))
	route, err := tgt.Route(vp)
	if err != nil {
		return 0, fmt.Errorf("measure: ping %s from vp%d: %w", tgt.Name, vp.ID, err)
	}
	extra := 0.0
	if tgt.ExtraRTTMs != nil {
		extra = tgt.ExtraRTTMs(vp)
	}
	rng := p.probeRNG(vp, tgt, t)
	best := 0.0
	for i := 0; i < p.cfg.PingsPerProbe; i++ {
		rtt := p.sim.RouteRTTMs(route, vp.Prefix, t+float64(i)*0.01) + extra + rng.Exp(0.2)
		if i == 0 || rtt < best {
			best = rtt
		}
	}
	return best, nil
}

// TracerouteResult is the resolved path plus the detected ingress into
// the final AS (the target's network), if localizable.
type TracerouteResult struct {
	Route         netpath.Route
	IngressCity   int  // city where traffic enters the final AS
	IngressKnown  bool // detection succeeds with probability cfg.IngressDetect
	IngressDistKm float64
}

// Traceroute probes the forwarding path and attempts to localize where it
// enters the target's network, in the style of the paper's RIPE-probe
// heuristic. It consumes TracerouteCost credits.
func (p *Platform) Traceroute(vp VantagePoint, tgt Target) (TracerouteResult, error) {
	p.creditsUsed.Add(int64(p.cfg.TracerouteCost))
	route, err := tgt.Route(vp)
	if err != nil {
		return TracerouteResult{}, fmt.Errorf("measure: traceroute %s from vp%d: %w", tgt.Name, vp.ID, err)
	}
	if len(route.Hops) == 0 {
		return TracerouteResult{}, fmt.Errorf("measure: empty route")
	}
	res := TracerouteResult{Route: route}
	res.IngressCity = route.Hops[len(route.Hops)-1].Ingress
	res.IngressKnown = p.probeRNG(vp, tgt, -1).Bool(p.cfg.IngressDetect)
	res.IngressDistKm = geo.DistanceKm(
		p.topo.Catalog.City(vp.City).Loc,
		p.topo.Catalog.City(res.IngressCity).Loc)
	return res, nil
}
