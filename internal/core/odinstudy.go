package core

import (
	"fmt"

	"beatbgp/internal/stats"
)

// OdinStudy derives Figure 4's prediction errors mechanistically: instead
// of injecting estimation noise, it runs an Odin-style client-measurement
// campaign at several sampling budgets, trains the redirector from the
// collected aggregates, and evaluates it side-by-side with anycast on
// later days. Sparse budgets produce noisy per-LDNS estimates and more
// "did worse than anycast" mass — the same failure mode the paper
// attributes to real redirection systems.
func OdinStudy(s *Scenario) (Result, error) {
	tb := stats.Table{Name: "odin sampling budget sweep",
		Columns: []string{"samples", "frac_improved_gt_1ms", "frac_worse_gt_1ms", "mean_gain_ms"}}
	for _, rate := range []float64{0.002, 0.01, 0.05} {
		rd, samples, err := odinRedirector(s, rate, 0)
		if err != nil {
			return Result{}, err
		}
		o, err := evaluateServing(s, rd)
		if err != nil {
			return Result{}, err
		}
		if o.evaluated == 0 {
			return Result{}, fmt.Errorf("core: odin sweep evaluated nothing at rate %v", rate)
		}
		tb.AddRow(fmt.Sprintf("sample_rate_%.3f", rate),
			float64(samples), o.improved/o.evaluated, o.worse/o.evaluated, o.med.Mean())
	}
	res := Result{ID: "xodin", Title: "Measurement budget vs redirection quality"}
	res.Tables = append(res.Tables, tb)
	res.Notes = append(res.Notes,
		"prediction error is a measurement-budget artifact: more instrumented page views, fewer mispredictions — grounding Figure 4's noise parameter in the Odin-style pipeline the paper's systems actually use")
	return res, nil
}
