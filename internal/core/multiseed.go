package core

import (
	"context"
	"fmt"

	"beatbgp/internal/stats"
)

// RunSeeds runs one experiment across several seeds (each in a freshly
// generated world) and aggregates every table cell into mean/min/max —
// the robustness check that separates a finding from a lucky draw. Series
// are not aggregated; rerun a single seed for plottable lines.
//
// Per-seed worlds are built with Scenario.Derive, so seed derivation
// happens in exactly one place (Config.setDefaults): mutating Config.Seed
// reseeds every stage whose seed the caller left zero, while stage seeds
// the caller pinned explicitly are held fixed across seeds (and their
// stages' artifacts are reused between runs).
func RunSeeds(base Config, id string, seeds []uint64) (Result, error) {
	return RunSeedsContext(context.Background(), base, id, seeds)
}

// RunSeedsContext is RunSeeds honoring context cancellation between (and
// inside) the per-seed runs.
func RunSeedsContext(ctx context.Context, base Config, id string, seeds []uint64) (Result, error) {
	if len(seeds) == 0 {
		return Result{}, fmt.Errorf("core: no seeds")
	}
	perSeed := make([]Result, 0, len(seeds))
	var cur *Scenario
	for _, seed := range seeds {
		var err error
		if cur == nil {
			cfg := base
			cfg.Seed = seed
			cur, err = NewScenarioContext(ctx, cfg)
		} else {
			cur, err = cur.DeriveContext(ctx, func(c *Config) { c.Seed = seed })
		}
		if err != nil {
			return Result{}, fmt.Errorf("core: seed %d: %w", seed, err)
		}
		r, err := RunByIDContext(ctx, cur, id, 0)
		if err != nil {
			return Result{}, fmt.Errorf("core: seed %d: %w", seed, err)
		}
		perSeed = append(perSeed, r)
	}
	return AggregateSeeds(id, seeds, perSeed)
}

// AggregateSeeds folds one experiment's per-seed Results into the
// mean/min/max summary RunSeeds reports. perSeed[i] must be the result
// for seeds[i]; cells are accumulated in seed order, so the output is
// byte-identical whether the per-seed results were just computed or
// replayed from a checkpoint (internal/harness resumes rely on this).
func AggregateSeeds(id string, seeds []uint64, perSeed []Result) (Result, error) {
	if len(seeds) == 0 {
		return Result{}, fmt.Errorf("core: no seeds")
	}
	if len(perSeed) != len(seeds) {
		return Result{}, fmt.Errorf("core: %d results for %d seeds", len(perSeed), len(seeds))
	}
	type cellKey struct {
		table, row, col string
	}
	vals := make(map[cellKey]*stats.Dist)
	for _, r := range perSeed {
		for _, tb := range r.Tables {
			for _, row := range tb.Rows {
				for ci, col := range tb.Columns {
					k := cellKey{tb.Name, row.Label, col}
					if vals[k] == nil {
						vals[k] = &stats.Dist{}
					}
					vals[k].Add(row.Cells[ci], 1)
				}
			}
		}
	}
	proto := perSeed[0]
	out := Result{
		ID:    id + "@seeds",
		Title: fmt.Sprintf("%s across %d seeds", proto.Title, len(seeds)),
		Notes: append([]string(nil), proto.Notes...),
	}
	out.Notes = append(out.Notes,
		fmt.Sprintf("cells aggregated over seeds %v; rows absent in some seeds are averaged over the seeds that produced them", seeds))
	for _, tb := range proto.Tables {
		agg := stats.Table{Name: tb.Name + " (mean/min/max)"}
		for _, col := range tb.Columns {
			agg.Columns = append(agg.Columns, col+"_mean", col+"_min", col+"_max")
		}
		for _, row := range tb.Rows {
			cells := make([]float64, 0, len(tb.Columns)*3)
			for _, col := range tb.Columns {
				d := vals[cellKey{tb.Name, row.Label, col}]
				cells = append(cells, d.Mean(), d.Min(), d.Max())
			}
			agg.Rows = append(agg.Rows, stats.Row{Label: row.Label, Cells: cells})
		}
		out.Tables = append(out.Tables, agg)
	}
	return out, nil
}
