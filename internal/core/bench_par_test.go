package core

import (
	"context"
	"fmt"
	"testing"
)

// benchConfig is a laptop-scale world kept small enough that a full
// Edge-Fabric replay fits in a benchmark iteration.
func benchConfig(workers int) Config {
	cfg := Config{Seed: 42, Workers: workers}
	cfg.Topology.EyeballsPerRegion = 6
	cfg.Workload.Days = 2
	return cfg
}

// benchEFReplay measures the fig1 hot path — per-origin route propagation
// plus the full per-prefix session replay — at a fixed worker count. The
// lazy trace cache is dropped every iteration so each one pays the whole
// sweep.
func benchEFReplay(b *testing.B, workers int) {
	s, err := NewScenario(benchConfig(workers))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.traces = nil
		if _, err := s.efTraces(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEFTraceReplay is the parallel runtime's speedup probe: the
// same deterministic replay at 1, 2, 4 and 8 workers. On a single-core
// host the variants collapse to serial throughput (modulo pool overhead);
// compare ns/op across sub-benchmarks on a multi-core machine to see the
// scaling. Output is byte-identical across all of them either way.
func BenchmarkEFTraceReplay(b *testing.B) {
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			benchEFReplay(b, workers)
		})
	}
}

// BenchmarkSiteDensitySweep runs the xsites study end to end — the
// heaviest derived-scenario sweep (four CDN densities, each a full
// anycast evaluation). With the staged build graph every density is a
// CDN-only Derive: the topology, provider WAN, and DNS mapping are built
// once on the base scenario and shared across the sweep.
func BenchmarkSiteDensitySweep(b *testing.B) {
	s, err := NewScenario(benchConfig(0))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SiteDensityStudy(context.Background(), s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3AnycastSweep exercises the other parallel tentpole wire:
// the per-prefix anycast-catchment sweep behind Figure 3.
func BenchmarkFig3AnycastSweep(b *testing.B) {
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			s, err := NewScenario(benchConfig(workers))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := s.efTraces(); err != nil { // warm shared caches off the clock
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Figure3(s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
