package core

import (
	"math"
	"testing"
)

// TestDetectionStudyShape checks the detection-sensitivity sweep's
// physics: measured detection latency must track each setting's
// configured mean, blackhole downtime must shrink monotonically as
// detection gets faster, and — the headline claim — enabling BFD must
// strictly reduce unavailability relative to the default hold timer.
func TestDetectionStudyShape(t *testing.T) {
	s := scenario(t, 24)
	r, err := DetectionStudy(s)
	if err != nil {
		t.Fatal(err)
	}
	tbl := "blackhole minutes by detection setting"
	names := []string{"hold_90s", "hold_36s_default", "hold_9s", "bfd_300ms_x3", "bfd_50ms_x3"}
	settings := detectionSettings(s.Cfg.Session)
	var down, detect []float64
	for i, n := range names {
		if settings[i].name != n {
			t.Fatalf("setting %d = %s, want %s", i, settings[i].name, n)
		}
		down = append(down, cell(t, r, tbl, n, "mean_downtime_min"))
		detect = append(detect, cell(t, r, tbl, n, "mean_detect_min"))
		if fu := cell(t, r, tbl, n, "frac_undetected"); fu < 0 || fu > 1 {
			t.Fatalf("%s: frac_undetected %v out of range", n, fu)
		}
		// Measured mean detection latency within the keepalive/BFD phase
		// tolerance of the configured mean (half a keepalive interval).
		want := settings[i].cfg.MeanDetectSec() / 60
		tol := settings[i].cfg.KeepaliveSec / 2 / 60
		if settings[i].cfg.BFD {
			tol = float64(settings[i].cfg.BFDMultiplier) * settings[i].cfg.BFDIntervalMs / 1000 / 60
		}
		if math.Abs(detect[i]-want) > tol+1e-9 {
			t.Errorf("%s: mean detect %v min, want %v ± %v", n, detect[i], want, tol)
		}
	}
	for i := 1; i < len(names); i++ {
		if detect[i] >= detect[i-1] {
			t.Errorf("detection latency not monotone: %s %v >= %s %v",
				names[i], detect[i], names[i-1], detect[i-1])
		}
	}
	// The acceptance claim: BFD strictly reduces unavailability vs the
	// default hold timer, and a slower hold timer strictly increases it.
	if down[3] >= down[1] {
		t.Errorf("BFD did not strictly reduce downtime: bfd=%v vs default=%v", down[3], down[1])
	}
	if down[0] <= down[1] {
		t.Errorf("a 90s hold timer should cost more than the default: %v vs %v", down[0], down[1])
	}
}

// TestFlapStormShape checks the damping story: the storm's physical
// downtime is identical across variants, but with damping on the links
// are unusable for a strict multiple of it — mostly suppression while
// physically healthy — and turning damping off removes that entirely.
func TestFlapStormShape(t *testing.T) {
	s := scenario(t, 24)
	r, err := FlapStormStudy(s)
	if err != nil {
		t.Fatal(err)
	}
	tbl := "flap storm on the busiest egress links"
	flapsOn := cell(t, r, tbl, "damping_on", "flaps")
	flapsOff := cell(t, r, tbl, "damping_off", "flaps")
	if flapsOn <= 0 || flapsOn != flapsOff {
		t.Fatalf("flap counts: on=%v off=%v, want equal and positive", flapsOn, flapsOff)
	}
	physOn := cell(t, r, tbl, "damping_on", "phys_down_min")
	physOff := cell(t, r, tbl, "damping_off", "phys_down_min")
	if physOn <= 0 || physOn != physOff {
		t.Fatalf("physical downtime: on=%v off=%v, want equal and positive", physOn, physOff)
	}
	supOn := cell(t, r, tbl, "damping_on", "suppressed_while_up_min")
	supOff := cell(t, r, tbl, "damping_off", "suppressed_while_up_min")
	if supOn <= 0 {
		t.Errorf("the storm must cross the suppress threshold: suppressed_while_up=%v", supOn)
	}
	if supOff != 0 {
		t.Errorf("damping off cannot suppress: suppressed_while_up=%v", supOff)
	}
	unOn := cell(t, r, tbl, "damping_on", "unusable_min")
	unOff := cell(t, r, tbl, "damping_off", "unusable_min")
	if unOn <= unOff {
		t.Errorf("damping must amplify unusable time: on=%v off=%v", unOn, unOff)
	}
	if unOn <= physOn {
		t.Errorf("emergent unreachability must exceed physical downtime: unusable=%v phys=%v", unOn, physOn)
	}
	if amp := cell(t, r, tbl, "damping_on", "amplification"); amp <= 1 {
		t.Errorf("amplification %v, want > 1", amp)
	}
	if n := cell(t, r, "storm scope", "storm_links", "value"); n <= 0 || n > flapStormLinks {
		t.Fatalf("storm_links %v out of range", n)
	}
}

// TestSessionDifferentialMatchesClosedForm is the differential-testing
// gate from DESIGN.md §12: on the xfaults schedule with default timers,
// the session layer's emergent blackhole accounting must track the
// closed-form bgp.ConvergenceMinutes reference within the documented
// tolerance — half a keepalive interval (0.1 min) on per-event detection
// latency, and a quarter minute on the volume-weighted mean blackhole.
func TestSessionDifferentialMatchesClosedForm(t *testing.T) {
	s := scenario(t, 24)
	r, err := FaultStudy(s)
	if err != nil {
		t.Fatal(err)
	}
	const detectTol = 0.101 // KeepaliveSec/2 in minutes, plus float slack
	diff := "session layer vs closed-form reference"
	meanLat := cell(t, r, diff, "mean_detect_latency_min", "value")
	if math.Abs(meanLat-s.Cfg.Convergence.BaseMin) > detectTol {
		t.Errorf("mean detect latency %v min, want %v ± %v (the calibrated base term)",
			meanLat, s.Cfg.Convergence.BaseMin, detectTol)
	}
	if d := cell(t, r, diff, "mean_abs_base_delta_min", "value"); d > detectTol {
		t.Errorf("mean |detect − base| = %v min, want ≤ %v", d, detectTol)
	}
	if fu := cell(t, r, diff, "frac_event_links_undetected", "value"); fu > 0.05 {
		t.Errorf("frac undetected %v, want ≤ 0.05 — default timers must see the injected schedule", fu)
	}
	bh := "blackhole minutes per outage per affected client-route"
	closed := cell(t, r, bh, "bgp_convergence", "mean_downtime_min")
	emergent := cell(t, r, bh, "bgp_session_timers", "mean_downtime_min")
	if closed <= 0 || emergent <= 0 {
		t.Fatalf("blackhole means must be positive: closed=%v emergent=%v", closed, emergent)
	}
	if math.Abs(emergent-closed) > 0.25 {
		t.Errorf("emergent blackhole %v min vs closed form %v min: |Δ| > 0.25 tolerance", emergent, closed)
	}
}

// TestSessionStudyDeterminism: same seed, two worlds, byte-identical
// renders for both session experiments (the world-build analogue of the
// worker-count sweep in the facade tests).
func TestSessionStudyDeterminism(t *testing.T) {
	s1, s2 := scenario(t, 26), scenario(t, 26)
	for _, id := range []string{"xdetect", "xflap"} {
		r1, err := RunByID(s1, id)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := RunByID(s2, id)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Render() != r2.Render() {
			t.Fatalf("%s: identical seeds produced different renders", id)
		}
	}
}

// TestWorldKeyTracksDynamics: the session and convergence models enter
// the world key (they change what experiments compute), but equal
// effective configs — zero vs explicit defaults — hash equal.
func TestWorldKeyTracksDynamics(t *testing.T) {
	base := smallConfig(42)
	k1, err := WorldKey(base)
	if err != nil {
		t.Fatal(err)
	}
	hold := base
	hold.Session.HoldSec = 90
	if kh, _ := WorldKey(hold); kh == k1 {
		t.Error("changing the hold timer did not change the world key")
	}
	bfd := base
	bfd.Session.BFD = true
	if kb, _ := WorldKey(bfd); kb == k1 {
		t.Error("enabling BFD did not change the world key")
	}
	conv := base
	conv.Convergence.BaseMin = 1.5
	if kc, _ := WorldKey(conv); kc == k1 {
		t.Error("changing the convergence base term did not change the world key")
	}
	// Explicitly spelling out the defaults is the same effective config.
	expl := base
	expl.Session = base.Session.ApplyDefaults()
	expl.Convergence = base.Convergence.ApplyDefaults()
	if ke, _ := WorldKey(expl); ke != k1 {
		t.Error("explicit defaults changed the world key; normalization is broken")
	}
}
