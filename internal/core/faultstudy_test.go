package core

import "testing"

func TestFaultStudyShape(t *testing.T) {
	s := scenario(t, 24)
	r, err := FaultStudy(s)
	if err != nil {
		t.Fatal(err)
	}
	// The injected schedule must actually hit the measured routes.
	affected := cell(t, r, "blackhole minutes per outage per affected client-route",
		"bgp_convergence", "frac_volume_affected")
	if affected <= 0 {
		t.Fatal("injected faults did not take down any measured route")
	}
	bgpMean := cell(t, r, "blackhole minutes per outage per affected client-route",
		"bgp_convergence", "mean_downtime_min")
	efMean := cell(t, r, "blackhole minutes per outage per affected client-route",
		"edge_fabric_override", "mean_downtime_min")
	if bgpMean <= 0 {
		t.Fatal("BGP reconvergence cannot be instantaneous")
	}
	if efMean > bgpMean+1e-9 {
		t.Fatalf("the override (%v min) cannot be slower than convergence (%v min)", efMean, bgpMean)
	}
	degraded := cell(t, r, "degradation correlation under injected faults",
		"frac_volume_pref_degraded", "value")
	corr := cell(t, r, "degradation correlation under injected faults",
		"frac_degraded_where_best_alt_degraded_too", "value")
	if degraded <= 0 {
		t.Fatal("injected storms degraded nothing")
	}
	if corr < 0 || corr > 1 {
		t.Fatalf("correlation fraction %v out of range", corr)
	}
	shifted := cell(t, r, "capacity spillover during outages",
		"frac_volume_shifted_off_preferred", "value")
	if shifted < 0 || shifted > 1 {
		t.Fatalf("shifted volume fraction %v out of range", shifted)
	}
}

func TestAnycastFaultAvailabilityShape(t *testing.T) {
	s := scenario(t, 25)
	r, err := AnycastFaultAvailability(s)
	if err != nil {
		t.Fatal(err)
	}
	tbl := "fault-driven downtime per affected client (minutes)"
	anyAff := cell(t, r, tbl, "anycast_unplanned", "frac_clients_affected")
	dnsAff := cell(t, r, tbl, "dns_unplanned", "frac_clients_affected")
	if anyAff <= 0 && dnsAff <= 0 {
		t.Fatal("injected site/cable failures affected nobody")
	}
	anyDown := cell(t, r, tbl, "anycast_unplanned", "mean_downtime_min")
	dnsDown := cell(t, r, tbl, "dns_unplanned", "mean_downtime_min")
	if anyAff > 0 && anyDown <= 0 {
		t.Fatal("anycast failover cannot be instantaneous for unplanned faults")
	}
	if anyAff > 0 && dnsAff > 0 && anyDown >= dnsDown {
		t.Fatalf("anycast downtime %v must beat DNS downtime %v — the §4 claim", anyDown, dnsDown)
	}
	// Planned events are drained/repointed ahead of time: zero downtime.
	if v := cell(t, r, tbl, "anycast_planned_drain", "mean_downtime_min"); v != 0 {
		t.Fatalf("planned drain downtime %v, want 0", v)
	}
	if v := cell(t, r, tbl, "dns_planned_repoint", "mean_downtime_min"); v != 0 {
		t.Fatalf("planned repoint downtime %v, want 0", v)
	}
}

// TestFaultDeterminism is the regression test for the seed contract: two
// independently built scenarios with the same seed render byte-identical
// output for fig1 and the fault-injection study.
func TestFaultDeterminism(t *testing.T) {
	for _, id := range []string{"fig1", "xfaults"} {
		r1, err := RunByID(scenario(t, 26), id)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := RunByID(scenario(t, 26), id)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Render() != r2.Render() {
			t.Fatalf("%s: identical seeds produced different renders", id)
		}
	}
}
