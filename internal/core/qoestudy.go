package core

import (
	"errors"

	"beatbgp/internal/qoe"
	"beatbgp/internal/stats"
)

// QoEStudy puts the paper's §4 business framing in numbers: the 2-4% of
// traffic that performance-aware egress could improve by ≥5 ms "represent
// hundreds of billions of HTTP sessions" — is that worth a routing
// control system? The study converts fig1's per-pair improvements into
// sessions/day and engagement terms under the rule-of-thumb QoE model.
func QoEStudy(s *Scenario) (Result, error) {
	pairs, err := s.pairStatsAll()
	if err != nil {
		return Result{}, err
	}
	model := qoe.Default()
	var totalSessions, improvableSessions, engagementGain float64
	var totalWeight float64
	var baseline stats.Dist
	for _, ps := range pairs {
		w := ps.trace.Prefix.Weight
		totalWeight += w
		sessions := model.SessionsPerDay(w)
		totalSessions += sessions
		// Baseline latency of the preferred route (median across windows).
		var pref stats.Dist
		for _, win := range ps.trace.Windows {
			pref.Add(win.MedianMinRTTMs[0], 1)
		}
		base := pref.Median()
		baseline.Add(base, w)
		if ps.pointDiff >= 5 {
			improvableSessions += sessions
			gain := model.EngagementDelta(base, ps.pointDiff)
			engagementGain += gain * sessions
		}
	}
	if totalSessions == 0 {
		return Result{}, errNoPairs
	}
	tb := stats.Table{Name: "latency improvements in user terms", Columns: []string{"value"}}
	tb.AddRow("sessions_per_day_total", totalSessions)
	tb.AddRow("sessions_per_day_improvable_ge5ms", improvableSessions)
	tb.AddRow("frac_sessions_improvable", improvableSessions/totalSessions)
	tb.AddRow("median_baseline_latency_ms", baseline.Median())
	tb.AddRow("engagement_gain_sessions_per_day", engagementGain)
	tb.AddRow("engagement_gain_per_million_sessions", engagementGain/totalSessions*1e6)
	res := Result{ID: "xqoe", Title: "The business case: improvable latency in session terms"}
	res.Tables = append(res.Tables, tb)
	res.Notes = append(res.Notes,
		"under the 1%-per-100ms rule of thumb, the improvable slice is billions of sessions a day but a sub-0.1% aggregate engagement delta — why the paper calls building a performance-aware system 'a business (and not technical) assessment'",
		"the QoE model is a rule-of-thumb (paper refs [17], [19]); treat the absolute session counts as framing, not calibration")
	return res, nil
}

var errNoPairs = errors.New("core: no edge-fabric pairs to analyze")
