package core

import (
	"context"

	"beatbgp/internal/stats"
)

// CorridorStudy runs the what-if behind the paper's §3.3.2 India finding:
// the 2019-era WAN reached Asia only across the Pacific, so a Tier-1
// carrying Standard-tier traffic west via the Suez route beat it. Lease
// the missing Europe–Asia corridor and the comparison should flip — which
// is what the provider in question eventually did.
// Each arm is a Provider-only Derive of the base scenario: the topology
// stage is shared, and the no-corridor arm (when it matches the base
// config) reuses the whole immutable world.
func CorridorStudy(ctx context.Context, s *Scenario) (Result, error) {
	countries := []string{"IN", "PK", "AE", "SA", "JP", "AU", "US", "DE"}
	run := func(corridor bool) (map[string]float64, error) {
		sub, err := s.DeriveContext(ctx, func(c *Config) {
			c.Provider.EuropeAsiaCorridor = corridor
		})
		if err != nil {
			return nil, err
		}
		ts, err := sub.tiers()
		if err != nil {
			return nil, err
		}
		per := map[string]*stats.Dist{}
		for i, vp := range ts.vps {
			c := sub.countryOf(vp.City)
			found := false
			for _, want := range countries {
				if c == want {
					found = true
					break
				}
			}
			if !found {
				continue
			}
			t := float64(i%24) * 60
			p1, e1 := ts.plat.Ping(vp, ts.prem, t)
			p2, e2 := ts.plat.Ping(vp, ts.std, t)
			if e1 != nil || e2 != nil {
				continue
			}
			if per[c] == nil {
				per[c] = &stats.Dist{}
			}
			per[c].Add(p2-p1, 1)
		}
		out := map[string]float64{}
		for c, d := range per {
			out[c] = d.Median()
		}
		return out, nil
	}
	without, err := run(false)
	if err != nil {
		return Result{}, err
	}
	with, err := run(true)
	if err != nil {
		return Result{}, err
	}
	tb := stats.Table{Name: "std - prem median (ms) with and without the Europe-Asia WAN corridor",
		Columns: []string{"no_corridor", "with_corridor"}}
	for _, c := range countries {
		a, okA := without[c]
		b, okB := with[c]
		if !okA || !okB {
			continue
		}
		tb.AddRow(c, a, b)
	}
	res := Result{ID: "xcorridor", Title: "What-if: the WAN leases the Europe-Asia corridor"}
	res.Tables = append(res.Tables, tb)
	res.Notes = append(res.Notes,
		"positive = Premium (WAN) faster; the corridor should flip India and its neighbors toward the WAN while leaving trans-Pacific and trans-Atlantic countries unchanged")
	return res, nil
}
