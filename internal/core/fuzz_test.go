package core

import (
	"math"
	"testing"
)

// FuzzConfigValidate throws arbitrary field values at Config.Validate and
// checks the contract: it never panics, and whenever it accepts a config
// every fuzzed field is within its documented range (probabilities in
// [0, 1], counts non-negative, rates finite). Run with
// `go test -fuzz=FuzzConfigValidate ./internal/core/` (or `make fuzz`).
func FuzzConfigValidate(f *testing.F) {
	f.Add(uint64(42), 10, 3, 0.5, 1.2, 0.1, 15.0, 2.0)
	f.Add(uint64(1), 0, 0, 0.0, 0.0, 0.0, 0.0, 0.0)
	f.Add(uint64(7), -1, 5, 1.5, 0.5, math.NaN(), -3.0, math.Inf(1))
	f.Fuzz(func(t *testing.T, seed uint64, days, topk int,
		pniProb, wanStretch, impairProb, windowMin, serverMs float64) {
		cfg := Config{Seed: seed}
		cfg.Workload.Days = days
		cfg.Workload.TopK = topk
		cfg.Workload.WindowMin = windowMin
		cfg.Provider.PNIProb = pniProb
		cfg.Provider.WANStretch = wanStretch
		cfg.Net.LinkImpairedProb = impairProb
		cfg.CDN.ServerMs = serverMs
		err := cfg.Validate()
		if err != nil {
			return
		}
		// Accepted: every fuzzed field must be in its documented range.
		if days < 0 || topk < 0 {
			t.Fatalf("accepted negative counts: days=%d topk=%d", days, topk)
		}
		for name, p := range map[string]float64{
			"PNIProb": pniProb, "LinkImpairedProb": impairProb,
		} {
			if math.IsNaN(p) || p < 0 || p > 1 {
				t.Fatalf("accepted %s = %v outside [0, 1]", name, p)
			}
		}
		if wanStretch != 0 && (math.IsNaN(wanStretch) || wanStretch < 1) {
			t.Fatalf("accepted WANStretch = %v (< 1 and nonzero)", wanStretch)
		}
		for name, v := range map[string]float64{
			"WindowMin": windowMin, "ServerMs": serverMs,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("accepted %s = %v (not finite non-negative)", name, v)
			}
		}
	})
}
