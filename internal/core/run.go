package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"beatbgp/internal/par"
)

// RunByIDContext runs one experiment by registry ID, honoring context
// cancellation and, when timeout > 0, a per-experiment deadline. The
// experiment body runs in a goroutine; a panic inside it is recovered and
// returned as an error. On cancellation or timeout the goroutine cannot
// be preempted and is abandoned — the scenario must then be DISCARDED,
// because the stray goroutine may still be mutating its caches. (Callers
// that stop on first error, as RunAllContext does, get this for free.)
func RunByIDContext(ctx context.Context, s *Scenario, id string, timeout time.Duration) (Result, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return runWithContext(ctx, s, e, timeout)
		}
	}
	return Result{}, fmt.Errorf("core: unknown experiment %q", id)
}

// RunAllContext runs every registered experiment in order under the
// context, with an optional per-experiment timeout, stopping at the first
// error. The results so far are returned alongside the error.
func RunAllContext(ctx context.Context, s *Scenario, timeout time.Duration) ([]Result, error) {
	var out []Result
	for _, e := range Experiments() {
		r, err := runWithContext(ctx, s, e, timeout)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

// RunManyParallelContext runs the named experiments concurrently on the
// shared scenario and returns their results in the given order. Every
// experiment is a read-only consumer of the built world (lazy caches are
// internally guarded), so concurrent runs produce the same Results as
// sequential ones; the registry-order merge makes the output byte-stable.
//
// Error semantics match the sequential runner's observable behavior:
// results are cut at the first (registry-order) failure, and that
// experiment's error is returned with the successful prefix. Experiments
// after the failing one have still consumed CPU, but their results are
// discarded so callers cannot see a gap. Unlike RunAllContext, siblings
// are not cancelled when one experiment fails — induced cancellations at
// lower indices would otherwise mask the real error nondeterministically.
//
// When the CALLER's context is cancelled mid-run (a drain, a deadline),
// siblings fail with bare cancellation errors, and the lowest-index one
// may belong to an innocent experiment. If some experiment had already
// failed for a real (non-cancellation) reason, the returned cancellation
// error is annotated with that first failure, so the root cause is never
// masked by the induced cancellations around it.
func RunManyParallelContext(ctx context.Context, s *Scenario, ids []string, timeout time.Duration) ([]Result, error) {
	byID := make(map[string]Experiment)
	for _, e := range Experiments() {
		byID[e.ID] = e
	}
	exps := make([]Experiment, len(ids))
	for i, id := range ids {
		e, ok := byID[id]
		if !ok {
			return nil, fmt.Errorf("core: unknown experiment %q", id)
		}
		exps[i] = e
	}
	return runManyParallel(ctx, s, exps, timeout)
}

// runManyParallel is the engine behind RunManyParallelContext, operating
// on resolved Experiment values so tests can exercise the error contract
// with synthetic experiments.
func runManyParallel(ctx context.Context, s *Scenario, exps []Experiment, timeout time.Duration) ([]Result, error) {
	type outcome struct {
		r   Result
		err error
	}
	outs := make([]outcome, len(exps))
	var wg sync.WaitGroup
	sem := make(chan struct{}, s.workers())
	var (
		rootMu  sync.Mutex
		rootID  string // wall-clock-first experiment to fail for a real reason
		rootErr error
	)
	for i, e := range exps {
		wg.Add(1)
		go func(i int, e Experiment) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			r, err := runWithContext(ctx, s, e, timeout)
			if err != nil && !isCancellation(err) {
				rootMu.Lock()
				if rootErr == nil {
					rootID, rootErr = e.ID, err
				}
				rootMu.Unlock()
			}
			outs[i] = outcome{r, err}
		}(i, e)
	}
	wg.Wait()
	var res []Result
	for i, o := range outs {
		if o.err != nil {
			if isCancellation(o.err) && rootErr != nil && rootID != exps[i].ID {
				return res, fmt.Errorf("%w (first failure: experiment %s: %v)", o.err, rootID, rootErr)
			}
			return res, o.err
		}
		res = append(res, o.r)
	}
	return res, nil
}

// isCancellation reports whether err is (or wraps) a context cancellation
// or deadline error rather than a failure of the experiment itself.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// RunAllParallelContext runs the whole registry concurrently (bounded by
// the scenario's worker budget) and returns results in registry order.
// See RunManyParallelContext for the determinism and error contract.
func RunAllParallelContext(ctx context.Context, s *Scenario, timeout time.Duration) ([]Result, error) {
	exps := Experiments()
	ids := make([]string, len(exps))
	for i, e := range exps {
		ids[i] = e.ID
	}
	return RunManyParallelContext(ctx, s, ids, timeout)
}

// RunExperimentContext runs one Experiment value — not necessarily a
// registry entry — on the scenario under the context, with an optional
// per-run deadline. It is the primitive behind RunByIDContext, exposed so
// supervisors (internal/harness) can drive synthetic or wrapped
// experiments through the exact same isolation path: a panic inside Run
// is captured with its goroutine stack and returned as a *par.PanicError
// wrapped in the experiment's ID, and cancellation/timeout errors wrap
// the context's error. The discard-on-timeout rule of RunByIDContext
// applies.
func RunExperimentContext(ctx context.Context, s *Scenario, e Experiment, timeout time.Duration) (Result, error) {
	return runWithContext(ctx, s, e, timeout)
}

func runWithContext(ctx context.Context, s *Scenario, e Experiment, timeout time.Duration) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, fmt.Errorf("core: experiment %s: %w", e.ID, err)
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	type outcome struct {
		r   Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			// Same capture shape as internal/par: the deferred recover runs
			// on the panicking goroutine's stack before unwinding, so the
			// trace includes the panic site. The typed error lets callers
			// classify panics (errors.As) instead of string-matching.
			if p := recover(); p != nil {
				buf := make([]byte, 16<<10)
				buf = buf[:runtime.Stack(buf, false)]
				ch <- outcome{err: fmt.Errorf("core: experiment %s: %w",
					e.ID, &par.PanicError{Value: p, Stack: buf})}
			}
		}()
		r, err := e.Run(ctx, s)
		ch <- outcome{r: r, err: err}
	}()
	select {
	case o := <-ch:
		return o.r, o.err
	case <-ctx.Done():
		// The experiment may have delivered its outcome in the same instant
		// the context died; prefer the real outcome so a simultaneous drain
		// cannot mask an actual failure (or discard a finished result).
		select {
		case o := <-ch:
			return o.r, o.err
		default:
		}
		return Result{}, fmt.Errorf("core: experiment %s: %w", e.ID, ctx.Err())
	}
}
