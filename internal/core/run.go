package core

import (
	"context"
	"fmt"
	"time"
)

// RunByIDContext runs one experiment by registry ID, honoring context
// cancellation and, when timeout > 0, a per-experiment deadline. The
// experiment body runs in a goroutine; a panic inside it is recovered and
// returned as an error. On cancellation or timeout the goroutine cannot
// be preempted and is abandoned — the scenario must then be DISCARDED,
// because the stray goroutine may still be mutating its caches. (Callers
// that stop on first error, as RunAllContext does, get this for free.)
func RunByIDContext(ctx context.Context, s *Scenario, id string, timeout time.Duration) (Result, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return runWithContext(ctx, s, e, timeout)
		}
	}
	return Result{}, fmt.Errorf("core: unknown experiment %q", id)
}

// RunAllContext runs every registered experiment in order under the
// context, with an optional per-experiment timeout, stopping at the first
// error. The results so far are returned alongside the error.
func RunAllContext(ctx context.Context, s *Scenario, timeout time.Duration) ([]Result, error) {
	var out []Result
	for _, e := range Experiments() {
		r, err := runWithContext(ctx, s, e, timeout)
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}

func runWithContext(ctx context.Context, s *Scenario, e Experiment, timeout time.Duration) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, fmt.Errorf("core: experiment %s: %w", e.ID, err)
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	type outcome struct {
		r   Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				ch <- outcome{err: fmt.Errorf("core: experiment %s panicked: %v", e.ID, p)}
			}
		}()
		r, err := e.Run(s)
		ch <- outcome{r: r, err: err}
	}()
	select {
	case o := <-ch:
		return o.r, o.err
	case <-ctx.Done():
		return Result{}, fmt.Errorf("core: experiment %s: %w", e.ID, ctx.Err())
	}
}
