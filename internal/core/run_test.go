package core

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"beatbgp/internal/par"
)

func TestRunByIDContextUnknown(t *testing.T) {
	s := scenario(t, 1)
	_, err := RunByIDContext(context.Background(), s, "nope", 0)
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("want unknown-experiment error, got %v", err)
	}
}

func TestRunByIDContextCancelled(t *testing.T) {
	s := scenario(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunByIDContext(ctx, s, "fig1", 0)
	if err == nil || !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("want context-canceled error, got %v", err)
	}
}

func TestRunByIDContextTimeout(t *testing.T) {
	// A fresh scenario has no cached traces, so fig1 takes well over a
	// nanosecond; the deadline must fire. The scenario is discarded after.
	s := scenario(t, 2)
	_, err := RunByIDContext(context.Background(), s, "fig1", time.Nanosecond)
	if err == nil || !strings.Contains(err.Error(), "deadline exceeded") {
		t.Fatalf("want deadline-exceeded error, got %v", err)
	}
}

func TestRunByIDContextCompletes(t *testing.T) {
	s := scenario(t, 1)
	r, err := RunByIDContext(context.Background(), s, "t32", time.Minute)
	if err != nil {
		t.Fatalf("RunByIDContext: %v", err)
	}
	if r.ID != "t32" {
		t.Fatalf("got result %q, want t32", r.ID)
	}
}

func TestRunExperimentPanicIsTyped(t *testing.T) {
	s := scenario(t, 1)
	boom := Experiment{ID: "boom", Title: "panics", Run: func(context.Context, *Scenario) (Result, error) {
		panic("kaboom")
	}}
	_, err := RunExperimentContext(context.Background(), s, boom, 0)
	var pe *par.PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *par.PanicError, got %v", err)
	}
	if pe.Value != "kaboom" || len(pe.Stack) == 0 {
		t.Fatalf("panic error missing value or stack: %+v", pe)
	}
	if !strings.Contains(err.Error(), "boom") {
		t.Fatalf("error does not name the experiment: %v", err)
	}
}

// TestParallelSiblingErrorNamesCulprit locks the drain contract: when the
// campaign context is cancelled after one experiment has already failed
// for a real reason, the cancellation errors its siblings return must be
// annotated with that first failure instead of masking it.
func TestParallelSiblingErrorNamesCulprit(t *testing.T) {
	// Both experiments must run concurrently ("innocent" blocks until
	// "culprit" cancels), so pin the worker budget above 1.
	cfg := smallConfig(1)
	cfg.Workers = 2
	s, err := NewScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	exps := []Experiment{
		// Index 0 blocks until the context dies, then reports cancellation:
		// the lowest-index error that used to mask the root cause.
		{ID: "innocent", Title: "waits", Run: func(ctx context.Context, _ *Scenario) (Result, error) {
			<-ctx.Done()
			return Result{}, ctx.Err()
		}},
		// Index 1 fails for a real reason and triggers the drain. The
		// cancel is delayed so the real error is delivered (and recorded
		// as the root cause) before the cancellation reaches anyone.
		{ID: "culprit", Title: "fails", Run: func(context.Context, *Scenario) (Result, error) {
			time.AfterFunc(100*time.Millisecond, cancel)
			return Result{}, errors.New("disk melted")
		}},
	}
	_, err = runManyParallel(ctx, s, exps, 0)
	if err == nil {
		t.Fatal("want error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("lowest-index error should still be a cancellation: %v", err)
	}
	if !strings.Contains(err.Error(), "culprit") || !strings.Contains(err.Error(), "disk melted") {
		t.Fatalf("cancellation error does not name the first failure: %v", err)
	}
}

func TestConfigValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"negative eyeballs", func(c *Config) { c.Topology.EyeballsPerRegion = -1 }},
		{"prob above one", func(c *Config) { c.Provider.PNIProb = 1.5 }},
		{"NaN impair prob", func(c *Config) { c.Net.LinkImpairedProb = math.NaN() }},
		{"negative days", func(c *Config) { c.Workload.Days = -3 }},
		{"wan stretch below one", func(c *Config) { c.Provider.WANStretch = 0.5 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := smallConfig(9)
			tc.mut(&cfg)
			if _, err := NewScenario(cfg); err == nil {
				t.Fatalf("NewScenario accepted invalid config (%s)", tc.name)
			}
		})
	}
}
