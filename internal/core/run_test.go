package core

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"
)

func TestRunByIDContextUnknown(t *testing.T) {
	s := scenario(t, 1)
	_, err := RunByIDContext(context.Background(), s, "nope", 0)
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("want unknown-experiment error, got %v", err)
	}
}

func TestRunByIDContextCancelled(t *testing.T) {
	s := scenario(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunByIDContext(ctx, s, "fig1", 0)
	if err == nil || !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("want context-canceled error, got %v", err)
	}
}

func TestRunByIDContextTimeout(t *testing.T) {
	// A fresh scenario has no cached traces, so fig1 takes well over a
	// nanosecond; the deadline must fire. The scenario is discarded after.
	s := scenario(t, 2)
	_, err := RunByIDContext(context.Background(), s, "fig1", time.Nanosecond)
	if err == nil || !strings.Contains(err.Error(), "deadline exceeded") {
		t.Fatalf("want deadline-exceeded error, got %v", err)
	}
}

func TestRunByIDContextCompletes(t *testing.T) {
	s := scenario(t, 1)
	r, err := RunByIDContext(context.Background(), s, "t32", time.Minute)
	if err != nil {
		t.Fatalf("RunByIDContext: %v", err)
	}
	if r.ID != "t32" {
		t.Fatalf("got result %q, want t32", r.ID)
	}
}

func TestConfigValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
	}{
		{"negative eyeballs", func(c *Config) { c.Topology.EyeballsPerRegion = -1 }},
		{"prob above one", func(c *Config) { c.Provider.PNIProb = 1.5 }},
		{"NaN impair prob", func(c *Config) { c.Net.LinkImpairedProb = math.NaN() }},
		{"negative days", func(c *Config) { c.Workload.Days = -3 }},
		{"wan stretch below one", func(c *Config) { c.Provider.WANStretch = 0.5 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := smallConfig(9)
			tc.mut(&cfg)
			if _, err := NewScenario(cfg); err == nil {
				t.Fatalf("NewScenario accepted invalid config (%s)", tc.name)
			}
		})
	}
}
