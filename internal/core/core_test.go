package core

import (
	"context"
	"strings"
	"testing"
)

// smallConfig keeps integration tests fast: a reduced world and a 2-day
// trace still exercise every code path.
func smallConfig(seed uint64) Config {
	cfg := Config{Seed: seed}
	cfg.Topology.EyeballsPerRegion = 8
	cfg.Workload.Days = 2
	return cfg
}

func scenario(t testing.TB, seed uint64) *Scenario {
	t.Helper()
	s, err := NewScenario(smallConfig(seed))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func cell(t *testing.T, r Result, table, row, col string) float64 {
	t.Helper()
	for _, tb := range r.Tables {
		if tb.Name == table {
			if v, ok := tb.Cell(row, col); ok {
				return v
			}
		}
	}
	t.Fatalf("missing cell %s/%s/%s in %s", table, row, col, r.ID)
	return 0
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig1", "fig2", "t31", "t311", "fig3", "t32", "fig4",
		"fig5", "t33", "t4g", "xpeer", "xgroom", "xwan", "xsplit", "xdiv", "xcap",
		"xdyn", "xfaults", "xavail", "xdetect", "xflap", "xhybrid", "xodin", "xsites", "xinfer", "xcorridor",
		"xqoe", "afate", "aecs", "apni"}
	got := Experiments()
	if len(got) != len(want) {
		t.Fatalf("%d experiments, want %d", len(got), len(want))
	}
	for i, e := range got {
		if e.ID != want[i] {
			t.Fatalf("experiment %d = %s, want %s", i, e.ID, want[i])
		}
		if e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
	if _, err := RunByID(scenario(t, 99), "nope"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestFigure1Shape(t *testing.T) {
	s := scenario(t, 1)
	r, err := Figure1(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 3 {
		t.Fatalf("fig1 should have point + CI band series, got %d", len(r.Series))
	}
	// Paper shape: BGP roughly as good as the best alternate for the vast
	// majority; a small improvable tail.
	ge5 := cell(t, r, "fig1 summary", "frac_traffic_diff_ge_5ms", "value")
	if ge5 < 0 || ge5 > 0.12 {
		t.Fatalf("improvable-by-5ms traffic = %v, want small (paper: 2-4%%)", ge5)
	}
	within1 := cell(t, r, "fig1 summary", "frac_traffic_abs_diff_le_1ms", "value")
	if within1 < 0.5 {
		t.Fatalf("only %v of traffic within 1ms; BGP should roughly match alternates", within1)
	}
	// CI band must bracket the point estimate CDF at 0.
	var point, lo, hi float64
	for _, sr := range r.Series {
		switch sr.Name {
		case "median-diff":
			point = sr.YAt(0)
		case "ci-lower":
			lo = sr.YAt(0)
		case "ci-upper":
			hi = sr.YAt(0)
		}
	}
	// Lower CI values shift the CDF right: cdf_lo >= cdf_point >= cdf_hi.
	if !(lo >= point-1e-9 && point >= hi-1e-9) {
		t.Fatalf("CI band does not bracket point: lo=%v point=%v hi=%v", lo, point, hi)
	}
}

func TestFigure2Shape(t *testing.T) {
	s := scenario(t, 2)
	r, err := Figure2(s)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: transits perform like peers, public like private — medians
	// near zero.
	pt := cell(t, r, "fig2 summary", "peer_minus_transit", "median_ms")
	pp := cell(t, r, "fig2 summary", "private_minus_public", "median_ms")
	if pt < -8 || pt > 8 {
		t.Fatalf("peer-transit median %v ms; should be small", pt)
	}
	if pp < -8 || pp > 8 {
		t.Fatalf("private-public median %v ms; should be small", pp)
	}
}

func TestTableS31Shape(t *testing.T) {
	s := scenario(t, 3)
	r, err := TableS31(s)
	if err != nil {
		t.Fatal(err)
	}
	w500 := cell(t, r, "s3.1 in-text", "frac_traffic_within_500km", "value")
	w2500 := cell(t, r, "s3.1 in-text", "frac_traffic_within_2500km", "value")
	if w500 < 0.4 {
		t.Fatalf("only %v of traffic within 500km of its PoP (paper: ~half)", w500)
	}
	if w2500 < w500 || w2500 < 0.8 {
		t.Fatalf("within-2500km %v inconsistent (paper: ~90%%)", w2500)
	}
	omni := cell(t, r, "s3.1 in-text", "mean_gain_omniscient_ms", "value")
	reactive := cell(t, r, "s3.1 in-text", "mean_gain_reactive_ms", "value")
	if omni < 0 {
		t.Fatalf("omniscient gain %v must be non-negative by construction", omni)
	}
	if reactive > omni+1e-9 {
		t.Fatalf("reactive controller %v cannot beat the omniscient one %v", reactive, omni)
	}
}

func TestTableS311Shape(t *testing.T) {
	s := scenario(t, 4)
	r, err := TableS311(s)
	if err != nil {
		t.Fatal(err)
	}
	degraded := cell(t, r, "s3.1.1 degrade-together analysis", "mean_frac_windows_preferred_degraded", "value")
	improvable := cell(t, r, "s3.1.1 degrade-together analysis", "mean_frac_windows_alternate_better", "value")
	if degraded <= improvable {
		t.Fatalf("degradations (%v) must be more prevalent than improvements (%v) — the paper's central finding", degraded, improvable)
	}
	persistent := cell(t, r, "s3.1.1 degrade-together analysis", "frac_median_winners_persistent_ge80pct", "value")
	if persistent < 0.5 {
		t.Fatalf("only %v of median winners persistent; paper says most winners win all the time", persistent)
	}
}

func TestFigure3Shape(t *testing.T) {
	s := scenario(t, 5)
	r, err := Figure3(s)
	if err != nil {
		t.Fatal(err)
	}
	within10 := cell(t, r, "fig3 summary", "world_frac_within_10ms", "value")
	tail := cell(t, r, "fig3 summary", "world_frac_worse_by_100ms", "value")
	if within10 < 0.5 {
		t.Fatalf("anycast within 10ms for only %v globally (paper ~70%%)", within10)
	}
	if tail < 0.01 || tail > 0.25 {
		t.Fatalf("100ms tail = %v (paper ~10%%)", tail)
	}
	// The original study found anycast closest to optimal in Europe; at
	// laptop scale the US-vs-world ordering wobbles, so assert the robust
	// parts: Europe at least on par with the world, US not broken.
	europe := cell(t, r, "fig3 summary", "europe_frac_within_10ms", "value")
	if europe < within10-0.05 {
		t.Fatalf("Europe (%v) should be at least on par with the world (%v)", europe, within10)
	}
	us := cell(t, r, "fig3 summary", "us_frac_within_10ms", "value")
	if us < 0.4 {
		t.Fatalf("US within-10ms %v implausibly low", us)
	}
}

func TestTableS32Shape(t *testing.T) {
	s := scenario(t, 6)
	r, err := TableS32(s)
	if err != nil {
		t.Fatal(err)
	}
	d1 := cell(t, r, "front-end distances (km)", "nearest", "median_km")
	d2 := cell(t, r, "front-end distances (km)", "second_nearest", "median_km")
	d4 := cell(t, r, "front-end distances (km)", "fourth_nearest", "median_km")
	if !(d1 <= d2 && d2 <= d4) {
		t.Fatalf("distances must increase with rank: %v %v %v", d1, d2, d4)
	}
	if d4 > 8000 {
		t.Fatalf("4th nearest at %v km; front-end density too low", d4)
	}
}

func TestFigure4Shape(t *testing.T) {
	s := scenario(t, 7)
	r, err := Figure4(s)
	if err != nil {
		t.Fatal(err)
	}
	improved := cell(t, r, "fig4 summary", "frac_improved_gt_1ms", "value")
	worse := cell(t, r, "fig4 summary", "frac_worse_gt_1ms", "value")
	if improved < 0.05 || improved > 0.6 {
		t.Fatalf("redirection improved %v of clients (paper: 27%%)", improved)
	}
	if worse <= 0 {
		t.Fatal("redirection never does worse than anycast; the paper found it does for 17%")
	}
	if improved <= worse {
		t.Fatalf("improved (%v) should exceed worse (%v)", improved, worse)
	}
}

func TestFigure5Shape(t *testing.T) {
	s := scenario(t, 8)
	r, err := Figure5(s)
	if err != nil {
		t.Fatal(err)
	}
	// US near zero; India standard-better — the two anchor findings.
	us, ok := r.Tables[0].Cell("US", "median_diff_ms")
	if !ok {
		t.Fatal("no US row")
	}
	if us < -10 || us > 10 {
		t.Fatalf("US median diff %v ms, want within +/-10", us)
	}
	in, ok := r.Tables[0].Cell("IN", "median_diff_ms")
	if !ok {
		t.Skip("no Indian vantage point passed the filter for this seed")
	}
	if in >= 0 {
		t.Fatalf("India diff %v: the public Internet (Standard) must win for India", in)
	}
}

func TestTableS33Shape(t *testing.T) {
	s := scenario(t, 9)
	r, err := TableS33(s)
	if err != nil {
		t.Fatal(err)
	}
	prem := cell(t, r, "s3.3 ingress analysis", "premium_frac_ingress_within_400km", "value")
	std := cell(t, r, "s3.3 ingress analysis", "standard_frac_ingress_within_400km", "value")
	if prem <= std {
		t.Fatalf("premium near-ingress %v must exceed standard %v (paper: 80%% vs 10%%)", prem, std)
	}
}

func TestTableGoodputShape(t *testing.T) {
	s := scenario(t, 10)
	r, err := TableGoodput(s)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := r.Tables[0].Cell("premium", "median")
	q, _ := r.Tables[0].Cell("standard", "median")
	if p <= 0 || q <= 0 {
		t.Fatalf("non-positive goodput %v %v", p, q)
	}
	ratio := p / q
	if ratio < 0.5 || ratio > 2.5 {
		t.Fatalf("goodput ratio %v; paper saw little difference", ratio)
	}
}

func TestSingleWANShape(t *testing.T) {
	s := scenario(t, 11)
	r, err := SingleWANStudy(s)
	if err != nil {
		t.Fatal(err)
	}
	// The highest-carriage bucket should be closer to premium than the
	// mid bucket (monotone trend supported by the hypothesis).
	tb := r.Tables[0]
	loBucket, _ := tb.Cell("carry_frac_0.50-0.75", "median_std_minus_prem_ms")
	hiBucket, _ := tb.Cell("carry_frac_0.90-1.01", "median_std_minus_prem_ms")
	if hiBucket > loBucket+5 {
		t.Fatalf("single-WAN routes (%v ms) should not be farther from premium than fragmented ones (%v ms)", hiBucket, loBucket)
	}
}

func TestSplitTCPShape(t *testing.T) {
	s := scenario(t, 12)
	r, err := SplitTCPStudy(s)
	if err != nil {
		t.Fatal(err)
	}
	tb := r.Tables[0]
	for _, row := range tb.Rows {
		direct, _ := tb.Cell(row.Label, "direct")
		splitW, _ := tb.Cell(row.Label, "split_wan_backend")
		n, _ := tb.Cell(row.Label, "n")
		if n == 0 {
			continue
		}
		if splitW >= direct {
			t.Fatalf("bucket %s: split-WAN (%v) should beat direct (%v)", row.Label, splitW, direct)
		}
	}
}

func TestAvailabilityShape(t *testing.T) {
	s := scenario(t, 13)
	r, err := RouteDiversityStudy(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	tb := r.Tables[0]
	for _, row := range tb.Rows {
		pref, _ := tb.Cell(row.Label, "preferred_route_only")
		any, _ := tb.Cell(row.Label, "with_failover")
		if any < pref-1e-9 {
			t.Fatalf("%s: failover availability %v below preferred-only %v", row.Label, any, pref)
		}
		if pref < 0.9 || any > 1+1e-9 {
			t.Fatalf("%s: implausible availabilities %v %v", row.Label, pref, any)
		}
	}
	base, _ := tb.Cell("baseline_failures", "preferred_route_only")
	fragile, _ := tb.Cell("fragile_small_peers_5x", "preferred_route_only")
	if fragile > base+1e-9 {
		t.Fatalf("fragile peers cannot improve preferred-route uptime (%v vs %v)", fragile, base)
	}
}

func TestCapacityStudyShape(t *testing.T) {
	s := scenario(t, 17)
	r, err := CapacityStudy(s)
	if err != nil {
		t.Fatal(err)
	}
	detoured := cell(t, r, "edge-fabric capacity overrides", "frac_volume_detoured", "value")
	if detoured < 0 || detoured > 0.3 {
		t.Fatalf("detoured volume %v; the controller should move a small slice, not the bulk", detoured)
	}
	cost := cell(t, r, "edge-fabric capacity overrides", "detour_latency_cost_median_ms", "value")
	if cost < -5 || cost > 30 {
		t.Fatalf("detour latency cost %v ms implausible", cost)
	}
}

func TestSiteOutageShape(t *testing.T) {
	s := scenario(t, 18)
	r, err := SiteOutageStudy(s)
	if err != nil {
		t.Fatal(err)
	}
	tb := r.Tables[0]
	anyDown, _ := tb.Cell("anycast_bgp_failover", "mean_downtime_min")
	dnsDown, _ := tb.Cell("dns_redirection_ttl", "mean_downtime_min")
	if anyDown <= 0 {
		t.Fatal("anycast failover cannot be instantaneous")
	}
	if anyDown >= dnsDown {
		t.Fatalf("anycast downtime %v must beat DNS-cached downtime %v — the §4 claim", anyDown, dnsDown)
	}
	infl, _ := r.Tables[1].Cell("median_inflation_ms", "value")
	if infl < 0 {
		t.Fatalf("failover to a farther site cannot reduce median latency: %v", infl)
	}
}

func TestHybridShape(t *testing.T) {
	s := scenario(t, 19)
	r, err := HybridStudy(s)
	if err != nil {
		t.Fatal(err)
	}
	tb := r.Tables[0]
	plainWorse, _ := tb.Cell("redirect_margin_0ms", "frac_worse_gt_1ms")
	hybridWorse, _ := tb.Cell("hybrid_margin_25ms", "frac_worse_gt_1ms")
	if hybridWorse > plainWorse+1e-9 {
		t.Fatalf("a 25ms margin cannot increase regressions: %v vs %v", hybridWorse, plainWorse)
	}
	plainImp, _ := tb.Cell("redirect_margin_0ms", "frac_improved_gt_1ms")
	hybridImp, _ := tb.Cell("hybrid_margin_25ms", "frac_improved_gt_1ms")
	if hybridImp > plainImp+1e-9 {
		t.Fatalf("a margin cannot increase override coverage: %v vs %v", hybridImp, plainImp)
	}
}

func TestOdinStudyShape(t *testing.T) {
	s := scenario(t, 20)
	r, err := OdinStudy(s)
	if err != nil {
		t.Fatal(err)
	}
	tb := r.Tables[0]
	loSamples, _ := tb.Cell("sample_rate_0.002", "samples")
	hiSamples, _ := tb.Cell("sample_rate_0.050", "samples")
	if hiSamples <= loSamples {
		t.Fatalf("sampling budget not increasing: %v vs %v", hiSamples, loSamples)
	}
	for _, row := range tb.Rows {
		imp, _ := tb.Cell(row.Label, "frac_improved_gt_1ms")
		worse, _ := tb.Cell(row.Label, "frac_worse_gt_1ms")
		if imp < 0 || imp > 1 || worse < 0 || worse > 1 {
			t.Fatalf("%s: fractions out of range", row.Label)
		}
	}
}

func TestSiteDensityShape(t *testing.T) {
	s := scenario(t, 21)
	r, err := SiteDensityStudy(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	tb := r.Tables[0]
	loSites, _ := tb.Cell("scale_0.5x", "sites")
	hiSites, _ := tb.Cell("scale_2.4x", "sites")
	if hiSites <= loSites {
		t.Fatal("site count not increasing with scale")
	}
	loRTT, _ := tb.Cell("scale_0.5x", "median_anycast_ms")
	hiRTT, _ := tb.Cell("scale_2.4x", "median_anycast_ms")
	if hiRTT > loRTT+5 {
		t.Fatalf("more sites should not raise median anycast latency: %v -> %v", loRTT, hiRTT)
	}
}

func TestCorridorShape(t *testing.T) {
	s := scenario(t, 23)
	r, err := CorridorStudy(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	tb := r.Tables[0]
	inBefore, ok := tb.Cell("IN", "no_corridor")
	if !ok {
		t.Skip("no Indian vantage point in this world")
	}
	inAfter, _ := tb.Cell("IN", "with_corridor")
	// The corridor must move India toward the WAN (less negative /
	// more positive std-prem difference).
	if inAfter < inBefore-1e-9 {
		t.Fatalf("corridor made India worse for the WAN: %v -> %v", inBefore, inAfter)
	}
	// Trans-Atlantic countries are unaffected.
	if usBefore, ok := tb.Cell("US", "no_corridor"); ok {
		usAfter, _ := tb.Cell("US", "with_corridor")
		if usBefore != usAfter {
			t.Fatalf("corridor changed the US: %v -> %v", usBefore, usAfter)
		}
	}
}

func TestAblationECSShape(t *testing.T) {
	s := scenario(t, 15)
	r, err := AblationECS(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	tb := r.Tables[0]
	ldnsImp, _ := tb.Cell("ldns_granularity_measured", "frac_improved_gt_1ms")
	oracleImp, _ := tb.Cell("oracle_ecs_noiseless", "frac_improved_gt_1ms")
	oracleWorse, _ := tb.Cell("oracle_ecs_noiseless", "frac_worse_gt_1ms")
	// Noiseless training finds at least as many wins as a sampled
	// campaign, and mispredictions stay rare. (The measured baseline can
	// be ultra-conservative at small scale, so "oracle hurts fewer" is
	// not a stable invariant; "oracle hurts almost nobody" is.)
	if oracleImp+0.02 < ldnsImp {
		t.Fatalf("oracle improved %v < measured %v", oracleImp, ldnsImp)
	}
	if oracleWorse > 0.08 {
		t.Fatalf("oracle granularity still hurt %v of clients", oracleWorse)
	}
}

func TestAblationPNIShape(t *testing.T) {
	s := scenario(t, 16)
	r, err := AblationPNI(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}
	tb := r.Tables[0]
	managed, _ := tb.Cell("pnis_managed", "frac_improvable_ge5ms")
	equal, _ := tb.Cell("pnis_like_public", "frac_improvable_ge5ms")
	if equal < managed-1e-9 {
		t.Fatalf("unmanaged PNIs should create at least as much improvable traffic: %v vs %v", equal, managed)
	}
}

func TestRunSeeds(t *testing.T) {
	r, err := RunSeeds(smallConfig(0), "t32", []uint64{51, 52})
	if err != nil {
		t.Fatal(err)
	}
	if r.ID != "t32@seeds" {
		t.Fatalf("aggregated ID = %s", r.ID)
	}
	tb := r.Tables[0]
	mean, ok1 := tb.Cell("nearest", "median_km_mean")
	lo, ok2 := tb.Cell("nearest", "median_km_min")
	hi, ok3 := tb.Cell("nearest", "median_km_max")
	if !ok1 || !ok2 || !ok3 {
		t.Fatal("aggregate cells missing")
	}
	if !(lo <= mean && mean <= hi) {
		t.Fatalf("aggregate ordering broken: %v %v %v", lo, mean, hi)
	}
	if _, err := RunSeeds(smallConfig(0), "t32", nil); err == nil {
		t.Fatal("empty seed list accepted")
	}
	if _, err := RunSeeds(smallConfig(0), "nope", []uint64{1}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestCatchmentInferenceShape(t *testing.T) {
	s := scenario(t, 22)
	r, err := CatchmentInference(s)
	if err != nil {
		t.Fatal(err)
	}
	tb := r.Tables[0]
	naive, _ := tb.Cell("nearest_site", "frac_exact")
	sim, _ := tb.Cell("per_site_simulation", "frac_exact")
	if sim < naive-0.05 {
		t.Fatalf("routing-aware predictor (%v) should not lose to geography (%v)", sim, naive)
	}
	for _, row := range tb.Rows {
		exact, _ := tb.Cell(row.Label, "frac_exact")
		if exact < 0.2 || exact > 1 {
			t.Fatalf("%s: exact fraction %v implausible", row.Label, exact)
		}
	}
}

func TestResultRender(t *testing.T) {
	s := scenario(t, 14)
	r, err := Figure2(s)
	if err != nil {
		t.Fatal(err)
	}
	out := r.Render()
	for _, want := range []string{"fig2", "peering-vs-transit", "note:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}

func TestScenarioDeterminism(t *testing.T) {
	r1, err := Figure2(scenario(t, 21))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Figure2(scenario(t, 21))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Render() != r2.Render() {
		t.Fatal("identical seeds produced different results")
	}
}

func TestSharedFateAblationWidensTail(t *testing.T) {
	// DESIGN.md's headline ablation: without shared-fate congestion,
	// route-specific congestion dominates and dynamic TE finds more wins.
	on := scenario(t, 31)
	offCfg := smallConfig(31)
	offCfg.Net.DisableSharedFate = true
	off, err := NewScenario(offCfg)
	if err != nil {
		t.Fatal(err)
	}
	rOn, err := TableS311(on)
	if err != nil {
		t.Fatal(err)
	}
	rOff, err := TableS311(off)
	if err != nil {
		t.Fatal(err)
	}
	degOn := cell(t, rOn, "s3.1.1 degrade-together analysis", "mean_frac_windows_preferred_degraded", "value")
	degOff := cell(t, rOff, "s3.1.1 degrade-together analysis", "mean_frac_windows_preferred_degraded", "value")
	if degOff >= degOn {
		t.Fatalf("disabling shared fate should reduce preferred-path degradation windows: %v vs %v", degOff, degOn)
	}
}
