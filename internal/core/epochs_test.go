package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"testing"

	"beatbgp/internal/bgp"
	"beatbgp/internal/delta"
)

// ribDigest hashes every AS's best route so two RIBs can be compared for
// bit-identity by string equality.
func ribDigest(s *Scenario, rib *bgp.RIB) string {
	h := sha256.New()
	var buf [8]byte
	word := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	for as := 0; as < s.Topo.NumASes(); as++ {
		b := rib.Best(as)
		if !b.Valid {
			word(-1)
			continue
		}
		word(int(b.Src))
		word(b.Link)
		word(b.NextHop)
		word(len(b.Path))
		for _, p := range b.Path {
			word(p)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// seqDigest fingerprints an epoch sequence: every boundary instant and
// cumulative down set.
func seqDigest(seq *delta.Sequence) string {
	h := sha256.New()
	for i := 0; i < seq.Len(); i++ {
		e := seq.Epoch(i)
		fmt.Fprintf(h, "@%v:%v;", e.Start, e.Down)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// walkDigests carries a repair chain across every epoch of the sequence
// in order and digests each repaired RIB.
func walkDigests(t *testing.T, s *Scenario, seq *delta.Sequence) []string {
	t.Helper()
	walker, err := newRepairWalker(s.Routes, s.CDN.Announcements(nil))
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, seq.Len())
	for e := 0; e < seq.Len(); e++ {
		rib, err := walker.At(seq.Epoch(e).DownSet())
		if err != nil {
			t.Fatal(err)
		}
		out[e] = ribDigest(s, rib)
	}
	return out
}

// flapEpochs compiles the xflap storm through the session layer into an
// epoch sequence, exactly as FlapStormStudy's replay would see it.
func flapEpochs(t *testing.T, s *Scenario) *delta.Sequence {
	t.Helper()
	traces, err := s.efTraces()
	if err != nil {
		t.Fatal(err)
	}
	traceVol := make([]float64, len(traces))
	for i, tr := range traces {
		for _, w := range tr.Windows {
			traceVol[i] += w.VolumeBytes
		}
	}
	tl, _, err := flapStormTimeline(s, traces, traceVol)
	if err != nil {
		t.Fatal(err)
	}
	hist, err := sessionHistory(s, tl, s.Cfg.Session)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := hist.Deltas(0, faultHorizonMin)
	if err != nil {
		t.Fatal(err)
	}
	return seq
}

// TestEpochRepairBitIdenticalAcrossWorkers is the tentpole's acceptance
// gate at the core layer: over the xfaults and xflap timelines compiled
// through the session layer, the repaired RIB at every epoch must be
// bit-identical to a from-scratch rebuild at that epoch's down set, and
// the whole pipeline — timeline, replay, sequence, repaired routes —
// must be bit-identical at any worker count. Seeds 42 and 7; workers 1,
// 2, and 8. Rebuild comparison runs once per seed (workers cannot touch
// the serial repair walk); the other worker counts must reproduce the
// workers=1 digests exactly, which transitively pins them to the
// rebuild too.
func TestEpochRepairBitIdenticalAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-scenario epoch sweep")
	}
	for _, seed := range []uint64{42, 7} {
		base := scenario(t, seed)
		type pipeline struct {
			faultsSeq, flapSeq    string
			faultsRIBs, flapsRIBs []string
		}
		var want pipeline
		for i, workers := range []int{1, 2, 8} {
			s, err := base.Derive(func(c *Config) { c.Workers = workers })
			if err != nil {
				t.Fatal(err)
			}
			fe, err := s.faultEpochs()
			if err != nil {
				t.Fatal(err)
			}
			got := pipeline{
				faultsSeq:  seqDigest(fe.seq),
				flapSeq:    seqDigest(flapEpochs(t, s)),
				faultsRIBs: walkDigests(t, s, fe.seq),
				flapsRIBs:  walkDigests(t, s, flapEpochs(t, s)),
			}
			if i == 0 {
				want = got
				// Workers=1: pin every epoch's repaired RIB to a full
				// rebuild at the epoch's down set.
				for name, seq := range map[string]*delta.Sequence{
					"xfaults": fe.seq, "xflap": flapEpochs(t, s),
				} {
					digests := got.faultsRIBs
					if name == "xflap" {
						digests = got.flapsRIBs
					}
					anns := s.CDN.Announcements(nil)
					for e := 0; e < seq.Len(); e++ {
						rebuilt, err := s.Routes.ComputeWithout(anns, seq.Epoch(e).DownSet())
						if err != nil {
							t.Fatal(err)
						}
						if d := ribDigest(s, rebuilt); d != digests[e] {
							t.Fatalf("seed %d %s epoch %d: repaired RIB != rebuilt RIB", seed, name, e)
						}
					}
				}
				continue
			}
			if got.faultsSeq != want.faultsSeq || got.flapSeq != want.flapSeq {
				t.Fatalf("seed %d workers %d: epoch sequence differs from workers=1", seed, workers)
			}
			for e := range want.faultsRIBs {
				if got.faultsRIBs[e] != want.faultsRIBs[e] {
					t.Fatalf("seed %d workers %d: xfaults epoch %d RIB differs from workers=1", seed, workers, e)
				}
			}
			for e := range want.flapsRIBs {
				if got.flapsRIBs[e] != want.flapsRIBs[e] {
					t.Fatalf("seed %d workers %d: xflap epoch %d RIB differs from workers=1", seed, workers, e)
				}
			}
		}
	}
}

// TestRepairWalkerMatchesRebuild drives the walker over arbitrary,
// unordered down sets — overlapping, disjoint, empty, revisited — and
// checks each RIB against ComputeWithout.
func TestRepairWalkerMatchesRebuild(t *testing.T) {
	s := scenario(t, 11)
	anns := s.CDN.Announcements(nil)
	walker, err := newRepairWalker(s.Routes, anns)
	if err != nil {
		t.Fatal(err)
	}
	var links []int
	for _, site := range s.CDN.Sites {
		for _, nb := range s.Topo.Neighbors(site.AS.ID) {
			links = append(links, nb.Link)
		}
	}
	if len(links) < 3 {
		t.Fatalf("only %d site links", len(links))
	}
	sets := []map[int]bool{
		{links[0]: true},
		{links[0]: true, links[1]: true},
		{links[2]: true},
		nil,
		{links[1]: true, links[2]: true},
		{links[0]: true}, // revisit
	}
	for i, down := range sets {
		got, err := walker.At(down)
		if err != nil {
			t.Fatal(err)
		}
		want, err := s.Routes.ComputeWithout(anns, down)
		if err != nil {
			t.Fatal(err)
		}
		if ribDigest(s, got) != ribDigest(s, want) {
			t.Fatalf("set %d: walker RIB != rebuilt RIB", i)
		}
	}
}

// TestFaultEpochsMemoized: the pipeline builds once and is shared.
func TestFaultEpochsMemoized(t *testing.T) {
	s := scenario(t, 12)
	a, err := s.faultEpochs()
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.faultEpochs()
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("faultEpochs rebuilt on second call")
	}
	if a.seq.Len() < 2 {
		t.Fatalf("fault sequence has %d epochs, want several", a.seq.Len())
	}
}
