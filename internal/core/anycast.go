package core

import (
	"context"
	"math"

	"beatbgp/internal/cdn"
	"beatbgp/internal/geo"
	"beatbgp/internal/netsim"
	"beatbgp/internal/odin"
	"beatbgp/internal/par"
	"beatbgp/internal/stats"
	"beatbgp/internal/topology"
)

// anycastSampleTimes spreads request samples across the horizon's first
// days at varying times of day, like the paper's Bing-injected
// measurements.
func anycastSampleTimes() []float64 {
	var out []float64
	for day := 0; day < 4; day++ {
		for _, h := range []float64{2, 9, 14, 20} {
			out = append(out, float64(day)*24*60+h*60)
		}
	}
	return out
}

// nearbyUnicastCount is how many nearby unicast front-ends each client
// measures, mirroring the instrumented search results.
const nearbyUnicastCount = 6

// Figure3 reproduces the paper's Figure 3: the CCDF, per request, of
// anycast latency minus the best measured unicast front-end latency, for
// the world, Europe, and the United States.
//
// The per-prefix catchment-and-RTT sweep runs on internal/par workers:
// the CDN's RIB caches are primed first so workers only read, each worker
// samples its own Sim clone, and the per-prefix diff lists (in sample-time
// order) are folded into the distributions in prefix order — the same Add
// sequence as the serial loop, so the figure is bit-identical at any
// worker count.
func Figure3(s *Scenario) (Result, error) {
	times := anycastSampleTimes()
	workers := s.workers()
	if _, err := s.CDN.PrimeRIBs(context.Background(), workers); err != nil {
		return Result{}, err
	}
	type partial struct {
		diffs  []float64
		isEU   bool
		isUS   bool
		weight float64
	}
	parts, err := par.MapState(workers, s.Topo.Prefixes,
		func(int) *netsim.Sim { return s.Sim.Clone() },
		func(sim *netsim.Sim, _ int, p topology.Prefix) (partial, error) {
			city := s.Topo.Catalog.City(p.City)
			pt := partial{isEU: city.Region == geo.Europe, isUS: city.Country == "US", weight: p.Weight}
			nearest := s.CDN.NearestSites(p, nearbyUnicastCount)
			for _, t := range times {
				any, _, err := s.CDN.AnycastRTT(sim, p, nil, t)
				if err != nil {
					continue
				}
				best := math.Inf(1)
				for _, site := range nearest {
					if rtt, err := s.CDN.UnicastRTT(sim, p, site, t); err == nil && rtt < best {
						best = rtt
					}
				}
				if math.IsInf(best, 1) {
					continue
				}
				pt.diffs = append(pt.diffs, any-best)
			}
			return pt, nil
		})
	if err != nil {
		return Result{}, err
	}
	var world, europe, us stats.Dist
	for _, pt := range parts {
		for _, diff := range pt.diffs {
			world.Add(diff, pt.weight)
			if pt.isEU {
				europe.Add(diff, pt.weight)
			}
			if pt.isUS {
				us.Add(diff, pt.weight)
			}
		}
	}
	res := Result{ID: "fig3", Title: "Anycast minus best unicast, per request (CCDF)"}
	res.Series = append(res.Series,
		world.CCDFSeries("World", 0, 100, 101),
		europe.CCDFSeries("Europe", 0, 100, 101),
		us.CCDFSeries("UnitedStates", 0, 100, 101),
	)
	tb := stats.Table{Name: "fig3 summary", Columns: []string{"value"}}
	tb.AddRow("world_frac_within_10ms", world.CDF(10))
	tb.AddRow("world_frac_worse_by_100ms", world.FracAtLeast(100))
	tb.AddRow("us_frac_within_10ms", us.CDF(10))
	tb.AddRow("europe_frac_within_10ms", europe.CDF(10))
	tb.AddRow("requests", float64(world.N()))
	res.Tables = append(res.Tables, tb)
	res.Notes = append(res.Notes,
		"paper: anycast within 10ms of best unicast for ~70% of requests globally; >=100ms slower for ~10%")
	return res, nil
}

// TableS32 reports the §2.3.2 front-end density statistics: the
// population-weighted median distance from clients to their 1st, 2nd and
// 4th nearest front-ends.
func TableS32(s *Scenario) (Result, error) {
	var d1, d2, d4 stats.Dist
	for _, p := range s.Topo.Prefixes {
		d1.Add(s.CDN.SiteDistanceKm(p, 0), p.Weight)
		d2.Add(s.CDN.SiteDistanceKm(p, 1), p.Weight)
		d4.Add(s.CDN.SiteDistanceKm(p, 3), p.Weight)
	}
	tb := stats.Table{Name: "front-end distances (km)", Columns: []string{"median_km"}}
	tb.AddRow("nearest", d1.Median())
	tb.AddRow("second_nearest", d2.Median())
	tb.AddRow("fourth_nearest", d4.Median())
	res := Result{ID: "t32", Title: "Distance to nth nearest front-end"}
	res.Tables = append(res.Tables, tb)
	res.Notes = append(res.Notes,
		"paper (2015 Microsoft CDN): median 280 km to the nearest, 700 km to the 2nd, 1300 km to the 4th")
	return res, nil
}

// redirectionOutcome is the result of evaluating a serving policy
// side-by-side with anycast on held-out days — the machinery behind
// Figure 4, its ablations, and the hybrid/Odin studies.
type redirectionOutcome struct {
	med, p75                   stats.Dist
	improved, worse, evaluated float64
}

// redirectionWindows returns the training rounds (days 0-1) and held-out
// evaluation times (days 2-3) shared by every redirection study.
func redirectionWindows() (train, eval []float64) {
	for day := 0; day < 2; day++ {
		for _, h := range []float64{3, 10, 15, 21} {
			train = append(train, float64(day)*24*60+h*60)
		}
	}
	for day := 2; day < 4; day++ {
		for _, h := range []float64{2, 9, 14, 20} {
			eval = append(eval, float64(day)*24*60+h*60)
		}
	}
	return train, eval
}

// evaluateServing measures the redirector against plain anycast at the
// held-out times.
func evaluateServing(s *Scenario, rd *cdn.Redirector) (redirectionOutcome, error) {
	_, evalTimes := redirectionWindows()
	var out redirectionOutcome
	for _, p := range s.Topo.Prefixes {
		var imp stats.Dist
		for _, t := range evalTimes {
			any, _, err := s.CDN.AnycastRTT(s.Sim, p, nil, t)
			if err != nil {
				continue
			}
			served, err := s.CDN.ServeRTT(s.Sim, rd, s.DNS, p, t)
			if err != nil {
				continue
			}
			imp.Add(any-served, 1) // positive = redirection helped
		}
		if imp.N() == 0 {
			continue
		}
		out.evaluated++
		m := imp.Median()
		out.med.Add(m, p.Weight)
		out.p75.Add(imp.Quantile(0.75), p.Weight)
		if m > 1 {
			out.improved++
		}
		if m < -1 {
			out.worse++
		}
	}
	return out, nil
}

// evaluateRedirection trains the direct (omniscient-measurement)
// redirector with the given options and evaluates it — used by the
// oracle-granularity ablation.
func evaluateRedirection(s *Scenario, opts cdn.TrainOpts) (redirectionOutcome, error) {
	trainTimes, _ := redirectionWindows()
	rd, err := cdn.TrainRedirector(s.CDN, s.Sim, s.DNS, s.Topo.Prefixes, trainTimes, opts)
	if err != nil {
		return redirectionOutcome{}, err
	}
	return evaluateServing(s, rd)
}

// fig4SampleRate is the Odin sampling budget behind the headline Figure 4
// run: 1% of page views instrumented, the same order as production
// systems.
const fig4SampleRate = 0.01

// odinRedirector runs a measurement campaign and derives per-LDNS
// decisions from it.
func odinRedirector(s *Scenario, rate, marginMs float64) (*cdn.Redirector, int, error) {
	trainTimes, _ := redirectionWindows()
	pl := odin.New(s.CDN, s.DNS, s.Sim, odin.Config{Seed: s.Cfg.Seed + 11, SampleRate: rate})
	agg, err := pl.Collect(s.Topo.Prefixes, trainTimes)
	if err != nil {
		return nil, 0, err
	}
	return cdn.NewRedirector(odin.Decide(agg, 3, marginMs), nil), agg.Samples(), nil
}

// Figure4 reproduces Figure 4: the weighted CDF over client /24s of the
// latency improvement from serving per the LDNS-granularity redirector
// (best predicted of unicast-or-anycast, trained from an Odin-style
// client-measurement campaign) versus plain anycast, at the median and
// 75th percentile.
func Figure4(s *Scenario) (Result, error) {
	rd, _, err := odinRedirector(s, fig4SampleRate, 0)
	if err != nil {
		return Result{}, err
	}
	o, err := evaluateServing(s, rd)
	if err != nil {
		return Result{}, err
	}
	med, p75 := o.med, o.p75
	improved, worse, evaluated := o.improved, o.worse, o.evaluated
	res := Result{ID: "fig4", Title: "Improvement over anycast from DNS redirection"}
	res.Series = append(res.Series,
		med.CDFSeries("Median", -400, 400, 161),
		p75.CDFSeries("75th", -400, 400, 161),
	)
	tb := stats.Table{Name: "fig4 summary", Columns: []string{"value"}}
	tb.AddRow("clients_evaluated", evaluated)
	tb.AddRow("frac_improved_gt_1ms", improved/evaluated)
	tb.AddRow("frac_worse_gt_1ms", worse/evaluated)
	res.Tables = append(res.Tables, tb)
	res.Notes = append(res.Notes,
		"paper: the LDNS-predicted choice improved the median for 27% of queries but did worse than anycast for 17%")
	return res, nil
}
