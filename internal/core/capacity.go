package core

import (
	"beatbgp/internal/provider"
	"beatbgp/internal/stats"
)

// CapacityStudy runs the Edge-Fabric controller for its production
// purpose — keeping interconnects under capacity — across the §3.1 trace,
// and reports how much traffic gets detoured and what the detours cost in
// latency. The paper's framing: these controllers matter, but mostly for
// capacity, not because BGP picks slow paths.
func CapacityStudy(s *Scenario) (Result, error) {
	traces, err := s.efTraces()
	if err != nil {
		return Result{}, err
	}
	// Mean per-window demand per preferred link, for provisioning.
	meanDemand := make(map[int]float64)
	for _, tr := range traces {
		link := tr.Routes[0].Option.Link
		var vol float64
		for _, w := range tr.Windows {
			vol += w.VolumeBytes
		}
		meanDemand[link] += vol / float64(len(tr.Windows))
	}
	caps, err := s.Prov.Provision(s.Cfg.Seed, meanDemand, 1.1, 3.0)
	if err != nil {
		return Result{}, err
	}

	// Group traces by PoP; the controller works per PoP per window.
	byPoP := make(map[int][]int) // pop city -> trace indices
	for i, tr := range traces {
		byPoP[tr.PoPCity] = append(byPoP[tr.PoPCity], i)
	}
	var totalVol, detouredVol float64
	windowsWithDetour, windows := 0, 0
	var latencyDelta stats.Dist     // detoured traffic: chosen - preferred median MinRTT
	var noControlPenalty stats.Dist // counterfactual: standing-queue cost with nobody detouring
	nWindows := len(traces[0].Windows)
	for w := 0; w < nWindows; w++ {
		windows++
		anyDetour := false
		for _, idxs := range byPoP {
			demands := make([]provider.Demand, len(idxs))
			rawLoad := make(map[int]float64)
			for k, ti := range idxs {
				tr := traces[ti]
				links := make([]int, len(tr.Routes))
				for r, ro := range tr.Routes {
					links[r] = ro.Option.Link
				}
				demands[k] = provider.Demand{Volume: tr.Windows[w].VolumeBytes, Links: links}
				rawLoad[links[0]] += tr.Windows[w].VolumeBytes
			}
			choice, detoured := provider.AssignUnderCapacity(demands, caps)
			if detoured > 0 {
				anyDetour = true
			}
			detouredVol += detoured
			for k, ti := range idxs {
				tr := traces[ti]
				vol := tr.Windows[w].VolumeBytes
				totalVol += vol
				if choice[k] > 0 {
					latencyDelta.Add(
						tr.Windows[w].MedianMinRTTMs[choice[k]]-tr.Windows[w].MedianMinRTTMs[0],
						vol)
				}
				// Counterfactual: everything stays on the preferred link
				// and eats the queueing penalty of its utilization.
				link := tr.Routes[0].Option.Link
				if cap, ok := caps.PerLink[link]; ok && cap > 0 {
					if pen := provider.OverloadPenaltyMs(rawLoad[link] / cap); pen > 0 {
						noControlPenalty.Add(pen, vol)
					}
				}
			}
		}
		if anyDetour {
			windowsWithDetour++
		}
	}
	tb := stats.Table{Name: "edge-fabric capacity overrides", Columns: []string{"value"}}
	tb.AddRow("frac_windows_with_detour", float64(windowsWithDetour)/float64(windows))
	tb.AddRow("frac_volume_detoured", detouredVol/totalVol)
	if latencyDelta.N() > 0 {
		tb.AddRow("detour_latency_cost_median_ms", latencyDelta.Median())
		tb.AddRow("detour_latency_cost_p90_ms", latencyDelta.Quantile(0.90))
	} else {
		tb.AddRow("detour_latency_cost_median_ms", 0)
		tb.AddRow("detour_latency_cost_p90_ms", 0)
	}
	tb.AddRow("constrained_links", float64(len(caps.PerLink)))
	if noControlPenalty.N() > 0 {
		tb.AddRow("no_controller_frac_traffic_queued", noControlPenalty.TotalWeight()/totalVol)
		tb.AddRow("no_controller_queue_penalty_p90_ms", noControlPenalty.Quantile(0.90))
	} else {
		tb.AddRow("no_controller_frac_traffic_queued", 0)
		tb.AddRow("no_controller_queue_penalty_p90_ms", 0)
	}
	res := Result{ID: "xcap", Title: "Edge Fabric as a capacity controller"}
	res.Tables = append(res.Tables, tb)
	res.Notes = append(res.Notes,
		"the controller's day job is capacity protection: a small slice of traffic is detoured at peak, at a small latency cost — consistent with the paper's point that its *performance* benefit over BGP is marginal")
	return res, nil
}
