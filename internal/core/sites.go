package core

import (
	"context"
	"fmt"
	"math"

	"beatbgp/internal/geo"
	"beatbgp/internal/stats"
)

// SiteDensityStudy addresses the §3.2.2 open questions around CDN build-
// out: "How quickly does benefit diminish when adding PoPs? As PoPs are
// added, the chance of anycast picking a suboptimal one increases, but
// the number of reasonably performing ones increases. How do those
// factors relate?" The CDN is rebuilt at several site densities and the
// anycast-vs-best-unicast distribution re-measured on each. Each density
// is a CDN-only Derive of the base scenario, so the topology, provider
// WAN, and DNS mapping are built once and shared across the sweep.
func SiteDensityStudy(ctx context.Context, s *Scenario) (Result, error) {
	baseSites := map[geo.Region]int{
		geo.NorthAmerica: 10,
		geo.Europe:       9,
		geo.Asia:         4,
		geo.SouthAmerica: 2,
		geo.MiddleEast:   1,
		geo.Africa:       1,
		geo.Oceania:      1,
	}
	scales := []float64{0.5, 1.0, 1.6, 2.4}
	tb := stats.Table{Name: "site density sweep",
		Columns: []string{"sites", "median_anycast_ms", "median_gap_ms", "p95_gap_ms", "frac_miscaught"}}
	for _, scale := range scales {
		sub, err := s.DeriveContext(ctx, func(c *Config) {
			c.CDN.SitesPerRegion = make(map[geo.Region]int, len(baseSites))
			for r, n := range baseSites {
				v := int(math.Round(float64(n) * scale))
				if v < 1 {
					v = 1
				}
				c.CDN.SitesPerRegion[r] = v
			}
			c.Workload.Days = 2
		})
		if err != nil {
			return Result{}, err
		}
		var anyRTT, gap stats.Dist
		miscaught, evaluated := 0.0, 0.0
		const when = 10 * 60
		for _, p := range sub.Topo.Prefixes {
			any, site, err := sub.CDN.AnycastRTT(sub.Sim, p, nil, when)
			if err != nil {
				continue
			}
			best, bestSite := math.Inf(1), -1
			for _, sx := range sub.CDN.NearestSites(p, nearbyUnicastCount) {
				if rtt, err := sub.CDN.UnicastRTT(sub.Sim, p, sx, when); err == nil && rtt < best {
					best, bestSite = rtt, sx
				}
			}
			if math.IsInf(best, 1) {
				continue
			}
			evaluated += p.Weight
			anyRTT.Add(any, p.Weight)
			gap.Add(any-best, p.Weight)
			if site != bestSite && any-best > 10 {
				miscaught += p.Weight
			}
		}
		if evaluated == 0 {
			return Result{}, fmt.Errorf("core: no measurements at scale %v", scale)
		}
		tb.AddRow(fmt.Sprintf("scale_%.1fx", scale),
			float64(len(sub.CDN.Sites)), anyRTT.Median(), gap.Median(),
			gap.Quantile(0.95), miscaught/evaluated)
	}
	res := Result{ID: "xsites", Title: "CDN build-out: how many sites are enough?"}
	res.Tables = append(res.Tables, tb)
	res.Notes = append(res.Notes,
		"absolute anycast latency falls with density while the catchment-miss share does not vanish — adding sites adds both good options and chances to pick the wrong one, the tension §3.2.2 calls out")
	return res, nil
}
