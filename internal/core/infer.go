package core

import (
	"beatbgp/internal/geo"
	"beatbgp/internal/stats"
	"beatbgp/internal/topology"
)

// CatchmentInference scores the §3.2.2 planning question: how well can a
// site's catchment be predicted from public data, without running (or
// measuring) routing? Three predictors of increasing sophistication are
// compared against the simulator's ground-truth catchments.
func CatchmentInference(s *Scenario) (Result, error) {
	type predictor struct {
		label string
		fn    func(p topology.Prefix) (int, error)
	}
	wrap := func(f func(topology.Prefix) int) func(topology.Prefix) (int, error) {
		return func(p topology.Prefix) (int, error) { return f(p), nil }
	}
	preds := []predictor{
		{"nearest_site", wrap(s.CDN.PredictNearest)},
		{"fewest_as_hops", wrap(s.CDN.PredictASHops)},
		{"per_site_simulation", s.CDN.PredictPerSiteSim},
	}
	tb := stats.Table{Name: "catchment prediction accuracy",
		Columns: []string{"frac_exact", "frac_within_500km", "mean_error_km"}}
	cat := s.Topo.Catalog
	for _, pr := range preds {
		var exact, near, total float64
		var errKm stats.Dist
		for _, p := range s.Topo.Prefixes {
			actual, err := s.CDN.Catchment(p, nil)
			if err != nil {
				continue
			}
			guess, err := pr.fn(p)
			if err != nil {
				continue
			}
			total += p.Weight
			aLoc := cat.City(s.CDN.Sites[actual].City).Loc
			gLoc := cat.City(s.CDN.Sites[guess].City).Loc
			d := geo.DistanceKm(aLoc, gLoc)
			errKm.Add(d, p.Weight)
			if guess == actual {
				exact += p.Weight
			}
			if d <= 500 {
				near += p.Weight
			}
		}
		tb.AddRow(pr.label, exact/total, near/total, errKm.Mean())
	}
	res := Result{ID: "xinfer", Title: "Predicting anycast catchments from public data"}
	res.Tables = append(res.Tables, tb)
	res.Notes = append(res.Notes,
		"relationship-aware prediction recovers much of the catchment, but the residual error is exactly the decision-process detail (tie-breaks, per-ingress exits) that §3.2.2 says makes planning hard")
	return res, nil
}
