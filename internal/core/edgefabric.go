package core

import (
	"context"
	"fmt"
	"math"

	"beatbgp/internal/geo"
	"beatbgp/internal/par"
	"beatbgp/internal/provider"
	"beatbgp/internal/stats"
	"beatbgp/internal/topology"
	"beatbgp/internal/workload"
)

// efTraces lazily collects the Edge-Fabric measurement trace: every
// client prefix observed from its serving PoP with BGP's top routes
// sprayed, per the paper's §3.1 dataset. Shared by fig1/fig2/t31/t311.
//
// The sweep is sharded across internal/par workers: route propagation is
// primed per unique origin, then prefixes replay on per-worker generators
// (each over its own Sim clone, so lazy congestion memos never contend).
// Every per-prefix trace is a pure function of the prefix — session noise
// is keyed by ⟨prefix, PoP⟩, never by worker — and the merge keeps prefix
// order, so the trace slice is bit-identical at any worker count.
func (s *Scenario) efTraces() ([]workload.Trace, error) {
	s.tracesMu.Lock()
	defer s.tracesMu.Unlock()
	if s.traces != nil {
		return s.traces, nil
	}
	workers := s.workers()

	// Warm the per-origin RIB memo once, in parallel, so the replay
	// workers below do pure read-only lookups.
	seen := make(map[int]bool)
	var origins []int
	for _, p := range s.Topo.Prefixes {
		if !seen[p.Origin] {
			seen[p.Origin] = true
			origins = append(origins, p.Origin)
		}
	}
	if err := s.Oracle.PrimeOrigins(context.Background(), workers, origins); err != nil {
		return nil, err
	}

	type obs struct {
		tr workload.Trace
		ok bool
	}
	results, err := par.MapState(workers, s.Topo.Prefixes,
		func(int) *workload.Generator { return s.Gen.WithSim(s.Sim.Clone()) },
		func(gen *workload.Generator, _ int, p topology.Prefix) (obs, error) {
			rib, err := s.Oracle.ToPrefix(p)
			if err != nil {
				return obs{}, err
			}
			pop := s.Prov.ServingPoP(p.City)
			opts := s.Prov.EgressOptions(rib, pop)
			if len(opts) < 2 {
				return obs{}, nil // no alternate to compare against
			}
			tr, err := gen.Observe(pop, p, opts)
			if err != nil || len(tr.Routes) < 2 {
				return obs{}, nil
			}
			return obs{tr, true}, nil
		})
	if err != nil {
		return nil, err
	}
	for _, o := range results {
		if o.ok {
			s.traces = append(s.traces, o.tr)
		}
	}
	if len(s.traces) == 0 {
		return nil, fmt.Errorf("core: no usable edge-fabric traces")
	}
	return s.traces, nil
}

// pairStats is the per-⟨PoP, prefix⟩ aggregation behind Figures 1 and 2.
type pairStats struct {
	trace     workload.Trace
	diffs     stats.Dist // per-window (preferred - best alternate)
	pointDiff float64    // median over windows
	ciLo      float64
	ciHi      float64
	volume    float64 // total bytes
}

func (s *Scenario) pairStatsAll() ([]pairStats, error) {
	traces, err := s.efTraces()
	if err != nil {
		return nil, err
	}
	out := make([]pairStats, 0, len(traces))
	for _, tr := range traces {
		ps := pairStats{trace: tr}
		for _, w := range tr.Windows {
			pref := w.MedianMinRTTMs[0]
			alt := math.Inf(1)
			for _, v := range w.MedianMinRTTMs[1:] {
				if v < alt {
					alt = v
				}
			}
			ps.diffs.Add(pref-alt, 1)
			ps.volume += w.VolumeBytes
		}
		ps.pointDiff = ps.diffs.Median()
		ps.ciLo, ps.ciHi = ps.diffs.MedianCI(0.95)
		out = append(out, ps)
	}
	return out, nil
}

// Figure1 reproduces the paper's Figure 1: the traffic-weighted CDF of
// the median MinRTT difference between BGP's preferred route and the
// best-performing alternate, with the confidence-interval band.
func Figure1(s *Scenario) (Result, error) {
	pairs, err := s.pairStatsAll()
	if err != nil {
		return Result{}, err
	}
	var point, lo, hi stats.Dist
	for _, ps := range pairs {
		point.Add(ps.pointDiff, ps.volume)
		lo.Add(ps.ciLo, ps.volume)
		hi.Add(ps.ciHi, ps.volume)
	}
	res := Result{ID: "fig1", Title: "Median MinRTT difference, BGP - best alternate"}
	res.Series = append(res.Series,
		point.CDFSeries("median-diff", -10, 10, 81),
		lo.CDFSeries("ci-lower", -10, 10, 81),
		hi.CDFSeries("ci-upper", -10, 10, 81),
	)
	tb := stats.Table{Name: "fig1 summary", Columns: []string{"value"}}
	tb.AddRow("pairs", float64(len(pairs)))
	tb.AddRow("frac_traffic_diff_ge_5ms", point.FracAtLeast(5))
	tb.AddRow("frac_traffic_abs_diff_le_1ms", point.CDF(1)-point.FracBelow(-1))
	tb.AddRow("frac_traffic_bgp_strictly_better_1ms", point.FracBelow(-1))
	res.Tables = append(res.Tables, tb)
	res.Notes = append(res.Notes,
		"paper: BGP better than or roughly equal to the best alternate for the vast majority of traffic; >=5ms improvement possible for only 2-4% of traffic")
	return res, nil
}

// Figure2 reproduces Figure 2: the traffic-weighted CDFs of (best peer -
// best transit) and (best private peer - best public peer) median MinRTT.
func Figure2(s *Scenario) (Result, error) {
	traces, err := s.efTraces()
	if err != nil {
		return Result{}, err
	}
	classOf := func(ro workload.RouteObs) provider.RouteClass { return ro.Option.Class }
	var peerVsTransit, privVsPub stats.Dist
	for _, tr := range traces {
		var volume float64
		for _, w := range tr.Windows {
			volume += w.VolumeBytes
		}
		// Per-window best by class, then median of the difference.
		var dPT, dPP stats.Dist
		for _, w := range tr.Windows {
			bestPeer, bestTransit := math.Inf(1), math.Inf(1)
			bestPriv, bestPub := math.Inf(1), math.Inf(1)
			for i, ro := range tr.Routes {
				v := w.MedianMinRTTMs[i]
				switch classOf(ro) {
				case provider.ClassPNI:
					if v < bestPeer {
						bestPeer = v
					}
					if v < bestPriv {
						bestPriv = v
					}
				case provider.ClassPublicPeer:
					if v < bestPeer {
						bestPeer = v
					}
					if v < bestPub {
						bestPub = v
					}
				case provider.ClassTransit:
					if v < bestTransit {
						bestTransit = v
					}
				}
			}
			if !math.IsInf(bestPeer, 1) && !math.IsInf(bestTransit, 1) {
				dPT.Add(bestPeer-bestTransit, 1)
			}
			if !math.IsInf(bestPriv, 1) && !math.IsInf(bestPub, 1) {
				dPP.Add(bestPriv-bestPub, 1)
			}
		}
		if dPT.N() > 0 {
			peerVsTransit.Add(dPT.Median(), volume)
		}
		if dPP.N() > 0 {
			privVsPub.Add(dPP.Median(), volume)
		}
	}
	res := Result{ID: "fig2", Title: "Peer vs transit; private vs public peering"}
	res.Series = append(res.Series,
		peerVsTransit.CDFSeries("peering-vs-transit", -10, 10, 81),
		privVsPub.CDFSeries("private-vs-public", -10, 10, 81),
	)
	tb := stats.Table{Name: "fig2 summary", Columns: []string{"median_ms", "n_pairs"}}
	tb.AddRow("peer_minus_transit", peerVsTransit.Median(), float64(peerVsTransit.N()))
	tb.AddRow("private_minus_public", privVsPub.Median(), float64(privVsPub.N()))
	res.Tables = append(res.Tables, tb)
	res.Notes = append(res.Notes,
		"paper: transits usually perform like peers, public exchange like private interconnects")
	return res, nil
}

// TableS31 reports the §3.1 in-text numbers: the share of traffic whose
// median latency a performance-aware controller could improve by >=5 ms,
// the client-to-PoP distance distribution of §2.3.1, and the benefit of
// an omniscient versus a reactive (Edge-Fabric-style, previous-window)
// controller.
func TableS31(s *Scenario) (Result, error) {
	pairs, err := s.pairStatsAll()
	if err != nil {
		return Result{}, err
	}
	var point stats.Dist
	var dist stats.Dist
	var omniGain, reactiveGain stats.Dist
	for _, ps := range pairs {
		point.Add(ps.pointDiff, ps.volume)
		d := geo.DistanceKm(
			s.Topo.Catalog.City(ps.trace.Prefix.City).Loc,
			s.Topo.Catalog.City(ps.trace.PoPCity).Loc)
		dist.Add(d, ps.volume)

		// Controllers: per-window gain over always-BGP.
		prevBest := 0 // reactive controller's current route (starts on BGP's pick)
		var omni, reactive float64
		for wi, w := range ps.trace.Windows {
			pref := w.MedianMinRTTMs[0]
			best, bestIdx := pref, 0
			for i, v := range w.MedianMinRTTMs {
				if v < best {
					best, bestIdx = v, i
				}
			}
			omni += pref - best
			reactive += pref - w.MedianMinRTTMs[prevBest]
			_ = wi
			prevBest = bestIdx // decided from this window, applied next
		}
		n := float64(len(ps.trace.Windows))
		omniGain.Add(omni/n, ps.volume)
		reactiveGain.Add(reactive/n, ps.volume)
	}
	tb := stats.Table{Name: "s3.1 in-text", Columns: []string{"value"}}
	tb.AddRow("frac_traffic_improvable_ge5ms", point.FracAtLeast(5))
	tb.AddRow("frac_traffic_within_500km", dist.CDF(500))
	tb.AddRow("frac_traffic_within_2500km", dist.CDF(2500))
	tb.AddRow("median_client_pop_km", dist.Median())
	tb.AddRow("mean_gain_omniscient_ms", omniGain.Mean())
	tb.AddRow("mean_gain_reactive_ms", reactiveGain.Mean())
	res := Result{ID: "t31", Title: "Edge-Fabric setting in-text statistics"}
	res.Tables = append(res.Tables, tb)
	res.Notes = append(res.Notes,
		"paper: half of traffic within 500 km of the serving PoP, 90% within 2500 km; improvable >=5ms for 2-4%")
	return res, nil
}

// TableS311 reproduces the §3.1.1 analysis: degradation on the preferred
// path is more prevalent than improvement opportunities, and alternates
// that do beat BGP tend to beat it all the time.
func TableS311(s *Scenario) (Result, error) {
	traces, err := s.efTraces()
	if err != nil {
		return Result{}, err
	}
	const significantMs = 3
	var degradedFrac, improvableFrac stats.Dist
	pairsWithWin, persistentWinners := 0.0, 0.0
	medianWinners, persistentMedianWinners := 0.0, 0.0
	var totalVolume, winVolume float64
	for _, tr := range traces {
		var volume float64
		for _, w := range tr.Windows {
			volume += w.VolumeBytes
		}
		totalVolume += volume
		// Baseline of the preferred path: its 10th percentile across windows.
		var prefDist stats.Dist
		for _, w := range tr.Windows {
			prefDist.Add(w.MedianMinRTTMs[0], 1)
		}
		base := prefDist.Quantile(0.10)
		degraded, improvable := 0, 0
		for _, w := range tr.Windows {
			pref := w.MedianMinRTTMs[0]
			alt := math.Inf(1)
			for _, v := range w.MedianMinRTTMs[1:] {
				if v < alt {
					alt = v
				}
			}
			if pref > base+significantMs {
				degraded++
			}
			if pref-alt > significantMs {
				improvable++
			}
		}
		n := float64(len(tr.Windows))
		degradedFrac.Add(float64(degraded)/n, volume)
		improvableFrac.Add(float64(improvable)/n, volume)
		if improvable > 0 {
			pairsWithWin++
			winVolume += volume
			if float64(improvable)/n >= 0.8 {
				persistentWinners++
			}
		}
		// True winners: the alternate beats BGP at the *median*, not just
		// in occasional windows. These are the paper's "consistently
		// better" candidates.
		var diffs stats.Dist
		for _, w := range tr.Windows {
			pref := w.MedianMinRTTMs[0]
			alt := math.Inf(1)
			for _, v := range w.MedianMinRTTMs[1:] {
				if v < alt {
					alt = v
				}
			}
			diffs.Add(pref-alt, 1)
		}
		if diffs.Median() > significantMs {
			medianWinners++
			if float64(improvable)/n >= 0.8 {
				persistentMedianWinners++
			}
		}
	}
	tb := stats.Table{Name: "s3.1.1 degrade-together analysis", Columns: []string{"value"}}
	tb.AddRow("mean_frac_windows_preferred_degraded", degradedFrac.Mean())
	tb.AddRow("mean_frac_windows_alternate_better", improvableFrac.Mean())
	tb.AddRow("pairs_with_any_winning_window", pairsWithWin)
	if pairsWithWin > 0 {
		tb.AddRow("frac_any_winners_persistent_ge80pct", persistentWinners/pairsWithWin)
	} else {
		tb.AddRow("frac_any_winners_persistent_ge80pct", 0)
	}
	tb.AddRow("pairs_with_median_winning_alternate", medianWinners)
	if medianWinners > 0 {
		tb.AddRow("frac_median_winners_persistent_ge80pct", persistentMedianWinners/medianWinners)
	} else {
		tb.AddRow("frac_median_winners_persistent_ge80pct", 0)
	}
	tb.AddRow("frac_volume_with_winning_window", winVolume/totalVolume)
	res := Result{ID: "t311", Title: "Degradations vs improvement windows"}
	res.Tables = append(res.Tables, tb)
	res.Notes = append(res.Notes,
		"paper: degradations on BGP's path are more prevalent than improvement opportunities; most winning alternates win consistently")
	return res, nil
}
