package core

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"time"

	"beatbgp/internal/bgp"
	"beatbgp/internal/cdn"
	"beatbgp/internal/dnsmap"
	"beatbgp/internal/matbgp"
	"beatbgp/internal/netpath"
	"beatbgp/internal/netsim"
	"beatbgp/internal/provider"
	"beatbgp/internal/topology"
	"beatbgp/internal/workload"
)

// The scenario build is an explicit staged graph. Every stage declares
// exactly which sub-config and upstream artifacts it consumes, and each
// built artifact carries a content key derived from that input slice:
//
//	topology  f(Topology)                 base AS-level world, pre-provider
//	provider  f(Provider, topology)       WAN + peering, on a topology clone
//	cdn       f(CDN, provider)            site ASes, on a provider-snapshot clone
//	dns       f(DNS, topology)            resolver population (reads only the
//	                                      eyeball ASes, so it keys on topology)
//	oracle    f(cdn)                      BGP oracle over the finished world
//	resolver  f(cdn)                      geographic path resolver, same world
//	sim       f(Net, cdn), always fresh   mutable congestion state
//	gen       f(Workload, sim, resolver), always fresh
//
// Derive rebuilds only the stages whose keys changed, sharing unchanged
// immutable artifacts by pointer; NewScenario is the degenerate case with
// no previous scenario. Because topology-mutating stages (provider, cdn)
// run on clones, the per-stage snapshots stay frozen and reusable, and
// "clone then extend" produces byte-identical worlds to a monolithic
// build — the determinism contract the equivalence tests lock down.

// Stage names, in build order.
const (
	StageTopology = "topology"
	StageProvider = "provider"
	StageCDN      = "cdn"
	StageDNS      = "dns"
	StageOracle   = "oracle"
	StageResolver = "resolver"
	StageSim      = "sim"
	StageGen      = "gen"
	StageEpochs   = "epochs"
)

// buildKeys holds the per-stage content keys for one normalized config,
// plus two derived keys that are not build-time stages but must enter
// the WorldKey because they change what experiments compute: the
// dynamics key (convergence + session models) and the epochs key (the
// fault epoch sequence the studies repair across — built lazily by
// Scenario.faultEpochs from the sim stage's schedule replayed under the
// dynamics models, hence keyed on exactly those two inputs).
type buildKeys struct {
	topo, prov, cdn, dns, oracle, res, sim, gen, dyn, epochs string
}

// computeKeys derives every stage key from the normalized config. Keys
// chain: a stage's key hashes its own sub-config plus its upstream
// stages' keys, so any upstream change invalidates the whole downstream
// slice. Config.Seed and Config.Workers are deliberately absent — the
// seed acts only through the derived per-stage seeds (already inside each
// sub-config after setDefaults), and the worker budget never changes what
// is built.
func computeKeys(cfg Config) buildKeys {
	var k buildKeys
	k.topo = stageKey(StageTopology, cfg.Topology)
	k.prov = stageKey(StageProvider, cfg.Provider, k.topo)
	k.cdn = stageKey(StageCDN, cfg.CDN, k.prov)
	k.dns = stageKey(StageDNS, cfg.DNS, k.topo)
	k.oracle = stageKey(StageOracle, k.cdn)
	k.res = stageKey(StageResolver, k.cdn)
	k.sim = stageKey(StageSim, cfg.Net, k.cdn)
	k.gen = stageKey(StageGen, cfg.Workload, k.sim, k.res)
	k.dyn = stageKey("dynamics", cfg.Convergence, cfg.Session)
	k.epochs = stageKey(StageEpochs, k.sim, k.dyn)
	return k
}

// WorldKey returns the content key of the fully built world for cfg: the
// chained hash of every stage key after seed derivation and validation.
// Two configs with equal WorldKeys build byte-identical worlds, so the
// key is the cache-invalidation handle for anything persisted about a
// scenario (internal/harness keys experiment checkpoints on it: a config
// change invalidates exactly the cells whose world it changes).
// Config.Workers is deliberately excluded — the worker budget never
// changes what is computed. Invalid configs return the validation error.
func WorldKey(cfg Config) (string, error) {
	cfg.setDefaults()
	if err := cfg.Validate(); err != nil {
		return "", err
	}
	k := computeKeys(cfg)
	return stageKey("world", k.topo, k.prov, k.cdn, k.dns, k.oracle, k.res, k.sim, k.gen, k.dyn, k.epochs), nil
}

// CellKey chains a WorldKey with an experiment ID into the content key of
// one (world, experiment) cell — the unit internal/harness checkpoints.
func CellKey(worldKey, experimentID string) string {
	return stageKey("cell", worldKey, experimentID)
}

// stageKey hashes a stage name plus its inputs (sub-configs and upstream
// keys) into a short content key.
func stageKey(stage string, inputs ...any) string {
	h := sha256.New()
	io.WriteString(h, stage)
	for _, in := range inputs {
		io.WriteString(h, "\x00")
		if s, ok := in.(string); ok {
			io.WriteString(h, s)
			continue
		}
		hashValue(h, reflect.ValueOf(in))
	}
	return hex.EncodeToString(h.Sum(nil)[:8])
}

// hashValue writes a canonical encoding of v: struct fields in order with
// their names, map entries sorted by key, slices in order. Configs are
// plain data (scalars, strings, slices, maps), so this covers every field
// a sub-config can grow without further maintenance.
func hashValue(w io.Writer, v reflect.Value) {
	switch v.Kind() {
	case reflect.Bool:
		fmt.Fprintf(w, "b%t;", v.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		fmt.Fprintf(w, "i%d;", v.Int())
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		fmt.Fprintf(w, "u%d;", v.Uint())
	case reflect.Float32, reflect.Float64:
		io.WriteString(w, "f"+strconv.FormatFloat(v.Float(), 'g', -1, 64)+";")
	case reflect.String:
		fmt.Fprintf(w, "s%d:%s;", v.Len(), v.String())
	case reflect.Slice, reflect.Array:
		fmt.Fprintf(w, "l%d:", v.Len())
		for i := 0; i < v.Len(); i++ {
			hashValue(w, v.Index(i))
		}
		io.WriteString(w, ";")
	case reflect.Map:
		type entry struct {
			repr string
			key  reflect.Value
		}
		entries := make([]entry, 0, v.Len())
		for _, k := range v.MapKeys() {
			var kb strings.Builder
			hashValue(&kb, k)
			entries = append(entries, entry{kb.String(), k})
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i].repr < entries[j].repr })
		fmt.Fprintf(w, "m%d:", v.Len())
		for _, e := range entries {
			io.WriteString(w, e.repr)
			hashValue(w, v.MapIndex(e.key))
		}
		io.WriteString(w, ";")
	case reflect.Ptr, reflect.Interface:
		if v.IsNil() {
			io.WriteString(w, "nil;")
			return
		}
		hashValue(w, v.Elem())
	case reflect.Struct:
		t := v.Type()
		fmt.Fprintf(w, "t%s{", t.Name())
		for i := 0; i < t.NumField(); i++ {
			if t.Field(i).PkgPath != "" {
				continue // unexported: not part of a caller-visible config
			}
			io.WriteString(w, t.Field(i).Name+"=")
			hashValue(w, v.Field(i))
		}
		io.WriteString(w, "}")
	default:
		fmt.Fprintf(w, "?%s;", v.Kind())
	}
}

// StageReport records one stage of a scenario build.
type StageReport struct {
	Stage  string
	Key    string // content key over the stage's declared inputs
	Reused bool   // artifact shared from the previous scenario
	Wall   time.Duration
}

// BuildReport instruments one NewScenario or Derive call: per-stage wall
// time and rebuilt-vs-reused counts. Obtain it via Scenario.BuildReport;
// cmd/beatbgp surfaces it with -buildstats.
type BuildReport struct {
	Stages  []StageReport
	Rebuilt int
	Reused  int
	Wall    time.Duration // total build wall time
}

// Render formats the report as text.
func (r BuildReport) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "build: %d stage(s) rebuilt, %d reused, %v\n",
		r.Rebuilt, r.Reused, r.Wall.Round(time.Microsecond))
	for _, st := range r.Stages {
		verb := "rebuilt"
		if st.Reused {
			verb = "reused"
		}
		fmt.Fprintf(&b, "  %-9s %-16s %-8s %v\n", st.Stage, st.Key, verb,
			st.Wall.Round(time.Microsecond))
	}
	return b.String()
}

// BuildReport returns the instrumentation for this scenario's build: how
// long each stage took and which artifacts were reused from the scenario
// it was derived from (a fresh NewScenario rebuilds every stage).
func (s *Scenario) BuildReport() BuildReport { return s.report }

// Derive builds a scenario for a mutated configuration, rebuilding only
// the stages whose inputs changed and sharing every unchanged immutable
// artifact — topology, provider, CDN, DNS mapping, BGP oracle, path
// resolver — by pointer with the receiver. Per-scenario mutable state
// (the congestion simulator, the workload generator, and the lazy
// trace/tier caches) is always rebuilt fresh, so the derived scenario and
// the receiver never contend on mutable state.
//
// mutate receives the receiver's original (pre-normalization) Config, so
// per-stage seeds left zero by the caller are re-derived from Config.Seed
// in exactly one place (Config.setDefaults): mutating Seed alone reseeds
// and rebuilds the whole world, while explicitly pinned stage seeds are
// honored. A nil mutate derives an identical world with fresh mutable
// state.
//
// The determinism contract: Derive produces byte-identical experiment
// Render() output to a fresh NewScenario on the same config, at any
// worker count.
func (s *Scenario) Derive(mutate func(*Config)) (*Scenario, error) {
	return s.DeriveContext(context.Background(), mutate)
}

// DeriveContext is Derive honoring context cancellation between stages,
// so a per-experiment deadline also bounds sub-scenario builds inside
// sweep studies.
func (s *Scenario) DeriveContext(ctx context.Context, mutate func(*Config)) (*Scenario, error) {
	user := s.userCfg
	if mutate != nil {
		mutate(&user)
	}
	norm := user
	norm.setDefaults()
	if err := norm.Validate(); err != nil {
		return nil, err
	}
	return build(ctx, norm, user, s)
}

// build runs the staged graph. norm is the normalized-and-validated
// config, user the caller's original; prev (nil for fresh builds) donates
// artifacts whose stage keys match.
func build(ctx context.Context, norm, user Config, prev *Scenario) (*Scenario, error) {
	s := &Scenario{Cfg: norm, userCfg: user, keys: computeKeys(norm)}
	start := time.Now()

	// stage times one step; reuse is attempted first, then fresh runs.
	stage := func(name, key, prevKey string, reuse func(), fresh func() error) error {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("core: build %s: %w", name, err)
		}
		t0 := time.Now()
		reused := prev != nil && reuse != nil && key == prevKey
		if reused {
			reuse()
			s.report.Reused++
		} else {
			if err := fresh(); err != nil {
				return err
			}
			s.report.Rebuilt++
		}
		s.report.Stages = append(s.report.Stages, StageReport{
			Stage: name, Key: key, Reused: reused, Wall: time.Since(t0),
		})
		return nil
	}
	var prevKeys buildKeys
	if prev != nil {
		prevKeys = prev.keys
	}

	if err := stage(StageTopology, s.keys.topo, prevKeys.topo,
		func() { s.baseTopo = prev.baseTopo },
		func() error {
			t, err := topology.Generate(norm.Topology)
			if err != nil {
				return fmt.Errorf("core: topology: %w", err)
			}
			s.baseTopo = t
			return nil
		}); err != nil {
		return nil, err
	}

	if err := stage(StageProvider, s.keys.prov, prevKeys.prov,
		func() { s.provTopo, s.Prov = prev.provTopo, prev.Prov },
		func() error {
			t := s.baseTopo.Clone()
			p, err := provider.Build(t, norm.Provider)
			if err != nil {
				return fmt.Errorf("core: provider: %w", err)
			}
			s.provTopo, s.Prov = t, p
			return nil
		}); err != nil {
		return nil, err
	}

	if err := stage(StageCDN, s.keys.cdn, prevKeys.cdn,
		// Reusing the CDN stage shares the donor's engine too: the topology
		// is the same, engines are bit-identical by contract, and lowering
		// the batch engine again would redo the compression work for the
		// same answers. Like Workers, a Config.Engine change alone does not
		// invalidate any stage.
		func() { s.Topo, s.CDN, s.Routes = prev.Topo, prev.CDN, prev.Routes },
		func() error {
			t := s.provTopo.Clone()
			c, err := cdn.Build(t, norm.CDN)
			if err != nil {
				return fmt.Errorf("core: cdn: %w", err)
			}
			// The topology is final after the CDN build, so this is the
			// earliest point the route engine can be lowered from it.
			r, err := newComputer(norm.Engine, t)
			if err != nil {
				return fmt.Errorf("core: route engine: %w", err)
			}
			c.UseEngine(r)
			s.Topo, s.CDN, s.Routes = t, c, r
			return nil
		}); err != nil {
		return nil, err
	}

	if err := stage(StageDNS, s.keys.dns, prevKeys.dns,
		func() { s.DNS = prev.DNS },
		func() error {
			// The resolver population reads only the eyeball ASes and the
			// client prefixes, all of which exist in the base topology, so
			// the stage keys on (DNS config, topology) and survives
			// provider/CDN rebuilds.
			s.DNS = dnsmap.Build(s.baseTopo, norm.DNS)
			return nil
		}); err != nil {
		return nil, err
	}

	if err := stage(StageOracle, s.keys.oracle, prevKeys.oracle,
		func() { s.Oracle = prev.Oracle },
		func() error {
			// The oracle keys on the CDN stage, so s.Routes is always the
			// engine lowered from (or donated with) this exact topology.
			s.Oracle = bgp.NewOracleWith(s.Topo, s.Routes)
			return nil
		}); err != nil {
		return nil, err
	}

	if err := stage(StageResolver, s.keys.res, prevKeys.res,
		func() { s.Res = prev.Res },
		func() error {
			s.Res = netpath.NewResolver(s.Topo)
			return nil
		}); err != nil {
		return nil, err
	}

	// Mutable per-scenario state: always fresh, never donated.
	if err := stage(StageSim, s.keys.sim, "", nil,
		func() error {
			s.Sim = netsim.New(s.Topo, norm.Net)
			return nil
		}); err != nil {
		return nil, err
	}
	if err := stage(StageGen, s.keys.gen, "", nil,
		func() error {
			s.Gen = workload.NewGenerator(s.Sim, s.Res, norm.Workload)
			return nil
		}); err != nil {
		return nil, err
	}

	s.report.Wall = time.Since(start)
	return s, nil
}

// newComputer lowers the route engine named by Config.Engine from the
// finished topology. "matbgp" is the compact batch engine; "oracle" keeps
// the recursive reference implementation as the differential baseline.
func newComputer(engine string, t *topology.Topo) (bgp.Computer, error) {
	switch engine {
	case "oracle":
		return bgp.NewReference(t), nil
	default: // "matbgp", the setDefaults default
		return matbgp.NewEngine(t)
	}
}
