package core

import (
	"context"
	"fmt"

	"beatbgp/internal/cdn"
	"beatbgp/internal/stats"
)

// Ablations: each disables one of the design choices DESIGN.md calls out
// as load-bearing for the paper's findings, and reports the same summary
// statistics as the affected figure so the effect is directly comparable.
// Each builds its variant worlds with Scenario.Derive, so only the stages
// its knob touches are rebuilt (see build.go).

// AblationSharedFate turns off the shared-fate last-mile congestion
// (§3.1.1's mechanism) and recomputes the Figure 1 summary: without it,
// congestion becomes route-specific and dynamic traffic engineering finds
// more wins.
func AblationSharedFate(ctx context.Context, s *Scenario) (Result, error) {
	run := func(disable bool) (improvable, degraded float64, err error) {
		// Net + Workload only: topology, provider, CDN, and DNS are
		// shared with the base scenario.
		sub, err := s.DeriveContext(ctx, func(c *Config) {
			c.Net.DisableSharedFate = disable
			c.Workload.Days = 3
		})
		if err != nil {
			return 0, 0, err
		}
		pairs, err := sub.pairStatsAll()
		if err != nil {
			return 0, 0, err
		}
		var point stats.Dist
		for _, ps := range pairs {
			point.Add(ps.pointDiff, ps.volume)
		}
		r311, err := TableS311(sub)
		if err != nil {
			return 0, 0, err
		}
		deg, ok := r311.Tables[0].Cell("mean_frac_windows_preferred_degraded", "value")
		if !ok {
			return 0, 0, fmt.Errorf("core: afate: t311 cell mean_frac_windows_preferred_degraded missing")
		}
		return point.FracAtLeast(5), deg, nil
	}
	impOn, degOn, err := run(false)
	if err != nil {
		return Result{}, err
	}
	impOff, degOff, err := run(true)
	if err != nil {
		return Result{}, err
	}
	tb := stats.Table{Name: "shared-fate ablation (fig1/t311 summaries)",
		Columns: []string{"frac_improvable_ge5ms", "frac_windows_degraded"}}
	tb.AddRow("shared_fate_on", impOn, degOn)
	tb.AddRow("shared_fate_off", impOff, degOff)
	res := Result{ID: "afate", Title: "Ablation: shared-fate congestion off"}
	res.Tables = append(res.Tables, tb)
	res.Notes = append(res.Notes,
		"with shared fate off, what congestion remains is route-specific, so the preferred path degrades alone less often and relatively more of the remaining degradation is dodgeable")
	return res, nil
}

// AblationECS gives the redirector oracle granularity: noiseless training
// and per-client decisions wherever the resolver sends ECS — and, via a
// DNS-only derived world, an ECS-bearing resolver for *every* client, so
// the oracle arm is truly per-client rather than per-LDNS for the 0.1%
// of ASes that happen to send ECS. The paper's point is that this
// granularity is unavailable in practice; with it, prediction errors
// shrink toward the Figure 3 opportunity.
func AblationECS(ctx context.Context, s *Scenario) (Result, error) {
	rd, _, err := odinRedirector(s, fig4SampleRate, 0)
	if err != nil {
		return Result{}, err
	}
	ldns, err := evaluateServing(s, rd)
	if err != nil {
		return Result{}, err
	}
	// DNS-only mutation: the derived world shares the topology, the
	// provider, the CDN, and the oracle with the base scenario and
	// rebuilds only the resolver population.
	ecsWorld, err := s.DeriveContext(ctx, func(c *Config) {
		c.DNS.ISPECSProb = 1
	})
	if err != nil {
		return Result{}, err
	}
	oracle, err := evaluateRedirection(ecsWorld, cdn.TrainOpts{UseECS: true, NoiseMs: -1})
	if err != nil {
		return Result{}, err
	}
	tb := stats.Table{Name: "redirector granularity ablation",
		Columns: []string{"frac_improved_gt_1ms", "frac_worse_gt_1ms"}}
	tb.AddRow("ldns_granularity_measured", ldns.improved/ldns.evaluated, ldns.worse/ldns.evaluated)
	tb.AddRow("oracle_ecs_noiseless", oracle.improved/oracle.evaluated, oracle.worse/oracle.evaluated)
	res := Result{ID: "aecs", Title: "Ablation: oracle-granularity redirection"}
	res.Tables = append(res.Tables, tb)
	res.Notes = append(res.Notes,
		"oracle granularity should improve at least as many clients and hurt fewer — the gap is the cost of the LDNS indirection the paper describes")
	return res, nil
}

// AblationPNI makes dedicated private interconnects exactly as likely to
// carry a persistent impairment as public links, removing the §3.1.2
// capacity-management advantage, and recomputes the Figure 1/2 summaries.
func AblationPNI(ctx context.Context, s *Scenario) (Result, error) {
	run := func(factor float64) (improvable, peerWorseTail float64, err error) {
		sub, err := s.DeriveContext(ctx, func(c *Config) {
			c.Net.PNIImpairFactor = factor
			c.Workload.Days = 3
		})
		if err != nil {
			return 0, 0, err
		}
		pairs, err := sub.pairStatsAll()
		if err != nil {
			return 0, 0, err
		}
		var point stats.Dist
		for _, ps := range pairs {
			point.Add(ps.pointDiff, ps.volume)
		}
		f2, err := Figure2(sub)
		if err != nil {
			return 0, 0, err
		}
		// Fraction of traffic where the best peer route is >=3ms slower
		// than the best transit route (the medians are robust to rare
		// impairments; the tail is where the ablation shows).
		var tail float64
		for _, sr := range f2.Series {
			if sr.Name == "peering-vs-transit" {
				tail = 1 - sr.YAt(3)
			}
		}
		return point.FracAtLeast(5), tail, nil
	}
	impManaged, ptManaged, err := run(0.15)
	if err != nil {
		return Result{}, err
	}
	impEqual, ptEqual, err := run(1.0)
	if err != nil {
		return Result{}, err
	}
	tb := stats.Table{Name: "PNI capacity-management ablation",
		Columns: []string{"frac_improvable_ge5ms", "frac_peer_worse_3ms"}}
	tb.AddRow("pnis_managed", impManaged, ptManaged)
	tb.AddRow("pnis_like_public", impEqual, ptEqual)
	res := Result{ID: "apni", Title: "Ablation: PNIs as impairment-prone as public links"}
	res.Tables = append(res.Tables, tb)
	res.Notes = append(res.Notes,
		"when PNIs lose their managed-capacity advantage, BGP's most-preferred class is impaired more often and performance-aware routing finds more to fix")
	return res, nil
}
