package core

import (
	"fmt"

	"beatbgp/internal/bgp"
	"beatbgp/internal/geo"
	"beatbgp/internal/measure"
	"beatbgp/internal/netpath"
	"beatbgp/internal/par"
	"beatbgp/internal/stats"
	"beatbgp/internal/tcp"
)

// tierState bundles the routing and measurement machinery for the
// Premium/Standard cloud-tier study. It is built lazily and cached on the
// scenario because fig5, t33, t4g and xwan all consume it.
type tierState struct {
	premRIB *bgp.RIB
	stdRIB  *bgp.RIB
	plat    *measure.Platform
	prem    measure.Target
	std     measure.Target
	// eligible VPs per the paper's filter: direct Premium adjacency,
	// >=1 intermediate AS on the Standard path.
	vps []measure.VantagePoint
}

func (s *Scenario) tiers() (*tierState, error) {
	s.tierMu.Lock()
	defer s.tierMu.Unlock()
	if s.tier != nil {
		return s.tier, nil
	}
	premRIB, err := s.Routes.Compute([]bgp.Announcement{s.Prov.PremiumAnnouncement()})
	if err != nil {
		return nil, err
	}
	stdRIB, err := s.Routes.Compute([]bgp.Announcement{s.Prov.StandardAnnouncement()})
	if err != nil {
		return nil, err
	}
	ts := &tierState{premRIB: premRIB, stdRIB: stdRIB}
	ts.plat = measure.New(s.Topo, s.Sim, measure.Config{Seed: s.Cfg.Seed + 7})

	mkTarget := func(name string, rib *bgp.RIB) measure.Target {
		return measure.Target{
			Name: name,
			Route: func(vp measure.VantagePoint) (netpath.Route, error) {
				r := rib.Best(vp.AS)
				if !r.Valid {
					return netpath.Route{}, fmt.Errorf("core: vp%d cannot reach %s", vp.ID, name)
				}
				public, _, _, err := s.Prov.EntryAndWAN(s.Res, r, vp.City)
				return public, err
			},
			ExtraRTTMs: func(vp measure.VantagePoint) float64 {
				r := rib.Best(vp.AS)
				if !r.Valid {
					return 0
				}
				_, _, wanKm, err := s.Prov.EntryAndWAN(s.Res, r, vp.City)
				if err != nil {
					return 0
				}
				return wanKm * geo.FiberRTTMsPerKm
			},
		}
	}
	ts.prem = mkTarget("premium", premRIB)
	ts.std = mkTarget("standard", stdRIB)

	// Paper's vantage-point filter (§3.3): the Premium route enters the
	// provider directly from the VP's AS; the Standard route crosses at
	// least one intermediate AS.
	for _, vp := range ts.plat.VantagePoints() {
		pr, sr := premRIB.Best(vp.AS), stdRIB.Best(vp.AS)
		if !pr.Valid || !sr.Valid {
			continue
		}
		if pr.PathLen() != 2 || sr.PathLen() < 3 {
			continue
		}
		if _, err := ts.prem.Route(vp); err != nil {
			continue
		}
		if _, err := ts.std.Route(vp); err != nil {
			continue
		}
		ts.vps = append(ts.vps, vp)
	}
	if len(ts.vps) == 0 {
		return nil, fmt.Errorf("core: no vantage point passes the tier filter")
	}
	s.tier = ts
	return ts, nil
}

// tierCampaignDays is the length of the measurement campaign. The paper
// ran 10 months of probing; on the deterministic simulator additional
// identical days add no information, so the campaign is time-compressed
// (documented in DESIGN.md).
const tierCampaignDays = 12

// Figure5 reproduces the paper's Figure 5: per-country median of
// (Standard - Premium) ping latency, from filtered vantage points. A
// positive value means the private WAN (Premium) performed better.
func Figure5(s *Scenario) (Result, error) {
	ts, err := s.tiers()
	if err != nil {
		return Result{}, err
	}
	// The campaign fans out per ⟨day, vantage point⟩ on internal/par
	// workers: ping noise is keyed by ⟨vp, target, time⟩ so each probe's
	// value is independent of issue order, each worker measures through a
	// platform view over its own Sim clone, and the per-VP diff lists are
	// folded per country in campaign order — the same Add sequence as the
	// serial loop, so the table is bit-identical at any worker count.
	rounds := []float64{3 * 60, 9 * 60, 15 * 60, 21 * 60} // 4 of the 10 daily rounds
	type job struct {
		day int
		vp  measure.VantagePoint
	}
	var jobs []job
	for day := 0; day < tierCampaignDays; day++ {
		for _, vp := range dailySubset(ts, day) {
			jobs = append(jobs, job{day, vp})
		}
	}
	type partial struct {
		country string
		diffs   []float64
	}
	parts, err := par.MapState(s.workers(), jobs,
		func(int) *measure.Platform { return ts.plat.WithSim(s.Sim.Clone()) },
		func(plat *measure.Platform, _ int, j job) (partial, error) {
			pt := partial{country: s.countryOf(j.vp.City)}
			for _, h := range rounds {
				t := float64(j.day)*24*60 + h
				p1, err1 := plat.Ping(j.vp, ts.prem, t)
				p2, err2 := plat.Ping(j.vp, ts.std, t)
				if err1 != nil || err2 != nil {
					continue
				}
				pt.diffs = append(pt.diffs, p2-p1)
			}
			return pt, nil
		})
	if err != nil {
		return Result{}, err
	}
	perCountry := make(map[string]*stats.Dist)
	for _, pt := range parts {
		for _, diff := range pt.diffs {
			if perCountry[pt.country] == nil {
				perCountry[pt.country] = &stats.Dist{}
			}
			perCountry[pt.country].Add(diff, 1)
		}
	}
	tb := stats.Table{Name: "fig5 per-country Standard-Premium (ms)",
		Columns: []string{"median_diff_ms", "n_pings"}}
	var premBetter, stdBetter, tied int
	for _, c := range sortedKeys(perCountry) {
		d := perCountry[c]
		m := d.Median()
		tb.AddRow(c, m, float64(d.N()))
		switch {
		case m > 10:
			premBetter++
		case m < -10:
			stdBetter++
		default:
			tied++
		}
	}
	sum := stats.Table{Name: "fig5 summary", Columns: []string{"countries"}}
	sum.AddRow("premium_better_gt10ms", float64(premBetter))
	sum.AddRow("standard_better_gt10ms", float64(stdBetter))
	sum.AddRow("within_10ms", float64(tied))
	res := Result{ID: "fig5", Title: "Standard minus Premium median latency per country"}
	res.Tables = append(res.Tables, tb, sum)
	res.Notes = append(res.Notes,
		"paper: most of the Americas and Europe within +/-10ms; Premium better across most of Asia/Oceania; Standard better for India and parts of the Middle East / South America",
		fmt.Sprintf("campaign time-compressed to %d days on the deterministic simulator", tierCampaignDays))
	return res, nil
}

// dailySubset rotates through the filtered VPs deterministically.
func dailySubset(ts *tierState, day int) []measure.VantagePoint {
	n := len(ts.vps)
	take := n / 2
	if take < 1 {
		take = n
	}
	out := make([]measure.VantagePoint, 0, take)
	for i := 0; i < take; i++ {
		out = append(out, ts.vps[(day*take+i*2)%n])
	}
	return out
}

// TableS33 reports the §3.3 in-text traceroute analysis: the fraction of
// vantage points whose traffic enters the provider within 400 km when
// using each tier, and the India east-vs-west case study.
func TableS33(s *Scenario) (Result, error) {
	ts, err := s.tiers()
	if err != nil {
		return Result{}, err
	}
	// One traceroute-pair job per filtered VP on internal/par workers;
	// partials merge in VP order (see Figure5 for the determinism rule).
	type vpPart struct {
		ok       bool
		tr1, tr2 measure.TracerouteResult
		india    bool
		diff     float64
		hasDiff  bool
		premKm   float64
		hasPrem  bool
		stdKm    float64
		hasStd   bool
	}
	parts, perr := par.MapState(s.workers(), ts.vps,
		func(int) *measure.Platform { return ts.plat.WithSim(s.Sim.Clone()) },
		func(plat *measure.Platform, _ int, vp measure.VantagePoint) (vpPart, error) {
			var pt vpPart
			tr1, err1 := plat.Traceroute(vp, ts.prem)
			tr2, err2 := plat.Traceroute(vp, ts.std)
			if err1 != nil || err2 != nil {
				return pt, nil
			}
			pt.ok, pt.tr1, pt.tr2 = true, tr1, tr2
			if s.countryOf(vp.City) == "IN" {
				pt.india = true
				p1, e1 := plat.Ping(vp, ts.prem, 9*60)
				p2, e2 := plat.Ping(vp, ts.std, 9*60)
				if e1 == nil && e2 == nil {
					pt.diff, pt.hasDiff = p2-p1, true
				}
				// Carried distance: premium = public + WAN; standard = full path.
				pr := ts.premRIB.Best(vp.AS)
				if pub, _, wanKm, err := s.Prov.EntryAndWAN(s.Res, pr, vp.City); err == nil {
					pt.premKm, pt.hasPrem = pub.Km+wanKm, true
				}
				sr := ts.stdRIB.Best(vp.AS)
				if pub, _, wanKm, err := s.Prov.EntryAndWAN(s.Res, sr, vp.City); err == nil {
					pt.stdKm, pt.hasStd = pub.Km+wanKm, true
				}
			}
			return pt, nil
		})
	if perr != nil {
		return Result{}, perr
	}
	var premNear, stdNear, premKnown, stdKnown float64
	var indiaDiff stats.Dist
	var indiaPremKm, indiaStdKm stats.Dist
	for _, pt := range parts {
		if !pt.ok {
			continue
		}
		if pt.tr1.IngressKnown {
			premKnown++
			if pt.tr1.IngressDistKm <= 400 {
				premNear++
			}
		}
		if pt.tr2.IngressKnown {
			stdKnown++
			if pt.tr2.IngressDistKm <= 400 {
				stdNear++
			}
		}
		if pt.india {
			if pt.hasDiff {
				indiaDiff.Add(pt.diff, 1)
			}
			if pt.hasPrem {
				indiaPremKm.Add(pt.premKm, 1)
			}
			if pt.hasStd {
				indiaStdKm.Add(pt.stdKm, 1)
			}
		}
	}
	tb := stats.Table{Name: "s3.3 ingress analysis", Columns: []string{"value"}}
	if premKnown > 0 {
		tb.AddRow("premium_frac_ingress_within_400km", premNear/premKnown)
	}
	if stdKnown > 0 {
		tb.AddRow("standard_frac_ingress_within_400km", stdNear/stdKnown)
	}
	tb.AddRow("india_median_std_minus_prem_ms", indiaDiff.Median())
	tb.AddRow("india_median_premium_path_km", indiaPremKm.Median())
	tb.AddRow("india_median_standard_path_km", indiaStdKm.Median())
	res := Result{ID: "t33", Title: "Ingress distances and the India case study"}
	res.Tables = append(res.Tables, tb)
	res.Notes = append(res.Notes,
		"paper: 80% of Premium traceroutes enter the provider within 400km of the VP vs 10% for Standard; for India, BGP routes west via a Tier-1 while the WAN hauls east across the Pacific, so Standard wins")
	return res, nil
}

// TableGoodput reproduces the §4 footnote: 10 MB downloads over the two
// tiers show little goodput difference.
func TableGoodput(s *Scenario) (Result, error) {
	ts, err := s.tiers()
	if err != nil {
		return Result{}, err
	}
	const payload = 10e6
	var premPut, stdPut stats.Dist
	for i, vp := range ts.vps {
		if i%2 != 0 {
			continue
		}
		t := float64(i%24) * 60
		fetch := func(tgt measure.Target, rib *bgp.RIB) (float64, bool) {
			route, err := tgt.Route(vp)
			if err != nil {
				return 0, false
			}
			rtt, err := ts.plat.Ping(vp, tgt, t)
			if err != nil {
				return 0, false
			}
			loss := s.Sim.LossRate(route, vp.Prefix, t)
			ms := rtt + tcp.TransferTimeMs(payload, rtt, loss)
			return tcp.GoodputMbps(payload, ms), true
		}
		if g, ok := fetch(ts.prem, ts.premRIB); ok {
			premPut.Add(g, 1)
		}
		if g, ok := fetch(ts.std, ts.stdRIB); ok {
			stdPut.Add(g, 1)
		}
	}
	tb := stats.Table{Name: "10MB goodput (Mbps)", Columns: []string{"median", "p25", "p75"}}
	tb.AddRow("premium", premPut.Median(), premPut.Quantile(0.25), premPut.Quantile(0.75))
	tb.AddRow("standard", stdPut.Median(), stdPut.Quantile(0.25), stdPut.Quantile(0.75))
	res := Result{ID: "t4g", Title: "Bulk goodput by tier"}
	res.Tables = append(res.Tables, tb)
	res.Notes = append(res.Notes, "paper: 10MB downloads from the two tiers saw little difference")
	return res, nil
}
