package core

import (
	"math"

	"beatbgp/internal/cdn"
	"beatbgp/internal/stats"
)

// Site-outage availability model constants (minutes).
const (
	outageLenMin      = 60.0 // how long a failed site stays down
	dnsDetectMin      = 2.0  // health checks notice and rewrite DNS
	dnsTTLMeanMin     = 5.0  // mean residual cache lifetime at resolvers
	outageSampleEvery = 1    // evaluate every site
)

// SiteOutageStudy quantifies §4's availability claim: "Anycast provides
// resilience against site outages and avoids availability problems that
// can be induced by DNS caching." Every CDN site is failed in turn; the
// clients it was serving lose connectivity until either BGP reconverges
// to another site (anycast) or health detection plus DNS cache expiry
// move them (DNS redirection to a unicast front-end).
func SiteOutageStudy(s *Scenario) (Result, error) {
	preRIB, err := s.CDN.AnycastRIB(nil)
	if err != nil {
		return Result{}, err
	}
	// An LDNS-granularity redirector, as in Figure 4.
	var trainTimes []float64
	for day := 0; day < 2; day++ {
		for _, h := range []float64{3, 10, 15, 21} {
			trainTimes = append(trainTimes, float64(day)*24*60+h*60)
		}
	}
	rd, err := cdn.TrainRedirector(s.CDN, s.Sim, s.DNS, s.Topo.Prefixes, trainTimes, cdn.TrainOpts{})
	if err != nil {
		return Result{}, err
	}

	// One repair chain serves the whole sweep: failing site k+1 repairs
	// from site k's state across the two down-set diffs instead of
	// rebuilding all-pairs per site — bit-identical to ComputeWithout by
	// the RouteRepairer contract.
	walker, err := newRepairWalker(s.Routes, s.CDN.Announcements(nil))
	if err != nil {
		return Result{}, err
	}
	var anyDown, dnsDown stats.Dist // downtime minutes per affected client
	var anyInflate stats.Dist       // anycast post-failover latency inflation
	var anyAffected, dnsAffected, totalWeight float64
	const when = 10 * 60
	for site := range s.CDN.Sites {
		if site%outageSampleEvery != 0 {
			continue
		}
		// Fail every link of the site's AS.
		down := map[int]bool{}
		for _, nb := range s.Topo.Neighbors(s.CDN.Sites[site].AS.ID) {
			down[nb.Link] = true
		}
		postRIB, err := walker.At(down)
		if err != nil {
			return Result{}, err
		}
		for _, p := range s.Topo.Prefixes {
			totalWeight += p.Weight
			pre := preRIB.BestFrom(p.Origin, p.City)
			if !pre.Valid {
				continue
			}
			// Anycast clients of the failed site.
			if sIdx, err := s.CDN.Catchment(p, nil); err == nil && sIdx == site {
				anyAffected += p.Weight
				post := postRIB.BestFrom(p.Origin, p.City)
				conv, ok := s.Cfg.Convergence.Minutes(pre, post)
				if !ok {
					anyDown.Add(outageLenMin, p.Weight)
				} else {
					anyDown.Add(math.Min(conv, outageLenMin), p.Weight)
					preRTT, _, err1 := s.CDN.RTTViaRIB(s.Sim, preRIB, p, when)
					postRTT, _, err2 := s.CDN.RTTViaRIB(s.Sim, postRIB, p, when)
					if err1 == nil && err2 == nil {
						anyInflate.Add(postRTT-preRTT, p.Weight)
					}
				}
			}
			// DNS-redirected clients pinned to the failed site.
			if rd.Decision(p, s.DNS) == site {
				dnsAffected += p.Weight
				dnsDown.Add(math.Min(dnsDetectMin+dnsTTLMeanMin, outageLenMin), p.Weight)
			}
		}
	}
	tb := stats.Table{Name: "site-outage downtime per affected client (minutes)",
		Columns: []string{"mean_downtime_min", "frac_clients_affected"}}
	tb.AddRow("anycast_bgp_failover", anyDown.Mean(), anyAffected/totalWeight)
	tb.AddRow("dns_redirection_ttl", dnsDown.Mean(), dnsAffected/totalWeight)
	sum := stats.Table{Name: "anycast failover latency", Columns: []string{"value"}}
	sum.AddRow("median_inflation_ms", anyInflate.Median())
	sum.AddRow("p90_inflation_ms", anyInflate.Quantile(0.90))
	res := Result{ID: "xdyn", Title: "Site outages: anycast failover vs DNS caching"}
	res.Tables = append(res.Tables, tb, sum)
	res.Notes = append(res.Notes,
		"anycast clients are back after BGP convergence (a minute or two) at a modest latency penalty; DNS-redirected clients stay dark for detection plus cache expiry — §4's resilience trade-off")
	return res, nil
}
