package core

import (
	"context"
	"strings"
	"sync"
	"testing"
)

// deriveMutations are the stage-targeted config edits the equivalence and
// reuse tests sweep: one per rebuildable stage, plus a full reseed.
var deriveMutations = []struct {
	name   string
	exp    string // experiment whose Render() is compared byte-for-byte
	mutate func(*Config)
}{
	{"net_only", "t32", func(c *Config) { c.Net.DisableSharedFate = true }},
	{"provider_only", "t32", func(c *Config) { c.Provider.PeerKeepFraction = 0.5 }},
	{"cdn_only", "t32", func(c *Config) { c.CDN.EyeballPeerProb = 0.9 }},
	{"dns_only", "fig4", func(c *Config) { c.DNS.ISPECSProb = 1 }},
	{"reseed", "t32", func(c *Config) { c.Seed = 99 }},
}

// TestWorldKey pins the checkpoint-keying contract: the key is a stable
// pure function of the normalized config, changes with anything that
// changes the built world (a stage knob, the seed), and ignores the
// operational knobs (Workers) that cannot change what is computed.
func TestWorldKey(t *testing.T) {
	base := smallConfig(42)
	k1, err := WorldKey(base)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := WorldKey(base)
	if err != nil {
		t.Fatal(err)
	}
	if k1 == "" || k1 != k2 {
		t.Fatalf("key not stable: %q vs %q", k1, k2)
	}
	workers := base
	workers.Workers = 8
	if kw, _ := WorldKey(workers); kw != k1 {
		t.Fatalf("worker budget changed the world key: %q vs %q", kw, k1)
	}
	for _, m := range deriveMutations {
		mut := smallConfig(42)
		m.mutate(&mut)
		if km, err := WorldKey(mut); err != nil {
			t.Fatalf("%s: %v", m.name, err)
		} else if km == k1 {
			t.Errorf("%s: mutation did not change the world key", m.name)
		}
	}
	bad := base
	bad.Workload.Days = -1
	if _, err := WorldKey(bad); err == nil {
		t.Fatal("invalid config produced a key")
	}
}

// TestDeriveEquivalence is the build graph's determinism contract: for
// every stage-targeted mutation, Derive must produce byte-identical
// experiment output to a fresh NewScenario on the same mutated config.
func TestDeriveEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("builds many worlds")
	}
	for _, seed := range []uint64{42, 7} {
		base := scenario(t, seed)
		for _, m := range deriveMutations {
			derived, err := base.Derive(m.mutate)
			if err != nil {
				t.Fatalf("seed %d %s: derive: %v", seed, m.name, err)
			}
			cfg := smallConfig(seed)
			m.mutate(&cfg)
			fresh, err := NewScenario(cfg)
			if err != nil {
				t.Fatalf("seed %d %s: fresh build: %v", seed, m.name, err)
			}
			got, err := RunByID(derived, m.exp)
			if err != nil {
				t.Fatalf("seed %d %s: run derived: %v", seed, m.name, err)
			}
			want, err := RunByID(fresh, m.exp)
			if err != nil {
				t.Fatalf("seed %d %s: run fresh: %v", seed, m.name, err)
			}
			if got.Render() != want.Render() {
				t.Errorf("seed %d %s: derived %s differs from fresh build:\nderived:\n%s\nfresh:\n%s",
					seed, m.name, m.exp, got.Render(), want.Render())
			}
		}
	}
}

// TestDeriveEquivalenceWorkers pins the contract at different worker
// counts: a derived world's parallel-sweep output matches a fresh
// sequential build byte-for-byte.
func TestDeriveEquivalenceWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("builds several worlds and replays traces")
	}
	fcfg := smallConfig(42)
	fcfg.Workers = 1
	fcfg.Net.DisableSharedFate = true
	fresh, err := NewScenario(fcfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := RunByID(fresh, "t311")
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{1, 8} {
		cfg := smallConfig(42)
		cfg.Workers = w
		base, err := NewScenario(cfg)
		if err != nil {
			t.Fatal(err)
		}
		derived, err := base.Derive(func(c *Config) { c.Net.DisableSharedFate = true })
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunByID(derived, "t311")
		if err != nil {
			t.Fatal(err)
		}
		if got.Render() != want.Render() {
			t.Errorf("workers=%d: derived t311 differs from fresh workers=1 build", w)
		}
	}
}

// stageReused reports whether the named stage was reused in the report.
func stageReused(t *testing.T, r BuildReport, stage string) bool {
	t.Helper()
	for _, st := range r.Stages {
		if st.Stage == stage {
			return st.Reused
		}
	}
	t.Fatalf("stage %s missing from report", stage)
	return false
}

func TestDeriveArtifactReuse(t *testing.T) {
	base := scenario(t, 42)
	if r := base.BuildReport(); r.Rebuilt != 8 || r.Reused != 0 || len(r.Stages) != 8 {
		t.Fatalf("fresh build report: rebuilt=%d reused=%d stages=%d, want 8/0/8",
			r.Rebuilt, r.Reused, len(r.Stages))
	}

	// Net-only: every immutable artifact is shared by pointer; only the
	// mutable sim and generator are fresh.
	netOnly, err := base.Derive(func(c *Config) { c.Net.DisableSharedFate = true })
	if err != nil {
		t.Fatal(err)
	}
	if netOnly.Topo != base.Topo || netOnly.Prov != base.Prov || netOnly.CDN != base.CDN ||
		netOnly.DNS != base.DNS || netOnly.Oracle != base.Oracle || netOnly.Res != base.Res {
		t.Error("net-only derive must share Topo/Prov/CDN/DNS/Oracle/Res by pointer")
	}
	if netOnly.Sim == base.Sim || netOnly.Gen == base.Gen {
		t.Error("net-only derive must rebuild the mutable Sim and Gen")
	}
	if r := netOnly.BuildReport(); r.Reused != 6 || r.Rebuilt != 2 {
		t.Errorf("net-only report: reused=%d rebuilt=%d, want 6/2", r.Reused, r.Rebuilt)
	}

	// CDN-only: the provider and DNS artifacts survive; the world topology
	// is re-extended from the frozen provider snapshot (the CDN stage adds
	// its site ASes to the topology, so the final Topo pointer is new even
	// though the topology and provider *stages* are reused).
	cdnOnly, err := base.Derive(func(c *Config) { c.CDN.EyeballPeerProb = 0.9 })
	if err != nil {
		t.Fatal(err)
	}
	if cdnOnly.Prov != base.Prov || cdnOnly.DNS != base.DNS {
		t.Error("cdn-only derive must share Prov and DNS by pointer")
	}
	if cdnOnly.Topo == base.Topo || cdnOnly.CDN == base.CDN {
		t.Error("cdn-only derive must rebuild the CDN and the world topology it extends")
	}
	r := cdnOnly.BuildReport()
	for _, stage := range []string{StageTopology, StageProvider, StageDNS} {
		if !stageReused(t, r, stage) {
			t.Errorf("cdn-only derive: stage %s should be reused", stage)
		}
	}
	for _, stage := range []string{StageCDN, StageOracle, StageResolver, StageSim, StageGen} {
		if stageReused(t, r, stage) {
			t.Errorf("cdn-only derive: stage %s should be rebuilt", stage)
		}
	}

	// No mutation: the whole immutable world is shared; only fresh mutable
	// state comes back (the xdiv twin-sim pattern).
	twin, err := base.Derive(nil)
	if err != nil {
		t.Fatal(err)
	}
	if twin.Topo != base.Topo || twin.Oracle != base.Oracle {
		t.Error("nil-mutation derive must share the immutable world")
	}
	if twin.Sim == base.Sim {
		t.Error("nil-mutation derive must still build a fresh Sim")
	}

	// A full reseed invalidates every key.
	reseed, err := base.Derive(func(c *Config) { c.Seed = 99 })
	if err != nil {
		t.Fatal(err)
	}
	if r := reseed.BuildReport(); r.Reused != 0 {
		t.Errorf("reseed report: reused=%d, want 0", r.Reused)
	}
}

// TestDeriveReseedsPinnedStage checks the centralized seed derivation: a
// stage seed the caller pinned explicitly is held fixed (and its artifact
// reused) when Config.Seed changes, while unpinned stages reseed.
func TestDeriveReseedsPinnedStage(t *testing.T) {
	cfg := smallConfig(42)
	cfg.Topology.Seed = 1234
	base, err := NewScenario(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d, err := base.Derive(func(c *Config) { c.Seed = 7 })
	if err != nil {
		t.Fatal(err)
	}
	if !stageReused(t, d.BuildReport(), StageTopology) {
		t.Error("pinned Topology.Seed: topology stage should be reused across a Seed change")
	}
	if stageReused(t, d.BuildReport(), StageProvider) {
		t.Error("unpinned Provider.Seed: provider stage should reseed and rebuild")
	}
	if got, want := d.Cfg.Provider.Seed, uint64(7+1); got != want {
		t.Errorf("derived Provider.Seed = %d, want %d", got, want)
	}
	if got, want := d.Cfg.Topology.Seed, uint64(1234); got != want {
		t.Errorf("derived Topology.Seed = %d, want %d", got, want)
	}
}

// TestConcurrentDerivedScenarios exercises two scenarios sharing a
// topology (and CDN, oracle, resolver) from concurrent goroutines; run
// under -race this guards the artifact-sharing safety claim.
func TestConcurrentDerivedScenarios(t *testing.T) {
	base := scenario(t, 42)
	derived, err := base.Derive(func(c *Config) { c.Net.DisableSharedFate = true })
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for _, s := range []*Scenario{base, derived} {
		wg.Add(1)
		go func(s *Scenario) {
			defer wg.Done()
			// fig3 drives the shared CDN's lazily cached anycast RIB.
			if _, err := RunByID(s, "fig3"); err != nil {
				t.Error(err)
			}
		}(s)
	}
	wg.Wait()
}

func TestDeriveContextCancelled(t *testing.T) {
	base := scenario(t, 42)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := base.DeriveContext(ctx, nil); err == nil {
		t.Error("DeriveContext with cancelled context should fail")
	}
	if _, err := NewScenarioContext(ctx, smallConfig(42)); err == nil {
		t.Error("NewScenarioContext with cancelled context should fail")
	}
}

func TestDeriveRejectsInvalidMutation(t *testing.T) {
	base := scenario(t, 42)
	if _, err := base.Derive(func(c *Config) { c.DNS.ISPECSProb = 2 }); err == nil {
		t.Error("Derive should validate the mutated config")
	}
}

func TestBuildReportRender(t *testing.T) {
	base := scenario(t, 42)
	out := base.BuildReport().Render()
	for _, stage := range []string{StageTopology, StageProvider, StageCDN, StageDNS,
		StageOracle, StageResolver, StageSim, StageGen} {
		if !strings.Contains(out, stage) {
			t.Errorf("report render missing stage %s:\n%s", stage, out)
		}
	}
	if !strings.Contains(out, "8 stage(s) rebuilt") {
		t.Errorf("report render missing summary line:\n%s", out)
	}
}

// TestStageKeyDeterminism guards the content-key hasher: identical
// configs key identically (map iteration order must not leak in), and
// any sub-config change must move the key.
func TestStageKeyDeterminism(t *testing.T) {
	cfg := smallConfig(42)
	cfg.setDefaults()
	a, b := computeKeys(cfg), computeKeys(cfg)
	if a != b {
		t.Fatalf("same config keyed differently: %+v vs %+v", a, b)
	}
	mut := cfg
	mut.CDN.EyeballPeerProb = 0.9
	c := computeKeys(mut)
	if c.cdn == a.cdn {
		t.Error("CDN config change did not move the cdn stage key")
	}
	if c.topo != a.topo || c.prov != a.prov || c.dns != a.dns {
		t.Error("CDN config change moved an upstream/sibling stage key")
	}
	if c.oracle == a.oracle || c.sim == a.sim || c.gen == a.gen {
		t.Error("CDN config change did not cascade to downstream stage keys")
	}
}
