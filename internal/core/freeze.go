package core

import (
	"beatbgp/internal/bgp"
	"beatbgp/internal/cdn"
	"beatbgp/internal/delta"
	"beatbgp/internal/dnsmap"
	"beatbgp/internal/netpath"
	"beatbgp/internal/netsim"
	"beatbgp/internal/provider"
	"beatbgp/internal/session"
	"beatbgp/internal/topology"
)

// World is a frozen, concurrently-queryable view of a built Scenario:
// the immutable artifacts of the build graph (topology, provider, CDN,
// DNS map, oracle, resolver, route engine) shared by pointer, plus the
// fault-dynamics pipeline — the session replay installed as the Sim's
// fault overlay and the compiled epoch sequence installed on both the
// Sim and the CDN's epoch-keyed caches. Key is the build graph's
// content key, so two worlds with equal keys answer every query
// byte-identically (the harness checkpoints on the same invariant).
//
// A World is the serving layer's handle (internal/serve): everything
// reachable from it is either immutable or guarded, so any number of
// goroutines may query it. What-if mutations must go through scratch
// bgp.RouteRepairer chains (bgp.StartRepair against Routes), never
// through the shared caches.
type World struct {
	Key string
	Cfg Config

	Topo   *topology.Topo
	Prov   *provider.Provider
	CDN    *cdn.CDN
	DNS    *dnsmap.Mapping
	Oracle *bgp.Oracle
	Res    *netpath.Resolver
	Routes bgp.Computer

	// Sim is a private simulator over the scenario's config with the
	// session-replay fault overlay and epoch sequence pre-installed —
	// queries are safe from any number of goroutines, and no experiment
	// shares it, so nothing re-installs overlays mid-serve.
	Sim *netsim.Sim

	// Hist is the session replay of the scenario's fault schedule; its
	// compiled delta sequence is Epochs, the timeline every epoch-keyed
	// query (and the serving layer's epoch cursor) walks.
	Hist   *session.History
	Epochs *delta.Sequence
}

// Freeze builds the scenario's fault-dynamics pipeline (once — the
// same lazily-built state the fault studies share), installs the epoch
// sequence on the CDN's epoch caches and on a private Sim, and returns
// the frozen world handle. Call it after the scenario is built and
// before fanning out concurrent queries; calling it twice returns
// equivalent handles over the same shared artifacts.
func (s *Scenario) Freeze() (*World, error) {
	key, err := WorldKey(s.userCfg)
	if err != nil {
		return nil, err
	}
	fe, err := s.faultEpochs()
	if err != nil {
		return nil, err
	}
	sim := netsim.New(s.Topo, s.Cfg.Net)
	sim.SetFaults(fe.hist)
	sim.SetEpochs(fe.seq)
	s.CDN.SetEpochs(fe.seq)
	return &World{
		Key:    key,
		Cfg:    s.Cfg,
		Topo:   s.Topo,
		Prov:   s.Prov,
		CDN:    s.CDN,
		DNS:    s.DNS,
		Oracle: s.Oracle,
		Res:    s.Res,
		Routes: s.Routes,
		Sim:    sim,
		Hist:   fe.hist,
		Epochs: fe.seq,
	}, nil
}
