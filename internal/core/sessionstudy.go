package core

import (
	"sort"

	"beatbgp/internal/faults"
	"beatbgp/internal/par"
	"beatbgp/internal/provider"
	"beatbgp/internal/session"
	"beatbgp/internal/stats"
	"beatbgp/internal/workload"
	"beatbgp/internal/xrand"
)

// detectSetting is one point in the detection-sensitivity sweep: a name
// for the table row and a full session configuration.
type detectSetting struct {
	name string
	cfg  session.Config
}

// detectionSettings spans the practical detection spectrum around the
// scenario's own session config: a sleepy 90 s hold timer, the default
// (36 s, calibrated to the closed-form base term), an aggressive 9 s
// hold, and two BFD points (the common 300 ms × 3 and a datacenter-grade
// 50 ms × 3). Everything else — MRAI, damping — stays at the base
// config, so the sweep isolates detection.
func detectionSettings(base session.Config) []detectSetting {
	slow := base
	slow.HoldSec, slow.KeepaliveSec = 90, 30
	fast := base
	fast.HoldSec, fast.KeepaliveSec = 9, 3
	bfd := base
	bfd.BFD = true
	bfdFast := bfd
	bfdFast.BFDIntervalMs = 50
	return []detectSetting{
		{"hold_90s", slow},
		{"hold_36s_default", base},
		{"hold_9s", fast},
		{"bfd_300ms_x3", bfd},
		{"bfd_50ms_x3", bfdFast},
	}
}

// sessionEventMetrics replays xfaults's part-2 blackhole accounting for
// one session history: per outage event, clients whose preferred route
// died are dark for the emergent downtime (detection + MRAI exploration,
// or the whole fault when the timers never saw it). Shared by the
// detection-sensitivity sweep so every setting is scored by exactly the
// rule xfaults uses for its bgp_session_timers row.
type sessionMetrics struct {
	down       stats.Dist // emergent downtime minutes, volume-weighted
	detectLat  stats.Dist // detection latency per detected (event, link)
	detected   int
	undetected int
}

func sessionEventMetrics(cfg session.Config, tl *faults.Timeline, hist *session.History,
	traces []workload.Trace, traceVol []float64) sessionMetrics {
	var m sessionMetrics
	for _, e := range tl.Events() {
		if e.Kind == faults.CongestionStorm || e.Kind == faults.LDNSStale {
			continue
		}
		downE := make(map[int]bool)
		affected := tl.AffectedLinks(e)
		for _, l := range affected {
			downE[l] = true
		}
		if len(downE) == 0 {
			continue
		}
		for _, l := range affected {
			if lat, ok := hist.DetectionLatencyMin(l, e.Start); ok {
				m.detected++
				m.detectLat.Add(lat, 1)
			} else {
				m.undetected++
			}
		}
		isDown := func(l int) bool { return downE[l] }
		for i, tr := range traces {
			opts := make([]provider.EgressOption, len(tr.Routes))
			for r, ro := range tr.Routes {
				opts[r] = ro.Option
			}
			surviving := provider.SurvivingOptions(opts, isDown)
			if len(surviving) > 0 && surviving[0].Link == opts[0].Link {
				continue // preferred route survived this event
			}
			if len(surviving) == 0 {
				m.down.Add(e.Duration, traceVol[i])
				continue
			}
			m.down.Add(emergentDowntime(cfg, hist, opts[0], isDown, e, surviving[0].Route), traceVol[i])
		}
	}
	return m
}

// DetectionStudy sweeps the failure-detection axis: the same injected
// fault schedule as xfaults, replayed through the session layer once per
// timer setting, from a 90-second hold timer down to 50 ms BFD. The
// sweep runs on internal/par workers (one session replay per setting)
// and is bit-identical at any worker count: each setting's metrics are
// computed independently and the rows land in the fixed settings order.
func DetectionStudy(s *Scenario) (Result, error) {
	traces, err := s.efTraces()
	if err != nil {
		return Result{}, err
	}
	tl, err := egressFaultTimeline(s)
	if err != nil {
		return Result{}, err
	}
	traceVol := make([]float64, len(traces))
	for i, tr := range traces {
		for _, w := range tr.Windows {
			traceVol[i] += w.VolumeBytes
		}
	}
	settings := detectionSettings(s.Cfg.Session)
	metrics, err := par.Map(s.workers(), settings, func(_ int, st detectSetting) (sessionMetrics, error) {
		hist, err := sessionHistory(s, tl, st.cfg)
		if err != nil {
			return sessionMetrics{}, err
		}
		return sessionEventMetrics(st.cfg, tl, hist, traces, traceVol), nil
	})
	if err != nil {
		return Result{}, err
	}

	tb := stats.Table{Name: "blackhole minutes by detection setting",
		Columns: []string{"mean_downtime_min", "p90_downtime_min", "mean_detect_min", "frac_undetected"}}
	for i, st := range settings {
		m := metrics[i]
		tb.AddRow(st.name, distMean(m.down), distQ(m.down, 0.90), distMean(m.detectLat),
			frac(float64(m.undetected), float64(m.detected+m.undetected)))
	}
	res := Result{ID: "xdetect", Title: "Detection sensitivity: hold timers vs BFD under injected faults"}
	res.Tables = append(res.Tables, tb)
	res.Notes = append(res.Notes,
		"detection latency scales with the hold timer (mean ≈ hold − keepalive/2) until BFD decouples it from the keepalive cadence entirely",
		"faster detection shrinks the blackhole's detection term but not its MRAI exploration term — sub-second BFD still leaves a multi-second outage floor, which is §4's argument that beating BGP needs more than better timers")
	return res, nil
}

// Flap-storm model constants. Down spells always exceed the default
// 36-second hold timer, so every flap is detected; gaps are short enough
// that the damping penalty (1000 per flap, 15-minute half-life) crosses
// the 2000 suppress threshold around the third flap.
const (
	flapStormLinks   = 4    // top egress links by traced volume
	flapStormMinN    = 8    // flaps per link: minN + rng.Intn(spread)
	flapStormSpread  = 7    //   → 8..14
	flapStormDownLo  = 0.75 // minutes down per flap (45 s .. 3 min)
	flapStormDownHi  = 3.0
	flapStormGapLo   = 0.5 // minutes up between flaps
	flapStormGapHi   = 5.0
	flapStormStartLo = 60.0 // first flap lands in minute 60..180
)

// flapStormTimeline builds the deterministic storm: the top egress links
// by traced volume each take a burst of short link-down/up cycles, drawn
// from a per-link keyed RNG stream so the schedule is independent of
// link-set enumeration order.
func flapStormTimeline(s *Scenario, traces []workload.Trace, traceVol []float64) (*faults.Timeline, []int, error) {
	linkVol := make(map[int]float64)
	for i, tr := range traces {
		linkVol[tr.Routes[0].Option.Link] += traceVol[i]
	}
	type lv struct {
		link int
		vol  float64
	}
	ranked := make([]lv, 0, len(linkVol))
	for l, v := range linkVol {
		ranked = append(ranked, lv{l, v})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].vol != ranked[j].vol {
			return ranked[i].vol > ranked[j].vol
		}
		return ranked[i].link < ranked[j].link
	})
	n := flapStormLinks
	if n > len(ranked) {
		n = len(ranked)
	}
	var events []faults.Event
	links := make([]int, 0, n)
	for _, r := range ranked[:n] {
		links = append(links, r.link)
		rng := xrand.Derive(s.Cfg.Net.Seed, 0xF1A9, uint64(r.link))
		t := flapStormStartLo + rng.Uniform(0, 2*flapStormStartLo)
		flaps := flapStormMinN + rng.Intn(flapStormSpread)
		for k := 0; k < flaps; k++ {
			d := rng.Uniform(flapStormDownLo, flapStormDownHi)
			events = append(events, faults.Event{Kind: faults.LinkDown, Target: r.link, Start: t, Duration: d})
			t += d + rng.Uniform(flapStormGapLo, flapStormGapHi)
		}
	}
	sort.Ints(links)
	tl, err := faults.New(s.Topo, events)
	if err != nil {
		return nil, nil, err
	}
	return tl, links, nil
}

// FlapStormStudy injects bursts of short link flaps on the provider's
// busiest egress links and measures what route-flap damping does to
// them: each flap is physically brief, but once the penalty crosses the
// suppress threshold the route stays withdrawn long after the link is
// healthy — emergent unreachability the fault schedule never contains.
// Rows compare damping on, damping on with BFD fast detection, and
// damping off, over the identical storm.
func FlapStormStudy(s *Scenario) (Result, error) {
	traces, err := s.efTraces()
	if err != nil {
		return Result{}, err
	}
	traceVol := make([]float64, len(traces))
	for i, tr := range traces {
		for _, w := range tr.Windows {
			traceVol[i] += w.VolumeBytes
		}
	}
	tl, stormLinks, err := flapStormTimeline(s, traces, traceVol)
	if err != nil {
		return Result{}, err
	}

	on := s.Cfg.Session
	on.DisableDamping = false
	onBFD := on
	onBFD.BFD = true
	off := on
	off.DisableDamping = true
	variants := []detectSetting{
		{"damping_on", on},
		{"damping_on_bfd", onBFD},
		{"damping_off", off},
	}
	type stormRow struct {
		flaps                 int
		phys, unusable, supUp float64
	}
	rows, err := par.Map(s.workers(), variants, func(_ int, v detectSetting) (stormRow, error) {
		hist, err := sessionHistory(s, tl, v.cfg)
		if err != nil {
			return stormRow{}, err
		}
		var r stormRow
		for _, l := range stormLinks {
			r.flaps += hist.Flaps(l)
			r.phys += hist.PhysDownMinutes(l)
			r.unusable += hist.UnusableMinutes(l)
			r.supUp += hist.SuppressedWhileUpMinutes(l)
		}
		return r, nil
	})
	if err != nil {
		return Result{}, err
	}

	tb := stats.Table{Name: "flap storm on the busiest egress links",
		Columns: []string{"flaps", "phys_down_min", "unusable_min", "suppressed_while_up_min", "amplification"}}
	for i, v := range variants {
		r := rows[i]
		tb.AddRow(v.name, float64(r.flaps), r.phys, r.unusable, r.supUp, frac(r.unusable, r.phys))
	}
	scope := stats.Table{Name: "storm scope", Columns: []string{"value"}}
	scope.AddRow("storm_links", float64(len(stormLinks)))
	scope.AddRow("storm_events", float64(len(tl.Events())))

	res := Result{ID: "xflap", Title: "Flap storms: route damping and emergent unreachability"}
	res.Tables = append(res.Tables, tb, scope)
	res.Notes = append(res.Notes,
		"with damping on, minutes of physical downtime amplify into a multiple of route-unusable minutes — most of it suppression while the link is healthy",
		"BFD detects each flap faster but cannot reduce the flap count, so the damping penalty — and the suppression window — survives fast detection",
		"turning damping off removes the suppression penalty entirely; the operator's trade is storm-amplified churn against emergent unreachability")
	return res, nil
}
