package core

import (
	"beatbgp/internal/bgp"
	"beatbgp/internal/delta"
	"beatbgp/internal/faults"
	"beatbgp/internal/session"
)

// The epoch pipeline is the core layer's slice of the incremental route
// refactor: the injected fault schedule is drawn once, replayed once
// through the session layer, and compiled once into a delta.Sequence
// (see internal/delta); the studies then carry bgp.RouteRepairer chains
// across the resulting down-set series instead of rebuilding all-pairs
// at every sampled instant. The sequence is a derived build stage —
// StageEpochs in build.go keys it on the sim and dynamics stages — so
// experiment checkpoints invalidate exactly when the schedule or the
// session model changes.

// faultEpochState is the lazily built fault-dynamics pipeline shared by
// xfaults and xdetect: the deterministic egress fault schedule, its
// replay through the session layer under the scenario's session config,
// and the replay compiled into the epoch sequence.
type faultEpochState struct {
	tl   *faults.Timeline
	hist *session.History
	seq  *delta.Sequence
}

// faultEpochs builds (once) the egress fault schedule, session replay,
// and compiled epoch sequence. Concurrent experiments share one build.
func (s *Scenario) faultEpochs() (*faultEpochState, error) {
	s.epochsMu.Lock()
	defer s.epochsMu.Unlock()
	if s.epochs != nil {
		return s.epochs, nil
	}
	tl, err := egressFaultTimeline(s)
	if err != nil {
		return nil, err
	}
	hist, err := sessionHistory(s, tl, s.Cfg.Session)
	if err != nil {
		return nil, err
	}
	seq, err := hist.Deltas(0, faultHorizonMin)
	if err != nil {
		return nil, err
	}
	s.epochs = &faultEpochState{tl: tl, hist: hist, seq: seq}
	return s.epochs, nil
}

// repairWalker carries one announcement set's routing state across an
// ordered series of down sets, repairing only the difference between
// consecutive sets instead of rebuilding all-pairs at each one. The
// results are bit-identical to ComputeWithout at every step — that is
// the bgp.RouteRepairer contract; the walker only sequences the deltas.
type repairWalker struct {
	rep  bgp.RouteRepairer
	down map[int]bool
}

// newRepairWalker starts a repair chain for the announcement set at the
// all-links-up state.
func newRepairWalker(c bgp.Computer, anns []bgp.Announcement) (*repairWalker, error) {
	rep, err := bgp.StartRepair(c, anns)
	if err != nil {
		return nil, err
	}
	return &repairWalker{rep: rep}, nil
}

// At repairs the chain to the given down set — which need not relate to
// the previous one; the walker diffs them — and returns the RIB there,
// exactly ComputeWithout(anns, down).
func (w *repairWalker) At(down map[int]bool) (*bgp.RIB, error) {
	if err := w.rep.Apply(delta.Diff(w.down, down)); err != nil {
		return nil, err
	}
	next := make(map[int]bool, len(down))
	for l, v := range down {
		if v {
			next[l] = true
		}
	}
	w.down = next
	return w.rep.RIB()
}
