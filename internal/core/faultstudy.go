package core

import (
	"math"
	"sort"

	"beatbgp/internal/bgp"
	"beatbgp/internal/cdn"
	"beatbgp/internal/faults"
	"beatbgp/internal/netsim"
	"beatbgp/internal/par"
	"beatbgp/internal/provider"
	"beatbgp/internal/session"
	"beatbgp/internal/stats"
)

// Fault-study model constants (minutes / milliseconds).
const (
	faultHorizonMin = 10 * 24 * 60.0 // the §3.1 trace window
	efDetectMin     = 1.0            // Edge-Fabric detection + override latency
	faultDegradeMs  = 5.0            // degradation threshold for correlation
)

// FaultStudy injects a deterministic schedule of cable cuts, session
// resets, AS outages, and congestion storms on top of the stochastic world
// and asks the paper's §3.1.1 question under duress: when an injected
// fault degrades the BGP-preferred egress route, do the alternates degrade
// with it? It also replays each outage through bgp.ConvergenceMinutes to
// measure blackhole windows, compares plain-BGP reconvergence against an
// Edge-Fabric-style controller that shifts to a surviving option, and runs
// the capacity controller during faults to price the spillover.
func FaultStudy(s *Scenario) (Result, error) {
	traces, err := s.efTraces()
	if err != nil {
		return Result{}, err
	}
	// The fault pipeline — schedule, session replay, compiled epoch
	// sequence — is built once per scenario (see faultEpochs). The replay
	// gives the faulty twin the EMERGENT overlay — a link is unusable
	// while physically down or while its route is withdrawn/suppressed —
	// rather than instantaneous fault edges; the epoch sequence indexes
	// the same truth for per-epoch caching.
	fe, err := s.faultEpochs()
	if err != nil {
		return Result{}, err
	}
	tl, hist := fe.tl, fe.hist
	// Twin simulators over identical stochastic draws; only one carries the
	// injected faults, so their difference isolates the injection.
	clean := netsim.New(s.Topo, s.Cfg.Net)
	faulty := netsim.New(s.Topo, s.Cfg.Net)
	faulty.SetFaults(hist)
	faulty.SetEpochs(fe.seq)

	traceVol := make([]float64, len(traces))
	for i, tr := range traces {
		for _, w := range tr.Windows {
			traceVol[i] += w.VolumeBytes
		}
	}

	// Part 1 — shared-fate correlation at fault midpoints: does the best
	// alternate degrade when the preferred route does?
	//
	// The sweep fans out per fault event on internal/par workers: each
	// worker carries its own twin ⟨clean, faulty⟩ Sim clones (identical
	// stochastic draws — netsim processes are keyed by entity, never by
	// query order), and each event's per-trace records are replayed into
	// the accumulators in ⟨event, trace⟩ order — exactly the serial
	// sequence, so the study is bit-identical at any worker count.
	// Parts 2 and 3 stay serial: AssignUnderCapacity iterates greedily
	// over the full demand set, a genuinely sequential dependency.
	type twin struct{ clean, faulty *netsim.Sim }
	type rec struct{ vol, d, alt float64 } // degraded entries; alt is +Inf when no alternate survives
	type evPart struct {
		sampled []float64 // traceVol of sampled traces, in trace order
		recs    []rec
	}
	parts, perr := par.MapState(s.workers(), tl.Events(),
		func(int) twin { return twin{clean.Clone(), faulty.Clone()} },
		func(tw twin, _ int, e faults.Event) (evPart, error) {
			var pt evPart
			tm := e.Start + e.Duration/2
			for i, tr := range traces {
				pref := tr.Routes[0]
				if !tw.faulty.RouteUp(pref.Phys, tm) {
					continue // unavailable, not slow — part 2's business
				}
				pt.sampled = append(pt.sampled, traceVol[i])
				d := tw.faulty.RouteRTTMs(pref.Phys, tr.Prefix, tm) -
					tw.clean.RouteRTTMs(pref.Phys, tr.Prefix, tm)
				bestAlt := math.Inf(1)
				for _, ro := range tr.Routes[1:] {
					if !tw.faulty.RouteUp(ro.Phys, tm) {
						continue
					}
					ad := tw.faulty.RouteRTTMs(ro.Phys, tr.Prefix, tm) -
						tw.clean.RouteRTTMs(ro.Phys, tr.Prefix, tm)
					if ad < bestAlt {
						bestAlt = ad
					}
				}
				if d < faultDegradeMs {
					continue
				}
				pt.recs = append(pt.recs, rec{traceVol[i], d, bestAlt})
			}
			return pt, nil
		})
	if perr != nil {
		return Result{}, perr
	}
	var prefDeg, altDeg stats.Dist
	var sampledVol, degradedVol, bothDegradedVol float64
	for _, pt := range parts {
		for _, v := range pt.sampled {
			sampledVol += v
		}
		for _, r := range pt.recs {
			degradedVol += r.vol
			prefDeg.Add(r.d, r.vol)
			if !math.IsInf(r.alt, 1) {
				altDeg.Add(r.alt, r.vol)
				if r.alt >= faultDegradeMs {
					bothDegradedVol += r.vol
				}
			}
		}
	}

	// Part 2 — blackhole windows: for every outage-class event, clients on
	// a killed route are dark until BGP reconverges to a surviving option
	// (or for the whole fault when nothing survives); the Edge-Fabric
	// override shifts them after a detection interval instead.
	// Part 3 — capacity spillover: rerun the capacity controller with the
	// dead links removed and price the detours it is forced into.
	meanDemand := make(map[int]float64)
	for i, tr := range traces {
		meanDemand[tr.Routes[0].Option.Link] += traceVol[i] / float64(len(tr.Windows))
	}
	caps, err := s.Prov.Provision(s.Cfg.Seed, meanDemand, 1.1, 3.0)
	if err != nil {
		return Result{}, err
	}

	var bgpDown, sessDown, efDown, spillPenalty stats.Dist
	var detectLat, baseDelta stats.Dist
	var detectedEvents, undetectedEvents int
	var affectedVol, eventVol, shiftedVol, spillVol float64
	for _, e := range tl.Events() {
		if e.Kind == faults.CongestionStorm || e.Kind == faults.LDNSStale {
			continue
		}
		downE := make(map[int]bool)
		affected := tl.AffectedLinks(e)
		for _, l := range affected {
			downE[l] = true
		}
		if len(downE) == 0 {
			continue
		}
		// Per-(event, link) detection accounting for the differential
		// comparison against the closed form's base term.
		for _, l := range affected {
			if lat, ok := hist.DetectionLatencyMin(l, e.Start); ok {
				detectedEvents++
				detectLat.Add(lat, 1)
				baseDelta.Add(math.Abs(lat-s.Cfg.Convergence.BaseMin), 1)
			} else {
				undetectedEvents++
			}
		}
		isDown := func(l int) bool { return downE[l] }
		demands := make([]provider.Demand, len(traces))
		for i, tr := range traces {
			opts := make([]provider.EgressOption, len(tr.Routes))
			for r, ro := range tr.Routes {
				opts[r] = ro.Option
			}
			surviving := provider.SurvivingOptions(opts, isDown)
			links := make([]int, len(surviving))
			for r, o := range surviving {
				links[r] = o.Link
			}
			mean := traceVol[i] / float64(len(tr.Windows))
			demands[i] = provider.Demand{Volume: mean, Links: links}
			spillVol += mean
			eventVol += traceVol[i]

			prefAlive := len(surviving) > 0 && surviving[0].Link == opts[0].Link
			if prefAlive {
				continue
			}
			affectedVol += traceVol[i]
			if len(surviving) == 0 {
				bgpDown.Add(e.Duration, traceVol[i])
				sessDown.Add(e.Duration, traceVol[i])
				efDown.Add(e.Duration, traceVol[i])
				continue
			}
			conv, ok := s.Cfg.Convergence.Minutes(opts[0].Route, surviving[0].Route)
			if !ok {
				conv = e.Duration
			}
			bgpDown.Add(math.Min(conv, e.Duration), traceVol[i])
			sessDown.Add(emergentDowntime(s.Cfg.Session, hist, opts[0], isDown, e, surviving[0].Route), traceVol[i])
			efDown.Add(math.Min(efDetectMin, e.Duration), traceVol[i])
		}
		choice, _ := provider.AssignUnderCapacity(demands, caps)
		load := make(map[int]float64)
		for k, d := range demands {
			if choice[k] < len(d.Links) && len(d.Links) > 0 {
				load[d.Links[choice[k]]] += d.Volume
			}
		}
		for k, d := range demands {
			if len(d.Links) == 0 {
				continue
			}
			chosen := d.Links[choice[k]]
			if chosen != traces[k].Routes[0].Option.Link {
				shiftedVol += d.Volume
			}
			if cap, ok := caps.PerLink[chosen]; ok && cap > 0 {
				if pen := provider.OverloadPenaltyMs(load[chosen] / cap); pen > 0 {
					spillPenalty.Add(pen, d.Volume)
				}
			}
		}
	}

	corr := stats.Table{Name: "degradation correlation under injected faults", Columns: []string{"value"}}
	corr.AddRow("frac_volume_pref_degraded", frac(degradedVol, sampledVol))
	corr.AddRow("frac_degraded_where_best_alt_degraded_too", frac(bothDegradedVol, degradedVol))
	corr.AddRow("median_pref_degradation_ms", distMedian(prefDeg))
	corr.AddRow("median_best_alt_degradation_ms", distMedian(altDeg))

	bh := stats.Table{Name: "blackhole minutes per outage per affected client-route",
		Columns: []string{"mean_downtime_min", "p90_downtime_min", "frac_volume_affected"}}
	bh.AddRow("bgp_convergence", distMean(bgpDown), distQ(bgpDown, 0.90), frac(affectedVol, eventVol))
	bh.AddRow("bgp_session_timers", distMean(sessDown), distQ(sessDown, 0.90), frac(affectedVol, eventVol))
	bh.AddRow("edge_fabric_override", distMean(efDown), distQ(efDown, 0.90), frac(affectedVol, eventVol))

	diff := stats.Table{Name: "session layer vs closed-form reference", Columns: []string{"value"}}
	diff.AddRow("mean_detect_latency_min", distMean(detectLat))
	diff.AddRow("mean_abs_base_delta_min", distMean(baseDelta))
	diff.AddRow("frac_event_links_undetected", frac(float64(undetectedEvents), float64(detectedEvents+undetectedEvents)))

	sp := stats.Table{Name: "capacity spillover during outages", Columns: []string{"value"}}
	sp.AddRow("frac_volume_shifted_off_preferred", frac(shiftedVol, spillVol))
	sp.AddRow("frac_volume_queueing", frac(spillPenalty.TotalWeight(), spillVol))
	sp.AddRow("queue_penalty_p90_ms", distQ(spillPenalty, 0.90))

	res := Result{ID: "xfaults", Title: "Injected faults: degradation correlation and blackhole windows"}
	res.Tables = append(res.Tables, corr, bh, diff, sp)
	res.Notes = append(res.Notes,
		"storms and cuts hit shared infrastructure, so when the preferred route degrades the best alternate usually degrades too — §3.1.1 survives fault injection",
		"an egress controller turns multi-minute convergence blackholes into a one-minute detection blip, but pays for it in capacity spillover",
		"bgp_session_timers makes detection and exploration emergent (hold timer + MRAI): it tracks the closed form within the keepalive-phase tolerance, but is NOT capped at the fault duration — restoring a route costs a reconnect handshake and an MRAI after the link heals")
	return res, nil
}

// egressFaultTimeline draws the deterministic fault schedule aimed at the
// provider's own egress links — faults on links no trace crosses teach
// nothing. (PeerLinks walks a map; sort so the candidate pool, and
// therefore the drawn schedule, is stable.) Shared by xfaults and the
// detection-sensitivity study so both ask their question on the same
// schedule.
func egressFaultTimeline(s *Scenario) (*faults.Timeline, error) {
	var egressLinks []int
	for _, class := range []provider.RouteClass{
		provider.ClassPNI, provider.ClassPublicPeer, provider.ClassTransit,
	} {
		egressLinks = append(egressLinks, s.Prov.PeerLinks(class)...)
	}
	sort.Ints(egressLinks)
	return faults.Generate(s.Topo, faults.GenConfig{
		Seed:           s.Cfg.Seed ^ 0x0F17,
		HorizonMinutes: faultHorizonMin,
		CableCuts:      2,
		LinkResets:     25,
		ASOutages:      2,
		Storms:         8,
		CandidateLinks: egressLinks,
	})
}

// sessionHistory replays a fault timeline through the session layer. The
// replay seed derives from the sim stage's seed (not Config.Seed, which
// is deliberately absent from the world key) so equal world keys imply
// equal histories.
func sessionHistory(s *Scenario, tl *faults.Timeline, cfg session.Config) (*session.History, error) {
	return session.Replay(tl, nil, cfg, s.Cfg.Net.Seed^0x5E55, faultHorizonMin)
}

// deadRouteLink returns the first faulted link along the preferred
// option's route: the egress peering itself, or a downstream hop whose
// failure killed the route remotely. That is the session adjacent to the
// failure — the one whose timers notice — and remote propagation back to
// the provider is what the MRAI exploration term already prices.
func deadRouteLink(pref provider.EgressOption, isDown func(int) bool) (int, bool) {
	if isDown(pref.Link) {
		return pref.Link, true
	}
	for _, l := range pref.Route.Links {
		if isDown(l) {
			return l, true
		}
	}
	return 0, false
}

// emergentDowntime is the session layer's answer to "how long is a client
// on the killed preferred route dark?": detection latency at the session
// adjacent to the failure, plus MRAI-paced exploration to the surviving
// route, or — whichever comes first — the original route usable again. A
// fault the timers never saw blackholes the client for the whole outage
// with no reroute at all.
func emergentDowntime(cfg session.Config, hist *session.History, pref provider.EgressOption,
	isDown func(int) bool, e faults.Event, newRoute bgp.Route) float64 {
	link, ok := deadRouteLink(pref, isDown)
	if !ok {
		return e.Duration
	}
	lat, detected := hist.DetectionLatencyMin(link, e.Start)
	if !detected {
		return e.Duration
	}
	down := lat + cfg.ExplorationMinutes(bgp.ExplorationHops(newRoute))
	if o, ok := hist.OutageAt(link, e.Start); ok {
		if restored := o.UsableAt - e.Start; restored > 0 && restored < down {
			down = restored
		}
	}
	return down
}

// frac is a/b guarding the empty denominator.
func frac(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func distMean(d stats.Dist) float64 {
	if d.N() == 0 {
		return 0
	}
	return d.Mean()
}

func distMedian(d stats.Dist) float64 {
	if d.N() == 0 {
		return 0
	}
	return d.Median()
}

func distQ(d stats.Dist, q float64) float64 {
	if d.N() == 0 {
		return 0
	}
	return d.Quantile(q)
}

// AnycastFaultAvailability drives §4's availability comparison with the
// injected-fault engine: CDN sites are taken out by AS outages and cable
// cuts at their landing cities, and clients recover by anycast
// reconvergence or by DNS health-detection plus cache expiry. Planned
// events exercise the graceful path — the operator drains the site
// (withdraws its anycast announcement, repoints DNS) before the fault
// lands, so nobody goes dark — and LDNS-staleness windows show the
// DNS-redirection failure mode where the map cannot be rewritten at all.
func AnycastFaultAvailability(s *Scenario) (Result, error) {
	preRIB, err := s.CDN.AnycastRIB(nil)
	if err != nil {
		return Result{}, err
	}
	// Fault schedule aimed at the CDN: site ASes and the cable segments
	// landing at site cities.
	siteASes := make([]int, len(s.CDN.Sites))
	var siteEdges []int
	seenEdge := make(map[int]bool)
	for i, site := range s.CDN.Sites {
		siteASes[i] = site.AS.ID
		for _, e := range s.Topo.Graph.EdgesAt(site.City) {
			if !seenEdge[e] {
				seenEdge[e] = true
				siteEdges = append(siteEdges, e)
			}
		}
	}
	// Two batches — surprises and announced maintenance — merged into one
	// timeline, so both recovery paths are exercised whatever the seed.
	surprise, err := faults.Generate(s.Topo, faults.GenConfig{
		Seed:            s.Cfg.Seed ^ 0x0A7A,
		HorizonMinutes:  faultHorizonMin,
		ASOutages:       4,
		ASOutageMeanMin: 90,
		CableCuts:       2,
		StaleWindows:    2,
		CandidateASes:   siteASes,
		CandidateEdges:  siteEdges,
	})
	if err != nil {
		return Result{}, err
	}
	planned, err := faults.Generate(s.Topo, faults.GenConfig{
		Seed:            s.Cfg.Seed ^ 0x0A7B,
		HorizonMinutes:  faultHorizonMin,
		ASOutages:       2,
		ASOutageMeanMin: 90,
		CableCuts:       1,
		PlannedFraction: 1,
		CandidateASes:   siteASes,
		CandidateEdges:  siteEdges,
	})
	if err != nil {
		return Result{}, err
	}
	tl, err := faults.New(s.Topo, append(surprise.Events(), planned.Events()...))
	if err != nil {
		return Result{}, err
	}

	// The same LDNS-granularity redirector as xdyn.
	var trainTimes []float64
	for day := 0; day < 2; day++ {
		for _, h := range []float64{3, 10, 15, 21} {
			trainTimes = append(trainTimes, float64(day)*24*60+h*60)
		}
	}
	rd, err := cdn.TrainRedirector(s.CDN, s.Sim, s.DNS, s.Topo.Prefixes, trainTimes, cdn.TrainOpts{})
	if err != nil {
		return Result{}, err
	}

	// One repair chain serves every event: each event's post-fault RIB is
	// repaired from the previous event's state across the down-set diff
	// instead of rebuilt all-pairs — bit-identical to ComputeWithout by
	// the RouteRepairer contract.
	walker, err := newRepairWalker(s.Routes, s.CDN.Announcements(nil))
	if err != nil {
		return Result{}, err
	}
	var anyDown, anyDownPlanned, dnsDown, dnsDownPlanned stats.Dist
	var drainInflate stats.Dist
	var anyAff, anyAffP, dnsAff, dnsAffP, totalWeight float64
	for _, e := range tl.Events() {
		if e.Kind != faults.ASOutage && e.Kind != faults.CableCut {
			continue
		}
		downE := make(map[int]bool)
		for _, l := range tl.AffectedLinks(e) {
			downE[l] = true
		}
		if len(downE) == 0 {
			continue
		}
		postRIB, err := walker.At(downE)
		if err != nil {
			return Result{}, err
		}
		// Sites fully darkened by the event, for DNS pinning and drains.
		var dark []int
		darkSet := make(map[int]bool)
		for i, site := range s.CDN.Sites {
			nbs := s.Topo.Neighbors(site.AS.ID)
			if len(nbs) == 0 {
				continue
			}
			all := true
			for _, nb := range nbs {
				if !downE[nb.Link] {
					all = false
					break
				}
			}
			if all {
				dark = append(dark, i)
				darkSet[i] = true
			}
		}
		var drainRIB *bgp.RIB
		if e.Planned && len(dark) > 0 && len(dark) < len(s.CDN.Sites) {
			if drainRIB, err = s.CDN.AnycastRIB(cdn.Drain(dark...)); err != nil {
				return Result{}, err
			}
		}
		for _, p := range s.Topo.Prefixes {
			totalWeight += p.Weight
			pre := preRIB.BestFrom(p.Origin, p.City)
			if !pre.Valid {
				continue
			}
			hit := false
			for _, l := range pre.Links {
				if downE[l] {
					hit = true
					break
				}
			}
			if hit {
				if e.Planned && drainRIB != nil {
					// Drained ahead of the fault: no downtime, only the
					// latency cost of serving from the fallback site.
					anyAffP += p.Weight
					anyDownPlanned.Add(0, p.Weight)
					preRTT, _, err1 := s.CDN.RTTViaRIB(s.Sim, preRIB, p, e.Start)
					postRTT, _, err2 := s.CDN.RTTViaRIB(s.Sim, drainRIB, p, e.Start)
					if err1 == nil && err2 == nil {
						drainInflate.Add(postRTT-preRTT, p.Weight)
					}
				} else {
					anyAff += p.Weight
					post := postRIB.BestFrom(p.Origin, p.City)
					if conv, ok := s.Cfg.Convergence.Minutes(pre, post); ok {
						anyDown.Add(math.Min(conv, e.Duration), p.Weight)
					} else {
						anyDown.Add(e.Duration, p.Weight)
					}
				}
			}
			if pinned := rd.Decision(p, s.DNS); pinned != cdn.AnycastChoice && darkSet[pinned] {
				switch {
				case e.Planned:
					// DNS maps repointed before the drain window opens.
					dnsAffP += p.Weight
					dnsDownPlanned.Add(0, p.Weight)
				case tl.DNSStale(e.Start):
					// The map cannot be rewritten: dark for the duration.
					dnsAff += p.Weight
					dnsDown.Add(e.Duration, p.Weight)
				default:
					dnsAff += p.Weight
					dnsDown.Add(math.Min(dnsDetectMin+dnsTTLMeanMin, e.Duration), p.Weight)
				}
			}
		}
	}

	tb := stats.Table{Name: "fault-driven downtime per affected client (minutes)",
		Columns: []string{"mean_downtime_min", "p90_downtime_min", "frac_clients_affected"}}
	tb.AddRow("anycast_unplanned", distMean(anyDown), distQ(anyDown, 0.90), frac(anyAff, totalWeight))
	tb.AddRow("anycast_planned_drain", distMean(anyDownPlanned), distQ(anyDownPlanned, 0.90), frac(anyAffP, totalWeight))
	tb.AddRow("dns_unplanned", distMean(dnsDown), distQ(dnsDown, 0.90), frac(dnsAff, totalWeight))
	tb.AddRow("dns_planned_repoint", distMean(dnsDownPlanned), distQ(dnsDownPlanned, 0.90), frac(dnsAffP, totalWeight))
	dr := stats.Table{Name: "planned-drain latency cost", Columns: []string{"value"}}
	dr.AddRow("median_inflation_ms", distMedian(drainInflate))
	dr.AddRow("p90_inflation_ms", distQ(drainInflate, 0.90))

	res := Result{ID: "xavail", Title: "Anycast vs DNS redirection under injected site and cable failures"}
	res.Tables = append(res.Tables, tb, dr)
	res.Notes = append(res.Notes,
		"anycast clients are back after BGP convergence; DNS clients wait out detection plus cache expiry, and a stale-map window stretches that to the whole outage — §4's trade-off, now under an injected schedule",
		"draining a site ahead of planned maintenance makes the fault invisible at a modest latency cost; the graceful path exists for both policies but only if the event is known in advance")
	return res, nil
}
