package core

import (
	"beatbgp/internal/stats"
)

// HybridStudy evaluates §4's suggestion that "performance-aware routing
// or hybrid approaches may be necessary to claim this 'lost'
// performance": plain anycast, the Figure-4 best-predicted redirector,
// and hybrids that override anycast only when the predicted gain clears a
// margin. A good hybrid keeps most of the improvement while shedding the
// did-worse mass.
func HybridStudy(s *Scenario) (Result, error) {
	tb := stats.Table{Name: "serving policy comparison",
		Columns: []string{"frac_improved_gt_1ms", "frac_worse_gt_1ms", "mean_gain_ms"}}
	schemes := []struct {
		label  string
		margin float64
	}{
		{"redirect_margin_0ms", 0},
		{"hybrid_margin_10ms", 10},
		{"hybrid_margin_25ms", 25},
	}
	for _, sc := range schemes {
		rd, _, err := odinRedirector(s, fig4SampleRate, sc.margin)
		if err != nil {
			return Result{}, err
		}
		o, err := evaluateServing(s, rd)
		if err != nil {
			return Result{}, err
		}
		tb.AddRow(sc.label,
			o.improved/o.evaluated, o.worse/o.evaluated, o.med.Mean())
	}
	res := Result{ID: "xhybrid", Title: "Hybrid anycast + DNS redirection"}
	res.Tables = append(res.Tables, tb)
	res.Notes = append(res.Notes,
		"raising the override margin trades a little improvement for fewer regressions; anycast itself is the margin=infinity row (0 improved, 0 worse)")
	return res, nil
}
