// Package core is the paper's contribution as code: the three studies of
// §3 (performance-aware egress at a PoP, anycast vs DNS redirection, and
// private WAN vs public Internet), the in-text statistics around them,
// and the open-question experiments of §3.1.3, §3.2.2, §3.3.2 and §4.
// Every experiment emits stats.Series/stats.Table values that regenerate
// the corresponding figure or table of the paper on the simulated
// substrate.
package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"beatbgp/internal/bgp"
	"beatbgp/internal/cdn"
	"beatbgp/internal/dnsmap"
	"beatbgp/internal/netpath"
	"beatbgp/internal/netsim"
	"beatbgp/internal/par"
	"beatbgp/internal/provider"
	"beatbgp/internal/session"
	"beatbgp/internal/stats"
	"beatbgp/internal/topology"
	"beatbgp/internal/workload"
)

// Config assembles a complete scenario. The zero value (with a seed) is a
// sensible laptop-scale default.
type Config struct {
	Seed     uint64
	Topology topology.GenConfig
	Provider provider.Config
	CDN      cdn.Config
	DNS      dnsmap.Config
	Net      netsim.Config
	Workload workload.Config

	// Convergence tunes the closed-form reference model for BGP
	// reconvergence (base + per-hop minutes). The zero value selects the
	// classic Labovitz-calibrated constants.
	Convergence bgp.ConvergenceModel
	// Session parameterizes the event-driven BGP session layer
	// (internal/session): hold/keepalive timers, MRAI, flap damping, and
	// optional BFD fast detection. The zero value selects defaults
	// calibrated to the Convergence reference model.
	Session session.Config

	// Workers bounds the parallel runtime's pool for the heavy sweeps
	// (route propagation, trace replay, measurement campaigns). Zero or
	// negative means GOMAXPROCS. Results are bit-identical at any worker
	// count — see internal/par and DESIGN.md "Parallel runtime".
	Workers int

	// Engine selects the route-computation engine behind Scenario.Routes
	// and the BGP oracle: "matbgp" (the default; the compact batch engine
	// of internal/matbgp) or "oracle" (the recursive reference engine of
	// internal/bgp, kept as the differential baseline). The engines are
	// bit-identical by contract — FuzzMatbgpVsOracle and the determinism
	// tests enforce it — so, like Workers, Engine never changes what is
	// computed and is deliberately excluded from WorldKey.
	Engine string
}

func (c *Config) setDefaults() {
	if c.Topology.Seed == 0 {
		c.Topology.Seed = c.Seed
	}
	if c.Provider.Seed == 0 {
		c.Provider.Seed = c.Seed + 1
	}
	if c.CDN.Seed == 0 {
		c.CDN.Seed = c.Seed + 2
	}
	if c.DNS.Seed == 0 {
		c.DNS.Seed = c.Seed + 3
	}
	if c.Net.Seed == 0 {
		c.Net.Seed = c.Seed + 4
	}
	if c.Workload.Seed == 0 {
		c.Workload.Seed = c.Seed + 5
	}
	if c.Net.HorizonMinutes == 0 {
		// Cover the 10-day Edge Fabric trace and the (time-compressed)
		// cloud-tier campaign with slack.
		c.Net.HorizonMinutes = 40 * 24 * 60
	}
	// Normalize the dynamics models so equal effective configs hash to
	// equal world keys regardless of which zero fields the caller left.
	c.Convergence = c.Convergence.ApplyDefaults()
	c.Session = c.Session.ApplyDefaults()
	if c.Engine == "" {
		c.Engine = "matbgp"
	}
}

// Validate checks every sub-configuration, rejecting nonsensical
// parameters (negative counts and rates, NaN, probabilities above 1)
// instead of silently building a broken world. Zero values still mean
// "use the default". NewScenario calls this; standalone callers can use
// it to fail fast before an expensive build.
func (c *Config) Validate() error {
	if err := c.Topology.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if err := c.Provider.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if err := c.CDN.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if err := c.DNS.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if err := c.Net.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if err := c.Workload.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if err := c.Convergence.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if err := c.Session.Validate(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	if c.Engine != "" && !validEngine(c.Engine) {
		return fmt.Errorf("core: unknown route engine %q (valid engines: %s)",
			c.Engine, strings.Join(Engines(), ", "))
	}
	return nil
}

// Engines lists the valid Config.Engine names: "matbgp" (the compact
// batch engine, the default) and "oracle" (the recursive reference kept
// as the differential baseline). The slice is fresh per call; callers
// may reorder it.
func Engines() []string { return []string{"matbgp", "oracle"} }

func validEngine(name string) bool {
	for _, e := range Engines() {
		if name == e {
			return true
		}
	}
	return false
}

// Scenario is a fully built simulation world shared by the experiments.
// Scenarios come from NewScenario (every stage built fresh) or from
// Derive on an existing scenario (unchanged stages shared by pointer —
// see build.go for the stage graph and the sharing rules).
type Scenario struct {
	Cfg    Config
	Topo   *topology.Topo
	Prov   *provider.Provider
	CDN    *cdn.CDN
	DNS    *dnsmap.Mapping
	Sim    *netsim.Sim
	Oracle *bgp.Oracle
	Res    *netpath.Resolver
	Gen    *workload.Generator

	// Routes is the route-computation engine selected by Config.Engine,
	// lowered from the finished topology. The Oracle memoizes through it,
	// and experiments that need ad-hoc RIBs (groomed announcements, failed
	// links) call it directly instead of the package-level bgp helpers.
	Routes bgp.Computer

	// userCfg is the caller's config before setDefaults, kept so Derive
	// can re-run seed derivation centrally when Config.Seed changes.
	userCfg Config
	keys    buildKeys
	report  BuildReport

	// Frozen per-stage topology snapshots: the world as generated
	// (baseTopo) and after the provider build (provTopo). Downstream
	// stages clone these before extending, which is what lets Derive
	// rebuild e.g. only the CDN without replaying the provider stage.
	baseTopo *topology.Topo
	provTopo *topology.Topo

	// The lazy caches are built under their own mutexes so concurrent
	// experiments (RunAllContext) block only on the cache they share.
	tracesMu sync.Mutex
	traces   []workload.Trace // lazily built Edge-Fabric trace (see efTraces)
	tierMu   sync.Mutex
	tier     *tierState // lazily built cloud-tier state (see tiers)
	epochsMu sync.Mutex
	epochs   *faultEpochState // lazily built fault epoch pipeline (see faultEpochs)
}

// workers resolves the effective worker count for parallel sweeps.
func (s *Scenario) workers() int { return par.Workers(s.Cfg.Workers) }

// NewScenario builds the world: topology, content provider (with WAN and
// peering), anycast CDN sites, resolver population, and the congestion
// simulator. It runs the full staged build graph (see build.go) with
// nothing to reuse; use Scenario.Derive to build variations cheaply.
func NewScenario(cfg Config) (*Scenario, error) {
	return NewScenarioContext(context.Background(), cfg)
}

// NewScenarioContext is NewScenario honoring context cancellation between
// build stages.
func NewScenarioContext(ctx context.Context, cfg Config) (*Scenario, error) {
	user := cfg
	cfg.setDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return build(ctx, cfg, user, nil)
}

// Result is one experiment's output.
type Result struct {
	ID     string
	Title  string
	Series []stats.Series
	Tables []stats.Table
	Notes  []string
}

// Render formats the result as text.
func (r Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	for _, t := range r.Tables {
		b.WriteString(t.Render())
	}
	for _, s := range r.Series {
		b.WriteString(s.Render())
	}
	return b.String()
}

// Experiment is a runnable reproduction of one paper artifact. Run
// receives a context so studies that build sub-scenarios (the sweep
// studies, via Scenario.DeriveContext) stop at the per-experiment
// deadline instead of finishing the rebuild loop.
type Experiment struct {
	ID    string
	Title string
	Run   func(context.Context, *Scenario) (Result, error)
}

// noCtx adapts an experiment that never blocks on sub-scenario builds:
// its inner sweeps already observe cancellation through the parallel
// runtime, so the context needs no explicit threading.
func noCtx(run func(*Scenario) (Result, error)) func(context.Context, *Scenario) (Result, error) {
	return func(_ context.Context, s *Scenario) (Result, error) { return run(s) }
}

// Experiments returns the full registry in the order of the paper.
func Experiments() []Experiment {
	return []Experiment{
		{"fig1", "CDF of median MinRTT difference, BGP minus best alternate (Figure 1)", noCtx(Figure1)},
		{"fig2", "Peer vs transit and private vs public peering differences (Figure 2)", noCtx(Figure2)},
		{"t31", "§3.1 in-text: improvable traffic share and client-PoP distances", noCtx(TableS31)},
		{"t311", "§3.1.1: degradations vs improvement windows; persistence of winners", noCtx(TableS311)},
		{"fig3", "CCDF of anycast minus best unicast per request (Figure 3)", noCtx(Figure3)},
		{"t32", "§2.3.2 in-text: distance to nth nearest front-end", noCtx(TableS32)},
		{"fig4", "CDF of improvement from LDNS-grade DNS redirection (Figure 4)", noCtx(Figure4)},
		{"fig5", "Per-country median Standard minus Premium latency (Figure 5)", noCtx(Figure5)},
		{"t33", "§3.3 in-text: ingress distance by tier; India case study", noCtx(TableS33)},
		{"t4g", "§4 footnote: 10 MB goodput, Premium vs Standard", noCtx(TableGoodput)},
		{"xpeer", "§3.1.3 open question: reduced peering footprint", PeeringReduction},
		{"xgroom", "§3.2.2 open question: anycast grooming, nature vs nurture", noCtx(GroomingStudy)},
		{"xwan", "§3.3.2 open question: single-WAN behavior of public routes", noCtx(SingleWANStudy)},
		{"xsplit", "§4: split TCP with WAN vs public backend", noCtx(SplitTCPStudy)},
		{"xdiv", "§4: route diversity and peer fragility", RouteDiversityStudy},
		{"xcap", "Edge Fabric's day job: capacity-driven egress overrides", noCtx(CapacityStudy)},
		{"xdyn", "§4: site outages — anycast failover vs DNS caching", noCtx(SiteOutageStudy)},
		{"xfaults", "Injected faults: BGP-vs-alternates degradation and blackholes", noCtx(FaultStudy)},
		{"xavail", "Injected faults: anycast vs DNS-redirection availability", noCtx(AnycastFaultAvailability)},
		{"xdetect", "Detection sensitivity: hold timers vs BFD under injected faults", noCtx(DetectionStudy)},
		{"xflap", "Flap storms: route damping and emergent unreachability", noCtx(FlapStormStudy)},
		{"xhybrid", "§4: hybrid anycast + DNS redirection policies", noCtx(HybridStudy)},
		{"xodin", "Odin-style measurement pipeline: budget vs prediction quality", noCtx(OdinStudy)},
		{"xsites", "§3.2.2: CDN build-out — how many sites are enough?", SiteDensityStudy},
		{"xinfer", "§3.2.2 / ref [26]: predicting catchments from public data", noCtx(CatchmentInference)},
		{"xcorridor", "What-if: the WAN leases the Europe-Asia corridor", CorridorStudy},
		{"xqoe", "§4: the improvable slice in sessions and engagement terms", noCtx(QoEStudy)},
		{"afate", "Ablation: shared-fate congestion disabled", AblationSharedFate},
		{"aecs", "Ablation: oracle-granularity DNS redirection", AblationECS},
		{"apni", "Ablation: PNIs as impairment-prone as public links", AblationPNI},
	}
}

// RunByID runs one experiment by its registry ID.
func RunByID(s *Scenario, id string) (Result, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e.Run(context.Background(), s)
		}
	}
	return Result{}, fmt.Errorf("core: unknown experiment %q", id)
}

// countryOf returns the ISO country of a city.
func (s *Scenario) countryOf(city int) string {
	return s.Topo.Catalog.City(city).Country
}

// sortedCountries returns table rows in stable order.
func sortedKeys[K ~string, V any](m map[K]V) []K {
	out := make([]K, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
