package core

import (
	"context"
	"fmt"
	"math"

	"beatbgp/internal/cdn"
	"beatbgp/internal/geo"
	"beatbgp/internal/netsim"
	"beatbgp/internal/provider"
	"beatbgp/internal/stats"
	"beatbgp/internal/tcp"
)

// PeeringReduction explores §3.1.3: what happens to latency and route
// diversity as the provider drastically reduces its peering footprint?
// Each kept-peer fraction is a Provider-only Derive of the base scenario
// (the shared topology is built once); everything else (seeds, workload)
// is held fixed.
func PeeringReduction(ctx context.Context, s *Scenario) (Result, error) {
	fractions := []float64{1.0, 0.7, 0.4, 0.1}
	tb := stats.Table{Name: "peering reduction sweep", Columns: []string{
		"median_pref_rtt_ms", "frac_prefixes_ge3_routes", "frac_traffic_transit_only", "peer_links"}}
	for _, frac := range fractions {
		sub, err := s.DeriveContext(ctx, func(c *Config) {
			c.Provider.PeerKeepFraction = frac
			c.Workload.Days = 2 // latency statistics settle quickly
		})
		if err != nil {
			return Result{}, err
		}
		traces, err := sub.efTraces()
		if err != nil {
			return Result{}, fmt.Errorf("core: keep=%.1f: %w", frac, err)
		}
		var rtt stats.Dist
		var ge3, transitOnly, totalVol float64
		for _, tr := range traces {
			var vol float64
			for _, w := range tr.Windows {
				rtt.Add(w.MedianMinRTTMs[0], w.VolumeBytes)
				vol += w.VolumeBytes
			}
			totalVol += vol
			if len(tr.Routes) >= 3 {
				ge3 += vol
			}
			allTransit := true
			for _, ro := range tr.Routes {
				if ro.Option.Class != provider.ClassTransit {
					allTransit = false
					break
				}
			}
			if allTransit {
				transitOnly += vol
			}
		}
		peers := float64(len(sub.Prov.PeerLinks(provider.ClassPNI)) +
			len(sub.Prov.PeerLinks(provider.ClassPublicPeer)))
		tb.AddRow(fmt.Sprintf("keep_%.0f%%", frac*100),
			rtt.Median(), ge3/totalVol, transitOnly/totalVol, peers)
	}
	res := Result{ID: "xpeer", Title: "Reduced peering footprint"}
	res.Tables = append(res.Tables, tb)
	res.Notes = append(res.Notes,
		"paper's hypothesis: latency barely moves because less-preferred paths perform like preferred ones, but diversity (and with it resilience and capacity headroom) erodes")
	return res, nil
}

// GroomingStudy explores §3.2.2 (nature vs nurture): how much does
// manual anycast grooming — AS-path prepending at sites that attract
// distant traffic — improve an ungroomed anycast prefix?
func GroomingStudy(s *Scenario) (Result, error) {
	times := []float64{9 * 60, 21 * 60}
	evalCfg := func(g *cdn.Grooming) (median, p95, ge100 float64, err error) {
		rib, err := s.CDN.AnycastRIB(g)
		if err != nil {
			return 0, 0, 0, err
		}
		var diff stats.Dist
		for _, p := range s.Topo.Prefixes {
			// The forwarding walk and path resolution are time-independent:
			// resolve once per prefix, then sample the simulator per time.
			phys, _, err := s.CDN.PhysViaRIB(rib, p)
			if err != nil {
				continue
			}
			nearest := s.CDN.NearestSites(p, nearbyUnicastCount)
			for _, t := range times {
				any := s.Sim.RouteRTTMs(phys, p, t) + s.CDN.ServerMs
				best := math.Inf(1)
				for _, site := range nearest {
					if rtt, err := s.CDN.UnicastRTT(s.Sim, p, site, t); err == nil && rtt < best {
						best = rtt
					}
				}
				if !math.IsInf(best, 1) {
					diff.Add(any-best, p.Weight)
				}
			}
		}
		return diff.Median(), diff.Quantile(0.95), diff.FracAtLeast(100), nil
	}
	score := func(g *cdn.Grooming) (float64, error) {
		_, p95, _, err := evalCfg(g)
		return p95, err
	}

	med0, p950, tail0, err := evalCfg(nil)
	if err != nil {
		return Result{}, err
	}
	// Greedy grooming: two passes over sites, trying 1 and 2 prepends.
	best := &cdn.Grooming{Prepend: map[int]int{}}
	bestScore, err := score(best)
	if err != nil {
		return Result{}, err
	}
	actions := 0
	for round := 0; round < 2; round++ {
		for site := range s.CDN.Sites {
			cur := best.Prepend[site]
			improvedSite := false
			for _, k := range []int{1, 2} {
				trial := &cdn.Grooming{Prepend: map[int]int{}}
				for k2, v := range best.Prepend {
					trial.Prepend[k2] = v
				}
				trial.Prepend[site] = cur + k
				sc, err := score(trial)
				if err != nil {
					return Result{}, err
				}
				if sc < bestScore-0.5 {
					best, bestScore = trial, sc
					improvedSite = true
				}
			}
			if improvedSite {
				actions++
			}
		}
	}
	med1, p951, tail1, err := evalCfg(best)
	if err != nil {
		return Result{}, err
	}
	tb := stats.Table{Name: "anycast grooming (anycast - best unicast, ms)",
		Columns: []string{"median", "p95", "frac_ge_100ms"}}
	tb.AddRow("ungroomed", med0, p950, tail0)
	tb.AddRow("groomed", med1, p951, tail1)
	sum := stats.Table{Name: "grooming actions", Columns: []string{"value"}}
	sum.AddRow("prepend_actions_applied", float64(actions))
	res := Result{ID: "xgroom", Title: "Nature vs nurture: grooming an anycast prefix"}
	res.Tables = append(res.Tables, tb, sum)
	res.Notes = append(res.Notes,
		"grooming at human timescales (prepending at sites that attract distant traffic) trims the catchment tail; the median barely moves — the 'nature' of the footprint sets it")
	return res, nil
}

// SingleWANStudy explores §3.3.2: do public BGP routes perform like the
// private WAN precisely when they spend most of their journey inside one
// large network?
func SingleWANStudy(s *Scenario) (Result, error) {
	ts, err := s.tiers()
	if err != nil {
		return Result{}, err
	}
	type bucket struct {
		lo, hi float64
		diff   stats.Dist
	}
	buckets := []*bucket{
		{lo: 0, hi: 0.5}, {lo: 0.5, hi: 0.75}, {lo: 0.75, hi: 0.9}, {lo: 0.9, hi: 1.01},
	}
	for i, vp := range ts.vps {
		public, err := ts.std.Route(vp)
		if err != nil || public.Km <= 0 {
			continue
		}
		maxHop := 0.0
		for _, h := range public.Hops {
			if h.Km > maxHop {
				maxHop = h.Km
			}
		}
		frac := maxHop / public.Km
		t := float64(i%24) * 60
		p1, e1 := ts.plat.Ping(vp, ts.prem, t)
		p2, e2 := ts.plat.Ping(vp, ts.std, t)
		if e1 != nil || e2 != nil {
			continue
		}
		for _, b := range buckets {
			if frac >= b.lo && frac < b.hi {
				b.diff.Add(p2-p1, 1)
			}
		}
	}
	tb := stats.Table{Name: "single-WAN carriage vs tier gap",
		Columns: []string{"median_std_minus_prem_ms", "n"}}
	for _, b := range buckets {
		tb.AddRow(fmt.Sprintf("carry_frac_%.2f-%.2f", b.lo, b.hi), b.diff.Median(), float64(b.diff.N()))
	}
	res := Result{ID: "xwan", Title: "Single-WAN behavior of public routes"}
	res.Tables = append(res.Tables, tb)
	res.Notes = append(res.Notes,
		"hypothesis: the more of the journey one network carries, the closer the public route gets to the private WAN")
	return res, nil
}

// SplitTCPStudy explores §4's split-connection question: how does the
// latency benefit of terminating TCP at the edge change when the backend
// runs over the private WAN versus the public Internet?
func SplitTCPStudy(s *Scenario) (Result, error) {
	ts, err := s.tiers()
	if err != nil {
		return Result{}, err
	}
	const payload = 2e6
	const wanLoss, publicLoss = 0.0003, 0.004
	// Public backend: same geography as the WAN but with typical transit
	// stretch and loss — the pre-WAN-buildout overlay of §4.
	const publicStretch = 1.22
	type bucket struct {
		lo, hi                 float64
		direct, splitW, splitP stats.Dist
	}
	buckets := []*bucket{
		{lo: 0, hi: 2000}, {lo: 2000, hi: 6000}, {lo: 6000, hi: 12000}, {lo: 12000, hi: 1e9},
	}
	dcLoc := s.Topo.Catalog.City(s.Prov.DC).Loc
	for i, vp := range ts.vps {
		public, err := ts.prem.Route(vp)
		if err != nil {
			continue
		}
		t := float64(i%24) * 60
		rtt1 := s.Sim.RouteRTTMs(public, vp.Prefix, t) // client to edge PoP
		wanKm := ts.prem.ExtraRTTMs(vp) / geo.FiberRTTMsPerKm
		rtt2w := wanKm * geo.FiberRTTMsPerKm
		rtt2p := rtt2w * publicStretch
		loss1 := s.Sim.LossRate(public, vp.Prefix, t)

		direct := tcp.FetchDirectMs(payload, rtt1, loss1, rtt2p, publicLoss)
		splitWAN := tcp.FetchSplitMs(payload, rtt1, loss1, rtt2w, wanLoss)
		splitPub := tcp.FetchSplitMs(payload, rtt1, loss1, rtt2p, publicLoss)

		d := geo.DistanceKm(s.Topo.Catalog.City(vp.City).Loc, dcLoc)
		for _, b := range buckets {
			if d >= b.lo && d < b.hi {
				b.direct.Add(direct, 1)
				b.splitW.Add(splitWAN, 1)
				b.splitP.Add(splitPub, 1)
			}
		}
	}
	tb := stats.Table{Name: "2MB fetch time by client-DC distance (ms)",
		Columns: []string{"direct", "split_public_backend", "split_wan_backend", "n"}}
	for _, b := range buckets {
		tb.AddRow(fmt.Sprintf("km_%.0f-%.0f", b.lo, math.Min(b.hi, 99999)),
			b.direct.Median(), b.splitP.Median(), b.splitW.Median(), float64(b.direct.N()))
	}
	res := Result{ID: "xsplit", Title: "Split TCP with WAN vs public backend"}
	res.Tables = append(res.Tables, tb)
	res.Notes = append(res.Notes,
		"splitting helps more with distance; a WAN backend (lower loss, lower stretch) compounds the benefit")
	return res, nil
}

// RouteDiversityStudy explores §4's availability discussion: route
// diversity as failover insurance, and the outsized fragility of small
// peers whose capacity concentrates on a single interconnection.
// (Scheduled fault injection lives in AnycastFaultAvailability/xavail.)
func RouteDiversityStudy(ctx context.Context, s *Scenario) (Result, error) {
	traces, err := s.efTraces()
	if err != nil {
		return Result{}, err
	}
	// Two failure processes over the same world: baseline, and one where
	// PNI links fail 5x as often (fragile small peers). Derive with no
	// mutation shares the whole immutable world and yields only the fresh
	// Sim each arm needs, leaving s.Sim untouched for other experiments.
	twinA, err := s.DeriveContext(ctx, nil)
	if err != nil {
		return Result{}, err
	}
	twinB, err := s.DeriveContext(ctx, nil)
	if err != nil {
		return Result{}, err
	}
	simA, simB := twinA.Sim, twinB.Sim
	for _, l := range s.Prov.PeerLinks(provider.ClassPNI) {
		simB.ScaleLinkFailures(l, 5)
	}
	horizonDays := 10
	evalSim := func(sim *netsim.Sim) (prefAvail, anyAvail float64) {
		var pref, any stats.Dist
		for _, tr := range traces {
			var vol float64
			for _, w := range tr.Windows {
				vol += w.VolumeBytes
			}
			upPref, upAny, n := 0, 0, 0
			for hour := 0; hour < horizonDays*24; hour += 3 {
				t := float64(hour) * 60
				n++
				if sim.RouteUp(tr.Routes[0].Phys, t) {
					upPref++
					upAny++
					continue
				}
				for _, ro := range tr.Routes[1:] {
					if sim.RouteUp(ro.Phys, t) {
						upAny++
						break
					}
				}
			}
			pref.Add(float64(upPref)/float64(n), vol)
			any.Add(float64(upAny)/float64(n), vol)
		}
		return pref.Mean(), any.Mean()
	}
	prefA, anyA := evalSim(simA)
	prefB, anyB := evalSim(simB)
	tb := stats.Table{Name: "egress availability (weighted mean uptime)",
		Columns: []string{"preferred_route_only", "with_failover"}}
	tb.AddRow("baseline_failures", prefA, anyA)
	tb.AddRow("fragile_small_peers_5x", prefB, anyB)
	res := Result{ID: "xdiv", Title: "Route diversity as failover insurance"}
	res.Tables = append(res.Tables, tb)
	res.Notes = append(res.Notes,
		"route diversity buys availability even when it buys no latency; fragile peers erode the preferred-route uptime far more than the failover uptime")
	return res, nil
}
