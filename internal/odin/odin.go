// Package odin models a client-side measurement pipeline in the style of
// Microsoft's Odin (Calder et al., NSDI 2018), the system behind the
// paper's §2.2 "spraying background requests": a sampled fraction of real
// page views is instrumented to fetch tiny objects from a few candidate
// endpoints — the anycast address plus nearby unicast front-ends — and
// the reported latencies are aggregated per ⟨LDNS, endpoint⟩.
//
// The pipeline is where redirection systems get their data, and its
// sampling budget is where their prediction error comes from: resolvers
// whose client population generates few instrumented views get noisy
// latency estimates, and close calls between candidates flip. The xodin
// experiment uses this to derive, mechanistically, the mispredictions
// that Figure 4 injects as a noise parameter.
package odin

import (
	"fmt"
	"math"
	"sort"

	"beatbgp/internal/cdn"
	"beatbgp/internal/dnsmap"
	"beatbgp/internal/netsim"
	"beatbgp/internal/stats"
	"beatbgp/internal/topology"
	"beatbgp/internal/xrand"
)

// Config tunes the measurement campaign. Zero value gets defaults.
type Config struct {
	Seed uint64
	// SampleRate is the fraction of page views instrumented (default
	// 0.01). The total measurement budget scales linearly with it.
	SampleRate float64
	// ViewsPerWeight converts a prefix's traffic weight into page views
	// per measurement round (default 25).
	ViewsPerWeight float64
	// UnicastCandidates is how many nearby unicast front-ends each task
	// measures alongside anycast (default 2).
	UnicastCandidates int
	// ClientJitterMs is the per-sample measurement jitter scale, an
	// exponential tail on top of the network RTT (default 3).
	ClientJitterMs float64
}

func (c *Config) setDefaults() {
	if c.SampleRate == 0 {
		c.SampleRate = 0.01
	}
	if c.ViewsPerWeight == 0 {
		c.ViewsPerWeight = 25
	}
	if c.UnicastCandidates == 0 {
		c.UnicastCandidates = 2
	}
	if c.ClientJitterMs == 0 {
		c.ClientJitterMs = 3
	}
}

// Aggregate holds the campaign's per-⟨resolver, endpoint⟩ latency
// distributions. Endpoint keys use cdn.AnycastChoice for the anycast
// address and site indices for unicast front-ends.
type Aggregate struct {
	byKey   map[[2]int]*stats.Dist // [resolver, endpoint]
	samples int
}

// Samples returns the total number of latency reports collected.
func (a *Aggregate) Samples() int { return a.samples }

// Estimate returns the median latency estimate and sample count for one
// ⟨resolver, endpoint⟩ cell.
func (a *Aggregate) Estimate(resolver, endpoint int) (medianMs float64, n int, ok bool) {
	d := a.byKey[[2]int{resolver, endpoint}]
	if d == nil || d.N() == 0 {
		return 0, 0, false
	}
	return d.Median(), d.N(), true
}

// Endpoints returns the endpoints with any data for the resolver,
// ascending (AnycastChoice sorts first).
func (a *Aggregate) Endpoints(resolver int) []int {
	var out []int
	for k := range a.byKey {
		if k[0] == resolver {
			out = append(out, k[1])
		}
	}
	sort.Ints(out)
	return out
}

// Pipeline runs measurement campaigns against a CDN.
type Pipeline struct {
	cfg Config
	cdn *cdn.CDN
	dns *dnsmap.Mapping
	sim *netsim.Sim
}

// New returns a pipeline.
func New(c *cdn.CDN, m *dnsmap.Mapping, sim *netsim.Sim, cfg Config) *Pipeline {
	cfg.setDefaults()
	return &Pipeline{cfg: cfg, cdn: c, dns: m, sim: sim}
}

// Collect runs one campaign: for every prefix and measurement round, the
// instrumented share of its page views each measure anycast plus a few
// nearby unicast candidates. Returns the per-resolver aggregates.
func (p *Pipeline) Collect(prefixes []topology.Prefix, rounds []float64) (*Aggregate, error) {
	if len(rounds) == 0 {
		return nil, fmt.Errorf("odin: no measurement rounds")
	}
	agg := &Aggregate{byKey: make(map[[2]int]*stats.Dist)}
	add := func(resolver, endpoint int, ms float64) {
		k := [2]int{resolver, endpoint}
		d := agg.byKey[k]
		if d == nil {
			d = &stats.Dist{}
			agg.byKey[k] = d
		}
		d.Add(ms, 1)
		agg.samples++
	}
	for _, px := range prefixes {
		r, ok := p.dns.ResolverFor(px.ID)
		if !ok {
			continue
		}
		// Deterministic per-prefix stream, independent of slice order.
		rng := xrand.New(p.cfg.Seed ^ uint64(px.ID)*0x9e3779b97f4a7c15)
		nearby := p.cdn.NearestSites(px, p.cfg.UnicastCandidates+2)
		for _, t := range rounds {
			// Number of instrumented views this round: the fractional
			// expectation resolved by a Bernoulli draw on the remainder.
			exp := px.Weight * p.cfg.ViewsPerWeight * p.cfg.SampleRate
			views := int(exp)
			if rng.Bool(exp - math.Floor(exp)) {
				views++
			}
			for v := 0; v < views; v++ {
				jt := t + rng.Uniform(0, 10) // views spread across the round
				if rtt, _, err := p.cdn.AnycastRTT(p.sim, px, nil, jt); err == nil {
					add(r.ID, cdn.AnycastChoice, rtt+rng.Exp(p.cfg.ClientJitterMs))
				}
				// A random subset of the nearby sites.
				perm := rng.Perm(len(nearby))
				for i := 0; i < p.cfg.UnicastCandidates && i < len(perm); i++ {
					site := nearby[perm[i]]
					if rtt, err := p.cdn.UnicastRTT(p.sim, px, site, jt); err == nil {
						add(r.ID, site, rtt+rng.Exp(p.cfg.ClientJitterMs))
					}
				}
			}
		}
	}
	return agg, nil
}

// Decide turns an aggregate into per-resolver serving decisions: the
// endpoint with the lowest median estimate wins, but unicast endpoints
// need at least minSamples reports and must beat anycast's estimate by
// marginMs (the hybrid knob). Resolvers with no anycast data stay on
// anycast.
func Decide(agg *Aggregate, minSamples int, marginMs float64) map[int]int {
	out := make(map[int]int)
	resolvers := map[int]bool{}
	for k := range agg.byKey {
		resolvers[k[0]] = true
	}
	ids := make([]int, 0, len(resolvers))
	for r := range resolvers {
		ids = append(ids, r)
	}
	sort.Ints(ids)
	for _, r := range ids {
		anyMed, _, ok := agg.Estimate(r, cdn.AnycastChoice)
		if !ok {
			continue
		}
		best, bestMed := cdn.AnycastChoice, anyMed
		for _, ep := range agg.Endpoints(r) {
			if ep == cdn.AnycastChoice {
				continue
			}
			med, n, ok := agg.Estimate(r, ep)
			if !ok || n < minSamples {
				continue
			}
			bar := bestMed
			if best == cdn.AnycastChoice {
				bar -= marginMs
			}
			if med < bar {
				best, bestMed = ep, med
			}
		}
		out[r] = best
	}
	return out
}
