package odin

import (
	"testing"

	"beatbgp/internal/cdn"
	"beatbgp/internal/dnsmap"
	"beatbgp/internal/netsim"
	"beatbgp/internal/topology"
)

type world struct {
	topo *topology.Topo
	cdn  *cdn.CDN
	dns  *dnsmap.Mapping
	sim  *netsim.Sim
}

func setup(t testing.TB) world {
	t.Helper()
	topo, err := topology.Generate(topology.GenConfig{Seed: 12, EyeballsPerRegion: 8})
	if err != nil {
		t.Fatal(err)
	}
	c, err := cdn.Build(topo, cdn.Config{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	return world{
		topo: topo,
		cdn:  c,
		dns:  dnsmap.Build(topo, dnsmap.Config{Seed: 12}),
		sim:  netsim.New(topo, netsim.Config{Seed: 12}),
	}
}

func TestCollectBasics(t *testing.T) {
	w := setup(t)
	pl := New(w.cdn, w.dns, w.sim, Config{Seed: 1, SampleRate: 0.05})
	agg, err := pl.Collect(w.topo.Prefixes, []float64{60, 600})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Samples() == 0 {
		t.Fatal("campaign collected nothing")
	}
	// Some resolver must have an anycast estimate.
	found := false
	for _, r := range w.dns.Resolvers() {
		if med, n, ok := agg.Estimate(r.ID, cdn.AnycastChoice); ok {
			found = true
			if med <= 0 || n <= 0 {
				t.Fatalf("bad estimate %v/%v", med, n)
			}
		}
	}
	if !found {
		t.Fatal("no anycast estimates")
	}
}

func TestCollectRequiresRounds(t *testing.T) {
	w := setup(t)
	pl := New(w.cdn, w.dns, w.sim, Config{Seed: 1})
	if _, err := pl.Collect(w.topo.Prefixes, nil); err == nil {
		t.Fatal("no rounds accepted")
	}
}

func TestSampleRateScalesBudget(t *testing.T) {
	w := setup(t)
	rounds := []float64{60, 300, 600}
	lo, err := New(w.cdn, w.dns, w.sim, Config{Seed: 2, SampleRate: 0.005}).Collect(w.topo.Prefixes, rounds)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := New(w.cdn, w.dns, w.sim, Config{Seed: 2, SampleRate: 0.05}).Collect(w.topo.Prefixes, rounds)
	if err != nil {
		t.Fatal(err)
	}
	if hi.Samples() <= lo.Samples()*3 {
		t.Fatalf("10x sample rate produced %d vs %d samples", hi.Samples(), lo.Samples())
	}
}

func TestCollectDeterministic(t *testing.T) {
	w := setup(t)
	rounds := []float64{60, 600}
	a, err := New(w.cdn, w.dns, w.sim, Config{Seed: 3}).Collect(w.topo.Prefixes, rounds)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(w.cdn, w.dns, w.sim, Config{Seed: 3}).Collect(w.topo.Prefixes, rounds)
	if err != nil {
		t.Fatal(err)
	}
	if a.Samples() != b.Samples() {
		t.Fatalf("sample counts differ: %d vs %d", a.Samples(), b.Samples())
	}
	for _, r := range w.dns.Resolvers() {
		ma, na, oka := a.Estimate(r.ID, cdn.AnycastChoice)
		mb, nb, okb := b.Estimate(r.ID, cdn.AnycastChoice)
		if oka != okb || ma != mb || na != nb {
			t.Fatal("estimates differ across identical campaigns")
		}
	}
}

func TestDecide(t *testing.T) {
	w := setup(t)
	pl := New(w.cdn, w.dns, w.sim, Config{Seed: 4, SampleRate: 0.05})
	agg, err := pl.Collect(w.topo.Prefixes, []float64{60, 300, 600, 900})
	if err != nil {
		t.Fatal(err)
	}
	plain := Decide(agg, 3, 0)
	if len(plain) == 0 {
		t.Fatal("no decisions")
	}
	overrides := 0
	for _, choice := range plain {
		if choice != cdn.AnycastChoice {
			overrides++
			if choice < 0 || choice >= len(w.cdn.Sites) {
				t.Fatalf("bad site decision %d", choice)
			}
		}
	}
	if overrides == 0 {
		t.Fatal("decisions never override anycast")
	}
	// A margin can only reduce overrides.
	margin := Decide(agg, 3, 15)
	mo := 0
	for _, choice := range margin {
		if choice != cdn.AnycastChoice {
			mo++
		}
	}
	if mo > overrides {
		t.Fatalf("margin increased overrides: %d vs %d", mo, overrides)
	}
	// Feeding decisions into the cdn redirector must round-trip.
	rd := cdn.NewRedirector(plain, nil)
	for _, p := range w.topo.Prefixes[:10] {
		choice := rd.Decision(p, w.dns)
		if choice != cdn.AnycastChoice && (choice < 0 || choice >= len(w.cdn.Sites)) {
			t.Fatalf("redirector decision %d out of range", choice)
		}
	}
}

func TestMinSamplesGuards(t *testing.T) {
	w := setup(t)
	pl := New(w.cdn, w.dns, w.sim, Config{Seed: 5, SampleRate: 0.002})
	agg, err := pl.Collect(w.topo.Prefixes, []float64{60})
	if err != nil {
		t.Fatal(err)
	}
	strict := Decide(agg, 1_000_000, 0)
	for r, choice := range strict {
		if choice != cdn.AnycastChoice {
			t.Fatalf("resolver %d overrode anycast without enough samples", r)
		}
	}
}
