package netpath

import (
	"testing"

	"beatbgp/internal/bgp"
	"beatbgp/internal/topology"
)

func TestLateExitUnknownDestFallsBackToEarly(t *testing.T) {
	// ResolveEntry gives the first AS no destination city; a late-exit AS
	// must then hand off at the interconnect nearest its ingress, exactly
	// like early exit.
	topoLate, x, y, link, lon, _ := twoASTopo(t, topology.LateExit, topology.EarlyExit)
	resLate := NewResolver(topoLate)
	rLate, err := resLate.ResolveEntry(mkRoute([]int{x, y}, []int{link}), lon)
	if err != nil {
		t.Fatal(err)
	}
	if rLate.DstCity != lon {
		t.Fatalf("late-exit with unknown destination should behave like hot potato; entry = %d", rLate.DstCity)
	}
}

func TestResolvePinnedValidatesCity(t *testing.T) {
	topo, x, y, link, lon, ny := twoASTopo(t, topology.EarlyExit, topology.EarlyExit)
	res := NewResolver(topo)
	// Pin at a city that is on the link: fine.
	r, err := res.ResolvePinned(mkRoute([]int{x, y}, []int{link}), lon, ny, ny)
	if err != nil {
		t.Fatal(err)
	}
	if r.Hops[0].Egress != ny {
		t.Fatalf("pin not honored: egress %d", r.Hops[0].Egress)
	}
	// Pin at a city not on the link: rejected.
	tokyo, _ := topo.Catalog.ByName("Tokyo")
	if _, err := res.ResolvePinned(mkRoute([]int{x, y}, []int{link}), lon, ny, tokyo.ID); err == nil {
		t.Fatal("pin outside the link's interconnects accepted")
	}
}

func TestPinnedChangesCarriedDistance(t *testing.T) {
	// Early-exit X would hand off in London; pinning the egress at
	// NewYork forces X to carry the ocean crossing.
	topo, x, y, link, lon, ny := twoASTopo(t, topology.EarlyExit, topology.EarlyExit)
	res := NewResolver(topo)
	free, err := res.Resolve(mkRoute([]int{x, y}, []int{link}), lon, ny)
	if err != nil {
		t.Fatal(err)
	}
	pinned, err := res.ResolvePinned(mkRoute([]int{x, y}, []int{link}), lon, ny, ny)
	if err != nil {
		t.Fatal(err)
	}
	if free.Hops[0].Km != 0 {
		t.Fatal("unpinned early exit should carry nothing in X")
	}
	if pinned.Hops[0].Km <= 0 {
		t.Fatal("pinned egress should make X carry the crossing")
	}
	// Total distance differs because X (stretch 1.0) vs Y (stretch 1.3)
	// carry the same physical segment.
	if pinned.Km >= free.Km {
		t.Fatalf("carrying on the faster backbone should shorten the route: %v vs %v", pinned.Km, free.Km)
	}
}

func TestStretchIsAtLeastOneOnDirectRoutes(t *testing.T) {
	topo, x, y, link, lon, ny := twoASTopo(t, topology.EarlyExit, topology.EarlyExit)
	res := NewResolver(topo)
	r, err := res.Resolve(mkRoute([]int{x, y}, []int{link}), lon, ny)
	if err != nil {
		t.Fatal(err)
	}
	if s := r.Stretch(topo.Catalog); s < 1 {
		t.Fatalf("stretch %v below 1 on a real route", s)
	}
}

func TestResolveSingleASRoute(t *testing.T) {
	// An origin route (one AS, no links) resolves to pure intra-AS carry.
	topo, x, _, _, lon, ny := twoASTopo(t, topology.EarlyExit, topology.EarlyExit)
	res := NewResolver(topo)
	route := bgp.Route{Valid: true, Src: bgp.SrcOrigin, Link: -1, NextHop: -1, Path: []int{x}}
	r, err := res.Resolve(route, lon, ny)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hops) != 1 || len(r.Links) != 0 {
		t.Fatalf("unexpected shape: %d hops, %d links", len(r.Hops), len(r.Links))
	}
	if r.PropRTTMs() <= 0 {
		t.Fatal("non-positive RTT for a real crossing")
	}
}
