// Package netpath turns AS-level BGP routes into city-level forwarding
// paths over the physical cable graph, applying each AS's exit policy
// (hot-potato early exit vs backbone-carrying late exit) at every
// interconnection, and computing the resulting propagation RTT and path
// stretch.
//
// This is where the paper's geographic explanations live: path inflation
// from early exit, single-WAN carriage by Tier-1s, and the direction a
// private WAN hauls intercontinental traffic all fall out of the
// interconnection-city choices made here.
//
// RTTs are modeled as symmetric over the resolved forward path; real
// Internet routing is often asymmetric, but the paper's comparisons are
// between routing schemes over the same simulated substrate, so symmetry
// cancels out.
package netpath

import (
	"fmt"
	"math"

	"beatbgp/internal/bgp"
	"beatbgp/internal/geo"
	"beatbgp/internal/topology"
)

// PerBoundaryRTTMs is the fixed per-interconnection RTT cost (router
// hops, exchange fabric) added at every AS boundary.
const PerBoundaryRTTMs = 0.3

// Hop is one AS's segment of a forwarding path.
type Hop struct {
	AS      int     // AS ID
	Ingress int     // city where traffic enters the AS
	Egress  int     // city where traffic leaves the AS (== Ingress at the end)
	Km      float64 // intra-AS carried distance including the AS's stretch
}

// Route is a fully resolved city-level path.
type Route struct {
	Hops    []Hop
	Links   []int // inter-AS link IDs crossed, in order
	SrcCity int
	DstCity int
	Km      float64 // total carried distance
}

// PropRTTMs returns the propagation round-trip time of the route,
// including per-boundary costs.
func (r Route) PropRTTMs() float64 {
	return r.Km*geo.FiberRTTMsPerKm + float64(len(r.Links))*PerBoundaryRTTMs
}

// Stretch returns carried distance over geodesic distance between the
// endpoints (1.0 = perfectly direct). Returns +Inf for co-located
// endpoints with non-zero carry, and 1 for a zero-length route.
func (r Route) Stretch(cat *geo.Catalog) float64 {
	geod := geo.DistanceKm(cat.City(r.SrcCity).Loc, cat.City(r.DstCity).Loc)
	if geod == 0 {
		if r.Km == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return r.Km / geod
}

// Resolver resolves AS paths against a topology.
type Resolver struct {
	topo *topology.Topo
}

// NewResolver returns a resolver over the topology.
func NewResolver(t *topology.Topo) *Resolver { return &Resolver{topo: t} }

// Catalog returns the city catalog of the underlying topology.
func (r *Resolver) Catalog() *geo.Catalog { return r.topo.Catalog }

// exitCity picks the interconnection city where AS `as` hands traffic to
// the next AS over `link`, given the traffic's current city and (if known)
// final destination city. dstCity < 0 means unknown; late-exit ASes then
// fall back to early exit.
func (r *Resolver) exitCity(as int, link int, curCity, dstCity int) (int, error) {
	a := r.topo.ASes[as]
	cities := r.topo.Links[link].Cities
	if len(cities) == 0 {
		return -1, fmt.Errorf("netpath: link %d has no interconnection city", link)
	}
	best, bestScore := -1, math.Inf(1)
	for _, c := range cities {
		var score float64
		if a.Exit == topology.LateExit && dstCity >= 0 {
			// Carry on our own backbone to the interconnect nearest the
			// destination.
			score = geo.DistanceKm(r.topo.Catalog.City(c).Loc, r.topo.Catalog.City(dstCity).Loc)
		} else {
			// Hot potato: hand off at the interconnect nearest the ingress.
			d := a.Net.DistKm(curCity, c)
			if math.IsInf(d, 1) {
				continue
			}
			score = d
		}
		if score < bestScore || (score == bestScore && c < best) {
			best, bestScore = c, score
		}
	}
	if best < 0 {
		return -1, fmt.Errorf("netpath: AS %s cannot reach any interconnect of link %d from city %d",
			a.Name, link, curCity)
	}
	return best, nil
}

// walk resolves the route from srcCity through the AS path. If
// terminateAtLastIngress is true, resolution stops when traffic enters the
// final AS (dstCity may be < 0 in that case); otherwise the final AS
// carries traffic to dstCity. pinFirstEgress >= 0 forces the first AS to
// hand off at that interconnection city regardless of its exit policy.
func (r *Resolver) walk(route bgp.Route, srcCity, dstCity int, terminateAtLastIngress bool, pinFirstEgress int) (Route, error) {
	if !route.Valid {
		return Route{}, fmt.Errorf("netpath: invalid route")
	}
	// Collapse prepending: distinct adjacent ASes only.
	var ases []int
	for i, as := range route.Path {
		if i == 0 || as != route.Path[i-1] {
			ases = append(ases, as)
		}
	}
	if len(route.Links) != len(ases)-1 {
		return Route{}, fmt.Errorf("netpath: %d links for %d AS transitions", len(route.Links), len(ases)-1)
	}
	t := r.topo
	if !t.ASes[ases[0]].Net.Present(srcCity) {
		return Route{}, fmt.Errorf("netpath: source city %d not in AS %s footprint", srcCity, t.ASes[ases[0]].Name)
	}
	out := Route{SrcCity: srcCity, DstCity: dstCity, Links: route.Links}
	cur := srcCity
	for i := 0; i+1 < len(ases); i++ {
		as := ases[i]
		var egress int
		var err error
		if i == 0 && pinFirstEgress >= 0 {
			egress = pinFirstEgress
			if !hasCity(t.Links[route.Links[0]].Cities, egress) {
				return Route{}, fmt.Errorf("netpath: pinned egress %d not on link %d", egress, route.Links[0])
			}
		} else {
			egress, err = r.exitCity(as, route.Links[i], cur, dstCity)
			if err != nil {
				return Route{}, err
			}
		}
		p, ok := t.ASes[as].Net.Path(cur, egress)
		if !ok {
			return Route{}, fmt.Errorf("netpath: AS %s cannot carry %d->%d", t.ASes[as].Name, cur, egress)
		}
		out.Hops = append(out.Hops, Hop{AS: as, Ingress: cur, Egress: egress, Km: p.Km})
		out.Km += p.Km
		cur = egress
	}
	last := ases[len(ases)-1]
	if terminateAtLastIngress {
		out.Hops = append(out.Hops, Hop{AS: last, Ingress: cur, Egress: cur})
		out.DstCity = cur
		return out, nil
	}
	p, ok := t.ASes[last].Net.Path(cur, dstCity)
	if !ok {
		return Route{}, fmt.Errorf("netpath: final AS %s cannot carry %d->%d", t.ASes[last].Name, cur, dstCity)
	}
	out.Hops = append(out.Hops, Hop{AS: last, Ingress: cur, Egress: dstCity, Km: p.Km})
	out.Km += p.Km
	return out, nil
}

// Resolve maps a BGP route into a physical path for traffic flowing from
// srcCity (inside the route's first AS) to dstCity (inside the origin AS).
func (r *Resolver) Resolve(route bgp.Route, srcCity, dstCity int) (Route, error) {
	if dstCity < 0 {
		return Route{}, fmt.Errorf("netpath: destination city required")
	}
	return r.walk(route, srcCity, dstCity, false, -1)
}

// ResolvePinned is Resolve with the first AS's handoff forced to a
// specific interconnection city — the Edge-Fabric setting, where a PoP
// egresses locally rather than letting the backbone's exit policy carry
// the traffic elsewhere.
func (r *Resolver) ResolvePinned(route bgp.Route, srcCity, dstCity, firstEgress int) (Route, error) {
	if dstCity < 0 {
		return Route{}, fmt.Errorf("netpath: destination city required")
	}
	return r.walk(route, srcCity, dstCity, false, firstEgress)
}

// ResolveEntry resolves the path only up to the point where traffic
// enters the route's final AS, returning that entry city as DstCity. This
// is how anycast catchments are computed: the client's packets enter the
// CDN's network somewhere, and the CDN's interior routing takes over.
func (r *Resolver) ResolveEntry(route bgp.Route, srcCity int) (Route, error) {
	return r.walk(route, srcCity, -1, true, -1)
}

func hasCity(cities []int, c int) bool {
	for _, x := range cities {
		if x == c {
			return true
		}
	}
	return false
}
