package netpath

import (
	"math"
	"testing"

	"beatbgp/internal/bgp"
	"beatbgp/internal/cable"
	"beatbgp/internal/geo"
	"beatbgp/internal/topology"
)

// twoASTopo wires two ASes that both span London and NewYork and
// interconnect in both cities. X has a fast backbone (stretch 1.0), Y a
// slow one (stretch 1.3), so the exit-policy choice is observable in the
// carried kilometers.
func twoASTopo(t *testing.T, xExit, yExit topology.ExitPolicy) (*topology.Topo, int, int, int, int, int) {
	t.Helper()
	catalog := geo.World()
	graph, err := cable.WorldGraph(catalog)
	if err != nil {
		t.Fatal(err)
	}
	topo := &topology.Topo{Catalog: catalog, Graph: graph}
	lon, _ := catalog.ByName("London")
	ny, _ := catalog.ByName("NewYork")
	x, err := topo.AddAS(1, "X", topology.Transit, geo.Europe, []int{lon.ID, ny.ID}, 1.0, xExit)
	if err != nil {
		t.Fatal(err)
	}
	y, err := topo.AddAS(2, "Y", topology.Transit, geo.NorthAmerica, []int{lon.ID, ny.ID}, 1.3, yExit)
	if err != nil {
		t.Fatal(err)
	}
	link, err := topo.Connect(x.ID, y.ID, topology.P2P, nil, false)
	if err != nil {
		t.Fatal(err)
	}
	return topo, x.ID, y.ID, link.ID, lon.ID, ny.ID
}

func mkRoute(path []int, links []int) bgp.Route {
	return bgp.Route{Valid: true, Src: bgp.SrcPeer, Link: links[0], NextHop: path[1], Path: path, Links: links}
}

func TestEarlyExitHandsOffAtIngressCity(t *testing.T) {
	topo, x, y, link, lon, ny := twoASTopo(t, topology.EarlyExit, topology.EarlyExit)
	res := NewResolver(topo)
	r, err := res.Resolve(mkRoute([]int{x, y}, []int{link}), lon, ny)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hops) != 2 {
		t.Fatalf("hops = %d", len(r.Hops))
	}
	if r.Hops[0].Egress != lon {
		t.Fatalf("early exit should hand off in London, got city %d", r.Hops[0].Egress)
	}
	if r.Hops[0].Km != 0 {
		t.Fatalf("X should carry nothing, carried %.0f km", r.Hops[0].Km)
	}
	// Y carries the ocean crossing with its 1.3 stretch.
	if r.Hops[1].Km <= 5570*1.15 {
		t.Fatalf("Y carried %.0f km, want > direct cable distance", r.Hops[1].Km)
	}
}

func TestLateExitCarriesOnOwnBackbone(t *testing.T) {
	topo, x, y, link, lon, ny := twoASTopo(t, topology.LateExit, topology.EarlyExit)
	res := NewResolver(topo)
	r, err := res.Resolve(mkRoute([]int{x, y}, []int{link}), lon, ny)
	if err != nil {
		t.Fatal(err)
	}
	if r.Hops[0].Egress != ny {
		t.Fatalf("late exit should hand off in NewYork, got city %d", r.Hops[0].Egress)
	}
	if r.Hops[1].Km != 0 {
		t.Fatalf("Y should carry nothing, carried %.0f km", r.Hops[1].Km)
	}
	// Late exit over the fast backbone beats early exit onto the slow one.
	topoE, xe, ye, linkE, lonE, nyE := twoASTopo(t, topology.EarlyExit, topology.EarlyExit)
	resE := NewResolver(topoE)
	rE, err := resE.Resolve(mkRoute([]int{xe, ye}, []int{linkE}), lonE, nyE)
	if err != nil {
		t.Fatal(err)
	}
	if r.Km >= rE.Km {
		t.Fatalf("late exit %.0f km should beat early exit %.0f km here", r.Km, rE.Km)
	}
}

func TestPropRTTIncludesBoundaries(t *testing.T) {
	topo, x, y, link, lon, ny := twoASTopo(t, topology.EarlyExit, topology.EarlyExit)
	res := NewResolver(topo)
	r, err := res.Resolve(mkRoute([]int{x, y}, []int{link}), lon, ny)
	if err != nil {
		t.Fatal(err)
	}
	want := r.Km*geo.FiberRTTMsPerKm + PerBoundaryRTTMs
	if math.Abs(r.PropRTTMs()-want) > 1e-9 {
		t.Fatalf("PropRTT = %v, want %v", r.PropRTTMs(), want)
	}
}

func TestResolveEntryStopsAtIngress(t *testing.T) {
	topo, x, y, link, lon, _ := twoASTopo(t, topology.EarlyExit, topology.EarlyExit)
	res := NewResolver(topo)
	r, err := res.ResolveEntry(mkRoute([]int{x, y}, []int{link}), lon)
	if err != nil {
		t.Fatal(err)
	}
	// X early-exits in London, so traffic enters Y in London.
	if r.DstCity != lon {
		t.Fatalf("entry city = %d, want London", r.DstCity)
	}
	if r.Km != 0 {
		t.Fatalf("no distance should be carried, got %.0f", r.Km)
	}
}

func TestResolveCollapsesPrepending(t *testing.T) {
	topo, x, y, link, lon, ny := twoASTopo(t, topology.EarlyExit, topology.EarlyExit)
	res := NewResolver(topo)
	// Path with the origin prepended twice: [x, y, y, y], one link.
	route := bgp.Route{Valid: true, Src: bgp.SrcPeer, Link: link, NextHop: y,
		Path: []int{x, y, y, y}, Links: []int{link}}
	r, err := res.Resolve(route, lon, ny)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Hops) != 2 {
		t.Fatalf("prepending not collapsed: %d hops", len(r.Hops))
	}
}

func TestResolveErrors(t *testing.T) {
	topo, x, y, link, lon, ny := twoASTopo(t, topology.EarlyExit, topology.EarlyExit)
	res := NewResolver(topo)
	if _, err := res.Resolve(bgp.Route{}, lon, ny); err == nil {
		t.Fatal("invalid route accepted")
	}
	if _, err := res.Resolve(mkRoute([]int{x, y}, []int{link}), lon, -1); err == nil {
		t.Fatal("missing destination accepted")
	}
	tokyo, _ := topo.Catalog.ByName("Tokyo")
	if _, err := res.Resolve(mkRoute([]int{x, y}, []int{link}), tokyo.ID, ny); err == nil {
		t.Fatal("source outside footprint accepted")
	}
	// Wrong link count.
	bad := bgp.Route{Valid: true, Path: []int{x, y}, Links: nil}
	if _, err := res.Resolve(bad, lon, ny); err == nil {
		t.Fatal("mismatched links accepted")
	}
}

func TestStretch(t *testing.T) {
	cat := geo.World()
	lon, _ := cat.ByName("London")
	ny, _ := cat.ByName("NewYork")
	r := Route{SrcCity: lon.ID, DstCity: ny.ID, Km: 2 * geo.DistanceKm(lon.Loc, ny.Loc)}
	if s := r.Stretch(cat); math.Abs(s-2) > 1e-9 {
		t.Fatalf("stretch = %v, want 2", s)
	}
	same := Route{SrcCity: lon.ID, DstCity: lon.ID, Km: 0}
	if s := same.Stretch(cat); s != 1 {
		t.Fatalf("zero-length stretch = %v, want 1", s)
	}
	loop := Route{SrcCity: lon.ID, DstCity: lon.ID, Km: 100}
	if s := loop.Stretch(cat); !math.IsInf(s, 1) {
		t.Fatalf("co-located stretch = %v, want +Inf", s)
	}
}

func TestGeneratedTopologyPathsResolve(t *testing.T) {
	topo, err := topology.Generate(topology.GenConfig{Seed: 3, EyeballsPerRegion: 6})
	if err != nil {
		t.Fatal(err)
	}
	oracle := bgp.NewOracle(topo)
	res := NewResolver(topo)
	resolved := 0
	for i, p := range topo.Prefixes {
		if i%9 != 0 {
			continue
		}
		rib, err := oracle.ToPrefix(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, asID := range topo.ByClass(topology.Eyeball) {
			if asID == p.Origin || asID%5 != 0 {
				continue
			}
			r := rib.Best(asID)
			if !r.Valid {
				continue
			}
			src := topo.ASes[asID].Cities[0]
			phys, err := res.Resolve(r, src, p.City)
			if err != nil {
				t.Fatalf("resolve %s -> prefix %d: %v", topo.ASes[asID].Name, p.ID, err)
			}
			resolved++
			// Sanity: carried distance at least the geodesic between the
			// endpoints is NOT guaranteed hop-by-hop, but total must be
			// >= 0 and RTT positive for distinct cities.
			if phys.Km < 0 {
				t.Fatalf("negative distance")
			}
			if src != p.City && phys.PropRTTMs() <= 0 {
				t.Fatalf("non-positive RTT for distinct endpoints")
			}
			// Hops must chain: egress of hop i == ingress of hop i+1.
			for h := 0; h+1 < len(phys.Hops); h++ {
				if phys.Hops[h].Egress != phys.Hops[h+1].Ingress {
					t.Fatalf("hop chain broken at %d", h)
				}
			}
			if phys.Hops[0].Ingress != src || phys.Hops[len(phys.Hops)-1].Egress != p.City {
				t.Fatalf("endpoints wrong")
			}
		}
	}
	if resolved < 50 {
		t.Fatalf("only %d paths resolved", resolved)
	}
}

func BenchmarkResolve(b *testing.B) {
	topo, err := topology.Generate(topology.GenConfig{Seed: 3, EyeballsPerRegion: 6})
	if err != nil {
		b.Fatal(err)
	}
	oracle := bgp.NewOracle(topo)
	res := NewResolver(topo)
	p := topo.Prefixes[0]
	rib, err := oracle.ToPrefix(p)
	if err != nil {
		b.Fatal(err)
	}
	var src int
	var route bgp.Route
	for _, asID := range topo.ByClass(topology.Eyeball) {
		if asID != p.Origin && rib.Best(asID).Valid {
			src = topo.ASes[asID].Cities[0]
			route = rib.Best(asID)
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := res.Resolve(route, src, p.City); err != nil {
			b.Fatal(err)
		}
	}
}
