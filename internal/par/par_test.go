package par

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"beatbgp/internal/xrand"
)

func ints(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 100} {
		got, err := Map(workers, ints(57), func(i, item int) (int, error) {
			return item * item, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(4, nil, func(i, item int) (int, error) { return 0, nil })
	if err != nil || got != nil {
		t.Fatalf("empty input: got %v, %v", got, err)
	}
}

func TestMapLowestIndexError(t *testing.T) {
	// Several items fail; the reported error must be the lowest failing
	// index regardless of completion order — the error a serial loop
	// would have hit.
	for _, workers := range []int{1, 2, 8} {
		_, err := Map(workers, ints(64), func(i, item int) (int, error) {
			if i%7 == 3 { // fails at 3, 10, 17, ...
				return 0, fmt.Errorf("boom at %d", i)
			}
			return item, nil
		})
		if err == nil || !strings.Contains(err.Error(), "boom at 3") {
			t.Fatalf("workers=%d: want lowest-index error, got %v", workers, err)
		}
	}
}

func TestMapPanicCaptured(t *testing.T) {
	_, err := Map(4, ints(16), func(i, item int) (int, error) {
		if i == 5 {
			panic("kaboom")
		}
		return item, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %T: %v", err, err)
	}
	if !strings.Contains(pe.Error(), "kaboom") || len(pe.Stack) == 0 {
		t.Fatalf("panic error lacks value or stack: %v", pe)
	}
}

func TestMapCtxCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := MapCtx(ctx, 4, ints(100), func(i, item int) (int, error) {
		return item, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestMapCtxCancelMidway(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var n atomic.Int64
	_, err := MapCtx(ctx, 2, ints(10_000), func(i, item int) (int, error) {
		if n.Add(1) == 50 {
			cancel()
		}
		return item, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if got := n.Load(); got >= 10_000 {
		t.Fatalf("cancellation did not stop dispatch: %d items ran", got)
	}
}

func TestMapStatePerWorkerState(t *testing.T) {
	// Each worker's state is confined: no two goroutines ever share one.
	// Every state instance counts its own items; the counts must sum to n.
	type counter struct{ n int }
	var made atomic.Int64
	states := make([]*counter, 64)
	got, err := MapState(8, ints(500),
		func(worker int) *counter {
			c := &counter{}
			states[made.Add(1)-1] = c
			return c
		},
		func(c *counter, i, item int) (int, error) {
			c.n++
			return item, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 500 {
		t.Fatalf("got %d results", len(got))
	}
	total := 0
	for i := int64(0); i < made.Load(); i++ {
		total += states[i].n
	}
	if total != 500 {
		t.Fatalf("per-worker counts sum to %d, want 500", total)
	}
}

func TestMapStateNewStatePanic(t *testing.T) {
	_, err := MapState(4, ints(8),
		func(worker int) int {
			if worker == 0 {
				panic("bad state")
			}
			return worker
		},
		func(st, i, item int) (int, error) { return item, nil })
	// With >1 workers the surviving workers may finish everything before
	// the panicking one registers, but the panic must still surface.
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError from newState, got %v", err)
	}
}

func TestChunks(t *testing.T) {
	cases := []struct {
		n, workers int
		want       []Span
	}{
		{0, 4, nil},
		{-3, 4, nil},
		{5, 2, []Span{{0, 3}, {3, 5}}},
		{4, 4, []Span{{0, 1}, {1, 2}, {2, 3}, {3, 4}}},
		{3, 8, []Span{{0, 1}, {1, 2}, {2, 3}}},
		{10, 3, []Span{{0, 4}, {4, 7}, {7, 10}}},
	}
	for _, c := range cases {
		got := Chunks(c.n, c.workers)
		if len(got) != len(c.want) {
			t.Fatalf("Chunks(%d,%d) = %v, want %v", c.n, c.workers, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("Chunks(%d,%d) = %v, want %v", c.n, c.workers, got, c.want)
			}
		}
	}
	// Spans must always tile [0, n) in order.
	for n := 1; n < 40; n++ {
		for w := 1; w < 12; w++ {
			lo := 0
			for _, sp := range Chunks(n, w) {
				if sp.Lo != lo || sp.Hi <= sp.Lo {
					t.Fatalf("Chunks(%d,%d): bad span %v", n, w, sp)
				}
				lo = sp.Hi
			}
			if lo != n {
				t.Fatalf("Chunks(%d,%d) covers [0,%d), want [0,%d)", n, w, lo, n)
			}
		}
	}
}

func TestWorkersResolution(t *testing.T) {
	if Workers(5) != 5 {
		t.Fatal("explicit worker count not honored")
	}
	if Workers(0) < 1 || Workers(-2) < 1 {
		t.Fatal("defaulted worker count below 1")
	}
}

// TestStressRandomWorkersVsSerialOracle is the randomized stress check
// behind `make stress-par`: many rounds of random worker counts and input
// sizes, with per-item keyed random draws, compared against a serial
// oracle computed with the same keying.
func TestStressRandomWorkersVsSerialOracle(t *testing.T) {
	rounds := 40
	if testing.Short() {
		rounds = 8
	}
	meta := xrand.New(0xC0FFEE)
	for round := 0; round < rounds; round++ {
		n := 1 + meta.Intn(300)
		workers := 1 + meta.Intn(16)
		seed := meta.Uint64()
		item := func(i int) float64 {
			// Draws keyed by item index — the package's RNG-splitting rule.
			rng := xrand.Derive(seed, uint64(i))
			return rng.Float64() + rng.Norm(0, 1) + float64(i)
		}
		want := make([]float64, n)
		for i := range want {
			want[i] = item(i)
		}
		got, err := Map(workers, ints(n), func(i, _ int) (float64, error) {
			return item(i), nil
		})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d (n=%d workers=%d): item %d: parallel %v != serial %v",
					round, n, workers, i, got[i], want[i])
			}
		}
	}
}

// FuzzMapVsSerial fuzzes worker counts and seeds against the serial
// oracle; `make fuzz-par` runs it for longer.
func FuzzMapVsSerial(f *testing.F) {
	f.Add(uint64(1), 4, 64)
	f.Add(uint64(42), 1, 7)
	f.Add(uint64(7), 13, 200)
	f.Fuzz(func(t *testing.T, seed uint64, workers, n int) {
		if n < 0 {
			n = -n
		}
		n %= 512
		item := func(i int) uint64 { return xrand.Derive(seed, uint64(i)).Uint64() }
		got, err := Map(workers, ints(n), func(i, _ int) (uint64, error) {
			return item(i), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			if got[i] != item(i) {
				t.Fatalf("item %d diverges from serial oracle", i)
			}
		}
	})
}
