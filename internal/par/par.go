// Package par is the deterministic parallel execution runtime: a bounded
// worker pool plus generic sharded fan-out with ordered, index-based
// merge, so that sharding work across cores never changes what the work
// computes.
//
// # The determinism contract
//
// Every combinator in this package returns results in INPUT order, not
// completion order, and cancels-and-drains on the first failure. A caller
// that (a) makes each item's computation a pure function of the item and
// its index — random draws keyed by the item, never by the worker or the
// wall clock — and (b) folds the returned slice serially, gets
// byte-identical output at any worker count, including 1. Per-worker
// state (see MapState) exists for goroutine-confined caches whose VALUES
// are pure functions of their keys (netsim.Sim's sampling state,
// cable.Network's path memo): which worker computes an item may vary run
// to run, but what it computes may not.
//
// Random streams for sharded work must be split per item index, not per
// worker: use xrand.Derive(seed, uint64(i), ...) so draws are a function
// of the shard, not of scheduling.
//
// # Failure semantics
//
// A panic inside a worker is captured with its stack and surfaced as a
// *PanicError; it does not crash the process. When several items fail
// (error or panic), the error of the LOWEST item index is returned — the
// same error a serial loop would have hit first — so error output is as
// deterministic as success output. Context cancellation stops dispatch;
// in-flight items finish and their results are discarded.
package par

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: n > 0 is honored as given,
// n <= 0 selects GOMAXPROCS. The result is always at least 1.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	if p := runtime.GOMAXPROCS(0); p > 0 {
		return p
	}
	return 1
}

// PanicError is a worker panic captured by the pool: the recovered value
// and the goroutine stack at the point of the panic.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("par: worker panicked: %v\n%s", e.Value, e.Stack)
}

// Span is one contiguous index range [Lo, Hi) of a sharded input.
type Span struct{ Lo, Hi int }

// Chunks splits n items into at most `workers` contiguous spans of
// near-equal size, in index order. It is the sharding rule for
// coarse-grained fan-out: pass the spans to Map and iterate each span
// serially inside the worker. n <= 0 yields no spans.
func Chunks(n, workers int) []Span {
	if n <= 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	out := make([]Span, 0, w)
	lo := 0
	for i := 0; i < w; i++ {
		// Distribute the remainder one item at a time so span sizes
		// differ by at most one.
		size := n / w
		if i < n%w {
			size++
		}
		out = append(out, Span{Lo: lo, Hi: lo + size})
		lo += size
	}
	return out
}

// Map applies fn to every item on a bounded worker pool and returns the
// results in input order. See MapCtx for semantics.
func Map[T, R any](workers int, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	return MapCtx(context.Background(), workers, items, fn)
}

// MapCtx is Map honoring context cancellation: dispatch stops once the
// context is done and the context's error is returned. On an item error
// (or captured panic) the pool stops dispatching, drains in-flight work,
// and returns the failing error of the lowest item index; the partial
// result slice is discarded (nil).
func MapCtx[T, R any](ctx context.Context, workers int, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	return MapStateCtx(ctx, workers, items,
		func(int) struct{} { return struct{}{} },
		func(_ struct{}, i int, item T) (R, error) { return fn(i, item) })
}

// MapState is MapCtx with a per-worker state factory and a background
// context. newState runs once per spawned worker, in the worker's
// goroutine, before it processes its first item.
func MapState[S, T, R any](workers int, items []T, newState func(worker int) S, fn func(st S, i int, item T) (R, error)) ([]R, error) {
	return MapStateCtx(context.Background(), workers, items, newState, fn)
}

// MapStateCtx applies fn to every item on a bounded pool of `workers`
// goroutines, each carrying private state built by newState, and returns
// the results in input order.
//
// State is for goroutine-confined caches only: item assignment to workers
// is scheduling-dependent, so fn must compute the same result for a given
// (i, item) regardless of which state instance it runs against.
func MapStateCtx[S, T, R any](ctx context.Context, workers int, items []T, newState func(worker int) S, fn func(st S, i int, item T) (R, error)) ([]R, error) {
	n := len(items)
	if n == 0 {
		return nil, ctx.Err()
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	results := make([]R, n)

	var (
		next     atomic.Int64 // dispatch cursor
		stop     atomic.Bool  // set on first failure or cancellation
		mu       sync.Mutex
		firstErr error
		errIdx   = n + 1 // index of the lowest failing item
	)
	fail := func(i int, err error) {
		stop.Store(true)
		mu.Lock()
		if i < errIdx {
			errIdx, firstErr = i, err
		}
		mu.Unlock()
	}

	var wg sync.WaitGroup
	for worker := 0; worker < w; worker++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			// A panicking newState poisons only items this worker would
			// have taken; runItem's recover shape keeps the pool alive.
			var st S
			if err := capture(func() { st = newState(worker) }); err != nil {
				// Attribute the state failure to the next undispatched
				// item so the reported index is as low as possible; a
				// state failure always surfaces (index <= n) even when
				// the other workers have already drained every item.
				i := int(next.Load())
				if i > n {
					i = n
				}
				fail(i, err)
				return
			}
			for !stop.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					fail(i, err)
					return
				}
				var r R
				var ferr error
				if perr := capture(func() { r, ferr = fn(st, i, items[i]) }); perr != nil {
					ferr = perr
				}
				if ferr != nil {
					fail(i, fmt.Errorf("par: item %d: %w", i, ferr))
					return
				}
				results[i] = r
			}
		}(worker)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		// Cancelled after the last item was dispatched but before any
		// worker observed it: still report the cancellation.
		return nil, err
	}
	return results, nil
}

// capture runs f, converting a panic into a *PanicError.
func capture(f func()) (err error) {
	defer func() {
		if p := recover(); p != nil {
			buf := make([]byte, 16<<10)
			buf = buf[:runtime.Stack(buf, false)]
			err = &PanicError{Value: p, Stack: buf}
		}
	}()
	f()
	return nil
}
