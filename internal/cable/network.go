package cable

import (
	"fmt"
	"math"
	"sync"
)

// Network is one organization's overlay on the physical graph: the subset
// of fiber segments it lights, plus an operational stretch factor that
// models how well-run its internal routing is (1.0 = optimal shortest
// paths; eyeball ISPs typically run 1.1–1.3).
//
// A Network memoizes single-source shortest-path trees, so repeated Path
// queries are cheap. The memo is guarded, so Path/DistKm/NearestPresent
// are safe to call from any number of goroutines (internal/par workers
// included); each tree is a pure function of the source city, so query
// results are identical whatever the interleaving. Precompute builds
// every tree up front, turning the memo immutable-after-build so
// concurrent queries never contend on the write path. Topology (the edge
// set and footprint) is still fixed at construction and must not change
// afterwards.
type Network struct {
	Name    string
	Stretch float64

	g       *Graph
	edgeOK  []bool
	present []bool // city -> is in footprint

	mu    sync.RWMutex
	cache map[int]sstree
}

type sstree struct {
	dist     []float64
	prevEdge []int
}

// NewNetwork builds an overlay containing exactly the given edge IDs.
// Stretch values below 1 are raised to 1.
func NewNetwork(g *Graph, name string, edgeIDs []int, stretch float64) *Network {
	if stretch < 1 {
		stretch = 1
	}
	n := &Network{
		Name:    name,
		Stretch: stretch,
		g:       g,
		edgeOK:  make([]bool, g.NumEdges()),
		present: make([]bool, g.Catalog().Len()),
		cache:   make(map[int]sstree),
	}
	for _, id := range edgeIDs {
		n.edgeOK[id] = true
		e := g.Edge(id)
		n.present[e.A] = true
		n.present[e.B] = true
	}
	return n
}

// NetworkFromCities builds an overlay whose *presence* (where it can
// originate, terminate, and interconnect traffic) is the given footprint,
// but whose *conduit* is the whole physical graph: real networks lease
// IRU capacity along entire cable systems, so their internal paths follow
// physically shortest routes between their cities even when intermediate
// landing points are not commercial PoPs of theirs. Modeling conduits as
// footprint-induced subgraphs instead produces wildly inflated internal
// geometry (a backbone missing one intermediate metro would detour across
// an ocean), which no operator would accept.
//
// Networks that deliberately restrict their conduit — such as a content
// provider's curated WAN — use NewNetwork with an explicit edge list.
func NetworkFromCities(g *Graph, name string, cities []int, stretch float64) (*Network, error) {
	if len(cities) == 0 {
		return nil, fmt.Errorf("cable: network %q has empty footprint", name)
	}
	edgeIDs := make([]int, g.NumEdges())
	for i := range edgeIDs {
		edgeIDs[i] = i
	}
	n := NewNetwork(g, name, edgeIDs, stretch)
	// Presence is the footprint, not "every city an edge touches".
	for i := range n.present {
		n.present[i] = false
	}
	for _, c := range cities {
		if c < 0 || c >= len(n.present) {
			return nil, fmt.Errorf("cable: network %q footprint city %d out of range", name, c)
		}
		n.present[c] = true
	}
	return n, nil
}

// Graph returns the underlying physical graph.
func (n *Network) Graph() *Graph { return n.g }

// Present reports whether the network has presence in the city.
func (n *Network) Present(city int) bool {
	return city >= 0 && city < len(n.present) && n.present[city]
}

// Cities returns the network's footprint in ascending city-ID order.
func (n *Network) Cities() []int {
	var out []int
	for c, ok := range n.present {
		if ok {
			out = append(out, c)
		}
	}
	return out
}

func (n *Network) tree(src int) sstree {
	n.mu.RLock()
	t, ok := n.cache[src]
	n.mu.RUnlock()
	if ok {
		return t
	}
	// Compute outside the lock: the tree is a pure function of src, so
	// concurrent duplicate computation is wasted work at worst, never a
	// wrong answer. Last writer wins with an identical value.
	dist, prevEdge := n.g.shortest(src, func(e Edge) bool {
		return e.ID < len(n.edgeOK) && n.edgeOK[e.ID]
	})
	t = sstree{dist, prevEdge}
	n.mu.Lock()
	n.cache[src] = t
	n.mu.Unlock()
	return t
}

// Precompute builds the shortest-path tree of every footprint city,
// making the memo effectively immutable: subsequent Path queries are
// read-only and scale across cores without write contention. It returns
// the number of trees resident afterwards.
func (n *Network) Precompute() int {
	for c, ok := range n.present {
		if ok {
			n.tree(c)
		}
	}
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.cache)
}

// Path returns the network's internal route between two footprint cities.
// The returned kilometers include the operational stretch factor. ok is
// false if either city is outside the footprint or unreachable within it.
func (n *Network) Path(from, to int) (Path, bool) {
	if !n.Present(from) || !n.Present(to) {
		return Path{}, false
	}
	if from == to {
		return Path{Cities: []int{from}}, true
	}
	t := n.tree(from)
	if math.IsInf(t.dist[to], 1) {
		return Path{}, false
	}
	var cities []int
	for at := to; ; {
		cities = append(cities, at)
		if at == from {
			break
		}
		at = n.g.edges[t.prevEdge[at]].Other(at)
	}
	for i, j := 0, len(cities)-1; i < j; i, j = i+1, j-1 {
		cities[i], cities[j] = cities[j], cities[i]
	}
	return Path{Cities: cities, Km: t.dist[to] * n.Stretch}, true
}

// DistKm returns the network-internal distance between two footprint
// cities, or +Inf when unreachable.
func (n *Network) DistKm(from, to int) float64 {
	p, ok := n.Path(from, to)
	if !ok {
		return math.Inf(1)
	}
	return p.Km
}

// NearestPresent returns the footprint city closest (by network distance)
// to the given footprint city set origin; used for exit-policy decisions.
// It returns -1 if none of the candidates is reachable.
func (n *Network) NearestPresent(from int, candidates []int) int {
	best, bestKm := -1, math.Inf(1)
	for _, c := range candidates {
		if d := n.DistKm(from, c); d < bestKm {
			best, bestKm = c, d
		}
	}
	return best
}
