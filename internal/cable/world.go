package cable

import (
	"fmt"
	"math"
	"sort"

	"beatbgp/internal/geo"
)

// submarineSpec is one curated submarine cable (or inter-region land
// bridge). km == 0 derives the length from the geodesic distance.
type submarineSpec struct {
	a, b      string
	km        float64
	submarine bool
}

// worldCables is the curated long-haul map. The set is chosen to reproduce
// the real Internet's macro-geography, and in particular the paper's §3.3.2
// case study: India reaches Europe over the Suez route (short, westward)
// and East Asia over the Bay of Bengal (long, eastward toward the
// trans-Pacific cables).
var worldCables = []submarineSpec{
	// Trans-Atlantic.
	{"NewYork", "London", 0, true},
	{"Ashburn", "Paris", 0, true},
	{"Boston", "Dublin", 0, true},
	{"Miami", "Lisbon", 0, true},
	{"Montreal", "London", 0, true},

	// Trans-Pacific.
	{"Tokyo", "Seattle", 0, true},
	{"Tokyo", "LosAngeles", 0, true},
	{"Tokyo", "SanJose", 0, true},
	{"HongKong", "LosAngeles", 0, true},
	{"Sydney", "LosAngeles", 0, true},
	{"Honolulu", "LosAngeles", 0, true},
	{"Honolulu", "Tokyo", 0, true},
	{"Honolulu", "Sydney", 0, true},
	{"Honolulu", "Guam", 0, true},
	{"Guam", "Tokyo", 0, true},
	{"Guam", "Sydney", 0, true},
	{"Guam", "HongKong", 0, true},

	// Americas north-south.
	{"Miami", "Caracas", 0, true},
	{"Miami", "PanamaCity", 0, true},
	{"Miami", "Fortaleza", 0, true},
	{"PanamaCity", "Bogota", 0, true},
	{"PanamaCity", "Lima", 0, true},
	{"Lima", "Santiago", 0, true},
	{"Fortaleza", "Lisbon", 0, true},

	// Europe <-> Middle East / Suez route to Asia. The Dubai–Jeddah hop is
	// given its real sea-route length (around the Arabian peninsula), not
	// the much shorter geodesic.
	{"Marseille", "Alexandria", 0, true},
	{"Alexandria", "Jeddah", 1700, true},
	{"Jeddah", "Dubai", 3200, true},
	{"Dubai", "Mumbai", 0, true},
	{"Dubai", "Karachi", 0, true},
	{"Mumbai", "Colombo", 0, true},
	{"Colombo", "Singapore", 0, true},
	{"Chennai", "Singapore", 0, true},

	// Intra-Asia sea routes.
	{"Singapore", "HongKong", 0, true},
	{"Singapore", "Jakarta", 0, true},
	{"HongKong", "Taipei", 0, true},
	{"HongKong", "Manila", 0, true},
	{"Taipei", "Tokyo", 0, true},
	{"HongKong", "Tokyo", 0, true},
	{"Singapore", "Perth", 0, true},

	// Africa: west-coast and east-coast systems plus Mediterranean ties.
	{"Lisbon", "Casablanca", 0, true},
	{"Casablanca", "Dakar", 0, true},
	{"Dakar", "Abidjan", 0, true},
	{"Abidjan", "Accra", 0, true},
	{"Accra", "Lagos", 0, true},
	{"Lagos", "Luanda", 0, true},
	{"Luanda", "CapeTown", 0, true},
	{"Marseille", "Tunis", 0, true},
	{"Marseille", "Algiers", 0, true},
	{"Jeddah", "Mombasa", 0, true},
	{"Mombasa", "DarEsSalaam", 0, true},
	{"Cairo", "Jeddah", 0, true},

	// Inter-region land bridges.
	{"Istanbul", "Amman", 0, false},
	{"Istanbul", "Tehran", 0, false},
	{"Cairo", "Amman", 0, false},
	{"Tehran", "Karachi", 0, false},
	{"Moscow", "Almaty", 0, false},
	{"DarEsSalaam", "Johannesburg", 0, false},
	{"Cairo", "AddisAbaba", 0, false},
	{"AddisAbaba", "Nairobi", 0, false},
	{"Nairobi", "Mombasa", 0, false},
	{"Nairobi", "Kampala", 0, false},
}

// terrestrialNeighbors is how many nearest same-region cities each city is
// wired to with terrestrial fiber.
const terrestrialNeighbors = 3

// WorldGraph builds the default physical map over the catalog: terrestrial
// fiber between each city and its nearest same-region neighbors, plus the
// curated long-haul cable systems. The result is connected (verified by
// tests) and deterministic.
func WorldGraph(catalog *geo.Catalog) (*Graph, error) {
	g := NewGraph(catalog)
	type pair struct{ a, b int }
	seen := make(map[pair]bool)
	add := func(a, b int, km float64, submarine bool) error {
		if a > b {
			a, b = b, a
		}
		if a == b || seen[pair{a, b}] {
			return nil
		}
		seen[pair{a, b}] = true
		_, err := g.AddEdge(a, b, km, submarine)
		return err
	}

	// Terrestrial mesh: k nearest same-region neighbors, plus the
	// region's minimum spanning tree. k-nearest alone fragments dense
	// pockets (a cluster of nearby metros saturates its k slots on each
	// other and never links to the next cluster, leaving, say, western
	// India reachable from Delhi only by submarine detour); the MST
	// guarantees the terrestrial fabric is contiguous along geography.
	for _, region := range geo.Regions() {
		ids := catalog.InRegion(region)
		for _, a := range ids {
			type cand struct {
				id int
				km float64
			}
			var cands []cand
			for _, b := range ids {
				if b == a {
					continue
				}
				cands = append(cands, cand{b, geo.DistanceKm(catalog.City(a).Loc, catalog.City(b).Loc)})
			}
			sort.Slice(cands, func(i, j int) bool {
				if cands[i].km != cands[j].km {
					return cands[i].km < cands[j].km
				}
				return cands[i].id < cands[j].id
			})
			for i := 0; i < terrestrialNeighbors && i < len(cands); i++ {
				if err := add(a, cands[i].id, 0, false); err != nil {
					return nil, err
				}
			}
		}
		// Prim's MST over geodesic distances, iterated in deterministic
		// city-ID order.
		if len(ids) < 2 {
			continue
		}
		sorted := append([]int(nil), ids...)
		sort.Ints(sorted)
		inTree := map[int]bool{sorted[0]: true}
		for len(inTree) < len(sorted) {
			bestA, bestB, bestKm := -1, -1, math.Inf(1)
			for _, a := range sorted {
				if !inTree[a] {
					continue
				}
				for _, b := range sorted {
					if inTree[b] {
						continue
					}
					if d := geo.DistanceKm(catalog.City(a).Loc, catalog.City(b).Loc); d < bestKm {
						bestA, bestB, bestKm = a, b, d
					}
				}
			}
			if err := add(bestA, bestB, 0, false); err != nil {
				return nil, err
			}
			inTree[bestB] = true
		}
	}

	// Curated long-haul systems.
	for _, s := range worldCables {
		ca, ok := catalog.ByName(s.a)
		if !ok {
			return nil, fmt.Errorf("cable: unknown city %q in world cable list", s.a)
		}
		cb, ok := catalog.ByName(s.b)
		if !ok {
			return nil, fmt.Errorf("cable: unknown city %q in world cable list", s.b)
		}
		if err := add(ca.ID, cb.ID, s.km, s.submarine); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Connected reports whether every city with at least one incident edge can
// reach every other such city, and separately whether any city is
// completely isolated.
func (g *Graph) Connected() (connected bool, isolated []int) {
	n := g.catalog.Len()
	start := -1
	for c := 0; c < n; c++ {
		if len(g.adj[c]) == 0 {
			isolated = append(isolated, c)
		} else if start < 0 {
			start = c
		}
	}
	if start < 0 {
		return false, isolated
	}
	visited := make([]bool, n)
	stack := []int{start}
	visited[start] = true
	for len(stack) > 0 {
		c := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, eid := range g.adj[c] {
			nb := g.edges[eid].Other(c)
			if !visited[nb] {
				visited[nb] = true
				stack = append(stack, nb)
			}
		}
	}
	for c := 0; c < n; c++ {
		if len(g.adj[c]) > 0 && !visited[c] {
			return false, isolated
		}
	}
	return true, isolated
}
