package cable

import (
	"math"
	"testing"

	"beatbgp/internal/geo"
)

func world(t testing.TB) (*Graph, *geo.Catalog) {
	t.Helper()
	cat := geo.World()
	g, err := WorldGraph(cat)
	if err != nil {
		t.Fatalf("WorldGraph: %v", err)
	}
	return g, cat
}

func cityID(t testing.TB, cat *geo.Catalog, name string) int {
	t.Helper()
	c, ok := cat.ByName(name)
	if !ok {
		t.Fatalf("missing city %s", name)
	}
	return c.ID
}

func TestWorldGraphConnected(t *testing.T) {
	g, _ := world(t)
	connected, isolated := g.Connected()
	if len(isolated) > 0 {
		t.Fatalf("isolated cities: %v", isolated)
	}
	if !connected {
		t.Fatal("world graph is not connected")
	}
}

func TestEdgesAtLeastGeodesic(t *testing.T) {
	g, cat := world(t)
	for _, e := range g.Edges() {
		geod := geo.DistanceKm(cat.City(e.A).Loc, cat.City(e.B).Loc)
		if e.Km < geod*0.999 {
			t.Errorf("edge %s-%s shorter than geodesic: %.0f < %.0f",
				cat.City(e.A).Name, cat.City(e.B).Name, e.Km, geod)
		}
	}
}

func TestShortestPathBasics(t *testing.T) {
	g, cat := world(t)
	ny := cityID(t, cat, "NewYork")
	lon := cityID(t, cat, "London")
	p, ok := g.ShortestPath(ny, lon)
	if !ok {
		t.Fatal("no NY-London path")
	}
	// Direct trans-Atlantic cable: geodesic ~5570 km, cable 1.15x ~6400 km.
	if p.Km < 5500 || p.Km > 7000 {
		t.Fatalf("NY-London = %.0f km, want ~6400", p.Km)
	}
	if p.Cities[0] != ny || p.Cities[len(p.Cities)-1] != lon {
		t.Fatalf("endpoints wrong: %v", p.Cities)
	}
	// Path must be a contiguous walk over real edges.
	for i := 0; i+1 < len(p.Cities); i++ {
		found := false
		for _, eid := range g.EdgesAt(p.Cities[i]) {
			if g.Edge(eid).Other(p.Cities[i]) == p.Cities[i+1] {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("no edge between consecutive path cities %d-%d", p.Cities[i], p.Cities[i+1])
		}
	}
}

func TestShortestPathSelf(t *testing.T) {
	g, cat := world(t)
	ny := cityID(t, cat, "NewYork")
	p, ok := g.ShortestPath(ny, ny)
	if !ok || p.Km != 0 || len(p.Cities) != 1 {
		t.Fatalf("self path = %+v ok=%v", p, ok)
	}
}

func TestShortestPathSymmetric(t *testing.T) {
	g, cat := world(t)
	pairs := [][2]string{
		{"Tokyo", "Frankfurt"},
		{"Mumbai", "CouncilBluffs"},
		{"Sydney", "SaoPaulo"},
		{"Lagos", "Seoul"},
	}
	for _, pr := range pairs {
		a, b := cityID(t, cat, pr[0]), cityID(t, cat, pr[1])
		p1, ok1 := g.ShortestPath(a, b)
		p2, ok2 := g.ShortestPath(b, a)
		if !ok1 || !ok2 {
			t.Fatalf("%v unreachable", pr)
		}
		if math.Abs(p1.Km-p2.Km) > 1e-6 {
			t.Fatalf("%v asymmetric: %.1f vs %.1f", pr, p1.Km, p2.Km)
		}
	}
}

func TestTriangleInequalityOnShortestPaths(t *testing.T) {
	g, cat := world(t)
	a := cityID(t, cat, "London")
	b := cityID(t, cat, "Singapore")
	c := cityID(t, cat, "Dubai")
	ab, _ := g.ShortestPath(a, b)
	ac, _ := g.ShortestPath(a, c)
	cb, _ := g.ShortestPath(c, b)
	if ab.Km > ac.Km+cb.Km+1e-6 {
		t.Fatalf("shortest path violates triangle inequality: %f > %f + %f",
			ab.Km, ac.Km, cb.Km)
	}
}

func TestIndiaWestwardShorterThanEastward(t *testing.T) {
	// The §3.3.2 case study requires the physical map to make India→US
	// shorter westward (Suez + Atlantic) than eastward (trans-Pacific).
	g, cat := world(t)
	mumbai := cityID(t, cat, "Mumbai")
	usc := cityID(t, cat, "CouncilBluffs")
	tokyo := cityID(t, cat, "Tokyo")
	london := cityID(t, cat, "London")

	viaWest, ok1 := g.ShortestPath(mumbai, london)
	westTail, ok2 := g.ShortestPath(london, usc)
	viaEast, ok3 := g.ShortestPath(mumbai, tokyo)
	eastTail, ok4 := g.ShortestPath(tokyo, usc)
	if !ok1 || !ok2 || !ok3 || !ok4 {
		t.Fatal("missing long-haul paths")
	}
	west := viaWest.Km + westTail.Km
	east := viaEast.Km + eastTail.Km
	if west >= east {
		t.Fatalf("westward %0.f km should beat eastward %0.f km", west, east)
	}
	// The overall shortest path should therefore go west.
	direct, _ := g.ShortestPath(mumbai, usc)
	if direct.Km > west+1e-6 {
		t.Fatalf("direct %0.f km should be <= westward composite %0.f km", direct.Km, west)
	}
}

func TestRTTms(t *testing.T) {
	p := Path{Km: 1000}
	if math.Abs(p.RTTMs()-10) > 1e-9 {
		t.Fatalf("1000 km RTT = %v, want 10 ms", p.RTTMs())
	}
}

func TestAddEdgeValidation(t *testing.T) {
	g := NewGraph(geo.World())
	if _, err := g.AddEdge(1, 1, 0, false); err == nil {
		t.Fatal("self-loop accepted")
	}
	if _, err := g.AddEdge(-1, 2, 0, false); err == nil {
		t.Fatal("negative city accepted")
	}
	if _, err := g.AddEdge(0, 10_000, 0, false); err == nil {
		t.Fatal("out-of-range city accepted")
	}
}

func TestNetworkRestrictsRouting(t *testing.T) {
	g, cat := world(t)
	mumbai := cityID(t, cat, "Mumbai")
	chennai := cityID(t, cat, "Chennai")
	singapore := cityID(t, cat, "Singapore")
	hk := cityID(t, cat, "HongKong")
	tokyo := cityID(t, cat, "Tokyo")
	seattle := cityID(t, cat, "Seattle")
	usc := cityID(t, cat, "CouncilBluffs")

	// An eastward-only WAN: India -> Singapore -> HK -> Tokyo -> Seattle ->
	// US Central, built from the physical shortest-path chain between
	// consecutive waypoints. No westward (Suez/Atlantic) edge is included.
	var edgeIDs []int
	waypoints := []int{mumbai, chennai, singapore, hk, tokyo, seattle, usc}
	for w := 0; w+1 < len(waypoints); w++ {
		sp, ok := g.ShortestPath(waypoints[w], waypoints[w+1])
		if !ok {
			t.Fatalf("no physical route between waypoints %d and %d", waypoints[w], waypoints[w+1])
		}
		for i := 0; i+1 < len(sp.Cities); i++ {
			for _, eid := range g.EdgesAt(sp.Cities[i]) {
				if g.Edge(eid).Other(sp.Cities[i]) == sp.Cities[i+1] {
					edgeIDs = append(edgeIDs, eid)
				}
			}
		}
	}

	wan := NewNetwork(g, "eastwan", edgeIDs, 1.0)
	p, ok := wan.Path(mumbai, usc)
	if !ok {
		t.Fatal("WAN cannot route Mumbai->USC")
	}
	full, _ := g.ShortestPath(mumbai, usc)
	if p.Km <= full.Km {
		t.Fatalf("eastward WAN (%.0f km) should be longer than unrestricted west route (%.0f km)",
			p.Km, full.Km)
	}
	// And the WAN must not be able to reach cities outside its footprint.
	if _, ok := wan.Path(mumbai, cityID(t, cat, "London")); ok {
		t.Fatal("WAN routed to a city outside its footprint")
	}
}

func TestNetworkFromCitiesLeasesDisconnectedFootprint(t *testing.T) {
	g, cat := world(t)
	// A footprint with two far-apart cities that share no direct edge.
	cities := []int{cityID(t, cat, "Helsinki"), cityID(t, cat, "CapeTown")}
	n, err := NetworkFromCities(g, "scattered", cities, 1.1)
	if err != nil {
		t.Fatalf("NetworkFromCities: %v", err)
	}
	p, ok := n.Path(cities[0], cities[1])
	if !ok {
		t.Fatal("leased network cannot connect its own footprint")
	}
	full, _ := g.ShortestPath(cities[0], cities[1])
	if p.Km < full.Km {
		t.Fatalf("leased path %.0f km shorter than physical shortest %.0f km", p.Km, full.Km)
	}
}

func TestNetworkFromCitiesEmpty(t *testing.T) {
	g, _ := world(t)
	if _, err := NetworkFromCities(g, "none", nil, 1); err == nil {
		t.Fatal("empty footprint accepted")
	}
}

func TestNetworkStretchApplied(t *testing.T) {
	g, cat := world(t)
	all := make([]int, g.NumEdges())
	for i := range all {
		all[i] = i
	}
	fast := NewNetwork(g, "fast", all, 1.0)
	slow := NewNetwork(g, "slow", all, 1.3)
	a, b := cityID(t, cat, "Paris"), cityID(t, cat, "Warsaw")
	pf, _ := fast.Path(a, b)
	ps, _ := slow.Path(a, b)
	if math.Abs(ps.Km-pf.Km*1.3) > 1e-6 {
		t.Fatalf("stretch not applied: %v vs %v", ps.Km, pf.Km)
	}
}

func TestNearestPresent(t *testing.T) {
	g, cat := world(t)
	all := make([]int, g.NumEdges())
	for i := range all {
		all[i] = i
	}
	n := NewNetwork(g, "all", all, 1.0)
	paris := cityID(t, cat, "Paris")
	got := n.NearestPresent(paris, []int{
		cityID(t, cat, "Tokyo"), cityID(t, cat, "London"), cityID(t, cat, "Sydney"),
	})
	if got != cityID(t, cat, "London") {
		t.Fatalf("nearest to Paris = %d, want London", got)
	}
	if n.NearestPresent(paris, nil) != -1 {
		t.Fatal("empty candidate list should return -1")
	}
}

func TestNetworkCacheConsistency(t *testing.T) {
	g, cat := world(t)
	all := make([]int, g.NumEdges())
	for i := range all {
		all[i] = i
	}
	n := NewNetwork(g, "all", all, 1.0)
	a, b := cityID(t, cat, "Madrid"), cityID(t, cat, "Seoul")
	p1, _ := n.Path(a, b)
	p2, _ := n.Path(a, b) // served from cache
	if p1.Km != p2.Km || len(p1.Cities) != len(p2.Cities) {
		t.Fatal("cached path differs from first computation")
	}
}

func BenchmarkWorldGraphBuild(b *testing.B) {
	cat := geo.World()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := WorldGraph(cat); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkShortestPath(b *testing.B) {
	g, cat := world(b)
	a := cityID(b, cat, "Mumbai")
	z := cityID(b, cat, "CouncilBluffs")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := g.ShortestPath(a, z); !ok {
			b.Fatal("unreachable")
		}
	}
}
