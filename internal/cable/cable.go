// Package cable models the physical layer of the simulator: a graph of
// fiber segments (terrestrial routes and submarine cables) over the city
// catalog. Every network in the simulation — transit backbones, eyeball
// ISPs, and the content provider's private WAN — forwards traffic along
// some subset of this shared physical graph, so geographic routing
// artifacts (trans-Pacific vs trans-Atlantic paths, Suez-route cables,
// path stretch) emerge from the same substrate everywhere.
package cable

import (
	"container/heap"
	"fmt"
	"math"

	"beatbgp/internal/geo"
)

// Edge is one physical fiber segment between two catalog cities.
type Edge struct {
	ID        int
	A, B      int     // city IDs, A < B
	Km        float64 // route kilometers (≥ great-circle distance)
	Submarine bool
	Leased    bool // synthesized to reconnect a network footprint
}

// Other returns the endpoint of e that is not city.
func (e Edge) Other(city int) int {
	if city == e.A {
		return e.B
	}
	return e.A
}

// Graph is the physical fiber map. Construct with NewGraph or WorldGraph;
// a Graph is immutable after construction and safe for concurrent reads.
type Graph struct {
	catalog *geo.Catalog
	edges   []Edge
	adj     [][]int // city ID -> edge IDs
}

// NewGraph returns an empty graph over the catalog's cities.
func NewGraph(catalog *geo.Catalog) *Graph {
	return &Graph{
		catalog: catalog,
		adj:     make([][]int, catalog.Len()),
	}
}

// Catalog returns the city catalog the graph is built over.
func (g *Graph) Catalog() *geo.Catalog { return g.catalog }

// NumEdges returns the number of physical segments.
func (g *Graph) NumEdges() int { return len(g.edges) }

// Edge returns the edge with the given ID.
func (g *Graph) Edge(id int) Edge { return g.edges[id] }

// Edges returns a copy of all edges.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// AddEdge inserts a segment between cities a and b. km <= 0 means "derive
// from geodesic distance times circuity": terrestrial routes get 1.25x,
// submarine cables 1.15x (cables run fairly straight). Self-loops and
// out-of-range cities are rejected.
func (g *Graph) AddEdge(a, b int, km float64, submarine bool) (Edge, error) {
	if a == b {
		return Edge{}, fmt.Errorf("cable: self-loop at city %d", a)
	}
	if a < 0 || b < 0 || a >= g.catalog.Len() || b >= g.catalog.Len() {
		return Edge{}, fmt.Errorf("cable: city out of range (%d,%d)", a, b)
	}
	if a > b {
		a, b = b, a
	}
	if km <= 0 {
		d := geo.DistanceKm(g.catalog.City(a).Loc, g.catalog.City(b).Loc)
		circuity := 1.25
		if submarine {
			circuity = 1.15
		}
		km = d * circuity
	}
	e := Edge{ID: len(g.edges), A: a, B: b, Km: km, Submarine: submarine}
	g.edges = append(g.edges, e)
	g.adj[a] = append(g.adj[a], e.ID)
	g.adj[b] = append(g.adj[b], e.ID)
	return e, nil
}

// EdgesAt returns the IDs of edges incident to the city.
func (g *Graph) EdgesAt(city int) []int {
	out := make([]int, len(g.adj[city]))
	copy(out, g.adj[city])
	return out
}

// pqItem is a priority-queue entry for Dijkstra.
type pqItem struct {
	city int
	dist float64
}

type pq []pqItem

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].dist < p[j].dist }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	item := old[n-1]
	*p = old[:n-1]
	return item
}

// shortest runs Dijkstra from src using only edges for which allow returns
// true (allow == nil admits every edge). It returns per-city distances in
// km (math.Inf for unreachable) and the predecessor edge IDs.
func (g *Graph) shortest(src int, allow func(Edge) bool) (dist []float64, prevEdge []int) {
	n := g.catalog.Len()
	dist = make([]float64, n)
	prevEdge = make([]int, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prevEdge[i] = -1
	}
	dist[src] = 0
	q := &pq{{src, 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if it.dist > dist[it.city] {
			continue
		}
		for _, eid := range g.adj[it.city] {
			e := g.edges[eid]
			if allow != nil && !allow(e) {
				continue
			}
			next := e.Other(it.city)
			nd := it.dist + e.Km
			if nd < dist[next] {
				dist[next] = nd
				prevEdge[next] = eid
				heap.Push(q, pqItem{next, nd})
			}
		}
	}
	return dist, prevEdge
}

// Path is a physical route: the city sequence and total kilometers.
type Path struct {
	Cities []int
	Km     float64
}

// RTTMs returns the propagation round-trip time of the path.
func (p Path) RTTMs() float64 { return p.Km * geo.FiberRTTMsPerKm }

// ShortestPath returns the minimum-distance route between two cities over
// the full graph. ok is false when no route exists.
func (g *Graph) ShortestPath(from, to int) (Path, bool) {
	return g.shortestPathFiltered(from, to, nil)
}

func (g *Graph) shortestPathFiltered(from, to int, allow func(Edge) bool) (Path, bool) {
	if from == to {
		return Path{Cities: []int{from}}, true
	}
	dist, prevEdge := g.shortest(from, allow)
	if math.IsInf(dist[to], 1) {
		return Path{}, false
	}
	var cities []int
	for at := to; ; {
		cities = append(cities, at)
		if at == from {
			break
		}
		at = g.edges[prevEdge[at]].Other(at)
	}
	// Reverse into from->to order.
	for i, j := 0, len(cities)-1; i < j; i, j = i+1, j-1 {
		cities[i], cities[j] = cities[j], cities[i]
	}
	return Path{Cities: cities, Km: dist[to]}, true
}
