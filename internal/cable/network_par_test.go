package cable

import (
	"testing"

	"beatbgp/internal/par"
)

// TestPathConcurrentFromParMap hammers one Network's path memo from
// par.Map workers under -race: the shared-cache hazard the parallel
// runtime had to fix. Every concurrent answer must match a serially
// warmed oracle bit for bit.
func TestPathConcurrentFromParMap(t *testing.T) {
	g, cat := world(t)
	cities := make([]int, cat.Len())
	for i := range cities {
		cities[i] = i
	}
	n, err := NetworkFromCities(g, "global-backbone", cities, 1.1)
	if err != nil {
		t.Fatal(err)
	}

	// Serial oracle on a twin network with an independent memo.
	oracle, err := NetworkFromCities(g, "oracle", cities, 1.1)
	if err != nil {
		t.Fatal(err)
	}

	// Queries spread across many sources so workers race on cache
	// *insertion*, not just lookup.
	type query struct{ from, to int }
	var queries []query
	for i := 0; i < cat.Len(); i += 3 {
		for j := 1; j < cat.Len(); j += 17 {
			queries = append(queries, query{i, (i + j) % cat.Len()})
		}
	}
	got, err := par.Map(8, queries, func(_ int, q query) (float64, error) {
		p, ok := n.Path(q.from, q.to)
		if !ok {
			return -1, nil
		}
		return p.Km, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		want := -1.0
		if p, ok := oracle.Path(q.from, q.to); ok {
			want = p.Km
		}
		if got[i] != want {
			t.Fatalf("query %d (%d->%d): concurrent %v != serial %v", i, q.from, q.to, got[i], want)
		}
	}
}

// TestPrecomputeFreezesMemo verifies Precompute builds a tree per
// footprint city and that post-precompute queries agree with the lazily
// built answers.
func TestPrecomputeFreezesMemo(t *testing.T) {
	g, cat := world(t)
	ny := cityID(t, cat, "NewYork")
	lon := cityID(t, cat, "London")
	lazy, err := NetworkFromCities(g, "lazy", []int{ny, lon}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	eager, err := NetworkFromCities(g, "eager", []int{ny, lon}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if trees := eager.Precompute(); trees != 2 {
		t.Fatalf("Precompute built %d trees, want 2", trees)
	}
	lp, lok := lazy.Path(ny, lon)
	ep, eok := eager.Path(ny, lon)
	if lok != eok || lp.Km != ep.Km {
		t.Fatalf("precomputed path diverges: %v/%v vs %v/%v", ep, eok, lp, lok)
	}
}
