package faults

import (
	"fmt"
	"math"

	"beatbgp/internal/topology"
	"beatbgp/internal/xrand"
)

// GenConfig parameterizes seed-deterministic fault-schedule generation.
// Counts are exact (a generated timeline has precisely the requested
// number of each event class); times and targets are drawn from the seed.
// The zero value plus a seed generates nothing — callers opt into each
// fault class explicitly.
type GenConfig struct {
	Seed           uint64
	HorizonMinutes float64 // schedule window (default 10 days)

	CableCuts          int     // submarine/terrestrial segment cuts
	CableRepairMeanMin float64 // mean time to splice (default 12h)

	LinkResets         int     // peering-session resets
	LinkResetMeanMin   float64 // mean session-down time (default 30)
	ASOutages          int     // whole-AS outages
	ASOutageMeanMin    float64 // mean outage length (default 60)
	FacilityOutages    int     // metro facility outages
	FacilityMeanMin    float64 // mean facility-dark time (default 90)
	Storms             int     // metro congestion storms
	StormMeanMin       float64 // mean storm length (default 120)
	StormMagnitudeMs   float64 // extra latency during a storm (default 25)
	StaleWindows       int     // LDNS-map staleness windows
	StaleWindowMeanMin float64 // mean staleness length (default 240)

	// PlannedFraction of events are flagged Planned (maintenance known in
	// advance). Default 0: everything is a surprise.
	PlannedFraction float64

	// Candidate target pools. A nil pool defaults to every plausible
	// target of that class: all submarine cable edges for cuts, all
	// interdomain links for resets, all ASes for outages, all
	// interconnection cities (cities hosting at least one link) for
	// facility outages and storms.
	CandidateEdges  []int
	CandidateLinks  []int
	CandidateASes   []int
	CandidateCities []int
}

func (c *GenConfig) setDefaults() {
	if c.HorizonMinutes == 0 {
		c.HorizonMinutes = 10 * 24 * 60
	}
	if c.CableRepairMeanMin == 0 {
		c.CableRepairMeanMin = 12 * 60
	}
	if c.LinkResetMeanMin == 0 {
		c.LinkResetMeanMin = 30
	}
	if c.ASOutageMeanMin == 0 {
		c.ASOutageMeanMin = 60
	}
	if c.FacilityMeanMin == 0 {
		c.FacilityMeanMin = 90
	}
	if c.StormMeanMin == 0 {
		c.StormMeanMin = 120
	}
	if c.StormMagnitudeMs == 0 {
		c.StormMagnitudeMs = 25
	}
	if c.StaleWindowMeanMin == 0 {
		c.StaleWindowMeanMin = 240
	}
}

// Validate rejects nonsensical generation parameters.
func (c *GenConfig) Validate() error {
	for name, v := range map[string]float64{
		"HorizonMinutes": c.HorizonMinutes, "CableRepairMeanMin": c.CableRepairMeanMin,
		"LinkResetMeanMin": c.LinkResetMeanMin, "ASOutageMeanMin": c.ASOutageMeanMin,
		"FacilityMeanMin": c.FacilityMeanMin, "StormMeanMin": c.StormMeanMin,
		"StormMagnitudeMs": c.StormMagnitudeMs, "StaleWindowMeanMin": c.StaleWindowMeanMin,
		"PlannedFraction": c.PlannedFraction,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("faults: %s = %v must be finite and non-negative", name, v)
		}
	}
	if c.PlannedFraction > 1 {
		return fmt.Errorf("faults: PlannedFraction = %v must be at most 1", c.PlannedFraction)
	}
	for name, v := range map[string]int{
		"CableCuts": c.CableCuts, "LinkResets": c.LinkResets, "ASOutages": c.ASOutages,
		"FacilityOutages": c.FacilityOutages, "Storms": c.Storms, "StaleWindows": c.StaleWindows,
	} {
		if v < 0 {
			return fmt.Errorf("faults: %s = %d must be non-negative", name, v)
		}
	}
	return nil
}

// Generate draws a fault schedule for the topology: each requested event
// gets a uniform start in the horizon, an exponential duration, and a
// target drawn from the candidate pool. Everything is a deterministic
// function of (seed, config, topology), independent of query order.
func Generate(t *topology.Topo, cfg GenConfig) (*Timeline, error) {
	if t == nil {
		return nil, fmt.Errorf("faults: nil topology")
	}
	cfg.setDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	edges := cfg.CandidateEdges
	if edges == nil {
		for _, e := range t.Graph.Edges() {
			if e.Submarine {
				edges = append(edges, e.ID)
			}
		}
	}
	links := cfg.CandidateLinks
	if links == nil {
		links = make([]int, len(t.Links))
		for i := range t.Links {
			links[i] = i
		}
	}
	ases := cfg.CandidateASes
	if ases == nil {
		ases = make([]int, t.NumASes())
		for i := range ases {
			ases[i] = i
		}
	}
	cities := cfg.CandidateCities
	if cities == nil {
		seen := make(map[int]bool)
		for _, l := range t.Links {
			for _, c := range l.Cities {
				if !seen[c] {
					seen[c] = true
					cities = append(cities, c)
				}
			}
		}
	}

	rng := xrand.New(cfg.Seed ^ 0xFA017)
	var events []Event
	draw := func(label string, n int, kind Kind, meanMin float64, pool []int, magMs float64) error {
		if n == 0 {
			return nil
		}
		if len(pool) == 0 && kind != LDNSStale {
			return fmt.Errorf("faults: no candidate targets for %s events", kind)
		}
		r := rng.Split(label)
		for i := 0; i < n; i++ {
			target := -1
			if kind != LDNSStale {
				target = pool[r.Intn(len(pool))]
			}
			events = append(events, Event{
				Kind:        kind,
				Start:       r.Uniform(0, cfg.HorizonMinutes),
				Duration:    r.Exp(meanMin),
				Target:      target,
				MagnitudeMs: magMs,
				Planned:     r.Bool(cfg.PlannedFraction),
			})
		}
		return nil
	}
	if err := draw("cable", cfg.CableCuts, CableCut, cfg.CableRepairMeanMin, edges, 0); err != nil {
		return nil, err
	}
	if err := draw("reset", cfg.LinkResets, LinkDown, cfg.LinkResetMeanMin, links, 0); err != nil {
		return nil, err
	}
	if err := draw("asout", cfg.ASOutages, ASOutage, cfg.ASOutageMeanMin, ases, 0); err != nil {
		return nil, err
	}
	if err := draw("facility", cfg.FacilityOutages, FacilityOutage, cfg.FacilityMeanMin, cities, 0); err != nil {
		return nil, err
	}
	if err := draw("storm", cfg.Storms, CongestionStorm, cfg.StormMeanMin, cities, cfg.StormMagnitudeMs); err != nil {
		return nil, err
	}
	if err := draw("stale", cfg.StaleWindows, LDNSStale, cfg.StaleWindowMeanMin, nil, 0); err != nil {
		return nil, err
	}
	return New(t, events)
}
