package faults

import (
	"reflect"
	"testing"

	"beatbgp/internal/cable"
	"beatbgp/internal/delta"
	"beatbgp/internal/geo"
	"beatbgp/internal/topology"
)

// testTopo builds a tiny world: two transits spanning the hub cities and
// two stubs, one multi-city and one single-homed at NewYork.
func testTopo(t *testing.T) (*topology.Topo, map[string]int, map[string]int) {
	t.Helper()
	catalog := geo.World()
	graph, err := cable.WorldGraph(catalog)
	if err != nil {
		t.Fatal(err)
	}
	topo := &topology.Topo{Catalog: catalog, Graph: graph}
	city := func(name string) int {
		c, ok := catalog.ByName(name)
		if !ok {
			t.Fatalf("city %s", name)
		}
		return c.ID
	}
	cities := map[string]int{
		"NewYork": city("NewYork"), "London": city("London"), "Tokyo": city("Tokyo"),
	}
	hub := []int{cities["NewYork"], cities["London"], cities["Tokyo"]}
	ids := map[string]int{}
	add := func(name string, class topology.Class, cs []int) {
		a, err := topo.AddAS(len(ids)+1, name, class, geo.NorthAmerica, cs, 1.1, topology.EarlyExit)
		if err != nil {
			t.Fatal(err)
		}
		ids[name] = a.ID
	}
	add("TRa", topology.Transit, hub)
	add("TRb", topology.Transit, hub)
	add("EYE", topology.Eyeball, hub[:2])
	add("STUB", topology.Eyeball, hub[:1])
	conn := func(a, b string, rel topology.Rel, cs []int) int {
		l, err := topo.Connect(ids[a], ids[b], rel, cs, false)
		if err != nil {
			t.Fatal(err)
		}
		return l.ID
	}
	conn("TRa", "TRb", topology.P2P, nil)  // multi-city
	conn("EYE", "TRa", topology.C2P, nil)  // NewYork+London
	conn("STUB", "TRb", topology.C2P, nil) // NewYork only
	return topo, ids, cities
}

func TestTimelineValidation(t *testing.T) {
	topo, ids, cities := testTopo(t)
	bad := []Event{
		{Kind: LinkDown, Start: -1, Duration: 10, Target: 0},
		{Kind: LinkDown, Start: 0, Duration: 0, Target: 0},
		{Kind: LinkDown, Start: 0, Duration: 10, Target: len(topo.Links)},
		{Kind: CableCut, Start: 0, Duration: 10, Target: topo.Graph.NumEdges()},
		{Kind: ASOutage, Start: 0, Duration: 10, Target: -1},
		{Kind: FacilityOutage, Start: 0, Duration: 10, Target: topo.Catalog.Len()},
		{Kind: CongestionStorm, Start: 0, Duration: 10, Target: cities["NewYork"], MagnitudeMs: 0},
		{Kind: Kind(99), Start: 0, Duration: 10},
	}
	for i, e := range bad {
		if _, err := New(topo, []Event{e}); err == nil {
			t.Errorf("bad event %d (%v) accepted", i, e)
		}
	}
	_ = ids
	if _, err := New(nil, nil); err == nil {
		t.Error("nil topology accepted")
	}
	if tl, err := New(topo, nil); err != nil || tl == nil {
		t.Errorf("empty timeline rejected: %v", err)
	}
}

func TestLinkDownAndBoundaries(t *testing.T) {
	topo, _, _ := testTopo(t)
	tl, err := New(topo, []Event{
		{Kind: LinkDown, Start: 100, Duration: 50, Target: 1},
		{Kind: LinkDown, Start: 10, Duration: 20, Target: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Events are kept sorted regardless of input order.
	ev := tl.Events()
	if ev[0].Start != 10 || ev[1].Start != 100 {
		t.Fatalf("events not sorted: %v", ev)
	}
	if !tl.LinkDownAt(0, 10) || !tl.LinkDownAt(0, 29.9) || tl.LinkDownAt(0, 30) || tl.LinkDownAt(0, 9.9) {
		t.Fatal("link 0 outage window wrong")
	}
	if tl.LinkDownAt(1, 10) || !tl.LinkDownAt(1, 120) {
		t.Fatal("link 1 outage window wrong")
	}
	down := tl.DownLinks(120)
	if !reflect.DeepEqual(down, map[int]bool{1: true}) {
		t.Fatalf("DownLinks(120) = %v", down)
	}
	if tl.DownLinks(500) != nil {
		t.Fatal("DownLinks outside any event should be nil")
	}
	want := []float64{10, 30, 100, 150}
	if got := tl.Boundaries(0, 1e9); !reflect.DeepEqual(got, want) {
		t.Fatalf("Boundaries = %v, want %v", got, want)
	}
	if got := tl.Boundaries(20, 120); !reflect.DeepEqual(got, []float64{30, 100}) {
		t.Fatalf("windowed Boundaries = %v", got)
	}
	if n := len(tl.ActiveAt(120)); n != 1 {
		t.Fatalf("ActiveAt(120) = %d events", n)
	}
}

func TestFacilityRule(t *testing.T) {
	topo, ids, cities := testTopo(t)
	// Facility outage at NewYork: only STUB's single-homed uplink (link 2)
	// is anchored exclusively there; the multi-city links survive.
	tl, err := New(topo, []Event{
		{Kind: FacilityOutage, Start: 0, Duration: 60, Target: cities["NewYork"]},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tl.LinkDownAt(2, 30) {
		t.Fatal("single-homed stub uplink should drop with its facility")
	}
	if tl.LinkDownAt(0, 30) || tl.LinkDownAt(1, 30) {
		t.Fatal("multi-facility links must survive a single-facility outage")
	}

	// AS outage downs every link of the AS.
	tl2, err := New(topo, []Event{
		{Kind: ASOutage, Start: 0, Duration: 60, Target: ids["TRa"]},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tl2.LinkDownAt(0, 1) || !tl2.LinkDownAt(1, 1) {
		t.Fatal("AS outage must down all adjacent links")
	}
	if tl2.LinkDownAt(2, 1) {
		t.Fatal("AS outage downed an unrelated link")
	}
}

func TestCableCutFacilities(t *testing.T) {
	topo, _, cities := testTopo(t)
	// Find a physical edge incident to NewYork; cutting it darkens the
	// NewYork and far-end facilities — the STUB uplink is anchored only at
	// NewYork, so it drops.
	edges := topo.Graph.EdgesAt(cities["NewYork"])
	if len(edges) == 0 {
		t.Fatal("NewYork has no cable edges")
	}
	tl, err := New(topo, []Event{
		{Kind: CableCut, Start: 0, Duration: 600, Target: edges[0]},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tl.LinkDownAt(2, 100) {
		t.Fatal("cable cut at the landing city must drop the single-homed uplink")
	}
	if tl.LinkDownAt(0, 100) {
		t.Fatal("multi-facility transit peering must ride out the cut")
	}
}

func TestStormAndStale(t *testing.T) {
	topo, _, cities := testTopo(t)
	tl, err := New(topo, []Event{
		{Kind: CongestionStorm, Start: 0, Duration: 100, Target: cities["London"], MagnitudeMs: 25},
		{Kind: CongestionStorm, Start: 50, Duration: 100, Target: cities["London"], MagnitudeMs: 10},
		{Kind: LDNSStale, Start: 10, Duration: 5, Target: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Links 0 (TRa-TRb) and 1 (EYE-TRa) interconnect at London; link 2
	// (STUB uplink, NewYork only) does not.
	if got := tl.ExtraLinkMs(0, 75); got != 35 {
		t.Fatalf("concurrent storms should add up: got %v", got)
	}
	if got := tl.ExtraLinkMs(1, 10); got != 25 {
		t.Fatalf("storm magnitude = %v", got)
	}
	if got := tl.ExtraLinkMs(2, 75); got != 0 {
		t.Fatalf("NewYork-only link stormed at London: %v", got)
	}
	if !tl.DNSStale(12) || tl.DNSStale(20) {
		t.Fatal("staleness window wrong")
	}
	// Storms never take links down.
	if tl.DownLinks(75) != nil {
		t.Fatal("storms must not down links")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	topo, _, _ := testTopo(t)
	cfg := GenConfig{
		Seed: 7, HorizonMinutes: 24 * 60,
		CableCuts: 2, LinkResets: 3, ASOutages: 1, Storms: 2, StaleWindows: 1,
		PlannedFraction: 0.5,
	}
	a, err := Generate(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Events(), b.Events()) {
		t.Fatal("same seed produced different schedules")
	}
	if got := len(a.Events()); got != 9 {
		t.Fatalf("generated %d events, want 9", got)
	}
	c, err := Generate(topo, GenConfig{Seed: 8, HorizonMinutes: 24 * 60, CableCuts: 2, LinkResets: 3})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Events()[:5], c.Events()[:5]) {
		t.Fatal("different seeds produced identical schedules")
	}
	for _, e := range a.Events() {
		if e.Start < 0 || e.Start >= cfg.HorizonMinutes || e.Duration <= 0 {
			t.Fatalf("generated event out of bounds: %v", e)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	topo, _, _ := testTopo(t)
	if _, err := Generate(nil, GenConfig{}); err == nil {
		t.Error("nil topology accepted")
	}
	if _, err := Generate(topo, GenConfig{CableCuts: -1}); err == nil {
		t.Error("negative count accepted")
	}
	if _, err := Generate(topo, GenConfig{PlannedFraction: 2}); err == nil {
		t.Error("PlannedFraction > 1 accepted")
	}
	if _, err := Generate(topo, GenConfig{StormMagnitudeMs: -3, Storms: 1}); err == nil {
		t.Error("negative storm magnitude accepted")
	}
	if _, err := Generate(topo, GenConfig{LinkResets: 1, CandidateLinks: []int{}}); err == nil {
		t.Error("empty explicit candidate pool accepted")
	}
}

func TestDownWindowsMergeAndFaultedLinks(t *testing.T) {
	topo, ids, _ := testTopo(t)
	link := topo.Neighbors(ids["EYE"])[0].Link
	tl, err := New(topo, []Event{
		// Overlapping pair: [10,30) and [20,50) must coalesce to [10,50).
		{Kind: LinkDown, Start: 10, Duration: 20, Target: link},
		{Kind: LinkDown, Start: 20, Duration: 30, Target: link},
		// Touching window: [50,60) extends the merged run to [10,60).
		{Kind: LinkDown, Start: 50, Duration: 10, Target: link},
		// Disjoint window.
		{Kind: LinkDown, Start: 100, Duration: 5, Target: link},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := tl.DownWindows(link)
	want := []Window{{Start: 10, End: 60}, {Start: 100, End: 105}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("DownWindows = %v, want %v", got, want)
	}
	if ls := tl.FaultedLinks(); !reflect.DeepEqual(ls, []int{link}) {
		t.Fatalf("FaultedLinks = %v, want [%d]", ls, link)
	}
	if ws := tl.DownWindows(link + 99); ws != nil {
		t.Fatalf("unfaulted link has windows %v", ws)
	}
	// The merged windows must agree with the point queries they summarize.
	for _, probe := range []struct {
		t    float64
		down bool
	}{{9.9, false}, {10, true}, {35, true}, {59.9, true}, {60, false}, {102, true}} {
		if got := tl.LinkDownAt(link, probe.t); got != probe.down {
			t.Fatalf("LinkDownAt(%v) = %v, want %v", probe.t, got, probe.down)
		}
	}
}

// TestActiveAtBoundaryInstants pins the [Start, End) sampling contract of
// ActiveAt at the awkward instants: an event ending exactly at the sample
// instant is over, one starting there is in progress, and overlapping
// events on one link each report individually (merging is a DownWindows
// concern, not a schedule concern).
func TestActiveAtBoundaryInstants(t *testing.T) {
	topo, ids, _ := testTopo(t)
	link := topo.Neighbors(ids["EYE"])[0].Link
	events := []Event{
		{Kind: LinkDown, Start: 10, Duration: 10, Target: link}, // [10,20)
		{Kind: LinkDown, Start: 15, Duration: 10, Target: link}, // [15,25) overlaps
		{Kind: ASOutage, Start: 20, Duration: 5, Target: ids["STUB"]},
	}
	tl, err := New(topo, events)
	if err != nil {
		t.Fatal(err)
	}
	count := func(at float64) map[Kind]int {
		out := map[Kind]int{}
		for _, e := range tl.ActiveAt(at) {
			out[e.Kind]++
		}
		return out
	}
	for _, probe := range []struct {
		at   float64
		want map[Kind]int
	}{
		{9.999, map[Kind]int{}},
		{10, map[Kind]int{LinkDown: 1}}, // starts at its Start
		{15, map[Kind]int{LinkDown: 2}}, // overlap: both report
		{19.999, map[Kind]int{LinkDown: 2}},
		{20, map[Kind]int{LinkDown: 1, ASOutage: 1}}, // first ends exactly here
		{24.999, map[Kind]int{LinkDown: 1, ASOutage: 1}},
		{25, map[Kind]int{}}, // both end exactly here
	} {
		if got := count(probe.at); !reflect.DeepEqual(got, probe.want) {
			t.Errorf("ActiveAt(%v) kinds = %v, want %v", probe.at, got, probe.want)
		}
	}
	// The point queries agree: the overlapped link is down throughout
	// [10,25) and up at exactly 25; the merged window says the same.
	if !tl.LinkDownAt(link, 20) || tl.LinkDownAt(link, 25) {
		t.Fatal("LinkDownAt disagrees with the [Start, End) contract")
	}
	if ws := tl.DownWindows(link); !reflect.DeepEqual(ws, []Window{{Start: 10, End: 25}}) {
		t.Fatalf("DownWindows = %v, want one merged [10,25)", ws)
	}
}

// TestTimelineDeltas checks the epoch compilation against the instant
// queries it summarizes: every sampled minute must see the same down set
// through seq.DownAt as through DownLinks, epoch boundaries must fall
// exactly on the instants the injected world changes, and a window
// already open at the span start must be down in epoch 0.
func TestTimelineDeltas(t *testing.T) {
	topo, ids, _ := testTopo(t)
	la := topo.Neighbors(ids["EYE"])[0].Link
	lb := topo.Neighbors(ids["STUB"])[0].Link
	tl, err := New(topo, []Event{
		{Kind: LinkDown, Start: 5, Duration: 10, Target: la},  // [5,15): open at t0=8
		{Kind: LinkDown, Start: 12, Duration: 8, Target: la},  // overlap -> merged [5,20)
		{Kind: LinkDown, Start: 30, Duration: 10, Target: lb}, // [30,40)
		{Kind: LinkDown, Start: 35, Duration: 10, Target: la}, // [35,45)
	})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := tl.Deltas(8, 60)
	if err != nil {
		t.Fatal(err)
	}
	// Change instants inside (8, 60): 20 (la up), 30 (lb down), 35 (la
	// down), 40 (lb up), 45 (la up) — plus epoch 0 at 8 with la already down.
	var starts []float64
	for i := 0; i < seq.Len(); i++ {
		starts = append(starts, seq.Epoch(i).Start)
	}
	if want := []float64{8, 20, 30, 35, 40, 45}; !reflect.DeepEqual(starts, want) {
		t.Fatalf("epoch starts = %v, want %v", starts, want)
	}
	if d := seq.Epoch(0).Down; !reflect.DeepEqual(d, []int{la}) {
		t.Fatalf("epoch 0 down = %v, want [%d] (window open at span start)", d, la)
	}
	// Dense cross-check against the instant query, including the exact
	// boundary instants (a window ending at t is up at t).
	for at := 8.0; at < 60; at += 0.5 {
		want := tl.DownLinks(at)
		got := map[int]bool{}
		for _, l := range seq.DownAt(at) {
			got[l] = true
		}
		if len(want) == 0 && len(got) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("DownAt(%v) = %v, DownLinks = %v", at, got, want)
		}
	}
	// Folding the epoch deltas reproduces each epoch's down set.
	var down map[int]bool
	for i := 0; i < seq.Len(); i++ {
		ep := seq.Epoch(i)
		down = delta.Apply(down, ep.Delta)
		want := ep.DownSet()
		if want == nil {
			want = map[int]bool{}
		}
		got := down
		if got == nil {
			got = map[int]bool{}
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("epoch %d folded delta = %v, want %v", i, got, want)
		}
	}
	// A quiet span compiles to a single empty epoch.
	quiet, err := tl.Deltas(100, 200)
	if err != nil {
		t.Fatal(err)
	}
	if quiet.Len() != 1 || len(quiet.Epoch(0).Down) != 0 {
		t.Fatalf("quiet span: %d epochs, down %v", quiet.Len(), quiet.Epoch(0).Down)
	}
}
