package faults

import (
	"reflect"
	"testing"

	"beatbgp/internal/cable"
	"beatbgp/internal/geo"
	"beatbgp/internal/topology"
)

// testTopo builds a tiny world: two transits spanning the hub cities and
// two stubs, one multi-city and one single-homed at NewYork.
func testTopo(t *testing.T) (*topology.Topo, map[string]int, map[string]int) {
	t.Helper()
	catalog := geo.World()
	graph, err := cable.WorldGraph(catalog)
	if err != nil {
		t.Fatal(err)
	}
	topo := &topology.Topo{Catalog: catalog, Graph: graph}
	city := func(name string) int {
		c, ok := catalog.ByName(name)
		if !ok {
			t.Fatalf("city %s", name)
		}
		return c.ID
	}
	cities := map[string]int{
		"NewYork": city("NewYork"), "London": city("London"), "Tokyo": city("Tokyo"),
	}
	hub := []int{cities["NewYork"], cities["London"], cities["Tokyo"]}
	ids := map[string]int{}
	add := func(name string, class topology.Class, cs []int) {
		a, err := topo.AddAS(len(ids)+1, name, class, geo.NorthAmerica, cs, 1.1, topology.EarlyExit)
		if err != nil {
			t.Fatal(err)
		}
		ids[name] = a.ID
	}
	add("TRa", topology.Transit, hub)
	add("TRb", topology.Transit, hub)
	add("EYE", topology.Eyeball, hub[:2])
	add("STUB", topology.Eyeball, hub[:1])
	conn := func(a, b string, rel topology.Rel, cs []int) int {
		l, err := topo.Connect(ids[a], ids[b], rel, cs, false)
		if err != nil {
			t.Fatal(err)
		}
		return l.ID
	}
	conn("TRa", "TRb", topology.P2P, nil)  // multi-city
	conn("EYE", "TRa", topology.C2P, nil)  // NewYork+London
	conn("STUB", "TRb", topology.C2P, nil) // NewYork only
	return topo, ids, cities
}

func TestTimelineValidation(t *testing.T) {
	topo, ids, cities := testTopo(t)
	bad := []Event{
		{Kind: LinkDown, Start: -1, Duration: 10, Target: 0},
		{Kind: LinkDown, Start: 0, Duration: 0, Target: 0},
		{Kind: LinkDown, Start: 0, Duration: 10, Target: len(topo.Links)},
		{Kind: CableCut, Start: 0, Duration: 10, Target: topo.Graph.NumEdges()},
		{Kind: ASOutage, Start: 0, Duration: 10, Target: -1},
		{Kind: FacilityOutage, Start: 0, Duration: 10, Target: topo.Catalog.Len()},
		{Kind: CongestionStorm, Start: 0, Duration: 10, Target: cities["NewYork"], MagnitudeMs: 0},
		{Kind: Kind(99), Start: 0, Duration: 10},
	}
	for i, e := range bad {
		if _, err := New(topo, []Event{e}); err == nil {
			t.Errorf("bad event %d (%v) accepted", i, e)
		}
	}
	_ = ids
	if _, err := New(nil, nil); err == nil {
		t.Error("nil topology accepted")
	}
	if tl, err := New(topo, nil); err != nil || tl == nil {
		t.Errorf("empty timeline rejected: %v", err)
	}
}

func TestLinkDownAndBoundaries(t *testing.T) {
	topo, _, _ := testTopo(t)
	tl, err := New(topo, []Event{
		{Kind: LinkDown, Start: 100, Duration: 50, Target: 1},
		{Kind: LinkDown, Start: 10, Duration: 20, Target: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Events are kept sorted regardless of input order.
	ev := tl.Events()
	if ev[0].Start != 10 || ev[1].Start != 100 {
		t.Fatalf("events not sorted: %v", ev)
	}
	if !tl.LinkDownAt(0, 10) || !tl.LinkDownAt(0, 29.9) || tl.LinkDownAt(0, 30) || tl.LinkDownAt(0, 9.9) {
		t.Fatal("link 0 outage window wrong")
	}
	if tl.LinkDownAt(1, 10) || !tl.LinkDownAt(1, 120) {
		t.Fatal("link 1 outage window wrong")
	}
	down := tl.DownLinks(120)
	if !reflect.DeepEqual(down, map[int]bool{1: true}) {
		t.Fatalf("DownLinks(120) = %v", down)
	}
	if tl.DownLinks(500) != nil {
		t.Fatal("DownLinks outside any event should be nil")
	}
	want := []float64{10, 30, 100, 150}
	if got := tl.Boundaries(0, 1e9); !reflect.DeepEqual(got, want) {
		t.Fatalf("Boundaries = %v, want %v", got, want)
	}
	if got := tl.Boundaries(20, 120); !reflect.DeepEqual(got, []float64{30, 100}) {
		t.Fatalf("windowed Boundaries = %v", got)
	}
	if n := len(tl.ActiveAt(120)); n != 1 {
		t.Fatalf("ActiveAt(120) = %d events", n)
	}
}

func TestFacilityRule(t *testing.T) {
	topo, ids, cities := testTopo(t)
	// Facility outage at NewYork: only STUB's single-homed uplink (link 2)
	// is anchored exclusively there; the multi-city links survive.
	tl, err := New(topo, []Event{
		{Kind: FacilityOutage, Start: 0, Duration: 60, Target: cities["NewYork"]},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tl.LinkDownAt(2, 30) {
		t.Fatal("single-homed stub uplink should drop with its facility")
	}
	if tl.LinkDownAt(0, 30) || tl.LinkDownAt(1, 30) {
		t.Fatal("multi-facility links must survive a single-facility outage")
	}

	// AS outage downs every link of the AS.
	tl2, err := New(topo, []Event{
		{Kind: ASOutage, Start: 0, Duration: 60, Target: ids["TRa"]},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tl2.LinkDownAt(0, 1) || !tl2.LinkDownAt(1, 1) {
		t.Fatal("AS outage must down all adjacent links")
	}
	if tl2.LinkDownAt(2, 1) {
		t.Fatal("AS outage downed an unrelated link")
	}
}

func TestCableCutFacilities(t *testing.T) {
	topo, _, cities := testTopo(t)
	// Find a physical edge incident to NewYork; cutting it darkens the
	// NewYork and far-end facilities — the STUB uplink is anchored only at
	// NewYork, so it drops.
	edges := topo.Graph.EdgesAt(cities["NewYork"])
	if len(edges) == 0 {
		t.Fatal("NewYork has no cable edges")
	}
	tl, err := New(topo, []Event{
		{Kind: CableCut, Start: 0, Duration: 600, Target: edges[0]},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !tl.LinkDownAt(2, 100) {
		t.Fatal("cable cut at the landing city must drop the single-homed uplink")
	}
	if tl.LinkDownAt(0, 100) {
		t.Fatal("multi-facility transit peering must ride out the cut")
	}
}

func TestStormAndStale(t *testing.T) {
	topo, _, cities := testTopo(t)
	tl, err := New(topo, []Event{
		{Kind: CongestionStorm, Start: 0, Duration: 100, Target: cities["London"], MagnitudeMs: 25},
		{Kind: CongestionStorm, Start: 50, Duration: 100, Target: cities["London"], MagnitudeMs: 10},
		{Kind: LDNSStale, Start: 10, Duration: 5, Target: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Links 0 (TRa-TRb) and 1 (EYE-TRa) interconnect at London; link 2
	// (STUB uplink, NewYork only) does not.
	if got := tl.ExtraLinkMs(0, 75); got != 35 {
		t.Fatalf("concurrent storms should add up: got %v", got)
	}
	if got := tl.ExtraLinkMs(1, 10); got != 25 {
		t.Fatalf("storm magnitude = %v", got)
	}
	if got := tl.ExtraLinkMs(2, 75); got != 0 {
		t.Fatalf("NewYork-only link stormed at London: %v", got)
	}
	if !tl.DNSStale(12) || tl.DNSStale(20) {
		t.Fatal("staleness window wrong")
	}
	// Storms never take links down.
	if tl.DownLinks(75) != nil {
		t.Fatal("storms must not down links")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	topo, _, _ := testTopo(t)
	cfg := GenConfig{
		Seed: 7, HorizonMinutes: 24 * 60,
		CableCuts: 2, LinkResets: 3, ASOutages: 1, Storms: 2, StaleWindows: 1,
		PlannedFraction: 0.5,
	}
	a, err := Generate(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Events(), b.Events()) {
		t.Fatal("same seed produced different schedules")
	}
	if got := len(a.Events()); got != 9 {
		t.Fatalf("generated %d events, want 9", got)
	}
	c, err := Generate(topo, GenConfig{Seed: 8, HorizonMinutes: 24 * 60, CableCuts: 2, LinkResets: 3})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Events()[:5], c.Events()[:5]) {
		t.Fatal("different seeds produced identical schedules")
	}
	for _, e := range a.Events() {
		if e.Start < 0 || e.Start >= cfg.HorizonMinutes || e.Duration <= 0 {
			t.Fatalf("generated event out of bounds: %v", e)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	topo, _, _ := testTopo(t)
	if _, err := Generate(nil, GenConfig{}); err == nil {
		t.Error("nil topology accepted")
	}
	if _, err := Generate(topo, GenConfig{CableCuts: -1}); err == nil {
		t.Error("negative count accepted")
	}
	if _, err := Generate(topo, GenConfig{PlannedFraction: 2}); err == nil {
		t.Error("PlannedFraction > 1 accepted")
	}
	if _, err := Generate(topo, GenConfig{StormMagnitudeMs: -3, Storms: 1}); err == nil {
		t.Error("negative storm magnitude accepted")
	}
	if _, err := Generate(topo, GenConfig{LinkResets: 1, CandidateLinks: []int{}}); err == nil {
		t.Error("empty explicit candidate pool accepted")
	}
}

func TestDownWindowsMergeAndFaultedLinks(t *testing.T) {
	topo, ids, _ := testTopo(t)
	link := topo.Neighbors(ids["EYE"])[0].Link
	tl, err := New(topo, []Event{
		// Overlapping pair: [10,30) and [20,50) must coalesce to [10,50).
		{Kind: LinkDown, Start: 10, Duration: 20, Target: link},
		{Kind: LinkDown, Start: 20, Duration: 30, Target: link},
		// Touching window: [50,60) extends the merged run to [10,60).
		{Kind: LinkDown, Start: 50, Duration: 10, Target: link},
		// Disjoint window.
		{Kind: LinkDown, Start: 100, Duration: 5, Target: link},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := tl.DownWindows(link)
	want := []Window{{Start: 10, End: 60}, {Start: 100, End: 105}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("DownWindows = %v, want %v", got, want)
	}
	if ls := tl.FaultedLinks(); !reflect.DeepEqual(ls, []int{link}) {
		t.Fatalf("FaultedLinks = %v, want [%d]", ls, link)
	}
	if ws := tl.DownWindows(link + 99); ws != nil {
		t.Fatalf("unfaulted link has windows %v", ws)
	}
	// The merged windows must agree with the point queries they summarize.
	for _, probe := range []struct {
		t    float64
		down bool
	}{{9.9, false}, {10, true}, {35, true}, {59.9, true}, {60, false}, {102, true}} {
		if got := tl.LinkDownAt(link, probe.t); got != probe.down {
			t.Fatalf("LinkDownAt(%v) = %v, want %v", probe.t, got, probe.down)
		}
	}
}
