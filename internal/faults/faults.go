// Package faults is the deterministic fault-injection layer of the
// simulator. Where netsim draws stochastic per-entity incident schedules
// from the scenario seed, faults holds an explicit, scheduled timeline of
// infrastructure events — submarine cable cuts, AS and facility (PoP)
// outages, peering-session resets, congestion storms, and LDNS-map
// staleness windows — that experiments inject on purpose to ask "what
// happens when things break?".
//
// A Timeline is built either from an explicit event list (New) or drawn
// seed-deterministically from a topology (Generate). It resolves every
// event into per-interdomain-link outage and congestion intervals at
// construction time, so queries are cheap, and it implements
// netsim.FaultOverlay so the stochastic and injected processes compose:
// a link is down when either process says so, and congestion adds up.
//
// Cable cuts map to routing through facilities: a cut darkens the
// landing-station facilities at its two endpoint cities, and interdomain
// sessions anchored exclusively at those facilities drop until repair.
// Links that also interconnect elsewhere survive (their sessions re-home
// to the surviving facilities), which is how multi-facility peerings ride
// out a single cut while single-homed stub sites — CDN front-ends,
// city-restricted PNIs — go dark. The same facility rule drives
// FacilityOutage (a whole metro interconnection facility failing).
package faults

import (
	"fmt"
	"math"
	"sort"

	"beatbgp/internal/delta"
	"beatbgp/internal/topology"
)

// Kind classifies a fault event.
type Kind int

// Fault kinds.
const (
	// CableCut severs one physical cable segment (Target = edge ID in
	// the topology's cable graph). Interdomain links whose interconnection
	// cities all lie at the cut's endpoints go down.
	CableCut Kind = iota
	// LinkDown resets one interdomain BGP session (Target = link ID).
	LinkDown
	// ASOutage takes a whole AS dark (Target = AS ID): every one of its
	// interdomain links goes down. Use it for CDN-site or stub outages.
	ASOutage
	// FacilityOutage darkens one metro interconnection facility
	// (Target = city ID): every link anchored exclusively there drops.
	FacilityOutage
	// CongestionStorm adds MagnitudeMs of latency to every interdomain
	// link interconnecting at the target city (Target = city ID).
	CongestionStorm
	// LDNSStale marks a window during which DNS-redirection maps are
	// stale and must not be retrained (Target unused, use -1).
	LDNSStale
)

func (k Kind) String() string {
	switch k {
	case CableCut:
		return "cable-cut"
	case LinkDown:
		return "link-down"
	case ASOutage:
		return "as-outage"
	case FacilityOutage:
		return "facility-outage"
	case CongestionStorm:
		return "congestion-storm"
	case LDNSStale:
		return "ldns-stale"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one scheduled fault.
type Event struct {
	Kind        Kind
	Start       float64 // simulated minutes
	Duration    float64 // minutes; must be positive
	Target      int     // edge/link/AS/city ID depending on Kind; -1 for LDNSStale
	MagnitudeMs float64 // CongestionStorm extra latency; ignored otherwise
	// Planned marks maintenance known in advance (a scheduled cable
	// splice, a site drain window). Graceful-degradation policies may act
	// before Start for planned events; unplanned ones can only react.
	Planned bool
}

// End returns the event's end minute.
func (e Event) End() float64 { return e.Start + e.Duration }

func (e Event) String() string {
	return fmt.Sprintf("%s target=%d [%.1f,%.1f)", e.Kind, e.Target, e.Start, e.End())
}

// interval is one [start, end) window, optionally with a magnitude.
type interval struct {
	start, end float64
	magMs      float64
}

// Timeline is a validated, queryable fault schedule over one topology.
// It is immutable after construction and safe for concurrent reads, and
// implements netsim.FaultOverlay.
type Timeline struct {
	topo   *topology.Topo
	events []Event // sorted by Start, then Kind, then Target

	linkDown  map[int][]interval // link ID -> outage intervals
	linkExtra map[int][]interval // link ID -> storm intervals (with magnitudes)
	stale     []interval
}

// New validates the events against the topology and builds the timeline.
// Events may be passed in any order; they are kept sorted by start time.
func New(t *topology.Topo, events []Event) (*Timeline, error) {
	if t == nil {
		return nil, fmt.Errorf("faults: nil topology")
	}
	tl := &Timeline{
		topo:      t,
		events:    append([]Event(nil), events...),
		linkDown:  make(map[int][]interval),
		linkExtra: make(map[int][]interval),
	}
	sort.SliceStable(tl.events, func(i, j int) bool {
		a, b := tl.events[i], tl.events[j]
		if a.Start != b.Start {
			return a.Start < b.Start
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.Target < b.Target
	})
	for i, e := range tl.events {
		if err := tl.validate(e); err != nil {
			return nil, fmt.Errorf("faults: event %d: %w", i, err)
		}
		tl.resolve(e)
	}
	return tl, nil
}

func (tl *Timeline) validate(e Event) error {
	if math.IsNaN(e.Start) || math.IsInf(e.Start, 0) || e.Start < 0 {
		return fmt.Errorf("%s: start %v must be a finite non-negative minute", e.Kind, e.Start)
	}
	if math.IsNaN(e.Duration) || math.IsInf(e.Duration, 0) || e.Duration <= 0 {
		return fmt.Errorf("%s: duration %v must be a finite positive minute count", e.Kind, e.Duration)
	}
	t := tl.topo
	switch e.Kind {
	case CableCut:
		if e.Target < 0 || e.Target >= t.Graph.NumEdges() {
			return fmt.Errorf("cable-cut edge %d out of range [0,%d)", e.Target, t.Graph.NumEdges())
		}
	case LinkDown:
		if e.Target < 0 || e.Target >= len(t.Links) {
			return fmt.Errorf("link-down link %d out of range [0,%d)", e.Target, len(t.Links))
		}
	case ASOutage:
		if e.Target < 0 || e.Target >= t.NumASes() {
			return fmt.Errorf("as-outage AS %d out of range [0,%d)", e.Target, t.NumASes())
		}
	case FacilityOutage, CongestionStorm:
		if e.Target < 0 || e.Target >= t.Catalog.Len() {
			return fmt.Errorf("%s city %d out of range [0,%d)", e.Kind, e.Target, t.Catalog.Len())
		}
		if e.Kind == CongestionStorm {
			if math.IsNaN(e.MagnitudeMs) || math.IsInf(e.MagnitudeMs, 0) || e.MagnitudeMs <= 0 {
				return fmt.Errorf("congestion-storm magnitude %v must be finite and positive", e.MagnitudeMs)
			}
		}
	case LDNSStale:
		// No target.
	default:
		return fmt.Errorf("unknown fault kind %d", int(e.Kind))
	}
	return nil
}

// resolve expands a validated event into per-link intervals.
func (tl *Timeline) resolve(e Event) {
	iv := interval{start: e.Start, end: e.End(), magMs: e.MagnitudeMs}
	switch e.Kind {
	case LDNSStale:
		tl.stale = append(tl.stale, iv)
	case CongestionStorm:
		for _, l := range tl.AffectedLinks(e) {
			tl.linkExtra[l] = append(tl.linkExtra[l], iv)
		}
	default:
		for _, l := range tl.AffectedLinks(e) {
			tl.linkDown[l] = append(tl.linkDown[l], iv)
		}
	}
}

// AffectedLinks returns the interdomain links an event touches, ascending.
// For CableCut and FacilityOutage this applies the facility rule: only
// links interconnecting exclusively at the darkened cities drop.
func (tl *Timeline) AffectedLinks(e Event) []int {
	t := tl.topo
	var out []int
	switch e.Kind {
	case LinkDown:
		out = []int{e.Target}
	case ASOutage:
		for _, nb := range t.Neighbors(e.Target) {
			out = append(out, nb.Link)
		}
	case CableCut:
		edge := t.Graph.Edge(e.Target)
		out = linksAnchoredWithin(t, map[int]bool{edge.A: true, edge.B: true})
	case FacilityOutage:
		out = linksAnchoredWithin(t, map[int]bool{e.Target: true})
	case CongestionStorm:
		for _, l := range t.Links {
			for _, c := range l.Cities {
				if c == e.Target {
					out = append(out, l.ID)
					break
				}
			}
		}
	}
	sort.Ints(out)
	return out
}

// linksAnchoredWithin returns links whose every interconnection city lies
// in the darkened set.
func linksAnchoredWithin(t *topology.Topo, dark map[int]bool) []int {
	var out []int
	for _, l := range t.Links {
		all := true
		for _, c := range l.Cities {
			if !dark[c] {
				all = false
				break
			}
		}
		if all {
			out = append(out, l.ID)
		}
	}
	return out
}

// Events returns a copy of the schedule, sorted by start time.
func (tl *Timeline) Events() []Event {
	return append([]Event(nil), tl.events...)
}

// ActiveAt returns the events in progress at minute t, in schedule order.
func (tl *Timeline) ActiveAt(t float64) []Event {
	var out []Event
	for _, e := range tl.events {
		if e.Start > t {
			break
		}
		if t < e.End() {
			out = append(out, e)
		}
	}
	return out
}

func within(ivs []interval, t float64) bool {
	for _, iv := range ivs {
		if iv.start <= t && t < iv.end {
			return true
		}
	}
	return false
}

// LinkDownAt reports whether the interdomain link is taken down by an
// injected fault at minute t. (Named to avoid clashing with the LinkDown
// event kind; this is the netsim.FaultOverlay hook.)
func (tl *Timeline) LinkDownAt(linkID int, t float64) bool {
	return within(tl.linkDown[linkID], t)
}

// ExtraLinkMs returns the injected congestion (storms) on the link at
// minute t, summed over concurrent events.
func (tl *Timeline) ExtraLinkMs(linkID int, t float64) float64 {
	total := 0.0
	for _, iv := range tl.linkExtra[linkID] {
		if iv.start <= t && t < iv.end {
			total += iv.magMs
		}
	}
	return total
}

// DownLinks returns the set of interdomain links down at minute t — the
// shape bgp.ComputeWithout consumes to replay convergence. The map is
// freshly allocated; nil when nothing is down.
func (tl *Timeline) DownLinks(t float64) map[int]bool {
	var out map[int]bool
	for l, ivs := range tl.linkDown {
		if within(ivs, t) {
			if out == nil {
				out = make(map[int]bool)
			}
			out[l] = true
		}
	}
	return out
}

// DNSStale reports whether a redirection-map staleness window covers t.
func (tl *Timeline) DNSStale(t float64) bool { return within(tl.stale, t) }

// Window is one merged [Start, End) physical-outage window on a link.
type Window struct{ Start, End float64 }

// DownWindows returns the link's injected outage intervals, merged
// (overlapping and touching windows coalesce) and sorted by start. This
// is the physical up/down schedule the session layer (internal/session)
// replays: concurrent faults on one link present as a single continuous
// loss of liveness to the BGP speaker, which is exactly what merging
// encodes. Nil when the link is never taken down.
func (tl *Timeline) DownWindows(linkID int) []Window {
	ivs := tl.linkDown[linkID]
	if len(ivs) == 0 {
		return nil
	}
	ws := make([]Window, len(ivs))
	for i, iv := range ivs {
		ws[i] = Window{Start: iv.start, End: iv.end}
	}
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].Start != ws[j].Start {
			return ws[i].Start < ws[j].Start
		}
		return ws[i].End < ws[j].End
	})
	merged := ws[:1]
	for _, w := range ws[1:] {
		last := &merged[len(merged)-1]
		if w.Start <= last.End {
			if w.End > last.End {
				last.End = w.End
			}
			continue
		}
		merged = append(merged, w)
	}
	return merged
}

// FaultedLinks returns every link with at least one outage interval,
// ascending — the set of peerings whose sessions have anything to replay.
func (tl *Timeline) FaultedLinks() []int {
	out := make([]int, 0, len(tl.linkDown))
	for l, ivs := range tl.linkDown {
		if len(ivs) > 0 {
			out = append(out, l)
		}
	}
	sort.Ints(out)
	return out
}

// Deltas compiles the injected outage schedule over [t0, t1) into an
// epoch sequence: one epoch per instant at which the injected down set
// actually changes, each carrying the link up/down delta from its
// predecessor and the cumulative down set in effect. The sequence and
// the instant queries agree everywhere: for any t in the span,
// DownLinks(t) holds exactly the links in the sequence's DownAt(t), so
// experiments can walk epochs (feeding deltas to a bgp.RouteRepairer)
// instead of recomputing the down set at every sample instant.
func (tl *Timeline) Deltas(t0, t1 float64) (*delta.Sequence, error) {
	ws := make(map[int][]delta.Window, len(tl.linkDown))
	for l := range tl.linkDown {
		for _, w := range tl.DownWindows(l) {
			ws[l] = append(ws[l], delta.Window{Start: w.Start, End: w.End})
		}
	}
	return delta.CompileWindows(ws, t0, t1)
}

// Boundaries returns the sorted, de-duplicated event start/end minutes
// falling in [t0, t1) — the instants at which the injected world changes,
// which is where experiments should sample.
func (tl *Timeline) Boundaries(t0, t1 float64) []float64 {
	seen := make(map[float64]bool)
	var out []float64
	add := func(t float64) {
		if t >= t0 && t < t1 && !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	for _, e := range tl.events {
		add(e.Start)
		add(e.End())
	}
	sort.Float64s(out)
	return out
}
