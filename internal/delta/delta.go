// Package delta is the topology-change vocabulary of the incremental
// route pipeline: a Delta names the interdomain links that went down and
// came up between two epochs, an Event is one timed link edge, and a
// Sequence is a compiled, time-ordered epoch chain carrying the
// cumulative down set at every instant.
//
// The package is deliberately dependency-free plain data: the fault
// timeline (internal/faults) and the session layer (internal/session)
// compile their windows into Sequences, the batch route engine
// (internal/matbgp) repairs packed columns across Deltas instead of
// rebuilding all-pairs, and netsim/cdn key per-epoch caches on Sequence
// indices. The repair-vs-rebuild differential contract lives with the
// engines; this package only guarantees that a Sequence is a faithful,
// normalized encoding of its input windows.
package delta

import (
	"fmt"
	"sort"
)

// Delta is the set of link-state changes between two adjacent epochs:
// Down lists links that failed at the boundary, Up lists links that
// recovered. Both slices are sorted ascending and disjoint; a normalized
// Delta never names a link twice.
type Delta struct {
	Down []int
	Up   []int
}

// Empty reports whether the delta changes nothing.
func (d Delta) Empty() bool { return len(d.Down) == 0 && len(d.Up) == 0 }

// Invert returns the delta that undoes d: downs become ups and vice
// versa. Applying d then d.Invert() restores the original down set.
func (d Delta) Invert() Delta {
	return Delta{Down: append([]int(nil), d.Up...), Up: append([]int(nil), d.Down...)}
}

// Validate checks that every link ID in the delta indexes a world with
// nLinks links and that no link is both downed and upped in one delta.
// Boundary code (the serving layer's what-if endpoint) uses it to
// reject malformed deltas before they reach a repair chain, which
// would otherwise silently ignore unknown links.
func (d Delta) Validate(nLinks int) error {
	seen := make(map[int]bool, len(d.Down))
	for _, l := range d.Down {
		if l < 0 || l >= nLinks {
			return fmt.Errorf("delta: down link %d out of range [0,%d)", l, nLinks)
		}
		seen[l] = true
	}
	for _, l := range d.Up {
		if l < 0 || l >= nLinks {
			return fmt.Errorf("delta: up link %d out of range [0,%d)", l, nLinks)
		}
		if seen[l] {
			return fmt.Errorf("delta: link %d both down and up in one delta", l)
		}
	}
	return nil
}

func (d Delta) String() string {
	return fmt.Sprintf("delta{down:%v up:%v}", d.Down, d.Up)
}

// Normalize sorts and de-duplicates both sides and drops links named on
// both (a down and an up at the same instant cancel). It returns an
// error when the same link appears twice on one side with conflicting
// multiplicity semantics — which cannot happen from window compilation,
// so duplicates within a side simply collapse.
func (d Delta) Normalize() Delta {
	down := dedupeSorted(d.Down)
	up := dedupeSorted(d.Up)
	// Cancel links present on both sides.
	both := make(map[int]bool)
	i, j := 0, 0
	for i < len(down) && j < len(up) {
		switch {
		case down[i] < up[j]:
			i++
		case down[i] > up[j]:
			j++
		default:
			both[down[i]] = true
			i++
			j++
		}
	}
	if len(both) == 0 {
		return Delta{Down: down, Up: up}
	}
	return Delta{Down: without(down, both), Up: without(up, both)}
}

func dedupeSorted(xs []int) []int {
	if len(xs) == 0 {
		return nil
	}
	out := append([]int(nil), xs...)
	sort.Ints(out)
	w := 1
	for _, x := range out[1:] {
		if x != out[w-1] {
			out[w] = x
			w++
		}
	}
	return out[:w]
}

func without(xs []int, drop map[int]bool) []int {
	var out []int
	for _, x := range xs {
		if !drop[x] {
			out = append(out, x)
		}
	}
	return out
}

// Diff returns the delta that transforms down set a into down set b:
// links in b but not a go Down, links in a but not b come Up. Both maps
// treat absent and false identically.
func Diff(a, b map[int]bool) Delta {
	var d Delta
	for l, v := range b {
		if v && !a[l] {
			d.Down = append(d.Down, l)
		}
	}
	for l, v := range a {
		if v && !b[l] {
			d.Up = append(d.Up, l)
		}
	}
	sort.Ints(d.Down)
	sort.Ints(d.Up)
	return d
}

// Apply folds the delta into the down set in place (allocating when the
// map is nil) and returns it. Nil stays nil when the delta is empty.
func Apply(down map[int]bool, d Delta) map[int]bool {
	if d.Empty() {
		return down
	}
	if down == nil {
		down = make(map[int]bool, len(d.Down))
	}
	for _, l := range d.Down {
		down[l] = true
	}
	for _, l := range d.Up {
		delete(down, l)
	}
	return down
}

// Event is one timed link-state edge: at minute At, link Link goes down
// (Down true) or comes back up.
type Event struct {
	At   float64
	Link int
	Down bool
}

// Epoch is one constant-topology span of a Sequence: it begins at Start
// with Delta applied to the previous epoch's state, and Down is the
// cumulative failed-link set in effect throughout the span (sorted
// ascending; shared storage — callers must not mutate).
type Epoch struct {
	Start float64
	Delta Delta
	Down  []int
}

// DownSet returns the epoch's failed links as a freshly allocated map in
// the shape bgp.ComputeWithout consumes; nil when nothing is down.
func (e Epoch) DownSet() map[int]bool {
	if len(e.Down) == 0 {
		return nil
	}
	m := make(map[int]bool, len(e.Down))
	for _, l := range e.Down {
		m[l] = true
	}
	return m
}

// Sequence is a compiled, time-ordered epoch chain over [Start, End).
// Epoch 0 starts at Start carrying the initial state as its Delta (from
// an empty down set); every later epoch starts at a boundary where the
// down set actually changed. A Sequence is immutable after Compile and
// safe for concurrent reads.
type Sequence struct {
	epochs     []Epoch
	start, end float64
}

// Start returns the sequence's first covered minute.
func (s *Sequence) Start() float64 { return s.start }

// End returns the sequence's horizon (exclusive).
func (s *Sequence) End() float64 { return s.end }

// Len returns the number of epochs. A sequence over a quiet span has
// exactly one epoch (possibly with an empty down set).
func (s *Sequence) Len() int { return len(s.epochs) }

// Epoch returns the i-th epoch.
func (s *Sequence) Epoch(i int) Epoch { return s.epochs[i] }

// At returns the index of the epoch in effect at minute t, clamping
// before Start to epoch 0 and at or beyond End to the last epoch.
func (s *Sequence) At(t float64) int {
	// First epoch with Start > t, minus one.
	i := sort.Search(len(s.epochs), func(i int) bool { return s.epochs[i].Start > t })
	if i == 0 {
		return 0
	}
	return i - 1
}

// DownAt returns the cumulative down set in effect at minute t (shared
// storage — callers must not mutate).
func (s *Sequence) DownAt(t float64) []int { return s.epochs[s.At(t)].Down }

// LinkDownAt reports whether the link is failed at minute t, by binary
// search over the epoch's sorted down set.
func (s *Sequence) LinkDownAt(link int, t float64) bool {
	down := s.DownAt(t)
	i := sort.SearchInts(down, link)
	return i < len(down) && down[i] == link
}

// Compile builds a Sequence over [t0, t1) from an event stream. Events
// outside [t0, t1) are ignored except that the initial epoch's state is
// the net effect of every event at or before t0 (so a window opened
// before the span is already down at Start). Same-instant events on
// distinct links merge into one boundary; a down and an up for the same
// link at the same instant cancel (a zero-length window never existed).
// Events need not be sorted. Compile returns an error for a NaN or
// reversed span.
func Compile(events []Event, t0, t1 float64) (*Sequence, error) {
	if !(t0 <= t1) { // also rejects NaN
		return nil, fmt.Errorf("delta: span [%v, %v) is not ordered", t0, t1)
	}
	evs := append([]Event(nil), events...)
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].At != evs[j].At {
			return evs[i].At < evs[j].At
		}
		return evs[i].Link < evs[j].Link
	})
	seq := &Sequence{start: t0, end: t1}
	state := make(map[int]bool)
	i := 0
	for ; i < len(evs) && evs[i].At <= t0; i++ {
		if evs[i].Down {
			state[evs[i].Link] = true
		} else {
			delete(state, evs[i].Link)
		}
	}
	prev := map[int]bool{}
	push := func(at float64) {
		d := Diff(prev, state).Normalize()
		if len(seq.epochs) > 0 && d.Empty() {
			return
		}
		seq.epochs = append(seq.epochs, Epoch{Start: at, Delta: d, Down: sortedKeys(state)})
		prev = cloneSet(state)
	}
	push(t0)
	for i < len(evs) && evs[i].At < t1 {
		at := evs[i].At
		for ; i < len(evs) && evs[i].At == at; i++ {
			if evs[i].Down {
				state[evs[i].Link] = true
			} else {
				delete(state, evs[i].Link)
			}
		}
		push(at)
	}
	return seq, nil
}

// CompileWindows builds a Sequence over [t0, t1) from per-link [start,
// end) down windows. Windows may overlap on one link; overlapping spans
// merge into one continuous down state (link-level reference counting),
// which matches how concurrent faults present to a BGP speaker.
// Zero-length and reversed windows contribute nothing.
func CompileWindows(windows map[int][]Window, t0, t1 float64) (*Sequence, error) {
	var evs []Event
	for link, ws := range windows {
		for _, w := range merged(ws) {
			if w.End <= w.Start {
				continue
			}
			evs = append(evs, Event{At: w.Start, Link: link, Down: true})
			evs = append(evs, Event{At: w.End, Link: link, Down: false})
		}
	}
	return Compile(evs, t0, t1)
}

// Window is one [Start, End) down span. It mirrors faults.Window without
// importing it, keeping this package dependency-free.
type Window struct{ Start, End float64 }

// merged sorts and coalesces overlapping/touching windows.
func merged(ws []Window) []Window {
	if len(ws) == 0 {
		return nil
	}
	out := append([]Window(nil), ws...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].End < out[j].End
	})
	m := out[:1]
	for _, w := range out[1:] {
		last := &m[len(m)-1]
		if w.Start <= last.End {
			if w.End > last.End {
				last.End = w.End
			}
			continue
		}
		m = append(m, w)
	}
	return m
}

func sortedKeys(m map[int]bool) []int {
	if len(m) == 0 {
		return nil
	}
	out := make([]int, 0, len(m))
	for l, v := range m {
		if v {
			out = append(out, l)
		}
	}
	sort.Ints(out)
	return out
}

func cloneSet(m map[int]bool) map[int]bool {
	out := make(map[int]bool, len(m))
	for l, v := range m {
		if v {
			out[l] = true
		}
	}
	return out
}
