package delta

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

func TestNormalize(t *testing.T) {
	d := Delta{Down: []int{5, 3, 5, 1}, Up: []int{2, 5, 2}}.Normalize()
	if !reflect.DeepEqual(d.Down, []int{1, 3}) || !reflect.DeepEqual(d.Up, []int{2}) {
		t.Fatalf("normalize = %v", d)
	}
	if !(Delta{}).Empty() {
		t.Fatal("zero delta should be empty")
	}
	if (Delta{Down: []int{1}}).Empty() {
		t.Fatal("non-zero delta reported empty")
	}
}

func TestInvertRoundTrip(t *testing.T) {
	down := map[int]bool{1: true, 4: true}
	d := Delta{Down: []int{2}, Up: []int{4}}
	after := Apply(cloneSet(down), d)
	back := Apply(after, d.Invert())
	if !reflect.DeepEqual(back, down) {
		t.Fatalf("invert round trip: got %v want %v", back, down)
	}
}

func TestDiffApply(t *testing.T) {
	a := map[int]bool{1: true, 2: true}
	b := map[int]bool{2: true, 3: true}
	d := Diff(a, b)
	if !reflect.DeepEqual(d.Down, []int{3}) || !reflect.DeepEqual(d.Up, []int{1}) {
		t.Fatalf("diff = %v", d)
	}
	got := Apply(cloneSet(a), d)
	if !reflect.DeepEqual(got, b) {
		t.Fatalf("apply(a, diff(a,b)) = %v want %v", got, b)
	}
	if Apply(nil, Delta{}) != nil {
		t.Fatal("empty delta on nil map should stay nil")
	}
}

func TestCompileBasic(t *testing.T) {
	seq, err := Compile([]Event{
		{At: 10, Link: 7, Down: true},
		{At: 20, Link: 7, Down: false},
		{At: 15, Link: 3, Down: true},
	}, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Len() != 4 {
		t.Fatalf("len = %d want 4", seq.Len())
	}
	if got := seq.Epoch(0); got.Start != 0 || len(got.Down) != 0 || !got.Delta.Empty() {
		t.Fatalf("epoch 0 = %+v", got)
	}
	if got := seq.DownAt(12); !reflect.DeepEqual(got, []int{7}) {
		t.Fatalf("down@12 = %v", got)
	}
	if got := seq.DownAt(17); !reflect.DeepEqual(got, []int{3, 7}) {
		t.Fatalf("down@17 = %v", got)
	}
	if got := seq.DownAt(25); !reflect.DeepEqual(got, []int{3}) {
		t.Fatalf("down@25 = %v", got)
	}
	// Epoch boundary is inclusive of its own start.
	if i := seq.At(10); i != 1 {
		t.Fatalf("At(10) = %d want 1", i)
	}
	if i := seq.At(-5); i != 0 {
		t.Fatalf("At(-5) = %d want 0", i)
	}
	if i := seq.At(1e9); i != seq.Len()-1 {
		t.Fatalf("At(inf) = %d want last", i)
	}
	if !seq.LinkDownAt(7, 10) || seq.LinkDownAt(7, 20) {
		t.Fatal("LinkDownAt boundary semantics: [start, end)")
	}
}

func TestCompileInitialStateBeforeSpan(t *testing.T) {
	// A window opened before t0 must already be down in epoch 0.
	seq, err := Compile([]Event{
		{At: -3, Link: 1, Down: true},
		{At: 5, Link: 1, Down: false},
	}, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := seq.Epoch(0); !reflect.DeepEqual(got.Down, []int{1}) {
		t.Fatalf("epoch 0 down = %v want [1]", got.Down)
	}
	if d := seq.Epoch(0).Delta; !reflect.DeepEqual(d.Down, []int{1}) {
		t.Fatalf("epoch 0 delta should carry initial state, got %v", d)
	}
	if seq.LinkDownAt(1, 7) {
		t.Fatal("link should be back up at 7")
	}
}

func TestCompileSameInstantCancel(t *testing.T) {
	// A zero-length flap (down and up at the same instant) never existed.
	seq, err := Compile([]Event{
		{At: 5, Link: 1, Down: true},
		{At: 5, Link: 1, Down: false},
	}, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Len() != 1 {
		t.Fatalf("zero-length flap produced %d epochs, want 1", seq.Len())
	}
}

func TestCompileRejectsBadSpan(t *testing.T) {
	if _, err := Compile(nil, 10, 5); err == nil {
		t.Fatal("reversed span accepted")
	}
	if _, err := Compile(nil, math.NaN(), 5); err == nil {
		t.Fatal("NaN span accepted")
	}
}

func TestCompileWindowsOverlapMerge(t *testing.T) {
	seq, err := CompileWindows(map[int][]Window{
		1: {{Start: 5, End: 15}, {Start: 10, End: 20}}, // overlap merges
		2: {{Start: 8, End: 8}},                        // zero-length drops
	}, 0, 30)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Len() != 3 {
		t.Fatalf("len = %d want 3 (quiet, down, up)", seq.Len())
	}
	if !seq.LinkDownAt(1, 12) || !seq.LinkDownAt(1, 17) || seq.LinkDownAt(1, 20) {
		t.Fatal("merged window should span [5,20)")
	}
	if seq.LinkDownAt(2, 8) {
		t.Fatal("zero-length window should contribute nothing")
	}
}

func TestSequenceDeltasChainToDownSets(t *testing.T) {
	// Folding each epoch's Delta must reproduce each epoch's Down set.
	rng := rand.New(rand.NewSource(42))
	var evs []Event
	state := map[int]bool{}
	for i := 0; i < 200; i++ {
		link := rng.Intn(12)
		evs = append(evs, Event{At: float64(rng.Intn(500)), Link: link, Down: !state[link]})
		state[link] = !state[link]
	}
	seq, err := Compile(evs, 0, 400)
	if err != nil {
		t.Fatal(err)
	}
	cur := map[int]bool{}
	for i := 0; i < seq.Len(); i++ {
		ep := seq.Epoch(i)
		cur = Apply(cur, ep.Delta)
		if got := sortedKeys(cur); !reflect.DeepEqual(got, ep.Down) {
			t.Fatalf("epoch %d: folded delta %v != down %v", i, got, ep.Down)
		}
		if ds := ep.DownSet(); len(ds) != len(ep.Down) {
			t.Fatalf("epoch %d: DownSet len %d != %d", i, len(ds), len(ep.Down))
		}
	}
}

func TestCompileEventOrderIrrelevant(t *testing.T) {
	evs := []Event{
		{At: 30, Link: 2, Down: false},
		{At: 10, Link: 2, Down: true},
		{At: 20, Link: 5, Down: true},
		{At: 25, Link: 5, Down: false},
	}
	a, err := Compile(evs, 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	rev := []Event{evs[3], evs[2], evs[1], evs[0]}
	b, err := Compile(rev, 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.epochs, b.epochs) {
		t.Fatalf("order-dependent compile:\n%v\nvs\n%v", a.epochs, b.epochs)
	}
}
