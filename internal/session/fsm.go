package session

import "fmt"

// State is a BGP session FSM state (RFC 4271 §8.2.2, condensed: the two
// transport-racing states Connect and Active collapse into Connect, since
// the simulator's transport either comes up after a message delay or the
// attempt fails and the retry timer re-arms).
type State uint8

// BGP FSM states, in handshake order.
const (
	Idle State = iota
	Connect
	OpenSent
	OpenConfirm
	Established
	numStates
)

func (s State) String() string {
	switch s {
	case Idle:
		return "Idle"
	case Connect:
		return "Connect"
	case OpenSent:
		return "OpenSent"
	case OpenConfirm:
		return "OpenConfirm"
	case Established:
		return "Established"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Valid reports whether s is one of the five defined states.
func (s State) Valid() bool { return s < numStates }

// Ev is an input to the BGP session FSM: operator/timer actions and
// received protocol messages.
type Ev uint8

// FSM inputs.
const (
	// EvStart arms a connection attempt (ManualStart / retry-timer fire).
	EvStart Ev = iota
	// EvTCPOpen reports the transport came up.
	EvTCPOpen
	// EvTCPFail reports the transport attempt failed or was torn down.
	EvTCPFail
	// EvBGPOpen is a received OPEN message.
	EvBGPOpen
	// EvKeepalive is a received KEEPALIVE message.
	EvKeepalive
	// EvUpdate is a received UPDATE message.
	EvUpdate
	// EvHoldExpire is the hold timer firing: no KEEPALIVE/UPDATE heard
	// for the negotiated hold time.
	EvHoldExpire
	// EvLinkDown is a liveness loss signalled from outside the BGP
	// machinery itself — an interface down notification or a BFD session
	// declaring the forwarding path dead.
	EvLinkDown
	// EvStop is an administrative stop.
	EvStop
	numEvents
)

func (e Ev) String() string {
	names := [...]string{"Start", "TCPOpen", "TCPFail", "BGPOpen", "Keepalive", "Update", "HoldExpire", "LinkDown", "Stop"}
	if int(e) < len(names) {
		return names[e]
	}
	return fmt.Sprintf("Ev(%d)", uint8(e))
}

// transitions is the full state-transition table. Every (state, event)
// pair maps to a defined state: events that RFC 4271 treats as FSM errors
// (a message arriving in a state that cannot legally receive it) reset the
// session to Idle, exactly as the RFC's "FSM error" handling closes the
// connection; events that are meaningless in a state (Start while already
// started, a duplicate transport-up report) leave the state unchanged.
// Established is entered from OpenConfirm on EvKeepalive ONLY — the fuzz
// test pins that the full handshake is the one road in.
var transitions = [numStates][numEvents]State{
	Idle: {
		EvStart:   Connect,
		EvTCPOpen: Idle, EvTCPFail: Idle,
		EvBGPOpen: Idle, EvKeepalive: Idle, EvUpdate: Idle,
		EvHoldExpire: Idle, EvLinkDown: Idle, EvStop: Idle,
	},
	Connect: {
		EvStart:   Connect,
		EvTCPOpen: OpenSent, // transport up: send OPEN
		EvTCPFail: Idle,
		EvBGPOpen: Idle, EvKeepalive: Idle, EvUpdate: Idle, // FSM error
		EvHoldExpire: Idle, EvLinkDown: Idle, EvStop: Idle,
	},
	OpenSent: {
		EvStart:     OpenSent,
		EvTCPOpen:   OpenSent, // duplicate transport report: ignore
		EvTCPFail:   Idle,
		EvBGPOpen:   OpenConfirm,          // OPEN accepted: send KEEPALIVE
		EvKeepalive: Idle, EvUpdate: Idle, // FSM error
		EvHoldExpire: Idle, EvLinkDown: Idle, EvStop: Idle,
	},
	OpenConfirm: {
		EvStart:      OpenConfirm,
		EvTCPOpen:    OpenConfirm,
		EvTCPFail:    Idle,
		EvBGPOpen:    Idle,        // collision resolution, simplified: reset
		EvKeepalive:  Established, // peer confirmed our OPEN
		EvUpdate:     Idle,        // FSM error
		EvHoldExpire: Idle, EvLinkDown: Idle, EvStop: Idle,
	},
	Established: {
		EvStart:      Established,
		EvTCPOpen:    Established,
		EvTCPFail:    Idle,
		EvBGPOpen:    Idle,        // FSM error
		EvKeepalive:  Established, // refreshes the hold timer
		EvUpdate:     Established, // refreshes the hold timer
		EvHoldExpire: Idle, EvLinkDown: Idle, EvStop: Idle,
	},
}

// Step applies one event to a state and returns the next state. It is
// total: any (state, event) pair — including out-of-range values, which
// reset to Idle — yields a defined state, and it never panics. The second
// return reports whether the input pair was in-range.
func Step(s State, e Ev) (State, bool) {
	if s >= numStates || e >= numEvents {
		return Idle, false
	}
	return transitions[s][e], true
}

// BFDState is a BFD liveness FSM state (RFC 5880 §6.2, without
// AdminDown: the simulator never administratively disables a session it
// is replaying).
type BFDState uint8

// BFD states.
const (
	BFDDown BFDState = iota
	BFDInit
	BFDUp
	numBFDStates
)

func (s BFDState) String() string {
	switch s {
	case BFDDown:
		return "BFDDown"
	case BFDInit:
		return "BFDInit"
	case BFDUp:
		return "BFDUp"
	default:
		return fmt.Sprintf("BFDState(%d)", uint8(s))
	}
}

// BFDEv is an input to the BFD FSM: the remote state carried in a
// received control packet, or the local detection timer expiring.
type BFDEv uint8

// BFD FSM inputs.
const (
	BFDRecvDown BFDEv = iota // packet with State=Down
	BFDRecvInit              // packet with State=Init
	BFDRecvUp                // packet with State=Up
	BFDTimeout               // detection time (DetectMult × interval) with no packet
	numBFDEvents
)

// bfdTransitions follows RFC 5880 figure 1: both ends start Down, a
// received Down answers with Init, Init+Init (or Init+Up) brings the
// session Up, and either a received Down or the detection timer tears it
// back to Down.
var bfdTransitions = [numBFDStates][numBFDEvents]BFDState{
	BFDDown: {BFDRecvDown: BFDInit, BFDRecvInit: BFDUp, BFDRecvUp: BFDDown, BFDTimeout: BFDDown},
	BFDInit: {BFDRecvDown: BFDInit, BFDRecvInit: BFDUp, BFDRecvUp: BFDUp, BFDTimeout: BFDDown},
	BFDUp:   {BFDRecvDown: BFDDown, BFDRecvInit: BFDUp, BFDRecvUp: BFDUp, BFDTimeout: BFDDown},
}

// BFDStep applies one event to a BFD state, total and panic-free like
// Step; out-of-range inputs reset to BFDDown.
func BFDStep(s BFDState, e BFDEv) (BFDState, bool) {
	if s >= numBFDStates || e >= numBFDEvents {
		return BFDDown, false
	}
	return bfdTransitions[s][e], true
}
