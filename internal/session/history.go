package session

import (
	"sort"

	"beatbgp/internal/delta"
	"beatbgp/internal/faults"
)

// Config returns the (defaults-applied) configuration the History was
// replayed under.
func (h *History) Config() Config { return h.cfg }

// HorizonMin returns the replay horizon in minutes.
func (h *History) HorizonMin() float64 { return h.horizonMin }

// Links returns the replayed link IDs, ascending.
func (h *History) Links() []int { return append([]int(nil), h.links...) }

// Outages returns the link's outage episodes in start order. Nil for a
// link that was never faulted (or not replayed).
func (h *History) Outages(link int) []Outage {
	lh := h.perLink[link]
	if lh == nil {
		return nil
	}
	return append([]Outage(nil), lh.outages...)
}

// Flaps returns how many times the link's session dropped.
func (h *History) Flaps(link int) int {
	lh := h.perLink[link]
	if lh == nil {
		return 0
	}
	return lh.flaps
}

// Transitions returns the link's recorded FSM state changes in time
// order.
func (h *History) Transitions(link int) []Transition {
	lh := h.perLink[link]
	if lh == nil {
		return nil
	}
	return append([]Transition(nil), lh.transitions...)
}

// OutageAt returns the outage episode covering minute t on the link: an
// episode spans [Start, max(End, UsableAt)).
func (h *History) OutageAt(link int, t float64) (Outage, bool) {
	lh := h.perLink[link]
	if lh == nil {
		return Outage{}, false
	}
	for _, o := range lh.outages {
		end := o.End
		if o.UsableAt > end {
			end = o.UsableAt
		}
		if o.Start <= t && t < end {
			return o, true
		}
	}
	return Outage{}, false
}

// DetectionLatencyMin returns how long after minute t (a fault onset
// inside some episode) the session layer noticed: DetectAt − t, clamped
// at zero for a fault joining an already-detected episode. ok is false
// when no episode covers t or the episode was never detected — the
// fault was invisible to every timer.
func (h *History) DetectionLatencyMin(link int, t float64) (float64, bool) {
	o, found := h.OutageAt(link, t)
	if !found || !o.Detected {
		return 0, false
	}
	lat := o.DetectAt - t
	if lat < 0 {
		lat = 0
	}
	return lat, true
}

// CtlDown returns the link's control-plane-down spans in minutes: route
// withdrawn at detection, usable again at re-advertisement.
func (h *History) CtlDown(link int) []faults.Window {
	lh := h.perLink[link]
	if lh == nil {
		return nil
	}
	return append([]faults.Window(nil), lh.ctlDown...)
}

// Suppressed returns the link's damping suppression spans in minutes.
func (h *History) Suppressed(link int) []faults.Window {
	lh := h.perLink[link]
	if lh == nil {
		return nil
	}
	return append([]faults.Window(nil), lh.suppressed...)
}

// SuppressedAt reports whether damping suppresses the link's route at
// minute t.
func (h *History) SuppressedAt(link int, t float64) bool {
	lh := h.perLink[link]
	if lh == nil {
		return false
	}
	return windowsContain(lh.suppressed, t)
}

// PhysDownMinutes returns the link's total physical downtime within the
// horizon.
func (h *History) PhysDownMinutes(link int) float64 {
	return measure(h.physWindows(link))
}

// UnusableMinutes returns the link's total unusable time within the
// horizon: the measure of the union of physical downtime and
// control-plane downtime. The gap between this and PhysDownMinutes is
// pure session-layer tax (detection tails, handshakes, MRAI, damping),
// minus whatever short faults the timers never saw.
func (h *History) UnusableMinutes(link int) float64 {
	lh := h.perLink[link]
	if lh == nil {
		return measure(h.physWindows(link))
	}
	return measure(mergeWindows(append(h.physWindows(link), lh.ctlDown...)))
}

// SuppressedWhileUpMinutes returns the time the link's route was
// damping-suppressed while the link was physically healthy — emergent
// unreachability the physical fault schedule cannot explain.
func (h *History) SuppressedWhileUpMinutes(link int) float64 {
	lh := h.perLink[link]
	if lh == nil {
		return 0
	}
	return measure(lh.suppressed) - overlap(lh.suppressed, h.physWindows(link))
}

// Boundaries returns the sorted, de-duplicated instants in [t0, t1) at
// which the replayed world changes: the timeline's own fault boundaries
// plus every control-plane and suppression edge — where experiments
// integrating availability over time should sample.
func (h *History) Boundaries(t0, t1 float64) []float64 {
	seen := make(map[float64]bool)
	var out []float64
	add := func(t float64) {
		if t >= t0 && t < t1 && !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	for _, t := range h.tl.Boundaries(t0, t1) {
		add(t)
	}
	for _, link := range h.links {
		lh := h.perLink[link]
		for _, w := range lh.ctlDown {
			add(w.Start)
			add(w.End)
		}
		for _, w := range lh.suppressed {
			add(w.Start)
			add(w.End)
		}
	}
	sort.Float64s(out)
	return out
}

// Events returns the replayed world's ordered link-usability stream: one
// Down edge where a link stops carrying routes and one Up edge where it
// resumes, for every link the timeline faults or the replay covers. A
// link is unusable exactly when LinkDownAt says so — physically down, or
// its route withdrawn/suppressed by the session layer — so each link's
// edges are the boundaries of the merged union of its physical and
// control-plane windows (a session tail fuses with the physical outage
// it trails into one continuous down span). Edges are ordered by time,
// then link.
func (h *History) Events() []delta.Event {
	links := h.tl.FaultedLinks()
	for _, l := range h.links {
		links = append(links, l)
	}
	sort.Ints(links)
	var out []delta.Event
	prev := -1
	for _, link := range links {
		if link == prev {
			continue // replayed and faulted
		}
		prev = link
		ws := h.tl.DownWindows(link)
		if lh := h.perLink[link]; lh != nil && len(lh.ctlDown) > 0 {
			ws = mergeWindows(append(append([]faults.Window(nil), ws...), lh.ctlDown...))
		}
		for _, w := range ws {
			out = append(out, delta.Event{At: w.Start, Link: link, Down: true})
			out = append(out, delta.Event{At: w.End, Link: link, Down: false})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		return out[i].Link < out[j].Link
	})
	return out
}

// Deltas compiles the usability stream over [t0, t1) into an epoch
// sequence: one epoch per instant the usable-link set changes, each
// carrying the delta from its predecessor. The sequence agrees with the
// instant query everywhere — seq.LinkDownAt(l, t) == h.LinkDownAt(l, t)
// for every t in the span — so route pipelines can repair across epochs
// instead of recomputing the down set per sample.
func (h *History) Deltas(t0, t1 float64) (*delta.Sequence, error) {
	return delta.Compile(h.Events(), t0, t1)
}

// LinkDownAt implements netsim.FaultOverlay: the link is unusable when
// physically down (delegated to the timeline, so non-replayed links keep
// their legacy instantaneous behavior) or when its route is withdrawn or
// suppressed.
func (h *History) LinkDownAt(linkID int, t float64) bool {
	if h.tl.LinkDownAt(linkID, t) {
		return true
	}
	lh := h.perLink[linkID]
	return lh != nil && windowsContain(lh.ctlDown, t)
}

// ExtraLinkMs implements netsim.FaultOverlay, delegating congestion
// storms to the timeline untouched.
func (h *History) ExtraLinkMs(linkID int, t float64) float64 {
	return h.tl.ExtraLinkMs(linkID, t)
}

// physWindows returns the link's merged physical windows clamped to the
// horizon, in minutes.
func (h *History) physWindows(link int) []faults.Window {
	var out []faults.Window
	for _, w := range h.tl.DownWindows(link) {
		if w.Start >= h.horizonMin {
			break
		}
		if w.End > h.horizonMin {
			w.End = h.horizonMin
		}
		out = append(out, w)
	}
	return out
}

func windowsContain(ws []faults.Window, t float64) bool {
	i := sort.Search(len(ws), func(i int) bool { return ws[i].End > t })
	return i < len(ws) && ws[i].Start <= t
}

// mergeWindows sorts and coalesces overlapping/touching windows.
func mergeWindows(ws []faults.Window) []faults.Window {
	if len(ws) == 0 {
		return nil
	}
	sort.Slice(ws, func(i, j int) bool {
		if ws[i].Start != ws[j].Start {
			return ws[i].Start < ws[j].Start
		}
		return ws[i].End < ws[j].End
	})
	merged := ws[:1]
	for _, w := range ws[1:] {
		last := &merged[len(merged)-1]
		if w.Start <= last.End {
			if w.End > last.End {
				last.End = w.End
			}
			continue
		}
		merged = append(merged, w)
	}
	return merged
}

// measure returns the total length of a set of disjoint sorted windows.
func measure(ws []faults.Window) float64 {
	total := 0.0
	for _, w := range ws {
		total += w.End - w.Start
	}
	return total
}

// overlap returns the measure of the intersection of two disjoint
// sorted window sets.
func overlap(a, b []faults.Window) float64 {
	total := 0.0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		lo := a[i].Start
		if b[j].Start > lo {
			lo = b[j].Start
		}
		hi := a[i].End
		if b[j].End < hi {
			hi = b[j].End
		}
		if hi > lo {
			total += hi - lo
		}
		if a[i].End < b[j].End {
			i++
		} else {
			j++
		}
	}
	return total
}
