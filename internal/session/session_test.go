package session

import (
	"math"
	"reflect"
	"testing"

	"beatbgp/internal/cable"
	"beatbgp/internal/faults"
	"beatbgp/internal/geo"
	"beatbgp/internal/netsim"
	"beatbgp/internal/topology"
)

// History composes with the stochastic fault process exactly like a raw
// Timeline does.
var _ netsim.FaultOverlay = (*History)(nil)

// testTopo builds the same tiny world the faults tests use: two transits
// spanning the hub cities and two stubs.
func testTopo(t testing.TB) (*topology.Topo, map[string]int) {
	t.Helper()
	catalog := geo.World()
	graph, err := cable.WorldGraph(catalog)
	if err != nil {
		t.Fatal(err)
	}
	topo := &topology.Topo{Catalog: catalog, Graph: graph}
	city := func(name string) int {
		c, ok := catalog.ByName(name)
		if !ok {
			t.Fatalf("city %s", name)
		}
		return c.ID
	}
	hub := []int{city("NewYork"), city("London"), city("Tokyo")}
	ids := map[string]int{}
	add := func(name string, class topology.Class, cs []int) {
		a, err := topo.AddAS(len(ids)+1, name, class, geo.NorthAmerica, cs, 1.1, topology.EarlyExit)
		if err != nil {
			t.Fatal(err)
		}
		ids[name] = a.ID
	}
	add("TRa", topology.Transit, hub)
	add("TRb", topology.Transit, hub)
	add("EYE", topology.Eyeball, hub[:2])
	add("STUB", topology.Eyeball, hub[:1])
	links := map[string]int{}
	conn := func(key, a, b string, rel topology.Rel) {
		l, err := topo.Connect(ids[a], ids[b], rel, nil, false)
		if err != nil {
			t.Fatal(err)
		}
		links[key] = l.ID
	}
	conn("trab", "TRa", "TRb", topology.P2P)
	conn("eye", "EYE", "TRa", topology.C2P)
	conn("stub", "STUB", "TRb", topology.C2P)
	return topo, links
}

// timeline builds an explicit LinkDown schedule: each entry is
// (link, startMin, durationMin).
func timeline(t testing.TB, topo *topology.Topo, evs [][3]float64) *faults.Timeline {
	t.Helper()
	var events []faults.Event
	for _, e := range evs {
		events = append(events, faults.Event{
			Kind: faults.LinkDown, Target: int(e[0]), Start: e[1], Duration: e[2],
		})
	}
	tl, err := faults.New(topo, events)
	if err != nil {
		t.Fatal(err)
	}
	return tl
}

func TestConfigDefaultsAndValidate(t *testing.T) {
	def := DefaultConfig()
	if def.HoldSec != 36 || def.KeepaliveSec != 12 || def.MRAISec != 30 {
		t.Fatalf("unexpected defaults: %+v", def)
	}
	// Tuning only the hold timer keeps the 3:1 keepalive ratio.
	if c := (Config{HoldSec: 9}).ApplyDefaults(); c.KeepaliveSec != 3 {
		t.Fatalf("KeepaliveSec = %v, want 3", c.KeepaliveSec)
	}
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
	bad := []Config{
		{HoldSec: 10, KeepaliveSec: 10}, // keepalive >= hold
		{HoldSec: math.NaN()},           // non-finite
		{DampReuse: 3000},               // reuse >= suppress
		{BFDMultiplier: -2},             // silly multiplier
		{HoldSec: 7200},                 // timer beyond an hour
		{ConnectRetrySec: -1},           // negative timer
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated: %+v", i, c)
		}
	}
	// Calibration: the default mean detection matches the reference
	// model's base term, and MRAI matches its per-hop term.
	if got := def.MeanDetectSec() / 60; got != 0.5 {
		t.Fatalf("mean detect %v min, want 0.5", got)
	}
	if got := def.ExplorationMinutes(3); got != 1.5 {
		t.Fatalf("exploration(3) = %v, want 1.5", got)
	}
	bfd := Config{BFD: true}.ApplyDefaults()
	if got := bfd.MeanDetectSec(); got != 0.9 {
		t.Fatalf("bfd mean detect %v s, want 0.9", got)
	}
}

func TestHandshakePath(t *testing.T) {
	s := Idle
	for _, step := range []struct {
		ev   Ev
		want State
	}{
		{EvStart, Connect}, {EvTCPOpen, OpenSent}, {EvBGPOpen, OpenConfirm}, {EvKeepalive, Established},
	} {
		var ok bool
		s, ok = Step(s, step.ev)
		if !ok || s != step.want {
			t.Fatalf("after %v: state %v ok=%v, want %v", step.ev, s, ok, step.want)
		}
	}
	// Keepalives and updates refresh Established; a stray OPEN is an FSM
	// error and resets.
	if s, _ := Step(Established, EvUpdate); s != Established {
		t.Fatalf("update in Established -> %v", s)
	}
	if s, _ := Step(Established, EvBGPOpen); s != Idle {
		t.Fatalf("OPEN in Established -> %v, want Idle", s)
	}
	// Out-of-range inputs are total and reset.
	if s, ok := Step(State(200), EvStart); ok || s != Idle {
		t.Fatalf("bogus state -> %v ok=%v", s, ok)
	}
	if s, ok := Step(Idle, Ev(200)); ok || s != Idle {
		t.Fatalf("bogus event -> %v ok=%v", s, ok)
	}
	// BFD three-way bring-up and teardown.
	b, _ := BFDStep(BFDDown, BFDRecvDown)
	if b != BFDInit {
		t.Fatalf("BFD Down+RecvDown -> %v", b)
	}
	b, _ = BFDStep(b, BFDRecvUp)
	if b != BFDUp {
		t.Fatalf("BFD Init+RecvUp -> %v", b)
	}
	if b, _ = BFDStep(b, BFDTimeout); b != BFDDown {
		t.Fatalf("BFD Up+Timeout -> %v", b)
	}
}

func TestReplayDetectsLongFault(t *testing.T) {
	topo, links := testTopo(t)
	link := links["eye"]
	tl := timeline(t, topo, [][3]float64{{float64(link), 10, 10}})
	h, err := Replay(tl, nil, Config{}, 42, 200)
	if err != nil {
		t.Fatal(err)
	}
	outs := h.Outages(link)
	if len(outs) != 1 {
		t.Fatalf("outages = %+v, want 1", outs)
	}
	o := outs[0]
	if !o.Detected || o.Detector != DetectorHold || o.Flaps != 1 {
		t.Fatalf("outage %+v: want detected via hold, 1 flap", o)
	}
	// Detection lands within [Hold-KA, Hold] of the fault onset.
	if lat := o.DetectAt - o.Start; lat < 24.0/60-1e-9 || lat > 36.0/60+1e-9 {
		t.Fatalf("detect latency %v min outside [0.4, 0.6]", lat)
	}
	if lat, ok := h.DetectionLatencyMin(link, 10); !ok || lat != o.DetectAt-10 {
		t.Fatalf("DetectionLatencyMin = %v, %v", lat, ok)
	}
	// The route comes back only after recovery + retry + handshake: a
	// control-plane tail past the physical end.
	if o.End != 20 || o.UsableAt <= 20 || o.UsableAt > 21 {
		t.Fatalf("outage %+v: want End=20, UsableAt in (20, 21]", o)
	}
	if got := h.UnusableMinutes(link); got <= 10 || got > 11 {
		t.Fatalf("UnusableMinutes = %v, want (10, 11]", got)
	}
	if got := h.PhysDownMinutes(link); got != 10 {
		t.Fatalf("PhysDownMinutes = %v, want 10", got)
	}
	// The full FSM walked: drop, then a complete handshake back up.
	var evs []Ev
	for _, tr := range h.Transitions(link) {
		evs = append(evs, tr.Ev)
	}
	want := []Ev{EvHoldExpire, EvStart, EvTCPOpen, EvBGPOpen, EvKeepalive}
	if !reflect.DeepEqual(evs, want) {
		t.Fatalf("transitions %v, want %v", evs, want)
	}
	// Overlay composition: physically down mid-fault, control-down after
	// recovery until usable, up afterwards.
	if !h.LinkDownAt(link, 15) {
		t.Fatal("link should be down mid-fault")
	}
	if !h.LinkDownAt(link, (20+o.UsableAt)/2) {
		t.Fatal("link should be control-plane down after recovery")
	}
	if h.LinkDownAt(link, o.UsableAt+0.01) {
		t.Fatal("link should be usable after re-advertisement")
	}
	// Unreplayed links keep the legacy timeline behavior.
	if h.LinkDownAt(links["stub"], 15) {
		t.Fatal("unfaulted link reported down")
	}
}

// A fault shorter than the detection window is invisible to the hold
// timer — the session survives and nothing is withdrawn — but BFD's
// sub-second detection catches it.
func TestShortFaultInvisibleToHoldCaughtByBFD(t *testing.T) {
	topo, links := testTopo(t)
	link := links["eye"]
	// 6 seconds of downtime: under any keepalive phase the next arrival
	// after recovery beats the 36s hold deadline.
	tl := timeline(t, topo, [][3]float64{{float64(link), 30, 0.1}})

	slow, err := Replay(tl, nil, Config{}, 7, 200)
	if err != nil {
		t.Fatal(err)
	}
	outs := slow.Outages(link)
	if len(outs) != 1 || outs[0].Detected || outs[0].Flaps != 0 {
		t.Fatalf("hold-timer outages = %+v, want one undetected", outs)
	}
	if got := slow.Flaps(link); got != 0 {
		t.Fatalf("flaps = %d, want 0", got)
	}
	if ctl := slow.CtlDown(link); len(ctl) != 0 {
		t.Fatalf("ctlDown = %+v, want none (no withdrawal)", ctl)
	}
	if _, ok := slow.DetectionLatencyMin(link, 30); ok {
		t.Fatal("undetected fault reported a detection latency")
	}
	// Unusable time is exactly the physical window: no control tail.
	if got := slow.UnusableMinutes(link); math.Abs(got-0.1) > 1e-9 {
		t.Fatalf("UnusableMinutes = %v, want 0.1", got)
	}

	fast, err := Replay(tl, nil, Config{BFD: true}, 7, 200)
	if err != nil {
		t.Fatal(err)
	}
	outs = fast.Outages(link)
	if len(outs) != 1 || !outs[0].Detected || outs[0].Detector != DetectorBFD {
		t.Fatalf("BFD outages = %+v, want one detected via bfd", outs)
	}
	if lat := outs[0].DetectAt - outs[0].Start; lat <= 0 || lat > (0.9+0.3)/60+1e-9 {
		t.Fatalf("BFD detect latency %v min outside (0, 0.02]", lat)
	}
}

// Overlapping fault events on one link merge into a single continuous
// outage episode with one detection.
func TestOverlappingFaultWindows(t *testing.T) {
	topo, links := testTopo(t)
	link := links["eye"]
	tl := timeline(t, topo, [][3]float64{
		{float64(link), 10, 20}, // [10, 30)
		{float64(link), 20, 30}, // [20, 50) — overlaps
		{float64(link), 50, 5},  // [50, 55) — touches
	})
	h, err := Replay(tl, nil, Config{}, 42, 200)
	if err != nil {
		t.Fatal(err)
	}
	outs := h.Outages(link)
	if len(outs) != 1 {
		t.Fatalf("outages = %+v, want one merged episode", outs)
	}
	o := outs[0]
	if o.Start != 10 || o.End != 55 || !o.Detected || o.Flaps != 1 {
		t.Fatalf("merged episode %+v", o)
	}
	if got := h.PhysDownMinutes(link); got != 45 {
		t.Fatalf("PhysDownMinutes = %v, want 45", got)
	}
}

// A flap sequence crossing the damping suppress threshold produces
// emergent unreachability: the route stays suppressed long after the
// link is physically healthy.
func TestFlapStormCrossesSuppressThreshold(t *testing.T) {
	topo, links := testTopo(t)
	link := links["eye"]
	// Five 2-minute outages spaced 2 minutes apart: every one is
	// detected (120s >> 36s) and the penalty crosses 2000 on the third
	// flap (1000 -> ~1830 -> ~2520 with the 15-min half-life).
	var evs [][3]float64
	for i := 0; i < 5; i++ {
		evs = append(evs, [3]float64{float64(link), 10 + 4*float64(i), 2})
	}
	tl := timeline(t, topo, evs)
	h, err := Replay(tl, nil, Config{}, 42, 400)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Flaps(link); got != 5 {
		t.Fatalf("flaps = %d, want 5", got)
	}
	outs := h.Outages(link)
	if len(outs) == 0 {
		t.Fatal("no outages")
	}
	last := outs[len(outs)-1]
	if !last.Suppressed {
		t.Fatalf("final episode %+v not suppressed", last)
	}
	if sup := h.Suppressed(link); len(sup) == 0 {
		t.Fatal("no suppression span recorded")
	}
	swu := h.SuppressedWhileUpMinutes(link)
	if swu < 10 {
		t.Fatalf("SuppressedWhileUpMinutes = %v, want well over the physical downtime", swu)
	}
	// The suppression tail dominates the 10 physical down minutes.
	if un := h.UnusableMinutes(link); un < 30 {
		t.Fatalf("UnusableMinutes = %v, want dominated by suppression", un)
	}
	// With damping disabled the same storm causes no suppression and far
	// less unusable time.
	free, err := Replay(tl, nil, Config{DisableDamping: true}, 42, 400)
	if err != nil {
		t.Fatal(err)
	}
	if got := free.SuppressedWhileUpMinutes(link); got != 0 {
		t.Fatalf("damping disabled but SuppressedWhileUp = %v", got)
	}
	if free.UnusableMinutes(link) >= h.UnusableMinutes(link) {
		t.Fatalf("damping off (%v min) should be cheaper than on (%v min)",
			free.UnusableMinutes(link), h.UnusableMinutes(link))
	}
}

func TestReplayDeterministicAndSeedSensitive(t *testing.T) {
	topo, links := testTopo(t)
	link := links["eye"]
	tl := timeline(t, topo, [][3]float64{
		{float64(link), 10, 10},
		{float64(links["trab"]), 30, 5},
	})
	a, err := Replay(tl, nil, Config{}, 42, 200)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Replay(tl, nil, Config{}, 42, 200)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range a.Links() {
		if !reflect.DeepEqual(a.Outages(l), b.Outages(l)) {
			t.Fatalf("link %d outages differ across identical replays", l)
		}
		if !reflect.DeepEqual(a.Transitions(l), b.Transitions(l)) {
			t.Fatalf("link %d transitions differ across identical replays", l)
		}
	}
	// A different seed shifts the keepalive phase, so detection lands at
	// a different instant.
	c, err := Replay(tl, nil, Config{}, 1042, 200)
	if err != nil {
		t.Fatal(err)
	}
	if a.Outages(link)[0].DetectAt == c.Outages(link)[0].DetectAt {
		t.Fatal("different seeds produced identical detection instants")
	}
	// Replaying an explicit subset matches the full replay on that link.
	sub, err := Replay(tl, []int{link}, Config{}, 42, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sub.Outages(link), a.Outages(link)) {
		t.Fatal("subset replay differs from full replay")
	}
}

func TestBoundariesIncludeSessionEdges(t *testing.T) {
	topo, links := testTopo(t)
	link := links["eye"]
	tl := timeline(t, topo, [][3]float64{{float64(link), 10, 10}})
	h, err := Replay(tl, nil, Config{}, 42, 200)
	if err != nil {
		t.Fatal(err)
	}
	o := h.Outages(link)[0]
	bounds := h.Boundaries(0, 200)
	want := map[float64]bool{10: false, 20: false, o.DetectAt: false, o.UsableAt: false}
	for _, b := range bounds {
		if _, ok := want[b]; ok {
			want[b] = true
		}
	}
	for v, seen := range want {
		if !seen {
			t.Fatalf("boundary %v missing from %v", v, bounds)
		}
	}
}

func TestDeltasMatchLinkDownAt(t *testing.T) {
	topo, links := testTopo(t)
	eye, stub := links["eye"], links["stub"]
	// A flap storm on eye (damping tails), overlapping faults on stub.
	evs := [][3]float64{
		{float64(stub), 10, 15}, {float64(stub), 20, 10},
	}
	for i := 0; i < 6; i++ {
		evs = append(evs, [3]float64{float64(eye), 40 + 14*float64(i), 7})
	}
	tl := timeline(t, topo, evs)
	h, err := Replay(tl, nil, Config{}, 42, 300)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := h.Deltas(0, 300)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Len() < 4 {
		t.Fatalf("only %d epochs for a schedule with session tails", seq.Len())
	}
	// The compiled sequence and the instant query must agree everywhere:
	// sample densely plus exactly at every boundary instant (an edge
	// ending at t is up at t) and just around it.
	samples := []float64{0}
	for _, b := range h.Boundaries(0, 300) {
		samples = append(samples, b, b-1e-9, b+1e-9)
	}
	for at := 0.5; at < 300; at += 0.5 {
		samples = append(samples, at)
	}
	for _, link := range []int{eye, stub, links["trab"]} {
		for _, at := range samples {
			if at < 0 {
				continue
			}
			if got, want := seq.LinkDownAt(link, at), h.LinkDownAt(link, at); got != want {
				t.Fatalf("link %d at %v: sequence says down=%v, history says %v", link, at, got, want)
			}
		}
	}
	// The session layer's tail must be visible as epochs: the link stays
	// down past the physical end (minute 30) of its merged stub fault,
	// until the route is re-advertised at UsableAt.
	o, ok := h.OutageAt(stub, 29)
	if !ok || o.UsableAt <= 30 {
		t.Fatalf("expected a detected stub outage with a tail, got %+v ok=%v", o, ok)
	}
	if !seq.LinkDownAt(stub, (30+o.UsableAt)/2) {
		t.Error("control-plane tail after the physical window not in the sequence")
	}
	// Event stream is time-ordered and alternates down/up per link.
	events := h.Events()
	state := map[int]bool{}
	for i, e := range events {
		if i > 0 && e.At < events[i-1].At {
			t.Fatalf("event %d out of order: %v after %v", i, e, events[i-1])
		}
		if state[e.Link] == e.Down {
			t.Fatalf("event %d (%v) does not alternate", i, e)
		}
		state[e.Link] = e.Down
	}
	for l, down := range state {
		if down {
			t.Fatalf("link %d left down at stream end", l)
		}
	}
}
