package session

import (
	"fmt"
	"math"
	"sort"

	"beatbgp/internal/faults"
	"beatbgp/internal/xrand"
)

// phaseKey salts the per-link RNG streams so keepalive/BFD phases are
// decoupled from every other consumer of the scenario seed.
const phaseKey = 0x5e551017

// Detector names recorded on detected outages.
const (
	DetectorHold = "hold"
	DetectorBFD  = "bfd"
)

// Outage is one outage EPISODE on a link: a maximal span from the first
// physical down instant to the moment the route is usable again. An
// episode may cover several merged fault windows (when the session never
// stabilizes in between) and several session flaps. All times are
// simulated minutes.
type Outage struct {
	Link  int
	Start float64 // first physical-down minute of the episode
	End   float64 // last physical recovery minute seen (capped at the horizon)
	// Detected reports whether any timer ever noticed: an undetected
	// episode was shorter than the detection window, the session
	// survived, and no withdrawal propagated.
	Detected bool
	Detector string  // "hold" or "bfd" — whichever fired first
	DetectAt float64 // minute the session dropped (valid when Detected)
	// UsableAt is the minute the route is usable again: the
	// re-advertisement instant for a detected episode (post-handshake,
	// MRAI- and damping-gated), the physical recovery for an undetected
	// one. Control-plane downtime is [DetectAt, UsableAt).
	UsableAt float64
	Flaps    int // session drops within the episode
	// Suppressed reports route-flap damping held the re-advertisement
	// beyond session re-establishment.
	Suppressed bool
}

// DowntimeMinutes is the episode's client-visible blackhole for traffic
// with no alternative route: physical downtime plus the control-plane
// tail (detection handshake, MRAI, damping) after recovery.
func (o Outage) DowntimeMinutes() float64 {
	end := o.End
	if o.Detected && o.UsableAt > end {
		end = o.UsableAt
	}
	return end - o.Start
}

// Transition is one recorded BGP FSM state change.
type Transition struct {
	Link     int
	AtMin    float64
	From, To State
	Ev       Ev
}

// linkHistory is the replay result for one link, all times in minutes.
type linkHistory struct {
	outages     []Outage
	ctlDown     []faults.Window // route withdrawn/suppressed spans
	suppressed  []faults.Window // damping suppression spans
	transitions []Transition
	flaps       int
}

// History is the replayed session dynamics of every requested link over
// one fault timeline. It is immutable after Replay and safe for
// concurrent reads, and implements netsim.FaultOverlay: a link is down
// when it is physically down OR its route is withdrawn/suppressed — the
// emergent control-plane shadow the closed-form model approximates.
type History struct {
	tl         *faults.Timeline
	cfg        Config
	horizonMin float64
	links      []int
	perLink    map[int]*linkHistory
}

// Replay runs the session layer over the timeline's fault windows for
// the given links (nil means every faulted link) and returns the
// History. It is a pure function of its arguments: per-link phases
// derive from (seed, link), never from scheduling, so the result is
// byte-identical regardless of caller parallelism.
func Replay(tl *faults.Timeline, links []int, cfg Config, seed uint64, horizonMin float64) (*History, error) {
	if tl == nil {
		return nil, fmt.Errorf("session: nil timeline")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.ApplyDefaults()
	if math.IsNaN(horizonMin) || math.IsInf(horizonMin, 0) || horizonMin <= 0 {
		return nil, fmt.Errorf("session: horizon %v must be finite and positive", horizonMin)
	}
	if links == nil {
		links = tl.FaultedLinks()
	} else {
		links = append([]int(nil), links...)
		sort.Ints(links)
		links = dedupeInts(links)
	}
	h := &History{
		tl:         tl,
		cfg:        cfg,
		horizonMin: horizonMin,
		links:      links,
		perLink:    make(map[int]*linkHistory, len(links)),
	}
	for _, link := range links {
		rng := xrand.Derive(seed, phaseKey, uint64(link))
		h.perLink[link] = replayLink(link, tl.DownWindows(link), cfg, rng, horizonMin)
	}
	return h, nil
}

func dedupeInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

// episode is an in-flight Outage, in seconds.
type episode struct {
	start, end float64
	detected   bool
	detector   string
	detectAt   float64
	flaps      int
	suppressed bool
}

// replayLink runs one link's discrete-event loop. windows are the merged
// physical outage spans in MINUTES; everything inside runs in SECONDS
// (the natural unit of the timers) and converts at the boundary.
func replayLink(link int, windows []faults.Window, cfg Config, rng *xrand.Rand, horizonMin float64) *linkHistory {
	horizon := horizonMin * 60
	var ws []faults.Window
	for _, w := range windows {
		s, e := w.Start*60, w.End*60
		if s >= horizon {
			break
		}
		if e > horizon {
			e = horizon
		}
		if e > s {
			ws = append(ws, faults.Window{Start: s, End: e})
		}
	}
	lh := &linkHistory{}
	if len(ws) == 0 {
		return lh
	}

	var (
		ka        = cfg.KeepaliveSec
		hold      = cfg.HoldSec
		bfdInt    = cfg.BFDIntervalMs / 1e3
		bfdDetect = float64(cfg.BFDMultiplier) * bfdInt
		// The peer's keepalive (and BFD packet) arrivals sit on a
		// per-link phase grid: phase + n·period. The phase is the only
		// randomness in the replay.
		kaPhase  = rng.Uniform(0, ka)
		bfdPhase = rng.Uniform(0, bfdInt)
	)

	c := newClock(horizon)

	// Mutable session state. The warm start is Established at t=0 with a
	// full advertisement history (lastAdv = −MRAI: free to re-advertise
	// immediately after the first recovery).
	var (
		st    = Established
		bfdSt = BFDUp

		holdGen, bfdGen, retryGen, hsGen, advGen uint64
		holdPending, bfdPending                  bool
		holdAt, bfdAt                            float64

		penalty         float64
		penaltyAt       float64
		suppressedUntil = math.Inf(-1)
		lastAdv         = -cfg.MRAISec

		ctlOpen  bool
		ctlStart float64
		ctlDown  []faults.Window // seconds
		supp     []faults.Window // seconds

		epi *episode
	)

	step := func(t float64, e Ev) {
		from := st
		st, _ = Step(st, e)
		if st != from {
			lh.transitions = append(lh.transitions, Transition{Link: link, AtMin: t / 60, From: from, To: st, Ev: e})
		}
	}
	physDownAt := func(t float64) bool {
		i := sort.Search(len(ws), func(i int) bool { return ws[i].End > t })
		return i < len(ws) && ws[i].Start <= t
	}
	closeEpisode := func(usableSec float64) {
		e := epi
		epi = nil
		lh.outages = append(lh.outages, Outage{
			Link: link, Start: e.start / 60, End: e.end / 60,
			Detected: e.detected, Detector: e.detector, DetectAt: e.detectAt / 60,
			UsableAt: usableSec / 60, Flaps: e.flaps, Suppressed: e.suppressed,
		})
	}
	withdraw := func(t float64) {
		if !ctlOpen {
			ctlOpen, ctlStart = true, t
		}
		advGen++ // a pending re-advertisement is void
	}
	flap := func(t float64) {
		// RFC 2439 damping: penalty decays exponentially and each flap
		// adds a fixed figure of merit, capped at the ceiling that
		// decays to reuse in exactly the max-suppress time.
		penalty = penalty*math.Exp2(-(t-penaltyAt)/cfg.DampHalfLifeSec) + cfg.DampPenalty
		if ceil := cfg.penaltyCeiling(); penalty > ceil {
			penalty = ceil
		}
		penaltyAt = t
		lh.flaps++
		if epi != nil {
			epi.flaps++
		}
		if cfg.DisableDamping || penalty < cfg.DampSuppress {
			return
		}
		holdFor := cfg.DampHalfLifeSec * math.Log2(penalty/cfg.DampReuse)
		if holdFor > cfg.DampMaxSuppressSec {
			holdFor = cfg.DampMaxSuppressSec
		}
		until := t + holdFor
		if until > suppressedUntil {
			if n := len(supp); n > 0 && t <= supp[n-1].End {
				supp[n-1].End = until // still suppressed: extend
			} else {
				supp = append(supp, faults.Window{Start: t, End: until})
			}
			suppressedUntil = until
		}
		if epi != nil {
			epi.suppressed = true
		}
	}

	var scheduleRetry func(at float64)
	var beginHandshake func(t float64)

	onEstablished := func(t float64) {
		if cfg.BFD {
			// The BFD session bootstraps alongside: Down → Init on the
			// peer's Down packet, Up on its Up packet.
			bfdSt, _ = BFDStep(bfdSt, BFDRecvDown)
			bfdSt, _ = BFDStep(bfdSt, BFDRecvUp)
		}
		// Re-advertise once the MRAI permits and damping has released.
		at := t
		if v := lastAdv + cfg.MRAISec; v > at {
			at = v
		}
		if suppressedUntil > at {
			at = suppressedUntil
		}
		advGen++
		gen := advGen
		c.schedule(at, func(now float64) {
			if gen != advGen || st != Established {
				return
			}
			lastAdv = now
			if ctlOpen {
				ctlDown = append(ctlDown, faults.Window{Start: ctlStart, End: now})
				ctlOpen = false
			}
			if epi != nil {
				closeEpisode(now)
			}
		})
	}

	beginHandshake = func(t float64) {
		step(t, EvStart) // Idle → Connect
		hsGen++
		gen := hsGen
		d := cfg.MsgDelaySec
		c.schedule(t+d, func(now float64) {
			if gen == hsGen {
				step(now, EvTCPOpen) // Connect → OpenSent
			}
		})
		c.schedule(t+2*d, func(now float64) {
			if gen == hsGen {
				step(now, EvBGPOpen) // OpenSent → OpenConfirm
			}
		})
		c.schedule(t+3*d, func(now float64) {
			if gen != hsGen {
				return
			}
			step(now, EvKeepalive) // OpenConfirm → Established
			onEstablished(now)
		})
	}

	scheduleRetry = func(at float64) {
		retryGen++
		gen := retryGen
		c.schedule(at, func(now float64) {
			if gen != retryGen || st != Idle {
				return
			}
			if physDownAt(now) {
				scheduleRetry(now + cfg.ConnectRetrySec)
				return
			}
			beginHandshake(now)
		})
	}

	detect := func(t float64, detector string) {
		ev := EvHoldExpire
		if detector == DetectorBFD {
			bfdSt, _ = BFDStep(bfdSt, BFDTimeout)
			ev = EvLinkDown
		} else if cfg.BFD {
			bfdSt = BFDDown // hold fired first; the BFD session tears down with the BGP one
		}
		step(t, ev) // Established → Idle
		holdPending, bfdPending = false, false
		holdGen++
		bfdGen++
		if epi == nil {
			epi = &episode{start: t, end: t}
		}
		if !epi.detected {
			epi.detected, epi.detector, epi.detectAt = true, detector, t
		}
		withdraw(t)
		flap(t)
		scheduleRetry(t + cfg.ConnectRetrySec)
	}

	onPhysDown := func(i int) func(float64) {
		return func(t float64) {
			if epi == nil {
				epi = &episode{start: t, end: t}
			}
			switch st {
			case Established:
				// Arm the detection timers from the last packet that
				// actually arrived. A timer already pending from an
				// earlier window (the session never heard a packet in
				// the gap) keeps its earlier deadline.
				if !holdPending {
					holdAt = lastBefore(t, kaPhase, ka) + hold
					holdPending = true
					holdGen++
					gen := holdGen
					c.schedule(holdAt, func(now float64) {
						if gen != holdGen || !holdPending {
							return
						}
						holdPending = false
						detect(now, DetectorHold)
					})
				}
				if cfg.BFD && !bfdPending {
					bfdAt = lastBefore(t, bfdPhase, bfdInt) + bfdDetect
					bfdPending = true
					bfdGen++
					gen := bfdGen
					c.schedule(bfdAt, func(now float64) {
						if gen != bfdGen || !bfdPending {
							return
						}
						bfdPending = false
						detect(now, DetectorBFD)
					})
				}
			case Connect, OpenSent, OpenConfirm:
				// Transport torn down mid-handshake.
				hsGen++
				step(t, EvTCPFail)
				scheduleRetry(t + cfg.ConnectRetrySec)
			case Idle:
				// The pending retry will find the link down and re-arm.
			}
		}
	}

	onPhysUp := func(i int) func(float64) {
		nextStart := math.Inf(1)
		if i+1 < len(ws) {
			nextStart = ws[i+1].Start
		}
		return func(t float64) {
			if epi != nil && t > epi.end {
				epi.end = t
			}
			if st != Established {
				return // retry/handshake machinery handles recovery
			}
			// Survival check: a pending timer is cancelled only if the
			// next packet ACTUALLY arrives (while the link is up) before
			// the deadline — a packet landing inside the next fault
			// window is lost and the deadline stands across the gap.
			if holdPending {
				if nka := nextFrom(t, kaPhase, ka); nka < holdAt && nka < nextStart {
					holdPending = false
					holdGen++
				}
			}
			if bfdPending {
				if nrx := nextFrom(t, bfdPhase, bfdInt); nrx < bfdAt && nrx < nextStart {
					bfdPending = false
					bfdGen++
				}
			}
			if !holdPending && !bfdPending && epi != nil && !epi.detected {
				// The fault was shorter than every detection window: the
				// session survived, nothing was withdrawn, and the route
				// is usable the instant the link is back.
				closeEpisode(t)
			}
		}
	}

	for i := range ws {
		c.schedule(ws[i].Start, onPhysDown(i))
		c.schedule(ws[i].End, onPhysUp(i))
	}
	c.run()

	// Truncate whatever the horizon cut open.
	if ctlOpen {
		ctlDown = append(ctlDown, faults.Window{Start: ctlStart, End: horizon})
	}
	if epi != nil {
		if epi.end < epi.start {
			epi.end = horizon
		}
		closeEpisode(horizon)
	}
	for i := range supp {
		if supp[i].End > horizon {
			supp[i].End = horizon
		}
	}
	lh.ctlDown = toMinutes(ctlDown)
	lh.suppressed = toMinutes(supp)
	return lh
}

// lastBefore returns the largest grid instant phase + n·period strictly
// before t. A packet landing exactly at t is lost to the fault starting
// at t (windows are [start, end)).
func lastBefore(t, phase, period float64) float64 {
	at := phase + math.Floor((t-phase)/period)*period
	if at >= t {
		at -= period
	}
	return at
}

// nextFrom returns the smallest grid instant phase + n·period at or
// after t. A packet landing exactly at a recovery instant arrives.
func nextFrom(t, phase, period float64) float64 {
	at := phase + math.Ceil((t-phase)/period)*period
	if at < t {
		at += period
	}
	return at
}

func toMinutes(ws []faults.Window) []faults.Window {
	if len(ws) == 0 {
		return nil
	}
	out := make([]faults.Window, len(ws))
	for i, w := range ws {
		out[i] = faults.Window{Start: w.Start / 60, End: w.End / 60}
	}
	return out
}
