package session

// clock is the discrete-event scheduler driving one link's replay: a
// binary min-heap of timed callbacks ordered by (time, insertion
// sequence). The sequence tiebreak makes same-instant events fire in the
// order they were scheduled, so a replay is a pure function of its inputs
// — no map iteration, no goroutines, no wall clock — which is what keeps
// session experiments byte-identical across worker counts.
//
// Timer cancellation is by generation counter, not heap surgery: the
// scheduling site captures a generation value in the callback's closure
// and the owner invalidates it by bumping the counter, so a stale timer
// pops and returns without effect. This is cheaper and simpler than
// removing heap entries, and the pop order stays deterministic.
type clock struct {
	now     float64
	horizon float64 // events strictly beyond this instant are dropped
	seq     uint64
	heap    []timer
}

type timer struct {
	at  float64
	seq uint64
	fn  func(now float64)
}

func newClock(horizon float64) *clock { return &clock{horizon: horizon} }

func (c *clock) less(i, j int) bool {
	if c.heap[i].at != c.heap[j].at {
		return c.heap[i].at < c.heap[j].at
	}
	return c.heap[i].seq < c.heap[j].seq
}

// schedule enqueues fn to run at instant `at`. Events beyond the horizon
// are dropped — the replay finalizer truncates whatever they would have
// closed. Scheduling in the past is a replay bug; clamp to now so it
// still fires deterministically rather than corrupting heap order.
func (c *clock) schedule(at float64, fn func(now float64)) {
	if at > c.horizon {
		return
	}
	if at < c.now {
		at = c.now
	}
	c.heap = append(c.heap, timer{at: at, seq: c.seq, fn: fn})
	c.seq++
	// Sift up.
	i := len(c.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !c.less(i, parent) {
			break
		}
		c.heap[i], c.heap[parent] = c.heap[parent], c.heap[i]
		i = parent
	}
}

// run pops and fires events in (time, seq) order until the heap drains.
// Callbacks may schedule further events.
func (c *clock) run() {
	for len(c.heap) > 0 {
		t := c.heap[0]
		// Pop: move last to root, sift down.
		last := len(c.heap) - 1
		c.heap[0] = c.heap[last]
		c.heap = c.heap[:last]
		i := 0
		for {
			l, r := 2*i+1, 2*i+2
			small := i
			if l < last && c.less(l, small) {
				small = l
			}
			if r < last && c.less(r, small) {
				small = r
			}
			if small == i {
				break
			}
			c.heap[i], c.heap[small] = c.heap[small], c.heap[i]
			i = small
		}
		c.now = t.at
		t.fn(t.at)
	}
}
