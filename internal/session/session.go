// Package session is the event-driven BGP session layer: a deterministic
// replay of per-peering-link session dynamics over an injected fault
// timeline (internal/faults). Where the closed-form reference model
// (bgp.ConvergenceMinutes) charges a fixed base-plus-per-hop cost for
// every convergence event, this package makes both terms EMERGENT from
// mechanism:
//
//   - detection comes from timers — a hold timer refreshed by keepalives
//     on a per-link phase grid, or an optional BFD liveness session with
//     sub-second intervals and a detection multiplier;
//   - a fault shorter than the detection window is invisible: the session
//     survives and no withdrawal ever propagates;
//   - re-advertisement after recovery pays the connect-retry and
//     handshake latency and is batched by the MRAI;
//   - repeated flaps accrue route-flap-damping penalty, and a suppressed
//     route stays unusable long after the link is physically healthy —
//     emergent unreachability no closed form predicts.
//
// Each link is replayed independently on a discrete-event clock (see
// clock.go) through the RFC 4271 FSM (fsm.go); the result is a History:
// per-link outage episodes, control-plane-down spans, and damping
// suppression spans, queryable by experiments and composable as a
// netsim.FaultOverlay (a link is unusable when it is physically down OR
// its route is withdrawn/suppressed).
//
// # Determinism contract
//
// Replay is a pure function of (timeline, links, Config, seed, horizon).
// Per-link randomness (keepalive and BFD phases) derives from
// xrand.Derive(seed, key, link) — keyed by the link, never by scheduling
// — and the event loop breaks time ties by insertion order, so a History
// and everything computed from it is byte-identical at any worker count,
// satisfying the internal/par contract.
//
// # Calibration to the reference model
//
// The defaults are chosen so that, for a detected fault, the emergent
// blackhole matches the closed form in expectation: Hold=36s with
// Keepalive=12s gives a detection latency uniform on [Hold−KA, Hold] =
// [24s, 36s], mean 30s = bgp.ConvergenceBaseMin; MRAI=30s per explored
// AS hop = bgp.ConvergencePerHopMin. Any single event may differ from
// the closed form by up to KA/2 = ±6s (0.1 min) of phase — the
// documented tolerance of the differential test in internal/core.
package session

import (
	"fmt"
	"math"
)

// Default timer and damping constants. Hold/keepalive are the classic
// 3:1 BGP defaults scaled so mean detection matches the reference
// model's base term (see the package comment); damping thresholds are
// the RFC 2439 / cisco defaults.
const (
	DefaultHoldSec         = 36.0
	DefaultKeepaliveSec    = 12.0
	DefaultConnectRetrySec = 30.0
	DefaultMsgDelaySec     = 0.5
	DefaultMRAISec         = 30.0

	DefaultDampHalfLifeSec    = 900.0  // 15 min
	DefaultDampPenalty        = 1000.0 // per flap
	DefaultDampSuppress       = 2000.0 // suppress above
	DefaultDampReuse          = 750.0  // reuse below
	DefaultDampMaxSuppressSec = 3600.0 // 60 min cap

	DefaultBFDIntervalMs = 300.0
	DefaultBFDMultiplier = 3
)

// Config parameterizes the session layer. The zero value means "all
// defaults" (booleans keep their zero meaning: damping on, BFD off), so
// it embeds in a larger experiment config without ceremony.
type Config struct {
	// HoldSec is the negotiated hold time: the session drops when no
	// keepalive arrives for this long.
	HoldSec float64
	// KeepaliveSec is the peer's keepalive send interval. Defaults to
	// HoldSec/3 when only HoldSec is set, per BGP convention.
	KeepaliveSec float64
	// ConnectRetrySec spaces reconnection attempts while the session is
	// down.
	ConnectRetrySec float64
	// MsgDelaySec is the one-way message-plus-processing delay charged
	// per handshake step (transport open, OPEN, KEEPALIVE).
	MsgDelaySec float64
	// MRAISec is the minimum route advertisement interval: spacing of
	// successive advertisements on a session, and the per-AS-hop cost of
	// path exploration.
	MRAISec float64

	// DisableDamping turns route-flap damping off (penalty still
	// accrues for observability, but never suppresses).
	DisableDamping bool
	// DampHalfLifeSec is the exponential decay half-life of the flap
	// penalty.
	DampHalfLifeSec float64
	// DampPenalty is the penalty added per flap (session down event).
	DampPenalty float64
	// DampSuppress: a route whose penalty reaches this is suppressed.
	DampSuppress float64
	// DampReuse: a suppressed route is announced again once its penalty
	// decays below this.
	DampReuse float64
	// DampMaxSuppressSec caps how long one flap can suppress, which in
	// turn caps the accrued penalty at Reuse·2^(MaxSuppress/HalfLife).
	DampMaxSuppressSec float64

	// BFD enables the fast-detection liveness session in parallel with
	// the hold timer; whichever detects first wins.
	BFD bool
	// BFDIntervalMs is the BFD control-packet interval.
	BFDIntervalMs float64
	// BFDMultiplier is the detection multiplier: liveness is lost after
	// BFDMultiplier missed intervals.
	BFDMultiplier int
}

// DefaultConfig returns the fully-populated default configuration.
func DefaultConfig() Config { return Config{}.ApplyDefaults() }

// ApplyDefaults fills zero fields with defaults and returns the
// completed config. KeepaliveSec defaults to HoldSec/3 so tuning only
// the hold timer keeps the conventional 3:1 ratio.
func (c Config) ApplyDefaults() Config {
	if c.HoldSec == 0 {
		c.HoldSec = DefaultHoldSec
	}
	if c.KeepaliveSec == 0 {
		c.KeepaliveSec = c.HoldSec / 3
	}
	if c.ConnectRetrySec == 0 {
		c.ConnectRetrySec = DefaultConnectRetrySec
	}
	if c.MsgDelaySec == 0 {
		c.MsgDelaySec = DefaultMsgDelaySec
	}
	if c.MRAISec == 0 {
		c.MRAISec = DefaultMRAISec
	}
	if c.DampHalfLifeSec == 0 {
		c.DampHalfLifeSec = DefaultDampHalfLifeSec
	}
	if c.DampPenalty == 0 {
		c.DampPenalty = DefaultDampPenalty
	}
	if c.DampSuppress == 0 {
		c.DampSuppress = DefaultDampSuppress
	}
	if c.DampReuse == 0 {
		c.DampReuse = DefaultDampReuse
	}
	if c.DampMaxSuppressSec == 0 {
		c.DampMaxSuppressSec = DefaultDampMaxSuppressSec
	}
	if c.BFDIntervalMs == 0 {
		c.BFDIntervalMs = DefaultBFDIntervalMs
	}
	if c.BFDMultiplier == 0 {
		c.BFDMultiplier = DefaultBFDMultiplier
	}
	return c
}

// Validate rejects configurations the replay cannot make sense of. It
// validates the post-default config, so a partially-specified Config is
// judged as it will actually run.
func (c Config) Validate() error {
	c = c.ApplyDefaults()
	pos := func(name string, v float64) error {
		if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 {
			return fmt.Errorf("session: %s = %v must be finite and positive", name, v)
		}
		return nil
	}
	for name, v := range map[string]float64{
		"HoldSec": c.HoldSec, "KeepaliveSec": c.KeepaliveSec,
		"ConnectRetrySec": c.ConnectRetrySec, "MsgDelaySec": c.MsgDelaySec,
		"MRAISec": c.MRAISec, "DampHalfLifeSec": c.DampHalfLifeSec,
		"DampPenalty": c.DampPenalty, "DampSuppress": c.DampSuppress,
		"DampReuse": c.DampReuse, "DampMaxSuppressSec": c.DampMaxSuppressSec,
		"BFDIntervalMs": c.BFDIntervalMs,
	} {
		if err := pos(name, v); err != nil {
			return err
		}
	}
	if c.KeepaliveSec >= c.HoldSec {
		return fmt.Errorf("session: KeepaliveSec %v must be below HoldSec %v (the hold timer would expire between keepalives)", c.KeepaliveSec, c.HoldSec)
	}
	if c.DampReuse >= c.DampSuppress {
		return fmt.Errorf("session: DampReuse %v must be below DampSuppress %v", c.DampReuse, c.DampSuppress)
	}
	if c.BFDMultiplier < 1 {
		return fmt.Errorf("session: BFDMultiplier %d must be at least 1", c.BFDMultiplier)
	}
	const hourSec = 3600.0
	if c.HoldSec > hourSec || c.ConnectRetrySec > hourSec || c.MRAISec > hourSec {
		return fmt.Errorf("session: hold/retry/MRAI timers beyond an hour are a config typo (hold=%v retry=%v mrai=%v)", c.HoldSec, c.ConnectRetrySec, c.MRAISec)
	}
	return nil
}

// MeanDetectSec is the expected detection latency for a long-lived fault
// under this config: the BFD detection time when BFD is on (detection
// multiplier × interval, phase-independent to first order), otherwise
// the hold-timer expectation Hold − KA/2 over a uniform keepalive phase.
func (c Config) MeanDetectSec() float64 {
	c = c.ApplyDefaults()
	if c.BFD {
		return float64(c.BFDMultiplier) * c.BFDIntervalMs / 1e3
	}
	return c.HoldSec - c.KeepaliveSec/2
}

// MaxDetectSec is the worst-case detection latency: a full hold time (a
// keepalive landed just before the fault), or the BFD detection time.
func (c Config) MaxDetectSec() float64 {
	c = c.ApplyDefaults()
	if c.BFD {
		return float64(c.BFDMultiplier)*c.BFDIntervalMs/1e3 + c.BFDIntervalMs/1e3
	}
	return c.HoldSec
}

// ExplorationMinutes is the emergent path-exploration cost for a route
// whose replacement spans `hops` AS hops: one MRAI of advertisement
// batching per hop. With the default MRAI this equals the reference
// model's per-hop term.
func (c Config) ExplorationMinutes(hops int) float64 {
	c = c.ApplyDefaults()
	if hops < 0 {
		hops = 0
	}
	return c.MRAISec / 60 * float64(hops)
}

// HandshakeSec is the time from a successful connect attempt to
// Established: transport open, OPEN exchange, KEEPALIVE confirmation.
func (c Config) HandshakeSec() float64 {
	c = c.ApplyDefaults()
	return 3 * c.MsgDelaySec
}

// penaltyCeiling is the maximum accrued damping penalty: the value that
// decays to DampReuse in exactly DampMaxSuppressSec (RFC 2439 §4.2).
func (c Config) penaltyCeiling() float64 {
	return c.DampReuse * math.Exp2(c.DampMaxSuppressSec/c.DampHalfLifeSec)
}
