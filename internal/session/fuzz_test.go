package session

import "testing"

// FuzzFSMTransitions drives both FSMs with arbitrary event sequences and
// pins the structural invariants: every reachable state is defined, Step
// is total (never panics, even on out-of-range inputs), and Established
// is entered exclusively through the full handshake — an OpenConfirm
// session receiving the confirming KEEPALIVE.
func FuzzFSMTransitions(f *testing.F) {
	f.Add([]byte{0, 1, 3, 4})          // the clean handshake
	f.Add([]byte{0, 1, 3, 4, 6, 0})    // handshake, hold expiry, restart
	f.Add([]byte{4, 4, 3, 2, 1, 0})    // messages into states that cannot take them
	f.Add([]byte{0, 0, 0, 1, 1, 3, 3}) // duplicate events
	f.Add([]byte{250, 9, 10, 255})     // out-of-range events
	f.Fuzz(func(t *testing.T, data []byte) {
		s := Idle
		for _, b := range data {
			// Bias toward defined events but keep out-of-range inputs in
			// the mix: totality is part of the contract.
			e := Ev(b)
			if b < 128 {
				e = Ev(b % uint8(numEvents))
			}
			prev := s
			next, ok := Step(s, e)
			if !next.Valid() {
				t.Fatalf("Step(%v, %v) reached invalid state %d", prev, e, uint8(next))
			}
			if !ok && next != Idle {
				t.Fatalf("out-of-range input (%v, %v) must reset to Idle, got %v", prev, e, next)
			}
			if next == Established && prev != Established {
				if prev != OpenConfirm || e != EvKeepalive {
					t.Fatalf("Established entered from %v on %v: only OpenConfirm+Keepalive may establish", prev, e)
				}
			}
			s = next
		}

		bs := BFDDown
		for _, b := range data {
			e := BFDEv(b)
			if b < 128 {
				e = BFDEv(b % uint8(numBFDEvents))
			}
			prev := bs
			next, ok := BFDStep(bs, e)
			if next >= numBFDStates {
				t.Fatalf("BFDStep(%v, %v) reached invalid state %d", prev, e, uint8(next))
			}
			if !ok && next != BFDDown {
				t.Fatalf("out-of-range BFD input must reset to Down, got %v", next)
			}
			if next == BFDUp && prev == BFDDown && e != BFDRecvInit {
				t.Fatalf("BFD Up entered straight from Down on %v", e)
			}
			bs = next
		}
	})
}
