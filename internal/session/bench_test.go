package session

import (
	"testing"

	"beatbgp/internal/faults"
	"beatbgp/internal/xrand"
)

// benchTimeline builds a dense synthetic fault schedule: `events`
// outages spread across the test topology's links over a 10-day
// horizon, with durations from a minute to a few hours.
func benchTimeline(b *testing.B, events int) (*faults.Timeline, float64) {
	b.Helper()
	topo, links := testTopo(b)
	ids := []int{links["trab"], links["eye"], links["stub"]}
	rng := xrand.New(99)
	const horizon = 10 * 24 * 60.0
	var evs []faults.Event
	for i := 0; i < events; i++ {
		evs = append(evs, faults.Event{
			Kind:     faults.LinkDown,
			Target:   ids[rng.Intn(len(ids))],
			Start:    rng.Uniform(0, horizon-300),
			Duration: rng.Uniform(1, 240),
		})
	}
	tl, err := faults.New(topo, evs)
	if err != nil {
		b.Fatal(err)
	}
	return tl, horizon
}

func BenchmarkSessionReplay(b *testing.B) {
	tl, horizon := benchTimeline(b, 60)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Replay(tl, nil, Config{}, 42, horizon); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSessionReplayBFD(b *testing.B) {
	tl, horizon := benchTimeline(b, 60)
	cfg := Config{BFD: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Replay(tl, nil, cfg, 42, horizon); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionFlapStorm stresses the damping/suppression path: a
// burst of short flaps on one link.
func BenchmarkSessionFlapStorm(b *testing.B) {
	topo, links := testTopo(b)
	link := links["eye"]
	var evs []faults.Event
	for i := 0; i < 14; i++ {
		evs = append(evs, faults.Event{
			Kind: faults.LinkDown, Target: link,
			Start: 10 + 3*float64(i), Duration: 1.5,
		})
	}
	tl, err := faults.New(topo, evs)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h, err := Replay(tl, nil, Config{}, 42, 24*60)
		if err != nil {
			b.Fatal(err)
		}
		if h.Flaps(link) == 0 {
			b.Fatal("storm produced no flaps")
		}
	}
}
