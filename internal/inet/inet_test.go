package inet

import (
	"testing"
	"testing/quick"
)

func TestParseFormatRoundTrip(t *testing.T) {
	cases := []string{"0.0.0.0", "10.1.2.3", "255.255.255.255", "192.168.0.1"}
	for _, c := range cases {
		a, err := ParseAddr(c)
		if err != nil {
			t.Fatalf("%s: %v", c, err)
		}
		if FormatAddr(a) != c {
			t.Fatalf("round trip %s -> %s", c, FormatAddr(a))
		}
	}
	for _, bad := range []string{"", "1.2.3", "1.2.3.4.5", "256.0.0.0", "01.2.3.4", "a.b.c.d", "-1.0.0.0"} {
		if _, err := ParseAddr(bad); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
}

func TestParsePrefix(t *testing.T) {
	p, err := ParsePrefix("10.0.0.0/8")
	if err != nil {
		t.Fatal(err)
	}
	if p.String() != "10.0.0.0/8" || p.NumAddrs() != 1<<24 {
		t.Fatalf("bad parse: %v", p)
	}
	for _, bad := range []string{"10.0.0.0", "10.0.0.1/8", "10.0.0.0/33", "10.0.0.0/-1", "x/8"} {
		if _, err := ParsePrefix(bad); err == nil {
			t.Fatalf("accepted %q", bad)
		}
	}
	if MustParsePrefix("0.0.0.0/0").Bits != 0 {
		t.Fatal("default route parse")
	}
}

func TestContains(t *testing.T) {
	p := MustParsePrefix("10.1.0.0/16")
	in, _ := ParseAddr("10.1.200.3")
	out, _ := ParseAddr("10.2.0.0")
	if !p.Contains(in) || p.Contains(out) {
		t.Fatal("Contains wrong")
	}
	if !p.ContainsPrefix(MustParsePrefix("10.1.2.0/24")) {
		t.Fatal("nested prefix not contained")
	}
	if p.ContainsPrefix(MustParsePrefix("10.0.0.0/8")) {
		t.Fatal("supernet reported as contained")
	}
	if !p.Overlaps(MustParsePrefix("10.0.0.0/8")) {
		t.Fatal("overlap with supernet missed")
	}
	if p.Overlaps(MustParsePrefix("11.0.0.0/8")) {
		t.Fatal("false overlap")
	}
}

func TestNth(t *testing.T) {
	p := MustParsePrefix("10.1.2.0/24")
	if FormatAddr(p.Nth(0)) != "10.1.2.0" || FormatAddr(p.Nth(255)) != "10.1.2.255" {
		t.Fatal("Nth wrong")
	}
	// Out-of-range indices clamp to the last address in the prefix.
	if FormatAddr(p.Nth(256)) != "10.1.2.255" {
		t.Fatalf("out-of-range Nth = %s, want clamp to 10.1.2.255", FormatAddr(p.Nth(256)))
	}
}

func TestAllocator(t *testing.T) {
	a := NewAllocator(MustParsePrefix("10.0.0.0/8"))
	p1, err := a.Alloc(20)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := a.Alloc(20)
	if err != nil {
		t.Fatal(err)
	}
	if p1.String() != "10.0.0.0/20" || p2.String() != "10.0.16.0/20" {
		t.Fatalf("sequential allocation wrong: %v %v", p1, p2)
	}
	if p1.Overlaps(p2) {
		t.Fatal("allocated blocks overlap")
	}
	// Mixed sizes stay aligned and disjoint.
	p3, err := a.Alloc(24)
	if err != nil {
		t.Fatal(err)
	}
	p4, err := a.Alloc(16)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]Prefix{{p1, p3}, {p2, p3}, {p3, p4}, {p1, p4}, {p2, p4}} {
		if pair[0].Overlaps(pair[1]) {
			t.Fatalf("%v overlaps %v", pair[0], pair[1])
		}
	}
	if p4.Addr&^p4.Mask() != 0 {
		t.Fatal("allocation not aligned")
	}
	// Exhaustion.
	small := NewAllocator(MustParsePrefix("192.168.0.0/24"))
	if _, err := small.Alloc(25); err != nil {
		t.Fatal(err)
	}
	if _, err := small.Alloc(25); err != nil {
		t.Fatal(err)
	}
	if _, err := small.Alloc(25); err == nil {
		t.Fatal("exhausted allocator kept allocating")
	}
	if _, err := small.Alloc(8); err == nil {
		t.Fatal("carving a supernet accepted")
	}
}

func TestTableBasics(t *testing.T) {
	var tb Table[string]
	tb.Insert(MustParsePrefix("0.0.0.0/0"), "default")
	tb.Insert(MustParsePrefix("10.0.0.0/8"), "ten")
	tb.Insert(MustParsePrefix("10.1.0.0/16"), "ten-one")
	if tb.Len() != 3 {
		t.Fatalf("len = %d", tb.Len())
	}
	lookup := func(s string) string {
		a, _ := ParseAddr(s)
		v, ok := tb.Lookup(a)
		if !ok {
			t.Fatalf("no route for %s", s)
		}
		return v
	}
	if lookup("10.1.2.3") != "ten-one" {
		t.Fatal("LPM should pick the /16")
	}
	if lookup("10.9.0.1") != "ten" {
		t.Fatal("LPM should pick the /8")
	}
	if lookup("8.8.8.8") != "default" {
		t.Fatal("LPM should fall to default")
	}
	if v, ok := tb.LookupPrefix(MustParsePrefix("10.0.0.0/8")); !ok || v != "ten" {
		t.Fatal("exact lookup failed")
	}
	if _, ok := tb.LookupPrefix(MustParsePrefix("10.0.0.0/9")); ok {
		t.Fatal("phantom exact match")
	}
	// Replace does not grow.
	tb.Insert(MustParsePrefix("10.0.0.0/8"), "TEN")
	if tb.Len() != 3 {
		t.Fatal("replace changed size")
	}
	if lookup("10.9.0.1") != "TEN" {
		t.Fatal("replace did not take")
	}
}

func TestTableDelete(t *testing.T) {
	var tb Table[int]
	p8 := MustParsePrefix("10.0.0.0/8")
	p16 := MustParsePrefix("10.1.0.0/16")
	tb.Insert(p8, 8)
	tb.Insert(p16, 16)
	if !tb.Delete(p16) || tb.Len() != 1 {
		t.Fatal("delete failed")
	}
	if tb.Delete(p16) {
		t.Fatal("double delete succeeded")
	}
	a, _ := ParseAddr("10.1.2.3")
	if v, _ := tb.Lookup(a); v != 8 {
		t.Fatal("lookup after delete should fall to /8")
	}
	if !tb.Delete(p8) || tb.Len() != 0 {
		t.Fatal("final delete failed")
	}
	if _, ok := tb.Lookup(a); ok {
		t.Fatal("empty table resolved an address")
	}
	var empty Table[int]
	if empty.Delete(p8) {
		t.Fatal("delete on empty table succeeded")
	}
}

func TestTableWalkOrdered(t *testing.T) {
	var tb Table[int]
	for i, s := range []string{"10.2.0.0/16", "10.0.0.0/8", "192.168.1.0/24", "0.0.0.0/0"} {
		tb.Insert(MustParsePrefix(s), i)
	}
	var got []Prefix
	tb.Walk(func(p Prefix, _ int) bool {
		got = append(got, p)
		return true
	})
	if len(got) != 4 {
		t.Fatalf("walk visited %d", len(got))
	}
	for i := 1; i < len(got); i++ {
		a, b := got[i-1], got[i]
		if a.Addr > b.Addr || (a.Addr == b.Addr && a.Bits > b.Bits) {
			t.Fatalf("walk out of order: %v before %v", a, b)
		}
	}
	// Early stop.
	count := 0
	tb.Walk(func(Prefix, int) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("walk did not stop early: %d", count)
	}
}

// TestTableAgainstBruteForce is the property test: LPM over a random rule
// set must agree with a linear scan.
func TestTableAgainstBruteForce(t *testing.T) {
	f := func(seeds []uint32, probes []uint32) bool {
		var tb Table[int]
		type rule struct {
			p Prefix
			v int
		}
		var rules []rule
		for i, s := range seeds {
			p := Prefix{Bits: int(s % 33)}
			p.Addr = s & p.Mask()
			tb.Insert(p, i)
			// Later inserts replace earlier identical prefixes, as in the
			// table; mirror that in the rule list.
			replaced := false
			for j := range rules {
				if rules[j].p == p {
					rules[j].v = i
					replaced = true
					break
				}
			}
			if !replaced {
				rules = append(rules, rule{p, i})
			}
		}
		for _, a := range probes {
			bestBits, bestV, found := -1, 0, false
			for _, r := range rules {
				if r.p.Contains(a) && r.p.Bits > bestBits {
					bestBits, bestV, found = r.p.Bits, r.v, true
				}
			}
			v, ok := tb.Lookup(a)
			if ok != found || (ok && v != bestV) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTableLookup(b *testing.B) {
	var tb Table[int]
	alloc := NewAllocator(MustParsePrefix("10.0.0.0/8"))
	for i := 0; i < 4096; i++ {
		p, err := alloc.Alloc(20)
		if err != nil {
			b.Fatal(err)
		}
		tb.Insert(p, i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := tb.Lookup(uint32(0x0A000000 + i*977)); !ok && i%4096 < 4096 {
			_ = ok
		}
	}
}
