// Package inet provides the IPv4 addressing layer: CIDR prefixes, a
// longest-prefix-match table (binary radix trie), and a deterministic
// block allocator. The paper's datasets are keyed by client prefixes and
// /24s; this package gives the simulator's prefixes real address blocks
// so tools can speak in the same terms (and so lookups behave like a
// FIB, not a map).
package inet

import (
	"fmt"
	"strconv"
	"strings"
)

// Prefix is an IPv4 CIDR block.
type Prefix struct {
	Addr uint32 // network address, host bits zero
	Bits int    // prefix length, 0..32
}

// Mask returns the prefix's netmask as a uint32.
func (p Prefix) Mask() uint32 {
	if p.Bits <= 0 {
		return 0
	}
	return ^uint32(0) << (32 - p.Bits)
}

// Contains reports whether the address falls inside the prefix.
func (p Prefix) Contains(addr uint32) bool {
	return addr&p.Mask() == p.Addr
}

// ContainsPrefix reports whether q is fully inside p.
func (p Prefix) ContainsPrefix(q Prefix) bool {
	return q.Bits >= p.Bits && p.Contains(q.Addr)
}

// Overlaps reports whether the two prefixes share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	return p.ContainsPrefix(q) || q.ContainsPrefix(p)
}

// NumAddrs returns the number of addresses in the prefix.
func (p Prefix) NumAddrs() uint64 {
	return 1 << (32 - p.Bits)
}

// Nth returns the nth address inside the prefix (0 = network address).
// An out-of-range n is clamped to the last address — callers size by
// NumAddrs, and clamping keeps a miscounted caller inside the prefix
// instead of crashing or escaping it.
func (p Prefix) Nth(n uint64) uint32 {
	if n >= p.NumAddrs() {
		n = p.NumAddrs() - 1
	}
	return p.Addr + uint32(n)
}

// String formats the prefix in CIDR notation.
func (p Prefix) String() string {
	return fmt.Sprintf("%s/%d", FormatAddr(p.Addr), p.Bits)
}

// FormatAddr renders a uint32 as dotted-quad.
func FormatAddr(a uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// ParseAddr parses a dotted-quad IPv4 address.
func ParseAddr(s string) (uint32, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("inet: bad address %q", s)
	}
	var a uint32
	for _, part := range parts {
		v, err := strconv.Atoi(part)
		if err != nil || v < 0 || v > 255 || (len(part) > 1 && part[0] == '0') {
			return 0, fmt.Errorf("inet: bad address %q", s)
		}
		a = a<<8 | uint32(v)
	}
	return a, nil
}

// ParsePrefix parses CIDR notation. The address must be the canonical
// network address (host bits zero).
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("inet: missing prefix length in %q", s)
	}
	addr, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("inet: bad prefix length in %q", s)
	}
	p := Prefix{Addr: addr, Bits: bits}
	if addr&^p.Mask() != 0 {
		return Prefix{}, fmt.Errorf("inet: %q has host bits set", s)
	}
	return p, nil
}

// MustParsePrefix is ParsePrefix for constants; it panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Allocator hands out consecutive equal-sized blocks from a root prefix.
type Allocator struct {
	root Prefix
	next uint64
}

// NewAllocator returns an allocator carving the root prefix.
func NewAllocator(root Prefix) *Allocator {
	return &Allocator{root: root}
}

// Clone returns an independent allocator with the same root and cursor:
// subsequent Alloc calls on either side never affect the other.
func (a *Allocator) Clone() *Allocator {
	cp := *a
	return &cp
}

// Alloc returns the next free block of the given length, or an error when
// the root is exhausted. Blocks are never reused.
func (a *Allocator) Alloc(bits int) (Prefix, error) {
	if bits < a.root.Bits || bits > 32 {
		return Prefix{}, fmt.Errorf("inet: cannot carve /%d from %v", bits, a.root)
	}
	size := uint64(1) << (32 - bits)
	// Align the cursor to the block size.
	if rem := a.next % size; rem != 0 {
		a.next += size - rem
	}
	if a.next+size > a.root.NumAddrs() {
		return Prefix{}, fmt.Errorf("inet: %v exhausted", a.root)
	}
	p := Prefix{Addr: a.root.Addr + uint32(a.next), Bits: bits}
	a.next += size
	return p, nil
}
