package inet

import "testing"

func TestTableClone(t *testing.T) {
	var orig Table[int]
	alloc := NewAllocator(MustParsePrefix("10.0.0.0/8"))
	var ps []Prefix
	for i := 0; i < 64; i++ {
		p, err := alloc.Alloc(20)
		if err != nil {
			t.Fatal(err)
		}
		orig.Insert(p, i)
		ps = append(ps, p)
	}
	cp := orig.Clone()
	if cp.Len() != orig.Len() {
		t.Fatalf("clone size %d, want %d", cp.Len(), orig.Len())
	}
	for i, p := range ps {
		if v, ok := cp.LookupPrefix(p); !ok || v != i {
			t.Fatalf("clone lost %v: got %d,%v", p, v, ok)
		}
	}
	// Inserts and deletes on either side must not leak to the other.
	extra, err := alloc.Alloc(20)
	if err != nil {
		t.Fatal(err)
	}
	cp.Insert(extra, 999)
	if _, ok := orig.LookupPrefix(extra); ok {
		t.Fatal("insert on clone visible in original")
	}
	orig.Delete(ps[0])
	if _, ok := cp.LookupPrefix(ps[0]); !ok {
		t.Fatal("delete on original visible in clone")
	}
}

func TestAllocatorClone(t *testing.T) {
	a := NewAllocator(MustParsePrefix("10.0.0.0/8"))
	if _, err := a.Alloc(20); err != nil {
		t.Fatal(err)
	}
	b := a.Clone()
	pa, err := a.Alloc(20)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.Alloc(20)
	if err != nil {
		t.Fatal(err)
	}
	if pa != pb {
		t.Fatalf("clone diverged immediately: %v vs %v", pa, pb)
	}
	// Advancing one side must not move the other's cursor: after the
	// original allocates two more blocks, the clone's next block is still
	// the one directly after its own last.
	if _, err := a.Alloc(20); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(20); err != nil {
		t.Fatal(err)
	}
	pb2, err := b.Alloc(20)
	if err != nil {
		t.Fatal(err)
	}
	if want := (Prefix{Addr: pb.Addr + 1<<12, Bits: 20}); pb2 != want {
		t.Fatalf("clone cursor moved with original: got %v, want %v", pb2, want)
	}
}
