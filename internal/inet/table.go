package inet

// Table is a longest-prefix-match table over IPv4 prefixes — a FIB. It is
// a binary radix (path-uncompressed) trie: simple, allocation-light, and
// fast enough for the simulator's table sizes. The zero value is an empty
// table ready for use.
type Table[V any] struct {
	root *node[V]
	size int
}

type node[V any] struct {
	child [2]*node[V]
	val   V
	set   bool
}

// Len returns the number of installed prefixes.
func (t *Table[V]) Len() int { return t.size }

func bit(addr uint32, i int) int {
	return int(addr>>(31-i)) & 1
}

// Insert installs (or replaces) the value for a prefix.
func (t *Table[V]) Insert(p Prefix, v V) {
	if t.root == nil {
		t.root = &node[V]{}
	}
	n := t.root
	for i := 0; i < p.Bits; i++ {
		b := bit(p.Addr, i)
		if n.child[b] == nil {
			n.child[b] = &node[V]{}
		}
		n = n.child[b]
	}
	if !n.set {
		t.size++
	}
	n.val, n.set = v, true
}

// Clone returns a deep copy of the table: inserts on either side never
// affect the other. Values are copied by assignment.
func (t *Table[V]) Clone() Table[V] {
	return Table[V]{root: cloneNode(t.root), size: t.size}
}

func cloneNode[V any](n *node[V]) *node[V] {
	if n == nil {
		return nil
	}
	return &node[V]{
		child: [2]*node[V]{cloneNode(n.child[0]), cloneNode(n.child[1])},
		val:   n.val,
		set:   n.set,
	}
}

// Lookup returns the value of the longest installed prefix containing the
// address.
func (t *Table[V]) Lookup(addr uint32) (V, bool) {
	var best V
	found := false
	n := t.root
	for i := 0; n != nil; i++ {
		if n.set {
			best, found = n.val, true
		}
		if i == 32 {
			break
		}
		n = n.child[bit(addr, i)]
	}
	return best, found
}

// LookupPrefix returns the value installed for exactly this prefix.
func (t *Table[V]) LookupPrefix(p Prefix) (V, bool) {
	n := t.root
	for i := 0; i < p.Bits && n != nil; i++ {
		n = n.child[bit(p.Addr, i)]
	}
	if n == nil || !n.set {
		var zero V
		return zero, false
	}
	return n.val, true
}

// Delete removes a prefix; it reports whether the prefix was installed.
// Emptied trie branches are pruned.
func (t *Table[V]) Delete(p Prefix) bool {
	var path [33]*node[V]
	n := t.root
	if n == nil {
		return false
	}
	path[0] = n
	for i := 0; i < p.Bits; i++ {
		n = n.child[bit(p.Addr, i)]
		if n == nil {
			return false
		}
		path[i+1] = n
	}
	if !n.set {
		return false
	}
	var zero V
	n.val, n.set = zero, false
	t.size--
	// Prune childless, valueless nodes bottom-up.
	for i := p.Bits; i > 0; i-- {
		cur := path[i]
		if cur.set || cur.child[0] != nil || cur.child[1] != nil {
			break
		}
		path[i-1].child[bit(p.Addr, i-1)] = nil
	}
	return true
}

// Walk visits every installed prefix in address order (shorter prefixes
// before longer ones at the same address). Returning false stops the walk.
func (t *Table[V]) Walk(fn func(p Prefix, v V) bool) {
	var walk func(n *node[V], addr uint32, depth int) bool
	walk = func(n *node[V], addr uint32, depth int) bool {
		if n == nil {
			return true
		}
		if n.set {
			if !fn(Prefix{Addr: addr, Bits: depth}, n.val) {
				return false
			}
		}
		if depth == 32 {
			return true
		}
		if !walk(n.child[0], addr, depth+1) {
			return false
		}
		return walk(n.child[1], addr|(1<<(31-depth)), depth+1)
	}
	walk(t.root, 0, 0)
}
