// Package geo provides the geographic substrate for the simulator:
// coordinates, great-circle distances, speed-of-light-in-fiber propagation
// delays, and a built-in catalog of world cities with country, region, and
// population weights.
//
// All latencies in the repository are float64 milliseconds; all distances
// are float64 kilometers.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusKm is the mean Earth radius used for great-circle math.
const EarthRadiusKm = 6371.0

// FiberRTTMsPerKm is the round-trip propagation delay per kilometer of
// fiber. Light in fiber covers roughly 200 km per millisecond one way, so
// a kilometer of path costs about 0.01 ms of RTT.
const FiberRTTMsPerKm = 2.0 / 200.0

// Point is a position on the Earth's surface.
type Point struct {
	Lat float64 // degrees, positive north
	Lon float64 // degrees, positive east
}

func (p Point) String() string { return fmt.Sprintf("(%.2f,%.2f)", p.Lat, p.Lon) }

// DistanceKm returns the great-circle distance between two points using the
// haversine formula.
func DistanceKm(a, b Point) float64 {
	const rad = math.Pi / 180
	lat1, lat2 := a.Lat*rad, b.Lat*rad
	dLat := (b.Lat - a.Lat) * rad
	dLon := (b.Lon - a.Lon) * rad
	s := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	return 2 * EarthRadiusKm * math.Asin(math.Min(1, math.Sqrt(s)))
}

// MinRTTMs returns the physical lower bound on round-trip time between two
// points: great-circle distance at the speed of light in fiber, with no
// routing stretch. The paper's "500 km ≈ 5 ms RTT" rule of thumb matches
// this constant.
func MinRTTMs(a, b Point) float64 {
	return DistanceKm(a, b) * FiberRTTMsPerKm
}

// Region is a coarse geographic region used for per-region aggregation
// (Figure 3) and for topology generation.
type Region int

// Regions, ordered roughly west to east.
const (
	NorthAmerica Region = iota
	SouthAmerica
	Europe
	MiddleEast
	Africa
	Asia
	Oceania
	numRegions
)

// Regions lists every region, for iteration.
func Regions() []Region {
	r := make([]Region, numRegions)
	for i := range r {
		r[i] = Region(i)
	}
	return r
}

func (r Region) String() string {
	switch r {
	case NorthAmerica:
		return "NorthAmerica"
	case SouthAmerica:
		return "SouthAmerica"
	case Europe:
		return "Europe"
	case MiddleEast:
		return "MiddleEast"
	case Africa:
		return "Africa"
	case Asia:
		return "Asia"
	case Oceania:
		return "Oceania"
	default:
		return fmt.Sprintf("Region(%d)", int(r))
	}
}

// City is one entry in the world catalog.
type City struct {
	ID      int     // index into the catalog
	Name    string  // unique city name
	Country string  // ISO-like country code
	Region  Region  // coarse region
	Loc     Point   // coordinates
	Pop     float64 // relative Internet-user population weight
}

// Catalog is an immutable set of cities with lookup helpers.
type Catalog struct {
	cities  []City
	byName  map[string]int
	regions map[Region][]int
}

// NewCatalog builds a catalog from the supplied cities, assigning IDs in
// order. Duplicate names are rejected.
func NewCatalog(cities []City) (*Catalog, error) {
	c := &Catalog{
		cities:  make([]City, len(cities)),
		byName:  make(map[string]int, len(cities)),
		regions: make(map[Region][]int),
	}
	for i, city := range cities {
		if _, dup := c.byName[city.Name]; dup {
			return nil, fmt.Errorf("geo: duplicate city %q", city.Name)
		}
		if city.Pop <= 0 {
			return nil, fmt.Errorf("geo: city %q has non-positive population", city.Name)
		}
		city.ID = i
		c.cities[i] = city
		c.byName[city.Name] = i
		c.regions[city.Region] = append(c.regions[city.Region], i)
	}
	return c, nil
}

// World returns the built-in world catalog. The returned catalog is freshly
// built and safe for the caller to hold; the underlying data is constant.
func World() *Catalog {
	c, err := NewCatalog(worldCities)
	if err != nil {
		panic("geo: invalid built-in catalog: " + err.Error())
	}
	return c
}

// Len returns the number of cities.
func (c *Catalog) Len() int { return len(c.cities) }

// City returns the city with the given ID. It panics on an invalid ID,
// which always indicates a programming error.
func (c *Catalog) City(id int) City { return c.cities[id] }

// ByName looks a city up by name.
func (c *Catalog) ByName(name string) (City, bool) {
	id, ok := c.byName[name]
	if !ok {
		return City{}, false
	}
	return c.cities[id], true
}

// InRegion returns the IDs of all cities in the region, in catalog order.
func (c *Catalog) InRegion(r Region) []int {
	ids := c.regions[r]
	out := make([]int, len(ids))
	copy(out, ids)
	return out
}

// All returns a copy of the full city list in ID order.
func (c *Catalog) All() []City {
	out := make([]City, len(c.cities))
	copy(out, c.cities)
	return out
}

// Nearest returns the ID of the catalog city closest to p.
func (c *Catalog) Nearest(p Point) int {
	best, bestD := -1, math.Inf(1)
	for i := range c.cities {
		if d := DistanceKm(p, c.cities[i].Loc); d < bestD {
			best, bestD = i, d
		}
	}
	return best
}

// PopWeights returns the population weight of every city, indexed by ID.
func (c *Catalog) PopWeights() []float64 {
	w := make([]float64, len(c.cities))
	for i := range c.cities {
		w[i] = c.cities[i].Pop
	}
	return w
}
