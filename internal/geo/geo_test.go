package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDistanceKnownPairs(t *testing.T) {
	w := World()
	cases := []struct {
		a, b   string
		km     float64
		tolPct float64
	}{
		{"NewYork", "London", 5570, 3},
		{"London", "Paris", 344, 8},
		{"Tokyo", "SanJose", 8400, 3},
		{"Mumbai", "London", 7190, 3},
		{"Sydney", "LosAngeles", 12050, 3},
		{"SaoPaulo", "Miami", 6570, 3},
	}
	for _, c := range cases {
		a, ok := w.ByName(c.a)
		if !ok {
			t.Fatalf("missing city %s", c.a)
		}
		b, ok := w.ByName(c.b)
		if !ok {
			t.Fatalf("missing city %s", c.b)
		}
		d := DistanceKm(a.Loc, b.Loc)
		if math.Abs(d-c.km)/c.km*100 > c.tolPct {
			t.Errorf("%s-%s: got %.0f km, want ~%.0f km", c.a, c.b, d, c.km)
		}
	}
}

func TestDistanceProperties(t *testing.T) {
	mk := func(lat, lon float64) Point {
		// Map arbitrary floats onto valid coordinates.
		lat = math.Mod(math.Abs(lat), 180) - 90
		lon = math.Mod(math.Abs(lon), 360) - 180
		return Point{lat, lon}
	}
	symmetric := func(a1, o1, a2, o2 float64) bool {
		p, q := mk(a1, o1), mk(a2, o2)
		d1, d2 := DistanceKm(p, q), DistanceKm(q, p)
		return math.Abs(d1-d2) < 1e-6
	}
	if err := quick.Check(symmetric, nil); err != nil {
		t.Error(err)
	}
	bounded := func(a1, o1, a2, o2 float64) bool {
		p, q := mk(a1, o1), mk(a2, o2)
		d := DistanceKm(p, q)
		return d >= 0 && d <= math.Pi*EarthRadiusKm+1e-6
	}
	if err := quick.Check(bounded, nil); err != nil {
		t.Error(err)
	}
	identity := func(a1, o1 float64) bool {
		p := mk(a1, o1)
		return DistanceKm(p, p) < 1e-9
	}
	if err := quick.Check(identity, nil); err != nil {
		t.Error(err)
	}
}

func TestMinRTTRuleOfThumb(t *testing.T) {
	// The paper: 500 km ≈ as little as 5 ms RTT.
	a := Point{0, 0}
	b := Point{0, 4.4966} // ~500 km along the equator
	rtt := MinRTTMs(a, b)
	if math.Abs(rtt-5) > 0.15 {
		t.Fatalf("500 km RTT = %.3f ms, want ~5 ms", rtt)
	}
}

func TestWorldCatalogIntegrity(t *testing.T) {
	w := World()
	if w.Len() < 120 {
		t.Fatalf("catalog too small: %d cities", w.Len())
	}
	for _, c := range w.All() {
		if c.Loc.Lat < -90 || c.Loc.Lat > 90 || c.Loc.Lon < -180 || c.Loc.Lon > 180 {
			t.Errorf("city %s has invalid coordinates %v", c.Name, c.Loc)
		}
		if c.Pop <= 0 {
			t.Errorf("city %s has non-positive population", c.Name)
		}
		if c.Country == "" {
			t.Errorf("city %s has empty country", c.Name)
		}
		got := w.City(c.ID)
		if got.Name != c.Name {
			t.Errorf("City(%d) = %s, want %s", c.ID, got.Name, c.Name)
		}
	}
	// Every region must be populated for the experiments to cover the globe.
	for _, r := range Regions() {
		if len(w.InRegion(r)) == 0 {
			t.Errorf("region %s has no cities", r)
		}
	}
}

func TestCatalogLookups(t *testing.T) {
	w := World()
	c, ok := w.ByName("Singapore")
	if !ok || c.Country != "SG" || c.Region != Asia {
		t.Fatalf("Singapore lookup wrong: %+v ok=%v", c, ok)
	}
	if _, ok := w.ByName("Atlantis"); ok {
		t.Fatal("nonexistent city should not resolve")
	}
	// Nearest to a point in the Bay Area should be SanJose.
	id := w.Nearest(Point{37.77, -122.42})
	if w.City(id).Name != "SanJose" {
		t.Fatalf("nearest to SF = %s, want SanJose", w.City(id).Name)
	}
}

func TestNewCatalogRejectsDuplicates(t *testing.T) {
	_, err := NewCatalog([]City{
		{Name: "X", Country: "AA", Pop: 1},
		{Name: "X", Country: "AA", Pop: 1},
	})
	if err == nil {
		t.Fatal("duplicate names should be rejected")
	}
}

func TestNewCatalogRejectsZeroPop(t *testing.T) {
	_, err := NewCatalog([]City{{Name: "X", Country: "AA", Pop: 0}})
	if err == nil {
		t.Fatal("zero population should be rejected")
	}
}

func TestPopWeights(t *testing.T) {
	w := World()
	weights := w.PopWeights()
	if len(weights) != w.Len() {
		t.Fatalf("weights length %d != %d", len(weights), w.Len())
	}
	for i, wt := range weights {
		if wt != w.City(i).Pop {
			t.Fatalf("weight %d mismatch", i)
		}
	}
}

func TestRegionString(t *testing.T) {
	if Asia.String() != "Asia" || NorthAmerica.String() != "NorthAmerica" {
		t.Fatal("region names wrong")
	}
	if Region(99).String() == "" {
		t.Fatal("unknown region should still print")
	}
}

func TestIndiaPresent(t *testing.T) {
	// Figure 5's case study depends on Indian vantage points.
	w := World()
	n := 0
	for _, c := range w.All() {
		if c.Country == "IN" {
			n++
		}
	}
	if n < 3 {
		t.Fatalf("need at least 3 Indian cities, have %d", n)
	}
}
