package workload

import "testing"

func TestDiurnalVolumeBounds(t *testing.T) {
	for h := -48.0; h < 96; h += 0.25 {
		v := diurnalVolume(h)
		if v < 0 || v > 1 {
			t.Fatalf("diurnalVolume(%v) = %v out of [0,1]", h, v)
		}
	}
}

func TestDiurnalVolumeShape(t *testing.T) {
	if diurnalVolume(21) != 1.0 {
		t.Fatalf("evening peak = %v, want 1", diurnalVolume(21))
	}
	if diurnalVolume(3) >= diurnalVolume(12) {
		t.Fatal("overnight should be quieter than daytime")
	}
	if diurnalVolume(12) >= diurnalVolume(20) {
		t.Fatal("daytime should be quieter than the evening peak")
	}
	// Periodicity via the wrap-around handling.
	if diurnalVolume(21) != diurnalVolume(21+24) || diurnalVolume(3) != diurnalVolume(3-24) {
		t.Fatal("daily curve should repeat every 24h")
	}
}
