package workload

import (
	"testing"

	"beatbgp/internal/bgp"
	"beatbgp/internal/netpath"
	"beatbgp/internal/netsim"
	"beatbgp/internal/provider"
	"beatbgp/internal/topology"
)

type fixture struct {
	topo *topology.Topo
	prov *provider.Provider
	sim  *netsim.Sim
	res  *netpath.Resolver
	gen  *Generator
	ora  *bgp.Oracle
}

func setup(t testing.TB) fixture {
	t.Helper()
	topo, err := topology.Generate(topology.GenConfig{Seed: 8, EyeballsPerRegion: 8})
	if err != nil {
		t.Fatal(err)
	}
	prov, err := provider.Build(topo, provider.Config{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	sim := netsim.New(topo, netsim.Config{Seed: 8})
	res := netpath.NewResolver(topo)
	gen := NewGenerator(sim, res, Config{Seed: 8, Days: 2})
	return fixture{topo, prov, sim, res, gen, bgp.NewOracle(topo)}
}

func (f fixture) traceFor(t testing.TB, p topology.Prefix) (Trace, bool) {
	t.Helper()
	rib, err := f.ora.ToPrefix(p)
	if err != nil {
		t.Fatal(err)
	}
	pop := f.prov.ServingPoP(p.City)
	opts := f.prov.EgressOptions(rib, pop)
	if len(opts) == 0 {
		return Trace{}, false
	}
	tr, err := f.gen.Observe(pop, p, opts)
	if err != nil {
		return Trace{}, false
	}
	return tr, true
}

func TestWindows(t *testing.T) {
	w := Windows(10, 15)
	if len(w) != 960 {
		t.Fatalf("10 days of 15-min windows = %d, want 960", len(w))
	}
	if w[0] != 0 || w[1] != 15 || w[959] != 14385 {
		t.Fatal("window starts wrong")
	}
}

func TestObserveShape(t *testing.T) {
	f := setup(t)
	var tr Trace
	ok := false
	for _, p := range f.topo.Prefixes {
		if tr, ok = f.traceFor(t, p); ok {
			break
		}
	}
	if !ok {
		t.Fatal("no observable prefix")
	}
	if len(tr.Routes) == 0 || len(tr.Routes) > 3 {
		t.Fatalf("route count %d", len(tr.Routes))
	}
	if len(tr.Windows) != 192 { // 2 days of 15-min windows
		t.Fatalf("window count %d, want 192", len(tr.Windows))
	}
	for _, w := range tr.Windows {
		if len(w.MedianMinRTTMs) != len(tr.Routes) {
			t.Fatal("per-window medians misaligned with routes")
		}
		for i, v := range w.MedianMinRTTMs {
			if v < tr.Routes[i].Phys.PropRTTMs() {
				t.Fatalf("median MinRTT %v below propagation %v", v, tr.Routes[i].Phys.PropRTTMs())
			}
		}
		if w.VolumeBytes <= 0 {
			t.Fatal("non-positive volume")
		}
	}
}

func TestObserveDeterministic(t *testing.T) {
	f1 := setup(t)
	f2 := setup(t)
	for _, p := range f1.topo.Prefixes {
		tr1, ok1 := f1.traceFor(t, p)
		tr2, ok2 := f2.traceFor(t, p)
		if ok1 != ok2 {
			t.Fatal("observability differs")
		}
		if !ok1 {
			continue
		}
		for i := range tr1.Windows {
			for j := range tr1.Windows[i].MedianMinRTTMs {
				if tr1.Windows[i].MedianMinRTTMs[j] != tr2.Windows[i].MedianMinRTTMs[j] {
					t.Fatal("trace not deterministic")
				}
			}
		}
		break
	}
}

func TestVolumeFollowsDiurnal(t *testing.T) {
	f := setup(t)
	var tr Trace
	ok := false
	for _, p := range f.topo.Prefixes {
		if tr, ok = f.traceFor(t, p); ok {
			break
		}
	}
	if !ok {
		t.Fatal("no observable prefix")
	}
	lo, hi := tr.Windows[0].VolumeBytes, tr.Windows[0].VolumeBytes
	for _, w := range tr.Windows {
		if w.VolumeBytes < lo {
			lo = w.VolumeBytes
		}
		if w.VolumeBytes > hi {
			hi = w.VolumeBytes
		}
	}
	if hi <= lo {
		t.Fatal("volume flat across the day")
	}
}

func TestObserveNoOptions(t *testing.T) {
	f := setup(t)
	p := f.topo.Prefixes[0]
	pop := f.prov.ServingPoP(p.City)
	if _, err := f.gen.Observe(pop, p, nil); err == nil {
		t.Fatal("empty options accepted")
	}
}

func TestPreferredRouteFirst(t *testing.T) {
	f := setup(t)
	for _, p := range f.topo.Prefixes[:40] {
		rib, err := f.ora.ToPrefix(p)
		if err != nil {
			t.Fatal(err)
		}
		pop := f.prov.ServingPoP(p.City)
		opts := f.prov.EgressOptions(rib, pop)
		if len(opts) == 0 {
			continue
		}
		tr, err := f.gen.Observe(pop, p, opts)
		if err != nil {
			continue
		}
		// Routes[0] must correspond to the first resolvable option, which
		// is BGP's preference order.
		if tr.Routes[0].Option.Class > opts[len(opts)-1].Class {
			t.Fatal("first trace route has worse class than last option")
		}
	}
}

func BenchmarkObserve(b *testing.B) {
	f := setup(b)
	var p topology.Prefix
	var opts []provider.EgressOption
	var pop int
	for _, cand := range f.topo.Prefixes {
		rib, err := f.ora.ToPrefix(cand)
		if err != nil {
			b.Fatal(err)
		}
		pop = f.prov.ServingPoP(cand.City)
		opts = f.prov.EgressOptions(rib, pop)
		if len(opts) > 0 {
			p = cand
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.gen.Observe(pop, p, opts); err != nil {
			b.Fatal(err)
		}
	}
}
