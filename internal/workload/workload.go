// Package workload generates the Edge-Fabric-style measurement trace of
// the paper's §3.1: sampled client HTTP sessions sprayed across a PoP's
// top egress routes, aggregated into per-⟨PoP, prefix, route⟩ median
// MinRTT values in 15-minute windows over a multi-day horizon, weighted
// by traffic volume.
package workload

import (
	"fmt"
	"math"

	"beatbgp/internal/netpath"
	"beatbgp/internal/netsim"
	"beatbgp/internal/provider"
	"beatbgp/internal/topology"
	"beatbgp/internal/xrand"
)

// Config tunes trace generation. Zero value gets defaults matching the
// paper's dataset: 10 days of 15-minute windows, BGP's top-3 routes.
type Config struct {
	Seed       uint64
	Days       int     // default 10
	WindowMin  float64 // default 15
	TopK       int     // routes sprayed per ⟨PoP, prefix⟩ (default 3)
	SessionsPW int     // sampled sessions per route per window (default 9)
}

// Validate rejects nonsensical parameters. Zero values are fine (they
// select defaults).
func (c *Config) Validate() error {
	if c.Days < 0 || c.TopK < 0 || c.SessionsPW < 0 {
		return fmt.Errorf("workload: Days/TopK/SessionsPW must be non-negative")
	}
	if math.IsNaN(c.WindowMin) || math.IsInf(c.WindowMin, 0) || c.WindowMin < 0 {
		return fmt.Errorf("workload: WindowMin = %v must be finite and non-negative", c.WindowMin)
	}
	return nil
}

func (c *Config) setDefaults() {
	if c.Days == 0 {
		c.Days = 10
	}
	if c.WindowMin == 0 {
		c.WindowMin = 15
	}
	if c.TopK == 0 {
		c.TopK = 3
	}
	if c.SessionsPW == 0 {
		c.SessionsPW = 9
	}
}

// Windows returns the start minute of every window in the horizon.
func Windows(days int, windowMin float64) []float64 {
	n := int(float64(days) * 24 * 60 / windowMin)
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i) * windowMin
	}
	return out
}

// RouteObs is one sprayed route's identity and resolved path.
type RouteObs struct {
	Option provider.EgressOption
	Phys   netpath.Route
}

// WindowObs is the aggregated measurement of one window.
type WindowObs struct {
	Start          float64
	MedianMinRTTMs []float64 // aligned with the trace's Routes
	VolumeBytes    float64   // traffic volume served in the window
}

// Trace is the full observation record for one ⟨PoP, prefix⟩ pair.
type Trace struct {
	PoPCity int
	Prefix  topology.Prefix
	Routes  []RouteObs // Routes[0] is BGP's most-preferred
	Windows []WindowObs
}

// Generator produces traces.
type Generator struct {
	cfg Config
	sim *netsim.Sim
	res *netpath.Resolver
}

// NewGenerator returns a generator over the simulator.
func NewGenerator(sim *netsim.Sim, res *netpath.Resolver, cfg Config) *Generator {
	cfg.setDefaults()
	return &Generator{cfg: cfg, sim: sim, res: res}
}

// Config returns the effective configuration.
func (g *Generator) Config() Config { return g.cfg }

// WithSim returns a generator that samples the given simulator but keeps
// the configuration and resolver. Session draws are keyed by ⟨prefix,
// PoP⟩, not by simulator identity, so a view over a Clone of the original
// Sim replays identical traces; parallel replay hands each worker its own
// clone to keep the simulator's lazy memos uncontended.
func (g *Generator) WithSim(sim *netsim.Sim) *Generator {
	v := *g
	v.sim = sim
	return &v
}

// Observe sprays sessions across the prefix's top-K egress options at the
// PoP and returns the per-window medians. Options that cannot be resolved
// to a physical path are skipped; at least one resolvable route is
// required.
func (g *Generator) Observe(popCity int, p topology.Prefix, options []provider.EgressOption) (Trace, error) {
	tr := Trace{PoPCity: popCity, Prefix: p}
	k := g.cfg.TopK
	for _, opt := range options {
		if len(tr.Routes) >= k {
			break
		}
		// Egress is pinned at the serving PoP: Edge Fabric shifts traffic
		// between routes at the PoP, it does not re-home the flow.
		phys, err := g.res.ResolvePinned(opt.Route, popCity, p.City, popCity)
		if err != nil {
			continue
		}
		tr.Routes = append(tr.Routes, RouteObs{Option: opt, Phys: phys})
	}
	if len(tr.Routes) == 0 {
		return Trace{}, fmt.Errorf("workload: no resolvable egress route for prefix %d at city %d", p.ID, popCity)
	}
	// Per-window session noise stream, keyed by (prefix, pop) so traces
	// are independent of generation order.
	rng := xrand.New(g.cfg.Seed ^ uint64(p.ID)*0x9e3779b97f4a7c15 ^ uint64(popCity)<<32)
	for _, start := range Windows(g.cfg.Days, g.cfg.WindowMin) {
		obs := WindowObs{Start: start}
		for _, ro := range tr.Routes {
			floor := g.sim.MinRTTMs(ro.Phys, p, start, g.cfg.WindowMin)
			// Median of SessionsPW sampled sessions: the per-session
			// MinRTT sits at the window floor plus a small jitter, so the
			// median is the middle order statistic of the jitter.
			jit := make([]float64, g.cfg.SessionsPW)
			for i := range jit {
				jit[i] = rng.Exp(0.25)
			}
			// Median via partial selection (tiny slice).
			for i := 0; i <= len(jit)/2; i++ {
				min := i
				for j := i + 1; j < len(jit); j++ {
					if jit[j] < jit[min] {
						min = j
					}
				}
				jit[i], jit[min] = jit[min], jit[i]
			}
			obs.MedianMinRTTMs = append(obs.MedianMinRTTMs, floor+jit[len(jit)/2])
		}
		// Volume: the prefix's weight modulated by its local diurnal
		// activity (busier evenings move more bytes).
		local := start/60 + g.phaseHours(p)
		obs.VolumeBytes = p.Weight * (0.4 + diurnalVolume(local))
		tr.Windows = append(tr.Windows, obs)
	}
	return tr, nil
}

func (g *Generator) phaseHours(p topology.Prefix) float64 {
	return g.res.Catalog().City(p.City).Loc.Lon / 15
}

// diurnalVolume is a smooth daily activity curve peaking in the evening,
// normalized to [0, 1].
func diurnalVolume(localHour float64) float64 {
	h := localHour
	for h < 0 {
		h += 24
	}
	for h >= 24 {
		h -= 24
	}
	// Two bumps: daytime plateau and evening peak.
	switch {
	case h < 7:
		return 0.1
	case h < 17:
		return 0.5
	case h < 23:
		return 1.0
	default:
		return 0.3
	}
}
