package cdn

import (
	"fmt"
	"sort"

	"beatbgp/internal/dnsmap"
	"beatbgp/internal/geo"
	"beatbgp/internal/netsim"
	"beatbgp/internal/stats"
	"beatbgp/internal/topology"
	"beatbgp/internal/xrand"
)

// AnycastChoice marks "serve over the anycast prefix" in a Redirector
// decision.
const AnycastChoice = -1

// Redirector is a measurement-driven DNS redirection policy: for every
// LDNS it picks either a specific unicast front-end or anycast, based on
// historical measurements from clients behind that LDNS. Resolvers that
// send ECS get per-prefix decisions instead — the oracle granularity the
// paper notes is virtually unavailable in practice.
type Redirector struct {
	byResolver map[int]int // resolver ID -> site index or AnycastChoice
	byPrefix   map[int]int // ECS-capable resolvers: prefix ID -> decision
}

// NewRedirector builds a redirection policy from externally computed
// decisions — e.g. aggregates from a client-measurement pipeline like the
// odin package. Keys are resolver IDs and (for ECS-grade decisions)
// prefix IDs; values are site indices or AnycastChoice. The maps are
// copied.
func NewRedirector(byResolver, byPrefix map[int]int) *Redirector {
	rd := &Redirector{
		byResolver: make(map[int]int, len(byResolver)),
		byPrefix:   make(map[int]int, len(byPrefix)),
	}
	for k, v := range byResolver {
		rd.byResolver[k] = v
	}
	for k, v := range byPrefix {
		rd.byPrefix[k] = v
	}
	return rd
}

// NearestSitesToCity returns the k sites closest to a city.
func (c *CDN) NearestSitesToCity(city, k int) []int {
	loc := c.Topo.Catalog.City(city).Loc
	idx := make([]int, len(c.Sites))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		da := geo.DistanceKm(loc, c.Topo.Catalog.City(c.Sites[idx[a]].City).Loc)
		db := geo.DistanceKm(loc, c.Topo.Catalog.City(c.Sites[idx[b]].City).Loc)
		if da != db {
			return da < db
		}
		return idx[a] < idx[b]
	})
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// TrainOpts tunes redirection training.
type TrainOpts struct {
	// KNearest bounds the candidate unicast sites considered per LDNS
	// (default 5).
	KNearest int
	// NoiseMs is the standard deviation of the per-candidate estimation
	// bias (default 10 ms). Real redirection systems estimate each
	// candidate's latency from sparse, self-selected client samples; this
	// systematic error is what makes them mis-predict when candidates are
	// nearly tied — the paper's Figure 4 "did worse than anycast" mass.
	// Set to a negative value for noiseless (oracle) training.
	NoiseMs float64
	// UseECS lets the redirector exploit EDNS Client Subnet where the
	// resolver sends it, making per-client decisions. The 2015 system the
	// paper analyzed did not consume ECS, so this defaults to false; it
	// is the granularity ablation called out in DESIGN.md.
	UseECS bool
	// HybridMarginMs makes the policy a hybrid in the §4 sense: a unicast
	// front-end overrides anycast only when its predicted advantage
	// exceeds this margin, so marginal (and therefore error-prone)
	// overrides stay on anycast. 0 (the default) is the plain
	// best-predicted policy of Figure 4.
	HybridMarginMs float64
}

func (o *TrainOpts) setDefaults() {
	if o.KNearest <= 0 {
		o.KNearest = 5
	}
	if o.NoiseMs == 0 {
		o.NoiseMs = 10
	}
}

// TrainRedirector builds a redirection policy from measurements taken at
// the training times: for each LDNS, the candidate set is anycast plus the
// KNearest sites to the *resolver's* city (the redirection system only
// knows where the resolver is), and the winner is the candidate with the
// lowest weighted median RTT across the resolver's client prefixes.
func TrainRedirector(c *CDN, sim *netsim.Sim, m *dnsmap.Mapping,
	prefixes []topology.Prefix, trainTimes []float64, opts TrainOpts) (*Redirector, error) {
	if len(trainTimes) == 0 {
		return nil, fmt.Errorf("cdn: no training times")
	}
	opts.setDefaults()
	kNearest := opts.KNearest
	rd := &Redirector{
		byResolver: make(map[int]int),
		byPrefix:   make(map[int]int),
	}
	byResolver := make(map[int][]topology.Prefix)
	for _, p := range prefixes {
		r, ok := m.ResolverFor(p.ID)
		if !ok {
			continue
		}
		byResolver[r.ID] = append(byResolver[r.ID], p)
	}
	for _, r := range m.Resolvers() {
		group := byResolver[r.ID]
		if len(group) == 0 {
			continue
		}
		if r.ECS && opts.UseECS {
			// Per-prefix decisions at oracle granularity.
			for _, p := range group {
				choice, err := c.bestOption(sim, []topology.Prefix{p},
					c.NearestSitesToCity(p.City, kNearest), trainTimes, opts.NoiseMs, opts.HybridMarginMs)
				if err != nil {
					return nil, err
				}
				rd.byPrefix[p.ID] = choice
			}
			continue
		}
		choice, err := c.bestOption(sim, group, c.NearestSitesToCity(r.City, kNearest), trainTimes, opts.NoiseMs, opts.HybridMarginMs)
		if err != nil {
			return nil, err
		}
		rd.byResolver[r.ID] = choice
	}
	return rd, nil
}

// bestOption scores anycast plus the candidate sites over the group of
// prefixes and returns the winner (AnycastChoice or a site index).
// Prefixes that cannot reach a candidate simply skip it, mirroring a
// measurement system that never hears from those clients.
func (c *CDN) bestOption(sim *netsim.Sim, group []topology.Prefix, candidates []int, times []float64, noiseMs, marginMs float64) (int, error) {
	// Deterministic per-group noise stream. The bias is drawn once per
	// candidate, not per sample: a real redirection system estimates each
	// candidate's latency from a sparse, self-selected subset of the
	// group's clients, so its per-candidate estimates carry systematic
	// error that a median over samples does not wash out.
	seed := uint64(0x9e3779b97f4a7c15)
	for _, p := range group {
		seed = (seed ^ uint64(p.ID)) * 0xbf58476d1ce4e5b9
	}
	rng := xrand.New(seed)
	bias := func() float64 {
		if noiseMs <= 0 {
			return 0
		}
		return rng.Norm(0, noiseMs)
	}
	best, bestMed := AnycastChoice, 0.0
	{
		var d stats.Dist
		for _, p := range group {
			for _, t := range times {
				if rtt, _, err := c.AnycastRTT(sim, p, nil, t); err == nil {
					d.Add(rtt, p.Weight)
				}
			}
		}
		if d.N() == 0 {
			return AnycastChoice, fmt.Errorf("cdn: no anycast measurements for group")
		}
		bestMed = d.Median() + bias()
	}
	for _, site := range candidates {
		var d stats.Dist
		for _, p := range group {
			for _, t := range times {
				if rtt, err := c.UnicastRTT(sim, p, site, t); err == nil {
					d.Add(rtt, p.Weight)
				}
			}
		}
		if d.N() == 0 {
			continue
		}
		med := d.Median() + bias()
		// The hybrid margin applies against anycast's estimate only:
		// once a unicast site has cleared the bar, a better unicast site
		// replaces it without paying the margin again.
		bar := bestMed
		if best == AnycastChoice {
			bar -= marginMs
		}
		if med < bar {
			best, bestMed = site, med
		}
	}
	return best, nil
}

// Decision returns the redirector's choice for a prefix: a site index or
// AnycastChoice. Unknown prefixes fall back to anycast.
func (rd *Redirector) Decision(p topology.Prefix, m *dnsmap.Mapping) int {
	if choice, ok := rd.byPrefix[p.ID]; ok {
		return choice
	}
	r, ok := m.ResolverFor(p.ID)
	if !ok {
		return AnycastChoice
	}
	if choice, ok := rd.byResolver[r.ID]; ok {
		return choice
	}
	return AnycastChoice
}

// ServeRTT measures the latency the prefix experiences at time t when
// served per the redirector's decision.
func (c *CDN) ServeRTT(sim *netsim.Sim, rd *Redirector, m *dnsmap.Mapping, p topology.Prefix, t float64) (float64, error) {
	choice := rd.Decision(p, m)
	if choice == AnycastChoice {
		rtt, _, err := c.AnycastRTT(sim, p, nil, t)
		return rtt, err
	}
	rtt, err := c.UnicastRTT(sim, p, choice, t)
	if err != nil {
		// The decision was made for the group; this client cannot reach
		// the chosen site at all — fall back to anycast, as a real CDN's
		// health checks eventually would.
		rtt, _, err = c.AnycastRTT(sim, p, nil, t)
	}
	return rtt, err
}
