package cdn

import (
	"fmt"
	"math"

	"beatbgp/internal/bgp"
	"beatbgp/internal/geo"
	"beatbgp/internal/topology"
)

// Catchment inference (Sermpezis & Kotronis, POMACS 2019 — the paper's
// ref [26]): predicting which site anycast will deliver a client to,
// WITHOUT running routing. Operators want this when planning builds
// ("how well can the impact of adding a site be predicted?", §3.2.2).
// Three predictors of increasing sophistication are provided; the xinfer
// experiment scores them against the simulated ground truth.

// PredictNearest guesses the geodesically nearest site — the planner's
// naive first cut.
func (c *CDN) PredictNearest(p topology.Prefix) int {
	return c.NearestSites(p, 1)[0]
}

// PredictASHops guesses the site with the fewest AS-level hops from the
// client's network, breaking ties by distance. It sees the AS graph (a
// public dataset in reality) but not the decision process.
func (c *CDN) PredictASHops(p topology.Prefix) int {
	dist := c.asHopsFrom(p.Origin)
	best, bestHops, bestKm := 0, math.MaxInt, math.Inf(1)
	loc := c.Topo.Catalog.City(p.City).Loc
	for i, site := range c.Sites {
		h, ok := dist[site.AS.ID]
		if !ok {
			continue
		}
		km := geo.DistanceKm(loc, c.Topo.Catalog.City(site.City).Loc)
		if h < bestHops || (h == bestHops && km < bestKm) {
			best, bestHops, bestKm = i, h, km
		}
	}
	return best
}

// PredictPerSiteSim is the strongest practical predictor: simulate
// routing toward each site separately (planners can do this on public
// topology and relationship data) and guess that anycast delivers the
// client to the site whose unicast route wins the coarse decision
// process — local preference, then AS-path length, then distance. What
// it cannot see is the multi-origin interaction: per-ingress tie-breaks
// and intermediate-AS hot potato under competition.
func (c *CDN) PredictPerSiteSim(p topology.Prefix) (int, error) {
	best := -1
	var bestSrc bgp.Source
	bestLen, bestKm := math.MaxInt, math.Inf(1)
	loc := c.Topo.Catalog.City(p.City).Loc
	for i, site := range c.Sites {
		rib, err := c.UnicastRIB(i)
		if err != nil {
			return 0, err
		}
		r := rib.Best(p.Origin)
		if !r.Valid {
			continue
		}
		km := geo.DistanceKm(loc, c.Topo.Catalog.City(site.City).Loc)
		better := false
		switch {
		case best < 0:
			better = true
		case r.Src != bestSrc:
			better = r.Src < bestSrc
		case r.PathLen() != bestLen:
			better = r.PathLen() < bestLen
		default:
			better = km < bestKm
		}
		if better {
			best, bestSrc, bestLen, bestKm = i, r.Src, r.PathLen(), km
		}
	}
	if best < 0 {
		return 0, fmt.Errorf("cdn: no site reachable from prefix %d", p.ID)
	}
	return best, nil
}

// asHopsFrom returns undirected AS-hop distances from the origin over the
// business-relationship graph — the public-topology view a planner has.
func (c *CDN) asHopsFrom(origin int) map[int]int {
	dist := map[int]int{origin: 0}
	queue := []int{origin}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range c.Topo.Neighbors(cur) {
			if _, seen := dist[nb.Other]; seen {
				continue
			}
			dist[nb.Other] = dist[cur] + 1
			queue = append(queue, nb.Other)
		}
	}
	return dist
}
