package cdn

import (
	"testing"

	"beatbgp/internal/geo"
	"beatbgp/internal/topology"
)

func TestPredictNearest(t *testing.T) {
	topo, c := build(t, 41)
	for _, p := range topo.Prefixes[:30] {
		guess := c.PredictNearest(p)
		loc := topo.Catalog.City(p.City).Loc
		d := geo.DistanceKm(loc, topo.Catalog.City(c.Sites[guess].City).Loc)
		for i := range c.Sites {
			if od := geo.DistanceKm(loc, topo.Catalog.City(c.Sites[i].City).Loc); od < d-1e-9 {
				t.Fatalf("site %d closer than predicted nearest", i)
			}
		}
	}
}

func TestPredictASHopsValid(t *testing.T) {
	topo, c := build(t, 43)
	for _, p := range topo.Prefixes[:30] {
		guess := c.PredictASHops(p)
		if guess < 0 || guess >= len(c.Sites) {
			t.Fatalf("prediction %d out of range", guess)
		}
	}
}

func TestPredictPerSiteSim(t *testing.T) {
	topo, c := build(t, 45)
	exactSim, exactNear, n := 0, 0, 0
	for _, p := range topo.Prefixes {
		actual, err := c.Catchment(p, nil)
		if err != nil {
			continue
		}
		sim, err := c.PredictPerSiteSim(p)
		if err != nil {
			t.Fatalf("per-site sim: %v", err)
		}
		if sim < 0 || sim >= len(c.Sites) {
			t.Fatalf("prediction %d out of range", sim)
		}
		n++
		if sim == actual {
			exactSim++
		}
		if c.PredictNearest(p) == actual {
			exactNear++
		}
	}
	if n < 50 {
		t.Fatalf("only %d prefixes evaluated", n)
	}
	// The routing-aware predictor must not lose to pure geography.
	if exactSim < exactNear {
		t.Fatalf("per-site simulation (%d/%d) worse than nearest-site (%d/%d)",
			exactSim, n, exactNear, n)
	}
}

func TestASHopsFromBFS(t *testing.T) {
	topo, c := build(t, 47)
	origin := topo.ByClass(topology.Eyeball)[0]
	dist := c.asHopsFrom(origin)
	if dist[origin] != 0 {
		t.Fatal("origin distance must be 0")
	}
	// Every direct neighbor is at hop 1.
	for _, nb := range topo.Neighbors(origin) {
		if dist[nb.Other] != 1 {
			t.Fatalf("neighbor %d at distance %d", nb.Other, dist[nb.Other])
		}
	}
	// Triangle inequality over the BFS tree: no node's distance exceeds a
	// neighbor's by more than 1.
	for as, d := range dist {
		for _, nb := range topo.Neighbors(as) {
			if od, ok := dist[nb.Other]; ok && d > od+1 {
				t.Fatalf("BFS distances inconsistent: %d vs %d", d, od)
			}
		}
	}
}
