// Package cdn models the anycast CDN of the paper's §2.3.2/§3.2: a few
// dozen front-end sites, each an independently connected stub network
// announcing a shared anycast prefix, so BGP — not the operator — decides
// which site a client reaches. Unicast routes to individual sites, DNS
// redirection at LDNS granularity, and anycast grooming (prepending and
// selective announcement) are built on top.
//
// Sites are modeled as separate ASes because that is what makes anycast
// catchments interesting: each site's announcement competes in BGP, and a
// transit network's decision process can steer a whole customer cone to a
// distant site — the pathology behind Figure 3's tail.
package cdn

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"beatbgp/internal/bgp"
	"beatbgp/internal/geo"
	"beatbgp/internal/netpath"
	"beatbgp/internal/netsim"
	"beatbgp/internal/par"
	"beatbgp/internal/topology"
	"beatbgp/internal/xrand"
)

// Config tunes CDN construction. Zero value gets defaults.
type Config struct {
	Seed uint64

	// SitesPerRegion places front-ends at each region's biggest cities.
	// The default gives 28 sites concentrated in North America and
	// Europe, like the 2015 deployment the paper analyzed.
	SitesPerRegion map[geo.Region]int

	TransitsPerSite int     // Tier-1 transit contracts per site (default 2)
	EyeballPeerProb float64 // peering probability with co-located eyeballs (default 0.6)
	TransitPeerProb float64 // peering probability with co-located regional transits (default 0.7)
	ServerMs        float64 // server processing time added to every request (default 0.5)
	BaseASN         int     // first site ASN (default 65000)
}

// Validate rejects nonsensical parameters. Zero values are fine (they
// select defaults).
func (c *Config) Validate() error {
	if c.TransitsPerSite < 0 || c.BaseASN < 0 {
		return fmt.Errorf("cdn: TransitsPerSite/BaseASN must be non-negative")
	}
	for region, n := range c.SitesPerRegion {
		if n < 0 {
			return fmt.Errorf("cdn: SitesPerRegion[%v] = %d must be non-negative", region, n)
		}
	}
	for name, v := range map[string]float64{
		"EyeballPeerProb": c.EyeballPeerProb, "TransitPeerProb": c.TransitPeerProb,
	} {
		if math.IsNaN(v) || v < 0 || v > 1 {
			return fmt.Errorf("cdn: %s = %v must be a probability in [0, 1]", name, v)
		}
	}
	if math.IsNaN(c.ServerMs) || math.IsInf(c.ServerMs, 0) || c.ServerMs < 0 {
		return fmt.Errorf("cdn: ServerMs = %v must be finite and non-negative", c.ServerMs)
	}
	return nil
}

func (c *Config) setDefaults() {
	if c.SitesPerRegion == nil {
		c.SitesPerRegion = map[geo.Region]int{
			geo.NorthAmerica: 10,
			geo.Europe:       9,
			geo.Asia:         4,
			geo.SouthAmerica: 2,
			geo.MiddleEast:   1,
			geo.Africa:       1,
			geo.Oceania:      1,
		}
	}
	if c.TransitsPerSite == 0 {
		c.TransitsPerSite = 2
	}
	if c.EyeballPeerProb == 0 {
		c.EyeballPeerProb = 0.6
	}
	if c.TransitPeerProb == 0 {
		c.TransitPeerProb = 0.75
	}
	if c.ServerMs == 0 {
		c.ServerMs = 0.5
	}
	if c.BaseASN == 0 {
		c.BaseASN = 65000
	}
}

// Site is one front-end location.
type Site struct {
	Index int
	AS    *topology.AS
	City  int
}

// CDN is a constructed anycast CDN.
//
// Query methods (Catchment, UnicastRTT, AnycastRTT, RTTViaRIB, ...) are
// safe from any number of goroutines once construction is done: the RIB
// caches are guarded, and each cached RIB is a pure function of the
// announcement set, so answers never depend on interleaving. Parallel
// sweeps should PrimeRIBs first so workers find warm, read-only entries.
type CDN struct {
	Topo     *topology.Topo
	Sites    []Site
	ServerMs float64

	siteByAS map[int]int
	resolver *netpath.Resolver
	comp     bgp.Computer

	mu         sync.RWMutex
	anycastRIB *bgp.RIB   // cache for ungroomed anycast
	unicastRIB []*bgp.RIB // cache per site

	// physCache memoizes each prefix's resolved physical route to each
	// site, keyed site<<32|prefixID. Unicast routes are time-invariant
	// (only link latencies move), so the walk and resolution happen once
	// per (site, prefix) instead of once per RTT sample.
	physMu    sync.RWMutex
	physCache map[int64]netpath.Route

	// Epoch layer (epoch.go): the compiled fault schedule and the
	// per-announcement-set repair chains and epoch-keyed caches built
	// against it, published as one atomically-swapped snapshot so
	// SetEpochs invalidates without racing in-flight queries.
	epochSt atomic.Pointer[epochState]
}

// UseEngine selects the route computation engine behind the RIB caches.
// Engines are interchangeable by contract (bit-identical RIBs; see
// bgp.Computer), so this changes speed, never answers. Call it right
// after Build, before any query warms a cache; the engine must have been
// lowered from this CDN's (final) topology.
func (c *CDN) UseEngine(comp bgp.Computer) { c.comp = comp }

// Build places the CDN's site ASes into the topology (mutating it).
func Build(t *topology.Topo, cfg Config) (*CDN, error) {
	cfg.setDefaults()
	rng := xrand.New(cfg.Seed ^ 0xCD4)
	c := &CDN{
		Topo:      t,
		ServerMs:  cfg.ServerMs,
		siteByAS:  make(map[int]int),
		resolver:  netpath.NewResolver(t),
		comp:      bgp.NewReference(t),
		physCache: make(map[int64]netpath.Route),
	}
	catalog := t.Catalog
	asn := cfg.BaseASN
	// The CDN signs global transit contracts: every site buys from the
	// same few Tier-1s wherever they are present. This is what real CDNs
	// do, and it is load-bearing for anycast quality: a carrier that
	// serves most sites as customers hot-potatoes each flow to the
	// nearest one, while scattered per-site contracts strand a carrier's
	// whole cone on whichever remote site happens to be its customer.
	t1s := t.ByClass(topology.Tier1)
	var contracted []int
	for _, idx := range rng.Perm(len(t1s)) {
		if len(contracted) >= 3 {
			break
		}
		contracted = append(contracted, t1s[idx])
	}
	for _, region := range geo.Regions() {
		n := cfg.SitesPerRegion[region]
		if n <= 0 {
			continue
		}
		ids := catalog.InRegion(region)
		sort.Slice(ids, func(i, j int) bool {
			a, b := catalog.City(ids[i]), catalog.City(ids[j])
			if a.Pop != b.Pop {
				return a.Pop > b.Pop
			}
			return ids[i] < ids[j]
		})
		if n > len(ids) {
			n = len(ids)
		}
		for _, city := range ids[:n] {
			as, err := t.AddAS(asn, fmt.Sprintf("FE-%s", catalog.City(city).Name),
				topology.Content, region, []int{city}, 1.0, topology.EarlyExit)
			if err != nil {
				return nil, err
			}
			asn++
			site := Site{Index: len(c.Sites), AS: as, City: city}
			c.Sites = append(c.Sites, site)
			c.siteByAS[as.ID] = site.Index

			// Transit at the site city: the CDN's contracted Tier-1s when
			// present, then other Tier-1s, then regional transits
			// (smaller markets rarely host a Tier-1 PoP, and real CDN
			// sites buy from whoever is in the building).
			bought := 0
			for _, t1 := range contracted {
				if bought >= cfg.TransitsPerSite {
					break
				}
				if !t.ASes[t1].Net.Present(city) {
					continue
				}
				if _, err := t.Connect(as.ID, t1, topology.C2P, []int{city}, false); err != nil {
					return nil, err
				}
				bought++
			}
			if bought < cfg.TransitsPerSite {
				for _, idx := range rng.Perm(len(t1s)) {
					if bought >= cfg.TransitsPerSite {
						break
					}
					t1 := t1s[idx]
					if !t.ASes[t1].Net.Present(city) || isContracted(contracted, t1) {
						continue
					}
					if _, err := t.Connect(as.ID, t1, topology.C2P, []int{city}, false); err != nil {
						return nil, err
					}
					bought++
				}
			}
			if bought < cfg.TransitsPerSite {
				trs := t.ByClass(topology.Transit)
				for _, idx := range rng.Perm(len(trs)) {
					if bought >= cfg.TransitsPerSite {
						break
					}
					if !t.ASes[trs[idx]].Net.Present(city) {
						continue
					}
					if _, err := t.Connect(as.ID, trs[idx], topology.C2P, []int{city}, false); err != nil {
						return nil, err
					}
					bought++
				}
			}
			if bought == 0 {
				return nil, fmt.Errorf("cdn: site %s has no transit at %s", as.Name, catalog.City(city).Name)
			}
			// Peering with co-located regional transits and eyeballs.
			for _, tr := range t.ByClass(topology.Transit) {
				if t.ASes[tr].Net.Present(city) && rng.Bool(cfg.TransitPeerProb) {
					if _, err := t.Connect(tr, as.ID, topology.P2P, []int{city}, false); err != nil {
						return nil, err
					}
				}
			}
			for _, ey := range t.ByClass(topology.Eyeball) {
				if t.ASes[ey].Net.Present(city) && rng.Bool(cfg.EyeballPeerProb) {
					if _, err := t.Connect(ey, as.ID, topology.P2P, []int{city}, true); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	if len(c.Sites) == 0 {
		return nil, fmt.Errorf("cdn: no sites configured")
	}
	c.unicastRIB = make([]*bgp.RIB, len(c.Sites))
	return c, nil
}

func isContracted(contracted []int, as int) bool {
	for _, c := range contracted {
		if c == as {
			return true
		}
	}
	return false
}

// Grooming describes manual anycast route optimization: per-site AS-path
// prepending, per-site suppressed links, and per-site withdrawal (a full
// drain — the site stops announcing the anycast prefix entirely, as an
// operator does ahead of planned maintenance or when a site is failing).
// Site indices key all three maps.
type Grooming struct {
	Prepend  map[int]int
	Suppress map[int]map[int]bool
	Withdraw map[int]bool
}

// Drain returns a grooming that withdraws the given sites from the
// anycast prefix, leaving everything else at defaults.
func Drain(sites ...int) *Grooming {
	w := make(map[int]bool, len(sites))
	for _, s := range sites {
		w[s] = true
	}
	return &Grooming{Withdraw: w}
}

// Announcements returns the anycast announcement set under the grooming
// (nil for the ungroomed default). Withdrawn sites are absent.
func (c *CDN) Announcements(g *Grooming) []bgp.Announcement {
	anns := make([]bgp.Announcement, 0, len(c.Sites))
	for i, s := range c.Sites {
		if g != nil && g.Withdraw[i] {
			continue
		}
		a := bgp.Announcement{Origin: s.AS.ID}
		if g != nil {
			a.Prepend = g.Prepend[i]
			if sup := g.Suppress[i]; len(sup) > 0 {
				a.SuppressLinks = sup
			}
		}
		anns = append(anns, a)
	}
	return anns
}

// AnycastRIB computes (and for the ungroomed case caches) the anycast
// routing state.
func (c *CDN) AnycastRIB(g *Grooming) (*bgp.RIB, error) {
	if g == nil {
		c.mu.RLock()
		rib := c.anycastRIB
		c.mu.RUnlock()
		if rib != nil {
			return rib, nil
		}
	}
	anns := c.Announcements(g)
	if len(anns) == 0 {
		return nil, fmt.Errorf("cdn: grooming withdraws every site; nothing announces the anycast prefix")
	}
	// Compute outside the lock: the RIB is a pure function of the
	// announcement set, so a racing duplicate is identical.
	rib, err := c.comp.Compute(anns)
	if err != nil {
		return nil, err
	}
	if g == nil {
		c.mu.Lock()
		if c.anycastRIB != nil {
			rib = c.anycastRIB // keep the first-installed pointer stable
		} else {
			c.anycastRIB = rib
		}
		c.mu.Unlock()
	}
	return rib, nil
}

// UnicastRIB returns (cached) routing toward one site's unicast prefix.
func (c *CDN) UnicastRIB(site int) (*bgp.RIB, error) {
	if site < 0 || site >= len(c.Sites) {
		return nil, fmt.Errorf("cdn: site %d out of range", site)
	}
	c.mu.RLock()
	rib := c.unicastRIB[site]
	c.mu.RUnlock()
	if rib != nil {
		return rib, nil
	}
	rib, err := c.comp.Compute([]bgp.Announcement{{Origin: c.Sites[site].AS.ID}})
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if prior := c.unicastRIB[site]; prior != nil {
		rib = prior
	} else {
		c.unicastRIB[site] = rib
	}
	c.mu.Unlock()
	return rib, nil
}

// PrimeRIBs computes the ungroomed anycast RIB and every site's unicast
// RIB on a bounded worker pool, so subsequent cache hits are read-only.
// It returns the number of RIBs computed (zero when already warm).
func (c *CDN) PrimeRIBs(ctx context.Context, workers int) (int, error) {
	// Job -1 is the anycast RIB; jobs 0..len(Sites)-1 are unicast RIBs.
	var jobs []int
	c.mu.RLock()
	if c.anycastRIB == nil {
		jobs = append(jobs, -1)
	}
	for site := range c.Sites {
		if c.unicastRIB[site] == nil {
			jobs = append(jobs, site)
		}
	}
	c.mu.RUnlock()
	if len(jobs) == 0 {
		return 0, nil
	}
	_, err := par.MapCtx(ctx, workers, jobs, func(_ int, job int) (struct{}, error) {
		if job < 0 {
			_, err := c.AnycastRIB(nil)
			return struct{}{}, err
		}
		_, err := c.UnicastRIB(job)
		return struct{}{}, err
	})
	return len(jobs), err
}

// forwardRoute walks the forwarding chain from an AS/city with
// per-ingress route re-selection at every hop: each AS on the path
// re-runs the decision process anchored at the city where the traffic
// actually enters it (hot potato at every network, not just the first).
// This is what makes anycast behave per-client inside multi-city
// intermediate networks. If re-selection would revisit an AS, the walk
// falls back to the current route's remaining RIB path.
func (c *CDN) forwardRoute(rib *bgp.RIB, asID, city int) (bgp.Route, error) {
	t := c.Topo
	out := bgp.Route{Valid: true, Path: []int{asID}}
	visited := map[int]bool{asID: true}
	cur, curCity := asID, city
	for hop := 0; hop < 16; hop++ {
		r := rib.BestFrom(cur, curCity)
		if !r.Valid {
			return bgp.Route{}, fmt.Errorf("cdn: AS %d has no route", cur)
		}
		if r.Src == bgp.SrcOrigin {
			// cur originates the prefix; append any prepend padding.
			out.Path = append(out.Path, r.Path[1:]...)
			if hop == 0 {
				out.Src = bgp.SrcOrigin
				out.Link, out.NextHop = -1, -1
			}
			return out, nil
		}
		if hop == 0 {
			out.Link, out.NextHop, out.Src = r.Link, r.NextHop, r.Src
		}
		if visited[r.NextHop] {
			// Inconsistent per-ingress choices would loop; defer to the
			// converged RIB path from here on.
			out.Path = append(out.Path, r.Path[1:]...)
			out.Links = append(out.Links, r.Links...)
			return out, nil
		}
		out.Path = append(out.Path, r.NextHop)
		out.Links = append(out.Links, r.Link)
		visited[r.NextHop] = true
		// The handoff city: cur early-exits toward the next AS at the
		// interconnect nearest the traffic's ingress.
		link := t.Links[r.Link]
		bestCity, bestKm := -1, math.Inf(1)
		for _, ic := range link.Cities {
			if d := t.ASes[cur].Net.DistKm(curCity, ic); d < bestKm {
				bestCity, bestKm = ic, d
			}
		}
		if bestCity < 0 {
			return bgp.Route{}, fmt.Errorf("cdn: AS %d cannot reach link %d from city %d", cur, r.Link, curCity)
		}
		cur, curCity = r.NextHop, bestCity
	}
	return bgp.Route{}, fmt.Errorf("cdn: forwarding chain too long from AS %d", asID)
}

// Catchment returns the site index that anycast (under the grooming)
// steers the prefix's clients to, or an error when unreachable.
func (c *CDN) Catchment(p topology.Prefix, g *Grooming) (int, error) {
	rib, err := c.AnycastRIB(g)
	if err != nil {
		return 0, err
	}
	r, err := c.forwardRoute(rib, p.Origin, p.City)
	if err != nil {
		return 0, fmt.Errorf("cdn: prefix %d cannot reach the anycast prefix: %w", p.ID, err)
	}
	if !r.Valid {
		return 0, fmt.Errorf("cdn: prefix %d cannot reach the anycast prefix", p.ID)
	}
	site, ok := c.siteByAS[r.Origin()]
	if !ok {
		return 0, fmt.Errorf("cdn: anycast route ends at non-site AS %d", r.Origin())
	}
	return site, nil
}

// UnicastRTT measures the prefix's latency to one specific site at time t
// (request RTT: client -> site, plus server processing).
func (c *CDN) UnicastRTT(sim *netsim.Sim, p topology.Prefix, site int, t float64) (float64, error) {
	phys, err := c.unicastPhys(p, site)
	if err != nil {
		return 0, err
	}
	return sim.RouteRTTMs(phys, p, t) + c.ServerMs, nil
}

// unicastPhys returns the prefix's resolved physical route to the site,
// memoized: the forwarding walk and path resolution are pure functions of
// the (immutable) unicast RIB, so only the first sample per (site,
// prefix) pays for them. The grooming sweeps hammer this with thousands
// of (prefix, time) pairs per site.
func (c *CDN) unicastPhys(p topology.Prefix, site int) (netpath.Route, error) {
	key := int64(site)<<32 | int64(p.ID)
	c.physMu.RLock()
	phys, ok := c.physCache[key]
	c.physMu.RUnlock()
	if ok {
		return phys, nil
	}
	rib, err := c.UnicastRIB(site)
	if err != nil {
		return netpath.Route{}, err
	}
	r, err := c.forwardRoute(rib, p.Origin, p.City)
	if err != nil {
		return netpath.Route{}, fmt.Errorf("cdn: prefix %d cannot reach site %d: %w", p.ID, site, err)
	}
	phys, err = c.resolver.Resolve(r, p.City, c.Sites[site].City)
	if err != nil {
		return netpath.Route{}, err
	}
	c.physMu.Lock()
	if prior, ok := c.physCache[key]; ok {
		phys = prior // keep the first-installed route stable
	} else {
		c.physCache[key] = phys
	}
	c.physMu.Unlock()
	return phys, nil
}

// AnycastRTT measures the prefix's latency over the anycast prefix at
// time t, returning the latency and the catchment site.
func (c *CDN) AnycastRTT(sim *netsim.Sim, p topology.Prefix, g *Grooming, t float64) (float64, int, error) {
	rib, err := c.AnycastRIB(g)
	if err != nil {
		return 0, 0, err
	}
	return c.RTTViaRIB(sim, rib, p, t)
}

// RTTViaRIB measures the prefix's anycast latency using a precomputed
// anycast RIB — callers sweeping grooming configurations compute the RIB
// once and reuse it across prefixes and times.
func (c *CDN) RTTViaRIB(sim *netsim.Sim, rib *bgp.RIB, p topology.Prefix, t float64) (float64, int, error) {
	phys, site, err := c.PhysViaRIB(rib, p)
	if err != nil {
		return 0, 0, err
	}
	return sim.RouteRTTMs(phys, p, t) + c.ServerMs, site, nil
}

// PhysViaRIB resolves the prefix's anycast forwarding walk under the RIB
// into a physical route and its catchment site. The result is independent
// of time, so callers sampling many time points (the grooming sweep)
// resolve once per prefix and pay only Sim.RouteRTTMs per sample.
func (c *CDN) PhysViaRIB(rib *bgp.RIB, p topology.Prefix) (netpath.Route, int, error) {
	r, err := c.forwardRoute(rib, p.Origin, p.City)
	if err != nil {
		return netpath.Route{}, 0, fmt.Errorf("cdn: prefix %d cannot reach the anycast prefix: %w", p.ID, err)
	}
	site, ok := c.siteByAS[r.Origin()]
	if !ok {
		return netpath.Route{}, 0, fmt.Errorf("cdn: anycast route ends at non-site AS %d", r.Origin())
	}
	phys, err := c.resolver.Resolve(r, p.City, c.Sites[site].City)
	if err != nil {
		return netpath.Route{}, 0, err
	}
	return phys, site, nil
}

// NearestSites returns the k sites geodesically closest to the prefix's
// anchor city, nearest first.
func (c *CDN) NearestSites(p topology.Prefix, k int) []int {
	return c.NearestSitesToCity(p.City, k)
}

// SiteDistanceKm returns the geodesic distance from the prefix's anchor
// city to the rank-th nearest site (rank 0 = nearest).
func (c *CDN) SiteDistanceKm(p topology.Prefix, rank int) float64 {
	sites := c.NearestSites(p, rank+1)
	if rank >= len(sites) {
		return math.Inf(1)
	}
	return geo.DistanceKm(c.Topo.Catalog.City(p.City).Loc,
		c.Topo.Catalog.City(c.Sites[sites[rank]].City).Loc)
}
