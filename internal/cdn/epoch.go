package cdn

import (
	"fmt"

	"beatbgp/internal/bgp"
	"beatbgp/internal/delta"
	"beatbgp/internal/netpath"
	"beatbgp/internal/netsim"
	"beatbgp/internal/topology"
)

// The epoch layer gives the CDN fault-aware routing state without the
// per-query overlay hack: instead of recomputing a full RIB at every
// sampled instant of a fault schedule, the schedule is compiled once
// into a delta.Sequence (faults.Timeline.Deltas or session.History.
// Deltas) and installed with SetEpochs; AnycastRIBAt/UnicastRIBAt then
// carry one bgp.RouteRepairer per prefix across the epoch chain,
// repairing only what each delta touches, and memoize the repaired RIB
// per epoch. The per-(site, prefix) physical-route caches gain an epoch
// dimension the same way: within one epoch routes are frozen, so every
// sample instant in the epoch shares one resolved route.
//
// Bit-identity contract: AnycastRIBAt(e) and UnicastRIBAt(site, e)
// answer every query exactly like Compute(With)out at the epoch's
// cumulative down set — repair is an engine property, never a semantic
// one (see bgp.RouteRepairer).

// epochChain carries one announcement set's routing state across the
// epoch sequence: a repairer positioned at epoch `at`, plus the RIBs
// already materialized. Guarded by CDN.epochMu.
type epochChain struct {
	rep  bgp.RouteRepairer
	at   int
	ribs map[int]*bgp.RIB
}

// physEpochKey keys the epoch-aware physical-route cache. Site is the
// unicast target, or -1 for the anycast walk.
type physEpochKey struct {
	epoch, site, prefix int
}

// physEpochVal is one resolved walk: the physical route and, for the
// anycast walk, the catchment site it lands on.
type physEpochVal struct {
	phys netpath.Route
	site int
}

// SetEpochs installs (or, with nil, removes) the epoch sequence the
// fault-aware queries repair across, discarding all per-epoch state
// built against a previous sequence. Install it before fanning out;
// the epoch queries themselves are safe for concurrent use.
func (c *CDN) SetEpochs(seq *delta.Sequence) {
	c.epochMu.Lock()
	defer c.epochMu.Unlock()
	c.epochSeq = seq
	c.anyChain = nil
	c.uniChains = nil
	c.physAt = nil
}

// Epochs returns the installed epoch sequence, or nil.
func (c *CDN) Epochs() *delta.Sequence {
	c.epochMu.Lock()
	defer c.epochMu.Unlock()
	return c.epochSeq
}

// advance walks a chain's repairer from its current epoch to epoch e,
// folding the intermediate deltas forward — or their inversions
// backward, which is exact because every epoch's delta is normalized
// against its predecessor. Caller holds epochMu.
func (c *CDN) advance(ch *epochChain, e int) (*bgp.RIB, error) {
	if rib := ch.ribs[e]; rib != nil {
		return rib, nil
	}
	for ch.at < e {
		if err := ch.rep.Apply(c.epochSeq.Epoch(ch.at + 1).Delta); err != nil {
			return nil, err
		}
		ch.at++
	}
	for ch.at > e {
		if err := ch.rep.Apply(c.epochSeq.Epoch(ch.at).Delta.Invert()); err != nil {
			return nil, err
		}
		ch.at--
	}
	rib, err := ch.rep.RIB()
	if err != nil {
		return nil, err
	}
	ch.ribs[e] = rib
	return rib, nil
}

// checkEpoch validates an epoch index against the installed sequence.
// Caller holds epochMu.
func (c *CDN) checkEpoch(e int) error {
	if c.epochSeq == nil {
		return fmt.Errorf("cdn: no epoch sequence installed (SetEpochs)")
	}
	if e < 0 || e >= c.epochSeq.Len() {
		return fmt.Errorf("cdn: epoch %d out of range [0,%d)", e, c.epochSeq.Len())
	}
	return nil
}

// AnycastRIBAt returns the ungroomed anycast RIB repaired to the given
// epoch of the installed sequence: identical to recomputing from
// scratch at the epoch's cumulative down set, but the repair chain pays
// only for what each delta touches.
func (c *CDN) AnycastRIBAt(epoch int) (*bgp.RIB, error) {
	c.epochMu.Lock()
	defer c.epochMu.Unlock()
	if err := c.checkEpoch(epoch); err != nil {
		return nil, err
	}
	if c.anyChain == nil {
		rep, err := bgp.StartRepair(c.comp, c.Announcements(nil))
		if err != nil {
			return nil, err
		}
		c.anyChain = &epochChain{rep: rep, ribs: make(map[int]*bgp.RIB)}
	}
	return c.advance(c.anyChain, epoch)
}

// UnicastRIBAt returns the site's unicast RIB repaired to the given
// epoch, with the same contract as AnycastRIBAt.
func (c *CDN) UnicastRIBAt(site, epoch int) (*bgp.RIB, error) {
	if site < 0 || site >= len(c.Sites) {
		return nil, fmt.Errorf("cdn: site %d out of range", site)
	}
	c.epochMu.Lock()
	defer c.epochMu.Unlock()
	if err := c.checkEpoch(epoch); err != nil {
		return nil, err
	}
	if c.uniChains == nil {
		c.uniChains = make([]*epochChain, len(c.Sites))
	}
	if c.uniChains[site] == nil {
		rep, err := bgp.StartRepair(c.comp, []bgp.Announcement{{Origin: c.Sites[site].AS.ID}})
		if err != nil {
			return nil, err
		}
		c.uniChains[site] = &epochChain{rep: rep, ribs: make(map[int]*bgp.RIB)}
	}
	return c.advance(c.uniChains[site], epoch)
}

// physAtLookup memoizes a forwarding walk + resolution under an epoch
// RIB. Caller holds epochMu (the walk itself is cheap relative to a
// repair, and correctness beats parallel cache fills here).
func (c *CDN) physAtLookup(key physEpochKey, walk func() (physEpochVal, error)) (physEpochVal, error) {
	if v, ok := c.physAt[key]; ok {
		return v, nil
	}
	v, err := walk()
	if err != nil {
		return physEpochVal{}, err
	}
	if c.physAt == nil {
		c.physAt = make(map[physEpochKey]physEpochVal)
	}
	c.physAt[key] = v
	return v, nil
}

// AnycastRTTAt measures the prefix's ungroomed anycast latency at
// minute t with the fault schedule's route changes repaired in — the
// epoch in effect at t selects the RIB — returning the latency and the
// catchment site. The resolved physical route is cached per (epoch,
// prefix), so sweeping many instants inside one epoch resolves once.
func (c *CDN) AnycastRTTAt(sim *netsim.Sim, p topology.Prefix, t float64) (float64, int, error) {
	c.epochMu.Lock()
	if c.epochSeq == nil {
		c.epochMu.Unlock()
		return 0, 0, fmt.Errorf("cdn: no epoch sequence installed (SetEpochs)")
	}
	epoch := c.epochSeq.At(t)
	c.epochMu.Unlock()
	rib, err := c.AnycastRIBAt(epoch)
	if err != nil {
		return 0, 0, err
	}
	c.epochMu.Lock()
	v, err := c.physAtLookup(physEpochKey{epoch: epoch, site: -1, prefix: p.ID},
		func() (physEpochVal, error) {
			phys, site, err := c.PhysViaRIB(rib, p)
			if err != nil {
				return physEpochVal{}, err
			}
			return physEpochVal{phys: phys, site: site}, nil
		})
	c.epochMu.Unlock()
	if err != nil {
		return 0, 0, err
	}
	return sim.RouteRTTMs(v.phys, p, t) + c.ServerMs, v.site, nil
}

// UnicastRTTAt is UnicastRTT with the fault schedule's route changes
// repaired in: the epoch in effect at t selects the site's repaired
// unicast RIB, and the resolved physical route is cached per (epoch,
// site, prefix).
func (c *CDN) UnicastRTTAt(sim *netsim.Sim, p topology.Prefix, site int, t float64) (float64, error) {
	c.epochMu.Lock()
	if c.epochSeq == nil {
		c.epochMu.Unlock()
		return 0, fmt.Errorf("cdn: no epoch sequence installed (SetEpochs)")
	}
	epoch := c.epochSeq.At(t)
	c.epochMu.Unlock()
	rib, err := c.UnicastRIBAt(site, epoch)
	if err != nil {
		return 0, err
	}
	c.epochMu.Lock()
	v, err := c.physAtLookup(physEpochKey{epoch: epoch, site: site, prefix: p.ID},
		func() (physEpochVal, error) {
			r, err := c.forwardRoute(rib, p.Origin, p.City)
			if err != nil {
				return physEpochVal{}, fmt.Errorf("cdn: prefix %d cannot reach site %d: %w", p.ID, site, err)
			}
			phys, err := c.resolver.Resolve(r, p.City, c.Sites[site].City)
			if err != nil {
				return physEpochVal{}, err
			}
			return physEpochVal{phys: phys, site: site}, nil
		})
	c.epochMu.Unlock()
	if err != nil {
		return 0, err
	}
	return sim.RouteRTTMs(v.phys, p, t) + c.ServerMs, nil
}
