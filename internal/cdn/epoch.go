package cdn

import (
	"context"
	"fmt"

	"sync"

	"beatbgp/internal/bgp"
	"beatbgp/internal/delta"
	"beatbgp/internal/netpath"
	"beatbgp/internal/netsim"
	"beatbgp/internal/topology"
)

// The epoch layer gives the CDN fault-aware routing state without the
// per-query overlay hack: instead of recomputing a full RIB at every
// sampled instant of a fault schedule, the schedule is compiled once
// into a delta.Sequence (faults.Timeline.Deltas or session.History.
// Deltas) and installed with SetEpochs; AnycastRIBAt/UnicastRIBAt then
// carry one bgp.RouteRepairer per prefix across the epoch chain,
// repairing only what each delta touches, and memoize the repaired RIB
// per epoch. The per-(site, prefix) physical-route caches gain an epoch
// dimension the same way: within one epoch routes are frozen, so every
// sample instant in the epoch shares one resolved route.
//
// Bit-identity contract: AnycastRIBAt(e) and UnicastRIBAt(site, e)
// answer every query exactly like Compute(With)out at the epoch's
// cumulative down set — repair is an engine property, never a semantic
// one (see bgp.RouteRepairer).
//
// Concurrency: all epoch state built against one installed sequence
// lives in a single immutable-once-published epochState, swapped
// atomically by SetEpochs. A query loads the pointer once and answers
// entirely against that snapshot, so a racing SetEpochs can never pair
// a stale RIB with a new sequence's epoch index — in-flight queries
// finish against the old state, later ones see only the new one.
// Within a state, materialized RIBs are handed out through per-(chain,
// epoch) futures: the first caller computes while only its own chain's
// repairer lock is held, duplicates wait on the future, and readers of
// other chains or of already-materialized epochs never block behind an
// in-flight repair.

// epochState is everything built against one installed epoch sequence.
// It is published atomically via CDN.epochSt; the maps inside are
// guarded by mu, which is never held across a repair or a forwarding
// walk.
type epochState struct {
	seq *delta.Sequence

	mu        sync.Mutex // guards chain rib maps and physAt; never held during compute
	anyChain  *epochChain
	uniChains []*epochChain
	physAt    map[physEpochKey]physEpochVal
}

// epochChain carries one announcement set's routing state across the
// epoch sequence: a repairer positioned at epoch `at` (created lazily
// on first use, positioned at epoch 0's down set), plus futures for
// every epoch whose RIB has been requested. The ribs map is guarded by
// epochState.mu; rep/at by the chain's own mu, so advancing one chain
// never blocks queries against another.
type epochChain struct {
	mu   sync.Mutex // serializes repairer creation + advancement
	rep  bgp.RouteRepairer
	at   int
	ribs map[int]*ribFuture
}

// ribFuture is one epoch's materializing RIB: the first requester
// computes and closes done; duplicates block on done and share the
// result. Failed computations are removed from the chain's map so
// later callers retry with a fresh repairer instead of caching the
// error forever.
type ribFuture struct {
	done chan struct{}
	rib  *bgp.RIB
	err  error
}

// physEpochKey keys the epoch-aware physical-route cache. Site is the
// unicast target, or -1 for the anycast walk.
type physEpochKey struct {
	epoch, site, prefix int
}

// physEpochVal is one resolved walk: the physical route and, for the
// anycast walk, the catchment site it lands on.
type physEpochVal struct {
	phys netpath.Route
	site int
}

func newEpochState(seq *delta.Sequence, sites int) *epochState {
	st := &epochState{
		seq:       seq,
		anyChain:  &epochChain{ribs: make(map[int]*ribFuture)},
		uniChains: make([]*epochChain, sites),
		physAt:    make(map[physEpochKey]physEpochVal),
	}
	for i := range st.uniChains {
		st.uniChains[i] = &epochChain{ribs: make(map[int]*ribFuture)}
	}
	return st
}

// check validates an epoch index against the state's sequence; a nil
// state means no sequence is installed.
func (st *epochState) check(e int) error {
	if st == nil {
		return fmt.Errorf("cdn: no epoch sequence installed (SetEpochs)")
	}
	if e < 0 || e >= st.seq.Len() {
		return fmt.Errorf("cdn: epoch %d out of range [0,%d)", e, st.seq.Len())
	}
	return nil
}

// SetEpochs installs (or, with nil, removes) the epoch sequence the
// fault-aware queries repair across. The swap is atomic: queries in
// flight finish coherently against the previous sequence's state, and
// every later query sees only the new sequence with all per-epoch
// caches discarded. Safe to call concurrently with the epoch queries.
func (c *CDN) SetEpochs(seq *delta.Sequence) {
	if seq == nil {
		c.epochSt.Store(nil)
		return
	}
	c.epochSt.Store(newEpochState(seq, len(c.Sites)))
}

// Epochs returns the installed epoch sequence, or nil.
func (c *CDN) Epochs() *delta.Sequence {
	if st := c.epochSt.Load(); st != nil {
		return st.seq
	}
	return nil
}

// chainRIB returns the chain's RIB at epoch e through the per-epoch
// singleflight: the hit path touches only the state lock, the miss
// path repairs under the chain's own lock with the state lock
// released, and duplicate concurrent requests for one epoch share a
// single repair.
func (c *CDN) chainRIB(ctx context.Context, st *epochState, ch *epochChain, anns func() []bgp.Announcement, e int) (*bgp.RIB, error) {
	st.mu.Lock()
	if f, ok := ch.ribs[e]; ok {
		st.mu.Unlock()
		// A deadline-carrying duplicate stops waiting when its context
		// expires; the owner keeps computing and later queries still get
		// the materialized RIB.
		select {
		case <-f.done:
			return f.rib, f.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	f := &ribFuture{done: make(chan struct{})}
	ch.ribs[e] = f
	st.mu.Unlock()

	rib, err := c.advance(ctx, st.seq, ch, anns, e)
	if err != nil {
		st.mu.Lock()
		delete(ch.ribs, e)
		st.mu.Unlock()
	}
	f.rib, f.err = rib, err
	close(f.done)
	return rib, err
}

// advance walks the chain's repairer to epoch e, creating it on first
// use — StartRepair's all-links-up state folded forward by epoch 0's
// delta, which carries the sequence's initial down set — then folding
// the intermediate deltas forward, or their inversions backward, which
// is exact because every epoch's delta is normalized against its
// predecessor. A failed Apply poisons the repairer, so it is dropped
// and rebuilt fresh on the next request.
func (c *CDN) advance(ctx context.Context, seq *delta.Sequence, ch *epochChain, anns func() []bgp.Announcement, e int) (*bgp.RIB, error) {
	ch.mu.Lock()
	defer ch.mu.Unlock()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if ch.rep == nil {
		rep, err := bgp.StartRepair(c.comp, anns())
		if err != nil {
			return nil, err
		}
		if err := bgp.ApplyContext(ctx, rep, seq.Epoch(0).Delta); err != nil {
			return nil, err
		}
		ch.rep, ch.at = rep, 0
	}
	// The per-epoch steps thread the query's context down to the engine's
	// repair-stage boundaries (bgp.ContextRepairer): a deadline hit
	// mid-chain poisons the repairer like any failed Apply — dropped here,
	// rebuilt fresh by the next request — never left mid-delta.
	for ch.at < e {
		if err := bgp.ApplyContext(ctx, ch.rep, seq.Epoch(ch.at+1).Delta); err != nil {
			ch.rep = nil
			return nil, err
		}
		ch.at++
	}
	for ch.at > e {
		if err := bgp.ApplyContext(ctx, ch.rep, seq.Epoch(ch.at).Delta.Invert()); err != nil {
			ch.rep = nil
			return nil, err
		}
		ch.at--
	}
	return ch.rep.RIB()
}

// AnycastRIBAt returns the ungroomed anycast RIB repaired to the given
// epoch of the installed sequence: identical to recomputing from
// scratch at the epoch's cumulative down set, but the repair chain pays
// only for what each delta touches. Safe for concurrent use.
func (c *CDN) AnycastRIBAt(epoch int) (*bgp.RIB, error) {
	return c.AnycastRIBAtContext(context.Background(), epoch)
}

// AnycastRIBAtContext is AnycastRIBAt honoring ctx: a query that
// carries a deadline stops waiting on an in-flight repair (the owner
// finishes and later queries reuse the result) and aborts its own
// repair at epoch-step boundaries.
func (c *CDN) AnycastRIBAtContext(ctx context.Context, epoch int) (*bgp.RIB, error) {
	st := c.epochSt.Load()
	if err := st.check(epoch); err != nil {
		return nil, err
	}
	return c.chainRIB(ctx, st, st.anyChain, func() []bgp.Announcement { return c.Announcements(nil) }, epoch)
}

// UnicastRIBAt returns the site's unicast RIB repaired to the given
// epoch, with the same contract as AnycastRIBAt.
func (c *CDN) UnicastRIBAt(site, epoch int) (*bgp.RIB, error) {
	return c.UnicastRIBAtContext(context.Background(), site, epoch)
}

// UnicastRIBAtContext is UnicastRIBAt honoring ctx, with the same
// cancellation contract as AnycastRIBAtContext.
func (c *CDN) UnicastRIBAtContext(ctx context.Context, site, epoch int) (*bgp.RIB, error) {
	if site < 0 || site >= len(c.Sites) {
		return nil, fmt.Errorf("cdn: site %d out of range", site)
	}
	st := c.epochSt.Load()
	if err := st.check(epoch); err != nil {
		return nil, err
	}
	return c.chainRIB(ctx, st, st.uniChains[site],
		func() []bgp.Announcement { return []bgp.Announcement{{Origin: c.Sites[site].AS.ID}} }, epoch)
}

// physLookup memoizes a forwarding walk + resolution under an epoch
// RIB: compute outside the lock (the walk is pure and cheap relative
// to a repair), first-installed value wins so every caller sees one
// result.
func (st *epochState) physLookup(key physEpochKey, walk func() (physEpochVal, error)) (physEpochVal, error) {
	st.mu.Lock()
	if v, ok := st.physAt[key]; ok {
		st.mu.Unlock()
		return v, nil
	}
	st.mu.Unlock()
	v, err := walk()
	if err != nil {
		return physEpochVal{}, err
	}
	st.mu.Lock()
	if prev, ok := st.physAt[key]; ok {
		v = prev
	} else {
		st.physAt[key] = v
	}
	st.mu.Unlock()
	return v, nil
}

// AnycastRTTAt measures the prefix's ungroomed anycast latency at
// minute t with the fault schedule's route changes repaired in — the
// epoch in effect at t selects the RIB — returning the latency and the
// catchment site. The resolved physical route is cached per (epoch,
// prefix), so sweeping many instants inside one epoch resolves once.
// The epoch index, RIB, and route cache all come from one atomic state
// snapshot, so a concurrent SetEpochs cannot mix sequences mid-query.
func (c *CDN) AnycastRTTAt(sim *netsim.Sim, p topology.Prefix, t float64) (float64, int, error) {
	st := c.epochSt.Load()
	if st == nil {
		return 0, 0, fmt.Errorf("cdn: no epoch sequence installed (SetEpochs)")
	}
	epoch := st.seq.At(t)
	rib, err := c.chainRIB(context.Background(), st, st.anyChain, func() []bgp.Announcement { return c.Announcements(nil) }, epoch)
	if err != nil {
		return 0, 0, err
	}
	v, err := st.physLookup(physEpochKey{epoch: epoch, site: -1, prefix: p.ID},
		func() (physEpochVal, error) {
			phys, site, err := c.PhysViaRIB(rib, p)
			if err != nil {
				return physEpochVal{}, err
			}
			return physEpochVal{phys: phys, site: site}, nil
		})
	if err != nil {
		return 0, 0, err
	}
	return sim.RouteRTTMs(v.phys, p, t) + c.ServerMs, v.site, nil
}

// UnicastRTTAt is UnicastRTT with the fault schedule's route changes
// repaired in: the epoch in effect at t selects the site's repaired
// unicast RIB, and the resolved physical route is cached per (epoch,
// site, prefix).
func (c *CDN) UnicastRTTAt(sim *netsim.Sim, p topology.Prefix, site int, t float64) (float64, error) {
	if site < 0 || site >= len(c.Sites) {
		return 0, fmt.Errorf("cdn: site %d out of range", site)
	}
	st := c.epochSt.Load()
	if st == nil {
		return 0, fmt.Errorf("cdn: no epoch sequence installed (SetEpochs)")
	}
	epoch := st.seq.At(t)
	rib, err := c.chainRIB(context.Background(), st, st.uniChains[site],
		func() []bgp.Announcement { return []bgp.Announcement{{Origin: c.Sites[site].AS.ID}} }, epoch)
	if err != nil {
		return 0, err
	}
	v, err := st.physLookup(physEpochKey{epoch: epoch, site: site, prefix: p.ID},
		func() (physEpochVal, error) {
			r, err := c.forwardRoute(rib, p.Origin, p.City)
			if err != nil {
				return physEpochVal{}, fmt.Errorf("cdn: prefix %d cannot reach site %d: %w", p.ID, site, err)
			}
			phys, err := c.resolver.Resolve(r, p.City, c.Sites[site].City)
			if err != nil {
				return physEpochVal{}, err
			}
			return physEpochVal{phys: phys, site: site}, nil
		})
	if err != nil {
		return 0, err
	}
	return sim.RouteRTTMs(v.phys, p, t) + c.ServerMs, nil
}
