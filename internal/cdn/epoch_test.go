package cdn

import (
	"fmt"
	"sync"
	"testing"

	"beatbgp/internal/bgp"
	"beatbgp/internal/delta"
	"beatbgp/internal/matbgp"
	"beatbgp/internal/netsim"
	"beatbgp/internal/topology"
)

// epochSequence builds a 4-epoch schedule flapping two of the first
// site's links: both up, first down, both down, both up again.
func epochSequence(t *testing.T, topo *topology.Topo, c *CDN) *delta.Sequence {
	t.Helper()
	nbs := topo.Neighbors(c.Sites[0].AS.ID)
	if len(nbs) < 2 {
		t.Fatalf("site 0 has %d links, need 2", len(nbs))
	}
	la, lb := nbs[0].Link, nbs[1].Link
	seq, err := delta.Compile([]delta.Event{
		{At: 10, Link: la, Down: true},
		{At: 20, Link: lb, Down: true},
		{At: 30, Link: la, Down: false},
		{At: 30, Link: lb, Down: false},
	}, 0, 60)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Len() != 4 {
		t.Fatalf("%d epochs, want 4", seq.Len())
	}
	return seq
}

// sameRIB compares two RIBs query for query over every AS.
func sameRIB(t *testing.T, topo *topology.Topo, got, want *bgp.RIB, label string) {
	t.Helper()
	for as := 0; as < topo.NumASes(); as++ {
		g, w := got.Best(as), want.Best(as)
		if g.Valid != w.Valid || g.Src != w.Src || g.Link != w.Link || g.NextHop != w.NextHop ||
			len(g.Path) != len(w.Path) {
			t.Fatalf("%s: AS %d repaired %+v != rebuilt %+v", label, as, g, w)
		}
		for i := range g.Path {
			if g.Path[i] != w.Path[i] {
				t.Fatalf("%s: AS %d path %v != %v", label, as, g.Path, w.Path)
			}
		}
	}
}

// TestEpochRIBsBitIdentical: every epoch's repaired anycast and unicast
// RIBs must equal a from-scratch rebuild at that epoch's down set, for
// both the rebuild-fallback (Reference) and the incremental engine
// (matbgp), visiting epochs out of order so the chain walks both
// directions.
func TestEpochRIBsBitIdentical(t *testing.T) {
	topo, c := build(t, 5)
	seq := epochSequence(t, topo, c)
	eng, err := matbgp.NewEngine(topo)
	if err != nil {
		t.Fatal(err)
	}
	ref := bgp.NewReference(topo)
	for _, comp := range []bgp.Computer{ref, eng} {
		c.UseEngine(comp)
		c.SetEpochs(seq)
		for _, e := range []int{2, 0, 3, 1, 2} { // forward and backward hops
			down := seq.Epoch(e).DownSet()
			anyRIB, err := c.AnycastRIBAt(e)
			if err != nil {
				t.Fatal(err)
			}
			wantAny, err := comp.ComputeWithout(c.Announcements(nil), down)
			if err != nil {
				t.Fatal(err)
			}
			sameRIB(t, topo, anyRIB, wantAny, "anycast")
			uniRIB, err := c.UnicastRIBAt(0, e)
			if err != nil {
				t.Fatal(err)
			}
			wantUni, err := comp.ComputeWithout([]bgp.Announcement{{Origin: c.Sites[0].AS.ID}}, down)
			if err != nil {
				t.Fatal(err)
			}
			sameRIB(t, topo, uniRIB, wantUni, "unicast")
		}
		// Revisits are memoized: the same epoch returns the same pointer.
		a, _ := c.AnycastRIBAt(1)
		b, _ := c.AnycastRIBAt(1)
		if a != b {
			t.Fatal("epoch RIB not memoized")
		}
	}
}

// TestEpochRTTsMatchRebuild: the epoch-cached RTT queries agree with
// computing the RIB from scratch at the instant's down set — fault
// routes are repaired, not overlaid.
func TestEpochRTTsMatchRebuild(t *testing.T) {
	topo, c := build(t, 5)
	seq := epochSequence(t, topo, c)
	c.SetEpochs(seq)
	sim := netsim.New(topo, netsim.Config{Seed: 5})
	anns := c.Announcements(nil)
	checked := 0
	for _, at := range []float64{5, 15, 25, 45} {
		down := seq.Epoch(seq.At(at)).DownSet()
		rib, err := c.comp.ComputeWithout(anns, down)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range topo.Prefixes[:4] {
			wantMs, wantSite, wantErr := c.RTTViaRIB(sim, rib, p, at)
			gotMs, gotSite, gotErr := c.AnycastRTTAt(sim, p, at)
			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("t=%v prefix %d: err %v vs %v", at, p.ID, gotErr, wantErr)
			}
			if wantErr != nil {
				continue
			}
			if gotMs != wantMs || gotSite != wantSite {
				t.Fatalf("t=%v prefix %d: AnycastRTTAt = (%v, %d), rebuild = (%v, %d)",
					at, p.ID, gotMs, gotSite, wantMs, wantSite)
			}
			checked++
			// Second sample in the same epoch hits the phys cache and
			// must answer identically.
			if again, site2, err := c.AnycastRTTAt(sim, p, at); err != nil || again != gotMs || site2 != gotSite {
				t.Fatalf("t=%v prefix %d: cached resample diverged", at, p.ID)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no reachable prefixes checked")
	}
	// Unicast at a faulted epoch: repaired route matches a rebuild.
	uniDown := seq.Epoch(seq.At(25)).DownSet()
	uniRIB, err := c.comp.ComputeWithout([]bgp.Announcement{{Origin: c.Sites[0].AS.ID}}, uniDown)
	if err != nil {
		t.Fatal(err)
	}
	checked = 0
	for _, p := range topo.Prefixes[:4] {
		r, err := c.forwardRoute(uniRIB, p.Origin, p.City)
		if err != nil {
			continue
		}
		phys, err := c.resolver.Resolve(r, p.City, c.Sites[0].City)
		if err != nil {
			t.Fatal(err)
		}
		want := sim.RouteRTTMs(phys, p, 25) + c.ServerMs
		got, err := c.UnicastRTTAt(sim, p, 0, 25)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("prefix %d: UnicastRTTAt = %v, rebuild = %v", p.ID, got, want)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no reachable prefixes checked for unicast")
	}
}

// TestEpochInitialDownSet: a sequence whose epoch 0 already has links
// down (events at or before t0) must be honored — epoch 0's delta
// carries the initial down set, and the chain folds it in when the
// repairer is created, so AnycastRIBAt(0) is not the all-up RIB.
func TestEpochInitialDownSet(t *testing.T) {
	topo, c := build(t, 5)
	nbs := topo.Neighbors(c.Sites[0].AS.ID)
	if len(nbs) < 2 {
		t.Fatalf("site 0 has %d links, need 2", len(nbs))
	}
	la := nbs[0].Link
	seq, err := delta.Compile([]delta.Event{
		{At: -5, Link: la, Down: true}, // down before the span opens
		{At: 30, Link: la, Down: false},
	}, 0, 60)
	if err != nil {
		t.Fatal(err)
	}
	if got := seq.Epoch(0).DownSet(); !got[la] {
		t.Fatalf("epoch 0 down set %v does not include link %d", got, la)
	}
	c.SetEpochs(seq)
	for e := 0; e < seq.Len(); e++ {
		rib, err := c.AnycastRIBAt(e)
		if err != nil {
			t.Fatal(err)
		}
		want, err := c.comp.ComputeWithout(c.Announcements(nil), seq.Epoch(e).DownSet())
		if err != nil {
			t.Fatal(err)
		}
		sameRIB(t, topo, rib, want, "initial-down epoch")
	}
}

// TestEpochConcurrentQueries is the epoch-cache race regression: many
// goroutines read mixed epochs and chains — anycast, unicast, RTT
// queries — while another goroutine repeatedly reinstalls an equal
// sequence via SetEpochs. Every answer must match the sequential
// rebuild (a racing SetEpochs may discard caches but can never pair a
// stale RIB with a new epoch index), and concurrent readers at
// different epochs must not deadlock. Run under -race (race-delta).
func TestEpochConcurrentQueries(t *testing.T) {
	topo, c := build(t, 5)
	seq := epochSequence(t, topo, c)
	c.SetEpochs(seq)
	sim := netsim.New(topo, netsim.Config{Seed: 5})

	// Sequential truth, computed before the fan-out.
	anns := c.Announcements(nil)
	wantAny := make([]*bgp.RIB, seq.Len())
	wantUni := make([]*bgp.RIB, seq.Len())
	for e := 0; e < seq.Len(); e++ {
		var err error
		if wantAny[e], err = c.comp.ComputeWithout(anns, seq.Epoch(e).DownSet()); err != nil {
			t.Fatal(err)
		}
		if wantUni[e], err = c.comp.ComputeWithout([]bgp.Announcement{{Origin: c.Sites[0].AS.ID}}, seq.Epoch(e).DownSet()); err != nil {
			t.Fatal(err)
		}
	}
	times := []float64{5, 15, 25, 45}
	wantMs := make([]float64, len(times))
	wantSite := make([]int, len(times))
	wantOK := make([]bool, len(times))
	p := topo.Prefixes[0]
	for i, at := range times {
		ms, site, err := c.RTTViaRIB(sim, wantAny[seq.At(at)], p, at)
		wantMs[i], wantSite[i], wantOK[i] = ms, site, err == nil
	}

	const workers = 12
	const rounds = 8
	errs := make(chan error, workers*rounds*8)
	// One goroutine keeps reinstalling a value-equal sequence, so the
	// swap races real queries but never changes any correct answer.
	stop := make(chan struct{})
	var swapper sync.WaitGroup
	swapper.Add(1)
	go func() {
		defer swapper.Done()
		for {
			select {
			case <-stop:
				return
			default:
				c.SetEpochs(epochSequence(t, topo, c))
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				e := (w + r) % seq.Len()
				rib, err := c.AnycastRIBAt(e)
				if err != nil {
					errs <- fmt.Errorf("AnycastRIBAt(%d): %v", e, err)
					return
				}
				if g, want := rib.Best(p.Origin), wantAny[e].Best(p.Origin); g.Link != want.Link || g.NextHop != want.NextHop {
					errs <- fmt.Errorf("AnycastRIBAt(%d): best %+v, want %+v", e, g, want)
					return
				}
				urib, err := c.UnicastRIBAt(0, e)
				if err != nil {
					errs <- fmt.Errorf("UnicastRIBAt(0,%d): %v", e, err)
					return
				}
				if g, want := urib.Best(p.Origin), wantUni[e].Best(p.Origin); g.Link != want.Link || g.NextHop != want.NextHop {
					errs <- fmt.Errorf("UnicastRIBAt(0,%d): best %+v, want %+v", e, g, want)
					return
				}
				ti := (w * rounds * 7 / 3) % len(times)
				ms, site, err := c.AnycastRTTAt(sim, p, times[ti])
				if wantOK[ti] != (err == nil) {
					errs <- fmt.Errorf("AnycastRTTAt(t=%v): err %v, want ok=%v", times[ti], err, wantOK[ti])
					return
				}
				if err == nil && (ms != wantMs[ti] || site != wantSite[ti]) {
					errs <- fmt.Errorf("AnycastRTTAt(t=%v) = (%v,%d), want (%v,%d)", times[ti], ms, site, wantMs[ti], wantSite[ti])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	swapper.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestEpochLayerValidation: queries without an installed sequence and
// out-of-range epochs fail loudly; SetEpochs(nil) tears the layer down.
func TestEpochLayerValidation(t *testing.T) {
	topo, c := build(t, 5)
	if _, err := c.AnycastRIBAt(0); err == nil {
		t.Fatal("AnycastRIBAt without a sequence succeeded")
	}
	sim := netsim.New(topo, netsim.Config{Seed: 5})
	if _, _, err := c.AnycastRTTAt(sim, topo.Prefixes[0], 1); err == nil {
		t.Fatal("AnycastRTTAt without a sequence succeeded")
	}
	if _, err := c.UnicastRTTAt(sim, topo.Prefixes[0], 0, 1); err == nil {
		t.Fatal("UnicastRTTAt without a sequence succeeded")
	}
	seq := epochSequence(t, topo, c)
	c.SetEpochs(seq)
	if _, err := c.AnycastRIBAt(seq.Len()); err == nil {
		t.Fatal("out-of-range epoch accepted")
	}
	if _, err := c.UnicastRIBAt(len(c.Sites), 0); err == nil {
		t.Fatal("out-of-range site accepted")
	}
	if _, err := c.AnycastRIBAt(0); err != nil {
		t.Fatal(err)
	}
	c.SetEpochs(nil)
	if _, err := c.AnycastRIBAt(0); err == nil {
		t.Fatal("query after SetEpochs(nil) succeeded")
	}
}
