package cdn

import (
	"math"
	"testing"

	"beatbgp/internal/dnsmap"
	"beatbgp/internal/geo"
	"beatbgp/internal/netsim"
	"beatbgp/internal/stats"
	"beatbgp/internal/topology"
)

func build(t testing.TB, seed uint64) (*topology.Topo, *CDN) {
	t.Helper()
	topo, err := topology.Generate(topology.GenConfig{Seed: seed, EyeballsPerRegion: 10})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Build(topo, Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return topo, c
}

func TestBuildShape(t *testing.T) {
	topo, c := build(t, 1)
	if len(c.Sites) < 20 {
		t.Fatalf("%d sites, want ~24", len(c.Sites))
	}
	for _, s := range c.Sites {
		if s.AS.Class != topology.Content {
			t.Fatal("site not a content AS")
		}
		if len(s.AS.Cities) != 1 || s.AS.Cities[0] != s.City {
			t.Fatal("site footprint must be its city")
		}
		hasProvider := false
		for _, nb := range topo.Neighbors(s.AS.ID) {
			if nb.View == topology.ViewProvider {
				hasProvider = true
			}
		}
		if !hasProvider {
			t.Fatalf("site %s has no transit", s.AS.Name)
		}
	}
}

func TestCatchmentsMostlyRegional(t *testing.T) {
	topo, c := build(t, 3)
	cat := topo.Catalog
	sameRegion, total := 0, 0
	for _, p := range topo.Prefixes {
		site, err := c.Catchment(p, nil)
		if err != nil {
			t.Fatalf("prefix %d: %v", p.ID, err)
		}
		total++
		if cat.City(p.City).Region == cat.City(c.Sites[site].City).Region {
			sameRegion++
		}
	}
	frac := float64(sameRegion) / float64(total)
	// Anycast mostly works (the paper's point) but not perfectly.
	if frac < 0.55 {
		t.Fatalf("only %.0f%% of catchments in-region; anycast too broken", frac*100)
	}
	if frac == 1 {
		t.Fatal("catchments perfect; the Figure 3 tail cannot exist")
	}
}

func TestAnycastVsBestUnicast(t *testing.T) {
	topo, c := build(t, 5)
	sim := netsim.New(topo, netsim.Config{Seed: 5})
	var diffs stats.Dist
	const when = 600
	for i, p := range topo.Prefixes {
		if i%4 != 0 {
			continue
		}
		any, _, err := c.AnycastRTT(sim, p, nil, when)
		if err != nil {
			continue
		}
		best := math.Inf(1)
		for _, s := range c.NearestSites(p, 6) {
			if rtt, err := c.UnicastRTT(sim, p, s, when); err == nil && rtt < best {
				best = rtt
			}
		}
		if math.IsInf(best, 1) {
			continue
		}
		diffs.Add(any-best, p.Weight)
	}
	if diffs.N() < 50 {
		t.Fatalf("only %d comparisons", diffs.N())
	}
	// Shape check (Figure 3): anycast within 10 ms of the best unicast
	// for well over half the traffic, but a real tail exists.
	within10 := diffs.CDF(10)
	if within10 < 0.55 {
		t.Fatalf("anycast within 10ms for only %.0f%% of traffic", within10*100)
	}
	if diffs.Max() < 20 {
		t.Fatal("no anycast tail at all; catchment model too perfect")
	}
}

func TestGroomingChangesCatchments(t *testing.T) {
	topo, c := build(t, 7)
	// Prepending heavily at one site should shed some of its catchment.
	target := 0
	counts := func(g *Grooming) int {
		n := 0
		for _, p := range topo.Prefixes {
			site, err := c.Catchment(p, g)
			if err == nil && site == target {
				n++
			}
		}
		return n
	}
	before := counts(nil)
	after := counts(&Grooming{Prepend: map[int]int{target: 5}})
	if before == 0 {
		t.Skip("site 0 attracts nothing")
	}
	if after >= before {
		t.Fatalf("prepending did not shed load: %d -> %d", before, after)
	}
}

func TestUnicastRIBCached(t *testing.T) {
	_, c := build(t, 9)
	a, err := c.UnicastRIB(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.UnicastRIB(0)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("unicast RIB not cached")
	}
	if _, err := c.UnicastRIB(-1); err == nil {
		t.Fatal("bad site index accepted")
	}
}

func TestNearestSitesOrdered(t *testing.T) {
	topo, c := build(t, 11)
	p := topo.Prefixes[0]
	sites := c.NearestSites(p, len(c.Sites))
	loc := topo.Catalog.City(p.City).Loc
	prev := -1.0
	for _, s := range sites {
		d := geo.DistanceKm(loc, topo.Catalog.City(c.Sites[s].City).Loc)
		if d < prev {
			t.Fatal("NearestSites not sorted")
		}
		prev = d
	}
	// SiteDistanceKm ranks agree.
	if c.SiteDistanceKm(p, 0) > c.SiteDistanceKm(p, 1) {
		t.Fatal("rank distances inverted")
	}
}

func TestRedirectorTrainsAndServes(t *testing.T) {
	topo, c := build(t, 13)
	sim := netsim.New(topo, netsim.Config{Seed: 13})
	m := dnsmap.Build(topo, dnsmap.Config{Seed: 13})
	var sample []topology.Prefix
	for i, p := range topo.Prefixes {
		if i%3 == 0 {
			sample = append(sample, p)
		}
	}
	rd, err := TrainRedirector(c, sim, m, sample, []float64{0, 360, 720}, TrainOpts{KNearest: 4})
	if err != nil {
		t.Fatal(err)
	}
	redirected := 0
	for _, p := range sample {
		choice := rd.Decision(p, m)
		if choice != AnycastChoice {
			redirected++
			if choice < 0 || choice >= len(c.Sites) {
				t.Fatalf("bad decision %d", choice)
			}
		}
		rtt, err := c.ServeRTT(sim, rd, m, p, 1440)
		if err != nil {
			t.Fatalf("serve prefix %d: %v", p.ID, err)
		}
		if rtt <= 0 {
			t.Fatal("non-positive serve RTT")
		}
	}
	if redirected == 0 {
		t.Fatal("redirector never overrides anycast")
	}
	if redirected == len(sample) {
		t.Fatal("redirector always overrides anycast")
	}
}

func TestTrainRedirectorValidation(t *testing.T) {
	topo, c := build(t, 15)
	sim := netsim.New(topo, netsim.Config{Seed: 15})
	m := dnsmap.Build(topo, dnsmap.Config{Seed: 15})
	if _, err := TrainRedirector(c, sim, m, topo.Prefixes[:5], nil, TrainOpts{}); err == nil {
		t.Fatal("no training times accepted")
	}
}

func BenchmarkAnycastRTT(b *testing.B) {
	topo, c := build(b, 1)
	sim := netsim.New(topo, netsim.Config{Seed: 1})
	p := topo.Prefixes[0]
	if _, _, err := c.AnycastRTT(sim, p, nil, 0); err != nil {
		b.Skip("prefix cannot reach anycast")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.AnycastRTT(sim, p, nil, float64(i%5000)); err != nil {
			b.Fatal(err)
		}
	}
}
