package cdn

import (
	"context"
	"errors"
	"testing"

	"beatbgp/internal/bgp"
	"beatbgp/internal/matbgp"
)

// TestEpochContextCancelled: an expired context aborts the epoch
// chain's repair with the context's error, and the chain recovers on
// the next live-context query — the poisoned repairer is rebuilt, the
// answers stay bit-identical to a rebuild.
func TestEpochContextCancelled(t *testing.T) {
	topo, c := build(t, 5)
	seq := epochSequence(t, topo, c)
	eng, err := matbgp.NewEngine(topo)
	if err != nil {
		t.Fatal(err)
	}
	c.UseEngine(eng)
	c.SetEpochs(seq)

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.AnycastRIBAtContext(cancelled, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled anycast query returned %v, want context.Canceled", err)
	}
	if _, err := c.UnicastRIBAtContext(cancelled, 0, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled unicast query returned %v, want context.Canceled", err)
	}

	// Recovery: the same epochs answer correctly with a live context.
	for _, e := range []int{2, 0, 3} {
		down := seq.Epoch(e).DownSet()
		got, err := c.AnycastRIBAtContext(context.Background(), e)
		if err != nil {
			t.Fatalf("epoch %d after cancellation: %v", e, err)
		}
		want, err := eng.ComputeWithout(c.Announcements(nil), down)
		if err != nil {
			t.Fatal(err)
		}
		sameRIB(t, topo, got, want, "anycast post-cancel")
		gotU, err := c.UnicastRIBAtContext(context.Background(), 0, e)
		if err != nil {
			t.Fatalf("unicast epoch %d after cancellation: %v", e, err)
		}
		wantU, err := eng.ComputeWithout([]bgp.Announcement{{Origin: c.Sites[0].AS.ID}}, down)
		if err != nil {
			t.Fatal(err)
		}
		sameRIB(t, topo, gotU, wantU, "unicast post-cancel")
	}
}

// TestEpochContextPlainDelegates: the context-free entry points answer
// exactly like their Context variants under a background context.
func TestEpochContextPlainDelegates(t *testing.T) {
	topo, c := build(t, 5)
	seq := epochSequence(t, topo, c)
	c.SetEpochs(seq)
	a, err := c.AnycastRIBAt(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.AnycastRIBAtContext(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("AnycastRIBAt and AnycastRIBAtContext answered different memoized RIBs")
	}
	_ = topo
}
