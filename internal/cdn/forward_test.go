package cdn

import (
	"testing"
)

// TestForwardRouteConsistency checks the per-hop forwarding walk on every
// prefix: the synthetic route must be loop-free-enough to resolve, end at
// a site, and never use a suppressed or nonexistent link.
func TestForwardRouteConsistency(t *testing.T) {
	topo, c := build(t, 51)
	rib, err := c.AnycastRIB(nil)
	if err != nil {
		t.Fatal(err)
	}
	resolved := 0
	for _, p := range topo.Prefixes {
		r, err := c.forwardRoute(rib, p.Origin, p.City)
		if err != nil {
			continue
		}
		if !r.Valid {
			t.Fatal("forwardRoute returned an invalid route without error")
		}
		if _, ok := c.siteByAS[r.Origin()]; !ok {
			t.Fatalf("forward walk ended at non-site AS %d", r.Origin())
		}
		// Path/link arity must satisfy the resolver's contract.
		distinct := 1
		for i := 1; i < len(r.Path); i++ {
			if r.Path[i] != r.Path[i-1] {
				distinct++
			}
		}
		if len(r.Links) != distinct-1 {
			t.Fatalf("links/path arity broken: %d links for %d transitions", len(r.Links), distinct-1)
		}
		// Each link must actually join the adjacent ASes.
		idx := 0
		for i := 1; i < len(r.Path); i++ {
			if r.Path[i] == r.Path[i-1] {
				continue
			}
			l := topo.Links[r.Links[idx]]
			if !(l.A == r.Path[i-1] && l.B == r.Path[i]) && !(l.B == r.Path[i-1] && l.A == r.Path[i]) {
				t.Fatalf("link %d does not join %d-%d", r.Links[idx], r.Path[i-1], r.Path[i])
			}
			idx++
		}
		// And the whole thing must resolve physically.
		site := c.siteByAS[r.Origin()]
		if _, err := c.resolver.Resolve(r, p.City, c.Sites[site].City); err != nil {
			t.Fatalf("forward route does not resolve: %v", err)
		}
		resolved++
	}
	if resolved < len(topo.Prefixes)*8/10 {
		t.Fatalf("only %d/%d prefixes resolved", resolved, len(topo.Prefixes))
	}
}

// TestForwardRouteRespectsGroomingSuppression: a site that withdraws from
// its transit links must not be reached over them by the per-hop walk.
func TestForwardRouteRespectsGroomingSuppression(t *testing.T) {
	topo, c := build(t, 53)
	target := 0
	suppress := map[int]bool{}
	for _, nb := range topo.Neighbors(c.Sites[target].AS.ID) {
		suppress[nb.Link] = true // withdraw from everyone
	}
	g := &Grooming{Suppress: map[int]map[int]bool{target: suppress}}
	rib, err := c.AnycastRIB(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range topo.Prefixes {
		r, err := c.forwardRoute(rib, p.Origin, p.City)
		if err != nil {
			continue
		}
		if r.Origin() == c.Sites[target].AS.ID {
			t.Fatalf("prefix %d still caught by a fully withdrawn site", p.ID)
		}
	}
}
