package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"beatbgp/internal/core"
	"beatbgp/internal/stats"
)

// CellRef identifies one unit of campaign work: one experiment run
// against the world of one seed. Key is the content key of that cell —
// the build graph's WorldKey for the seeded config chained with the
// experiment ID — so a config change invalidates exactly the checkpoints
// whose world it changes and nothing else.
type CellRef struct {
	Experiment string `json:"experiment"`
	Seed       uint64 `json:"seed"`
	Key        string `json:"key"`
}

func (c CellRef) String() string {
	return fmt.Sprintf("%s seed=%d", c.Experiment, c.Seed)
}

// cellKey chains the world key with the experiment ID into the cell's
// content key (reusing the build graph's keyed hashing via WorldKey's
// format: both are short hex sha256 prefixes).
func cellKey(worldKey, id string) string {
	return core.CellKey(worldKey, id)
}

// tmpPrefix marks in-flight checkpoint writes. The dot keeps them out of
// result listings, and the supervisor sweeps stale ones (a SIGKILL
// mid-write leaves at most a tmp file, never a torn checkpoint) on the
// next run against the same directory.
const tmpPrefix = ".tmp-"

var unsafePath = regexp.MustCompile(`[^a-zA-Z0-9._-]+`)

// checkpointName is the stable on-disk name of a cell's checkpoint.
func checkpointName(ref CellRef) string {
	id := unsafePath.ReplaceAllString(ref.Experiment, "_")
	return fmt.Sprintf("%s-%d-%s.json", id, ref.Seed, ref.Key)
}

// checkpointFile is the persisted form of one completed cell.
type checkpointFile struct {
	Experiment string   `json:"experiment"`
	Seed       uint64   `json:"seed"`
	Key        string   `json:"key"`
	Result     cpResult `json:"result"`
}

// The checkpoint codec stores every float as its shortest round-tripping
// decimal string (strconv 'g'/-1), because encoding/json rejects NaN and
// ±Inf outright — and table cells can legally hold NaN (stats.Table pads
// missing cells with it). String floats make the encode→decode cycle
// bit-exact for every value, which is what lets a resumed campaign
// render byte-identically to an uninterrupted one.
type cpResult struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Notes  []string   `json:"notes,omitempty"`
	Series []cpSeries `json:"series,omitempty"`
	Tables []cpTable  `json:"tables,omitempty"`
}

type cpSeries struct {
	Name   string   `json:"name"`
	XLabel string   `json:"xlabel"`
	YLabel string   `json:"ylabel"`
	X      []string `json:"x"`
	Y      []string `json:"y"`
}

type cpTable struct {
	Name    string   `json:"name"`
	Columns []string `json:"columns"`
	Rows    []cpRow  `json:"rows"`
}

type cpRow struct {
	Label string   `json:"label"`
	Cells []string `json:"cells"`
}

func fstr(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func encodeResult(r core.Result) cpResult {
	out := cpResult{ID: r.ID, Title: r.Title, Notes: r.Notes}
	for _, s := range r.Series {
		cs := cpSeries{Name: s.Name, XLabel: s.XLabel, YLabel: s.YLabel}
		for _, p := range s.Points {
			cs.X = append(cs.X, fstr(p.X))
			cs.Y = append(cs.Y, fstr(p.Y))
		}
		out.Series = append(out.Series, cs)
	}
	for _, t := range r.Tables {
		ct := cpTable{Name: t.Name, Columns: t.Columns}
		for _, row := range t.Rows {
			cr := cpRow{Label: row.Label}
			for _, c := range row.Cells {
				cr.Cells = append(cr.Cells, fstr(c))
			}
			ct.Rows = append(ct.Rows, cr)
		}
		out.Tables = append(out.Tables, ct)
	}
	return out
}

func decodeResult(c cpResult) (core.Result, error) {
	pf := func(s string) (float64, error) {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, fmt.Errorf("harness: corrupt checkpoint float %q: %w", s, err)
		}
		return v, nil
	}
	out := core.Result{ID: c.ID, Title: c.Title, Notes: c.Notes}
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return core.Result{}, fmt.Errorf("harness: corrupt checkpoint series %q: %d xs, %d ys", s.Name, len(s.X), len(s.Y))
		}
		cs := stats.Series{Name: s.Name, XLabel: s.XLabel, YLabel: s.YLabel}
		for i := range s.X {
			x, err := pf(s.X[i])
			if err != nil {
				return core.Result{}, err
			}
			y, err := pf(s.Y[i])
			if err != nil {
				return core.Result{}, err
			}
			cs.Points = append(cs.Points, stats.XY{X: x, Y: y})
		}
		out.Series = append(out.Series, cs)
	}
	for _, t := range c.Tables {
		ct := stats.Table{Name: t.Name, Columns: t.Columns}
		for _, row := range t.Rows {
			cr := stats.Row{Label: row.Label}
			for _, cell := range row.Cells {
				v, err := pf(cell)
				if err != nil {
					return core.Result{}, err
				}
				cr.Cells = append(cr.Cells, v)
			}
			ct.Rows = append(ct.Rows, cr)
		}
		out.Tables = append(out.Tables, ct)
	}
	return out, nil
}

// writeCheckpoint persists one completed cell via temp-file + atomic
// rename: a crash at any instant leaves either the complete previous
// state or a stale dotted temp file, never a torn checkpoint.
func writeCheckpoint(dir string, ref CellRef, r core.Result) error {
	data, err := json.MarshalIndent(checkpointFile{
		Experiment: ref.Experiment, Seed: ref.Seed, Key: ref.Key,
		Result: encodeResult(r),
	}, "", " ")
	if err != nil {
		return fmt.Errorf("harness: encode checkpoint %s: %w", ref, err)
	}
	return writeAtomic(dir, checkpointName(ref), append(data, '\n'))
}

// writeAtomic writes data to dir/name through a same-directory temp file,
// an fsync, and a rename.
func writeAtomic(dir, name string, data []byte) error {
	f, err := os.CreateTemp(dir, tmpPrefix+name+"-*")
	if err != nil {
		return fmt.Errorf("harness: %w", err)
	}
	tmp := f.Name()
	_, werr := f.Write(data)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp, filepath.Join(dir, name))
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("harness: write %s: %w", name, werr)
	}
	return nil
}

// loadCheckpoint reads the checkpoint for ref, if one exists. The bool
// reports presence; a present-but-unreadable file is returned as an
// error so the caller can decide to re-run the cell instead of dying.
func loadCheckpoint(dir string, ref CellRef) (core.Result, bool, error) {
	data, err := os.ReadFile(filepath.Join(dir, checkpointName(ref)))
	if os.IsNotExist(err) {
		return core.Result{}, false, nil
	}
	if err != nil {
		return core.Result{}, false, fmt.Errorf("harness: %w", err)
	}
	var cf checkpointFile
	if err := json.Unmarshal(data, &cf); err != nil {
		return core.Result{}, false, fmt.Errorf("harness: corrupt checkpoint %s: %w", checkpointName(ref), err)
	}
	if cf.Key != ref.Key || cf.Experiment != ref.Experiment || cf.Seed != ref.Seed {
		return core.Result{}, false, fmt.Errorf("harness: checkpoint %s does not match cell %s", checkpointName(ref), ref)
	}
	r, err := decodeResult(cf.Result)
	if err != nil {
		return core.Result{}, false, err
	}
	return r, true, nil
}

// sweepStaleTemps removes leftover in-flight temp files from a previous
// process that was killed mid-write.
func sweepStaleTemps(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasPrefix(e.Name(), tmpPrefix) {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
}
