package harness

import (
	"encoding/json"
	"fmt"
)

// Status is a cell's final disposition in one supervisor run.
type Status string

const (
	// StatusOK: the cell ran to completion in this run.
	StatusOK Status = "ok"
	// StatusResumed: the cell's result was loaded from a checkpoint; the
	// experiment was not re-run (Attempts stays 0).
	StatusResumed Status = "resumed"
	// StatusFailed: every permitted attempt failed.
	StatusFailed Status = "failed"
	// StatusCancelled: the cell was in flight (or between retries) when
	// the campaign context died.
	StatusCancelled Status = "cancelled"
	// StatusSkipped: the drain arrived before the cell ever started.
	StatusSkipped Status = "skipped"
)

// Outcome is the machine-readable record of one cell: its identity, how
// it ended, how many attempts it consumed, and — for failures — the
// taxonomy kind, the error text, and (for panics) the captured stack.
type Outcome struct {
	CellRef
	Status   Status  `json:"status"`
	Kind     Kind    `json:"kind,omitempty"`
	Err      string  `json:"error,omitempty"`
	Stack    string  `json:"stack,omitempty"`
	Attempts int     `json:"attempts"`
	WallMs   float64 `json:"wall_ms"`
}

// Manifest is the campaign's machine-readable summary, written atomically
// to <run-dir>/manifest.json at the end of every supervisor run —
// including drained and failed ones, which is the point: whatever
// happened, the run directory always says exactly which cells are done,
// which failed and why, and what a resume would re-run.
type Manifest struct {
	IDs      []string       `json:"experiments"`
	Seeds    []uint64       `json:"seeds"`
	Workers  int            `json:"workers"`
	Retries  int            `json:"retries"`
	Timeout  string         `json:"timeout,omitempty"`
	Watchdog string         `json:"watchdog,omitempty"`
	WallMs   float64        `json:"wall_ms"`
	Complete bool           `json:"complete"`
	ExitCode int            `json:"exit_code"`
	Counts   map[Status]int `json:"counts"`
	Outcomes []Outcome      `json:"outcomes"`
}

// ManifestName is the manifest's filename inside a run directory.
const ManifestName = "manifest.json"

func writeManifest(dir string, m Manifest) error {
	data, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return fmt.Errorf("harness: encode manifest: %w", err)
	}
	return writeAtomic(dir, ManifestName, append(data, '\n'))
}
